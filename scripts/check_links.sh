#!/usr/bin/env bash
# check_links.sh — markdown link gate. Every intra-repo link in every
# tracked .md file must resolve to an existing file (dead internal links
# fail the build); external http(s) links are listed as warnings only — CI
# must not depend on third-party uptime.
#
# Usage: scripts/check_links.sh

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
external=0
while IFS= read -r md; do
    case "$md" in
    # Reference corpora quoting other repositories verbatim: their relative
    # links point into those repos, not this one.
    SNIPPETS.md|PAPERS.md|PAPER.md|ISSUE.md) continue ;;
    esac
    dir="$(dirname "$md")"
    # Inline markdown links/images: the (target) of ](target). Titles after
    # the URL ("](file.md \"title\")") and #fragments are stripped.
    while IFS= read -r target; do
        target="${target%% *}"
        case "$target" in
        http://*|https://*)
            echo "check_links.sh: WARN external link (not checked): $md -> $target"
            external=$((external + 1))
            ;;
        mailto:*|\#*|'')
            ;;
        *)
            path="${target%%#*}"
            [ -n "$path" ] || continue
            if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
                echo "check_links.sh: DEAD link: $md -> $target" >&2
                fail=1
            fi
            ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed 's/^](//; s/)$//')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "check_links.sh: FAIL — fix the dead intra-repo links above" >&2
    exit 1
fi
echo "check_links.sh: all intra-repo markdown links resolve ($external external links not checked)"
