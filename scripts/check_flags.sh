#!/usr/bin/env bash
# check_flags.sh — CLI flag-drift gate. Builds every binary, extracts its
# registered flags from -help, and diffs them against the binary's section
# in docs/CLI.md — in both directions: a flag added or renamed in code
# without a doc row fails, and a doc row for a flag that no longer exists
# fails too. This is what keeps the flag reference authoritative instead of
# aspirational (the -batch-highwater / -evict-every drift that motivated it
# was exactly a flag shipped without a doc row).
#
# Usage: scripts/check_flags.sh

set -euo pipefail
cd "$(dirname "$0")/.."

doc="docs/CLI.md"
[ -f "$doc" ] || { echo "check_flags.sh: $doc missing" >&2; exit 1; }

bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT

fail=0
for bin in oramd oramproxy loadgen oramsim experiments leakcalc attack; do
    go build -o "$bindir/$bin" "./cmd/$bin"

    # The flag package prints the registry on -help and exits 2.
    help_flags="$("$bindir/$bin" -help 2>&1 | awk '$1 ~ /^-/ {print substr($1, 2)}' | sort -u)"

    # Rows of this binary's section in docs/CLI.md: between "## <bin> " and
    # the next "## ", every table row whose first cell is a backticked flag.
    doc_flags="$(awk -v bin="$bin" '
        /^## / { in_sec = ($2 == bin) }
        in_sec && /^\| `-/ { f = $2; gsub(/[`|]/, "", f); sub(/^-/, "", f); print f }
    ' "$doc" | sort -u)"

    undocumented="$(comm -23 <(echo "$help_flags") <(echo "$doc_flags"))"
    stale="$(comm -13 <(echo "$help_flags") <(echo "$doc_flags"))"
    if [ -n "$undocumented" ]; then
        echo "check_flags.sh: $bin flags missing from $doc:" >&2
        echo "$undocumented" | sed 's/^/    -/' >&2
        fail=1
    fi
    if [ -n "$stale" ]; then
        echo "check_flags.sh: $doc documents $bin flags that no longer exist:" >&2
        echo "$stale" | sed 's/^/    -/' >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_flags.sh: FAIL — update docs/CLI.md to match the binaries" >&2
    exit 1
fi
echo "check_flags.sh: all binaries' flags match docs/CLI.md"
