#!/usr/bin/env bash
# bench.sh — run the repo's perf-trajectory benchmarks and emit a JSON
# record (BENCH_<date>_<commit>.json) so successive PRs can track ns/op,
# B/op and allocs/op for the hot paths over time. The short commit hash in
# the filename keeps two same-day runs from silently overwriting each other;
# the date stays in the JSON records for trend plots.
#
# Usage: scripts/bench.sh [output-dir]    (default: repo root)
# Env:   BENCH_TIME           go test -benchtime value (default 1s)
#        BENCH_ALLOW_DIRTY=1  permit a run from a modified working tree; the
#                             record gets a "-dirty" filename suffix, which
#                             bench_compare.sh refuses to baseline against

set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
stamp="$(date +%Y%m%d)"
# The hash names the code that was benchmarked. A modified working tree
# cannot produce a commit-attributable record, so by default the run is
# refused outright — a committed dirty record once served as the regression
# gate's baseline, gating later PRs against numbers no commit ever
# contained. BENCH_ALLOW_DIRTY=1 permits an exploratory run; the "-dirty"
# suffix it stamps is excluded from baseline selection by bench_compare.sh.
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    if [ "${BENCH_ALLOW_DIRTY:-0}" != "1" ]; then
        echo "bench.sh: working tree is dirty — the record could not be attributed to a commit." >&2
        echo "bench.sh: commit (or stash) first, or set BENCH_ALLOW_DIRTY=1 for a throwaway -dirty record." >&2
        exit 1
    fi
    commit="${commit}-dirty"
fi
out="${outdir}/BENCH_${stamp}_${commit}.json"
benchtime="${BENCH_TIME:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# BenchmarkServerThroughput fans out into per-shard-count sub-benchmarks,
# including the recursive-backend series (recursive/shards=N,
# recursive-unpaced, recursive-integrity-unpaced) that records the
# flat-vs-recursive cost and the batched multi-path series
# (batched/shards=N paced — compared raw like every slot-grid series —
# plus batched-unpaced, calibration-normalized like the other unpaced
# capacity runs); BenchmarkClusterThroughput does the same one
# level up (nodes=N over loopback TCP); every sub-benchmark lands in the
# JSON and is gated by bench_compare.sh from its first committed record
# onward. The file-store series (file/shards=N, file-unpaced) measure the
# durable tier; every record row carries a "store" field ("mem" or "file",
# classified from the sub-benchmark name) so bench_compare.sh can refuse a
# mem-vs-file comparison if a series is ever renamed across store kinds.
# Likewise each row carries a "checkpoint_mode" field ("full", or "delta"
# for the file-delta incremental-chain series) so a series renamed across
# checkpoint strategies is refused rather than misjudged — a delta
# checkpoint writes O(dirty) bytes where a full one rewrites all trusted
# state, and their ns/op are not comparable. BenchmarkCalibration is the hardware yardstick: a fixed AES-CTR
# loop recorded in every BENCH_*.json so bench_compare.sh can normalize
# away runner-generation drift instead of gating code against hardware.
# Naming convention the gate depends on: slot-grid-paced throughput series
# are compared raw, everything else calibration-normalized, classified by
# name — keep "unpaced" in the names of unpaced throughput sub-benchmarks.
# BenchmarkBatchVerb prices the batch_read serving path: one latency-bound
# cdsi client against a paced batched store, single-op vs 4-address-batch
# submission — both sub-series wall-clock paced, so compared raw.
benches='BenchmarkCalibration|BenchmarkPathORAMAccess|BenchmarkEnforcerFetch|BenchmarkSimulatorThroughput|BenchmarkWorkloadGen|BenchmarkServerThroughput|BenchmarkClusterThroughput|BenchmarkBatchVerb'
go test -run '^$' -bench "$benches" -benchmem -benchtime="$benchtime" -count=1 . ./internal/server ./internal/cluster | tee "$raw"

# Convert `go test -bench` lines into a JSON array. A bench line looks like:
#   BenchmarkPathORAMAccess  202093  11572 ns/op  1 B/op  0 allocs/op
# Sub-benchmarks keep their slash-separated name; the trailing -N
# (GOMAXPROCS) suffix is stripped so records compare across machines.
awk -v date="$stamp" -v commit="$commit" '
BEGIN { print "[" ; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    store = (name ~ /\/file/) ? "file" : "mem"
    mode = (name ~ /\/file-delta/) ? "delta" : "full"
    ns = ""; bytes = ""; allocs = ""; epoch = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "routing-epoch") epoch = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"commit\": \"%s\", \"name\": \"%s\", \"store\": \"%s\", \"checkpoint_mode\": \"%s\", \"ns_per_op\": %s", date, commit, name, store, mode, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (epoch != "")  printf ", \"routing_epoch\": %s", epoch
    printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
