#!/usr/bin/env bash
# bench.sh — run the repo's perf-trajectory benchmarks and emit a JSON
# record (BENCH_<date>.json) so successive PRs can track ns/op, B/op and
# allocs/op for the hot paths over time.
#
# Usage: scripts/bench.sh [output-dir]    (default: repo root)

set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
stamp="$(date +%Y%m%d)"
out="${outdir}/BENCH_${stamp}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

benches='BenchmarkPathORAMAccess|BenchmarkEnforcerFetch|BenchmarkSimulatorThroughput|BenchmarkWorkloadGen'
go test -run '^$' -bench "$benches" -benchmem -benchtime=1s -count=1 . | tee "$raw"

# Convert `go test -bench` lines into a JSON array. A bench line looks like:
#   BenchmarkPathORAMAccess  202093  11572 ns/op  1 B/op  0 allocs/op
awk -v date="$stamp" -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
BEGIN { print "[" ; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"date\": \"%s\", \"commit\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s", date, commit, name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
