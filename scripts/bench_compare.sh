#!/usr/bin/env bash
# bench_compare.sh — the bench-regression gate. Runs scripts/bench.sh into a
# temporary directory and compares every benchmark that also appears in the
# newest *committed* BENCH_*.json record: if any ns/op regressed more than
# the tolerance, the script fails and lists the offenders.
#
# Caveat: the baseline JSON records whatever machine ran scripts/bench.sh
# last; comparing against a run on different hardware measures the hardware
# as much as the code. Keep the committed baselines coming from one box (or
# regenerate the baseline on the current box before trusting a REGRESS),
# and use the tolerance knob when runner hardware legitimately shifts.
#
# Knobs (for intentional perf trade-offs or noisy boxes):
#   BENCH_TOLERANCE_PCT   allowed ns/op regression percentage (default 20)
#   BENCH_COMPARE_SKIP=1  skip the gate entirely (use when a PR knowingly
#                         trades hot-path speed for something else; say so
#                         in the PR description and commit a fresh
#                         BENCH_<date>_<commit>.json so the next gate
#                         baselines against the accepted numbers)
#   BENCH_TIME            forwarded to bench.sh (default 1s)
#
# New benchmarks (present only in the fresh run) pass automatically —
# they have no baseline yet. Removed benchmarks are reported but don't fail.

set -euo pipefail
cd "$(dirname "$0")/.."

tol="${BENCH_TOLERANCE_PCT:-20}"

if [[ "${BENCH_COMPARE_SKIP:-0}" == "1" ]]; then
    echo "bench_compare: skipped via BENCH_COMPARE_SKIP=1"
    exit 0
fi

# Newest committed baseline: among tracked BENCH_*.json files, take the one
# whose last touching commit is most recent (filename date alone can't order
# two same-day records). Records stamped "-dirty" are never baselines: they
# measured a tree no commit describes, so gating against them compares
# against numbers that can't be reproduced or attributed.
baseline=""
newest=0
while IFS= read -r f; do
    case "$f" in *-dirty*) echo "bench_compare: ignoring non-commit-attributable $f"; continue ;; esac
    ts="$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)"
    if [[ "$ts" -gt "$newest" ]]; then
        newest="$ts"
        baseline="$f"
    fi
done < <(git ls-files 'BENCH_*.json')

if [[ -z "$baseline" ]]; then
    echo "bench_compare: no committed BENCH_*.json baseline; nothing to gate"
    exit 0
fi
echo "bench_compare: baseline $baseline (tolerance ${tol}%)"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
# The fresh run deliberately measures the working tree (that is the point of
# the gate), so it is exempt from bench.sh's dirty-tree refusal; its record
# lands in a temp dir and is never committed.
BENCH_ALLOW_DIRTY=1 scripts/bench.sh "$tmpdir" >/dev/null
fresh="$(ls "$tmpdir"/BENCH_*.json)"

# Extract "name ns_per_op" pairs from a bench JSON (our own fixed format).
extract() {
    grep -o '"name": "[^"]*", "ns_per_op": [0-9.e+]*' "$1" |
        sed 's/"name": "\([^"]*\)", "ns_per_op": \([0-9.e+]*\)/\1 \2/'
}

extract "$baseline" | sort > "$tmpdir/base.txt"
extract "$fresh" | sort > "$tmpdir/new.txt"

awk -v tol="$tol" '
NR == FNR { base[$1] = $2; next }
{
    if (!($1 in base)) { printf "  NEW      %-55s %12.1f ns/op (no baseline)\n", $1, $2; next }
    seen[$1] = 1
    limit = base[$1] * (1 + tol / 100)
    delta = (base[$1] > 0) ? ($2 / base[$1] - 1) * 100 : 0
    if ($2 > limit) {
        printf "  REGRESS  %-55s %12.1f -> %12.1f ns/op (%+.1f%% > +%s%%)\n", $1, base[$1], $2, delta, tol
        bad++
    } else {
        printf "  ok       %-55s %12.1f -> %12.1f ns/op (%+.1f%%)\n", $1, base[$1], $2, delta
    }
}
END {
    for (n in base) if (!(n in seen)) printf "  GONE     %-55s (in baseline, not in this run)\n", n
    if (bad > 0) {
        printf "bench_compare: %d benchmark(s) regressed beyond %s%%.\n", bad, tol
        printf "If intentional, re-run with BENCH_COMPARE_SKIP=1 and commit a fresh record via scripts/bench.sh.\n"
        exit 1
    }
    print "bench_compare: no regression beyond tolerance."
}
' "$tmpdir/base.txt" "$tmpdir/new.txt"
