#!/usr/bin/env bash
# bench_compare.sh — the bench-regression gate. Runs scripts/bench.sh into a
# temporary directory and compares every benchmark that also appears in the
# newest *committed* BENCH_*.json record: if any ns/op regressed more than
# the tolerance, the script fails and lists the offenders.
#
# Hardware drift is normalized away rather than tolerated: every record
# carries BenchmarkCalibration, a fixed CPU-bound AES-CTR loop that measures
# the machine, and each fresh ns/op is rescaled by the fresh-vs-baseline
# calibration ratio before the tolerance is applied, so a slower runner
# generation does not read as a code regression. The suite mixes two kinds
# of series, and each is judged in the one view where a code regression is
# visible on any hardware:
#
#   - wall-clock-paced series (paced BenchmarkServerThroughput/
#     BenchmarkClusterThroughput sub-benchmarks: slot-grid throughput,
#     pinned to timer periods) are compared RAW — rescaling them by CPU
#     speed would manufacture regressions on fast runners and mask real
#     ones on slow runners;
#   - everything else is CPU-bound and is compared NORMALIZED — it tracks
#     the calibration loop across hardware.
#
# The classification is by name: a sub-benchmark of the two throughput
# suites is paced unless its name contains "unpaced" (keep that convention
# when adding series).
#
# Knobs (for intentional perf trade-offs or noisy boxes):
#   BENCH_TOLERANCE_PCT   allowed ns/op regression percentage (default 20)
#   BENCH_COMPARE_SKIP=1  skip the gate entirely (use when a PR knowingly
#                         trades hot-path speed for something else; say so
#                         in the PR description and commit a fresh
#                         BENCH_<date>_<commit>.json so the next gate
#                         baselines against the accepted numbers)
#   BENCH_TIME            forwarded to bench.sh (default 1s)
#   BENCH_FRESH_DIR       keep the freshly-measured record in this directory
#                         instead of a deleted tempdir (CI uploads it as a
#                         workflow artifact so drift across runner
#                         generations stays inspectable after the fact)
#
# Series present only in the fresh run pass automatically (NEW — no
# baseline yet) unless an *older* committed record had them: then the newest
# baseline silently dropped gate coverage, and the script says so with a
# WARN (not a failure) instead of skipping quietly. Removed benchmarks are
# reported as GONE but don't fail.

set -euo pipefail
cd "$(dirname "$0")/.."

tol="${BENCH_TOLERANCE_PCT:-20}"
cal_name="BenchmarkCalibration"

if [[ "${BENCH_COMPARE_SKIP:-0}" == "1" ]]; then
    echo "bench_compare: skipped via BENCH_COMPARE_SKIP=1"
    exit 0
fi

# Newest committed baseline: among tracked BENCH_*.json files, take the one
# whose last touching commit is most recent (filename date alone can't order
# two same-day records). Records stamped "-dirty" are never baselines: they
# measured a tree no commit describes, so gating against them compares
# against numbers that can't be reproduced or attributed.
baseline=""
newest=0
while IFS= read -r f; do
    case "$f" in *-dirty*) echo "bench_compare: ignoring non-commit-attributable $f"; continue ;; esac
    # Tracked but deleted in the working tree (a PR removing an obsolete
    # record): not a usable baseline.
    [[ -f "$f" ]] || continue
    ts="$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)"
    if [[ "$ts" -gt "$newest" ]]; then
        newest="$ts"
        baseline="$f"
    fi
done < <(git ls-files 'BENCH_*.json')

if [[ -z "$baseline" ]]; then
    echo "bench_compare: no committed BENCH_*.json baseline; nothing to gate"
    exit 0
fi
echo "bench_compare: baseline $baseline (tolerance ${tol}%)"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
freshdir="$workdir"
if [[ -n "${BENCH_FRESH_DIR:-}" ]]; then
    freshdir="$BENCH_FRESH_DIR"
    mkdir -p "$freshdir"
fi
# The fresh run deliberately measures the working tree (that is the point of
# the gate), so it is exempt from bench.sh's dirty-tree refusal; its record
# is never committed.
BENCH_ALLOW_DIRTY=1 scripts/bench.sh "$freshdir" >/dev/null
fresh="$(ls -t "$freshdir"/BENCH_*.json | head -1)"
echo "bench_compare: fresh record $fresh"

# Extract "name ns_per_op store checkpoint_mode" rows from a bench JSON (our
# own fixed format). Records written before the durable tier carry no "store"
# field — every series then was RAM-backed, so absent means "mem"; records
# written before the delta chain carry no "checkpoint_mode" field — every
# checkpoint then rewrote the full state, so absent means "full".
extract() {
    grep -o '"name": "[^"]*"\(, "store": "[^"]*"\)\{0,1\}\(, "checkpoint_mode": "[^"]*"\)\{0,1\}, "ns_per_op": [0-9.e+]*' "$1" |
        sed -e 's/"name": "\([^"]*\)", "store": "\([^"]*\)", "checkpoint_mode": "\([^"]*\)", "ns_per_op": \([0-9.e+]*\)/\1 \4 \2 \3/' \
            -e 's/"name": "\([^"]*\)", "store": "\([^"]*\)", "ns_per_op": \([0-9.e+]*\)/\1 \3 \2 full/' \
            -e 's/"name": "\([^"]*\)", "ns_per_op": \([0-9.e+]*\)/\1 \2 mem full/'
}

extract "$baseline" | sort > "$workdir/base.txt"
extract "$fresh" | sort > "$workdir/new.txt"

# Series named by older committed records but absent from the newest
# baseline: a fresh benchmark matching one of these means the gate lost
# coverage when the baseline was re-recorded — worth a loud WARN.
: > "$workdir/older.txt"
while IFS= read -r f; do
    [[ "$f" == "$baseline" ]] && continue
    [[ -f "$f" ]] || continue
    case "$f" in *-dirty*) continue ;; esac
    extract "$f" | cut -d' ' -f1 >> "$workdir/older.txt"
done < <(git ls-files 'BENCH_*.json')
sort -u -o "$workdir/older.txt" "$workdir/older.txt"

# Hardware calibration ratio (fresh/baseline); 1 when either side lacks the
# calibration series (pre-calibration baselines), making normalization a
# no-op and the comparison exactly the old raw one.
base_cal="$(awk -v n="$cal_name" '$1 == n {print $2}' "$workdir/base.txt")"
fresh_cal="$(awk -v n="$cal_name" '$1 == n {print $2}' "$workdir/new.txt")"
ratio=1
if [[ -n "$base_cal" && -n "$fresh_cal" ]]; then
    ratio="$(awk -v f="$fresh_cal" -v b="$base_cal" 'BEGIN { printf "%.6f", f / b }')"
    echo "bench_compare: calibration ${base_cal} -> ${fresh_cal} ns/op — hardware ratio ${ratio}, normalizing"
else
    echo "bench_compare: WARNING: no calibration series in baseline and/or fresh run — raw comparison only (commit a baseline recorded with $cal_name)"
fi

awk -v tol="$tol" -v ratio="$ratio" -v cal="$cal_name" '
FILENAME == ARGV[1] { older[$1] = 1; next }
FILENAME == ARGV[2] { base[$1] = $2; bstore[$1] = $3; bmode[$1] = $4; next }
{
    if ($1 == cal) next # the yardstick measures hardware; never gate it
    # A mem-backed baseline says nothing about a file-backed run (and vice
    # versa): a series whose store kind changed under the same name must be
    # re-baselined, not compared. Refuse rather than misjudge.
    if (($1 in base) && bstore[$1] != $3) {
        printf "  STORE    %-55s baseline store %s, fresh store %s — refusing mem-vs-file comparison; commit a fresh baseline for the renamed series\n", $1, bstore[$1], $3
        bad++
        next
    }
    # Same rule one axis over: a full checkpoint rewrites all trusted state
    # where a delta appends O(dirty) bytes — their ns/op are not comparable,
    # so a series whose checkpoint mode changed under the same name is
    # refused rather than misjudged.
    if (($1 in base) && bmode[$1] != $4) {
        printf "  CKPTMODE %-55s baseline checkpoint mode %s, fresh mode %s — refusing full-vs-delta comparison; commit a fresh baseline for the renamed series\n", $1, bmode[$1], $4
        bad++
        next
    }
    if (!($1 in base)) {
        if ($1 in older)
            printf "  WARN     %-55s %12.1f ns/op — in an older committed record but not in the newest baseline; gate coverage lost until a fresh baseline is committed\n", $1, $2
        else
            printf "  NEW      %-55s %12.1f ns/op (no baseline)\n", $1, $2
        next
    }
    seen[$1] = 1
    # Wall-clock-paced series (slot-grid throughput) are judged raw: their
    # ns/op is pinned to timer periods, so CPU rescaling would manufacture
    # regressions on fast runners and mask real ones on slow runners.
    # Everything else is CPU-bound and judged calibration-normalized.
    paced = ($1 ~ /^Benchmark(Server|Cluster)Throughput\//) && ($1 !~ /unpaced/)
    eff = paced ? $2 : $2 / ratio
    view = paced ? "raw/paced" : "normalized"
    limit = base[$1] * (1 + tol / 100)
    delta = (base[$1] > 0) ? (eff / base[$1] - 1) * 100 : 0
    if (eff > limit) {
        printf "  REGRESS  %-55s %12.1f -> %12.1f ns/op (%s %+.1f%% > +%s%%)\n", $1, base[$1], $2, view, delta, tol
        bad++
    } else {
        printf "  ok       %-55s %12.1f -> %12.1f ns/op (%s %+.1f%%)\n", $1, base[$1], $2, view, delta
    }
}
END {
    for (n in base) if (!(n in seen) && n != cal) printf "  GONE     %-55s (in baseline, not in this run)\n", n
    if (bad > 0) {
        printf "bench_compare: %d benchmark(s) regressed beyond %s%%.\n", bad, tol
        printf "If intentional, re-run with BENCH_COMPARE_SKIP=1 and commit a fresh record via scripts/bench.sh.\n"
        exit 1
    }
    print "bench_compare: no regression beyond tolerance."
}
' "$workdir/older.txt" "$workdir/base.txt" "$workdir/new.txt"
