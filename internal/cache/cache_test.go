package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	// Table 1: L1 32 KB 4-way → 128 sets; L2 1 MB 16-way → 1024 sets.
	l1 := NewCache(32<<10, 4)
	if l1.Sets() != 128 || l1.Ways() != 4 {
		t.Fatalf("L1 geometry = %d sets × %d ways, want 128×4", l1.Sets(), l1.Ways())
	}
	l2 := NewCache(1<<20, 16)
	if l2.Sets() != 1024 || l2.Ways() != 16 {
		t.Fatalf("L2 geometry = %d sets × %d ways, want 1024×16", l2.Sets(), l2.Ways())
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache accepted non-power-of-two sets")
		}
	}()
	NewCache(3*64*4, 4) // 3 sets
}

func TestLookupMissThenHit(t *testing.T) {
	c := NewCache(1<<12, 2)
	if c.Lookup(7) {
		t.Fatal("empty cache hit")
	}
	c.Insert(7, false)
	if !c.Lookup(7) {
		t.Fatal("inserted line missed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(2*2*LineBytes, 2) // 2 sets × 2 ways
	// Fill set 0 (even line addresses) with lines 0 and 2.
	c.Insert(0, false)
	c.Insert(2, false)
	c.Lookup(0) // 0 is now MRU; 2 is LRU
	victim, dirty, evicted := c.Insert(4, false)
	if !evicted || victim != 2 || dirty {
		t.Fatalf("evicted (%d, dirty=%v, %v), want clean line 2", victim, dirty, evicted)
	}
	if !c.Lookup(0) || !c.Lookup(4) || c.Lookup(2) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := NewCache(1<<12, 2)
	c.Insert(5, false)
	if c.IsDirty(5) {
		t.Fatal("clean line reported dirty")
	}
	if !c.MarkDirty(5) {
		t.Fatal("MarkDirty failed on present line")
	}
	if !c.IsDirty(5) {
		t.Fatal("dirty bit lost")
	}
	if c.MarkDirty(99) {
		t.Fatal("MarkDirty succeeded on absent line")
	}
	wasDirty, present := c.Invalidate(5)
	if !wasDirty || !present {
		t.Fatal("Invalidate lost dirty state")
	}
	if c.Lookup(5) {
		t.Fatal("invalidated line still present")
	}
}

// flatPort is a MemoryPort stub with fixed latency and request logging.
type flatPort struct {
	latency    uint64
	fetches    []uint64
	writebacks []uint64
}

func (p *flatPort) Fetch(now uint64, lineAddr uint64) uint64 {
	p.fetches = append(p.fetches, lineAddr)
	return now + p.latency
}

func (p *flatPort) Writeback(now uint64, lineAddr uint64) uint64 {
	p.writebacks = append(p.writebacks, lineAddr)
	return now + p.latency
}

func newTestHierarchy() (*Hierarchy, *flatPort) {
	port := &flatPort{latency: 40}
	return NewHierarchy(DefaultConfig(), port), port
}

func TestLoadHitLatencies(t *testing.T) {
	h, port := newTestHierarchy()
	cfg := h.Config()
	// Cold load: L1D miss, L2 miss, memory.
	done := h.Load(0, 0x1000)
	wantCold := cfg.L1DHitLatency + cfg.L1DMissDetect + cfg.L2HitLatency + cfg.L2MissDetect + 40
	if done != wantCold {
		t.Fatalf("cold load done at %d, want %d", done, wantCold)
	}
	if len(port.fetches) != 1 {
		t.Fatalf("memory fetches = %d, want 1", len(port.fetches))
	}
	// Warm load: L1D hit.
	done2 := h.Load(1000, 0x1000)
	if done2 != 1000+cfg.L1DHitLatency {
		t.Fatalf("warm load done at %d, want %d", done2, 1000+cfg.L1DHitLatency)
	}
	if len(port.fetches) != 1 {
		t.Fatal("warm load went to memory")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h, port := newTestHierarchy()
	h.Load(0, 0x1000)
	// Evict 0x1000 from L1D by filling its set: L1D has 128 sets, so
	// lines at stride 128*64 bytes collide.
	base := uint64(0x1000)
	for i := uint64(1); i <= 4; i++ {
		h.Load(1000*i, base+i*128*64)
	}
	n := len(port.fetches)
	cfg := h.Config()
	done := h.Load(100000, base)
	if got := done - 100000; got != cfg.L1DHitLatency+cfg.L1DMissDetect+cfg.L2HitLatency {
		t.Fatalf("L2-hit load latency = %d, want %d", got, cfg.L1DHitLatency+cfg.L1DMissDetect+cfg.L2HitLatency)
	}
	if len(port.fetches) != n {
		t.Fatal("L2 hit went to memory")
	}
	st := h.Stats()
	if st.L2Hits == 0 {
		t.Fatal("no L2 hits recorded")
	}
}

func TestStoreMissUsesWriteBuffer(t *testing.T) {
	h, port := newTestHierarchy()
	// A store miss must return quickly (non-blocking) while the fetch
	// proceeds in the background.
	done := h.Store(0, 0x2000)
	if done != 1 {
		t.Fatalf("store done at %d, want 1 (non-blocking)", done)
	}
	if len(port.fetches) != 1 {
		t.Fatalf("store miss issued %d fetches, want 1", len(port.fetches))
	}
	if h.OutstandingStores(2) != 1 {
		t.Fatalf("outstanding stores = %d, want 1", h.OutstandingStores(2))
	}
}

func TestWriteBufferForwardsToLoads(t *testing.T) {
	h, _ := newTestHierarchy()
	h.Store(0, 0x2000)
	// A load to the same line before the fetch completes forwards from
	// the write buffer instead of issuing a second fetch.
	done := h.Load(5, 0x2000)
	st := h.Stats()
	if st.WBForwards != 1 {
		t.Fatalf("WB forwards = %d, want 1", st.WBForwards)
	}
	if done < 5 {
		t.Fatal("forwarded load completed in the past")
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	h, _ := newTestHierarchy()
	// Issue 9 store misses to distinct lines back to back: the 9th must
	// stall for the first to complete.
	for i := uint64(0); i < 8; i++ {
		if done := h.Store(i, 0x10000+i*64); done != i+1 {
			t.Fatalf("store %d blocked early (done %d)", i, done)
		}
	}
	done := h.Store(8, 0x90000)
	if done <= 9 {
		t.Fatalf("9th store did not stall: done at %d", done)
	}
	if h.Stats().WBStalls == 0 {
		t.Fatal("no WB stall cycles recorded")
	}
}

func TestConcurrentOutstandingMisses(t *testing.T) {
	// The Req 3 scenario (Fig 4): several store misses in flight at once.
	h, _ := newTestHierarchy()
	for i := uint64(0); i < 4; i++ {
		h.Store(i, 0x20000+i*64)
	}
	if got := h.OutstandingStores(5); got != 4 {
		t.Fatalf("outstanding stores = %d, want 4", got)
	}
}

func TestStoreHitMarksL1Dirty(t *testing.T) {
	h, port := newTestHierarchy()
	h.Load(0, 0x3000)
	h.Store(100, 0x3000)
	if len(port.fetches) != 1 {
		t.Fatal("store hit went to memory")
	}
	// Force the line out of L1D and then out of L2: its dirtiness must
	// produce exactly one writeback.
	for i := uint64(1); i <= 4; i++ {
		h.Load(1000*i, 0x3000+i*128*64) // evict from L1D (dirty folds to L2)
	}
	// Evict from L2: fill its set (1024 sets, stride 1024*64).
	for i := uint64(1); i <= 16; i++ {
		h.Load(100000*i, 0x3000+i*1024*64)
	}
	if len(port.writebacks) != 1 {
		t.Fatalf("writebacks = %d, want 1", len(port.writebacks))
	}
	if port.writebacks[0] != 0x3000/LineBytes {
		t.Fatalf("writeback line = %#x, want %#x", port.writebacks[0], 0x3000/LineBytes)
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	h, _ := newTestHierarchy()
	h.Load(0, 0x4000)
	// Evict the line from L2; inclusion requires it to leave L1D too.
	for i := uint64(1); i <= 16; i++ {
		h.Load(10000*i, 0x4000+i*1024*64)
	}
	st := h.Stats()
	before := st.L2Misses
	h.Load(1e9, 0x4000)
	if got := h.Stats().L2Misses; got != before+1 {
		t.Fatalf("re-load of back-invalidated line: L2Misses %d → %d, want miss", before, got)
	}
}

func TestFetchInstrPaths(t *testing.T) {
	h, port := newTestHierarchy()
	cfg := h.Config()
	done := h.FetchInstr(0, 0x8000)
	if done <= cfg.L1IHitLatency {
		t.Fatal("cold instruction fetch too fast")
	}
	if len(port.fetches) != 1 {
		t.Fatalf("I-fetch memory requests = %d, want 1", len(port.fetches))
	}
	done2 := h.FetchInstr(1000, 0x8000)
	if done2 != 1000+cfg.L1IHitLatency {
		t.Fatalf("warm I-fetch done at %d, want %d", done2, 1000+cfg.L1IHitLatency)
	}
	st := h.Stats()
	if st.L1IHits != 1 || st.L1IMisses != 1 {
		t.Fatalf("L1I stats = %+v", st)
	}
}

func TestFlushDrainsWriteBuffer(t *testing.T) {
	h, _ := newTestHierarchy()
	h.Store(0, 0x5000)
	end := h.Flush(1)
	if end < 1 {
		t.Fatal("flush finished in the past")
	}
	if h.OutstandingStores(end) != 0 {
		t.Fatal("write buffer not drained by Flush")
	}
	// The stored line must now be present and dirty in L1D (installed).
	if done := h.Load(end+10, 0x5000); done != end+10+h.Config().L1DHitLatency {
		t.Fatal("flushed line not installed in L1D")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{L1DHits: 1, L2Misses: 2, Writebacks: 3}
	b := Stats{L1DHits: 10, WBForwards: 5}
	a.Add(b)
	if a.L1DHits != 11 || a.L2Misses != 2 || a.Writebacks != 3 || a.WBForwards != 5 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestCacheFunctionalVsOracle(t *testing.T) {
	// Property: a cache is a subset-tracker — after any op sequence, a
	// Lookup hit implies the line was inserted and not since invalidated
	// by capacity. We check the weaker but useful invariant that the
	// cache never "hits" a line that was never inserted.
	c := NewCache(1<<10, 2)
	inserted := map[uint64]bool{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			line := uint64(op % 512)
			if op%3 == 0 {
				c.Insert(line, false)
				inserted[line] = true
			} else if c.Lookup(line) && !inserted[line] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
