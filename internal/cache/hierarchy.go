package cache

// Hierarchy wires L1I, L1D, the inclusive L2 (LLC), and the non-blocking
// write buffer into the access paths the core uses. Timing constants follow
// Table 1 ("hit+miss latencies"): an L1D hit costs 2 cycles plus 1 more to
// detect a miss; an L2 hit costs 10 plus 4 to detect a miss before the
// request leaves for main memory.
type Config struct {
	L1SizeBytes      int
	L1Ways           int
	L2SizeBytes      int
	L2Ways           int
	WriteBufEntries  int
	L1IHitLatency    uint64
	L1DHitLatency    uint64
	L1DMissDetect    uint64
	L2HitLatency     uint64
	L2MissDetect     uint64
	WBForwardLatency uint64
}

// DefaultConfig returns Table 1's hierarchy: 32 KB 4-way L1s, a 1 MB 16-way
// LLC, 8 write-buffer entries.
func DefaultConfig() Config {
	return Config{
		L1SizeBytes:      32 << 10,
		L1Ways:           4,
		L2SizeBytes:      1 << 20,
		L2Ways:           16,
		WriteBufEntries:  8,
		L1IHitLatency:    1,
		L1DHitLatency:    2,
		L1DMissDetect:    1,
		L2HitLatency:     10,
		L2MissDetect:     4,
		WBForwardLatency: 2,
	}
}

// wbEntry is one in-flight store miss: the line being fetched for ownership
// and when the fetch completes.
type wbEntry struct {
	lineAddr uint64
	doneAt   uint64
	valid    bool
}

// Hierarchy is the full on-chip memory system in front of a MemoryPort.
type Hierarchy struct {
	cfg  Config
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	mem  MemoryPort
	wb   []wbEntry
	stat Stats
}

// NewHierarchy builds an empty hierarchy over the given memory port.
func NewHierarchy(cfg Config, mem MemoryPort) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: NewCache(cfg.L1SizeBytes, cfg.L1Ways),
		l1d: NewCache(cfg.L1SizeBytes, cfg.L1Ways),
		l2:  NewCache(cfg.L2SizeBytes, cfg.L2Ways),
		mem: mem,
		wb:  make([]wbEntry, cfg.WriteBufEntries),
	}
}

// Stats returns a copy of the event counters.
func (h *Hierarchy) Stats() Stats { return h.stat }

// ResetStats zeroes the event counters, leaving cache contents and
// in-flight write-buffer entries untouched (end-of-warmup hook).
func (h *Hierarchy) ResetStats() { h.stat = Stats{} }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// drainWB retires write-buffer entries whose fetches completed by cycle now,
// installing their lines dirty into L1D/L2.
func (h *Hierarchy) drainWB(now uint64) {
	for i := range h.wb {
		if h.wb[i].valid && h.wb[i].doneAt <= now {
			h.installLine(h.wb[i].doneAt, h.wb[i].lineAddr, true)
			h.wb[i].valid = false
		}
	}
}

// wbLookup reports whether lineAddr is in flight in the write buffer.
func (h *Hierarchy) wbLookup(lineAddr uint64) (doneAt uint64, ok bool) {
	for i := range h.wb {
		if h.wb[i].valid && h.wb[i].lineAddr == lineAddr {
			return h.wb[i].doneAt, true
		}
	}
	return 0, false
}

// installLine inserts a line into L2 (inclusive) and L1D, handling
// evictions: L2 victims are back-invalidated from the L1s and written back
// to memory if dirty anywhere; L1D victims fold their dirty bit into L2.
func (h *Hierarchy) installLine(now uint64, lineAddr uint64, dirty bool) {
	if !h.l2.Lookup(lineAddr) {
		victim, victimDirty, evicted := h.l2.Insert(lineAddr, dirty)
		if evicted {
			// Inclusive LLC: remove the victim from both L1s.
			d1, _ := h.l1d.Invalidate(victim)
			h.l1i.Invalidate(victim)
			if victimDirty || d1 {
				h.stat.Writebacks++
				h.mem.Writeback(now, victim)
			}
		}
	} else if dirty {
		h.l2.MarkDirty(lineAddr)
	}
	if !h.l1d.Lookup(lineAddr) {
		victim, victimDirty, evicted := h.l1d.Insert(lineAddr, dirty)
		if evicted && victimDirty {
			// L2 is inclusive, so the victim is present there; fold the
			// dirty bit in.
			h.l2.MarkDirty(victim)
		}
	} else if dirty {
		h.l1d.MarkDirty(lineAddr)
	}
}

// fetchIntoL2 misses all the way to memory and installs the line in L2 only
// (instruction refills do not pollute L1D).
func (h *Hierarchy) fetchIntoL2(now uint64, lineAddr uint64) uint64 {
	done := h.mem.Fetch(now, lineAddr)
	victim, victimDirty, evicted := h.l2.Insert(lineAddr, false)
	if evicted {
		d1, _ := h.l1d.Invalidate(victim)
		h.l1i.Invalidate(victim)
		if victimDirty || d1 {
			h.stat.Writebacks++
			h.mem.Writeback(done, victim)
		}
	}
	return done
}

// Load performs a data load at byte address addr issued at cycle now and
// returns the cycle at which the value is available to the core. Loads are
// blocking (in-order core), but first check the write buffer for an
// in-flight line.
func (h *Hierarchy) Load(now uint64, addr uint64) uint64 {
	h.drainWB(now)
	lineAddr := addr / LineBytes

	if doneAt, ok := h.wbLookup(lineAddr); ok {
		// Forward from the in-flight store miss: data is available when
		// the fetch completes (or immediately if it already has).
		h.stat.WBForwards++
		t := now
		if doneAt > t {
			t = doneAt
		}
		return t + h.cfg.WBForwardLatency
	}

	if h.l1d.Lookup(lineAddr) {
		h.stat.L1DHits++
		return now + h.cfg.L1DHitLatency
	}
	h.stat.L1DMisses++
	t := now + h.cfg.L1DHitLatency + h.cfg.L1DMissDetect

	if h.l2.Lookup(lineAddr) {
		h.stat.L2Hits++
		t += h.cfg.L2HitLatency
		h.installLine(t, lineAddr, false)
		return t
	}
	h.stat.L2Misses++
	t += h.cfg.L2HitLatency + h.cfg.L2MissDetect
	done := h.mem.Fetch(t, lineAddr)
	h.installLine(done, lineAddr, false)
	return done
}

// Store performs a data store at byte address addr issued at cycle now and
// returns the cycle at which the core may proceed. Store hits update L1D;
// store misses allocate a write-buffer entry and return immediately unless
// the buffer is full, in which case the core stalls for the oldest entry.
func (h *Hierarchy) Store(now uint64, addr uint64) uint64 {
	h.drainWB(now)
	lineAddr := addr / LineBytes

	if h.l1d.Lookup(lineAddr) {
		h.stat.L1DHits++
		h.l1d.MarkDirty(lineAddr)
		return now + 1
	}
	if _, ok := h.wbLookup(lineAddr); ok {
		// Coalesce into the in-flight entry.
		h.stat.WBForwards++
		return now + 1
	}
	h.stat.L1DMisses++

	// L2 hit: pull the line into L1D dirty without a memory round trip.
	if h.l2.Lookup(lineAddr) {
		h.stat.L2Hits++
		h.installLine(now+h.cfg.L2HitLatency, lineAddr, true)
		return now + 1
	}
	h.stat.L2Misses++

	// Allocate a write-buffer entry; stall if full.
	start := now
	slot := -1
	for {
		var oldest uint64 = ^uint64(0)
		for i := range h.wb {
			if !h.wb[i].valid {
				slot = i
				break
			}
			if h.wb[i].doneAt < oldest {
				oldest = h.wb[i].doneAt
			}
		}
		if slot >= 0 {
			break
		}
		// Full: wait for the earliest completion, then drain and retry.
		h.stat.WBStalls += oldest - start
		start = oldest
		h.drainWB(start)
	}
	issue := start + h.cfg.L1DHitLatency + h.cfg.L1DMissDetect + h.cfg.L2HitLatency + h.cfg.L2MissDetect
	h.wb[slot] = wbEntry{lineAddr: lineAddr, doneAt: h.mem.Fetch(issue, lineAddr), valid: true}
	return start + 1
}

// FetchInstr performs an instruction fetch for the line containing pc at
// cycle now, returning the cycle the instruction bytes are available.
// Sequential fetch within a hit line is modeled as free by the caller; this
// is invoked once per line crossing.
func (h *Hierarchy) FetchInstr(now uint64, pc uint64) uint64 {
	lineAddr := pc / LineBytes
	if h.l1i.Lookup(lineAddr) {
		h.stat.L1IHits++
		return now + h.cfg.L1IHitLatency
	}
	h.stat.L1IMisses++
	t := now + h.cfg.L1IHitLatency
	if h.l2.Lookup(lineAddr) {
		h.stat.L2Hits++
		t += h.cfg.L2HitLatency
	} else {
		h.stat.L2Misses++
		t = h.fetchIntoL2(t+h.cfg.L2HitLatency+h.cfg.L2MissDetect, lineAddr)
	}
	victim, victimDirty, evicted := h.l1i.Insert(lineAddr, false)
	if evicted && victimDirty {
		h.l2.MarkDirty(victim)
	}
	return t
}

// OutstandingStores returns the number of in-flight write-buffer entries at
// cycle now (test hook for the Req 3 concurrency scenario of Fig 4).
func (h *Hierarchy) OutstandingStores(now uint64) int {
	n := 0
	for i := range h.wb {
		if h.wb[i].valid && h.wb[i].doneAt > now {
			n++
		}
	}
	return n
}

// Flush drains the write buffer and writes back every dirty LLC line,
// modeling program exit. It returns the cycle when memory is quiescent.
func (h *Hierarchy) Flush(now uint64) uint64 {
	end := now
	for i := range h.wb {
		if h.wb[i].valid {
			if h.wb[i].doneAt > end {
				end = h.wb[i].doneAt
			}
			h.installLine(h.wb[i].doneAt, h.wb[i].lineAddr, true)
			h.wb[i].valid = false
		}
	}
	return end
}
