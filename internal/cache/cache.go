// Package cache implements the on-chip memory hierarchy of Table 1: 32 KB
// 4-way L1 instruction and data caches, a 1 MB 16-way unified inclusive L2
// (the LLC), an 8-entry non-blocking write buffer, and LRU replacement.
// The hierarchy issues cache-line fetches and writebacks to a MemoryPort —
// the ORAM controller or the insecure DRAM controller — on LLC misses and
// dirty evictions, exactly the events that invoke ORAM in the paper (§3.1).
package cache

import (
	"fmt"
	"math/bits"
)

// LineBytes is the cache line (and ORAM block) size from Table 1.
const LineBytes = 64

// MemoryPort is the main-memory interface behind the LLC. Implementations
// (internal/core) are the ORAM rate enforcer, the unprotected baseline ORAM,
// and the flat-latency insecure DRAM.
type MemoryPort interface {
	// Fetch requests the cache line containing lineAddr (line-granular
	// address, i.e. byte address >> 6) at processor cycle now, returning
	// the cycle at which the line is available to the LLC.
	Fetch(now uint64, lineAddr uint64) uint64
	// Writeback enqueues a dirty line eviction at cycle now. The core
	// never waits for writebacks; the returned completion cycle is for
	// accounting.
	Writeback(now uint64, lineAddr uint64) uint64
}

// Stats counts hierarchy events for the performance and energy models.
type Stats struct {
	L1IHits    uint64
	L1IMisses  uint64
	L1DHits    uint64
	L1DMisses  uint64
	L2Hits     uint64
	L2Misses   uint64 // LLC misses = demand memory fetches
	Writebacks uint64 // dirty LLC evictions sent to memory
	WBForwards uint64 // loads served by the write buffer
	WBStalls   uint64 // cycles the core stalled on a full write buffer
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.L1IHits += other.L1IHits
	s.L1IMisses += other.L1IMisses
	s.L1DHits += other.L1DHits
	s.L1DMisses += other.L1DMisses
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.Writebacks += other.Writebacks
	s.WBForwards += other.WBForwards
	s.WBStalls += other.WBStalls
}

// set-associative cache with LRU. Lines are identified by line address
// (byte addr / LineBytes). Valid entries have tag != invalidTag.
const invalidTag = ^uint64(0)

type Cache struct {
	sets     int
	ways     int
	setShift uint // log2(sets)
	tags     []uint64
	dirty    []bool
	lruTick  []uint64
	tick     uint64
}

// NewCache builds a cache of the given total size and associativity.
// Size must be a power-of-two multiple of ways*LineBytes.
func NewCache(sizeBytes, ways int) *Cache {
	lines := sizeBytes / LineBytes
	if lines <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache: %d bytes / %d ways is not line-divisible", sizeBytes, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a power of two", sets))
	}
	c := &Cache{
		sets:     sets,
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(sets))),
		tags:     make([]uint64, sets*ways),
		dirty:    make([]bool, sets*ways),
		lruTick:  make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Sets returns the number of sets (test hook).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity (test hook).
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(lineAddr uint64) int {
	return int(lineAddr & uint64(c.sets-1))
}

// Lookup probes for lineAddr, updating LRU on hit.
func (c *Cache) Lookup(lineAddr uint64) bool {
	base := c.setOf(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == lineAddr {
			c.tick++
			c.lruTick[base+w] = c.tick
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit of a present line; it reports whether the
// line was found.
func (c *Cache) MarkDirty(lineAddr uint64) bool {
	base := c.setOf(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == lineAddr {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// IsDirty reports whether a present line is dirty (test hook).
func (c *Cache) IsDirty(lineAddr uint64) bool {
	base := c.setOf(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == lineAddr {
			return c.dirty[base+w]
		}
	}
	return false
}

// Insert installs lineAddr (which must not be present), evicting the LRU
// way if the set is full. It returns the evicted line and its dirty bit.
func (c *Cache) Insert(lineAddr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	base := c.setOf(lineAddr) * c.ways
	way := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == invalidTag {
			way = w
			evicted = false
			break
		}
		if c.lruTick[base+w] < oldest {
			oldest = c.lruTick[base+w]
			way = w
		}
	}
	if c.tags[base+way] != invalidTag {
		victim = c.tags[base+way]
		victimDirty = c.dirty[base+way]
		evicted = true
	}
	c.tick++
	c.tags[base+way] = lineAddr
	c.dirty[base+way] = dirty
	c.lruTick[base+way] = c.tick
	return victim, victimDirty, evicted
}

// Invalidate removes lineAddr if present, returning its dirty bit.
func (c *Cache) Invalidate(lineAddr uint64) (wasDirty, wasPresent bool) {
	base := c.setOf(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == lineAddr {
			wasDirty = c.dirty[base+w]
			c.tags[base+w] = invalidTag
			c.dirty[base+w] = false
			return wasDirty, true
		}
	}
	return false, false
}
