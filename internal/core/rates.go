// Package core implements the paper's contribution: a leakage-aware ORAM
// controller frontend that (i) enforces a strictly periodic ORAM access
// schedule with indistinguishable dummy accesses, (ii) changes the rate
// only at geometrically growing epoch boundaries, choosing from a small
// public set R, and (iii) learns a good rate per epoch from three hardware
// performance counters (§2, §6, §7). The package also provides the
// baseline memory controllers the paper evaluates against (§9.1.6).
package core

import (
	"fmt"
	"math"
)

// Paper rate-set bounds (§9.2): rates below ~200 destabilize memory-bound
// workloads; rates above ~30000 idle even compute-bound ones.
const (
	// MinRate is the fastest allowed ORAM rate in cycles (§9.2).
	MinRate = 256
	// MaxRate is the slowest allowed ORAM rate in cycles (§9.2).
	MaxRate = 32768
	// InitialRate is used during the first epoch, before the learner has
	// data (§9.2: "During the first epoch, we set the rate to 10000").
	InitialRate = 10000
)

// LogSpacedRates returns n candidate rates between lo and hi inclusive,
// spaced evenly on a log scale (§9.2). For n=4 and the paper bounds this
// yields {256, 1290, 6501, 32768}. n=1 returns {lo}.
func LogSpacedRates(n int, lo, hi uint64) ([]uint64, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("core: rate count must be ≥ 1, got %d", n)
	case lo == 0 || hi < lo:
		return nil, fmt.Errorf("core: invalid rate bounds [%d, %d]", lo, hi)
	}
	if n == 1 {
		return []uint64{lo}, nil
	}
	out := make([]uint64, n)
	ratio := float64(hi) / float64(lo)
	for i := 0; i < n; i++ {
		out[i] = uint64(math.Round(float64(lo) * math.Pow(ratio, float64(i)/float64(n-1))))
	}
	out[0], out[n-1] = lo, hi
	return out, nil
}

// PaperRates returns the §9.2 rate set for the given |R|.
func PaperRates(n int) []uint64 {
	r, err := LogSpacedRates(n, MinRate, MaxRate)
	if err != nil {
		panic(err)
	}
	return r
}

// Discretize maps a raw predicted interval to the nearest candidate rate by
// absolute distance (§7.1.3): NewInt = argmin_{r∈R} |NewIntRaw − r|.
// rates must be non-empty and sorted ascending. Ties choose the smaller
// (faster) rate, matching a ≤ comparison in a sequential hardware scan.
func Discretize(raw uint64, rates []uint64) uint64 {
	best := rates[0]
	bestDist := absDiff(raw, rates[0])
	for _, r := range rates[1:] {
		if d := absDiff(raw, r); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

// DiscretizeLog is the ablation variant (DESIGN.md ✦): distance measured in
// log space, which respects the geometric spacing of R.
func DiscretizeLog(raw uint64, rates []uint64) uint64 {
	if raw == 0 {
		return rates[0]
	}
	lr := math.Log2(float64(raw))
	best := rates[0]
	bestDist := math.Abs(lr - math.Log2(float64(rates[0])))
	for _, r := range rates[1:] {
		if d := math.Abs(lr - math.Log2(float64(r))); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
