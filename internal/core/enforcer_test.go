package core

import (
	"reflect"
	"testing"
)

// Test constants chosen small so hand-computed traces stay readable.
const (
	tOLAT = 100
	tRate = 50
)

func staticEnforcer(t *testing.T, rate uint64) *Enforcer {
	t.Helper()
	e, err := NewEnforcer(EnforcerConfig{
		ORAMLatency: tOLAT,
		Rates:       []uint64{rate},
		InitialRate: rate,
		RecordSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnforcerConfigValidate(t *testing.T) {
	good := EnforcerConfig{ORAMLatency: 10, Rates: []uint64{5, 10}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []EnforcerConfig{
		{ORAMLatency: 0, Rates: []uint64{5}},
		{ORAMLatency: 10, Rates: nil},
		{ORAMLatency: 10, Rates: []uint64{5, 5}},
		{ORAMLatency: 10, Rates: []uint64{9, 5}},
		{ORAMLatency: 10, Rates: []uint64{5}, Schedule: EpochSchedule{FirstLen: 0, Growth: 2}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, cfg)
		}
	}
}

func TestFirstSlotOpensAfterOneRate(t *testing.T) {
	e := staticEnforcer(t, tRate)
	// A request at cycle 0 is served by the first slot at cycle rate.
	done := e.Fetch(0, 1)
	if done != tRate+tOLAT {
		t.Fatalf("first fetch done at %d, want %d", done, tRate+tOLAT)
	}
}

func TestSlotGridIsPeriodic(t *testing.T) {
	e := staticEnforcer(t, tRate)
	// Back-to-back demands occupy consecutive slots: each starts exactly
	// rate cycles after the previous completes (§2.1's definition).
	var prevDone uint64
	for i := 0; i < 5; i++ {
		done := e.Fetch(prevDone, uint64(i))
		if done != prevDone+tRate+tOLAT {
			t.Fatalf("access %d done at %d, want %d", i, done, prevDone+tRate+tOLAT)
		}
		prevDone = done
	}
	starts := SlotStarts(e.Slots())
	for i := 1; i < len(starts); i++ {
		if starts[i]-starts[i-1] != tRate+tOLAT {
			t.Fatalf("slot %d gap = %d, want %d", i, starts[i]-starts[i-1], tRate+tOLAT)
		}
	}
}

func TestIdleGapFillsWithDummies(t *testing.T) {
	e := staticEnforcer(t, tRate)
	// No requests until cycle 1000: slots at 50, 200, 350, ... fire as
	// dummies. Slots with start < 1000: 50+150k < 1000 → k ≤ 6 → 7 slots.
	done := e.Fetch(1000, 1)
	st := e.Stats()
	if st.DummyAccesses != 7 {
		t.Fatalf("dummy accesses = %d, want 7", st.DummyAccesses)
	}
	// 7th dummy: start 950, completes 1050; demand slot at 1100.
	if done != 1100+tOLAT {
		t.Fatalf("fetch done at %d, want %d", done, 1100+tOLAT)
	}
}

func TestFig4Req1OversetRate(t *testing.T) {
	// Req 1 (Fig 4): the rate is overset — a request arrives while ORAM
	// idles waiting for the slot; Waste grows by the wait (≤ r).
	e := staticEnforcer(t, 1000)
	// First slot at 1000. Request arrives at 400: waits 600.
	e.Fetch(400, 1)
	c := e.CountersNow()
	if c.Waste != 600 {
		t.Fatalf("Waste = %d, want 600", c.Waste)
	}
	if c.AccessCount != 1 {
		t.Fatalf("AccessCount = %d, want 1", c.AccessCount)
	}
	if c.ORAMCycles != tOLAT {
		t.Fatalf("ORAMCycles = %d, want %d", c.ORAMCycles, tOLAT)
	}
}

func TestFig4Req2UndersetRate(t *testing.T) {
	// Req 2 (Fig 4): the rate is underset — the request arrives while a
	// dummy is in flight and must wait for the dummy plus the next gap.
	e := staticEnforcer(t, tRate)
	// Dummy slot at 50 runs [50,150). Request at cycle 60:
	// waits through the dummy (90 cycles) plus the rate gap (50).
	done := e.Fetch(60, 1)
	if done != 200+tOLAT {
		t.Fatalf("fetch done at %d, want %d (slot 200)", done, 200+tOLAT)
	}
	c := e.CountersNow()
	if c.Waste != 140 {
		t.Fatalf("Waste = %d, want 140 (dummy remainder 90 + gap 50)", c.Waste)
	}
	if st := e.Stats(); st.DummyAccesses != 1 {
		t.Fatalf("dummies = %d, want 1", st.DummyAccesses)
	}
}

func TestFig4Req3MultipleOutstanding(t *testing.T) {
	// Req 3 (Fig 4): multiple outstanding misses are served back to back.
	// Waste uses wall-clock semantics — overlapping waits are not double
	// counted, so the queued request adds exactly the rate's cycle value
	// ("we add the rate's cycle value to Waste", §7.1.1).
	e := staticEnforcer(t, tRate)
	d1 := e.Fetch(0, 1) // slot 50, done 150
	if d1 != 150 {
		t.Fatalf("first done = %d, want 150", d1)
	}
	// Second request issued at cycle 10, while the first is pending: it
	// gets the next slot at 200.
	d2 := e.Fetch(10, 2)
	if d2 != 300 {
		t.Fatalf("second done = %d, want 300", d2)
	}
	c := e.CountersNow()
	// Waste: req1's wait [0,50) = 50, plus the rate gap [150,200) = 50.
	// The overlap of req2's queueing with req1's wait/service is not
	// recounted.
	if c.Waste != 50+tRate {
		t.Fatalf("Waste = %d, want %d", c.Waste, 50+tRate)
	}
	if c.AccessCount != 2 {
		t.Fatalf("AccessCount = %d, want 2", c.AccessCount)
	}
}

func TestWritebacksAbsorbedWithoutSlots(t *testing.T) {
	// Dirty evictions are absorbed into the controller stash ([26]-style)
	// and cost no slots: they neither delay demands nor displace dummies.
	e := staticEnforcer(t, tRate)
	if done := e.Writeback(0, 7); done != 0 {
		t.Fatalf("writeback completion = %d, want immediate (0)", done)
	}
	e.Writeback(10, 8)
	e.Sync(1000)
	st := e.Stats()
	if st.WritebacksDone != 2 {
		t.Fatalf("writebacks done = %d, want 2", st.WritebacksDone)
	}
	// All slots before cycle 1000 remain dummies: 50+150k < 1000 → 7.
	if st.DummyAccesses != 7 {
		t.Fatalf("dummies = %d, want 7", st.DummyAccesses)
	}
	if st.RealAccesses != 0 {
		t.Fatalf("real accesses = %d, want 0 (writebacks are not accesses)", st.RealAccesses)
	}
	// Waste is untouched: absorbed writebacks are not queued work.
	if c := e.CountersNow(); c.Waste != 0 || c.AccessCount != 0 {
		t.Fatalf("counters disturbed by writebacks: %+v", c)
	}
}

func TestWritebackDoesNotDelayDemand(t *testing.T) {
	e := staticEnforcer(t, tRate)
	e.Writeback(0, 7)
	// The demand still gets the very first slot.
	if done := e.Fetch(0, 1); done != 150 {
		t.Fatalf("demand done = %d, want 150", done)
	}
	st := e.Stats()
	if st.WritebacksDone != 1 || st.DemandServed != 1 {
		t.Fatalf("stats = %+v, want 1 demand + 1 absorbed writeback", st)
	}
}

func TestEpochTransitionChangesRate(t *testing.T) {
	// Epoch 0 is busy (fast offered load) → learner picks a fast rate.
	e, err := NewEnforcer(EnforcerConfig{
		ORAMLatency: tOLAT,
		Rates:       []uint64{64, 512, 4096},
		InitialRate: 512,
		Schedule:    EpochSchedule{FirstLen: 10000, Growth: 2},
		RecordSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Issue demands back to back through epoch 0 (length 10000).
	var done uint64
	for done < 12000 {
		done = e.Fetch(done, 1)
	}
	if e.Epoch() == 0 {
		t.Fatal("no epoch transition after crossing the boundary")
	}
	hist := e.RateChanges()
	if len(hist) < 2 {
		t.Fatalf("rate history %v, want ≥ 2 entries", hist)
	}
	// Offered load ≈ back-to-back: gap per access ≈ rate (512) with
	// waste ≈ rate... the learner must select a fast rate (64 or 512),
	// definitely not 4096.
	if hist[1].Rate == 4096 {
		t.Fatalf("busy epoch selected slowest rate %d", hist[1].Rate)
	}
	// Membership in R.
	found := false
	for _, r := range []uint64{64, 512, 4096} {
		if hist[1].Rate == r {
			found = true
		}
	}
	if !found {
		t.Fatalf("selected rate %d not in R", hist[1].Rate)
	}
}

func TestIdleEpochSelectsSlowestRate(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{
		ORAMLatency: tOLAT,
		Rates:       []uint64{64, 512, 4096},
		InitialRate: 512,
		Schedule:    EpochSchedule{FirstLen: 10000, Growth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No requests at all; sync past the first boundary.
	e.Sync(30000)
	hist := e.RateChanges()
	if len(hist) < 2 {
		t.Fatalf("no transition recorded: %v", hist)
	}
	if hist[1].Rate != 4096 {
		t.Fatalf("idle epoch selected %d, want slowest 4096", hist[1].Rate)
	}
}

func TestTransitionsAtFixedCycles(t *testing.T) {
	// Epoch boundaries are clock events: their cycles must match the
	// schedule regardless of load.
	sched := EpochSchedule{FirstLen: 5000, Growth: 2}
	mk := func(busy bool) []RateChange {
		e, err := NewEnforcer(EnforcerConfig{
			ORAMLatency: tOLAT,
			Rates:       []uint64{64, 4096},
			InitialRate: 512,
			Schedule:    sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		if busy {
			var done uint64
			for done < 40000 {
				done = e.Fetch(done, 1)
			}
		} else {
			e.Sync(40000)
		}
		return e.RateChanges()
	}
	busyHist := mk(true)
	idleHist := mk(false)
	if len(busyHist) != len(idleHist) {
		t.Fatalf("epoch counts differ: busy %d vs idle %d", len(busyHist), len(idleHist))
	}
	for i := range busyHist {
		if busyHist[i].Cycle != idleHist[i].Cycle {
			t.Fatalf("boundary %d differs: busy %d vs idle %d", i, busyHist[i].Cycle, idleHist[i].Cycle)
		}
		if busyHist[i].Cycle != 0 && busyHist[i].Cycle != sched.Boundary(i-1) {
			t.Fatalf("boundary %d at cycle %d, want %d", i, busyHist[i].Cycle, sched.Boundary(i-1))
		}
	}
}

func TestSlotTraceIsDataIndependent(t *testing.T) {
	// THE security property (§2.1): given the same rate sequence, the
	// enforced access times are identical no matter what the program does.
	// With |R| = 1 the rate sequence is forced, so two very different
	// request streams must produce byte-identical slot traces.
	run := func(pattern func(e *Enforcer)) []uint64 {
		e, err := NewEnforcer(EnforcerConfig{
			ORAMLatency: tOLAT,
			Rates:       []uint64{tRate},
			InitialRate: tRate,
			Schedule:    EpochSchedule{FirstLen: 7000, Growth: 2},
			RecordSlots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		pattern(e)
		e.Sync(50000)
		return SlotStarts(e.Slots())
	}
	heavy := run(func(e *Enforcer) {
		var done uint64
		for done < 45000 {
			done = e.Fetch(done, done)
		}
	})
	sparse := run(func(e *Enforcer) {
		e.Fetch(3000, 1)
		e.Writeback(9000, 2)
		e.Fetch(31000, 3)
	})
	idle := run(func(e *Enforcer) {})
	if !reflect.DeepEqual(heavy, sparse) || !reflect.DeepEqual(heavy, idle) {
		t.Fatalf("slot traces differ across programs:\nheavy:  %d slots\nsparse: %d slots\nidle:   %d slots",
			len(heavy), len(sparse), len(idle))
	}
}

func TestSlotTraceMatchesPrediction(t *testing.T) {
	// The recorded trace must equal the analytic reconstruction from the
	// rate-change history alone (PredictSlots) — the executable form of
	// "leakage = choice of rate sequence, nothing else".
	e, err := NewEnforcer(EnforcerConfig{
		ORAMLatency: tOLAT,
		Rates:       []uint64{64, 512, 4096},
		InitialRate: 777,
		Schedule:    EpochSchedule{FirstLen: 4000, Growth: 2},
		RecordSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Irregular request pattern to exercise transitions under load.
	times := []uint64{100, 150, 3000, 3010, 9000, 15000, 15001, 29000}
	for _, tm := range times {
		e.Fetch(tm, tm)
	}
	e.Sync(60000)
	got := SlotStarts(e.Slots())
	want := PredictSlots(e.RateChanges(), tOLAT, 60000)
	// PredictSlots covers slots with start < until; the enforcer may have
	// recorded a served demand at a slot ≥ 60000 (none here since Sync
	// stops early); compare prefix of equal length.
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: recorded %d, predicted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: recorded %d, predicted %d", i, got[i], want[i])
		}
	}
}

func TestDummyFractionAccounting(t *testing.T) {
	e := staticEnforcer(t, tRate)
	e.Fetch(0, 1)
	e.Sync(1000) // several dummies follow
	st := e.Stats()
	if st.TotalAccesses() != st.RealAccesses+st.DummyAccesses {
		t.Fatal("TotalAccesses inconsistent")
	}
	if f := st.DummyFraction(); f <= 0 || f >= 1 {
		t.Fatalf("DummyFraction = %v, want in (0,1)", f)
	}
	if (Stats{}).DummyFraction() != 0 {
		t.Fatal("empty stats DummyFraction should be 0")
	}
}

func TestStaticEnforcerNeverTransitions(t *testing.T) {
	e := staticEnforcer(t, 300)
	var done uint64
	for done < 200000 {
		done = e.Fetch(done, 1)
	}
	if e.Epoch() != 0 {
		t.Fatalf("static enforcer advanced to epoch %d", e.Epoch())
	}
	if len(e.RateChanges()) != 1 {
		t.Fatalf("static enforcer has %d rate changes", len(e.RateChanges()))
	}
	if e.Rate() != 300 {
		t.Fatalf("static rate drifted to %d", e.Rate())
	}
}

func TestDefaultInitialRateIsSlowest(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{ORAMLatency: 10, Rates: []uint64{5, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rate() != 50 {
		t.Fatalf("default initial rate = %d, want 50", e.Rate())
	}
}

func TestFlatMemoryBaseline(t *testing.T) {
	m := NewFlatMemory(40)
	if done := m.Fetch(100, 1); done != 140 {
		t.Fatalf("flat fetch done = %d, want 140", done)
	}
	if done := m.Writeback(100, 1); done != 140 {
		t.Fatalf("flat writeback done = %d, want 140", done)
	}
	if m.LineTransfers() != 2 {
		t.Fatalf("line transfers = %d, want 2", m.LineTransfers())
	}
}

func TestUnshieldedORAMSerializes(t *testing.T) {
	o := NewUnshieldedORAM(1488)
	o.RecordSlots = true
	d1 := o.Fetch(0, 1)
	if d1 != 1488 {
		t.Fatalf("first done = %d, want 1488", d1)
	}
	// Second request at 10 waits for the ORAM to free up: back-to-back,
	// no rate gap, no dummies.
	d2 := o.Fetch(10, 2)
	if d2 != 2976 {
		t.Fatalf("second done = %d, want 2976", d2)
	}
	o.Writeback(10, 3)
	st := o.Stats()
	if st.RealAccesses != 2 || st.DummyAccesses != 0 {
		t.Fatalf("stats = %+v, want 2 real / 0 dummy", st)
	}
	if st.WritebacksDone != 1 {
		t.Fatalf("writebacks = %d, want 1 (absorbed)", st.WritebacksDone)
	}
	if len(o.Slots()) != 2 {
		t.Fatalf("slots = %d, want 2", len(o.Slots()))
	}
	// Timing directly reflects request arrivals — the §1.1.1 leak.
	if o.Slots()[0].Start != 0 || o.Slots()[1].Start != 1488 {
		t.Fatalf("unexpected starts: %v", o.Slots())
	}
}

func TestPredictSlotsEmptyInputs(t *testing.T) {
	if got := PredictSlots(nil, 10, 100); got != nil {
		t.Fatalf("PredictSlots(nil) = %v, want nil", got)
	}
	if got := PredictSlots([]RateChange{{Rate: 5}}, 0, 100); got != nil {
		t.Fatalf("PredictSlots(olat=0) = %v, want nil", got)
	}
}
