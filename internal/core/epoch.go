package core

import (
	"fmt"
)

// EpochSchedule is a geometric epoch family (§6.2): epoch i+1 is Growth
// times as long as epoch i, starting from FirstLen cycles. Growth = 2 is
// the paper's "epoch doubling"; the evaluated configurations use growth
// factors 2, 4, 8 and 16 (dynamic_R4_E2 … dynamic_R4_E16).
type EpochSchedule struct {
	// FirstLen is the length of epoch 0 in cycles. The paper uses 2^30;
	// simulations scale this down (see DESIGN.md substitution #4) without
	// changing leakage accounting, which always uses the paper constants.
	FirstLen uint64
	// Growth is the length multiplier between consecutive epochs (≥ 2 for
	// O(lg Tmax) leakage; 1 would mean fixed-size epochs).
	Growth uint64
}

// Validate reports whether the schedule is usable.
func (e EpochSchedule) Validate() error {
	if e.FirstLen == 0 {
		return fmt.Errorf("core: epoch FirstLen must be positive")
	}
	if e.Growth < 2 {
		return fmt.Errorf("core: epoch Growth must be ≥ 2, got %d", e.Growth)
	}
	return nil
}

// Boundary returns the cycle at which epoch i ends (exclusive), i.e. the
// cumulative length of epochs 0..i. Saturates at the maximum uint64 to
// behave as "never" once the geometric sum overflows.
func (e EpochSchedule) Boundary(i int) uint64 {
	var sum, length uint64 = 0, e.FirstLen
	for k := 0; k <= i; k++ {
		if sum+length < sum { // overflow
			return ^uint64(0)
		}
		sum += length
		if length > (^uint64(0))/e.Growth {
			length = ^uint64(0)
		} else {
			length *= e.Growth
		}
	}
	return sum
}

// Length returns the length of epoch i in cycles (saturating).
func (e EpochSchedule) Length(i int) uint64 {
	length := e.FirstLen
	for k := 0; k < i; k++ {
		if length > (^uint64(0))/e.Growth {
			return ^uint64(0)
		}
		length *= e.Growth
	}
	return length
}

// EpochsWithin returns |E|, the number of epochs expended within a runtime
// of tmax cycles, using the paper's accounting convention (Example 6.1):
// the count is the smallest n with FirstLen·Growthⁿ ≥ tmax, i.e.
// ⌈log_Growth(tmax/FirstLen)⌉. With FirstLen = 2^30 and tmax = 2^62 this
// gives 32 epochs for doubling, 16 for ×4 growth, 11 for ×8 and 8 for ×16 —
// exactly the |E| values behind the paper's leakage numbers (§6.1, §9.5).
// (A geometric-sum count would add one final partial epoch; the paper
// truncates it at Tmax.)
func (e EpochSchedule) EpochsWithin(tmax uint64) int {
	if tmax <= e.FirstLen {
		return 1
	}
	n := 0
	length := e.FirstLen
	for length < tmax {
		n++
		if length > (^uint64(0))/e.Growth {
			break
		}
		length *= e.Growth
	}
	return n
}

// PaperSchedule returns the leakage-accounting schedule of the paper:
// first epoch 2^30 cycles with the given growth factor.
func PaperSchedule(growth uint64) EpochSchedule {
	return EpochSchedule{FirstLen: 1 << 30, Growth: growth}
}

// PaperTmax is the maximum program runtime the paper fixes for leakage
// accounting: 2^62 cycles ≈ 150 years at 1 GHz (§5).
const PaperTmax = uint64(1) << 62
