package core

import (
	"math/rand"
	"testing"
)

// refEnforcer is a deliberately naive reference implementation of the slot
// clock: it advances one slot at a time with no bulk arithmetic and no
// lazy epoch handling. The production Enforcer must agree with it exactly
// on slot starts, dummy counts and counters for any request pattern
// (DESIGN.md: "an equivalence test checks it against a slot-by-slot
// reference").
type refEnforcer struct {
	olat     uint64
	rates    []uint64
	rate     uint64
	sched    EpochSchedule
	lastEnd  uint64
	epoch    int
	epochEnd uint64
	epochLen uint64
	pred     Predictor
	disc     Discretizer
	counters Counters
	covered  uint64
	slots    []Slot
}

func newRefEnforcer(cfg EnforcerConfig) *refEnforcer {
	r := &refEnforcer{
		olat:  cfg.ORAMLatency,
		rates: cfg.Rates,
		rate:  cfg.InitialRate,
		sched: cfg.Schedule,
		pred:  cfg.Predictor,
		disc:  cfg.Discretizer,
	}
	if cfg.Static() {
		r.epochEnd = ^uint64(0)
		r.epochLen = ^uint64(0)
	} else {
		r.epochEnd = cfg.Schedule.Boundary(0)
		r.epochLen = cfg.Schedule.Length(0)
	}
	return r
}

func (r *refEnforcer) transition() {
	for r.lastEnd >= r.epochEnd {
		raw := r.pred.Predict(r.epochLen, r.counters)
		r.rate = r.disc.Apply(raw, r.rates)
		r.counters.Reset()
		r.epoch++
		r.epochLen = r.sched.Length(r.epoch)
		r.epochEnd = r.sched.Boundary(r.epoch)
	}
}

// advance processes dummy slots one at a time until the next slot start
// would be ≥ t.
func (r *refEnforcer) advance(t uint64) {
	for {
		r.transition()
		slot := r.lastEnd + r.rate
		if slot >= t {
			return
		}
		r.slots = append(r.slots, Slot{Start: slot, Kind: SlotDummy})
		r.lastEnd = slot + r.olat
	}
}

func (r *refEnforcer) fetch(now uint64) uint64 {
	r.advance(now)
	slot := r.lastEnd + r.rate
	from := now
	if r.covered > from {
		from = r.covered
	}
	if slot > from {
		r.counters.Waste += slot - from
	}
	r.covered = slot + r.olat
	r.counters.AccessCount++
	r.counters.ORAMCycles += r.olat
	r.slots = append(r.slots, Slot{Start: slot, Kind: SlotDemand})
	r.lastEnd = slot + r.olat
	return r.lastEnd
}

func TestEnforcerMatchesSlotBySlotReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		cfg := EnforcerConfig{
			ORAMLatency: uint64(50 + rng.Intn(200)),
			Rates:       []uint64{32, 256, 2048},
			InitialRate: uint64(100 + rng.Intn(2000)),
			Schedule:    EpochSchedule{FirstLen: uint64(2000 + rng.Intn(8000)), Growth: uint64(2 + rng.Intn(3))},
			RecordSlots: true,
		}
		e, err := NewEnforcer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefEnforcer(cfg)

		// Random request pattern with idle gaps long enough to force
		// bulk-dummy processing across epoch boundaries.
		var now uint64
		for i := 0; i < 60; i++ {
			now += uint64(rng.Intn(20000))
			d1 := e.Fetch(now, uint64(i))
			d2 := ref.fetch(now)
			if d1 != d2 {
				t.Fatalf("trial %d req %d: completion %d vs ref %d", trial, i, d1, d2)
			}
			if e.CountersNow() != ref.counters {
				t.Fatalf("trial %d req %d: counters %+v vs ref %+v", trial, i, e.CountersNow(), ref.counters)
			}
			now = d1
		}
		end := now + uint64(rng.Intn(100000))
		e.Sync(end)
		ref.advance(end)

		got, want := e.Slots(), ref.slots
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d slots vs ref %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d slot %d: %+v vs ref %+v", trial, i, got[i], want[i])
			}
		}
	}
}
