package core

import (
	"testing"
)

func TestEpochScheduleValidate(t *testing.T) {
	if err := (EpochSchedule{FirstLen: 1 << 20, Growth: 2}).Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := (EpochSchedule{FirstLen: 0, Growth: 2}).Validate(); err == nil {
		t.Fatal("accepted zero FirstLen")
	}
	if err := (EpochSchedule{FirstLen: 1, Growth: 1}).Validate(); err == nil {
		t.Fatal("accepted Growth=1")
	}
}

func TestEpochDoublingBoundaries(t *testing.T) {
	// Epoch doubling from 8: lengths 8, 16, 32 → boundaries 8, 24, 56.
	s := EpochSchedule{FirstLen: 8, Growth: 2}
	wantLen := []uint64{8, 16, 32, 64}
	wantBound := []uint64{8, 24, 56, 120}
	for i := range wantLen {
		if got := s.Length(i); got != wantLen[i] {
			t.Errorf("Length(%d) = %d, want %d", i, got, wantLen[i])
		}
		if got := s.Boundary(i); got != wantBound[i] {
			t.Errorf("Boundary(%d) = %d, want %d", i, got, wantBound[i])
		}
	}
}

func TestEpochsWithinPaperConfigs(t *testing.T) {
	// Example 6.1 and §9.3/§9.5: with first epoch 2^30 and Tmax = 2^62,
	// doubling expends 32 epochs; ×4 growth 16; ×8 growth 11; ×16 growth 8.
	cases := []struct {
		growth uint64
		want   int
	}{
		{2, 32}, {4, 16}, {8, 11}, {16, 8},
	}
	for _, tc := range cases {
		got := PaperSchedule(tc.growth).EpochsWithin(PaperTmax)
		if got != tc.want {
			t.Errorf("growth %d: EpochsWithin(2^62) = %d, want %d", tc.growth, got, tc.want)
		}
	}
}

func TestEpochsWithinSmallRuntime(t *testing.T) {
	s := EpochSchedule{FirstLen: 100, Growth: 2}
	if got := s.EpochsWithin(1); got != 1 {
		t.Fatalf("EpochsWithin(1) = %d, want 1", got)
	}
	if got := s.EpochsWithin(100); got != 1 {
		t.Fatalf("EpochsWithin(100) = %d, want 1", got)
	}
	// Paper convention: smallest n with FirstLen·2ⁿ ≥ tmax.
	if got := s.EpochsWithin(101); got != 1 {
		t.Fatalf("EpochsWithin(101) = %d, want 1", got)
	}
	if got := s.EpochsWithin(201); got != 2 {
		t.Fatalf("EpochsWithin(201) = %d, want 2", got)
	}
	if got := s.EpochsWithin(400); got != 2 {
		t.Fatalf("EpochsWithin(400) = %d, want 2", got)
	}
	if got := s.EpochsWithin(401); got != 3 {
		t.Fatalf("EpochsWithin(401) = %d, want 3", got)
	}
}

func TestEpochOverflowSaturates(t *testing.T) {
	s := EpochSchedule{FirstLen: 1 << 62, Growth: 16}
	if got := s.Boundary(10); got != ^uint64(0) {
		t.Fatalf("Boundary(10) = %d, want saturation", got)
	}
	if got := s.Length(40); got != ^uint64(0) {
		t.Fatalf("Length(40) = %d, want saturation", got)
	}
	// EpochsWithin must terminate despite saturation.
	if got := s.EpochsWithin(^uint64(0)); got <= 0 {
		t.Fatalf("EpochsWithin = %d, want positive", got)
	}
}
