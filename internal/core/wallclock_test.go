package core

import (
	"sync"
	"testing"
	"time"
)

func TestCycleClockRoundTrip(t *testing.T) {
	epoch := time.Unix(1000, 0)
	c, err := NewCycleClockAt(1_000_000, epoch) // 1 MHz: 1 cycle = 1 µs
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at    time.Time
		cycle uint64
	}{
		{epoch, 0},
		{epoch.Add(time.Microsecond), 1},
		{epoch.Add(time.Second), 1_000_000},
		{epoch.Add(90 * time.Minute), 5_400_000_000},
		{epoch.Add(-time.Second), 0}, // before epoch clamps
	}
	for _, tc := range cases {
		if got := c.Cycles(tc.at); got != tc.cycle {
			t.Errorf("Cycles(%v) = %d, want %d", tc.at, got, tc.cycle)
		}
	}
	for _, cyc := range []uint64{0, 1, 999_999, 1_000_000, 5_400_000_000} {
		back := c.Cycles(c.TimeOf(cyc))
		if back != cyc {
			t.Errorf("Cycles(TimeOf(%d)) = %d", cyc, back)
		}
	}
}

// TestTimeOfNeverBeforeSlotBoundary pins the early-slot-issue fix: the old
// TimeOf floor-rounded the sub-second remainder (rem·1e9/hz), so for any hz
// that does not divide the nanosecond grid, Until/NextSlot could report a
// slot open up to one cycle before its exact rational boundary and the
// pacing loop would issue it early. TimeOf must round up: for every cycle c,
// TimeOf(c) ≥ epoch + c/hz seconds (checked in exact integer arithmetic as
// ns·hz ≥ c·1e9), while staying strictly less than one cycle late so the
// Cycles round trip is preserved.
func TestTimeOfNeverBeforeSlotBoundary(t *testing.T) {
	epoch := time.Unix(0, 0)
	for _, hz := range []uint64{1, 3, 7, 85, 999_983, 1_000_000, 999_999_937, 1_000_000_000} {
		c, err := NewCycleClockAt(hz, epoch)
		if err != nil {
			t.Fatal(err)
		}
		for _, cycle := range []uint64{0, 1, 2, 3, 5, 86, 1000, 12_345} {
			ns := uint64(c.TimeOf(cycle).Sub(epoch).Nanoseconds())
			// Exact boundary: cycle/hz seconds. Cross-multiplied, never early:
			if ns*hz < cycle*1_000_000_000 {
				t.Errorf("hz=%d: TimeOf(%d) = %d ns is before the exact boundary %d/%d s",
					hz, cycle, ns, cycle, hz)
			}
			// ...and never a full cycle late:
			if ns > 0 && (ns-1)*hz >= (cycle+1)*1_000_000_000 {
				t.Errorf("hz=%d: TimeOf(%d) = %d ns overshoots cycle %d entirely", hz, cycle, ns, cycle+1)
			}
			if back := c.Cycles(c.TimeOf(cycle)); back != cycle {
				t.Errorf("hz=%d: Cycles(TimeOf(%d)) = %d", hz, cycle, back)
			}
		}
	}

	// Through the wall-clock adapter: the slot NextSlot promises must not be
	// reported open (wait ≤ 0) before its exact boundary. With hz = 3 every
	// cycle boundary is a non-terminating fraction of a second, the case the
	// floor rounding got wrong.
	e, err := NewEnforcer(EnforcerConfig{ORAMLatency: 1, Rates: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	clock, err := NewCycleClockAt(3, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallEnforcer(e, clock)
	for i := 0; i < 10; i++ {
		slot, wait := w.NextSlot()
		slotNs := uint64(clock.TimeOf(slot).Sub(clock.Epoch()).Nanoseconds())
		if slotNs*3 < slot*1_000_000_000 {
			t.Fatalf("TimeOf(NextSlot()=%d) = %d ns precedes the exact slot boundary", slot, slotNs)
		}
		if wait > 0 {
			time.Sleep(wait)
		}
		w.TakeSlot(0, false)
	}
}

func TestCycleClockRejectsBadHz(t *testing.T) {
	if _, err := NewCycleClock(0); err == nil {
		t.Error("hz=0 accepted")
	}
	if _, err := NewCycleClock(2_000_000_000); err == nil {
		t.Error("hz=2e9 accepted")
	}
}

// TestTakeSlotMatchesFetchGrid pins the refactor invariant: a sequence of
// back-to-back demands issued through TakeSlot produces exactly the slot
// starts, stats and counters that the simulator's Fetch path produces.
func TestTakeSlotMatchesFetchGrid(t *testing.T) {
	cfg := EnforcerConfig{
		ORAMLatency: 100,
		Rates:       []uint64{50, 200, 800},
		InitialRate: 200,
		Schedule:    EpochSchedule{FirstLen: 4000, Growth: 2},
		RecordSlots: true,
	}
	a, err := NewEnforcer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnforcer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastA uint64
	for i := 0; i < 200; i++ {
		lastA = a.Fetch(lastA, uint64(i)) // back-to-back: request at completion
	}
	for i := 0; i < 200; i++ {
		// TakeSlot with arrival = previous completion is the same pattern.
		b.TakeSlot(b.lastEnd, true)
	}
	sa, sb := a.Slots(), b.Slots()
	if len(sa) != len(sb) {
		t.Fatalf("slot counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("slot %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.CountersNow() != b.CountersNow() {
		t.Errorf("counters differ: %+v vs %+v", a.CountersNow(), b.CountersNow())
	}
	if a.Rate() != b.Rate() || a.Epoch() != b.Epoch() {
		t.Errorf("rate/epoch differ: %d/%d vs %d/%d", a.Rate(), a.Epoch(), b.Rate(), b.Epoch())
	}
}

// TestTakeSlotGridIsDataIndependent: under a static rate the slot start
// sequence is identical whether slots carry demands or dummies — the
// server-side restatement of the paper's core security property. (With a
// dynamic schedule, the rate choice at each epoch boundary is the paper's
// intentional, bounded leakage, so grids may diverge across epochs there.)
func TestTakeSlotGridIsDataIndependent(t *testing.T) {
	mk := func() *Enforcer {
		e, err := NewEnforcer(EnforcerConfig{
			ORAMLatency: 100,
			Rates:       []uint64{200},
			InitialRate: 200,
			RecordSlots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	busy, idle, mixed := mk(), mk(), mk()
	for i := 0; i < 300; i++ {
		busy.TakeSlot(busy.lastEnd, true)
		idle.TakeSlot(0, false)
		mixed.TakeSlot(mixed.lastEnd, i%3 == 0)
	}
	sb, si, sm := busy.Slots(), idle.Slots(), mixed.Slots()
	for i := range sb {
		if sb[i].Start != si[i].Start || sb[i].Start != sm[i].Start {
			t.Fatalf("slot %d start differs across traffic patterns: busy=%d idle=%d mixed=%d",
				i, sb[i].Start, si[i].Start, sm[i].Start)
		}
	}
}

// TestTakeSlotDynamicGridFixedWithinEpoch: with a dynamic schedule the grid
// is still traffic-independent up to the first epoch boundary — only the
// learner's per-epoch rate choice may differ.
func TestTakeSlotDynamicGridFixedWithinEpoch(t *testing.T) {
	mk := func() *Enforcer {
		e, err := NewEnforcer(EnforcerConfig{
			ORAMLatency: 100,
			Rates:       []uint64{50, 200, 800},
			InitialRate: 200,
			Schedule:    EpochSchedule{FirstLen: 1 << 20, Growth: 2},
			RecordSlots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	busy, idle := mk(), mk()
	for i := 0; i < 300; i++ {
		busy.TakeSlot(busy.lastEnd, true)
		idle.TakeSlot(0, false)
	}
	sb, si := busy.Slots(), idle.Slots()
	for i := range sb {
		if sb[i].Start >= 1<<20 {
			break // past epoch 0: rates may legitimately differ
		}
		if sb[i].Start != si[i].Start {
			t.Fatalf("slot %d start differs inside epoch 0: busy=%d idle=%d", i, sb[i].Start, si[i].Start)
		}
	}
}

func TestNextSlotDoesNotConsume(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{ORAMLatency: 10, Rates: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	first := e.NextSlot()
	if again := e.NextSlot(); again != first {
		t.Fatalf("NextSlot moved without TakeSlot: %d then %d", first, again)
	}
	got := e.TakeSlot(0, false)
	if got != first {
		t.Fatalf("TakeSlot consumed %d, NextSlot promised %d", got, first)
	}
	if next := e.NextSlot(); next != first+10+100 {
		t.Fatalf("next slot after one dummy = %d, want %d", next, first+10+100)
	}
}

// TestWallEnforcerSlipCounters: a grid whose clock epoch lies in the past is
// overdue from the first slot — the adapter must count the slipped slots,
// track the worst lag, and keep host-induced waiting out of the learner's
// Waste counter.
func TestWallEnforcerSlipCounters(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{ORAMLatency: 10, Rates: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MHz clock started 500 ms ago: the grid is ~500k cycles behind wall
	// time, far beyond the 110-cycle period, so every slot issued now is in
	// catch-up mode.
	clock, err := NewCycleClockAt(1_000_000, time.Now().Add(-500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallEnforcer(e, clock)

	w.TakeSlot(0, true) // a demand that "arrived at cycle 0"
	w.TakeSlot(0, false)
	w.TakeSlot(0, true)

	overdue, maxLag := w.Slip()
	if overdue != 3 {
		t.Errorf("overdue slots = %d, want 3", overdue)
	}
	if maxLag < 400_000 {
		t.Errorf("max lag = %d cycles, want ≥ 400000 (clock started 500 ms behind)", maxLag)
	}
	// The demands waited half a second of wall time behind the stalled grid,
	// but none of that is the rate's fault: Waste must stay zero.
	if c := w.Counters(); c.Waste != 0 {
		t.Errorf("slipped demand slots charged %d cycles of Waste, want 0", c.Waste)
	}
	if c := w.Counters(); c.AccessCount != 2 {
		t.Errorf("AccessCount = %d, want 2", c.AccessCount)
	}
}

// TestWallEnforcerOnTimeSlotCountsWaste: the slip exclusion must not eat
// legitimate rate-attributable waiting — a slot issued on time (before its
// wall-clock start) charges the full arrival→slot wait as Waste.
func TestWallEnforcerOnTimeSlotCountsWaste(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{ORAMLatency: 10, Rates: []uint64{100_000}})
	if err != nil {
		t.Fatal(err)
	}
	// First slot opens at cycle 100000 = 100 ms from now: issuing it
	// immediately is early, not overdue.
	clock, err := NewCycleClock(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallEnforcer(e, clock)
	w.TakeSlot(0, true)
	if overdue, _ := w.Slip(); overdue != 0 {
		t.Errorf("on-time slot counted as overdue (%d)", overdue)
	}
	if c := w.Counters(); c.Waste != 100_000 {
		t.Errorf("Waste = %d, want 100000 (arrival 0, slot 100000)", c.Waste)
	}
}

// TestWallEnforcerConcurrentStats exercises the adapter's locking under the
// race detector: one goroutine paces, others poll stats.
func TestWallEnforcerConcurrentStats(t *testing.T) {
	e, err := NewEnforcer(EnforcerConfig{
		ORAMLatency: 10,
		Rates:       []uint64{20, 100},
		InitialRate: 100,
		Schedule:    EpochSchedule{FirstLen: 1000, Growth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock, err := NewCycleClock(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWallEnforcer(e, clock)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = w.Stats()
					_ = w.Rate()
					_ = w.Epoch()
					_, _ = w.NextSlot()
					_ = w.RateChanges()
					_, _ = w.Slip()
					_ = w.Counters()
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		w.TakeSlot(0, i%2 == 0)
	}
	close(stop)
	wg.Wait()
	st := w.Stats()
	if st.TotalAccesses() != 5000 {
		t.Fatalf("total accesses = %d, want 5000", st.TotalAccesses())
	}
}
