package core

// PredictSlots reconstructs the enforced access start times implied by a
// rate-change history, an ORAM latency and an end time. This is the
// security argument made executable: the adversary-visible timing trace is
// a deterministic function of (rate sequence, OLAT) alone — no other
// program or data state enters. The data-independence property test runs
// two arbitrary programs, forces the same rate sequence, and checks the
// recorded slot starts equal this prediction exactly.
//
// The reconstruction mirrors the enforcer's clock rules:
//
//   - access i+1 starts rate cycles after access i completes (§2.1);
//   - the rate in force for a gap is the one selected at the last epoch
//     boundary at or before the completion that opened the gap.
func PredictSlots(history []RateChange, olat uint64, until uint64) []uint64 {
	if len(history) == 0 || olat == 0 {
		return nil
	}
	rateAt := func(cycle uint64) uint64 {
		r := history[0].Rate
		for _, h := range history[1:] {
			if h.Cycle <= cycle {
				r = h.Rate
			} else {
				break
			}
		}
		return r
	}
	var out []uint64
	var lastEnd uint64
	for {
		slot := lastEnd + rateAt(lastEnd)
		if slot >= until {
			return out
		}
		out = append(out, slot)
		lastEnd = slot + olat
	}
}

// SlotStarts extracts the start times from a recorded slot trace.
func SlotStarts(slots []Slot) []uint64 {
	out := make([]uint64, len(slots))
	for i, s := range slots {
		out[i] = s.Start
	}
	return out
}
