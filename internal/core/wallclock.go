package core

import (
	"fmt"
	"sync"
	"time"
)

// CycleClock maps wall-clock time onto the enforcer's cycle domain at a
// fixed nominal frequency. The cycle-based Enforcer models a hardware
// memory controller clocked in processor cycles; a software server that
// wants the same data-independent slot grid needs a bijection between
// cycles and wall time. Cycle 0 corresponds to the clock's epoch (the
// moment the serving session began).
type CycleClock struct {
	epoch time.Time
	hz    uint64
}

// NewCycleClock starts a cycle clock at frequency hz (cycles per second)
// with its epoch at the current wall time. hz must be positive and at most
// 1e9 (one cycle per nanosecond — finer grids are not representable in
// time.Duration without loss).
func NewCycleClock(hz uint64) (*CycleClock, error) {
	return NewCycleClockAt(hz, time.Now())
}

// NewCycleClockAt is NewCycleClock with an explicit epoch (test hook).
func NewCycleClockAt(hz uint64, epoch time.Time) (*CycleClock, error) {
	if hz == 0 || hz > 1_000_000_000 {
		return nil, fmt.Errorf("core: cycle clock frequency must be in [1, 1e9] Hz, got %d", hz)
	}
	return &CycleClock{epoch: epoch, hz: hz}, nil
}

// Hz returns the clock frequency in cycles per second.
func (c *CycleClock) Hz() uint64 { return c.hz }

// Epoch returns the wall time of cycle 0.
func (c *CycleClock) Epoch() time.Time { return c.epoch }

// Cycles converts a wall time to a cycle count. Times before the epoch
// clamp to 0.
func (c *CycleClock) Cycles(t time.Time) uint64 {
	d := t.Sub(c.epoch)
	if d <= 0 {
		return 0
	}
	// Split to avoid overflow: d*hz can exceed uint64 for long sessions at
	// high frequencies if computed in nanoseconds directly.
	secs := uint64(d / time.Second)
	rem := uint64(d % time.Second)
	return secs*c.hz + rem*c.hz/uint64(time.Second)
}

// Now returns the current cycle.
func (c *CycleClock) Now() uint64 { return c.Cycles(time.Now()) }

// TimeOf returns the wall time at which the given cycle begins. The exact
// boundary is the rational instant epoch + cycle/hz seconds; when hz does
// not divide the nanosecond grid the conversion rounds UP to the next
// representable nanosecond. Flooring here would report a slot open up to
// one cycle before its nominal start, and the pacing loop — which sleeps
// Until(slot) and then issues — would perturb the data-independent grid by
// issuing early. Ceiling keeps TimeOf(cycle) ≥ the true boundary while
// Cycles (which floors) still maps it back to the same cycle, since the
// rounding adds strictly less than one cycle at any hz ≤ 1e9.
func (c *CycleClock) TimeOf(cycle uint64) time.Time {
	secs := cycle / c.hz
	rem := cycle % c.hz
	return c.epoch.Add(time.Duration(secs)*time.Second +
		time.Duration((rem*uint64(time.Second)+c.hz-1)/c.hz))
}

// Until returns how long from now until the given cycle begins (non-positive
// if it has already passed).
func (c *CycleClock) Until(cycle uint64) time.Duration {
	return time.Until(c.TimeOf(cycle))
}

// WallEnforcer adapts the cycle-based Enforcer to wall-clock time for the
// concurrent server: it serializes access to the enforcer (whose methods are
// not safe for concurrent use) and translates the slot grid through a
// CycleClock. The pacing loop drives it one slot at a time:
//
//	slot, wait := w.NextSlot()
//	sleep(wait)                    // requests only queue meanwhile
//	w.TakeSlot(arrival, demand)    // consume the slot, then do the ORAM work
//
// Timing stays data-independent because slot start cycles depend only on the
// rate sequence; whether a slot carried real or dummy work is invisible on
// the bus. If the host cannot keep up (serving a slot takes longer than the
// rate interval), the cycle grid slips behind wall time and the loop issues
// slots back-to-back until it catches up — a software-only failure mode a
// hardware controller does not have, surfaced via Slip for monitoring.
//
// Slipped slots are excluded from the learner's Waste counter: a slot issued
// a full period or more behind wall time means the host, not the rate, is
// the bottleneck, and charging that wait as Waste would drive the learner to
// its fastest rate exactly when going faster cannot help. The slip counters
// exist so operators see the condition instead of the learner mislearning
// from it.
type WallEnforcer struct {
	mu    sync.Mutex
	e     *Enforcer
	clock *CycleClock

	// Grid-slip accounting (guarded by mu): slots issued at least one full
	// period behind the wall clock, and the worst lag ever observed.
	overdueSlots uint64
	maxLagCycles uint64
}

// NewWallEnforcer builds the adapter. The enforcer must be freshly
// constructed (cycle 0 = clock epoch) and must not be used directly once
// wrapped.
func NewWallEnforcer(e *Enforcer, clock *CycleClock) *WallEnforcer {
	return &WallEnforcer{e: e, clock: clock}
}

// Clock returns the underlying cycle clock.
func (w *WallEnforcer) Clock() *CycleClock { return w.clock }

// NextSlot returns the start cycle of the next unissued slot and how long
// until it opens (non-positive when overdue).
func (w *WallEnforcer) NextSlot() (slot uint64, wait time.Duration) {
	w.mu.Lock()
	slot = w.e.NextSlot()
	w.mu.Unlock()
	return slot, w.clock.Until(slot)
}

// TakeSlot consumes the next slot as a demand or dummy access and returns
// its start cycle. arrival is the cycle the served request arrived (ignored
// for dummies).
//
// When the slot being issued is overdue by at least one full period, the
// grid has slipped: the slip counters advance and, for demands, arrival is
// clamped to the slot start so the host-induced wait contributes zero Waste
// (the learner only ever sees rate-attributable waiting).
func (w *WallEnforcer) TakeSlot(arrival uint64, demand bool) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	slot := w.e.NextSlot()
	if now := w.clock.Now(); now > slot {
		lag := now - slot
		if lag >= w.e.Period() {
			w.overdueSlots++
			if lag > w.maxLagCycles {
				w.maxLagCycles = lag
			}
			if demand {
				arrival = slot
			}
		}
	}
	return w.e.TakeSlot(arrival, demand)
}

// Slip reports the grid-slip counters: how many slots were issued at least
// one full period behind the wall clock (the loop's back-to-back catch-up
// mode) and the largest lag, in cycles, ever observed at slot issue.
func (w *WallEnforcer) Slip() (overdueSlots, maxLagCycles uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.overdueSlots, w.maxLagCycles
}

// Counters returns the live epoch counters — the learner's inputs — for
// tests and monitoring.
func (w *WallEnforcer) Counters() Counters {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e.CountersNow()
}

// Now returns the current cycle.
func (w *WallEnforcer) Now() uint64 { return w.clock.Now() }

// Rate returns the rate currently in force.
func (w *WallEnforcer) Rate() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e.Rate()
}

// Epoch returns the current epoch index.
func (w *WallEnforcer) Epoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e.Epoch()
}

// Stats returns a copy of the enforcer's activity counters.
func (w *WallEnforcer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.e.Stats()
}

// RateChanges returns a copy of the epoch transition history — the leaked
// information, exported so operators can audit exactly what the timing
// channel has revealed.
func (w *WallEnforcer) RateChanges() []RateChange {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]RateChange, len(w.e.RateChanges()))
	copy(out, w.e.RateChanges())
	return out
}
