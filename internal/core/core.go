package core
