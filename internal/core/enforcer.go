package core

import (
	"fmt"
)

// RateChange records one epoch transition: the cycle it took effect and the
// rate chosen for the new epoch. The sequence of RateChanges is exactly the
// information the timing channel can leak — at most lg|R| bits per epoch
// (§2.2.1) — and drives both the Fig 7 epoch markers and the adversary's
// trace reconstruction.
type RateChange struct {
	Cycle uint64 `json:"cycle"`
	Rate  uint64 `json:"rate"`
	Epoch int    `json:"epoch"`
}

// EnforcerConfig configures a shielded ORAM controller frontend.
type EnforcerConfig struct {
	// ORAMLatency is the cycle latency of one ORAM access (OLAT).
	ORAMLatency uint64
	// Rates is the allowed rate set R, sorted ascending. A single-element
	// set with a nil Schedule gives the static schemes of §9.1.6.
	Rates []uint64
	// InitialRate is the rate used during epoch 0 (§9.2: 10000). It need
	// not be a member of R; the paper allows "any (e.g., a random) value".
	InitialRate uint64
	// Schedule is the epoch schedule; zero-valued means static (no epoch
	// transitions, the InitialRate applies forever).
	Schedule EpochSchedule
	// Predictor and Discretizer select learner variants (defaults:
	// ShiftPredictor, LinearDiscretizer — the paper's hardware).
	Predictor   Predictor
	Discretizer Discretizer
	// RecordSlots enables recording of every access start time and kind,
	// used by the security property tests and the adversary model. Off by
	// default: the record grows with every access.
	RecordSlots bool
}

// Validate reports whether the configuration is usable.
func (c EnforcerConfig) Validate() error {
	if c.ORAMLatency == 0 {
		return fmt.Errorf("core: ORAMLatency must be positive")
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf("core: empty rate set")
	}
	for i := 1; i < len(c.Rates); i++ {
		if c.Rates[i] <= c.Rates[i-1] {
			return fmt.Errorf("core: rate set must be strictly ascending, got %v", c.Rates)
		}
	}
	if c.Schedule != (EpochSchedule{}) {
		if err := c.Schedule.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Static reports whether the enforcer never changes rate.
func (c EnforcerConfig) Static() bool { return c.Schedule == (EpochSchedule{}) }

// SlotKind classifies an enforced access.
type SlotKind uint8

const (
	// SlotDummy is an indistinguishable dummy access (no pending work).
	SlotDummy SlotKind = iota
	// SlotDemand served a demand fetch (LLC miss).
	SlotDemand
)

// Slot is one enforced ORAM access as recorded for analysis. Kind is
// invisible to the adversary — every slot looks identical on the bus.
type Slot struct {
	Start uint64
	Kind  SlotKind
}

// Stats aggregates enforcer activity for the performance/energy models.
type Stats struct {
	RealAccesses   uint64 // demand fetches served by slots
	DummyAccesses  uint64
	DemandServed   uint64
	WritebacksDone uint64 // dirty lines absorbed into the stash (no slot)
}

// TotalAccesses is the number of ORAM accesses of any kind — each moves a
// full path and costs the full access energy.
func (s Stats) TotalAccesses() uint64 { return s.RealAccesses + s.DummyAccesses }

// DummyFraction is the share of accesses that were dummies (§9.3 reports
// 34% on average for the dynamic scheme).
func (s Stats) DummyFraction() float64 {
	t := s.TotalAccesses()
	if t == 0 {
		return 0
	}
	return float64(s.DummyAccesses) / float64(t)
}

// Enforcer is the leakage-aware ORAM controller frontend. It implements
// cache.MemoryPort. Access timing is fully determined by the per-epoch rate
// sequence: access i+1 starts exactly rate cycles after access i completes
// (§2.1), with an indistinguishable dummy issued whenever no real request is
// pending at a slot. Only the rate sequence — |R| choices at |E| epoch
// boundaries — depends on the program, which is what bounds leakage.
//
// Dirty LLC evictions do not issue their own ORAM accesses: as in the
// secure-processor Path ORAM designs the paper builds on ([26], Phantom),
// the evicted line is absorbed into the controller's stash and written out
// during the write-back phase of subsequent path accesses (every access —
// real or dummy — rewrites a full path, with ample slack for one extra
// block). Writebacks therefore cost neither slots nor extra energy beyond
// the path writes that happen anyway.
type Enforcer struct {
	cfg  EnforcerConfig
	rate uint64

	lastEnd  uint64 // completion cycle of the most recent access
	epoch    int
	anchor   uint64 // cycle at which epoch 0 began (0, or the ResetAt time)
	epochEnd uint64 // boundary of the current epoch (max uint64 if static)

	counters Counters
	epochLen uint64 // length of the current epoch
	// wasteCovered is the cycle up to which time has been classified as
	// Waste or real service. Waste uses the paper's wall-clock semantics
	// (Fig 4): it counts cycles during which real work was pending but
	// ORAM was waiting or running a dummy — never double-counting
	// overlapping waits from concurrent requests. For back-to-back
	// requests this adds exactly the rate value per access (Req 3).
	wasteCovered uint64

	stats       Stats
	rateHistory []RateChange
	slots       []Slot
}

// NewEnforcer builds an enforcer at cycle 0. The first access slot opens
// after one full rate interval, and epoch 0 begins immediately.
func NewEnforcer(cfg EnforcerConfig) (*Enforcer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialRate == 0 {
		cfg.InitialRate = cfg.Rates[len(cfg.Rates)-1]
	}
	e := &Enforcer{cfg: cfg, rate: cfg.InitialRate}
	if cfg.Static() {
		e.epochEnd = ^uint64(0)
		e.epochLen = ^uint64(0)
	} else {
		e.epochEnd = cfg.Schedule.Boundary(0)
		e.epochLen = cfg.Schedule.Length(0)
	}
	e.rateHistory = append(e.rateHistory, RateChange{Cycle: 0, Rate: e.rate, Epoch: 0})
	return e, nil
}

// Rate returns the rate in force.
func (e *Enforcer) Rate() uint64 { return e.rate }

// Period returns the full slot period under the rate in force: rate cycles
// of gap plus the access latency. Consecutive slot starts are exactly one
// period apart within an epoch.
func (e *Enforcer) Period() uint64 { return e.rate + e.cfg.ORAMLatency }

// Epoch returns the current epoch index.
func (e *Enforcer) Epoch() int { return e.epoch }

// Stats returns a copy of the activity counters.
func (e *Enforcer) Stats() Stats { return e.stats }

// CountersNow returns the live epoch counters (test hook for Fig 4
// scenarios).
func (e *Enforcer) CountersNow() Counters { return e.counters }

// RateChanges returns the epoch transition history (Fig 7 markers; the
// leaked information).
func (e *Enforcer) RateChanges() []RateChange { return e.rateHistory }

// Slots returns the recorded access trace (requires RecordSlots).
func (e *Enforcer) Slots() []Slot { return e.slots }

// record appends to the slot trace when enabled and updates stats.
func (e *Enforcer) record(start uint64, kind SlotKind) {
	switch kind {
	case SlotDummy:
		e.stats.DummyAccesses++
	case SlotDemand:
		e.stats.RealAccesses++
		e.stats.DemandServed++
	}
	if e.cfg.RecordSlots {
		e.slots = append(e.slots, Slot{Start: start, Kind: kind})
	}
}

// maybeTransition applies every epoch boundary that lastEnd has crossed:
// the learner computes a new rate from the finished epoch's counters and
// the counters reset. Transitions are clock events — they occur at fixed,
// data-independent cycles (§6).
func (e *Enforcer) maybeTransition() {
	for e.lastEnd >= e.epochEnd {
		raw := e.cfg.Predictor.Predict(e.epochLen, e.counters)
		e.rate = e.cfg.Discretizer.Apply(raw, e.cfg.Rates)
		e.counters.Reset()
		e.epoch++
		e.epochLen = e.cfg.Schedule.Length(e.epoch)
		e.epochEnd = e.anchor + e.cfg.Schedule.Boundary(e.epoch)
		e.rateHistory = append(e.rateHistory, RateChange{Cycle: e.epochEnd - e.epochLen, Rate: e.rate, Epoch: e.epoch})
	}
}

// advanceTo processes every slot that starts before cycle t as a dummy
// access. Runs of dummy slots are computed arithmetically rather than one
// at a time, with epoch boundaries segmenting the bulk steps.
func (e *Enforcer) advanceTo(t uint64) {
	for {
		e.maybeTransition()
		slot := e.lastEnd + e.rate
		if slot >= t {
			return
		}
		// A run of dummy slots. Slot i starts at slot + i*period and
		// completes olat later. The run is bounded by two events, after
		// either of which the loop must re-evaluate state:
		//   - a slot start reaching t (nothing further has "happened");
		//   - a completion crossing the epoch boundary (rate may change).
		period := e.rate + e.cfg.ORAMLatency
		n := uint64(1)
		if t > slot+period {
			n += (t - slot - 1) / period // slots starting strictly before t
		}
		if firstDone := slot + e.cfg.ORAMLatency; firstDone < e.epochEnd {
			// Smallest i with completion ≥ boundary, inclusive: that slot
			// still runs under the old rate; the transition fires after.
			crossing := 1 + (e.epochEnd-firstDone+period-1)/period
			if crossing < n {
				n = crossing
			}
		} else if e.epochEnd <= firstDone {
			n = 1
		}
		for i := uint64(0); i < n; i++ {
			e.record(slot+i*period, SlotDummy)
		}
		e.lastEnd = slot + (n-1)*period + e.cfg.ORAMLatency
	}
}

// Fetch implements cache.MemoryPort: a demand LLC miss at cycle now. The
// request is served by the first slot at or after now (demand has priority
// over queued writebacks) and the core resumes when the access completes.
func (e *Enforcer) Fetch(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr // the enforcer's timing is address-independent by design
	e.advanceTo(now)
	// Invariant: advanceTo leaves the next slot at or after now (and has
	// already applied any due epoch transition), so the demand is served by
	// the first slot of the fixed grid — never at an ad-hoc time, which
	// would break the schedule's data-independence.
	e.takeSlot(now, true)
	return e.lastEnd
}

// NextSlot returns the start cycle of the earliest slot that has not yet
// been issued. Slot starts depend only on the rate sequence, never on the
// request stream, so callers may publish them freely.
func (e *Enforcer) NextSlot() uint64 {
	e.maybeTransition()
	return e.lastEnd + e.rate
}

// TakeSlot issues the next scheduled slot unconditionally, as a demand
// (real) access when demand is true and as a dummy otherwise, and returns
// its start cycle. Unlike Fetch/Sync it does not advance to a target cycle
// first: the slot grid is consumed one slot at a time, which is the shape a
// wall-clock pacing loop needs (sleep until the slot opens, then decide
// real-vs-dummy from the queue). arrival is the cycle the pending request
// arrived (used for the learner's Waste accounting; ignored for dummies).
// For back-to-back demands this adds exactly rate Waste per access, matching
// Fetch (Req 3, Fig 4).
func (e *Enforcer) TakeSlot(arrival uint64, demand bool) uint64 {
	e.maybeTransition()
	return e.takeSlot(arrival, demand)
}

// takeSlot is TakeSlot after the epoch-transition check (Fetch reaches it
// through advanceTo, which has already applied transitions).
func (e *Enforcer) takeSlot(arrival uint64, demand bool) uint64 {
	slot := e.lastEnd + e.rate
	if demand {
		from := arrival
		if e.wasteCovered > from {
			from = e.wasteCovered
		}
		if slot > from {
			e.counters.Waste += slot - from
		}
		e.wasteCovered = slot + e.cfg.ORAMLatency
		e.counters.AccessCount++
		e.counters.ORAMCycles += e.cfg.ORAMLatency
		e.record(slot, SlotDemand)
	} else {
		e.record(slot, SlotDummy)
	}
	e.lastEnd = slot + e.cfg.ORAMLatency
	return slot
}

// Writeback implements cache.MemoryPort: the dirty line is absorbed into
// the controller stash immediately and flows out with later path writes, so
// it completes (from the core's perspective) at once.
func (e *Enforcer) Writeback(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr
	e.advanceTo(now)
	e.stats.WritebacksDone++
	return now
}

// Sync advances internal time to cycle t, issuing the dummy accesses due
// before t. The simulator calls this at window boundaries and at program
// end so access counts are complete.
func (e *Enforcer) Sync(t uint64) { e.advanceTo(t) }

// ResetAt re-anchors the enforcer at cycle t with fresh statistics, rate
// history and epoch schedule, as if the session began there: epoch 0 spans
// [t, t+FirstLen) and the rate reverts to the initial rate. The simulator
// calls this at the end of cache warmup, matching the paper's fast-forward
// methodology (§9.1.1) — measurement and leakage accounting start after
// program initialization.
func (e *Enforcer) ResetAt(t uint64) {
	e.advanceTo(t)
	e.rate = e.cfg.InitialRate
	e.lastEnd = t
	e.epoch = 0
	e.anchor = t
	if e.cfg.Static() {
		e.epochEnd = ^uint64(0)
		e.epochLen = ^uint64(0)
	} else {
		e.epochLen = e.cfg.Schedule.Length(0)
		e.epochEnd = t + e.epochLen
	}
	e.counters.Reset()
	e.wasteCovered = t
	e.stats = Stats{}
	e.rateHistory = append(e.rateHistory[:0], RateChange{Cycle: t, Rate: e.rate, Epoch: 0})
	e.slots = e.slots[:0]
}
