package core

// Baseline memory controllers from §9.1.6. Both implement cache.MemoryPort.

// FlatMemory is base_dram: an insecure DRAM controller with a flat
// per-access latency (40 cycles in the paper's timing model) and no
// bandwidth modeling. Writebacks complete in the background.
type FlatMemory struct {
	// Latency is the flat access latency in cycles.
	Latency uint64

	// Fetches and Writebacks count line transfers for the energy model.
	Fetches    uint64
	Writebacks uint64
}

// NewFlatMemory returns a base_dram controller with the given latency.
func NewFlatMemory(latency uint64) *FlatMemory {
	return &FlatMemory{Latency: latency}
}

// Fetch implements cache.MemoryPort.
func (m *FlatMemory) Fetch(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr
	m.Fetches++
	return now + m.Latency
}

// ResetStats zeroes the transfer counters (end-of-warmup hook).
func (m *FlatMemory) ResetStats() { m.Fetches, m.Writebacks = 0, 0 }

// Writeback implements cache.MemoryPort.
func (m *FlatMemory) Writeback(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr
	m.Writebacks++
	return now + m.Latency
}

// LineTransfers is the total number of cache lines moved.
func (m *FlatMemory) LineTransfers() uint64 { return m.Fetches + m.Writebacks }

// UnshieldedORAM is base_oram: a Path ORAM controller with no timing
// protection (e.g. [26]). Accesses are serialized back-to-back on demand —
// a performance/power oracle relative to the shielded schemes, but insecure
// over the timing channel (§1.1.1).
type UnshieldedORAM struct {
	// Latency is OLAT, the per-access cycle latency.
	Latency uint64

	busyUntil uint64
	stats     Stats
	slots     []Slot
	// RecordSlots enables the access-time trace used by the adversary
	// model (every access time is observable — unbounded leakage).
	RecordSlots bool
}

// NewUnshieldedORAM returns a base_oram controller.
func NewUnshieldedORAM(latency uint64) *UnshieldedORAM {
	return &UnshieldedORAM{Latency: latency}
}

// Fetch implements cache.MemoryPort: the access starts as soon as the ORAM
// is free.
func (o *UnshieldedORAM) Fetch(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr
	start := now
	if o.busyUntil > start {
		start = o.busyUntil
	}
	o.stats.RealAccesses++
	o.stats.DemandServed++
	if o.RecordSlots {
		o.slots = append(o.slots, Slot{Start: start, Kind: SlotDemand})
	}
	o.busyUntil = start + o.Latency
	return o.busyUntil
}

// Writeback implements cache.MemoryPort: as with the shielded controller,
// dirty evictions are absorbed into the stash and written out with later
// path writes (see Enforcer.Writeback), so they cost no dedicated access.
func (o *UnshieldedORAM) Writeback(now uint64, lineAddr uint64) uint64 {
	_ = lineAddr
	o.stats.WritebacksDone++
	return now
}

// Stats returns the access counters.
func (o *UnshieldedORAM) Stats() Stats { return o.stats }

// Slots returns the recorded access trace (requires RecordSlots).
func (o *UnshieldedORAM) Slots() []Slot { return o.slots }

// Sync is a no-op: the unshielded controller never issues background work.
func (o *UnshieldedORAM) Sync(t uint64) {}

// ResetStats zeroes counters and the slot trace (end-of-warmup hook).
func (o *UnshieldedORAM) ResetStats() {
	o.stats = Stats{}
	o.slots = o.slots[:0]
}
