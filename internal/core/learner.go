package core

// Counters are the three performance counters the paper adds at the ORAM
// controller (§7.1.1), reset at every epoch transition:
//
//   - AccessCount: real (non-dummy) ORAM requests served this epoch;
//   - ORAMCycles: cycles each real request was in service, summed;
//   - Waste: cycles ORAM had real work queued but was waiting for the next
//     slot or behind a dummy access — the cycles lost to the current rate.
type Counters struct {
	AccessCount uint64
	ORAMCycles  uint64
	Waste       uint64
}

// Reset zeroes the counters (epoch transition).
func (c *Counters) Reset() { *c = Counters{} }

// PredictRaw computes the learner's averaging statistic (Equation 1):
//
//	NewIntRaw = (EpochCycles − Waste − ORAMCycles) / AccessCount
//
// i.e. the average compute gap the program offered between ORAM requests —
// the offered load rate. A zero AccessCount or a negative numerator (Waste
// can exceed the epoch length when many requests queue simultaneously)
// saturates: no accesses → predict the slowest possible interval;
// oversubscribed → predict zero (fastest).
func PredictRaw(epochCycles uint64, c Counters) uint64 {
	spent := c.Waste + c.ORAMCycles
	if spent >= epochCycles {
		return 0
	}
	free := epochCycles - spent
	if c.AccessCount == 0 {
		return free
	}
	return free / c.AccessCount
}

// PredictShift is the hardware implementation (Algorithm 1): instead of a
// divider, AccessCount is rounded up to the next power of two — strictly up,
// even when already a power of two — and the division becomes that many
// 1-bit right shifts. This may underset the rate by up to 2× (§7.2), a
// deliberate bias that compensates for bursty arrival processes (§7.3).
func PredictShift(epochCycles uint64, c Counters) uint64 {
	spent := c.Waste + c.ORAMCycles
	if spent >= epochCycles {
		return 0
	}
	raw := epochCycles - spent
	count := c.AccessCount
	for count > 0 {
		raw >>= 1
		count >>= 1
	}
	return raw
}

// Predictor selects a rate-prediction strategy. The enforcer uses
// ShiftPredictor by default (the paper's hardware); ExactPredictor is the
// ablation comparator (DESIGN.md ✦).
type Predictor uint8

const (
	// ShiftPredictor is Algorithm 1 (shift-register divider).
	ShiftPredictor Predictor = iota
	// ExactPredictor uses a true divider (Equation 1 verbatim).
	ExactPredictor
)

func (p Predictor) String() string {
	if p == ExactPredictor {
		return "exact"
	}
	return "shift"
}

// Predict applies the selected strategy.
func (p Predictor) Predict(epochCycles uint64, c Counters) uint64 {
	if p == ExactPredictor {
		return PredictRaw(epochCycles, c)
	}
	return PredictShift(epochCycles, c)
}

// Discretizer selects how a raw prediction maps onto R.
type Discretizer uint8

const (
	// LinearDiscretizer is the paper's argmin over absolute distance.
	LinearDiscretizer Discretizer = iota
	// LogDiscretizer measures distance in log space (ablation ✦).
	LogDiscretizer
)

func (d Discretizer) String() string {
	if d == LogDiscretizer {
		return "log"
	}
	return "linear"
}

// Apply maps raw onto the rate set.
func (d Discretizer) Apply(raw uint64, rates []uint64) uint64 {
	if d == LogDiscretizer {
		return DiscretizeLog(raw, rates)
	}
	return Discretize(raw, rates)
}
