package core

import (
	"testing"
	"testing/quick"
)

func TestLogSpacedRatesPaperSet(t *testing.T) {
	// §9.2: with |R| = 4 the candidate set is {256, 1290, 6501, 32768}.
	got := PaperRates(4)
	want := []uint64{256, 1290, 6501, 32768}
	if len(got) != len(want) {
		t.Fatalf("PaperRates(4) = %v, want %v", got, want)
	}
	for i := range want {
		// Allow ±1 rounding on interior points.
		if absDiff(got[i], want[i]) > 1 {
			t.Fatalf("PaperRates(4)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLogSpacedRatesProperties(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		rates, err := LogSpacedRates(n, MinRate, MaxRate)
		if err != nil {
			t.Fatal(err)
		}
		if len(rates) != n {
			t.Fatalf("|R| = %d, want %d", len(rates), n)
		}
		if rates[0] != MinRate {
			t.Fatalf("rates[0] = %d, want %d", rates[0], MinRate)
		}
		if n > 1 && rates[n-1] != MaxRate {
			t.Fatalf("rates[last] = %d, want %d", rates[n-1], MaxRate)
		}
		for i := 1; i < n; i++ {
			if rates[i] <= rates[i-1] {
				t.Fatalf("rates not strictly ascending: %v", rates)
			}
		}
	}
}

func TestLogSpacedRatesErrors(t *testing.T) {
	if _, err := LogSpacedRates(0, 1, 2); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := LogSpacedRates(2, 0, 2); err == nil {
		t.Fatal("accepted lo=0")
	}
	if _, err := LogSpacedRates(2, 10, 5); err == nil {
		t.Fatal("accepted hi<lo")
	}
}

func TestDiscretizeNearest(t *testing.T) {
	rates := []uint64{256, 1290, 6501, 32768}
	cases := []struct{ raw, want uint64 }{
		{0, 256},
		{256, 256},
		{700, 256},  // closer to 256 (444) than 1290 (590)
		{900, 1290}, // closer to 1290
		{1290, 1290},
		{3800, 1290}, // 2510 vs 2701
		{4000, 6501},
		{6501, 6501},
		{19000, 6501}, // 12499 vs 13768
		{20000, 32768},
		{1 << 40, 32768}, // saturates at slowest
	}
	for _, tc := range cases {
		if got := Discretize(tc.raw, rates); got != tc.want {
			t.Errorf("Discretize(%d) = %d, want %d", tc.raw, got, tc.want)
		}
	}
}

func TestDiscretizeAlwaysMember(t *testing.T) {
	rates := PaperRates(8)
	f := func(raw uint64) bool {
		got := Discretize(raw, rates)
		gotLog := DiscretizeLog(raw, rates)
		member := func(v uint64) bool {
			for _, r := range rates {
				if r == v {
					return true
				}
			}
			return false
		}
		return member(got) && member(gotLog)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizeLogRespectsGeometricSpacing(t *testing.T) {
	rates := []uint64{256, 1290, 6501, 32768}
	// 576 ≈ geometric mean of 256 and 1290: log-distance is a near-tie;
	// linear distance strongly prefers 256. At 600 log prefers 1290.
	if got := DiscretizeLog(600, rates); got != 1290 {
		t.Fatalf("DiscretizeLog(600) = %d, want 1290", got)
	}
	if got := Discretize(600, rates); got != 256 {
		t.Fatalf("Discretize(600) = %d, want 256", got)
	}
}

func TestPredictRawEquation1(t *testing.T) {
	// Equation 1: (EpochCycles − Waste − ORAMCycles) / AccessCount.
	c := Counters{AccessCount: 10, ORAMCycles: 14880, Waste: 5120}
	if got := PredictRaw(100000, c); got != 8000 {
		t.Fatalf("PredictRaw = %d, want 8000", got)
	}
}

func TestPredictRawSaturation(t *testing.T) {
	// No accesses → predict the full free interval (maps to slowest rate).
	if got := PredictRaw(1000, Counters{}); got != 1000 {
		t.Fatalf("idle epoch: PredictRaw = %d, want 1000", got)
	}
	// Oversubscribed (waste exceeds epoch: concurrent queued requests each
	// accrue waste) → zero (fastest rate).
	c := Counters{AccessCount: 3, Waste: 2000}
	if got := PredictRaw(1000, c); got != 0 {
		t.Fatalf("oversubscribed: PredictRaw = %d, want 0", got)
	}
}

func TestPredictShiftAlgorithm1(t *testing.T) {
	// Algorithm 1 rounds AccessCount strictly up to a power of two —
	// including when it already is one (§7.2) — so the divisor for
	// AccessCount = 5 is 8, and for 8 it is 16.
	cases := []struct {
		count uint64
		want  uint64 // 1024 divided by effective divisor
	}{
		{0, 1024}, {1, 512}, {2, 256}, {3, 256}, {4, 128}, {5, 128},
		{7, 128}, {8, 64}, {9, 64}, {16, 32},
	}
	for _, tc := range cases {
		c := Counters{AccessCount: tc.count}
		if got := PredictShift(1024, c); got != tc.want {
			t.Errorf("PredictShift(count=%d) = %d, want %d", tc.count, got, tc.want)
		}
	}
}

func TestPredictShiftUndersetsByAtMostTwo(t *testing.T) {
	// §7.2: the shift divider undersets the prediction by at most 2×
	// relative to Equation 1 (and never oversets).
	f := func(epoch uint32, waste uint16, oram uint16, count uint16) bool {
		ep := uint64(epoch) + 1
		c := Counters{AccessCount: uint64(count), ORAMCycles: uint64(oram), Waste: uint64(waste)}
		exact := PredictRaw(ep, c)
		shift := PredictShift(ep, c)
		if shift > exact {
			return false
		}
		// shift ≥ exact/2 − 1 (integer truncation slack).
		return shift+1 >= exact/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorSelection(t *testing.T) {
	c := Counters{AccessCount: 5}
	if ShiftPredictor.Predict(1024, c) != PredictShift(1024, c) {
		t.Fatal("ShiftPredictor does not match PredictShift")
	}
	if ExactPredictor.Predict(1024, c) != PredictRaw(1024, c) {
		t.Fatal("ExactPredictor does not match PredictRaw")
	}
	if ShiftPredictor.String() != "shift" || ExactPredictor.String() != "exact" {
		t.Fatal("Predictor.String mismatch")
	}
	if LinearDiscretizer.String() != "linear" || LogDiscretizer.String() != "log" {
		t.Fatal("Discretizer.String mismatch")
	}
}

func TestCountersReset(t *testing.T) {
	c := Counters{AccessCount: 1, ORAMCycles: 2, Waste: 3}
	c.Reset()
	if c != (Counters{}) {
		t.Fatalf("Reset left %+v", c)
	}
}
