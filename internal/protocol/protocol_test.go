package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"tcoram/internal/leakage"
)

type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newPair(t *testing.T, seed int64) (*User, *Processor) {
	t.Helper()
	rr := detRand{rand.New(rand.NewSource(seed))}
	p, err := NewProcessor(rr, 1024)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUser(rr)
	if err := Handshake(u, p); err != nil {
		t.Fatal(err)
	}
	return u, p
}

func TestFullSessionRoundTrip(t *testing.T) {
	u, p := newPair(t, 1)
	program := []byte("certified program binary")
	data := []byte("the user's secret data")
	job, err := u.PrepareJob(data, program, leakage.Bits(94))
	if err != nil {
		t.Fatal(err)
	}
	params := LeakageParams{NumRates: 4, EpochGrowth: 4, Tmax: 1 << 62}
	if err := p.Admit(job, program, params); err != nil {
		t.Fatalf("Admit rejected a within-budget job: %v", err)
	}
	plain, err := p.DecryptData(job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, data) {
		t.Fatal("processor recovered wrong plaintext")
	}
	sealed, err := p.SealResult([]byte("result"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.Decrypt(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("result")) {
		t.Fatal("user recovered wrong result")
	}
}

func TestAdmitEnforcesLeakageLimit(t *testing.T) {
	u, p := newPair(t, 2)
	program := []byte("prog")
	// Limit 16 bits; R4/E4 admits 32 bits → refuse.
	job, err := u.PrepareJob([]byte("data"), program, leakage.Bits(16))
	if err != nil {
		t.Fatal(err)
	}
	err = p.Admit(job, program, LeakageParams{NumRates: 4, EpochGrowth: 4})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Admit err = %v, want ErrBudgetExceeded", err)
	}
	// R4/E16 admits 16 bits → accept.
	if err := p.Admit(job, program, LeakageParams{NumRates: 4, EpochGrowth: 16}); err != nil {
		t.Fatalf("within-budget params rejected: %v", err)
	}
	if l, ok := p.Limit(); !ok || float64(l) != 16 {
		t.Fatalf("Limit() = %v, %v", l, ok)
	}
}

func TestAdmitRejectsWrongProgram(t *testing.T) {
	u, p := newPair(t, 3)
	job, err := u.PrepareJob([]byte("data"), []byte("the certified program"), leakage.Bits(100))
	if err != nil {
		t.Fatal(err)
	}
	err = p.Admit(job, []byte("a DIFFERENT program"), LeakageParams{NumRates: 4, EpochGrowth: 16})
	if !errors.Is(err, ErrBadBinding) {
		t.Fatalf("Admit err = %v, want ErrBadBinding (program substitution)", err)
	}
}

func TestAdmitRejectsTamperedJob(t *testing.T) {
	u, p := newPair(t, 4)
	program := []byte("prog")
	job, err := u.PrepareJob([]byte("data"), program, leakage.Bits(100))
	if err != nil {
		t.Fatal(err)
	}
	job.EncryptedData[3] ^= 1
	err = p.Admit(job, program, LeakageParams{NumRates: 4, EpochGrowth: 16})
	if !errors.Is(err, ErrBadBinding) {
		t.Fatalf("Admit err = %v, want ErrBadBinding (ciphertext tampering)", err)
	}
	// Tampered limit field.
	job2, _ := u.PrepareJob([]byte("data"), program, leakage.Bits(16))
	job2.LimitBits = 1000
	err = p.Admit(job2, program, LeakageParams{NumRates: 4, EpochGrowth: 4})
	if !errors.Is(err, ErrBadBinding) {
		t.Fatalf("Admit err = %v, want ErrBadBinding (limit tampering)", err)
	}
}

func TestRunOncePreventsReplay(t *testing.T) {
	u, p := newPair(t, 5)
	program := []byte("prog")
	job, err := u.PrepareJob([]byte("data"), program, leakage.Bits(100))
	if err != nil {
		t.Fatal(err)
	}
	params := LeakageParams{NumRates: 4, EpochGrowth: 16}
	if err := p.Admit(job, program, params); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecryptData(job); err != nil {
		t.Fatal(err)
	}
	// Session ends; the processor forgets K.
	p.EndSession()
	// The server replays the same job (possibly with new parameters):
	// every operation must fail.
	if err := p.Admit(job, program, params); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("replayed Admit err = %v, want ErrSessionClosed", err)
	}
	if _, err := p.DecryptData(job); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("replayed DecryptData err = %v, want ErrSessionClosed", err)
	}
	if _, err := p.SealResult([]byte("x")); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("replayed SealResult err = %v, want ErrSessionClosed", err)
	}
}

func TestReplayLeakageArithmetic(t *testing.T) {
	// §4.3: N replays of an L-bit run leak N·L bits without protection.
	if got := MaxReplayLeakage(leakage.Bits(32), 10); float64(got) != 320 {
		t.Fatalf("MaxReplayLeakage = %v, want 320", got)
	}
	if MaxReplayLeakage(leakage.Bits(32), -1) != 0 {
		t.Fatal("negative runs should give 0")
	}
}

func TestLeakageParamsBits(t *testing.T) {
	if got := float64((LeakageParams{NumRates: 4, EpochGrowth: 4}).Bits()); got != 32 {
		t.Fatalf("R4/E4 Bits = %v, want 32", got)
	}
	if got := float64((LeakageParams{NumRates: 4, EpochGrowth: 16}).Bits()); got != 16 {
		t.Fatalf("R4/E16 Bits = %v, want 16", got)
	}
}

func TestSchedulerConfigGlue(t *testing.T) {
	cfg, err := (LeakageParams{NumRates: 4, EpochGrowth: 2}).SchedulerConfig(1488, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("generated config invalid: %v", err)
	}
	if len(cfg.Rates) != 4 || cfg.Schedule.Growth != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	if _, err := (LeakageParams{NumRates: 0, EpochGrowth: 2}).SchedulerConfig(1488, 1<<21); err == nil {
		t.Fatal("accepted zero rates")
	}
}

func TestUserRequiresHandshake(t *testing.T) {
	u := NewUser(detRand{rand.New(rand.NewSource(6))})
	if _, err := u.PrepareJob([]byte("d"), []byte("p"), 1); err == nil {
		t.Fatal("PrepareJob without handshake succeeded")
	}
	if _, err := u.Decrypt([]byte("xxxx")); err == nil {
		t.Fatal("Decrypt without handshake succeeded")
	}
}

func TestFreshSessionAfterEnd(t *testing.T) {
	// A NEW handshake after EndSession opens a fresh session: old
	// ciphertexts stay dead, new ones work.
	rr := detRand{rand.New(rand.NewSource(7))}
	p, err := NewProcessor(rr, 1024)
	if err != nil {
		t.Fatal(err)
	}
	u1 := NewUser(rr)
	if err := Handshake(u1, p); err != nil {
		t.Fatal(err)
	}
	oldJob, _ := u1.PrepareJob([]byte("old"), []byte("p"), 100)
	p.EndSession()

	u2 := NewUser(rr)
	if err := Handshake(u2, p); err != nil {
		t.Fatal(err)
	}
	// Old job cannot be admitted under the new session key.
	if err := p.Admit(oldJob, []byte("p"), LeakageParams{NumRates: 4, EpochGrowth: 16}); err == nil {
		t.Fatal("old job admitted under new session")
	}
	newJob, _ := u2.PrepareJob([]byte("new"), []byte("p"), 100)
	if err := p.Admit(newJob, []byte("p"), LeakageParams{NumRates: 4, EpochGrowth: 16}); err != nil {
		t.Fatalf("new job rejected: %v", err)
	}
}
