// Package protocol implements the user–server interaction of §5 and the
// replay-attack prevention of §8: session-key negotiation through the
// processor's device key, HMAC binding of the program and leakage
// parameters to the user's data (§10), run-once enforcement by forgetting
// the session key, and leakage-budget admission control.
package protocol

import (
	"errors"
	"fmt"
	"io"

	"tcoram/internal/core"
	"tcoram/internal/crypt"
	"tcoram/internal/leakage"
)

// ErrSessionClosed is returned when the server tries to reuse a session
// whose key the processor has forgotten (§8's run-once property).
var ErrSessionClosed = errors.New("protocol: session closed (key forgotten)")

// ErrBudgetExceeded is returned when the server's proposed leakage
// parameters would exceed the user's leakage limit L (§10).
var ErrBudgetExceeded = errors.New("protocol: leakage parameters exceed the user's limit")

// ErrBadBinding is returned when the HMAC binding of program/parameters to
// the user data fails verification.
var ErrBadBinding = errors.New("protocol: HMAC binding verification failed")

// LeakageParams are the public parameters the server forwards to the
// processor in step 2 of §5: the rate set R and epoch schedule E, plus Tmax
// for accounting.
type LeakageParams struct {
	NumRates    int
	EpochGrowth uint64
	Tmax        uint64
}

// Bits computes the ORAM timing-channel bound these parameters admit.
func (p LeakageParams) Bits() leakage.Bits {
	return leakage.PaperBudget(p.NumRates, p.EpochGrowth).ORAMBits()
}

// Processor is the secure processor's protocol endpoint. It owns the
// device key pair; each session's symmetric key K lives in a dedicated
// register that is zeroed when the session ends.
type Processor struct {
	device *crypt.DeviceKeyPair
	rnd    io.Reader

	// Session state.
	session *crypt.Cipher
	limit   leakage.Bits // user's leakage limit L for this session
	haveL   bool
}

// NewProcessor manufactures a processor with a fresh device key pair.
// keyBits ≥ 1024; tests use small keys for speed.
func NewProcessor(rnd io.Reader, keyBits int) (*Processor, error) {
	dev, err := crypt.GenerateDeviceKeyPair(rnd, keyBits)
	if err != nil {
		return nil, err
	}
	return &Processor{device: dev, rnd: rnd}, nil
}

// DevicePublicKey is shipped with the processor's certificate; users wrap
// their key-transport secret to it.
func (p *Processor) DevicePublicKey() interface{} { return p.device.Public() }

// User is the remote user's protocol endpoint.
type User struct {
	rnd io.Reader
	k   crypt.Key // session key after Handshake
	c   *crypt.Cipher
}

// NewUser creates a user endpoint drawing randomness from rnd.
func NewUser(rnd io.Reader) *User { return &User{rnd: rnd} }

// Handshake performs the expanded §8 key exchange:
//
//  1. the user samples K′, wraps it to the processor's public key;
//  2. the processor unwraps K′, samples the real session key K, and
//     returns encrypt_K′(K);
//  3. both sides now share K; the processor holds K in its session
//     register only.
func Handshake(u *User, p *Processor) error {
	kPrime, err := crypt.NewKey(u.rnd)
	if err != nil {
		return err
	}
	wrapped, err := crypt.WrapKey(u.rnd, p.device.Public(), kPrime)
	if err != nil {
		return err
	}

	// Processor side.
	gotKPrime, err := p.device.UnwrapKey(wrapped)
	if err != nil {
		return err
	}
	k, err := crypt.NewKey(p.rnd)
	if err != nil {
		return err
	}
	tmp := crypt.NewCipher(gotKPrime, p.rnd)
	kCt, err := tmp.Encrypt(k[:])
	if err != nil {
		return err
	}
	p.session = crypt.NewCipher(k, p.rnd)
	p.haveL = false

	// User side.
	uTmp := crypt.NewCipher(kPrime, u.rnd)
	kPlain, err := uTmp.Decrypt(kCt)
	if err != nil {
		return err
	}
	copy(u.k[:], kPlain)
	u.c = crypt.NewCipher(u.k, u.rnd)
	return nil
}

// Job is what the user submits: encrypted data, a certified program hash,
// the leakage limit L, and an HMAC binding them together (§10). Binding the
// program hash restricts the processor to run only that program on the
// data, mitigating the "adversary picks which L bits leak" subtlety.
type Job struct {
	EncryptedData []byte
	ProgramHash   [32]byte
	LimitBits     float64
	MAC           []byte
}

// PrepareJob encrypts data and binds (program, L) to it under the session
// key.
func (u *User) PrepareJob(data, program []byte, limit leakage.Bits) (Job, error) {
	if u.c == nil {
		return Job{}, errors.New("protocol: handshake not performed")
	}
	ct, err := u.c.Encrypt(data)
	if err != nil {
		return Job{}, err
	}
	h := crypt.Hash(program)
	lb := []byte(fmt.Sprintf("%.6f", float64(limit)))
	mac, err := u.c.MAC(ct, h[:], lb)
	if err != nil {
		return Job{}, err
	}
	return Job{EncryptedData: ct, ProgramHash: h, LimitBits: float64(limit), MAC: mac}, nil
}

// Decrypt recovers a result the processor returned under the session key.
func (u *User) Decrypt(ct []byte) ([]byte, error) {
	if u.c == nil {
		return nil, errors.New("protocol: handshake not performed")
	}
	return u.c.Decrypt(ct)
}

// Admit verifies the job binding and checks the server-chosen leakage
// parameters against the user's limit L. The processor refuses to run
// (returns an error) if the parameters could leak more than L bits over the
// ORAM timing channel (§10: "the processor can decide whether to run the
// program by computing possible leakage as in §6.1").
func (p *Processor) Admit(job Job, program []byte, params LeakageParams) error {
	if p.session == nil || p.session.Erased() {
		return ErrSessionClosed
	}
	h := crypt.Hash(program)
	if h != job.ProgramHash {
		return ErrBadBinding
	}
	lb := []byte(fmt.Sprintf("%.6f", job.LimitBits))
	if err := p.session.VerifyMAC(job.MAC, job.EncryptedData, h[:], lb); err != nil {
		return ErrBadBinding
	}
	if float64(params.Bits()) > job.LimitBits {
		return fmt.Errorf("%w: params admit %v > limit %.2f bits",
			ErrBudgetExceeded, params.Bits(), job.LimitBits)
	}
	p.limit = leakage.Bits(job.LimitBits)
	p.haveL = true
	return nil
}

// Limit returns the session's admitted leakage limit.
func (p *Processor) Limit() (leakage.Bits, bool) { return p.limit, p.haveL }

// DecryptData recovers the user's plaintext inside the enclave.
func (p *Processor) DecryptData(job Job) ([]byte, error) {
	if p.session == nil || p.session.Erased() {
		return nil, ErrSessionClosed
	}
	return p.session.Decrypt(job.EncryptedData)
}

// SealResult encrypts a program result back to the user (§5 step 4).
func (p *Processor) SealResult(result []byte) ([]byte, error) {
	if p.session == nil || p.session.Erased() {
		return nil, ErrSessionClosed
	}
	return p.session.Encrypt(result)
}

// EndSession forgets the session key K. After this, encrypt_K(D) is
// computationally undecryptable by anyone but the user, so the server
// cannot replay the data under new programs or epoch parameters (§8).
func (p *Processor) EndSession() {
	if p.session != nil {
		p.session.Erase()
	}
	p.haveL = false
}

// MaxReplayLeakage quantifies the §4.3 replay attack: a server that can
// rerun an L-bit-bounded execution n times learns up to n·L bits. With the
// run-once session (§8), n is forced to 1.
func MaxReplayLeakage(perRun leakage.Bits, runs int) leakage.Bits {
	if runs < 0 {
		return 0
	}
	return perRun * leakage.Bits(runs)
}

// SchedulerConfig converts admitted leakage parameters into the enforcer
// configuration the memory controller uses (glue between protocol and
// core).
func (p LeakageParams) SchedulerConfig(olat uint64, firstEpoch uint64) (core.EnforcerConfig, error) {
	rates, err := core.LogSpacedRates(p.NumRates, core.MinRate, core.MaxRate)
	if err != nil {
		return core.EnforcerConfig{}, err
	}
	return core.EnforcerConfig{
		ORAMLatency: olat,
		Rates:       rates,
		InitialRate: core.InitialRate,
		Schedule:    core.EpochSchedule{FirstLen: firstEpoch, Growth: p.EpochGrowth},
	}, nil
}
