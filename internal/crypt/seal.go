package crypt

import "fmt"

// Seal and OpenSealed protect trusted-state checkpoints at rest: the blob
// written to disk is MAC(ciphertext) ‖ ciphertext, so an offline adversary
// who can rewrite the checkpoint file can neither read the trusted state
// (position maps and stash contents are access-pattern secrets) nor forge
// one that OpenSealed accepts. MAC-then-store over the ciphertext keeps
// verification ahead of decryption: tampered bytes are rejected before any
// decrypted data is interpreted.

// Seal returns MAC(Encrypt(plaintext)) ‖ Encrypt(plaintext).
func Seal(c *Cipher, plaintext []byte) ([]byte, error) {
	ct, err := c.Encrypt(plaintext)
	if err != nil {
		return nil, fmt.Errorf("crypt: sealing: %w", err)
	}
	tag, err := c.MAC(ct)
	if err != nil {
		return nil, fmt.Errorf("crypt: sealing: %w", err)
	}
	return append(tag, ct...), nil
}

// OpenSealed verifies and decrypts a Seal blob, returning ErrAuthFailed on
// any truncation or modification.
func OpenSealed(c *Cipher, blob []byte) ([]byte, error) {
	if len(blob) < MACSize+NonceSize {
		return nil, ErrAuthFailed
	}
	tag, ct := blob[:MACSize], blob[MACSize:]
	if err := c.VerifyMAC(tag, ct); err != nil {
		return nil, err
	}
	return c.Decrypt(ct)
}
