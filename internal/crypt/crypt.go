// Package crypt provides the cryptographic substrate the secure processor
// relies on (§4.1, §5, §8 of the paper):
//
//   - probabilistic symmetric encryption (AES-128-CTR with a fresh random
//     nonce per encryption) used for ORAM buckets and all off-chip data;
//   - HMAC-SHA256 for binding programs, data and leakage parameters (§10);
//   - RSA-OAEP key transport for the run-once session-key exchange (§8);
//   - a fixed-latency accounting wrapper, because the paper requires that
//     "all encryption routines are fixed latency" (§4.1).
//
// Everything is implemented with the Go standard library.
package crypt

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key size in bytes (AES-128, matching the paper's
// AES-128 chunk pipeline in §9.1.4).
const KeySize = 16

// NonceSize is the per-encryption nonce size prepended to each ciphertext.
const NonceSize = 16

// MACSize is the HMAC-SHA256 tag size.
const MACSize = sha256.Size

// ErrKeyErased is returned when a session key has been forgotten (run-once
// replay prevention, §8).
var ErrKeyErased = errors.New("crypt: session key erased")

// ErrAuthFailed is returned when a MAC or padding check fails.
var ErrAuthFailed = errors.New("crypt: authentication failed")

// Key is a symmetric session key.
type Key [KeySize]byte

// NewKey samples a uniformly random key from r (crypto/rand.Reader in
// production; a deterministic reader in tests).
func NewKey(r io.Reader) (Key, error) {
	var k Key
	if _, err := io.ReadFull(r, k[:]); err != nil {
		return Key{}, fmt.Errorf("crypt: sampling key: %w", err)
	}
	return k, nil
}

// Zero overwrites the key in place. After Zero the key must not be used; it
// models the processor "forgetting" K at session end (§8).
func (k *Key) Zero() {
	for i := range k {
		k[i] = 0
	}
}

// Cipher performs probabilistic encryption under a fixed key. Each call to
// Encrypt draws a fresh nonce, so encrypting identical plaintexts yields
// unrelated ciphertexts — the property the Path ORAM write-back path and the
// root-bucket probing attack (§3.2) both depend on.
type Cipher struct {
	key    Key
	block  cipher.Block
	rand   io.Reader
	erased bool

	// Scratch state for the allocation-free CTR in EncryptTo/DecryptTo.
	// A Cipher is consequently not safe for concurrent use; each ORAM owns
	// its own Cipher, so this mirrors the single hardware AES pipeline.
	ctr [aes.BlockSize]byte
	ks  [aes.BlockSize]byte
}

// NewCipher builds a Cipher from key, drawing nonces from rnd. If rnd is
// nil, crypto/rand.Reader is used.
func NewCipher(key Key, rnd io.Reader) *Cipher {
	if rnd == nil {
		rnd = rand.Reader
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// KeySize is a valid AES key size; any failure is a bug.
		panic(err)
	}
	return &Cipher{key: key, block: block, rand: rnd}
}

// Erase forgets the key. All later operations fail with ErrKeyErased.
func (c *Cipher) Erase() {
	c.key.Zero()
	c.block = nil
	c.erased = true
}

// Erased reports whether the key has been forgotten.
func (c *Cipher) Erased() bool { return c.erased }

// Encrypt returns nonce ‖ CTR(key, nonce, plaintext). The output length is
// len(plaintext) + NonceSize, so fixed-size buckets stay fixed size.
func (c *Cipher) Encrypt(plaintext []byte) ([]byte, error) {
	out := make([]byte, NonceSize+len(plaintext))
	if err := c.EncryptTo(out, plaintext); err != nil {
		return nil, err
	}
	return out, nil
}

// EncryptTo writes nonce ‖ CTR(key, nonce, plaintext) into dst, which must
// be exactly len(plaintext) + NonceSize bytes. It is the allocation-free
// core of Encrypt: the ORAM write-back path encrypts buckets directly into
// the storage arena through it. dst must not overlap plaintext.
func (c *Cipher) EncryptTo(dst, plaintext []byte) error {
	if c.erased {
		return ErrKeyErased
	}
	if len(dst) != NonceSize+len(plaintext) {
		return fmt.Errorf("crypt: destination is %d bytes, want %d", len(dst), NonceSize+len(plaintext))
	}
	if _, err := io.ReadFull(c.rand, dst[:NonceSize]); err != nil {
		return fmt.Errorf("crypt: sampling nonce: %w", err)
	}
	c.xorKeyStream(dst[NonceSize:], plaintext, dst[:NonceSize])
	return nil
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(ciphertext []byte) ([]byte, error) {
	if c.erased {
		return nil, ErrKeyErased
	}
	if len(ciphertext) < NonceSize {
		return nil, fmt.Errorf("crypt: ciphertext too short (%d bytes)", len(ciphertext))
	}
	out := make([]byte, len(ciphertext)-NonceSize)
	if err := c.DecryptTo(out, ciphertext); err != nil {
		return nil, err
	}
	return out, nil
}

// DecryptTo inverts EncryptTo, writing the plaintext into dst, which must be
// exactly len(ciphertext) - NonceSize bytes. dst must not overlap
// ciphertext. Like EncryptTo it performs no allocation.
func (c *Cipher) DecryptTo(dst, ciphertext []byte) error {
	if c.erased {
		return ErrKeyErased
	}
	if len(ciphertext) < NonceSize {
		return fmt.Errorf("crypt: ciphertext too short (%d bytes)", len(ciphertext))
	}
	if len(dst) != len(ciphertext)-NonceSize {
		return fmt.Errorf("crypt: destination is %d bytes, want %d", len(dst), len(ciphertext)-NonceSize)
	}
	c.xorKeyStream(dst, ciphertext[NonceSize:], ciphertext[:NonceSize])
	return nil
}

// xorKeyStream XORs src with the AES-CTR keystream for nonce into dst using
// only the Cipher's scratch state. The counter layout and big-endian
// increment match crypto/cipher.NewCTR, so ciphertexts produced through
// either path are interchangeable.
func (c *Cipher) xorKeyStream(dst, src, nonce []byte) {
	copy(c.ctr[:], nonce)
	for off := 0; off < len(src); off += aes.BlockSize {
		c.block.Encrypt(c.ks[:], c.ctr[:])
		n := len(src) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		subtle.XORBytes(dst[off:off+n], src[off:off+n], c.ks[:n])
		for i := aes.BlockSize - 1; i >= 0; i-- {
			c.ctr[i]++
			if c.ctr[i] != 0 {
				break
			}
		}
	}
}

// MAC computes HMAC-SHA256 over the concatenation of the given parts, each
// length-prefixed so the encoding is unambiguous.
func (c *Cipher) MAC(parts ...[]byte) ([]byte, error) {
	if c.erased {
		return nil, ErrKeyErased
	}
	m := hmac.New(sha256.New, c.key[:])
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		m.Write(lenBuf[:])
		m.Write(p)
	}
	return m.Sum(nil), nil
}

// VerifyMAC checks tag against MAC(parts...) in constant time.
func (c *Cipher) VerifyMAC(tag []byte, parts ...[]byte) error {
	want, err := c.MAC(parts...)
	if err != nil {
		return err
	}
	if !hmac.Equal(tag, want) {
		return ErrAuthFailed
	}
	return nil
}

// Hash returns SHA-256 of data; used for certified program hashes (§10).
func Hash(data []byte) [sha256.Size]byte { return sha256.Sum256(data) }

// DeviceKeyPair is the secure processor's manufacturing key pair used for
// session-key transport (step 1 of §8's expanded protocol).
type DeviceKeyPair struct {
	priv *rsa.PrivateKey
}

// GenerateDeviceKeyPair creates the processor's long-lived key pair.
// bits=2048 is used in examples; tests may use smaller keys for speed.
func GenerateDeviceKeyPair(rnd io.Reader, bits int) (*DeviceKeyPair, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	priv, err := rsa.GenerateKey(rnd, bits)
	if err != nil {
		return nil, fmt.Errorf("crypt: generating device key: %w", err)
	}
	return &DeviceKeyPair{priv: priv}, nil
}

// Public returns the public half, shipped with the processor's certificate.
func (d *DeviceKeyPair) Public() *rsa.PublicKey { return &d.priv.PublicKey }

// WrapKey encrypts the symmetric key k to the processor's public key
// (user side of the §8 protocol).
func WrapKey(rnd io.Reader, pub *rsa.PublicKey, k Key) ([]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	ct, err := rsa.EncryptOAEP(sha256.New(), rnd, pub, k[:], []byte("tcoram-session"))
	if err != nil {
		return nil, fmt.Errorf("crypt: wrapping key: %w", err)
	}
	return ct, nil
}

// UnwrapKey recovers a wrapped symmetric key (processor side).
func (d *DeviceKeyPair) UnwrapKey(ciphertext []byte) (Key, error) {
	pt, err := rsa.DecryptOAEP(sha256.New(), nil, d.priv, ciphertext, []byte("tcoram-session"))
	if err != nil {
		return Key{}, ErrAuthFailed
	}
	if len(pt) != KeySize {
		return Key{}, ErrAuthFailed
	}
	var k Key
	copy(k[:], pt)
	return k, nil
}

// Equal reports whether two byte slices are equal (non-constant-time; for
// tests and non-secret comparisons).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
