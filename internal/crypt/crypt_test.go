package crypt

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"
)

// detRand is a deterministic io.Reader for tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newTestCipher(seed int64) *Cipher {
	rr := detRand{rand.New(rand.NewSource(seed))}
	key, err := NewKey(rr)
	if err != nil {
		panic(err)
	}
	return NewCipher(key, rr)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := newTestCipher(1)
	f := func(msg []byte) bool {
		ct, err := c.Encrypt(msg)
		if err != nil {
			return false
		}
		pt, err := c.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptToDecryptToRoundTrip(t *testing.T) {
	c := newTestCipher(12)
	f := func(msg []byte) bool {
		ct := make([]byte, NonceSize+len(msg))
		if err := c.EncryptTo(ct, msg); err != nil {
			return false
		}
		pt := make([]byte, len(msg))
		if err := c.DecryptTo(pt, ct); err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptToMatchesStdlibCTR(t *testing.T) {
	// The scratch-buffer CTR must produce byte-identical output to
	// crypto/cipher.NewCTR, so old and new ciphertexts are interchangeable.
	c := newTestCipher(13)
	for _, n := range []int{0, 1, 15, 16, 17, 192, 216, 4096} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		ct := make([]byte, NonceSize+n)
		if err := c.EncryptTo(ct, msg); err != nil {
			t.Fatal(err)
		}
		block, err := aes.NewCipher(c.key[:])
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, n)
		cipher.NewCTR(block, ct[:NonceSize]).XORKeyStream(want, msg)
		if !bytes.Equal(ct[NonceSize:], want) {
			t.Fatalf("n=%d: EncryptTo keystream diverges from cipher.NewCTR", n)
		}
		// And the wrapper Decrypt must invert it.
		pt, err := c.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("n=%d: Decrypt(EncryptTo output) mismatch", n)
		}
	}
}

func TestEncryptToRejectsBadSizes(t *testing.T) {
	c := newTestCipher(14)
	if err := c.EncryptTo(make([]byte, 10), make([]byte, 10)); err == nil {
		t.Fatal("EncryptTo accepted undersized destination")
	}
	if err := c.DecryptTo(make([]byte, 10), make([]byte, NonceSize-1)); err == nil {
		t.Fatal("DecryptTo accepted ciphertext shorter than the nonce")
	}
	if err := c.DecryptTo(make([]byte, 3), make([]byte, NonceSize+10)); err == nil {
		t.Fatal("DecryptTo accepted mismatched destination size")
	}
}

func TestEncryptToDecryptToAfterErase(t *testing.T) {
	c := newTestCipher(15)
	c.Erase()
	if err := c.EncryptTo(make([]byte, NonceSize+4), make([]byte, 4)); err != ErrKeyErased {
		t.Fatalf("EncryptTo after Erase: err = %v, want ErrKeyErased", err)
	}
	if err := c.DecryptTo(make([]byte, 4), make([]byte, NonceSize+4)); err != ErrKeyErased {
		t.Fatalf("DecryptTo after Erase: err = %v, want ErrKeyErased", err)
	}
}

func TestEncryptToDecryptToZeroAllocs(t *testing.T) {
	c := newTestCipher(16)
	msg := make([]byte, 216) // one Z=3/64B bucket plaintext
	ct := make([]byte, NonceSize+len(msg))
	pt := make([]byte, len(msg))
	if n := testing.AllocsPerRun(100, func() {
		if err := c.EncryptTo(ct, msg); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("EncryptTo allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := c.DecryptTo(pt, ct); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecryptTo allocates %.1f times per op, want 0", n)
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	// The same plaintext must encrypt to different ciphertexts — the
	// property the ORAM root-bucket probe (§3.2) exploits.
	c := newTestCipher(2)
	msg := make([]byte, 192)
	ct1, err := c.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := c.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestCiphertextLengthFixed(t *testing.T) {
	c := newTestCipher(3)
	for _, n := range []int{0, 1, 16, 192, 4096} {
		ct, err := c.Encrypt(make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != n+NonceSize {
			t.Fatalf("ciphertext of %d-byte plaintext is %d bytes, want %d", n, len(ct), n+NonceSize)
		}
	}
}

func TestDecryptRejectsShortCiphertext(t *testing.T) {
	c := newTestCipher(4)
	if _, err := c.Decrypt(make([]byte, NonceSize-1)); err == nil {
		t.Fatal("Decrypt accepted ciphertext shorter than the nonce")
	}
}

func TestEraseForgetsKey(t *testing.T) {
	c := newTestCipher(5)
	msg := []byte("secret user data")
	ct, err := c.Encrypt(msg)
	if err != nil {
		t.Fatal(err)
	}
	c.Erase()
	if !c.Erased() {
		t.Fatal("Erased() = false after Erase")
	}
	if _, err := c.Encrypt(msg); err != ErrKeyErased {
		t.Fatalf("Encrypt after Erase: err = %v, want ErrKeyErased", err)
	}
	if _, err := c.Decrypt(ct); err != ErrKeyErased {
		t.Fatalf("Decrypt after Erase: err = %v, want ErrKeyErased", err)
	}
	if _, err := c.MAC(msg); err != ErrKeyErased {
		t.Fatalf("MAC after Erase: err = %v, want ErrKeyErased", err)
	}
}

func TestKeyZero(t *testing.T) {
	k := Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	k.Zero()
	if k != (Key{}) {
		t.Fatal("Zero() left key material behind")
	}
}

func TestMACVerify(t *testing.T) {
	c := newTestCipher(6)
	prog := []byte("program")
	data := []byte("data")
	tag, err := c.MAC(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMAC(tag, prog, data); err != nil {
		t.Fatalf("VerifyMAC rejected valid tag: %v", err)
	}
	if err := c.VerifyMAC(tag, prog, []byte("tampered")); err != ErrAuthFailed {
		t.Fatalf("VerifyMAC on tampered data: err = %v, want ErrAuthFailed", err)
	}
}

func TestMACEncodingUnambiguous(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide: lengths are prefixed.
	c := newTestCipher(7)
	t1, err := c.MAC([]byte("ab"), []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.MAC([]byte("a"), []byte("bc"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(t1, t2) {
		t.Fatal("MAC encoding is ambiguous across part boundaries")
	}
}

func TestMACDiffersAcrossKeys(t *testing.T) {
	t1, err := newTestCipher(8).MAC([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := newTestCipher(9).MAC([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(t1, t2) {
		t.Fatal("MACs under different keys are identical")
	}
}

func TestKeyTransportRoundTrip(t *testing.T) {
	rr := detRand{rand.New(rand.NewSource(10))}
	dev, err := GenerateDeviceKeyPair(rr, 1024) // small key: test-only
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKey(rr)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WrapKey(rr, dev.Public(), k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.UnwrapKey(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatal("unwrapped key differs from wrapped key")
	}
}

func TestUnwrapRejectsGarbage(t *testing.T) {
	rr := detRand{rand.New(rand.NewSource(11))}
	dev, err := GenerateDeviceKeyPair(rr, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.UnwrapKey(make([]byte, 128)); err == nil {
		t.Fatal("UnwrapKey accepted garbage ciphertext")
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash([]byte("p")) != Hash([]byte("p")) {
		t.Fatal("Hash not deterministic")
	}
	if Hash([]byte("p")) == Hash([]byte("q")) {
		t.Fatal("Hash collision on distinct inputs")
	}
}

func TestFixedLatencyModel(t *testing.T) {
	lat := DefaultLatency()
	// The crypto overhead must be a constant, independent of anything
	// data-dependent: same value on every call.
	a := lat.AccessOverhead(0)
	b := lat.AccessOverhead(0)
	if a != b {
		t.Fatal("AccessOverhead not constant")
	}
	if a <= 0 {
		t.Fatalf("AccessOverhead = %d, want positive pipeline fill", a)
	}
	withMAC := FixedLatency{AESPipelineFill: 14, MACBlock: 10}
	if got := withMAC.AccessOverhead(3); got != 14+30 {
		t.Fatalf("AccessOverhead(3) = %d, want 44", got)
	}
}
