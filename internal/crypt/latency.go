package crypt

// The paper requires that "all encryption routines are fixed latency" (§4.1)
// so that crypto does not itself become a timing channel. This file models
// that requirement for the timing simulator: the AES unit processes one
// 16-byte chunk per DRAM cycle (§9.1.4 assumes a pipeline rate-matched to
// the pins), so encryption overlaps data movement and never adds
// data-dependent cycles.

// ChunkBytes is the AES block size the ORAM controller pipelines (§9.1.4).
const ChunkBytes = 16

// FixedLatency describes the constant cycle costs of the crypto engines.
// All values are processor cycles at 1 GHz.
type FixedLatency struct {
	// AESPipelineFill is the one-time fill latency of the AES pipeline at
	// the start of a path read; after the fill, throughput is rate-matched
	// to the pins so no further cycles accrue.
	AESPipelineFill int64
	// MACBlock is the fixed cost of one HMAC verification (integrity
	// extension); zero when integrity is disabled.
	MACBlock int64
}

// DefaultLatency returns the fixed-latency model used by the evaluation:
// a 14-stage AES pipeline fill and no MAC (integrity disabled by default,
// matching the paper's baseline which defers integrity to [25]).
func DefaultLatency() FixedLatency {
	return FixedLatency{AESPipelineFill: 14, MACBlock: 0}
}

// AccessOverhead returns the constant number of processor cycles an ORAM
// access spends on cryptography that is not overlapped with data transfer.
// It is independent of the data being moved — by construction the model
// cannot express data-dependent crypto time.
func (f FixedLatency) AccessOverhead(integrityBlocks int) int64 {
	return f.AESPipelineFill + f.MACBlock*int64(integrityBlocks)
}
