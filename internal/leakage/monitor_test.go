package leakage

import (
	"testing"

	"tcoram/internal/core"
)

func TestMonitorBitsPerEpoch(t *testing.T) {
	m, err := NewMonitor(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(m.BitsPerEpoch()); got != 2 {
		t.Fatalf("BitsPerEpoch(|R|=4) = %v, want 2", got)
	}
	m1, _ := NewMonitor(1, 32)
	if m1.BitsPerEpoch() != 0 {
		t.Fatal("|R|=1 should cost 0 bits per epoch")
	}
}

func TestMonitorTripsAtLimit(t *testing.T) {
	// L = 32 bits, |R| = 4 → exactly 16 transitions allowed (§9.3's
	// dynamic_R4_E4 budget).
	m, err := NewMonitor(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.EpochsAllowed(); got != 16 {
		t.Fatalf("EpochsAllowed = %d, want 16", got)
	}
	for i := 0; i < 16; i++ {
		if !m.ObserveTransition() {
			t.Fatalf("tripped early at transition %d", i)
		}
	}
	if m.ObserveTransition() {
		t.Fatal("17th transition should exceed the 32-bit limit")
	}
	if !m.Tripped() {
		t.Fatal("Tripped() = false after exceeding limit")
	}
	// Stays tripped.
	if m.ObserveTransition() {
		t.Fatal("monitor un-tripped itself")
	}
}

func TestMonitorObserveHistory(t *testing.T) {
	hist := []core.RateChange{
		{Epoch: 0, Rate: 10000}, // initial rate: not a choice
		{Epoch: 1, Rate: 256},
		{Epoch: 2, Rate: 1290},
		{Epoch: 3, Rate: 1290},
	}
	m, _ := NewMonitor(4, 32)
	if !m.ObserveHistory(hist) {
		t.Fatal("3 transitions × 2 bits should fit in 32")
	}
	if got := float64(m.Realized()); got != 6 {
		t.Fatalf("Realized = %v, want 6", got)
	}
	tight, _ := NewMonitor(4, 4)
	if tight.ObserveHistory(hist) {
		t.Fatal("3 transitions × 2 bits must trip a 4-bit limit")
	}
}

func TestMonitorRejectsBadInputs(t *testing.T) {
	if _, err := NewMonitor(0, 32); err == nil {
		t.Fatal("accepted |R|=0")
	}
	if _, err := NewMonitor(4, -1); err == nil {
		t.Fatal("accepted negative limit")
	}
}

func TestMonitorUnlimitedForSingleRate(t *testing.T) {
	m, _ := NewMonitor(1, 0)
	for i := 0; i < 100; i++ {
		if !m.ObserveTransition() {
			t.Fatal("|R|=1 monitor tripped despite zero-bit transitions")
		}
	}
	if m.EpochsAllowed() < 1<<30 {
		t.Fatal("|R|=1 should allow unbounded epochs")
	}
}
