// Package leakage implements the paper's information-theoretic leakage
// accounting (§2.1, §6, §10): worst-case bit leakage is the base-2 log of
// the number of distinct observable timing traces a program could generate.
// The package computes
//
//   - the dynamic scheme's bound |E|·lg|R| (+ lg Tmax for early
//     termination), with |E| derived from an epoch schedule;
//   - the unprotected baseline's trace count (Example 6.1's double sum,
//     also via an equivalent DP recurrence and a log-domain approximation
//     for astronomically large T);
//   - termination-time discretization (§6) and additive composition across
//     channels (§10);
//   - the probabilistic-leakage refinement of §10.
//
// The batched backend's k (blocks fetched per slot) and K (slots between
// eviction passes) are public parameters of the scheme, exactly like the
// rate set R: every slot performs the same k path fetches and the eviction
// cadence is a fixed function of the slot index, so neither adds observable
// traces and no new accounting term appears here.
//
// Cluster migration traffic is accounted the same way: when a routing-epoch
// bump triggers a rebalance (internal/cluster), each migrated block is one
// ordinary read and one ordinary write riding regular paced slots that
// would otherwise carry dummy accesses, so a node's observable schedule is
// identical with and without an active migration. The migration-dependent
// observables — the epoch number, the node map, and the copy rate
// (MigrateEvery) — are public deployment parameters like R, k and K, so
// elasticity adds no accounting term either; the cluster's leaked_bits
// remains the additive sum of the per-node |E|·lg|R| accounts.
package leakage

import (
	"fmt"
	"math"
	"math/big"

	"tcoram/internal/core"
)

// Bits is a leakage quantity in bits. Values may be fractional because they
// are logarithms of trace counts.
type Bits float64

// String renders with two decimals, as leakage bounds are usually reported.
func (b Bits) String() string { return fmt.Sprintf("%.2f bits", float64(b)) }

// Log2Big returns lg(n) for a positive big integer, exact to float64
// precision. lg(0) is defined as 0 here (one trace — no information).
func Log2Big(n *big.Int) Bits {
	if n.Sign() <= 0 {
		return 0
	}
	bitLen := n.BitLen()
	if bitLen <= 53 {
		return Bits(math.Log2(float64(n.Int64())))
	}
	// n = m · 2^(bitLen-53) with 53-bit mantissa m.
	shift := bitLen - 53
	m := new(big.Int).Rsh(n, uint(shift))
	return Bits(math.Log2(float64(m.Int64())) + float64(shift))
}

// TraceCountDynamic returns the number of distinct timing traces the
// dynamic scheme can generate from the ORAM channel alone: |R|^|E| (§6.1).
func TraceCountDynamic(numRates int, numEpochs int) *big.Int {
	if numRates < 1 || numEpochs < 0 {
		return big.NewInt(1)
	}
	return new(big.Int).Exp(big.NewInt(int64(numRates)), big.NewInt(int64(numEpochs)), nil)
}

// ORAMTimingBits is the dynamic scheme's ORAM-channel bound:
// |E| · lg|R| bits (§2.2.1).
func ORAMTimingBits(numRates int, numEpochs int) Bits {
	if numRates <= 1 || numEpochs <= 0 {
		return 0
	}
	return Bits(float64(numEpochs) * math.Log2(float64(numRates)))
}

// TerminationBits is the early-termination channel: lg Tmax bits (§6),
// optionally reduced by discretizing the termination time to multiples of
// 2^discretizeLog2 cycles ("round up to the next 2^30 cycles" reduces
// lg 2^62 = 62 bits to lg 2^32 = 32 bits).
func TerminationBits(tmax uint64, discretizeLog2 uint) Bits {
	if tmax == 0 {
		return 0
	}
	lg := math.Log2(float64(tmax))
	lg -= float64(discretizeLog2)
	if lg < 0 {
		return 0
	}
	return Bits(lg)
}

// Budget describes a leakage configuration to account for.
type Budget struct {
	// NumRates is |R|.
	NumRates int
	// Schedule is the epoch schedule used for leakage accounting — the
	// paper-scale schedule (first epoch 2^30), not the simulation-scaled
	// one.
	Schedule core.EpochSchedule
	// Tmax is the maximum runtime for accounting (paper: 2^62).
	Tmax uint64
	// TerminationDiscretizeLog2 rounds observable termination times up to
	// multiples of 2^k cycles (0 = exact termination time visible).
	TerminationDiscretizeLog2 uint
}

// PaperBudget returns the paper's accounting configuration for a dynamic
// scheme with |R| rates and the given epoch growth factor.
func PaperBudget(numRates int, growth uint64) Budget {
	return Budget{
		NumRates: numRates,
		Schedule: core.PaperSchedule(growth),
		Tmax:     core.PaperTmax,
	}
}

// Epochs returns |E| under this budget.
func (b Budget) Epochs() int { return b.Schedule.EpochsWithin(b.Tmax) }

// ORAMBits returns the ORAM timing channel bound.
func (b Budget) ORAMBits() Bits { return ORAMTimingBits(b.NumRates, b.Epochs()) }

// TerminationChannelBits returns the early-termination bound.
func (b Budget) TerminationChannelBits() Bits {
	return TerminationBits(b.Tmax, b.TerminationDiscretizeLog2)
}

// TotalBits returns the combined bound. Bit leakage across channels is
// additive (§10): lg(∏|Ti|) = Σ lg|Ti|.
func (b Budget) TotalBits() Bits {
	return b.ORAMBits() + b.TerminationChannelBits()
}

// Compose sums leakage across independent channels (§10: "bit leakage
// across different channels is additive").
func Compose(channels ...Bits) Bits {
	var sum Bits
	for _, c := range channels {
		sum += c
	}
	return sum
}

// StaticBits is the leakage of a static-rate scheme over the ORAM timing
// channel: exactly one trace, so lg 1 = 0 bits (Example 2.1).
func StaticBits() Bits { return 0 }

// MaliciousProgramBits is Example 2.1's malicious program P1: it can
// generate 2^T distinct traces in T time steps, leaking T bits.
func MaliciousProgramBits(timeSteps int) Bits { return Bits(timeSteps) }

// ProbLearnMoreBits is the §10 refinement: with an L-bit deterministic
// bound, an adversary using a concrete-assignment encoding can learn
// Lprime > L bits with probability 2^(L-1) / 2^Lprime (for uniformly
// distributed user data).
func ProbLearnMoreBits(l, lprime int) float64 {
	if lprime < l || l < 1 {
		return 0
	}
	return math.Exp2(float64(l-1) - float64(lprime))
}
