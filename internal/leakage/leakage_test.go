package leakage

import (
	"math"
	"math/big"
	"testing"

	"tcoram/internal/core"
)

func TestLog2Big(t *testing.T) {
	cases := []struct {
		n    int64
		want float64
	}{
		{1, 0}, {2, 1}, {4, 2}, {1024, 10}, {3, math.Log2(3)},
	}
	for _, tc := range cases {
		got := float64(Log2Big(big.NewInt(tc.n)))
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Log2Big(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	// Huge value: 2^200 → exactly 200 bits.
	huge := new(big.Int).Lsh(big.NewInt(1), 200)
	if got := float64(Log2Big(huge)); math.Abs(got-200) > 1e-9 {
		t.Fatalf("Log2Big(2^200) = %v, want 200", got)
	}
	if Log2Big(big.NewInt(0)) != 0 {
		t.Fatal("Log2Big(0) should be 0")
	}
}

func TestExample21MaliciousProgram(t *testing.T) {
	// Example 2.1: P1 generates 2^T traces in T time → T bits; a single
	// static rate yields exactly one trace → 0 bits.
	if got := MaliciousProgramBits(10); got != 10 {
		t.Fatalf("MaliciousProgramBits(10) = %v, want 10", got)
	}
	if StaticBits() != 0 {
		t.Fatal("static scheme must leak 0 bits over the ORAM channel")
	}
}

func TestExample61DynamicLeakage(t *testing.T) {
	// Example 6.1: first epoch 2^30, doubling, |R| = 4, Tmax = 2^62 →
	// 32 epochs → lg 4^32 = 64 bits; with early termination ≤ 64 + 62 =
	// 126 bits.
	b := PaperBudget(4, 2)
	if e := b.Epochs(); e != 32 {
		t.Fatalf("epochs = %d, want 32", e)
	}
	if got := float64(b.ORAMBits()); got != 64 {
		t.Fatalf("ORAM bits = %v, want 64", got)
	}
	if got := float64(b.TotalBits()); got != 126 {
		t.Fatalf("total bits = %v, want 126", got)
	}
	// Trace count is 4^32 exactly.
	want := new(big.Int).Exp(big.NewInt(4), big.NewInt(32), nil)
	if TraceCountDynamic(4, 32).Cmp(want) != 0 {
		t.Fatal("TraceCountDynamic(4,32) != 4^32")
	}
}

func TestPaperHeadlineConfigs(t *testing.T) {
	// §9.3: dynamic_R4_E4 expends 16 epochs → 32 bits.
	r4e4 := PaperBudget(4, 4)
	if got := float64(r4e4.ORAMBits()); got != 32 {
		t.Fatalf("R4_E4 = %v bits, want 32", got)
	}
	// §9.5: dynamic_R4_E16 (8 epochs in Tmax) → 16 bits.
	r4e16 := PaperBudget(4, 16)
	if got := float64(r4e16.ORAMBits()); got != 16 {
		t.Fatalf("R4_E16 = %v bits, want 16", got)
	}
	// §9.5: halving |R| from 16 to 4 drops leakage 2×: E2 with |R|=16 is
	// 32·4 = 128 bits; |R|=4 is 64.
	if got := float64(PaperBudget(16, 2).ORAMBits()); got != 128 {
		t.Fatalf("R16_E2 = %v bits, want 128", got)
	}
	if got := float64(PaperBudget(4, 2).ORAMBits()); got != 64 {
		t.Fatalf("R4_E2 = %v bits, want 64", got)
	}
	// Total with termination: 62 + 32 = 94 bits for R4_E4 (§9.3).
	if got := float64(r4e4.TotalBits()); got != 94 {
		t.Fatalf("R4_E4 total = %v, want 94", got)
	}
}

func TestTerminationDiscretization(t *testing.T) {
	// §6: lg Tmax = 62 bits; rounding termination up to 2^30 cycles
	// reduces it to lg 2^(62−30) = 32 bits.
	if got := float64(TerminationBits(core.PaperTmax, 0)); got != 62 {
		t.Fatalf("TerminationBits = %v, want 62", got)
	}
	if got := float64(TerminationBits(core.PaperTmax, 30)); got != 32 {
		t.Fatalf("discretized TerminationBits = %v, want 32", got)
	}
	if got := float64(TerminationBits(core.PaperTmax, 70)); got != 0 {
		t.Fatalf("over-discretized TerminationBits = %v, want 0", got)
	}
	if TerminationBits(0, 0) != 0 {
		t.Fatal("TerminationBits(0) should be 0")
	}
}

func TestComposeAdditive(t *testing.T) {
	// §10: leakage across channels is additive.
	got := Compose(Bits(32), Bits(62), Bits(6))
	if float64(got) != 100 {
		t.Fatalf("Compose = %v, want 100", got)
	}
	if Compose() != 0 {
		t.Fatal("empty Compose should be 0")
	}
}

func TestORAMTimingBitsDegenerate(t *testing.T) {
	if ORAMTimingBits(1, 100) != 0 {
		t.Fatal("|R|=1 must leak 0 bits")
	}
	if ORAMTimingBits(4, 0) != 0 {
		t.Fatal("0 epochs must leak 0 bits")
	}
}

func TestUnprotectedRecurrenceMatchesBinomial(t *testing.T) {
	// The DP recurrence and Example 6.1's binomial double-sum must agree.
	for _, olat := range []int{1, 2, 3, 7} {
		for _, tm := range []int{0, 1, 2, 5, 13, 40} {
			dp := UnprotectedTraceCount(tm, olat)
			bn := UnprotectedTraceCountBinomial(tm, olat)
			if dp.Cmp(bn) != 0 {
				t.Fatalf("t=%d olat=%d: DP %s != binomial %s", tm, olat, dp, bn)
			}
		}
	}
}

func TestUnprotectedKnownSmallCounts(t *testing.T) {
	// olat=1: every step may independently access → 2^t traces.
	for tm := 0; tm <= 10; tm++ {
		want := new(big.Int).Lsh(big.NewInt(1), uint(tm))
		if got := UnprotectedTraceCount(tm, 1); got.Cmp(want) != 0 {
			t.Fatalf("olat=1 t=%d: %s, want %s", tm, got, want)
		}
	}
	// olat=2: Fibonacci growth — f(t) = f(t−1) + f(t−2), f(0)=f(1)=1.
	want := []int64{1, 1, 2, 3, 5, 8, 13}
	for tm, w := range want {
		if got := UnprotectedTraceCount(tm, 2); got.Int64() != w {
			t.Fatalf("olat=2 t=%d: %s, want %d", tm, got, w)
		}
	}
}

func TestUnprotectedMonotone(t *testing.T) {
	prev := big.NewInt(0)
	for tm := 0; tm <= 60; tm++ {
		cur := UnprotectedTraceCount(tm, 5)
		if cur.Cmp(prev) < 0 {
			t.Fatalf("trace count decreased at t=%d", tm)
		}
		prev = cur
	}
	// Larger OLAT → fewer traces (accesses block longer).
	a := UnprotectedTraceCount(50, 3)
	b := UnprotectedTraceCount(50, 10)
	if a.Cmp(b) <= 0 {
		t.Fatal("larger OLAT should reduce trace count")
	}
}

func TestUnprotectedApproxConvergesToExact(t *testing.T) {
	for _, olat := range []int{2, 5, 20} {
		tm := 4000
		exact := float64(UnprotectedBitsExact(tm, olat))
		approx := float64(UnprotectedBitsApprox(float64(tm), olat))
		if exact == 0 {
			t.Fatal("degenerate exact value")
		}
		rel := math.Abs(exact-approx) / exact
		if rel > 0.02 {
			t.Fatalf("olat=%d: approx %v vs exact %v (rel err %.3f)", olat, approx, exact, rel)
		}
	}
}

func TestUnprotectedAstronomicalAtPaperScale(t *testing.T) {
	// §Example 6.1: with OLAT in the thousands, the unprotected leakage
	// at Tmax = 2^62 is astronomical — vastly above the 126-bit dynamic
	// bound.
	bits := float64(UnprotectedBitsApprox(math.Exp2(62), 1488))
	if bits < 1e9 {
		t.Fatalf("unprotected bound = %v bits; expected astronomical (>1e9)", bits)
	}
	dynamic := float64(PaperBudget(4, 2).TotalBits())
	if bits < 1e6*dynamic {
		t.Fatalf("unprotected (%v) should dwarf dynamic (%v)", bits, dynamic)
	}
}

func TestUnprotectedAllTerminations(t *testing.T) {
	// Summing per-termination counts must exceed the count at tmax alone
	// and stay below tmax × that count.
	tmax, olat := 30, 4
	sum := UnprotectedTraceCountAllTerminations(tmax, olat)
	at := UnprotectedTraceCount(tmax, olat)
	if sum.Cmp(at) <= 0 {
		t.Fatal("all-terminations sum should exceed single-termination count")
	}
	bound := new(big.Int).Mul(at, big.NewInt(int64(tmax)))
	if sum.Cmp(bound) > 0 {
		t.Fatal("all-terminations sum exceeds tmax × max count")
	}
}

func TestProbLearnMoreBits(t *testing.T) {
	// §10: one trace pair (L=1); learning L'=3 bits happens w.p.
	// 2^(1−1)/2^3 = 1/8.
	if got := ProbLearnMoreBits(1, 3); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("ProbLearnMoreBits(1,3) = %v, want 0.125", got)
	}
	if got := ProbLearnMoreBits(4, 4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ProbLearnMoreBits(4,4) = %v, want 0.5", got)
	}
	if ProbLearnMoreBits(3, 2) != 0 {
		t.Fatal("Lprime < L should be probability 0")
	}
	if ProbLearnMoreBits(0, 2) != 0 {
		t.Fatal("L < 1 should be probability 0")
	}
}

func TestBitsString(t *testing.T) {
	if Bits(32).String() != "32.00 bits" {
		t.Fatalf("Bits.String() = %q", Bits(32).String())
	}
}

func TestBudgetTerminationChannel(t *testing.T) {
	b := PaperBudget(4, 4)
	b.TerminationDiscretizeLog2 = 30
	if got := float64(b.TotalBits()); got != 32+32 {
		t.Fatalf("discretized total = %v, want 64", got)
	}
}
