package leakage

import (
	"math"
	"math/big"
)

// This file bounds the information an *unprotected* ORAM (base_oram) can
// leak through access timing. Example 6.1 counts, for every termination
// time t ≤ Tmax, the number of t-step timing traces in which any access
// (a "1") is followed by at least OLAT−1 quiet steps — i.e. binomial sums
// over placements of i accesses in t steps. The count explodes ("the
// resulting leakage is astronomical"), which is the paper's argument that
// no-protection is unacceptable.

// UnprotectedTraceCount returns the exact number of distinct access-timing
// traces of length exactly t with per-access latency olat, via the linear
// recurrence
//
//	f(n) = f(n−1) + f(n−olat) for n ≥ olat;  f(n) = 1 for 0 ≤ n < olat
//
// (a trace either starts with a quiet step, or with an access that blocks
// the next olat steps — which must fit inside the trace, matching the
// paper's footnote: "any 1 bit must be followed by at least OLAT−1
// repeated 0 bits"). This equals Σ_i C(t − i(olat−1), i), the inner sum of
// Example 6.1's formula for one termination time.
func UnprotectedTraceCount(t int, olat int) *big.Int {
	if t < 0 {
		return big.NewInt(1)
	}
	if olat < 1 {
		olat = 1
	}
	f := make([]*big.Int, t+1)
	for n := 0; n <= t; n++ {
		if n < olat {
			f[n] = big.NewInt(1)
			continue
		}
		f[n] = new(big.Int).Add(f[n-1], f[n-olat])
	}
	return f[t]
}

// UnprotectedTraceCountBinomial evaluates Example 6.1's inner sum directly:
// Σ_{i=0}^{⌊t/olat⌋} C(t − i(olat−1), i). Used to cross-check the
// recurrence in tests.
func UnprotectedTraceCountBinomial(t int, olat int) *big.Int {
	if t < 0 {
		return big.NewInt(1)
	}
	if olat < 1 {
		olat = 1
	}
	total := big.NewInt(0)
	for i := 0; ; i++ {
		n := t - i*(olat-1)
		if n < i {
			break
		}
		total.Add(total, new(big.Int).Binomial(int64(n), int64(i)))
	}
	return total
}

// UnprotectedTraceCountAllTerminations sums the per-termination counts over
// every t ≤ tmax — the full outer sum of Example 6.1. Exact, so only
// feasible for small tmax; use UnprotectedBitsApprox for paper-scale Tmax.
func UnprotectedTraceCountAllTerminations(tmax int, olat int) *big.Int {
	total := big.NewInt(0)
	for t := 1; t <= tmax; t++ {
		total.Add(total, UnprotectedTraceCount(t, olat))
	}
	return total
}

// UnprotectedBitsExact is lg of UnprotectedTraceCount.
func UnprotectedBitsExact(t int, olat int) Bits {
	return Log2Big(UnprotectedTraceCount(t, olat))
}

// UnprotectedBitsApprox estimates lg f(T) for astronomically large T using
// the dominant root of the characteristic polynomial x^olat = x^(olat−1)+1:
// f(T) ~ c·r^T, so lg f(T) ≈ T·lg r. The relative error vanishes as T
// grows; tests check it against the exact DP at tractable sizes.
func UnprotectedBitsApprox(t float64, olat int) Bits {
	if olat < 1 {
		olat = 1
	}
	r := dominantRoot(olat)
	return Bits(t * math.Log2(r))
}

// dominantRoot finds the unique real root > 1 of x^olat − x^(olat−1) − 1 by
// bisection (the function is increasing in x for x ≥ 1).
func dominantRoot(olat int) float64 {
	g := func(x float64) float64 {
		// x^(olat-1)·(x − 1) − 1, computed in logs for stability.
		return float64(olat-1)*math.Log(x) + math.Log(x-1)
	}
	lo, hi := 1.0+1e-15, 2.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 { // g(x) < 0 ⟺ x^(olat−1)(x−1) < 1
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
