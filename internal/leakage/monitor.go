package leakage

import (
	"fmt"
	"math"

	"tcoram/internal/core"
)

// Monitor implements the first use of the leakage measure suggested in
// §2.1: "we can track the number of traces using hardware mechanisms, and
// (for example) shut down the chip if leakage exceeds L before the program
// terminates." Realized ORAM-channel leakage grows by lg|R| bits at every
// epoch transition (one |R|-way choice becomes observable); the monitor
// compares it against the session's limit L.
type Monitor struct {
	numRates int
	limit    Bits
	realized Bits
	epochs   int
	tripped  bool
}

// NewMonitor creates a monitor for a dynamic scheme with |R| = numRates and
// session leakage limit L (ORAM channel only; compose the termination
// channel separately via Compose).
func NewMonitor(numRates int, limit Bits) (*Monitor, error) {
	if numRates < 1 {
		return nil, fmt.Errorf("leakage: numRates must be ≥ 1, got %d", numRates)
	}
	if limit < 0 {
		return nil, fmt.Errorf("leakage: negative limit %v", limit)
	}
	return &Monitor{numRates: numRates, limit: limit}, nil
}

// BitsPerEpoch is the leakage cost of one rate choice: lg|R|.
func (m *Monitor) BitsPerEpoch() Bits {
	if m.numRates <= 1 {
		return 0
	}
	return Bits(math.Log2(float64(m.numRates)))
}

// ObserveTransition records one epoch transition and reports whether the
// accumulated leakage now exceeds the limit — the shutdown condition. Once
// tripped, the monitor stays tripped.
func (m *Monitor) ObserveTransition() (withinLimit bool) {
	m.epochs++
	m.realized += m.BitsPerEpoch()
	if m.realized > m.limit {
		m.tripped = true
	}
	return !m.tripped
}

// ObserveHistory replays an enforcer's rate-change history (skipping the
// initial epoch-0 entry, which is not a choice) and reports whether the
// limit held throughout.
func (m *Monitor) ObserveHistory(history []core.RateChange) bool {
	ok := true
	for i := range history {
		if history[i].Epoch == 0 {
			continue
		}
		if !m.ObserveTransition() {
			ok = false
		}
	}
	return ok
}

// Realized returns the accumulated ORAM-channel leakage.
func (m *Monitor) Realized() Bits { return m.realized }

// Tripped reports whether the limit was ever exceeded.
func (m *Monitor) Tripped() bool { return m.tripped }

// EpochsAllowed returns how many epoch transitions fit within the limit —
// the horizon after which the chip must stop adapting (or shut down).
func (m *Monitor) EpochsAllowed() int {
	per := float64(m.BitsPerEpoch())
	if per == 0 {
		return math.MaxInt32
	}
	return int(float64(m.limit) / per)
}
