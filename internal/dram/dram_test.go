package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero channels", func(c *Config) { c.Channels = 0 }},
		{"negative banks", func(c *Config) { c.BanksPerChannel = -1 }},
		{"zero row", func(c *Config) { c.RowBytes = 0 }},
		{"row not multiple of burst", func(c *Config) { c.RowBytes = 100 }},
		{"zero burst", func(c *Config) { c.BurstBytes = 0 }},
		{"zero tCAS", func(c *Config) { c.TCAS = 0 }},
		{"zero tRCD", func(c *Config) { c.TRCD = 0 }},
		{"zero tRP", func(c *Config) { c.TRP = 0 }},
		{"zero tBurst", func(c *Config) { c.TBurst = 0 }},
		{"zero clock num", func(c *Config) { c.CPUCycleNum = 0 }},
		{"zero clock den", func(c *Config) { c.CPUCycleDen = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate() accepted invalid config %+v", cfg)
			}
		})
	}
}

func TestToCPUCyclesRoundsUp(t *testing.T) {
	cfg := Default() // 3/4 ratio
	cases := []struct {
		dram, cpu int64
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {5, 4}, {8, 6}, {1984, 1488},
	}
	for _, tc := range cases {
		if got := cfg.ToCPUCycles(tc.dram); got != tc.cpu {
			t.Errorf("ToCPUCycles(%d) = %d, want %d", tc.dram, got, tc.cpu)
		}
	}
}

func TestPinBandwidth(t *testing.T) {
	// Table 1: 16 B/DRAM-cycle per channel, 2 channels, DRAM clock 4/3 of
	// CPU clock → 42.67 B per CPU cycle.
	got := Default().PinBandwidthBytesPerCPUCycle()
	want := 16.0 * 2 * 4 / 3
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("PinBandwidthBytesPerCPUCycle() = %v, want %v", got, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := Default()
	ch := NewChannel(cfg)
	// First access: row closed → activate + CAS + burst.
	first := ch.Access(0, 0, 7, Read)
	wantFirst := int64(cfg.TRCD + cfg.TCAS + cfg.TBurst)
	if first != wantFirst {
		t.Fatalf("closed-row access latency = %d, want %d", first, wantFirst)
	}
	// Row hit on same row: only CAS + burst beyond bank ready time.
	second := ch.Access(first, 0, 7, Read)
	if hit := second - first; hit != int64(cfg.TCAS+cfg.TBurst) {
		t.Fatalf("row-hit latency = %d, want %d", hit, cfg.TCAS+cfg.TBurst)
	}
	// Row conflict: precharge + activate + CAS + burst.
	third := ch.Access(second, 0, 99, Read)
	if conflict := third - second; conflict != int64(cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst) {
		t.Fatalf("row-conflict latency = %d, want %d", conflict, cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := Default()
	ch := NewChannel(cfg)
	w := ch.Access(0, 0, 3, Write)
	r := ch.Access(w, 0, 3, Read)
	// Same open row, but read-after-write pays TWTR.
	if gap := r - w; gap != int64(cfg.TCAS+cfg.TBurst+cfg.TWTR) {
		t.Fatalf("write→read latency = %d, want %d", gap, cfg.TCAS+cfg.TBurst+cfg.TWTR)
	}
	r2 := ch.Access(r, 0, 3, Read)
	if gap := r2 - r; gap != int64(cfg.TCAS+cfg.TBurst) {
		t.Fatalf("read→read latency = %d, want %d", gap, cfg.TCAS+cfg.TBurst)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	cfg := Default()
	ch := NewChannel(cfg)
	// Two accesses to different banks: activates overlap, data serializes
	// on the bus, so total < 2× serial latency.
	serial := int64(2 * (cfg.TRCD + cfg.TCAS + cfg.TBurst))
	a := ch.Access(0, 0, 1, Read)
	b := ch.Access(0, 1, 1, Read)
	last := a
	if b > last {
		last = b
	}
	if last >= serial {
		t.Fatalf("two-bank completion %d not faster than serial %d", last, serial)
	}
	if gap := b - a; gap != int64(cfg.TBurst) {
		t.Fatalf("bus gap between overlapped banks = %d, want %d (bus-limited)", gap, cfg.TBurst)
	}
}

func TestDecodeStripesChannels(t *testing.T) {
	sys := NewSystem(Default())
	b0 := sys.Decode(0, Read)
	b1 := sys.Decode(64, Read)
	if b0.Channel == b1.Channel {
		t.Fatalf("consecutive bursts on same channel %d; want striping", b0.Channel)
	}
	if b0.Bank != b1.Bank && b0.Row != b1.Row {
		// striping only changes channel for adjacent lines
		t.Fatalf("adjacent lines differ beyond channel: %+v vs %+v", b0, b1)
	}
}

func TestDecodeDeterministicAndInRange(t *testing.T) {
	sys := NewSystem(Default())
	cfg := sys.Config()
	f := func(addr uint32) bool {
		b := sys.Decode(int64(addr), Read)
		b2 := sys.Decode(int64(addr), Read)
		return b == b2 &&
			b.Channel >= 0 && b.Channel < cfg.Channels &&
			b.Bank >= 0 && b.Bank < cfg.BanksPerChannel &&
			b.Row >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	mk := func() int64 {
		sys := NewSystem(Default())
		var bursts []Burst
		for i := int64(0); i < 500; i++ {
			bursts = append(bursts, sys.Decode(i*64, Read))
		}
		return sys.Sequence(bursts)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("Sequence not deterministic: %d vs %d", a, b)
	}
}

func TestSequenceBandwidthBound(t *testing.T) {
	// A long streaming read cannot exceed the pin bandwidth: n bursts of
	// 64 B on 2 channels take at least n*TBurst/Channels DRAM cycles.
	sys := NewSystem(Default())
	cfg := sys.Config()
	n := int64(4096)
	var bursts []Burst
	for i := int64(0); i < n; i++ {
		bursts = append(bursts, sys.Decode(i*64, Read))
	}
	done := sys.Sequence(bursts)
	minCycles := n * int64(cfg.TBurst) / int64(cfg.Channels)
	if done < minCycles {
		t.Fatalf("streaming %d bursts finished in %d DRAM cycles, below bus bound %d", n, done, minCycles)
	}
	// And streaming should be reasonably efficient (row hits): within 2x
	// of the bound.
	if done > 2*minCycles {
		t.Fatalf("streaming %d bursts took %d DRAM cycles, more than 2× bus bound %d", n, done, minCycles)
	}
}

func TestSystemResetRestoresIdle(t *testing.T) {
	sys := NewSystem(Default())
	b := []Burst{sys.Decode(0, Read), sys.Decode(64, Read), sys.Decode(4096, Write)}
	t1 := sys.Sequence(b)
	sys.Reset()
	b2 := []Burst{sys.Decode(0, Read), sys.Decode(64, Read), sys.Decode(4096, Write)}
	t2 := sys.Sequence(b2)
	if t1 != t2 {
		t.Fatalf("Reset did not restore idle state: %d vs %d", t1, t2)
	}
}

func TestFlatLatencyMatchesPaper(t *testing.T) {
	// §9.1.2: "We model main memory latency for insecure systems with a
	// flat 40 cycles."
	if FlatLatency != 40 {
		t.Fatalf("FlatLatency = %d, want 40", FlatLatency)
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("AccessKind.String() mismatch")
	}
}
