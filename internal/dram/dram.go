// Package dram models a DDR3-style main memory at the level of detail the
// paper depends on: per-bank row-buffer state, rank/bank geometry, and the
// core timing constraints (tRCD, tRP, tCAS, tBURST, tRC). The model is used
// in two ways:
//
//  1. To derive the latency of one full (recursive) Path ORAM access, which
//     the paper reports as 1488 processor cycles moving 24.2 KB across the
//     pins (§9.1.2). Path ORAM traffic is data-independent, so this latency
//     is computed once and reused as a scalar by the system simulator.
//  2. To back the functional shared-DRAM used by the adversary's
//     root-bucket probing attack (§3.2).
//
// Clock domains: the processor runs at 1 GHz; DRAM is DDR-667 (two channels)
// whose data bus is rate-matched by a 1.334 GHz SDR equivalent, i.e. one
// "DRAM cycle" is 0.75 processor cycles and moves 16 bytes across the pins
// (Table 1).
package dram

import (
	"fmt"
)

// Config describes a DDR3-like memory system. The defaults (Default) follow
// Table 1 of the paper plus standard DDR3-1333 device timings.
type Config struct {
	// Channels is the number of independent memory channels. Path ORAM
	// stripes consecutive bursts across channels.
	Channels int
	// BanksPerChannel is the number of DRAM banks per channel.
	BanksPerChannel int
	// RowBytes is the size of one DRAM row (page) per bank.
	RowBytes int
	// BurstBytes is the number of bytes moved per DRAM burst
	// (pin bandwidth per DRAM cycle × burst length).
	BurstBytes int

	// All timings below are in DRAM cycles (1.334 GHz SDR equivalent).

	// TCAS is the column access (CL) latency.
	TCAS int
	// TRCD is the row-to-column delay (ACT to READ/WRITE).
	TRCD int
	// TRP is the row precharge time.
	TRP int
	// TBurst is the data transfer time of one burst.
	TBurst int
	// TWTR is the write-to-read turnaround penalty on a channel.
	TWTR int

	// CPUCyclesPerDRAMCycle converts DRAM cycles into processor cycles.
	// With a 1 GHz core and a 1.334 GHz effective DRAM data clock this is
	// 0.75; it is expressed as a rational (num/den) to keep the model
	// integer-exact.
	CPUCycleNum int
	CPUCycleDen int
}

// Default returns the configuration used throughout the paper's evaluation:
// two channels of DDR-667 (DDR3-1333) with 8 banks each, 8 KB rows, and a
// 16-byte pin transfer per DRAM cycle.
func Default() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        8192,
		BurstBytes:      64, // one cache line per 4-cycle burst (16 B/cycle)
		TCAS:            9,
		TRCD:            9,
		TRP:             9,
		TBurst:          4,
		TWTR:            5,
		CPUCycleNum:     3,
		CPUCycleDen:     4,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", c.Channels)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram: BanksPerChannel must be positive, got %d", c.BanksPerChannel)
	case c.BurstBytes <= 0:
		return fmt.Errorf("dram: BurstBytes must be positive, got %d", c.BurstBytes)
	case c.RowBytes <= 0 || c.RowBytes%c.BurstBytes != 0:
		return fmt.Errorf("dram: RowBytes (%d) must be a positive multiple of BurstBytes (%d)", c.RowBytes, c.BurstBytes)
	case c.TCAS <= 0 || c.TRCD <= 0 || c.TRP <= 0 || c.TBurst <= 0:
		return fmt.Errorf("dram: all timing parameters must be positive")
	case c.CPUCycleNum <= 0 || c.CPUCycleDen <= 0:
		return fmt.Errorf("dram: CPU/DRAM clock ratio must be positive")
	}
	return nil
}

// ToCPUCycles converts a duration in DRAM cycles to processor cycles,
// rounding up (a request is not complete until the full DRAM cycle ends).
func (c Config) ToCPUCycles(dramCycles int64) int64 {
	n := dramCycles*int64(c.CPUCycleNum) + int64(c.CPUCycleDen) - 1
	return n / int64(c.CPUCycleDen)
}

// PinBandwidthBytesPerCPUCycle returns the aggregate pin bandwidth in bytes
// per processor cycle across all channels.
func (c Config) PinBandwidthBytesPerCPUCycle() float64 {
	perDRAM := float64(c.BurstBytes) / float64(c.TBurst) * float64(c.Channels)
	return perDRAM * float64(c.CPUCycleDen) / float64(c.CPUCycleNum)
}

// AccessKind distinguishes reads from writes.
type AccessKind uint8

const (
	// Read moves data from DRAM to the controller.
	Read AccessKind = iota
	// Write moves data from the controller to DRAM.
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// bankState tracks the open row and the cycle at which the bank next becomes
// usable.
type bankState struct {
	openRow   int64 // -1 when no row is open
	readyAt   int64 // DRAM cycle when the bank can accept a new command
	lastWrite bool
}

// Channel models one memory channel: a command/data bus shared by several
// banks. Scheduling is FCFS per the simple in-order controller the paper
// assumes; the model's purpose is faithful latency/bandwidth, not reorder
// heuristics.
type Channel struct {
	cfg     Config
	banks   []bankState
	busFree int64 // DRAM cycle when the data bus is next free
}

// NewChannel returns an idle channel with all rows closed.
func NewChannel(cfg Config) *Channel {
	banks := make([]bankState, cfg.BanksPerChannel)
	for i := range banks {
		banks[i].openRow = -1
	}
	return &Channel{cfg: cfg, banks: banks}
}

// Reset closes all rows and idles the bus.
func (ch *Channel) Reset() {
	for i := range ch.banks {
		ch.banks[i] = bankState{openRow: -1}
	}
	ch.busFree = 0
}

// Access issues one burst to (bank,row) at DRAM cycle now and returns the
// DRAM cycle at which the data transfer completes. Row-buffer hits pay only
// CAS+burst; misses pay precharge (if a conflicting row is open) plus
// activate. Column commands to an open row pipeline at the burst rate
// (tCCD = TBurst), so streaming within a row is bus-limited; activates on
// one bank overlap with transfers on others.
func (ch *Channel) Access(now int64, bank int, row int64, kind AccessKind) int64 {
	b := &ch.banks[bank]
	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	cmd := start
	switch {
	case b.openRow == row:
		// Row hit: column access only.
	case b.openRow < 0:
		// Row closed: activate.
		cmd += int64(ch.cfg.TRCD)
	default:
		// Row conflict: precharge then activate.
		cmd += int64(ch.cfg.TRP + ch.cfg.TRCD)
	}
	b.openRow = row

	dataStart := cmd + int64(ch.cfg.TCAS)
	if ch.busFree > dataStart {
		dataStart = ch.busFree
	}
	// Write-to-read turnaround on the shared bus.
	if kind == Read && b.lastWrite {
		dataStart += int64(ch.cfg.TWTR)
	}
	done := dataStart + int64(ch.cfg.TBurst)

	ch.busFree = done
	// The bank can accept its next column command one burst slot after the
	// effective command time of this one (tCCD); it is not blocked for the
	// full CAS latency.
	b.readyAt = dataStart - int64(ch.cfg.TCAS) + int64(ch.cfg.TBurst)
	b.lastWrite = kind == Write
	return done
}

// Burst identifies one cache-line-sized transfer by physical location.
type Burst struct {
	Channel int
	Bank    int
	Row     int64
	Kind    AccessKind
}

// System is a multi-channel DRAM system with a trivial address decoder:
// byte address → burst → channel (low bits) → bank/row.
type System struct {
	cfg      Config
	channels []*Channel
}

// NewSystem builds a System from cfg. It panics if cfg is invalid, since a
// bad configuration is a programming error at construction time.
func NewSystem(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	chs := make([]*Channel, cfg.Channels)
	for i := range chs {
		chs[i] = NewChannel(cfg)
	}
	return &System{cfg: cfg, channels: chs}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Reset idles every channel.
func (s *System) Reset() {
	for _, ch := range s.channels {
		ch.Reset()
	}
}

// Decode maps a byte address to its burst location.
func (s *System) Decode(addr int64, kind AccessKind) Burst {
	burstIdx := addr / int64(s.cfg.BurstBytes)
	channel := int(burstIdx % int64(s.cfg.Channels))
	perChan := burstIdx / int64(s.cfg.Channels)
	burstsPerRow := int64(s.cfg.RowBytes / s.cfg.BurstBytes)
	rowIdx := perChan / burstsPerRow
	bank := int(rowIdx % int64(s.cfg.BanksPerChannel))
	row := rowIdx / int64(s.cfg.BanksPerChannel)
	return Burst{Channel: channel, Bank: bank, Row: row, Kind: kind}
}

// Access performs one burst at address addr starting no earlier than DRAM
// cycle now; it returns the completion DRAM cycle.
func (s *System) Access(now int64, addr int64, kind AccessKind) int64 {
	b := s.Decode(addr, kind)
	return s.channels[b.Channel].Access(now, b.Bank, b.Row, kind)
}

// Sequence replays a list of bursts starting at DRAM cycle 0, issuing each
// burst as early as possible (bursts to different channels overlap), and
// returns the completion time of the last burst in DRAM cycles. This is how
// the ORAM path read/write pattern is costed.
func (s *System) Sequence(bursts []Burst) int64 {
	return s.SequenceFrom(0, bursts)
}

// SequenceFrom replays bursts with no burst issuing before DRAM cycle start
// and returns the completion cycle of the last burst. Callers use start as a
// dependency barrier: the recursive ORAM's position-map lookups serialize
// tree-by-tree, and a tree's write-back begins only after its read completes.
func (s *System) SequenceFrom(start int64, bursts []Burst) int64 {
	done := start
	for _, b := range bursts {
		t := s.channels[b.Channel].Access(start, b.Bank, b.Row, b.Kind)
		if t > done {
			done = t
		}
	}
	return done
}

// FlatLatency models the insecure baseline main memory (base_dram in §9.1.6):
// a flat latency per cache-line access, in processor cycles.
const FlatLatency = 40
