package workload

import (
	"testing"

	"tcoram/internal/trace"
)

func TestSuiteHasElevenBenchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 11 {
		t.Fatalf("suite has %d benchmarks, want 11 (Fig 6)", len(s))
	}
	names := map[string]bool{}
	for _, spec := range s {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if names[spec.Name] {
			t.Errorf("duplicate benchmark %s", spec.Name)
		}
		names[spec.Name] = true
	}
	for _, want := range []string{"mcf", "omnetpp", "libquantum", "bzip2", "hmmer", "astar", "gcc", "gobmk", "sjeng", "h264ref", "perlbench"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("mcf"); !ok {
		t.Fatal("ByName(mcf) not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName(nonexistent) found something")
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "", Phases: []Phase{{Weight: 1}}},
		{Name: "x"},
		{Name: "x", Phases: []Phase{{Weight: 0}}},
		{Name: "x", Phases: []Phase{{Weight: 1, ColdProb: 1.5}}},
		{Name: "x", Phases: []Phase{{Weight: 1, Mix: Mix{Load: 0.8, Store: 0.4}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
}

func TestSpecID(t *testing.T) {
	if got := (Spec{Name: "astar", Input: "rivers"}).ID(); got != "astar/rivers" {
		t.Fatalf("ID = %q", got)
	}
	if got := (Spec{Name: "mcf"}).ID(); got != "mcf" {
		t.Fatalf("ID = %q", got)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []trace.Instr {
		g, err := NewGenerator(MCF(), 1000, 42)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]trace.Instr, 0, 1000)
		for i := 0; i < 1000; i++ {
			ins, _ := g.Next()
			out = append(out, ins)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(MCF(), 1000, 1)
	g2, _ := NewGenerator(MCF(), 1000, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a == b {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestGeneratorNeverEnds(t *testing.T) {
	g, _ := NewGenerator(Hmmer(), 100, 1)
	for i := 0; i < 500; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatalf("stream ended at %d (should be infinite)", i)
		}
	}
}

func TestMixProportions(t *testing.T) {
	g, _ := NewGenerator(MCF(), 100000, 3)
	var counts [trace.NumKinds]int
	n := 100000
	for i := 0; i < n; i++ {
		ins, _ := g.Next()
		counts[ins.Kind]++
	}
	mix := MCF().Phases[0].Mix
	checks := []struct {
		kind trace.Kind
		want float64
	}{
		{trace.Load, mix.Load},
		{trace.Store, mix.Store},
		{trace.Branch, mix.Branch},
	}
	for _, c := range checks {
		got := float64(counts[c.kind]) / float64(n)
		if got < c.want*0.9 || got > c.want*1.1 {
			t.Errorf("%v fraction = %.4f, want ≈%.4f", c.kind, got, c.want)
		}
	}
}

func TestColdFractionMatchesSpec(t *testing.T) {
	// The cold share of memory ops must track ColdProb even with bursts.
	spec := Gobmk() // bursty phases
	g, _ := NewGenerator(spec, 200000, 4)
	memOps, cold := 0, 0
	for i := 0; i < 200000; i++ {
		ins, _ := g.Next()
		if !ins.Kind.IsMem() {
			continue
		}
		memOps++
		if ins.Addr >= coldBase {
			cold++
		}
	}
	// Weighted ColdProb across gobmk phases.
	var want, wsum float64
	for _, p := range spec.Phases {
		want += p.Weight * p.ColdProb
		wsum += p.Weight
	}
	want /= wsum
	got := float64(cold) / float64(memOps)
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("cold fraction = %.5f, want ≈%.5f", got, want)
	}
}

func TestPhaseTransitions(t *testing.T) {
	spec := H264ref()
	g, _ := NewGenerator(spec, 10000, 5)
	if got := g.PhaseAt(0); got != 0 {
		t.Fatalf("PhaseAt(0) = %d, want 0", got)
	}
	if got := g.PhaseAt(9999); got != 1 {
		t.Fatalf("PhaseAt(9999) = %d, want 1 (motion-search)", got)
	}
	// The switch lands at the 60% weight boundary.
	if got := g.PhaseAt(5999); got != 0 {
		t.Fatalf("PhaseAt(5999) = %d, want 0", got)
	}
	if got := g.PhaseAt(6001); got != 1 {
		t.Fatalf("PhaseAt(6001) = %d, want 1", got)
	}
}

func TestStridedStreamsSequentialLines(t *testing.T) {
	g, _ := NewGenerator(Libquantum(), 100000, 6)
	var prev uint64
	seen := 0
	for i := 0; i < 50000 && seen < 100; i++ {
		ins, _ := g.Next()
		if !ins.Kind.IsMem() || ins.Addr < coldBase {
			continue
		}
		if seen > 0 && ins.Addr != prev+64 {
			t.Fatalf("stride break: %#x after %#x", ins.Addr, prev)
		}
		prev = ins.Addr
		seen++
	}
	if seen < 100 {
		t.Fatalf("only %d cold accesses observed", seen)
	}
}

func TestInputVariantsDiffer(t *testing.T) {
	// Fig 2's premise: the same program under different inputs offers very
	// different ORAM load.
	d := PerlbenchInput("diffmail")
	s := PerlbenchInput("splitmail")
	if d.Phases[0].ColdProb <= s.Phases[0].ColdProb*50 {
		t.Fatalf("diffmail/splitmail cold ratio = %.0f, want ≥ 50×",
			d.Phases[0].ColdProb/s.Phases[0].ColdProb)
	}
	r := AstarInput("rivers")
	b := AstarInput("biglakes")
	if len(r.Phases) != 1 || len(b.Phases) != 3 {
		t.Fatal("astar inputs should differ in phase structure")
	}
	// Unknown inputs fall back to the default behaviour.
	if PerlbenchInput("unknown").Input != "unknown" {
		t.Fatal("unknown perlbench input not labeled")
	}
	if AstarInput("unknown").Input != "unknown" {
		t.Fatal("unknown astar input not labeled")
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	g, _ := NewGenerator(Gcc(), 50000, 7)
	for i := 0; i < 50000; i++ {
		ins, _ := g.Next()
		if !ins.Kind.IsMem() {
			continue
		}
		if ins.Addr < hotBase {
			t.Fatalf("data access %#x inside code region", ins.Addr)
		}
	}
}

func TestGeneratorRejectsBadInput(t *testing.T) {
	if _, err := NewGenerator(Spec{}, 100, 1); err == nil {
		t.Fatal("accepted invalid spec")
	}
	if _, err := NewGenerator(MCF(), 0, 1); err == nil {
		t.Fatal("accepted zero totalInstrs")
	}
}

func TestCodeBytesDefault(t *testing.T) {
	g, _ := NewGenerator(Spec{Name: "x", Phases: []Phase{{Weight: 1}}}, 100, 1)
	if g.CodeBytes() == 0 {
		t.Fatal("CodeBytes returned 0")
	}
}
