package workload

import (
	"fmt"
	"math/rand"
)

// This file extends the workload package from instruction streams to
// key-value operation streams: the load generator (cmd/loadgen) drives the
// concurrent ORAM service with the same deterministic, seed-reproducible
// discipline the simulator's benchmarks use. Scenario shapes follow the
// standard KV-store evaluation patterns (uniform, zipfian hot set,
// read-mostly, sequential scan).

// KVOp is one key-value operation against the service.
type KVOp struct {
	Addr  uint64
	Write bool
}

// KVStream generates a deterministic sequence of operations. Streams are
// infinite and not safe for concurrent use; give each client goroutine its
// own (NewKVStream with distinct seeds).
type KVStream interface {
	Next() KVOp
}

// KVScenario names a load shape.
type KVScenario string

const (
	// KVUniform spreads accesses uniformly over the address space with a
	// balanced read/write mix.
	KVUniform KVScenario = "uniform"
	// KVZipf concentrates accesses on a zipfian hot set (s = 1.1), the
	// classic skewed-popularity shape.
	KVZipf KVScenario = "zipf"
	// KVReadMostly is a 95/5 read/write mix over a uniform key pick.
	KVReadMostly KVScenario = "read-mostly"
	// KVScan sweeps the address space sequentially (stride 1, wrapping),
	// with occasional writes — the pattern that stresses shard routing's
	// round-robin spread.
	KVScan KVScenario = "scan"
)

// KVScenarios lists every scenario, in the order loadgen runs them.
func KVScenarios() []KVScenario {
	return []KVScenario{KVUniform, KVZipf, KVReadMostly, KVScan}
}

// writeFraction returns the scenario's share of writes.
func (s KVScenario) writeFraction() float64 {
	switch s {
	case KVReadMostly:
		return 0.05
	case KVScan:
		return 0.10
	default:
		return 0.50
	}
}

// kvStream implements KVStream for all scenarios.
type kvStream struct {
	scenario KVScenario
	blocks   uint64
	rng      *rand.Rand
	zipf     *rand.Zipf
	writeThr uint32 // write probability in 1/2^32 units
	cursor   uint64 // scan position
}

// NewKVStream builds a deterministic operation stream over [0, blocks) for
// the given scenario. Distinct seeds give decorrelated streams; identical
// (scenario, blocks, seed) triples replay identically. start offsets the
// scan cursor so concurrent scanning clients cover disjoint regions.
func NewKVStream(scenario KVScenario, blocks uint64, seed int64, start uint64) (KVStream, error) {
	if blocks == 0 {
		return nil, fmt.Errorf("workload: kv stream needs a non-empty address space")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &kvStream{
		scenario: scenario,
		blocks:   blocks,
		rng:      rng,
		writeThr: toThreshold(scenario.writeFraction()),
		cursor:   start % blocks,
	}
	switch scenario {
	case KVUniform, KVReadMostly, KVScan:
	case KVZipf:
		// s=1.1, v=1 over the whole space: a small hot set absorbs most
		// accesses while the tail keeps every shard warm.
		s.zipf = rand.NewZipf(rng, 1.1, 1, blocks-1)
	default:
		return nil, fmt.Errorf("workload: unknown kv scenario %q", scenario)
	}
	return s, nil
}

// Next implements KVStream.
func (s *kvStream) Next() KVOp {
	var addr uint64
	switch s.scenario {
	case KVScan:
		addr = s.cursor
		s.cursor++
		if s.cursor >= s.blocks {
			s.cursor = 0
		}
	case KVZipf:
		addr = s.zipf.Uint64()
	default:
		addr = s.rng.Uint64() % s.blocks
	}
	write := uint32(s.rng.Uint64()) < s.writeThr
	return KVOp{Addr: addr, Write: write}
}
