package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// This file extends the workload package from instruction streams to
// key-value operation streams: the load generator (cmd/loadgen) drives the
// concurrent ORAM service with the same deterministic, seed-reproducible
// discipline the simulator's benchmarks use. Scenario shapes follow the
// standard KV-store evaluation patterns (uniform, zipfian hot set,
// read-mostly, sequential scan) plus three phase-shifting shapes (bursty,
// on/off, ramp) whose offered load changes over wall time — the workloads
// that exercise the paper's dynamic epoch learner, whose whole job is to
// track a program's changing ORAM demand.

// KVOp is one key-value operation against the service. Pause is think time
// the driver sleeps before issuing the op: zero for the steady scenarios,
// nonzero in the phase-shifting ones to shape offered load over time.
type KVOp struct {
	Addr  uint64
	Write bool
	Pause time.Duration
}

// KVStream generates a deterministic sequence of operations. Streams are
// infinite and not safe for concurrent use; give each client goroutine its
// own (NewKVStream with distinct seeds).
type KVStream interface {
	Next() KVOp
}

// KVScenario names a load shape.
type KVScenario string

const (
	// KVUniform spreads accesses uniformly over the address space with a
	// balanced read/write mix.
	KVUniform KVScenario = "uniform"
	// KVZipf concentrates accesses on a zipfian hot set (s = 1.1), the
	// classic skewed-popularity shape.
	KVZipf KVScenario = "zipf"
	// KVReadMostly is a 95/5 read/write mix over a uniform key pick.
	KVReadMostly KVScenario = "read-mostly"
	// KVScan sweeps the address space sequentially (stride 1, wrapping),
	// with occasional writes — the pattern that stresses shard routing's
	// round-robin spread.
	KVScan KVScenario = "scan"
	// KVBursty alternates short back-to-back bursts with think-time gaps:
	// the arrival process §7.3's shift-predictor bias is designed for.
	KVBursty KVScenario = "bursty"
	// KVOnOff holds a sustained busy phase, goes quiet, and repeats — the
	// square-wave load that forces the learner to swing between its fastest
	// and slowest useful rates.
	KVOnOff KVScenario = "onoff"
	// KVRamp starts with long per-op think times and halves them phase by
	// phase until the client issues back-to-back: offered load ramps up
	// geometrically, and a working learner should walk down the rate set
	// behind it.
	KVRamp KVScenario = "ramp"
	// KVCDSI is the oblivious contact-discovery shape (Signal-CDSI): an
	// almost read-only hash-table lookup stream (2% writes — registration
	// churn) with a sharply zipfian hot-key set (s = 1.3 — popular numbers
	// are queried by many contact lists). Drive it with LoadConfig.BatchSize
	// > 1 so lookups ride the batch_read verb the way CDSI clients submit
	// whole contact lists.
	KVCDSI KVScenario = "cdsi"
)

// KVScenarios lists every scenario, in the order loadgen runs them.
func KVScenarios() []KVScenario {
	return []KVScenario{KVUniform, KVZipf, KVReadMostly, KVScan, KVBursty, KVOnOff, KVRamp, KVCDSI}
}

// Phase-shape constants. Op counts and think times are per client; the
// values keep a few-hundred-op CI run inside a couple hundred milliseconds
// of deliberate idling while still giving the learner distinct load phases.
const (
	burstyLen = 16                    // ops per burst
	burstyGap = 5 * time.Millisecond  // idle gap between bursts
	onOffLen  = 48                    // ops per busy phase
	onOffGap  = 30 * time.Millisecond // quiet phase between busy phases
	rampPhase = 32                    // ops per ramp phase
	rampStart = 4 * time.Millisecond  // per-op think time in phase 0, halved each phase
)

// writeFraction returns the scenario's share of writes.
func (s KVScenario) writeFraction() float64 {
	switch s {
	case KVReadMostly:
		return 0.05
	case KVScan:
		return 0.10
	case KVCDSI:
		return 0.02
	default:
		return 0.50
	}
}

// kvStream implements KVStream for all scenarios.
type kvStream struct {
	scenario KVScenario
	blocks   uint64
	rng      *rand.Rand
	zipf     *rand.Zipf
	writeThr uint32 // write probability in 1/2^32 units
	cursor   uint64 // scan position
	n        uint64 // ops emitted so far (phase-shifting shapes)
}

// NewKVStream builds a deterministic operation stream over [0, blocks) for
// the given scenario. Distinct seeds give decorrelated streams; identical
// (scenario, blocks, seed) triples replay identically. start offsets the
// scan cursor so concurrent scanning clients cover disjoint regions.
func NewKVStream(scenario KVScenario, blocks uint64, seed int64, start uint64) (KVStream, error) {
	if blocks == 0 {
		return nil, fmt.Errorf("workload: kv stream needs a non-empty address space")
	}
	rng := rand.New(rand.NewSource(seed))
	s := &kvStream{
		scenario: scenario,
		blocks:   blocks,
		rng:      rng,
		writeThr: toThreshold(scenario.writeFraction()),
		cursor:   start % blocks,
	}
	switch scenario {
	case KVUniform, KVReadMostly, KVScan, KVBursty, KVOnOff, KVRamp:
	case KVZipf:
		// s=1.1, v=1 over the whole space: a small hot set absorbs most
		// accesses while the tail keeps every shard warm.
		s.zipf = rand.NewZipf(rng, 1.1, 1, blocks-1)
	case KVCDSI:
		// Sharper skew than KVZipf: contact-list queries pile onto popular
		// numbers much harder than generic KV caching workloads.
		s.zipf = rand.NewZipf(rng, 1.3, 1, blocks-1)
	default:
		return nil, fmt.Errorf("workload: unknown kv scenario %q", scenario)
	}
	return s, nil
}

// Next implements KVStream.
func (s *kvStream) Next() KVOp {
	var addr uint64
	switch s.scenario {
	case KVScan:
		addr = s.cursor
		s.cursor++
		if s.cursor >= s.blocks {
			s.cursor = 0
		}
	case KVZipf, KVCDSI:
		addr = s.zipf.Uint64()
	default:
		addr = s.rng.Uint64() % s.blocks
	}
	write := uint32(s.rng.Uint64()) < s.writeThr
	op := KVOp{Addr: addr, Write: write, Pause: s.pause()}
	s.n++
	return op
}

// pause derives the op's think time from its position in the stream — a
// pure function of the op index, so identical seeds still replay
// identically.
func (s *kvStream) pause() time.Duration {
	switch s.scenario {
	case KVBursty:
		// The gap lands on the first op of each burst after the initial one.
		if s.n > 0 && s.n%burstyLen == 0 {
			return burstyGap
		}
	case KVOnOff:
		if s.n > 0 && s.n%onOffLen == 0 {
			return onOffGap
		}
	case KVRamp:
		// Every op of phase p thinks rampStart >> p; past ~20 phases the
		// shift saturates to zero (back-to-back).
		if phase := s.n / rampPhase; phase < 20 {
			return rampStart >> phase
		}
	}
	return 0
}
