package workload

// This file defines the synthetic analogues of the eleven SPEC-int
// benchmarks the paper evaluates (Fig 6): mcf, omnetpp, libquantum, bzip2,
// hmmer, astar, gcc, gobmk, sjeng, h264ref and perlbench, plus the input
// variants used in Fig 2 (perlbench diffmail/splitmail, astar
// rivers/biglakes). The parameters are calibrated against the paper's
// observable characteristics, not against SPEC binaries: ColdProb sets the
// LLC miss rate (≈ mem-fraction × ColdProb × 1000 MPKI), phases reproduce
// the time-varying behaviour of Fig 2/Fig 7, and the mixes keep base_dram
// IPC inside the paper's 0.15–0.36 band.

// kLLC is used to size hot sets relative to the 1 MB LLC of Table 1.
const kLLC = 1 << 20

// intMix is a typical integer-code mix; variations below tweak it.
func intMix(load, store float64) Mix {
	return Mix{Load: load, Store: store, Branch: 0.12, IntMult: 0.02, IntDiv: 0.002}
}

// intMixDiv is intMix with an explicit divide fraction: long-latency
// arithmetic raises base CPI without extra memory energy, pulling IPC into
// the paper's 0.15-0.36 band and widening the offered ORAM gap.
func intMixDiv(load, store, div float64) Mix {
	m := intMix(load, store)
	m.IntDiv = div
	return m
}

// MCF models 429.mcf: severely memory-bound pointer chasing over a working
// set far larger than the LLC; the paper's most ORAM-sensitive workload.
func MCF() Spec {
	return Spec{
		Name:      "mcf",
		CodeBytes: 16 << 10,
		Phases: []Phase{{
			Name:     "chase",
			Weight:   1,
			Mix:      intMix(0.32, 0.09),
			HotBytes: kLLC / 4,
			L1Frac:   0.70, // pointer chasing: poor reuse locality
			// ~16 MPKI: 0.41 mem ops/instr × 0.038 cold.
			ColdBytes: 512 << 20,
			ColdProb:  0.039,
		}},
	}
}

// Omnetpp models 471.omnetpp: discrete-event simulation, memory-bound with
// scattered heap traffic.
func Omnetpp() Spec {
	return Spec{
		Name:      "omnetpp",
		CodeBytes: 48 << 10,
		Phases: []Phase{{
			Name:      "events",
			Weight:    1,
			Mix:       intMix(0.30, 0.12),
			HotBytes:  kLLC / 2,
			L1Frac:    0.72,
			ColdBytes: 256 << 20,
			ColdProb:  0.021, // ~9 MPKI
		}},
	}
}

// Libquantum models 462.libquantum: streaming sweeps over a large vector —
// steady, bandwidth-bound, highly regular (the flat line of Fig 7).
func Libquantum() Spec {
	return Spec{
		Name:      "libquantum",
		CodeBytes: 8 << 10,
		Phases: []Phase{{
			Name:       "sweep",
			Weight:     1,
			Mix:        intMix(0.27, 0.10),
			HotBytes:   64 << 10,
			L1Frac:     0.85,
			ColdBytes:  128 << 20,
			ColdProb:   0.0225, // ~9 MPKI, perfectly steady
			ColdStride: 64,
		}},
	}
}

// Bzip2 models 401.bzip2: alternating compress/decompress phases with
// moderate miss rates.
func Bzip2() Spec {
	return Spec{
		Name:      "bzip2",
		CodeBytes: 24 << 10,
		Phases: []Phase{
			{
				Name:      "compress",
				Weight:    0.55,
				Mix:       intMix(0.28, 0.14),
				HotBytes:  3 * kLLC / 4,
				L1Frac:    0.85,
				ColdBytes: 64 << 20,
				ColdProb:  0.0060, // ~2.5 MPKI
			},
			{
				Name:      "decompress",
				Weight:    0.45,
				Mix:       intMix(0.30, 0.11),
				HotBytes:  kLLC / 2,
				L1Frac:    0.85,
				ColdBytes: 64 << 20,
				ColdProb:  0.0048, // ~2 MPKI
			},
		},
	}
}

// Hmmer models 456.hmmer: compute-bound dynamic programming in a small
// working set.
func Hmmer() Spec {
	return Spec{
		Name:      "hmmer",
		CodeBytes: 16 << 10,
		Phases: []Phase{{
			Name:      "viterbi",
			Weight:    1,
			Mix:       Mix{Load: 0.30, Store: 0.12, Branch: 0.08, IntMult: 0.05},
			HotBytes:  kLLC / 8,
			L1Frac:    0.92,
			ColdBytes: 16 << 20,
			ColdProb:  0.0003, // ~0.15 MPKI
		}},
	}
}

// Astar models 473.astar with its reference "rivers" input: path search
// with a moderate, stable miss rate.
func Astar() Spec { return AstarInput("rivers") }

// AstarInput returns astar under the named input. Fig 2 (bottom): "rivers"
// sustains a single rate for the whole run, while "biglakes" drifts
// dramatically as the search opens larger map regions.
func AstarInput(input string) Spec {
	switch input {
	case "rivers":
		return Spec{
			Name:      "astar",
			Input:     "rivers",
			CodeBytes: 16 << 10,
			Phases: []Phase{{
				Name:      "search",
				Weight:    1,
				Mix:       intMixDiv(0.33, 0.09, 0.055),
				HotBytes:  kLLC / 2,
				L1Frac:    0.77,
				ColdBytes: 128 << 20,
				ColdProb:  0.0040, // ~1.8 MPKI, steady
			}},
		}
	case "biglakes":
		return Spec{
			Name:      "astar",
			Input:     "biglakes",
			CodeBytes: 16 << 10,
			Phases: []Phase{
				{
					Name:      "open-small",
					Weight:    0.3,
					Mix:       intMixDiv(0.33, 0.09, 0.055),
					HotBytes:  kLLC / 2,
					L1Frac:    0.80,
					ColdBytes: 32 << 20,
					ColdProb:  0.00035, // near compute-bound start
				},
				{
					Name:      "flood",
					Weight:    0.4,
					Mix:       intMixDiv(0.34, 0.10, 0.055),
					HotBytes:  kLLC / 4,
					L1Frac:    0.75,
					ColdBytes: 256 << 20,
					ColdProb:  0.0077, // rate rises ~25×
				},
				{
					Name:      "drain",
					Weight:    0.3,
					Mix:       intMixDiv(0.33, 0.09, 0.055),
					HotBytes:  kLLC / 2,
					L1Frac:    0.80,
					ColdBytes: 128 << 20,
					ColdProb:  0.0020,
				},
			},
		}
	default:
		s := AstarInput("rivers")
		s.Input = input
		return s
	}
}

// Gcc models 403.gcc: large code footprint, phase-y compilation passes with
// irregular misses.
func Gcc() Spec {
	return Spec{
		Name:      "gcc",
		CodeBytes: 128 << 10, // exceeds L1I: real I-cache pressure
		Phases: []Phase{
			{
				Name:      "parse",
				Weight:    0.35,
				Mix:       intMixDiv(0.29, 0.13, 0.06),
				HotBytes:  kLLC / 2,
				L1Frac:    0.72,
				ColdBytes: 96 << 20,
				ColdProb:  0.0042,
				BurstLen:  4,
			},
			{
				Name:      "optimize",
				Weight:    0.40,
				Mix:       intMixDiv(0.27, 0.11, 0.06),
				HotBytes:  3 * kLLC / 4,
				L1Frac:    0.72,
				ColdBytes: 96 << 20,
				ColdProb:  0.0030,
				BurstLen:  6,
			},
			{
				Name:      "emit",
				Weight:    0.25,
				Mix:       intMixDiv(0.26, 0.16, 0.06),
				HotBytes:  kLLC / 2,
				L1Frac:    0.72,
				ColdBytes: 96 << 20,
				ColdProb:  0.0035,
				BurstLen:  3,
			},
		},
	}
}

// Gobmk models 445.gobmk: game-tree search with erratic, bursty misses —
// the jagged IPC line of Fig 7 that nevertheless settles onto one rate.
func Gobmk() Spec {
	return Spec{
		Name:      "gobmk",
		CodeBytes: 96 << 10,
		Phases: []Phase{
			{
				Name:      "opening",
				Weight:    0.25,
				Mix:       intMixDiv(0.30, 0.10, 0.03),
				HotBytes:  kLLC / 2,
				L1Frac:    0.80,
				ColdBytes: 64 << 20,
				ColdProb:  0.0045,
				BurstLen:  12,
			},
			{
				Name:      "midgame",
				Weight:    0.5,
				Mix:       intMixDiv(0.31, 0.10, 0.03),
				HotBytes:  kLLC / 3,
				L1Frac:    0.80,
				ColdBytes: 64 << 20,
				ColdProb:  0.0025,
				BurstLen:  16,
			},
			{
				Name:      "endgame",
				Weight:    0.25,
				Mix:       intMixDiv(0.30, 0.10, 0.03),
				HotBytes:  kLLC / 2,
				L1Frac:    0.80,
				ColdBytes: 64 << 20,
				ColdProb:  0.0031,
				BurstLen:  8,
			},
		},
	}
}

// Sjeng models 458.sjeng: chess search, mostly cache-resident.
func Sjeng() Spec {
	return Spec{
		Name:      "sjeng",
		CodeBytes: 40 << 10,
		Phases: []Phase{{
			Name:      "search",
			Weight:    1,
			Mix:       intMixDiv(0.27, 0.08, 0.035),
			HotBytes:  kLLC / 4,
			L1Frac:    0.88,
			ColdBytes: 48 << 20,
			ColdProb:  0.0032, // ~1.1 MPKI
			BurstLen:  6,
		}},
	}
}

// H264ref models 464.h264ref: compute-bound encoding that turns memory-
// bound late in the run — the workload whose epoch-8 rate switch Fig 7
// highlights.
func H264ref() Spec {
	return Spec{
		Name:      "h264ref",
		CodeBytes: 64 << 10,
		Phases: []Phase{
			{
				Name:     "encode-I",
				Weight:   0.60,
				Mix:      Mix{Load: 0.30, Store: 0.12, Branch: 0.07, IntMult: 0.06, FPALU: 0.02},
				HotBytes: kLLC / 8,
				L1Frac:   0.92,
				// effectively compute bound
				ColdBytes: 32 << 20,
				ColdProb:  0.00008,
			},
			{
				Name:      "motion-search",
				Weight:    0.40,
				Mix:       Mix{Load: 0.34, Store: 0.10, Branch: 0.08, IntMult: 0.04},
				HotBytes:  kLLC / 2,
				L1Frac:    0.85,
				ColdBytes: 256 << 20,
				ColdProb:  0.008, // memory-bound tail, ~3.5 MPKI
			},
		},
	}
}

// Perlbench models 400.perlbench with the reference "diffmail" input.
func Perlbench() Spec { return PerlbenchInput("diffmail") }

// PerlbenchInput returns perlbench under the named input. Fig 2 (top):
// "diffmail" accesses ORAM ~80× more often than "splitmail" — the paper's
// motivating example of input-dependent rate.
func PerlbenchInput(input string) Spec {
	switch input {
	case "diffmail":
		return Spec{
			Name:      "perlbench",
			Input:     "diffmail",
			CodeBytes: 96 << 10,
			Phases: []Phase{{
				Name:      "diff",
				Weight:    1,
				Mix:       intMixDiv(0.30, 0.14, 0.05),
				HotBytes:  kLLC / 2,
				L1Frac:    0.80,
				ColdBytes: 128 << 20,
				ColdProb:  0.0036, // ~1.6 MPKI
			}},
		}
	case "splitmail":
		return Spec{
			Name:      "perlbench",
			Input:     "splitmail",
			CodeBytes: 96 << 10,
			Phases: []Phase{{
				Name:      "split",
				Weight:    1,
				Mix:       intMixDiv(0.30, 0.14, 0.05),
				HotBytes:  kLLC / 4, // fits: ~80× fewer misses
				L1Frac:    0.80,
				ColdBytes: 128 << 20,
				ColdProb:  0.000045,
			}},
		}
	default:
		s := PerlbenchInput("diffmail")
		s.Input = input
		return s
	}
}

// Suite returns the Fig 6 benchmark list in the paper's plotting order.
func Suite() []Spec {
	return []Spec{
		MCF(), Omnetpp(), Libquantum(), Bzip2(), Hmmer(), Astar(),
		Gcc(), Gobmk(), Sjeng(), H264ref(), Perlbench(),
	}
}

// ByName returns the named benchmark spec (default input) and whether it
// exists.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
