package workload

import (
	"testing"
)

func TestKVStreamDeterministic(t *testing.T) {
	for _, sc := range KVScenarios() {
		a, err := NewKVStream(sc, 1024, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewKVStream(sc, 1024, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if a.Next() != b.Next() {
				t.Fatalf("%s: streams with identical seeds diverged at op %d", sc, i)
			}
		}
	}
}

func TestKVStreamRangesAndMix(t *testing.T) {
	const blocks = 512
	for _, sc := range KVScenarios() {
		s, err := NewKVStream(sc, blocks, 11, 0)
		if err != nil {
			t.Fatal(err)
		}
		writes := 0
		const n = 20000
		for i := 0; i < n; i++ {
			op := s.Next()
			if op.Addr >= blocks {
				t.Fatalf("%s: address %d out of range", sc, op.Addr)
			}
			if op.Write {
				writes++
			}
		}
		frac := float64(writes) / n
		want := sc.writeFraction()
		if frac < want-0.05 || frac > want+0.05 {
			t.Errorf("%s: write fraction %.3f, want ≈%.2f", sc, frac, want)
		}
	}
}

func TestKVZipfIsSkewed(t *testing.T) {
	s, err := NewKVStream(KVZipf, 1<<16, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Next().Addr < 16 {
			hot++
		}
	}
	// Uniform would put 16/65536 ≈ 0.02% in the first 16 keys; zipf s=1.1
	// concentrates a large share there.
	if frac := float64(hot) / n; frac < 0.2 {
		t.Fatalf("zipf hot-16 share %.3f, want ≥ 0.2", frac)
	}
}

func TestKVScanSweepsSequentially(t *testing.T) {
	const blocks = 64
	s, err := NewKVStream(KVScan, blocks, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Next().Addr
	if prev != 60 {
		t.Fatalf("scan start = %d, want 60", prev)
	}
	for i := 0; i < 200; i++ {
		cur := s.Next().Addr
		want := (prev + 1) % blocks
		if cur != want {
			t.Fatalf("scan jumped %d → %d, want %d", prev, cur, want)
		}
		prev = cur
	}
}

// TestKVSteadyScenariosNeverPause: the original four shapes must stay
// think-time-free — drivers replay them at full speed.
func TestKVSteadyScenariosNeverPause(t *testing.T) {
	for _, sc := range []KVScenario{KVUniform, KVZipf, KVReadMostly, KVScan} {
		s, err := NewKVStream(sc, 256, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if p := s.Next().Pause; p != 0 {
				t.Fatalf("%s: op %d has pause %v, want 0", sc, i, p)
			}
		}
	}
}

// TestKVPhaseShapes pins the think-time structure of the phase-shifting
// scenarios: bursty and on/off pause exactly once per phase boundary, ramp
// halves its per-op think time each phase down to zero.
func TestKVPhaseShapes(t *testing.T) {
	next := func(t *testing.T, sc KVScenario) func() KVOp {
		s, err := NewKVStream(sc, 256, 9, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s.Next
	}

	t.Run("bursty", func(t *testing.T) {
		n := next(t, KVBursty)
		for i := 0; i < 4*burstyLen; i++ {
			op := n()
			wantGap := i > 0 && i%burstyLen == 0
			if gotGap := op.Pause > 0; gotGap != wantGap {
				t.Fatalf("op %d pause = %v, want gap=%v", i, op.Pause, wantGap)
			}
			if wantGap && op.Pause != burstyGap {
				t.Fatalf("op %d gap = %v, want %v", i, op.Pause, burstyGap)
			}
		}
	})

	t.Run("onoff", func(t *testing.T) {
		n := next(t, KVOnOff)
		gaps := 0
		for i := 0; i < 3*onOffLen; i++ {
			if op := n(); op.Pause > 0 {
				if op.Pause != onOffGap {
					t.Fatalf("op %d gap = %v, want %v", i, op.Pause, onOffGap)
				}
				gaps++
			}
		}
		if gaps != 2 {
			t.Fatalf("%d quiet phases in 3 busy phases of ops, want 2", gaps)
		}
	})

	t.Run("ramp", func(t *testing.T) {
		n := next(t, KVRamp)
		for phase := 0; phase < 4; phase++ {
			want := rampStart >> phase
			for i := 0; i < rampPhase; i++ {
				if op := n(); op.Pause != want {
					t.Fatalf("phase %d op %d pause = %v, want %v", phase, i, op.Pause, want)
				}
			}
		}
		// Far into the stream the ramp saturates at zero think time.
		s, err := NewKVStream(KVRamp, 256, 9, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 21*rampPhase; i++ {
			s.Next()
		}
		if op := s.Next(); op.Pause != 0 {
			t.Fatalf("ramp tail pause = %v, want 0", op.Pause)
		}
	})
}

// TestKVCDSIShape pins the contact-discovery scenario's contract: it is in
// the scenario list loadgen iterates, think-time-free (CDSI clients submit
// whole contact lists back-to-back), almost read-only, and more sharply
// skewed toward hot keys than the generic zipf shape — popular numbers
// appear in many contact lists.
func TestKVCDSIShape(t *testing.T) {
	listed := false
	for _, sc := range KVScenarios() {
		if sc == KVCDSI {
			listed = true
		}
	}
	if !listed {
		t.Fatal("cdsi missing from KVScenarios")
	}

	const blocks = 1 << 16
	const n = 20000
	hotShare := func(sc KVScenario) float64 {
		t.Helper()
		s, err := NewKVStream(sc, blocks, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		hot, writes := 0, 0
		for i := 0; i < n; i++ {
			op := s.Next()
			if op.Pause != 0 {
				t.Fatalf("%s: op %d has think time %v, want 0", sc, i, op.Pause)
			}
			if op.Addr < 16 {
				hot++
			}
			if op.Write {
				writes++
			}
		}
		if sc == KVCDSI {
			if frac := float64(writes) / n; frac > 0.04 {
				t.Errorf("cdsi write fraction %.3f, want ≈0.02 (registration churn only)", frac)
			}
		}
		return float64(hot) / n
	}

	cdsi, zipf := hotShare(KVCDSI), hotShare(KVZipf)
	if cdsi <= zipf {
		t.Errorf("cdsi hot-16 share %.3f not sharper than zipf's %.3f", cdsi, zipf)
	}
}

func TestKVStreamRejectsBadInput(t *testing.T) {
	if _, err := NewKVStream(KVUniform, 0, 1, 0); err == nil {
		t.Error("blocks=0 accepted")
	}
	if _, err := NewKVStream(KVScenario("bogus"), 8, 1, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
}
