// Package workload generates deterministic synthetic instruction streams
// that stand in for the paper's SPEC-int benchmarks (see DESIGN.md,
// substitution #1). Each benchmark is a phase program: per-phase
// instruction mix, hot (cache-resident) and cold (LLC-missing) working
// sets, access burstiness, and phase boundaries. The generators are
// calibrated so the observable properties the paper's evaluation depends on
// hold: base_dram IPC in 0.15–0.36 (§9.1.6), base_oram average slowdown
// ≈3.35× (§9.3), h264ref's compute→memory phase change (§9.4), and
// perlbench's ~80× input-dependent rate gap (Fig 2).
package workload

import (
	"fmt"
	"sort"

	"tcoram/internal/cache"
	"tcoram/internal/trace"
)

// Address-space layout: code at 0, hot data after it, cold data far above.
// Keeping the regions disjoint makes cache behaviour interpretable.
const (
	codeBase = uint64(0)
	hotBase  = uint64(1) << 24 // 16 MB
	coldBase = uint64(1) << 32 // 4 GB
)

// Mix gives per-instruction probabilities of each class. Probabilities are
// expressed in 1/65536ths for a fast integer comparison in the hot loop;
// the remainder is IntALU.
type Mix struct {
	Load, Store          float64
	Branch               float64
	IntMult, IntDiv      float64
	FPALU, FPMult, FPDiv float64
}

// Phase is one program phase.
type Phase struct {
	// Name labels the phase in diagnostics.
	Name string
	// Weight is the relative share of total instructions this phase gets.
	Weight float64
	// Mix is the instruction mix.
	Mix Mix
	// HotBytes is the cache-resident working set touched by non-cold
	// memory operations.
	HotBytes uint64
	// ColdBytes is the large (≫ LLC) region whose accesses miss.
	ColdBytes uint64
	// ColdProb is the probability a memory op targets the cold region —
	// the direct knob for LLC MPKI.
	ColdProb float64
	// ColdStride, when nonzero, streams through the cold region with the
	// given stride in bytes (libquantum-style); zero means uniform random
	// (mcf/omnetpp-style pointer chasing).
	ColdStride uint64
	// BurstLen clusters cold accesses: after one cold access, the next
	// BurstLen-1 memory ops are also cold (gobmk-style erratic bursts).
	BurstLen int
	// L1Frac is the probability a hot access stays in the L1-resident
	// kernel (reuse locality). Zero means the default 0.875; memory-bound
	// pointer chasers use lower values, compute kernels higher.
	L1Frac float64
}

// Spec describes one benchmark+input pair.
type Spec struct {
	Name      string
	Input     string
	CodeBytes uint64 // synthetic code footprint (I-cache pressure)
	Phases    []Phase
}

// Validate reports whether the spec is generable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", s.Name)
	}
	total := 0.0
	for i, p := range s.Phases {
		if p.Weight <= 0 {
			return fmt.Errorf("workload %s: phase %d has non-positive weight", s.Name, i)
		}
		if p.ColdProb < 0 || p.ColdProb > 1 {
			return fmt.Errorf("workload %s: phase %d ColdProb %v out of [0,1]", s.Name, i, p.ColdProb)
		}
		m := p.Mix
		sum := m.Load + m.Store + m.Branch + m.IntMult + m.IntDiv + m.FPALU + m.FPMult + m.FPDiv
		if sum > 1 {
			return fmt.Errorf("workload %s: phase %d mix sums to %v > 1", s.Name, i, sum)
		}
		total += p.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload %s: zero total weight", s.Name)
	}
	return nil
}

// ID returns "name/input", the identifier used by the experiment harness.
func (s Spec) ID() string {
	if s.Input == "" {
		return s.Name
	}
	return s.Name + "/" + s.Input
}

// l1HotBytes is the size of the L1-resident kernel inside each hot working
// set: real programs have strong reuse locality, so most hot accesses hit
// L1D. Without this skew the hot set would thrash L1D through L2, inflating
// both CPI and energy far beyond the paper's base_dram band.
const l1HotBytes = 12 << 10

// defaultL1Frac is the default probability that a hot access stays in the
// L1-resident kernel.
const defaultL1Frac = 0.875

// phaseGen is the compiled, fast-path form of a Phase.
type phaseGen struct {
	endInstr   uint64 // stream position where this phase ends
	thrLoad    uint32 // cumulative thresholds in 1/2^32 units
	thrStore   uint32
	thrBranch  uint32
	thrIntMult uint32
	thrIntDiv  uint32
	thrFPALU   uint32
	thrFPMult  uint32
	thrFPDiv   uint32
	hotLines   uint64
	l1Lines    uint64
	l1Prob     uint8 // probability in 1/256ths that a hot access is L1-kernel
	coldLines  uint64
	coldProb   uint32 // per mem-op burst-entry threshold in 1/2^32 units
	strideLn   uint64 // stride in lines; 0 = random
	burstLen   int
}

// Generator emits the instruction stream for a Spec. It implements
// trace.Stream and is infinite: phase weights are scaled to TotalInstrs,
// and after the last phase the final phase repeats (so runs may be cut at
// any length without the stream ending early).
type Generator struct {
	spec   Spec
	phases []phaseGen
	cur    int
	pos    uint64
	rng    uint64
	cursor uint64 // streaming cold cursor (lines)
	burst  int    // remaining cold accesses in the current burst
}

// NewGenerator compiles spec for a nominal run of totalInstrs instructions.
// The phase schedule positions scale with totalInstrs; the stream itself
// never ends.
func NewGenerator(spec Spec, totalInstrs uint64, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if totalInstrs == 0 {
		return nil, fmt.Errorf("workload %s: totalInstrs must be positive", spec.Name)
	}
	var weightSum float64
	for _, p := range spec.Phases {
		weightSum += p.Weight
	}
	g := &Generator{spec: spec, rng: seed ^ 0xD1B54A32D192ED03}
	if g.rng == 0 {
		g.rng = 1
	}
	var acc float64
	for _, p := range spec.Phases {
		acc += p.Weight
		pg := compilePhase(p)
		pg.endInstr = uint64(acc / weightSum * float64(totalInstrs))
		g.phases = append(g.phases, pg)
	}
	// Guarantee the schedule is monotone even with tiny weights.
	sort.Slice(g.phases, func(i, j int) bool { return g.phases[i].endInstr < g.phases[j].endInstr })
	return g, nil
}

func toThreshold(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint32(0)
	}
	return uint32(p * float64(1<<32))
}

func compilePhase(p Phase) phaseGen {
	m := p.Mix
	cum := m.Load
	pg := phaseGen{thrLoad: toThreshold(cum)}
	cum += m.Store
	pg.thrStore = toThreshold(cum)
	cum += m.Branch
	pg.thrBranch = toThreshold(cum)
	cum += m.IntMult
	pg.thrIntMult = toThreshold(cum)
	cum += m.IntDiv
	pg.thrIntDiv = toThreshold(cum)
	cum += m.FPALU
	pg.thrFPALU = toThreshold(cum)
	cum += m.FPMult
	pg.thrFPMult = toThreshold(cum)
	cum += m.FPDiv
	pg.thrFPDiv = toThreshold(cum)

	pg.hotLines = p.HotBytes / cache.LineBytes
	if pg.hotLines == 0 {
		pg.hotLines = 1
	}
	pg.l1Lines = pg.hotLines
	if max := uint64(l1HotBytes / cache.LineBytes); pg.l1Lines > max {
		pg.l1Lines = max
	}
	l1Frac := p.L1Frac
	if l1Frac <= 0 {
		l1Frac = defaultL1Frac
	}
	if l1Frac > 1 {
		l1Frac = 1
	}
	pg.l1Prob = uint8(l1Frac * 255)
	pg.coldLines = p.ColdBytes / cache.LineBytes
	if pg.coldLines == 0 {
		pg.coldLines = 1
	}
	// Bursts cluster cold accesses without changing their overall share:
	// a burst of length k is entered with probability ColdProb/k.
	pg.burstLen = p.BurstLen
	if pg.burstLen < 1 {
		pg.burstLen = 1
	}
	pg.coldProb = toThreshold(p.ColdProb / float64(pg.burstLen))
	pg.strideLn = p.ColdStride / cache.LineBytes
	return pg
}

// Spec returns the generating spec.
func (g *Generator) Spec() Spec { return g.spec }

// CodeBytes returns the code footprint for the core's fetch model.
func (g *Generator) CodeBytes() uint64 {
	if g.spec.CodeBytes == 0 {
		return 16 << 10
	}
	return g.spec.CodeBytes
}

// PhaseAt returns the index of the phase active at instruction position pos
// (diagnostic hook for Fig 7 analysis).
func (g *Generator) PhaseAt(pos uint64) int {
	for i := range g.phases {
		if pos < g.phases[i].endInstr {
			return i
		}
	}
	return len(g.phases) - 1
}

// nextRand is splitmix64.
func (g *Generator) nextRand() uint64 {
	g.rng += 0x9E3779B97F4A7C15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next implements trace.Stream. The stream is infinite.
func (g *Generator) Next() (trace.Instr, bool) {
	for g.cur < len(g.phases)-1 && g.pos >= g.phases[g.cur].endInstr {
		g.cur++
		g.burst = 0
	}
	p := &g.phases[g.cur]
	g.pos++

	r := g.nextRand()
	sel := uint32(r)
	var kind trace.Kind
	switch {
	case sel < p.thrLoad:
		kind = trace.Load
	case sel < p.thrStore:
		kind = trace.Store
	case sel < p.thrBranch:
		kind = trace.Branch
	case sel < p.thrIntMult:
		kind = trace.IntMult
	case sel < p.thrIntDiv:
		kind = trace.IntDiv
	case sel < p.thrFPALU:
		kind = trace.FPALU
	case sel < p.thrFPMult:
		kind = trace.FPMult
	case sel < p.thrFPDiv:
		kind = trace.FPDiv
	default:
		kind = trace.IntALU
	}
	if kind != trace.Load && kind != trace.Store {
		return trace.Instr{Kind: kind}, true
	}

	// Memory op: pick hot or cold region. Bit budget of r2: low 32 bits
	// select cold-vs-hot, bits 32–39 select the L1-kernel skew, and the
	// top 24 bits index a line (regions are ≤ 1 GB).
	r2 := g.nextRand()
	cold := g.burst > 0 || uint32(r2) < p.coldProb
	var addr uint64
	if cold {
		if g.burst > 0 {
			g.burst--
		} else if p.burstLen > 1 {
			g.burst = p.burstLen - 1
		}
		var line uint64
		if p.strideLn > 0 {
			g.cursor += p.strideLn
			line = g.cursor % p.coldLines
		} else {
			line = (r2 >> 40) % p.coldLines
		}
		addr = coldBase + line*cache.LineBytes
	} else {
		span := p.hotLines
		if uint8(r2>>32) < p.l1Prob {
			span = p.l1Lines
		}
		line := (r2 >> 40) % span
		addr = hotBase + line*cache.LineBytes
	}
	return trace.Instr{Kind: kind, Addr: addr}, true
}
