package pathoram

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"tcoram/internal/crypt"
)

func TestUpdateMatchesAccessSemantics(t *testing.T) {
	var key crypt.Key
	g := Geometry{Levels: 5, Z: 3, BlockBytes: 32}
	o, err := NewORAM(g, key, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	// Never-written block reads as zeroes through Update.
	var seen []byte
	if err := o.Update(3, func(data []byte) {
		seen = append([]byte(nil), data...)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, make([]byte, 32)) {
		t.Fatalf("fresh block not zero: %x", seen)
	}

	// A read-modify-write in one access: old contents visible, mutation
	// durable.
	want := bytes.Repeat([]byte{0xAB}, 32)
	if _, err := o.Access(OpWrite, 9, want); err != nil {
		t.Fatal(err)
	}
	before := o.Accesses
	if err := o.Update(9, func(data []byte) {
		if !bytes.Equal(data, want) {
			t.Fatalf("Update saw %x, want %x", data, want)
		}
		data[0] = 0xCD
	}); err != nil {
		t.Fatal(err)
	}
	if o.Accesses != before+1 {
		t.Fatalf("Update cost %d accesses, want 1", o.Accesses-before)
	}
	got, err := o.Access(OpRead, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	want[0] = 0xCD
	if !bytes.Equal(got, want) {
		t.Fatalf("after Update read %x, want %x", got, want)
	}
	if err := o.CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	if err := o.Update(DummyAddr, nil); err == nil {
		t.Error("Update accepted out-of-range address")
	}
}

func TestNewShardSetDeterministicAndIndependent(t *testing.T) {
	var key crypt.Key
	g := Geometry{Levels: 4, Z: 3, BlockBytes: 16}

	a, err := NewShardSet(4, g, key, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardSet(4, g, key, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Determinism: same inputs rebuild byte-identical trees.
	for i := range a {
		for idx := uint64(0); idx < g.Buckets(); idx++ {
			if !bytes.Equal(a[i].Storage().ReadBucket(idx), b[i].Storage().ReadBucket(idx)) {
				t.Fatalf("shard %d bucket %d differs across identical constructions", i, idx)
			}
		}
	}

	// Independence: distinct shards draw distinct nonce streams, so their
	// initial encrypted trees differ.
	if bytes.Equal(a[0].Storage().ReadBucket(0), a[1].Storage().ReadBucket(0)) {
		t.Fatal("shards 0 and 1 produced identical root ciphertexts — shared RNG stream?")
	}

	if _, err := NewShardSet(0, g, key, 1); err == nil {
		t.Error("NewShardSet accepted n=0")
	}
}

// TestShardSetConcurrentUse drives each shard from its own goroutine under
// the race detector — the access pattern the server layer relies on being
// safe per the shared-state audit in shards.go.
func TestShardSetConcurrentUse(t *testing.T) {
	var key crypt.Key
	g := Geometry{Levels: 5, Z: 3, BlockBytes: 32}
	shards, err := NewShardSet(4, g, key, 99)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for si, o := range shards {
		wg.Add(1)
		go func(si int, o *ORAM) {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < 200; i++ {
				addr := uint64(i % 8)
				buf[0] = byte(si)
				buf[1] = byte(i)
				if _, err := o.Access(OpWrite, addr, buf); err != nil {
					t.Errorf("shard %d write: %v", si, err)
					return
				}
				if _, err := o.Access(OpRead, addr, nil); err != nil {
					t.Errorf("shard %d read: %v", si, err)
					return
				}
				if i%50 == 0 {
					if err := o.DummyAccess(); err != nil {
						t.Errorf("shard %d dummy: %v", si, err)
						return
					}
				}
			}
		}(si, o)
	}
	wg.Wait()
	for si, o := range shards {
		if err := o.CheckInvariant(); err != nil {
			t.Errorf("shard %d invariant: %v", si, err)
		}
	}
}

func TestShardGeometry(t *testing.T) {
	g := ShardGeometry(1024, 4, 3, 64)
	if g.Capacity() < 256 {
		t.Fatalf("per-shard capacity %d < 256", g.Capacity())
	}
	if g.BlockBytes != 64 || g.Z != 3 {
		t.Fatalf("geometry lost parameters: %+v", g)
	}
	// Uneven split rounds up.
	g = ShardGeometry(10, 3, 3, 64)
	if g.Capacity() < 4 {
		t.Fatalf("uneven split capacity %d < 4", g.Capacity())
	}
}
