package pathoram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tcoram/internal/crypt"
)

func testKey(seed byte) crypt.Key {
	var k crypt.Key
	for i := range k {
		k[i] = seed + byte(i)
	}
	return k
}

func smallGeometry() Geometry {
	return Geometry{Levels: 6, Z: 3, BlockBytes: 64}
}

func newTestORAM(t *testing.T, g Geometry, seed int64) *ORAM {
	t.Helper()
	o, err := NewORAM(g, testKey(byte(seed)), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestGeometryMath(t *testing.T) {
	g := Geometry{Levels: 4, Z: 3, BlockBytes: 64}
	if g.Leaves() != 8 {
		t.Fatalf("Leaves() = %d, want 8", g.Leaves())
	}
	if g.Buckets() != 15 {
		t.Fatalf("Buckets() = %d, want 15", g.Buckets())
	}
	if g.Capacity() != 45 {
		t.Fatalf("Capacity() = %d, want 45", g.Capacity())
	}
	wantPlain := 3 * (BlockHeaderBytes + 64)
	if g.BucketPlainBytes() != wantPlain {
		t.Fatalf("BucketPlainBytes() = %d, want %d", g.BucketPlainBytes(), wantPlain)
	}
	if g.BucketCipherBytes() != wantPlain+crypt.NonceSize {
		t.Fatalf("BucketCipherBytes() = %d, want %d", g.BucketCipherBytes(), wantPlain+crypt.NonceSize)
	}
	if g.PathBytes() != 4*g.BucketCipherBytes() {
		t.Fatalf("PathBytes() = %d, want %d", g.PathBytes(), 4*g.BucketCipherBytes())
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Levels: 0, Z: 3, BlockBytes: 64},
		{Levels: 41, Z: 3, BlockBytes: 64},
		{Levels: 5, Z: 0, BlockBytes: 64},
		{Levels: 5, Z: 3, BlockBytes: 0},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate() accepted %+v", g)
		}
	}
	if err := smallGeometry().Validate(); err != nil {
		t.Fatalf("Validate() rejected valid geometry: %v", err)
	}
}

func TestNodeIndexRootAndLeaves(t *testing.T) {
	g := Geometry{Levels: 4, Z: 1, BlockBytes: 8}
	for leaf := uint64(0); leaf < g.Leaves(); leaf++ {
		if got := g.NodeIndex(leaf, 0); got != 0 {
			t.Fatalf("NodeIndex(%d, 0) = %d, want 0 (root)", leaf, got)
		}
		want := (uint64(1) << 3) - 1 + leaf
		if got := g.NodeIndex(leaf, 3); got != want {
			t.Fatalf("NodeIndex(%d, 3) = %d, want %d", leaf, got, want)
		}
	}
}

func TestPathIndicesParentChild(t *testing.T) {
	g := Geometry{Levels: 7, Z: 1, BlockBytes: 8}
	f := func(rawLeaf uint16) bool {
		leaf := uint64(rawLeaf) % g.Leaves()
		path := g.PathIndices(nil, leaf)
		if len(path) != g.Levels {
			return false
		}
		for i := 1; i < len(path); i++ {
			if (path[i]-1)/2 != path[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnPathMatchesNodeIndex(t *testing.T) {
	g := Geometry{Levels: 6, Z: 1, BlockBytes: 8}
	f := func(a16, b16 uint16, lvl8 uint8) bool {
		a := uint64(a16) % g.Leaves()
		b := uint64(b16) % g.Leaves()
		level := int(lvl8) % g.Levels
		return g.OnPath(a, b, level) == (g.NodeIndex(a, level) == g.NodeIndex(b, level))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryForBlocksCapacity(t *testing.T) {
	for _, n := range []uint64{1, 7, 64, 1000, 1 << 16, 1 << 24} {
		g := GeometryForBlocks(n, 3, 64)
		if g.Capacity() < n {
			t.Errorf("GeometryForBlocks(%d): capacity %d < n", n, g.Capacity())
		}
		// Not absurdly overprovisioned either (≤ 8x).
		if g.Capacity() > 8*n && n > 8 {
			t.Errorf("GeometryForBlocks(%d): capacity %d too large", n, g.Capacity())
		}
	}
}

func TestHeaderPackRoundTrip(t *testing.T) {
	f := func(addr uint64, leaf uint32) bool {
		a := addr & (1<<40 - 1)
		l := uint64(leaf) & (1<<24 - 1)
		var buf [8]byte
		packHeader(buf[:], a, l)
		ga, gl := unpackHeader(buf[:])
		return ga == a && gl == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketEncodeDecodeRoundTrip(t *testing.T) {
	g := smallGeometry()
	blocks := []Block{
		{Addr: 5, Leaf: 2, Data: bytes.Repeat([]byte{0xAA}, 64)},
		{Addr: 9, Leaf: 30, Data: bytes.Repeat([]byte{0xBB}, 64)},
	}
	plain := g.encodeBucket(blocks)
	got, err := g.decodeBucket(nil, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d blocks, want 2", len(got))
	}
	for i := range got {
		if got[i].Addr != blocks[i].Addr || got[i].Leaf != blocks[i].Leaf || !bytes.Equal(got[i].Data, blocks[i].Data) {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, got[i], blocks[i])
		}
	}
}

func TestBucketDecodeRejectsWrongSize(t *testing.T) {
	g := smallGeometry()
	if _, err := g.decodeBucket(nil, make([]byte, 3)); err == nil {
		t.Fatal("decodeBucket accepted wrong-size plaintext")
	}
}

func TestReadYourWrites(t *testing.T) {
	o := newTestORAM(t, smallGeometry(), 1)
	data := bytes.Repeat([]byte{0x5A}, 64)
	if _, err := o.Access(OpWrite, 7, data); err != nil {
		t.Fatal(err)
	}
	got, err := o.Access(OpRead, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %x, want %x", got[:4], data[:4])
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	o := newTestORAM(t, smallGeometry(), 2)
	got, err := o.Access(OpRead, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("unwritten block read nonzero data")
	}
}

func TestManyBlocksFunctional(t *testing.T) {
	// Random writes and reads over many blocks: the ORAM must behave like
	// a RAM. Model the expected contents in a plain map.
	o := newTestORAM(t, Geometry{Levels: 8, Z: 3, BlockBytes: 16}, 3)
	rng := rand.New(rand.NewSource(99))
	model := make(map[uint64][]byte)
	numBlocks := uint64(120)
	for i := 0; i < 800; i++ {
		addr := uint64(rng.Int63n(int64(numBlocks)))
		if rng.Intn(2) == 0 {
			data := make([]byte, 16)
			rng.Read(data)
			if _, err := o.Access(OpWrite, addr, data); err != nil {
				t.Fatal(err)
			}
			model[addr] = data
		} else {
			got, err := o.Access(OpRead, addr, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := model[addr]
			if !ok {
				want = make([]byte, 16)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d read %x, want %x", i, addr, got, want)
			}
		}
	}
}

func TestPathInvariantHolds(t *testing.T) {
	// Path ORAM's invariant (§3): every mapped block is in the stash or on
	// the path to its assigned leaf. Checked after a batch of random ops.
	o := newTestORAM(t, Geometry{Levels: 7, Z: 3, BlockBytes: 16}, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		addr := uint64(rng.Int63n(60))
		if rng.Intn(2) == 0 {
			data := make([]byte, 16)
			rng.Read(data)
			if _, err := o.Access(OpWrite, addr, data); err != nil {
				t.Fatal(err)
			}
		} else if _, err := o.Access(OpRead, addr, nil); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := o.CheckInvariant(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	}
	if err := o.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestStashStaysBounded(t *testing.T) {
	// With Z=3 and ≤50% utilization the stash must stay small (the paper
	// budgets 128 KB; here we just require it not to grow linearly).
	o := newTestORAM(t, Geometry{Levels: 9, Z: 3, BlockBytes: 16}, 6)
	rng := rand.New(rand.NewSource(7))
	n := uint64(300) // well under capacity 3*(2^9-1) = 1533
	for i := 0; i < 3000; i++ {
		addr := uint64(rng.Int63n(int64(n)))
		if _, err := o.Access(OpWrite, addr, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	_, peak := o.StashOccupancy()
	if peak > 100 {
		t.Fatalf("peak stash occupancy %d; expected bounded (<100) for this load", peak)
	}
}

func TestRemapLeavesUniform(t *testing.T) {
	// After many accesses to one block, the sequence of assigned leaves
	// should be near-uniform: chi-square over leaf buckets.
	g := Geometry{Levels: 5, Z: 3, BlockBytes: 16} // 16 leaves
	o := newTestORAM(t, g, 8)
	counts := make([]int, g.Leaves())
	trials := 3200
	for i := 0; i < trials; i++ {
		if _, err := o.Access(OpRead, 1, nil); err != nil {
			t.Fatal(err)
		}
		leaf, ok := o.PositionOf(1)
		if !ok {
			t.Fatal("block 1 unmapped after access")
		}
		counts[leaf]++
	}
	expected := float64(trials) / float64(g.Leaves())
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; p=0.001 critical value ≈ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("leaf distribution non-uniform: chi2 = %.1f (counts %v)", chi2, counts)
	}
}

func TestDummyAccessIndistinguishableBusShape(t *testing.T) {
	// A dummy access must touch the same number of buckets, in the same
	// read-then-write structure, as a real access (§1.1.2). Compare bus
	// traces structurally (bucket count per phase and root positions).
	o := newTestORAM(t, smallGeometry(), 9)
	o.TraceBus = true
	if _, err := o.Access(OpRead, 1, nil); err != nil {
		t.Fatal(err)
	}
	realTrace := append([]BusEvent(nil), o.BusTrace...)
	o.BusTrace = o.BusTrace[:0]
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	dummyTrace := o.BusTrace
	if len(realTrace) != len(dummyTrace) {
		t.Fatalf("real access: %d bus events, dummy: %d", len(realTrace), len(dummyTrace))
	}
	for i := range realTrace {
		if realTrace[i].Write != dummyTrace[i].Write {
			t.Fatalf("event %d: real write=%v dummy write=%v", i, realTrace[i].Write, dummyTrace[i].Write)
		}
	}
	// Both must start at the root (bucket 0) for the read phase and end at
	// the root for the write phase.
	if realTrace[0].Bucket != 0 || dummyTrace[0].Bucket != 0 {
		t.Fatal("path read does not start at root")
	}
	if realTrace[len(realTrace)-1].Bucket != 0 || dummyTrace[len(dummyTrace)-1].Bucket != 0 {
		t.Fatal("path write does not end at root")
	}
}

func TestEveryAccessReencryptsRoot(t *testing.T) {
	// §3.2: every access rewrites the root bucket with probabilistic
	// encryption, so its raw bytes change — the probing attack's hook.
	o := newTestORAM(t, smallGeometry(), 10)
	st := o.Storage()
	before := st.Snapshot(0)
	if _, err := o.Access(OpRead, 1, nil); err != nil {
		t.Fatal(err)
	}
	afterReal := st.Snapshot(0)
	if bytes.Equal(before, afterReal) {
		t.Fatal("root bucket unchanged after real access")
	}
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	afterDummy := st.Snapshot(0)
	if bytes.Equal(afterReal, afterDummy) {
		t.Fatal("root bucket unchanged after dummy access")
	}
}

func TestAccessRejectsBadInput(t *testing.T) {
	o := newTestORAM(t, smallGeometry(), 11)
	if _, err := o.Access(OpWrite, 1, make([]byte, 3)); err == nil {
		t.Fatal("Access accepted short write payload")
	}
	if _, err := o.Access(OpRead, DummyAddr, nil); err == nil {
		t.Fatal("Access accepted the dummy address")
	}
}

func TestIntegrityDetectsTampering(t *testing.T) {
	g := smallGeometry()
	o, err := NewORAM(g, testKey(12), rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	if _, err := o.Access(OpWrite, 2, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// Tamper with the root bucket in untrusted memory.
	o.Storage().(*ByteStorage).Bytes()[3] ^= 0x40
	if _, err := o.Access(OpRead, 2, nil); err == nil {
		t.Fatal("tampered bucket passed integrity verification")
	}
}

func TestIntegrityAcceptsHonestOperation(t *testing.T) {
	o, err := NewORAM(smallGeometry(), testKey(13), rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	for i := 0; i < 50; i++ {
		if _, err := o.Access(OpWrite, uint64(i%7), make([]byte, 64)); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrityMustPrecedeAccesses(t *testing.T) {
	o := newTestORAM(t, smallGeometry(), 14)
	if _, err := o.Access(OpRead, 0, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableIntegrity after accesses did not panic")
		}
	}()
	o.EnableIntegrity()
}

func TestStashEvictForBucketRespectsPaths(t *testing.T) {
	g := Geometry{Levels: 4, Z: 2, BlockBytes: 8}
	s := NewStash()
	s.Put(Block{Addr: 1, Leaf: 0, Data: make([]byte, 8)})
	s.Put(Block{Addr: 2, Leaf: 7, Data: make([]byte, 8)})
	// At the leaf level of path-to-leaf-0, only leaf-0 blocks qualify.
	got := s.EvictForBucket(g, 0, g.Levels-1, 2)
	if len(got) != 1 || got[0].Addr != 1 {
		t.Fatalf("EvictForBucket picked %+v, want block 1 only", got)
	}
	// At the root, anything qualifies.
	got = s.EvictForBucket(g, 0, 0, 2)
	if len(got) != 1 || got[0].Addr != 2 {
		t.Fatalf("root EvictForBucket picked %+v, want block 2", got)
	}
	if s.Len() != 0 {
		t.Fatalf("stash still holds %d blocks", s.Len())
	}
}

func TestStashPutIgnoresDummies(t *testing.T) {
	s := NewStash()
	s.Put(Block{Addr: DummyAddr})
	if s.Len() != 0 {
		t.Fatal("stash stored a dummy block")
	}
}
