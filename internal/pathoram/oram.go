package pathoram

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"tcoram/internal/crypt"
)

// Op distinguishes reads from writes at the ORAM interface.
type Op uint8

const (
	// OpRead returns the current contents of a block.
	OpRead Op = iota
	// OpWrite replaces the contents of a block.
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// BusEvent records one bucket transfer as seen on the memory bus. The
// sequence of BusEvents for any access — real or dummy — is structurally
// identical (same bucket sizes, a full path read then a full path write),
// which is what makes dummy accesses indistinguishable (§1.1.2, §3.1).
type BusEvent struct {
	Bucket uint64
	Write  bool
}

// ORAM is a single-level functional Path ORAM with a flat position map.
// The Recursive type stacks these to form the paper's 3-level recursion.
//
// The access hot path is allocation-free in steady state: buckets are
// decrypted into a reused plaintext scratch buffer, stash payloads are
// recycled through a free list, write-back encrypts directly into the
// storage arena, and the position map is a flat slice.
type ORAM struct {
	geom    Geometry
	store   BucketStore
	cipher  *crypt.Cipher
	stash   *Stash
	posmap  *positionMap
	rng     *rand.Rand
	pathBuf []uint64
	ptBuf   []byte // bucket plaintext scratch (decrypt target, encode source)
	zeroBuf []byte // immutable all-zero payload for first-touch blocks
	plan    EvictPlan

	integrity *merkleTree // optional integrity extension ([25])

	// stale marks tree copies of blocks whose authoritative version lives in
	// the stash because a deferred-eviction (batched) access extracted them
	// without rewriting the path: bucket index -> set of stale addresses.
	// nil outside batched mode; writePath clears a bucket's entry whenever it
	// rewrites that bucket, since the rewrite either re-evicts the fresh copy
	// or replaces the slot. See fetchPath.
	stale map[uint64]map[uint64]struct{}

	// Stats.
	Accesses      uint64
	DummyAccesses uint64
	BucketReads   uint64     // buckets fetched from untrusted storage
	BucketWrites  uint64     // buckets written back to untrusted storage
	BusTrace      []BusEvent // populated only when TraceBus is true
	TraceBus      bool
}

// NewORAM builds and initializes a functional ORAM: every bucket is written
// once with an encryption of an all-dummy bucket, so the adversary-visible
// memory is fully defined before the first access. rng drives leaf
// remapping and must be cryptographically strong in a real deployment; a
// seeded PRNG keeps tests and experiments deterministic.
func NewORAM(g Geometry, key crypt.Key, rng *rand.Rand) (*ORAM, error) {
	return NewORAMOn(g, key, rng, nil)
}

// NewORAMOn is NewORAM over a caller-supplied untrusted store (nil means a
// fresh in-RAM ByteStorage). The store's prior contents are overwritten by
// initialization; recovery from an existing store goes through RecoverORAM.
func NewORAMOn(g Geometry, key crypt.Key, rng *rand.Rand, store BucketStore) (*ORAM, error) {
	o, err := newORAMShell(g, key, rng, store)
	if err != nil {
		return nil, err
	}
	empty := g.encodeBucket(nil)
	for i := uint64(0); i < g.Buckets(); i++ {
		if err := o.cipher.EncryptTo(o.store.BucketSlice(i), empty); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// newORAMShell builds an ORAM's trusted state around a store without
// touching the store's contents — the shared half of NewORAMOn (which then
// initializes every bucket) and RecoverORAM (which restores state and
// verifies the existing buckets instead).
func newORAMShell(g Geometry, key crypt.Key, rng *rand.Rand, store BucketStore) (*ORAM, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if store == nil {
		var err error
		store, err = NewByteStorage(g)
		if err != nil {
			return nil, err
		}
	}
	return &ORAM{
		geom:    g,
		store:   store,
		cipher:  crypt.NewCipher(key, randReader{rng}),
		stash:   NewStash(),
		posmap:  newPositionMap(g.Capacity()),
		rng:     rng,
		ptBuf:   make([]byte, g.BucketPlainBytes()),
		zeroBuf: make([]byte, g.BlockBytes),
	}, nil
}

// randReader adapts a math/rand source to io.Reader for nonce generation in
// deterministic experiments.
type randReader struct{ r *rand.Rand }

func (rr randReader) Read(p []byte) (int, error) {
	for i := 0; i+8 <= len(p); i += 8 {
		binary.LittleEndian.PutUint64(p[i:], rr.r.Uint64())
	}
	if rem := len(p) % 8; rem != 0 {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], rr.r.Uint64())
		copy(p[len(p)-rem:], tmp[:rem])
	}
	return len(p), nil
}

// Geometry returns the tree shape.
func (o *ORAM) Geometry() Geometry { return o.geom }

// Blocks returns the addressable block capacity of the tree — the flat
// counterpart of Recursive.Blocks, so both satisfy the server's backend
// geometry surface.
func (o *ORAM) Blocks() uint64 { return o.geom.Capacity() }

// BlockBytes returns the block payload size.
func (o *ORAM) BlockBytes() int { return o.geom.BlockBytes }

// LevelStashPeaks appends the peak stash occupancy of each ORAM level to
// dst — a single level for a flat ORAM — and returns the extended slice
// (the multi-level counterpart lives on Recursive).
func (o *ORAM) LevelStashPeaks(dst []int) []int {
	return append(dst, o.stash.MaxOccupancy())
}

// Storage exposes the untrusted memory (the adversary's vantage point).
func (o *ORAM) Storage() BucketStore { return o.store }

// StorageStats reports the untrusted store's cache and file-IO counters.
func (o *ORAM) StorageStats() StorageStats { return o.store.Stats() }

// StashOccupancy returns current and peak stash sizes.
func (o *ORAM) StashOccupancy() (cur, peak int) {
	return o.stash.Len(), o.stash.MaxOccupancy()
}

// EnableIntegrity attaches a Merkle tree over the bucket ciphertexts,
// implementing the integrity-verification extension the paper defers to
// [25] (§4.3). Must be called before any accesses.
func (o *ORAM) EnableIntegrity() {
	if o.Accesses != 0 || o.DummyAccesses != 0 {
		panic("pathoram: EnableIntegrity must precede all accesses")
	}
	o.integrity = newMerkleTree(o.geom, o.store)
}

// PositionOf returns the leaf currently assigned to addr and whether the
// block has ever been written (test hook for the path invariant).
func (o *ORAM) PositionOf(addr uint64) (uint64, bool) {
	return o.posmap.Get(addr)
}

// randomLeaf samples a uniformly random leaf.
func (o *ORAM) randomLeaf() uint64 {
	return uint64(o.rng.Int63n(int64(o.geom.Leaves())))
}

// Access performs one Path ORAM access: read the path for addr's current
// leaf, remap addr to a fresh random leaf, serve the request from the
// stash, and greedily write the path back. For OpRead, the returned slice
// is the block payload (zeroes if never written). For OpWrite, data must be
// exactly BlockBytes long.
func (o *ORAM) Access(op Op, addr uint64, data []byte) ([]byte, error) {
	if op == OpWrite && len(data) != o.geom.BlockBytes {
		return nil, fmt.Errorf("pathoram: write payload is %d bytes, want %d", len(data), o.geom.BlockBytes)
	}
	var out []byte
	err := o.Update(addr, func(buf []byte) {
		switch op {
		case OpWrite:
			copy(buf, data)
		case OpRead:
			out = make([]byte, o.geom.BlockBytes)
			copy(out, buf)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Update performs one Path ORAM access that applies fn to the block's
// payload while it sits in the stash: a read-modify-write in a single path
// read/write. fn may inspect the current contents (zeroes if never written)
// and mutate them in place; it must not retain the slice past the call. The
// server's request coalescing depends on this — a batch of queued reads and
// writes to one address collapses into one indistinguishable access.
func (o *ORAM) Update(addr uint64, fn func(data []byte)) error {
	if addr >= DummyAddr {
		return fmt.Errorf("pathoram: address %#x out of range", addr)
	}

	leaf, known := o.posmap.Get(addr)
	if !known {
		leaf = o.randomLeaf()
	}
	// Remap before the write-back so the fetched block re-enters the tree
	// under its new, independent leaf — the critical security step (§3.1).
	newLeaf := o.randomLeaf()
	o.posmap.Set(addr, newLeaf)

	if err := o.readPath(leaf); err != nil {
		return err
	}

	blk := o.stash.Get(addr)
	if blk == nil {
		o.stash.Put(Block{Addr: addr, Leaf: newLeaf, Data: o.zeroBuf})
		blk = o.stash.Get(addr)
	}
	blk.Leaf = newLeaf
	if fn != nil {
		fn(blk.Data)
	}

	if err := o.writePath(leaf); err != nil {
		return err
	}
	o.Accesses++
	return nil
}

// DummyAccess reads and rewrites the path to a uniformly random leaf without
// touching any block — the indistinguishable "fixed program address" access
// of §1.1.2. The bus trace it produces has the same shape as a real access.
func (o *ORAM) DummyAccess() error {
	leaf := o.randomLeaf()
	if err := o.readPath(leaf); err != nil {
		return err
	}
	if err := o.writePath(leaf); err != nil {
		return err
	}
	o.DummyAccesses++
	return nil
}

// readPath decrypts every bucket on the path to leaf into the stash. Each
// bucket is decrypted into the reused plaintext scratch and its real blocks
// copied into stash-owned buffers — no per-bucket or per-block allocation.
func (o *ORAM) readPath(leaf uint64) error {
	o.pathBuf = o.geom.PathIndices(o.pathBuf[:0], leaf)
	slotBytes := BlockHeaderBytes + o.geom.BlockBytes
	for _, idx := range o.pathBuf {
		ct := o.store.ReadBucket(idx)
		if o.integrity != nil {
			if err := o.integrity.verify(idx, ct); err != nil {
				return err
			}
		}
		if err := o.cipher.DecryptTo(o.ptBuf, ct); err != nil {
			return err
		}
		for i := 0; i < o.geom.Z; i++ {
			off := i * slotBytes
			addr, blkLeaf := unpackHeader(o.ptBuf[off:])
			if addr == DummyAddr || o.isStale(idx, addr) {
				continue
			}
			o.stash.Put(Block{Addr: addr, Leaf: blkLeaf, Data: o.ptBuf[off+BlockHeaderBytes : off+slotBytes]})
		}
		o.BucketReads++
		if o.TraceBus {
			o.BusTrace = append(o.BusTrace, BusEvent{Bucket: idx, Write: false})
		}
	}
	return nil
}

// writePath re-encrypts the path to leaf, evicting stash blocks greedily
// from the leaf level upward. Eviction is planned in a single stash scan
// (grouped by deepest eligible level) and each bucket is encoded into the
// plaintext scratch and encrypted straight into the storage arena.
func (o *ORAM) writePath(leaf uint64) error {
	o.pathBuf = o.geom.PathIndices(o.pathBuf[:0], leaf)
	o.stash.PlanPathEviction(o.geom, leaf, o.geom.Z, &o.plan)
	for level := o.geom.Levels - 1; level >= 0; level-- {
		idx := o.pathBuf[level]
		o.encodePlannedBucket(level)
		ct := o.store.BucketSlice(idx)
		if err := o.cipher.EncryptTo(ct, o.ptBuf); err != nil {
			return err
		}
		if o.integrity != nil {
			o.integrity.update(idx, ct)
		}
		if o.stale != nil {
			// The rewrite replaced every slot in this bucket; any stale
			// tombstones it carried are now vacuous.
			delete(o.stale, idx)
		}
		o.BucketWrites++
		if o.TraceBus {
			o.BusTrace = append(o.BusTrace, BusEvent{Bucket: idx, Write: true})
		}
	}
	o.stash.RemovePlanned(&o.plan)
	return nil
}

// encodePlannedBucket packs the blocks the eviction plan assigned to level
// into the plaintext scratch, padding the remaining slots with dummies.
func (o *ORAM) encodePlannedBucket(level int) {
	sel := o.plan.LevelBlocks(level)
	slot := o.ptBuf
	for i := 0; i < o.geom.Z; i++ {
		if i < len(sel) {
			b := o.stash.BlockAt(sel[i])
			packHeader(slot, b.Addr, b.Leaf)
			copy(slot[BlockHeaderBytes:BlockHeaderBytes+o.geom.BlockBytes], b.Data)
		} else {
			packHeader(slot, DummyAddr, 0)
			clear(slot[BlockHeaderBytes : BlockHeaderBytes+o.geom.BlockBytes])
		}
		slot = slot[BlockHeaderBytes+o.geom.BlockBytes:]
	}
}

// CheckInvariant verifies Path ORAM's core invariant for every mapped block:
// the block is either in the stash or stored on the path from the root to
// its assigned leaf. It is O(tree) and intended for tests.
func (o *ORAM) CheckInvariant() error {
	// Decrypt the full tree once.
	located := make(map[uint64]uint64) // addr -> bucket index
	var blocks []Block
	for idx := uint64(0); idx < o.geom.Buckets(); idx++ {
		plain, err := o.cipher.Decrypt(o.store.ReadBucket(idx))
		if err != nil {
			return err
		}
		blocks, err = o.geom.decodeBucket(blocks[:0], plain)
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if o.isStale(idx, b.Addr) {
				continue // superseded copy awaiting overwrite (batched mode)
			}
			if prev, dup := located[b.Addr]; dup {
				return fmt.Errorf("pathoram: block %#x duplicated in buckets %d and %d", b.Addr, prev, idx)
			}
			located[b.Addr] = idx
		}
	}
	var invErr error
	o.posmap.ForEach(func(addr, leaf uint64) {
		if invErr != nil {
			return
		}
		if o.stash.Get(addr) != nil {
			if bucket, dup := located[addr]; dup {
				invErr = fmt.Errorf("pathoram: block %#x live in both stash and bucket %d", addr, bucket)
			}
			return
		}
		bucket, ok := located[addr]
		if !ok {
			invErr = fmt.Errorf("pathoram: mapped block %#x in neither stash nor tree", addr)
			return
		}
		onPath := false
		for level := 0; level < o.geom.Levels; level++ {
			if o.geom.NodeIndex(leaf, level) == bucket {
				onPath = true
				break
			}
		}
		if !onPath {
			invErr = fmt.Errorf("pathoram: block %#x in bucket %d is off the path to its leaf %d", addr, bucket, leaf)
		}
	})
	return invErr
}
