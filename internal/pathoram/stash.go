package pathoram

// Stash is the on-chip block buffer of the Path ORAM controller. Blocks read
// off a path live here until the write-back phase pushes them as deep as
// their leaf assignment allows. The paper's controller budgets the stash as
// a 128 KB SRAM (§9.1.4); MaxOccupancy lets tests check that functional
// workloads stay far below any such bound.
type Stash struct {
	blocks map[uint64]*Block
	peak   int
}

// NewStash returns an empty stash.
func NewStash() *Stash {
	return &Stash{blocks: make(map[uint64]*Block)}
}

// Len returns the current number of real blocks held.
func (s *Stash) Len() int { return len(s.blocks) }

// MaxOccupancy returns the largest size the stash ever reached, including
// transient occupancy during accesses.
func (s *Stash) MaxOccupancy() int { return s.peak }

// Put inserts or replaces a block. Dummy blocks are ignored.
func (s *Stash) Put(b Block) {
	if b.IsDummy() {
		return
	}
	blk := b
	s.blocks[b.Addr] = &blk
	if len(s.blocks) > s.peak {
		s.peak = len(s.blocks)
	}
}

// Get returns the block with the given address, or nil.
func (s *Stash) Get(addr uint64) *Block { return s.blocks[addr] }

// Remove deletes the block with the given address if present.
func (s *Stash) Remove(addr uint64) { delete(s.blocks, addr) }

// EvictForBucket selects up to z blocks that may legally live in the bucket
// at the given level on the path to pathLeaf (their own leaf must share that
// ancestor), removes them from the stash, and returns them. Greedy deepest-
// first eviction is achieved by calling this from the leaf level upward.
func (s *Stash) EvictForBucket(g Geometry, pathLeaf uint64, level, z int) []Block {
	var out []Block
	for addr, blk := range s.blocks {
		if len(out) == z {
			break
		}
		if g.OnPath(pathLeaf, blk.Leaf, level) {
			out = append(out, *blk)
			delete(s.blocks, addr)
		}
	}
	return out
}

// Addrs returns the addresses currently in the stash (test helper; order is
// unspecified).
func (s *Stash) Addrs() []uint64 {
	out := make([]uint64, 0, len(s.blocks))
	for a := range s.blocks {
		out = append(out, a)
	}
	return out
}
