package pathoram

import (
	"math/bits"
	"slices"
)

// Stash is the on-chip block buffer of the Path ORAM controller. Blocks read
// off a path live here until the write-back phase pushes them as deep as
// their leaf assignment allows. The paper's controller budgets the stash as
// a 128 KB SRAM (§9.1.4); MaxOccupancy lets tests check that functional
// workloads stay far below any such bound.
//
// Blocks are kept in a dense slice in deterministic order (insertion order,
// perturbed only by deterministic swap-removes), with a map from address to
// slot for O(1) lookup. Payload buffers are owned by the stash and recycled
// through a free list, so steady-state operation allocates nothing.
type Stash struct {
	blocks []Block
	index  map[uint64]int // addr -> position in blocks
	free   [][]byte       // recycled payload buffers
	peak   int
}

// NewStash returns an empty stash.
func NewStash() *Stash {
	return &Stash{index: make(map[uint64]int)}
}

// Len returns the current number of real blocks held.
func (s *Stash) Len() int { return len(s.blocks) }

// MaxOccupancy returns the largest size the stash ever reached, including
// transient occupancy during accesses.
func (s *Stash) MaxOccupancy() int { return s.peak }

// Put inserts or replaces a block. The payload is copied into stash-owned
// memory, so b.Data may alias a transient decode buffer. Dummy blocks are
// ignored. Pointers previously returned by Get or BlockAt are invalidated.
func (s *Stash) Put(b Block) {
	if b.IsDummy() {
		return
	}
	if i, ok := s.index[b.Addr]; ok {
		blk := &s.blocks[i]
		blk.Leaf = b.Leaf
		copy(blk.Data, b.Data)
		return
	}
	var buf []byte
	if n := len(s.free); n > 0 && cap(s.free[n-1]) >= len(b.Data) {
		buf = s.free[n-1][:len(b.Data)]
		s.free = s.free[:n-1]
	} else {
		buf = make([]byte, len(b.Data))
	}
	copy(buf, b.Data)
	s.index[b.Addr] = len(s.blocks)
	s.blocks = append(s.blocks, Block{Addr: b.Addr, Leaf: b.Leaf, Data: buf})
	if len(s.blocks) > s.peak {
		s.peak = len(s.blocks)
	}
}

// Get returns the block with the given address, or nil. The pointer is valid
// until the next Put, Remove or RemovePlanned.
func (s *Stash) Get(addr uint64) *Block {
	if i, ok := s.index[addr]; ok {
		return &s.blocks[i]
	}
	return nil
}

// BlockAt returns the block in slot i (as reported by PlanPathEviction).
// The pointer is valid until the next Put, Remove or RemovePlanned.
func (s *Stash) BlockAt(i int) *Block { return &s.blocks[i] }

// Remove deletes the block with the given address if present.
func (s *Stash) Remove(addr uint64) {
	if i, ok := s.index[addr]; ok {
		s.removeAt(i)
	}
}

// removeAt deletes slot i by swapping the last block into it (deterministic
// given a deterministic operation sequence) and recycles the payload buffer.
func (s *Stash) removeAt(i int) {
	blk := s.blocks[i]
	delete(s.index, blk.Addr)
	s.free = append(s.free, blk.Data)
	last := len(s.blocks) - 1
	if i != last {
		s.blocks[i] = s.blocks[last]
		s.index[s.blocks[i].Addr] = i
	}
	s.blocks[last] = Block{}
	s.blocks = s.blocks[:last]
}

// EvictForBucket selects up to z blocks that may legally live in the bucket
// at the given level on the path to pathLeaf (their own leaf must share that
// ancestor), removes them from the stash, and returns them. Selection is in
// stash slot order, so identically seeded runs evict identically — the Go
// map iteration of the original implementation made bucket contents vary
// run to run. Greedy deepest-first eviction is achieved by calling this from
// the leaf level upward. The returned payloads are fresh copies the caller
// owns; the write-back hot path uses the allocation-free PlanPathEviction
// instead.
func (s *Stash) EvictForBucket(g Geometry, pathLeaf uint64, level, z int) []Block {
	var out []Block
	for i := 0; i < len(s.blocks) && len(out) < z; i++ {
		if g.OnPath(pathLeaf, s.blocks[i].Leaf, level) {
			b := s.blocks[i]
			b.Data = append([]byte(nil), b.Data...)
			out = append(out, b)
			s.removeAt(i)
			i-- // the swapped-in block must be considered too
		}
	}
	return out
}

// EvictPlan is reusable scratch for PlanPathEviction: the per-level block
// selection for one path write-back. A zero EvictPlan is ready for use.
type EvictPlan struct {
	groups [][]int // groups[l] = stash slots whose deepest eligible level is l
	levels [][]int // levels[l] = stash slots chosen for the bucket at level l
	carry  []int   // deeper-eligible blocks not yet placed
	next   []int   // carry list under construction
	picked []int   // all chosen slots, for RemovePlanned
}

// LevelBlocks returns the stash slots chosen for the bucket at level l.
func (p *EvictPlan) LevelBlocks(l int) []int { return p.levels[l] }

// PlanPathEviction computes, in one scan of the stash, which blocks the
// greedy write-back places into each bucket on the path to pathLeaf: blocks
// are grouped by the deepest level they are eligible for (the grouped-
// eviction technique), then each level from the leaf upward takes up to z
// candidates — first blocks carried up from deeper groups, then its own
// group — leaving the rest to shallower levels. Candidate order within a
// group is stash slot order, so the plan is deterministic. The plan's slots
// remain valid until the stash is next mutated; call RemovePlanned after
// consuming them. This replaces a full-stash scan per level with a single
// scan per access: O(stash + path) instead of O(stash × levels).
func (s *Stash) PlanPathEviction(g Geometry, pathLeaf uint64, z int, plan *EvictPlan) {
	if cap(plan.groups) < g.Levels {
		plan.groups = make([][]int, g.Levels)
		plan.levels = make([][]int, g.Levels)
	}
	plan.groups = plan.groups[:g.Levels]
	plan.levels = plan.levels[:g.Levels]
	for l := 0; l < g.Levels; l++ {
		plan.groups[l] = plan.groups[l][:0]
	}
	plan.picked = plan.picked[:0]

	// Group phase: bucket every stash block by its deepest eligible level.
	for i := range s.blocks {
		dl := g.DeepestLevel(pathLeaf, s.blocks[i].Leaf)
		plan.groups[dl] = append(plan.groups[dl], i)
	}

	// Selection phase, leaf level upward. A block eligible at level l is
	// eligible at every level above it on this path, so unplaced candidates
	// carry rootward.
	plan.carry = plan.carry[:0]
	for level := g.Levels - 1; level >= 0; level-- {
		take := z
		sel := plan.levels[level][:0]
		next := plan.next[:0]
		for _, i := range plan.carry {
			if take > 0 {
				sel = append(sel, i)
				take--
			} else {
				next = append(next, i)
			}
		}
		for _, i := range plan.groups[level] {
			if take > 0 {
				sel = append(sel, i)
				take--
			} else {
				next = append(next, i)
			}
		}
		plan.levels[level] = sel
		plan.picked = append(plan.picked, sel...)
		plan.carry, plan.next = next, plan.carry
	}
}

// RemovePlanned removes every block chosen by the preceding PlanPathEviction
// from the stash, recycling their payload buffers.
func (s *Stash) RemovePlanned(plan *EvictPlan) {
	// Remove in descending slot order so swap-removes never disturb a slot
	// that is still pending removal.
	slices.Sort(plan.picked)
	for k := len(plan.picked) - 1; k >= 0; k-- {
		s.removeAt(plan.picked[k])
	}
	plan.picked = plan.picked[:0]
}

// Addrs returns the addresses currently in the stash (test helper; order is
// unspecified).
func (s *Stash) Addrs() []uint64 {
	out := make([]uint64, 0, len(s.blocks))
	for _, b := range s.blocks {
		out = append(out, b.Addr)
	}
	return out
}

// DeepestLevel returns the deepest level at which a block mapped to
// blockLeaf may legally sit on the path to pathLeaf — the length of the
// common root prefix of the two leaves. It is the grouping key of the
// grouped eviction.
func (g Geometry) DeepestLevel(pathLeaf, blockLeaf uint64) int {
	return g.Levels - 1 - bits.Len64(pathLeaf^blockLeaf)
}
