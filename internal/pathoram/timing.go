package pathoram

import (
	"tcoram/internal/crypt"
	"tcoram/internal/dram"
)

// This file costs one recursive Path ORAM access against the DRAM model.
// Path ORAM's traffic is data-independent: every access reads and rewrites
// one full path per recursion level, bursting fixed-size buckets at fixed
// addresses. The latency is therefore a property of the geometry and the
// DRAM timing alone, which is why the system simulator can evaluate it once
// and reuse the scalar (the paper's 1488 cycles, §9.1.2).

// PaperAccessLatency is the per-access latency reported by the paper's
// DRAMSim2-based evaluation (processor cycles at 1 GHz). The experiment
// harness uses this constant so results are comparable point-for-point with
// the paper; EstimateAccessLatency documents how close our native DRAM
// model lands (see EXPERIMENTS.md).
const PaperAccessLatency = 1488

// PaperAccessBytes is the round-trip data movement per access reported in
// §9.1.2 (12.1 KB per direction).
const PaperAccessBytes = 24200

// PaperConfig is the evaluated ORAM: 4 GB physical Path ORAM holding a 1 GB
// working set of 64 B cache lines (2^24 blocks), Z = 3, 3 recursion levels
// with 32 B position-map blocks.
func PaperConfig() RecursiveConfig {
	return DefaultRecursiveConfig(1 << 24)
}

// TreeAddressMap lays the stack's trees out contiguously in external memory
// and yields the DRAM burst sequence of one access.
type TreeAddressMap struct {
	cfg   RecursiveConfig
	geoms []Geometry
	base  []int64 // byte offset of each tree
}

// NewTreeAddressMap computes the fixed DRAM layout of the ORAM forest.
func NewTreeAddressMap(cfg RecursiveConfig) *TreeAddressMap {
	geoms := cfg.Geometries()
	base := make([]int64, len(geoms))
	var off int64
	for i, g := range geoms {
		base[i] = off
		off += int64(g.TreeBytes())
	}
	return &TreeAddressMap{cfg: cfg, geoms: geoms, base: base}
}

// TotalBytes is the external-memory footprint of the whole forest.
func (t *TreeAddressMap) TotalBytes() int64 {
	last := len(t.geoms) - 1
	return t.base[last] + int64(t.geoms[last].TreeBytes())
}

// BucketAddr returns the byte address of a bucket in tree level (0 = data
// ORAM).
func (t *TreeAddressMap) BucketAddr(tree int, bucket uint64) int64 {
	return t.base[tree] + int64(bucket)*int64(t.geoms[tree].BucketCipherBytes())
}

// PathBursts appends the DRAM bursts of one direction (read or write) of a
// path access in tree i to dst. Reads traverse root-to-leaf; writes
// leaf-to-root. Each bucket spans ceil(bucketBytes/burstBytes) bursts.
func (t *TreeAddressMap) PathBursts(dst []dram.Burst, sys *dram.System, tree int, leaf uint64, kind dram.AccessKind) []dram.Burst {
	g := t.geoms[tree]
	burstBytes := int64(sys.Config().BurstBytes)
	appendBucket := func(bucket uint64) {
		addr := t.BucketAddr(tree, bucket)
		end := addr + int64(g.BucketCipherBytes())
		for a := addr; a < end; a += burstBytes {
			dst = append(dst, sys.Decode(a, kind))
		}
	}
	idx := g.PathIndices(nil, leaf%g.Leaves())
	if kind == dram.Read {
		for _, b := range idx {
			appendBucket(b)
		}
	} else {
		for j := len(idx) - 1; j >= 0; j-- {
			appendBucket(idx[j])
		}
	}
	return dst
}

// AccessBursts appends the DRAM bursts of one full access to dst: for each
// recursion level (smallest position map first, then the data ORAM — the
// order the controller resolves leaves), the path to the given leaf is read
// root-to-leaf and written back leaf-to-root.
func (t *TreeAddressMap) AccessBursts(dst []dram.Burst, sys *dram.System, leaves []uint64) []dram.Burst {
	for i := len(t.geoms) - 1; i >= 0; i-- {
		dst = t.PathBursts(dst, sys, i, leaves[i], dram.Read)
		dst = t.PathBursts(dst, sys, i, leaves[i], dram.Write)
	}
	return dst
}

// LatencyEstimate is the result of costing one access on the DRAM model.
type LatencyEstimate struct {
	// CPUCycles is the access latency in processor cycles, including the
	// fixed crypto pipeline fill.
	CPUCycles int64
	// DRAMCycles is the raw DRAM-clock duration of the burst sequence.
	DRAMCycles int64
	// BytesMoved is the round-trip data volume.
	BytesMoved int64
	// Bursts is the number of DRAM bursts issued.
	Bursts int
}

// EstimateAccessLatency runs the full burst sequence of one access through a
// fresh DRAM system and returns the resulting latency. The controller's real
// dependencies are modeled as barriers: recursion levels serialize (the leaf
// for tree i is only known once tree i+1's block has been read), and a
// tree's write-back begins only after its read completes and the stash is
// updated (one AES pipeline fill per phase). The leaves chosen do not matter
// for the estimate (paths have identical shape); mid-tree leaves are used.
// The estimate is deterministic.
func EstimateAccessLatency(cfg RecursiveConfig, dcfg dram.Config, lat crypt.FixedLatency) LatencyEstimate {
	sys := dram.NewSystem(dcfg)
	t := NewTreeAddressMap(cfg)

	// The per-phase serialization gap in DRAM cycles: the crypto pipeline
	// drains/refills between a path read and its write-back.
	gap := lat.AccessOverhead(0) * int64(dcfg.CPUCycleDen) / int64(dcfg.CPUCycleNum)

	var now int64
	var nbursts int
	for i := len(t.geoms) - 1; i >= 0; i-- {
		leaf := t.geoms[i].Leaves() / 2
		reads := t.PathBursts(nil, sys, i, leaf, dram.Read)
		now = sys.SequenceFrom(now, reads) + gap
		writes := t.PathBursts(nil, sys, i, leaf, dram.Write)
		now = sys.SequenceFrom(now, writes) + gap
		nbursts += len(reads) + len(writes)
	}
	_, roundTrip := cfg.AccessBytes()
	return LatencyEstimate{
		CPUCycles:  dcfg.ToCPUCycles(now),
		DRAMCycles: now,
		BytesMoved: int64(roundTrip),
		Bursts:     nbursts,
	}
}
