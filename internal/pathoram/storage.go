package pathoram

import (
	"fmt"
)

// Storage is the untrusted external memory holding encrypted buckets. The
// secure processor only ever reads and writes whole buckets; the adversary,
// by contrast, may inspect the raw bytes (see Snapshot), which is exactly
// the capability the root-bucket probing attack of §3.2 assumes.
type Storage interface {
	// ReadBucket returns the stored ciphertext of bucket idx. The returned
	// slice aliases internal storage and must not be modified.
	ReadBucket(idx uint64) []byte
	// WriteBucket replaces the ciphertext of bucket idx.
	WriteBucket(idx uint64, ciphertext []byte)
}

// ByteStorage is a Storage backed by one contiguous byte slice, mimicking
// the fixed DRAM layout the paper relies on ("all buckets are stored at
// fixed locations", §3.2).
type ByteStorage struct {
	geom       Geometry
	bucketSize int
	buf        []byte
}

// NewByteStorage allocates zeroed storage for all buckets of g.
// Note: a zeroed bucket is not a valid ciphertext of an all-dummy bucket;
// ORAM initialization writes every bucket before use.
func NewByteStorage(g Geometry) *ByteStorage {
	bs := g.BucketCipherBytes()
	total := g.Buckets() * uint64(bs)
	if total > 1<<31 {
		panic(fmt.Sprintf("pathoram: refusing to allocate %d bytes of functional storage; use the timing model for large geometries", total))
	}
	return &ByteStorage{geom: g, bucketSize: bs, buf: make([]byte, total)}
}

// BucketOffset returns the byte offset of bucket idx within the underlying
// buffer; the adversary uses offset 0 (the root) for probing.
func (s *ByteStorage) BucketOffset(idx uint64) int { return int(idx) * s.bucketSize }

// ReadBucket implements Storage.
func (s *ByteStorage) ReadBucket(idx uint64) []byte {
	off := s.BucketOffset(idx)
	return s.buf[off : off+s.bucketSize]
}

// WriteBucket implements Storage.
func (s *ByteStorage) WriteBucket(idx uint64, ciphertext []byte) {
	if len(ciphertext) != s.bucketSize {
		panic(fmt.Sprintf("pathoram: bucket ciphertext is %d bytes, want %d", len(ciphertext), s.bucketSize))
	}
	off := s.BucketOffset(idx)
	copy(s.buf[off:], ciphertext)
}

// BucketSlice returns the mutable backing bytes of bucket idx. The ORAM
// write-back path encrypts buckets directly into this slice, skipping the
// intermediate ciphertext buffer (and copy) that WriteBucket requires.
func (s *ByteStorage) BucketSlice(idx uint64) []byte {
	off := s.BucketOffset(idx)
	return s.buf[off : off+s.bucketSize]
}

// Snapshot copies the raw bytes of bucket idx — the adversary's view.
func (s *ByteStorage) Snapshot(idx uint64) []byte {
	out := make([]byte, s.bucketSize)
	copy(out, s.ReadBucket(idx))
	return out
}

// Bytes exposes the whole untrusted memory image (adversary's view).
func (s *ByteStorage) Bytes() []byte { return s.buf }
