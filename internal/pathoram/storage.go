package pathoram

import (
	"fmt"
)

// Storage is the untrusted external memory holding encrypted buckets. The
// secure processor only ever reads and writes whole buckets; the adversary,
// by contrast, may inspect the raw bytes (see Snapshot), which is exactly
// the capability the root-bucket probing attack of §3.2 assumes.
type Storage interface {
	// ReadBucket returns the stored ciphertext of bucket idx. The returned
	// slice aliases internal storage and must not be modified.
	ReadBucket(idx uint64) []byte
	// WriteBucket replaces the ciphertext of bucket idx.
	WriteBucket(idx uint64, ciphertext []byte)
}

// BucketStore is the full untrusted-store surface an ORAM instance is built
// on: Storage plus the zero-copy write-back target, the adversary snapshot
// hook, and lifecycle operations a durable implementation needs. ByteStorage
// (RAM) and FileStorage (disk) both satisfy it.
type BucketStore interface {
	Storage
	// BucketSlice returns a mutable ciphertext-sized buffer for bucket idx
	// that the caller fully overwrites (the write-back path encrypts
	// directly into it). Implementations may treat a call as a pending
	// write of the whole bucket: a cached store returns a dirty page
	// without reading the old contents from its backing file, which is the
	// explicit adaptation of ByteStorage's zero-copy contract to the
	// cached path. The slice is valid until the next operation on the
	// store.
	BucketSlice(idx uint64) []byte
	// Snapshot copies the raw stored bytes of bucket idx — the adversary's
	// view of untrusted memory.
	Snapshot(idx uint64) []byte
	// Flush persists buffered writes to the backing medium (no-op for
	// RAM-backed stores).
	Flush() error
	// Close releases resources without flushing; a durable store is only
	// consistent on disk after an explicit Flush (the checkpoint protocol
	// depends on no buffered write reaching the file behind its back).
	Close() error
	// Stats reports cache and backing-IO counters (zero for RAM stores).
	Stats() StorageStats
}

// StorageStats counts cache and backing-file traffic of a BucketStore.
type StorageStats struct {
	CacheHits   uint64
	CacheMisses uint64
	FileReads   uint64 // buckets read from the backing file
	FileWrites  uint64 // buckets written to the backing file
	MMapReads   uint64 // clean-bucket reads served from the file mapping
}

func (s StorageStats) add(o StorageStats) StorageStats {
	return StorageStats{
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
		FileReads:   s.FileReads + o.FileReads,
		FileWrites:  s.FileWrites + o.FileWrites,
		MMapReads:   s.MMapReads + o.MMapReads,
	}
}

// StorageFactory builds the untrusted store for one tree of an ORAM stack:
// level 0 is the data ORAM, levels 1..Recursion the position-map ORAMs from
// largest to smallest. A nil factory means in-RAM ByteStorage everywhere.
type StorageFactory func(level int, g Geometry) (BucketStore, error)

// newStore resolves a possibly-nil factory for one level.
func newStore(factory StorageFactory, level int, g Geometry) (BucketStore, error) {
	if factory == nil {
		return NewByteStorage(g)
	}
	return factory(level, g)
}

// MaxByteStorage is the largest in-RAM bucket arena NewByteStorage will
// allocate. Larger trees need the file-backed store, whose capacity is
// bounded by the filesystem, not one machine's memory.
const MaxByteStorage = 1 << 31

// ByteStorage is a BucketStore backed by one contiguous byte slice,
// mimicking the fixed DRAM layout the paper relies on ("all buckets are
// stored at fixed locations", §3.2).
type ByteStorage struct {
	geom       Geometry
	bucketSize int
	buf        []byte
}

// NewByteStorage allocates zeroed storage for all buckets of g. It refuses
// geometries beyond MaxByteStorage — use FileStorage for those.
// Note: a zeroed bucket is not a valid ciphertext of an all-dummy bucket;
// ORAM initialization writes every bucket before use.
func NewByteStorage(g Geometry) (*ByteStorage, error) {
	bs := g.BucketCipherBytes()
	total := g.Buckets() * uint64(bs)
	if total > MaxByteStorage {
		return nil, fmt.Errorf("pathoram: geometry needs %d bytes of in-RAM storage (max %d); use the file-backed store", total, MaxByteStorage)
	}
	return &ByteStorage{geom: g, bucketSize: bs, buf: make([]byte, total)}, nil
}

// BucketOffset returns the byte offset of bucket idx within the underlying
// buffer; the adversary uses offset 0 (the root) for probing.
func (s *ByteStorage) BucketOffset(idx uint64) int { return int(idx) * s.bucketSize }

// ReadBucket implements Storage.
func (s *ByteStorage) ReadBucket(idx uint64) []byte {
	off := s.BucketOffset(idx)
	return s.buf[off : off+s.bucketSize]
}

// WriteBucket implements Storage.
func (s *ByteStorage) WriteBucket(idx uint64, ciphertext []byte) {
	if len(ciphertext) != s.bucketSize {
		panic(fmt.Sprintf("pathoram: bucket ciphertext is %d bytes, want %d", len(ciphertext), s.bucketSize))
	}
	off := s.BucketOffset(idx)
	copy(s.buf[off:], ciphertext)
}

// BucketSlice returns the mutable backing bytes of bucket idx. The ORAM
// write-back path encrypts buckets directly into this slice, skipping the
// intermediate ciphertext buffer (and copy) that WriteBucket requires.
func (s *ByteStorage) BucketSlice(idx uint64) []byte {
	off := s.BucketOffset(idx)
	return s.buf[off : off+s.bucketSize]
}

// Snapshot copies the raw bytes of bucket idx — the adversary's view.
func (s *ByteStorage) Snapshot(idx uint64) []byte {
	out := make([]byte, s.bucketSize)
	copy(out, s.ReadBucket(idx))
	return out
}

// Bytes exposes the whole untrusted memory image (adversary's view).
func (s *ByteStorage) Bytes() []byte { return s.buf }

// Flush implements BucketStore (RAM is always "persisted").
func (s *ByteStorage) Flush() error { return nil }

// Close implements BucketStore.
func (s *ByteStorage) Close() error { return nil }

// Stats implements BucketStore; a RAM store has no cache or file traffic.
func (s *ByteStorage) Stats() StorageStats { return StorageStats{} }
