package pathoram

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

func smallBatchedConfig() BatchedConfig {
	return BatchedConfig{
		RecursiveConfig: RecursiveConfig{
			DataBlocks:       48, // small tree -> frequent leaf collisions
			DataBlockBytes:   32,
			PosMapBlockBytes: 32,
			Z:                3,
			Recursion:        0,
		},
		BatchK:     4,
		EvictEvery: 4,
	}
}

func newTestBatched(t *testing.T, cfg BatchedConfig, seed int64) *Batched {
	t.Helper()
	b, err := NewBatched(cfg, testKey(byte(seed)), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchedConfigValidate(t *testing.T) {
	good := smallBatchedConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*BatchedConfig){
		func(c *BatchedConfig) { c.DataBlocks = 0 },
		func(c *BatchedConfig) { c.BatchK = -1 },
		func(c *BatchedConfig) { c.BatchK = 65 },
		func(c *BatchedConfig) { c.EvictEvery = -1 },
		func(c *BatchedConfig) { c.EvictEvery = 4097 },
		func(c *BatchedConfig) { c.EvictPaths = -1 },
		func(c *BatchedConfig) { c.BatchK = 8; c.StashHighWater = 4 },
	}
	for i, mutate := range bad {
		c := smallBatchedConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

// TestBatchedReadYourWrites drives a long mixed workload — batches of
// varying fill, single Updates, dummy slots — against a reference map on a
// deliberately tiny tree (many leaf collisions, so stale tree copies and
// fresh stash copies constantly share paths) and checks every read plus the
// structural invariant along the way. This is the test that would catch a
// resurrected stale copy.
func TestBatchedReadYourWrites(t *testing.T) {
	cfg := smallBatchedConfig()
	b := newTestBatched(t, cfg, 7)
	rng := rand.New(rand.NewSource(99))
	ref := make(map[uint64][]byte)

	checkRead := func(addr uint64) BatchOp {
		want := ref[addr]
		return BatchOp{Addr: addr, Fn: func(data []byte) {
			if want == nil {
				want = make([]byte, cfg.DataBlockBytes)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("block %d: read %x, want %x", addr, data[:4], want[:4])
			}
		}}
	}
	write := func(addr uint64) BatchOp {
		payload := make([]byte, cfg.DataBlockBytes)
		rng.Read(payload)
		ref[addr] = payload
		return BatchOp{Addr: addr, Fn: func(data []byte) { copy(data, payload) }}
	}

	for slot := 0; slot < 600; slot++ {
		switch slot % 7 {
		case 3: // dummy slot
			if err := b.DummyAccess(); err != nil {
				t.Fatal(err)
			}
		case 5: // single-op Update path
			addr := uint64(rng.Intn(int(cfg.DataBlocks)))
			op := write(addr)
			if err := b.Update(op.Addr, op.Fn); err != nil {
				t.Fatal(err)
			}
		default: // batch with a random fill level, mixed reads and writes
			n := 1 + rng.Intn(cfg.BatchK)
			ops := make([]BatchOp, 0, n)
			for i := 0; i < n; i++ {
				addr := uint64(rng.Intn(int(cfg.DataBlocks)))
				if rng.Intn(2) == 0 {
					ops = append(ops, write(addr))
				} else {
					ops = append(ops, checkRead(addr))
				}
			}
			if err := b.AccessBatch(ops); err != nil {
				t.Fatal(err)
			}
		}
		if slot%37 == 0 {
			if err := b.CheckInvariant(); err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
		}
	}
	// Final sweep: every written block reads back.
	for addr := uint64(0); addr < cfg.DataBlocks; addr++ {
		if err := b.AccessBatch([]BatchOp{checkRead(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if b.ForcedEvictions() != 0 {
		t.Errorf("unexpected forced evictions: %d", b.ForcedEvictions())
	}
}

// TestBatchedRecursiveIntegrity checks the batched backend composes with
// position-map recursion and Merkle integrity: same RMW semantics, every
// level verified on read.
func TestBatchedRecursiveIntegrity(t *testing.T) {
	cfg := smallBatchedConfig()
	cfg.DataBlocks = 256
	cfg.DataBlockBytes = 64
	cfg.Recursion = 2
	b := newTestBatched(t, cfg, 11)
	b.EnableIntegrity()
	rng := rand.New(rand.NewSource(5))
	ref := make(map[uint64][]byte)

	for slot := 0; slot < 200; slot++ {
		n := 1 + rng.Intn(cfg.BatchK)
		ops := make([]BatchOp, 0, n)
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(int(cfg.DataBlocks)))
			if prev, ok := ref[addr]; ok && rng.Intn(2) == 0 {
				want := append([]byte(nil), prev...)
				ops = append(ops, BatchOp{Addr: addr, Fn: func(data []byte) {
					if !bytes.Equal(data, want) {
						t.Fatalf("block %d: read-back mismatch", addr)
					}
				}})
			} else {
				payload := make([]byte, cfg.DataBlockBytes)
				rng.Read(payload)
				ref[addr] = payload
				ops = append(ops, BatchOp{Addr: addr, Fn: func(data []byte) { copy(data, payload) }})
			}
		}
		if err := b.AccessBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	// Tampering with any level's storage must fail the next batch.
	tampered := newTestBatched(t, cfg, 11)
	tampered.EnableIntegrity()
	if err := tampered.AccessBatch([]BatchOp{{Addr: 1, Fn: func(d []byte) { d[0] = 1 }}}); err != nil {
		t.Fatal(err)
	}
	buf := tampered.rec.orams[0].Storage().(*ByteStorage).Bytes()
	buf[len(buf)/2] ^= 0xFF
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = tampered.DummyAccess()
	}
	if err == nil {
		t.Fatal("tampered storage never failed integrity verification")
	}
}

// TestBatchedDuplicateAddrs checks that duplicate addresses within one
// batch behave like sequential accesses: the second op observes the first
// op's write.
func TestBatchedDuplicateAddrs(t *testing.T) {
	cfg := smallBatchedConfig()
	b := newTestBatched(t, cfg, 3)
	payload := bytes.Repeat([]byte{0xAB}, cfg.DataBlockBytes)
	saw := false
	err := b.AccessBatch([]BatchOp{
		{Addr: 9, Fn: func(d []byte) { copy(d, payload) }},
		{Addr: 9, Fn: func(d []byte) {
			saw = true
			if !bytes.Equal(d, payload) {
				t.Errorf("second op read %x, want %x", d[:4], payload[:4])
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !saw {
		t.Fatal("second op never ran")
	}
	if err := b.AccessBatch(make([]BatchOp, cfg.BatchK+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestBatchedTraceDataIndependence is the core security property of the
// batched schedule: the per-slot storage-access signature (bucket reads,
// writes, bytes moved, eviction cadence) is byte-identical whether a slot
// carries zero, one, or a full batch of real requests — dummies pad every
// slot to exactly BatchK paths and evictions fire on slot count alone.
func TestBatchedTraceDataIndependence(t *testing.T) {
	for _, recursion := range []int{0, 2} {
		cfg := smallBatchedConfig()
		cfg.DataBlocks = 256
		cfg.DataBlockBytes = 64
		cfg.Recursion = recursion
		const slots = 33 // covers several eviction periods plus a partial one

		traces := make(map[string][]byte)
		for name, fill := range map[string]int{"depth0": 0, "depth1": 1, "depthK": cfg.BatchK} {
			b := newTestBatched(t, cfg, 21)
			b.TraceSlots = true
			next := uint64(0)
			for s := 0; s < slots; s++ {
				ops := make([]BatchOp, 0, fill)
				for i := 0; i < fill; i++ {
					ops = append(ops, BatchOp{Addr: next % cfg.DataBlocks, Fn: func([]byte) {}})
					next++
				}
				if err := b.AccessBatch(ops); err != nil {
					t.Fatal(err)
				}
			}
			if b.ForcedEvictions() != 0 {
				t.Fatalf("recursion=%d %s: forced eviction perturbed the schedule", recursion, name)
			}
			raw, err := json.Marshal(b.SlotTrace)
			if err != nil {
				t.Fatal(err)
			}
			traces[name] = raw
		}
		for name, raw := range traces {
			if !bytes.Equal(raw, traces["depth0"]) {
				t.Errorf("recursion=%d: slot trace for %s differs from the idle trace:\n%s\nvs\n%s",
					recursion, name, raw, traces["depth0"])
			}
		}
	}
}

// TestBatchedStashHighWater overloads the backend — BatchK distinct blocks
// every slot with a long eviction period and a low high-water mark — and
// checks the guard forces early passes, the documented occupancy bound
// holds, and correctness survives the overload.
func TestBatchedStashHighWater(t *testing.T) {
	cfg := smallBatchedConfig()
	cfg.DataBlocks = 512
	cfg.BatchK = 4
	cfg.EvictEvery = 16 // worst case: k×K = 64 blocks between scheduled passes
	cfg.StashHighWater = 24
	b := newTestBatched(t, cfg, 13)
	rng := rand.New(rand.NewSource(17))
	ref := make(map[uint64][]byte)

	for slot := 0; slot < 256; slot++ {
		ops := make([]BatchOp, 0, cfg.BatchK)
		for i := 0; i < cfg.BatchK; i++ {
			addr := uint64(rng.Intn(int(cfg.DataBlocks)))
			payload := make([]byte, cfg.DataBlockBytes)
			rng.Read(payload)
			ref[addr] = payload
			ops = append(ops, BatchOp{Addr: addr, Fn: func(d []byte) { copy(d, payload) }})
		}
		if err := b.AccessBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	if b.ForcedEvictions() == 0 {
		t.Fatal("high-water guard never fired under k distinct blocks per slot")
	}
	peaks := b.LevelStashPeaks(nil)
	if bound := b.StashBound(); peaks[0] > bound {
		t.Fatalf("data-level stash peak %d exceeds documented bound %d", peaks[0], bound)
	}
	for addr, want := range ref {
		err := b.AccessBatch([]BatchOp{{Addr: addr, Fn: func(d []byte) {
			if !bytes.Equal(d, want) {
				t.Fatalf("block %d corrupted under overload", addr)
			}
		}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedEvictionReverseLex checks the eviction-path order is the
// bit-reversed counter sequence: successive paths diverge at the root, and
// the order visits every leaf exactly once per Leaves() passes.
func TestBatchedEvictionReverseLex(t *testing.T) {
	cfg := smallBatchedConfig()
	b := newTestBatched(t, cfg, 1)
	leaves := b.data.geom.Leaves()
	seen := make(map[uint64]bool)
	var order []uint64
	for i := uint64(0); i < leaves; i++ {
		leaf := b.nextEvictLeaf()
		if leaf >= leaves {
			t.Fatalf("eviction leaf %d out of range (%d leaves)", leaf, leaves)
		}
		if seen[leaf] {
			t.Fatalf("leaf %d revisited before a full sweep", leaf)
		}
		seen[leaf] = true
		order = append(order, leaf)
	}
	// Reverse-lexicographic: consecutive leaves differ in their top bit
	// (paths alternate between the root's two subtrees).
	w := uint(b.data.geom.Levels - 1)
	for i := 1; i < len(order); i++ {
		if (order[i-1]^order[i])>>(w-1) != 1 {
			t.Fatalf("leaves %d and %d share a root subtree at positions %d,%d", order[i-1], order[i], i-1, i)
		}
	}
	if next := b.nextEvictLeaf(); next != order[0] {
		t.Fatalf("sweep did not wrap: got %d, want %d", next, order[0])
	}
}

// TestBatchedDeterministic: identical (cfg, key, seed) inputs and identical
// batches produce byte-identical adversary-visible storage.
func TestBatchedDeterministic(t *testing.T) {
	cfg := smallBatchedConfig()
	run := func() []byte {
		b := newTestBatched(t, cfg, 42)
		for slot := 0; slot < 40; slot++ {
			ops := []BatchOp{
				{Addr: uint64(slot) % cfg.DataBlocks, Fn: func(d []byte) { d[0] = byte(slot) }},
				{Addr: uint64(slot*3) % cfg.DataBlocks, Fn: func([]byte) {}},
			}
			if err := b.AccessBatch(ops); err != nil {
				t.Fatal(err)
			}
		}
		return append([]byte(nil), b.rec.orams[0].Storage().(*ByteStorage).Bytes()...)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical inputs produced diverging storage")
	}
}
