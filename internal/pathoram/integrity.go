package pathoram

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// ErrIntegrity is returned when a bucket fails Merkle verification,
// indicating the untrusted memory was tampered with (the attack class the
// paper excludes from its threat model and defers to [25], §4.3).
var ErrIntegrity = errors.New("pathoram: integrity check failed")

// merkleTree maintains a hash tree mirroring the ORAM tree. Each node keeps
//
//	digest[idx]  = H(bucket ciphertext)
//	subtree[idx] = H(digest[idx] ‖ subtree[left] ‖ subtree[right])
//
// In hardware only subtree[0] (the root) would live on-chip and the rest in
// untrusted memory, verified along the accessed path; the functional model
// keeps the arrays in trusted state, which detects exactly the same
// tampering (any modified bucket ciphertext fails its digest check on the
// next path read). Updates follow path write-back: leaves first, then one
// root-ward recomputation pass.
type merkleTree struct {
	geom    Geometry
	digest  [][sha256.Size]byte
	subtree [][sha256.Size]byte
}

func newMerkleTree(g Geometry, store Storage) *merkleTree {
	m := &merkleTree{
		geom:    g,
		digest:  make([][sha256.Size]byte, g.Buckets()),
		subtree: make([][sha256.Size]byte, g.Buckets()),
	}
	for idx := int64(g.Buckets()) - 1; idx >= 0; idx-- {
		m.digest[idx] = sha256.Sum256(store.ReadBucket(uint64(idx)))
		m.recomputeSubtree(uint64(idx))
	}
	return m
}

// children returns the child bucket indices of idx, if any.
func (m *merkleTree) children(idx uint64) (left, right uint64, ok bool) {
	left = 2*idx + 1
	right = 2*idx + 2
	ok = right < m.geom.Buckets()
	return
}

func (m *merkleTree) recomputeSubtree(idx uint64) {
	h := sha256.New()
	h.Write(m.digest[idx][:])
	if l, r, ok := m.children(idx); ok {
		h.Write(m.subtree[l][:])
		h.Write(m.subtree[r][:])
	}
	h.Sum(m.subtree[idx][:0])
}

// Root returns the root hash — the only value hardware must keep on-chip.
func (m *merkleTree) Root() [sha256.Size]byte { return m.subtree[0] }

// verify checks the stored ciphertext of idx against its trusted digest.
func (m *merkleTree) verify(idx uint64, ciphertext []byte) error {
	if sha256.Sum256(ciphertext) != m.digest[idx] {
		return fmt.Errorf("%w: bucket %d", ErrIntegrity, idx)
	}
	return nil
}

// update records a rewritten bucket and refreshes the hash chain to the
// root.
func (m *merkleTree) update(idx uint64, ciphertext []byte) {
	m.digest[idx] = sha256.Sum256(ciphertext)
	m.recomputeSubtree(idx)
	for idx != 0 {
		idx = (idx - 1) / 2
		m.recomputeSubtree(idx)
	}
}
