// Package pathoram implements Path ORAM (Stefanov et al., CCS 2013) as used
// by the paper's secure processor (§3): an on-chip controller managing
// external memory as a binary tree of encrypted buckets, with a stash, a
// recursive position map, and indistinguishable dummy accesses.
//
// Two complementary views are provided:
//
//   - a functional ORAM (ORAM, Recursive) that actually stores and moves
//     encrypted bytes, used by the examples, the adversary's root-bucket
//     probing attack (§3.2), and the security property tests; and
//   - a timing view (Geometry, PathBursts, EstimateAccessLatency) that
//     costs one access against the DRAM model, reproducing the paper's
//     "1488 cycles, 24.2 KB per access" characterization (§9.1.2).
package pathoram

import (
	"fmt"

	"tcoram/internal/crypt"
)

// BlockHeaderBytes is the per-block metadata stored inside a bucket: a
// packed 40-bit block address and 24-bit leaf label. The paper's controller
// ([26]) packs headers similarly; 8 bytes keeps the recursive path footprint
// at the reported 12.1 KB per direction.
const BlockHeaderBytes = 8

// DummyAddr marks an empty (dummy) block slot inside a bucket.
const DummyAddr = uint64(1)<<40 - 1

// Geometry fixes the shape of one ORAM tree.
type Geometry struct {
	// Levels is the number of levels including root and leaves; the tree
	// has 2^(Levels-1) leaves and 2^Levels - 1 buckets.
	Levels int
	// Z is the number of block slots per bucket (paper: Z = 3).
	Z int
	// BlockBytes is the payload size of one block (64 B for the data ORAM,
	// 32 B for recursive position-map ORAMs).
	BlockBytes int
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Levels < 1 || g.Levels > 40:
		return fmt.Errorf("pathoram: Levels must be in [1,40], got %d", g.Levels)
	case g.Z < 1:
		return fmt.Errorf("pathoram: Z must be positive, got %d", g.Z)
	case g.BlockBytes < 1:
		return fmt.Errorf("pathoram: BlockBytes must be positive, got %d", g.BlockBytes)
	}
	return nil
}

// Leaves returns the number of leaves, 2^(Levels-1).
func (g Geometry) Leaves() uint64 { return 1 << (g.Levels - 1) }

// Buckets returns the total bucket count, 2^Levels - 1.
func (g Geometry) Buckets() uint64 { return 1<<g.Levels - 1 }

// Capacity returns the total number of block slots in the tree.
func (g Geometry) Capacity() uint64 { return g.Buckets() * uint64(g.Z) }

// BucketPlainBytes is the plaintext size of one bucket.
func (g Geometry) BucketPlainBytes() int {
	return g.Z * (BlockHeaderBytes + g.BlockBytes)
}

// BucketCipherBytes is the stored (encrypted) size of one bucket: a fresh
// nonce plus the CTR ciphertext. Probabilistic encryption keeps this size
// fixed regardless of content.
func (g Geometry) BucketCipherBytes() int {
	return crypt.NonceSize + g.BucketPlainBytes()
}

// PathBytes is the number of bytes moved in one direction (read or write)
// of a single path access.
func (g Geometry) PathBytes() int { return g.Levels * g.BucketCipherBytes() }

// TreeBytes is the total external storage footprint of the tree.
func (g Geometry) TreeBytes() uint64 {
	return g.Buckets() * uint64(g.BucketCipherBytes())
}

// NodeIndex returns the bucket index of the node at the given level (root =
// level 0) on the path to leaf.
func (g Geometry) NodeIndex(leaf uint64, level int) uint64 {
	return (1<<level - 1) + (leaf >> (g.Levels - 1 - level))
}

// PathIndices appends to dst the bucket indices on the path from root to
// leaf, in root-to-leaf order, and returns the extended slice.
func (g Geometry) PathIndices(dst []uint64, leaf uint64) []uint64 {
	for level := 0; level < g.Levels; level++ {
		dst = append(dst, g.NodeIndex(leaf, level))
	}
	return dst
}

// OnPath reports whether the bucket at (level) on the path to leafA also
// lies on the path to leafB; equivalently, whether the two leaves share the
// same ancestor at that level. It is the block-placement predicate used by
// the greedy write-back.
func (g Geometry) OnPath(leafA, leafB uint64, level int) bool {
	shift := g.Levels - 1 - level
	return leafA>>shift == leafB>>shift
}

// GeometryForBlocks returns a geometry whose tree holds at least n blocks,
// following the aggressive sizing of [26] (≈1.5× provisioning with Z = 3):
// the leaf count is the smallest power of two with 2·z·leaves ≥ n. This
// reproduces the path footprint of the paper's 4 GB / 1 GB-working-set
// configuration (12.1 KB per direction with recursion, §9.1.2).
func GeometryForBlocks(n uint64, z, blockBytes int) Geometry {
	if n == 0 {
		n = 1
	}
	target := (n + 2*uint64(z) - 1) / (2 * uint64(z))
	if target == 0 {
		target = 1
	}
	levels := 1 // a tree with 2^k leaves has k+1 levels
	for leaves := uint64(1); leaves < target; leaves <<= 1 {
		levels++
	}
	g := Geometry{Levels: levels, Z: z, BlockBytes: blockBytes}
	for g.Capacity() < n {
		g.Levels++
	}
	return g
}
