package pathoram

import "slices"

// unknownLeaf marks a position-map slot whose block has never been accessed.
const unknownLeaf = ^uint64(0)

// positionMap maps block addresses to leaf labels. Dense addresses (the
// overwhelmingly common case: recursive stacks and the simulator address
// blocks 0..n-1) live in a flat slice indexed by address — no hashing, no
// per-access map overhead, cache-friendly. Addresses beyond the tree's
// capacity fall back to a map so the sparse corner of the Access API keeps
// working. In hardware terms the flat slice is the on-chip SRAM position
// map of §3.1.
type positionMap struct {
	flat  []uint64 // flat[addr] = leaf, or unknownLeaf
	limit uint64   // flat may grow to cover addresses < limit
	over  map[uint64]uint64
	// journal, when non-nil, records every address Set has dirtied since
	// the last capture — the change set a delta checkpoint drains instead
	// of copying the whole map. Nil (the default) keeps the hot path free
	// of any tracking cost for callers that never capture deltas.
	journal map[uint64]struct{}
}

// newPositionMap returns a position map whose flat region may grow to limit
// entries (the tree capacity); storage is allocated lazily as addresses are
// touched.
func newPositionMap(limit uint64) *positionMap {
	return &positionMap{limit: limit}
}

// Get returns the leaf for addr and whether one has been assigned.
func (p *positionMap) Get(addr uint64) (uint64, bool) {
	if addr < p.limit {
		if addr >= uint64(len(p.flat)) {
			return 0, false
		}
		l := p.flat[addr]
		return l, l != unknownLeaf
	}
	l, ok := p.over[addr]
	return l, ok
}

// Track arms dirty tracking: from now on Set records each assigned address
// in the journal so a delta capture can serialize only what changed.
func (p *positionMap) Track() {
	if p.journal == nil {
		p.journal = make(map[uint64]struct{})
	}
}

// Tracking reports whether dirty tracking is armed.
func (p *positionMap) Tracking() bool { return p.journal != nil }

// drainJournal returns the dirtied addresses in ascending order (for
// deterministic delta encoding) and resets the journal.
func (p *positionMap) drainJournal() []uint64 {
	if len(p.journal) == 0 {
		return nil
	}
	addrs := make([]uint64, 0, len(p.journal))
	for a := range p.journal {
		addrs = append(addrs, a)
	}
	clear(p.journal)
	slices.Sort(addrs)
	return addrs
}

// resetJournal empties the journal without reading it — a full capture
// supersedes any accumulated delta baseline.
func (p *positionMap) resetJournal() {
	if p.journal != nil {
		clear(p.journal)
	}
}

// Set assigns a leaf to addr, growing the flat region (amortized O(1)) when
// a new dense address appears.
func (p *positionMap) Set(addr, leaf uint64) {
	if p.journal != nil {
		p.journal[addr] = struct{}{}
	}
	if addr < p.limit {
		if addr >= uint64(len(p.flat)) {
			n := uint64(len(p.flat)) * 2
			if n < addr+1 {
				n = addr + 1
			}
			if n > p.limit {
				n = p.limit
			}
			grown := make([]uint64, n)
			copy(grown, p.flat)
			for i := len(p.flat); i < len(grown); i++ {
				grown[i] = unknownLeaf
			}
			p.flat = grown
		}
		p.flat[addr] = leaf
		return
	}
	if p.over == nil {
		p.over = make(map[uint64]uint64)
	}
	p.over[addr] = leaf
}

// ForEach calls fn for every assigned (addr, leaf) pair: dense addresses in
// ascending order, then overflow addresses in unspecified order.
func (p *positionMap) ForEach(fn func(addr, leaf uint64)) {
	for addr, leaf := range p.flat {
		if leaf != unknownLeaf {
			fn(uint64(addr), leaf)
		}
	}
	for addr, leaf := range p.over {
		fn(addr, leaf)
	}
}
