package pathoram

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"tcoram/internal/crypt"
)

// gobSize measures the serialized size of a captured state or delta the same
// way the server's checkpoint path does (gob before sealing); the seal adds
// only constant overhead, so relative size claims transfer.
func gobSize(t *testing.T, v any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestCaptureDeltaRequiresTracking pins the fail-closed arming rule: without
// TrackDirty there is no journal to drain, and CaptureDelta must refuse
// rather than emit an empty delta that would corrupt a checkpoint chain.
func TestCaptureDeltaRequiresTracking(t *testing.T) {
	g := GeometryForBlocks(64, 3, 64)
	o, err := NewORAM(g, crypt.Key{1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	if _, err := o.CaptureDelta(); err == nil {
		t.Fatal("CaptureDelta before TrackDirty must fail")
	}
	o.TrackDirty()
	if _, err := o.Access(OpWrite, 1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	d, err := o.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Levels) != 1 || len(d.Levels[0].PosDense) == 0 {
		t.Fatalf("delta after one write carries no position-map entries: %+v", d)
	}
	// The capture drained the journal: a second capture with no traffic in
	// between describes an empty change set.
	d2, err := o.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Levels[0].PosDense)+len(d2.Levels[0].PosOver) != 0 {
		t.Fatalf("second capture without traffic still carries %d+%d posmap entries",
			len(d2.Levels[0].PosDense), len(d2.Levels[0].PosOver))
	}
}

// TestDeltaRoundTripFlat is the capture/apply equivalence loop for a flat
// ORAM on file storage: base capture, two delta captures, fold the deltas
// into the base (replaying the last one twice — application must be
// idempotent), recover, and require every write and counter back intact.
func TestDeltaRoundTripFlat(t *testing.T) {
	g := GeometryForBlocks(256, 3, 64)
	key := crypt.Key{11}
	dir := t.TempDir()
	path := filepath.Join(dir, "level-0.oram")
	fs, err := CreateFileStorage(g, FileStorageConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewORAMOn(g, key, rand.New(rand.NewSource(6)), fs)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	o.TrackDirty()
	buf := make([]byte, 64)
	write := func(addr uint64, v byte) {
		t.Helper()
		buf[0] = v
		if _, err := o.Access(OpWrite, addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	for a := uint64(0); a < 64; a++ {
		write(a, byte(a))
	}
	base, err := o.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		write(a, byte(a+100))
	}
	d1, err := o.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(32); a < 48; a++ {
		write(a, byte(a+200))
	}
	d2, err := o.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	for _, d := range []*ShardDelta{d1, d2, d2} {
		if err := ApplyDelta(base, d); err != nil {
			t.Fatal(err)
		}
	}
	reopen := func(level int, gg Geometry) (BucketStore, error) {
		return OpenFileStorage(gg, FileStorageConfig{Path: path})
	}
	rec, err := RecoverORAM(g, key, nil, reopen, base)
	if err != nil {
		t.Fatalf("recovering through base+deltas: %v", err)
	}
	if rec.Accesses != o.Accesses {
		t.Errorf("recovered access counter %d, want %d", rec.Accesses, o.Accesses)
	}
	for a := uint64(0); a < 64; a++ {
		want := byte(a)
		switch {
		case a < 32:
			want = byte(a + 100)
		case a < 48:
			want = byte(a + 200)
		}
		got, err := rec.Access(OpRead, a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("block %d reads %d through base+deltas, want %d", a, got[0], want)
		}
	}
}

// TestDeltaRoundTripBatched runs the same loop through the deepest backend:
// a batched recursive stack, whose deltas additionally carry on-chip map
// entries, per-level journals, tombstones and eviction-cadence counters.
func TestDeltaRoundTripBatched(t *testing.T) {
	cfg := BatchedConfig{RecursiveConfig: RecursiveConfig{
		DataBlocks: 128, DataBlockBytes: 64, PosMapBlockBytes: 32, Z: 3, Recursion: 1,
	}}
	key := crypt.Key{13}
	dir := t.TempDir()
	b, err := NewBatchedOn(cfg, key, rand.New(rand.NewSource(3)), testFileFactory(t, dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	b.EnableIntegrity()
	b.TrackDirty()
	do := func(addr uint64, v byte) {
		t.Helper()
		err := b.AccessBatch([]BatchOp{{Addr: addr, Fn: func(d []byte) { d[0] = v }}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		do(uint64(i%128), byte(i))
	}
	base, err := b.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		do(uint64(i%128), byte(i))
	}
	d1, err := b.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	for i := 150; i < 180; i++ {
		do(uint64(i%128), byte(i))
	}
	d2, err := b.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range b.rec.orams {
		fs := o.Storage().(*FileStorage)
		if err := fs.Flush(); err != nil {
			t.Fatalf("flushing level %d: %v", i, err)
		}
		fs.Close()
	}

	if err := ApplyDelta(base, d1); err != nil {
		t.Fatal(err)
	}
	if err := ApplyDelta(base, d2); err != nil {
		t.Fatal(err)
	}
	reopen := func(level int, g Geometry) (BucketStore, error) {
		return OpenFileStorage(g, FileStorageConfig{Path: filepath.Join(dir, levelFileName(level))})
	}
	rec, err := RecoverBatched(cfg, key, rand.New(rand.NewSource(99)), reopen, base)
	if err != nil {
		t.Fatalf("recovering through base+deltas: %v", err)
	}
	if rec.Slots() != b.Slots() || rec.EvictPassCount() != b.EvictPassCount() {
		t.Errorf("recovered counters (slots %d, evicts %d) != live (%d, %d)",
			rec.Slots(), rec.EvictPassCount(), b.Slots(), b.EvictPassCount())
	}
	if err := rec.CheckInvariant(); err != nil {
		t.Fatalf("recovered stack violates the path invariant: %v", err)
	}
	// Address a was last written by op i = a+128 when a < 52, else i = a.
	for addr := uint64(0); addr < 128; addr++ {
		var got byte
		err := rec.AccessBatch([]BatchOp{{Addr: addr, Fn: func(d []byte) { got = d[0] }}})
		if err != nil {
			t.Fatalf("reading %d after recovery: %v", addr, err)
		}
		expect := byte(addr)
		if addr < 52 {
			expect = byte(addr + 128)
		}
		if got != expect {
			t.Fatalf("block %d reads %d through base+deltas, want %d", addr, got, expect)
		}
	}
	if err := rec.CheckInvariant(); err != nil {
		t.Fatalf("post-recovery traffic violates the path invariant: %v", err)
	}
}

// TestDeltaSizeODirty is the scaling pin behind the whole delta protocol: at
// a 2^20-block geometry, the serialized delta for a single access must be
// under 1% of a full checkpoint — O(dirty) against O(state). It also checks
// that folding that delta into the base reproduces a fresh full capture
// exactly, so the small encoding loses nothing.
func TestDeltaSizeODirty(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-block geometry is slow; skipped with -short")
	}
	g := GeometryForBlocks(1<<20, 3, 16)
	o, err := NewORAM(g, crypt.Key{7}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	o.TrackDirty()
	buf := make([]byte, 16)
	// Touch the last address so the dense position map spans all 2^20
	// entries, as it would after a full warm-up.
	if _, err := o.Access(OpWrite, (1<<20)-1, buf); err != nil {
		t.Fatal(err)
	}
	full, err := o.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := gobSize(t, full)
	if fullBytes < 1<<20 {
		t.Fatalf("full checkpoint is only %d bytes; geometry too small to pin the O(dirty) claim", fullBytes)
	}
	if _, err := o.Access(OpWrite, 12345, buf); err != nil {
		t.Fatal(err)
	}
	d, err := o.CaptureDelta()
	if err != nil {
		t.Fatal(err)
	}
	deltaBytes := gobSize(t, d)
	if deltaBytes*100 >= fullBytes {
		t.Fatalf("one-access delta is %d bytes vs %d for a full checkpoint (%.2f%%), want < 1%%",
			deltaBytes, fullBytes, 100*float64(deltaBytes)/float64(fullBytes))
	}
	if err := ApplyDelta(full, d); err != nil {
		t.Fatal(err)
	}
	fresh, err := o.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, fresh) {
		t.Fatal("base+delta diverges from a fresh full capture")
	}
}
