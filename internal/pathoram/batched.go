package pathoram

import (
	"fmt"
	"math/bits"
	"math/rand"

	"tcoram/internal/crypt"
)

// This file implements the multi-path batched backend: up to BatchK distinct
// blocks are fetched per slot (dummies pad the count to exactly BatchK, so
// the storage trace is independent of queue depth), and the write half of
// the path cost is deferred to a deterministic eviction pass that runs every
// EvictEvery slots along reverse-lexicographic paths — the background-
// eviction idea of "Towards Practical Oblivious RAM" (Stefanov et al.)
// crossed with the deterministic eviction order of Ring ORAM. BatchK and
// EvictEvery are public parameters of the schedule, like the rate set R:
// they shape every slot identically and leak nothing about the request
// stream.

// BatchOp is one member of a multi-path batch: apply Fn to the block's
// payload while it sits in the stash (the same RMW contract as Update).
type BatchOp struct {
	Addr uint64
	Fn   func(data []byte)
}

// BatchedConfig configures a Batched stack. The embedded RecursiveConfig
// describes the data ORAM and optional position-map recursion; Recursion=0
// keeps the whole position map on-chip (a flat-equivalent data ORAM).
type BatchedConfig struct {
	RecursiveConfig

	// BatchK is the number of data paths fetched per slot, real or dummy
	// (default 4). Public parameter.
	BatchK int
	// EvictEvery is the slot period of the background eviction pass
	// (default 4). Public parameter.
	EvictEvery int
	// EvictPaths is the number of reverse-lexicographic paths read and
	// rewritten per eviction pass. Default ceil(BatchK*EvictEvery/2): at
	// most BatchK·EvictEvery blocks enter the stash between passes, and
	// with Z=3 each evicted path absorbs well over two of them on average
	// (the same access-to-eviction ratio Ring ORAM proves stable at
	// A=3, Z=4).
	EvictPaths int
	// StashHighWater forces an early eviction pass when the data-level
	// stash reaches this occupancy (default 8·BatchK·EvictEvery+64). The
	// forced pass is an observable deviation from the fixed cadence, so it
	// is a safety valve against pathological stash growth, not part of the
	// steady-state schedule; ForcedEvictions counts how often it fired.
	StashHighWater int
}

// DefaultBatchedConfig mirrors the evaluated configuration: k=4 paths per
// slot, eviction every K=4 slots, no recursion (on-chip position map).
func DefaultBatchedConfig(dataBlocks uint64) BatchedConfig {
	cfg := BatchedConfig{RecursiveConfig: DefaultRecursiveConfig(dataBlocks)}
	cfg.Recursion = 0
	return cfg.withDefaults()
}

// withDefaults fills unset tuning knobs.
func (c BatchedConfig) withDefaults() BatchedConfig {
	if c.BatchK == 0 {
		c.BatchK = 4
	}
	if c.EvictEvery == 0 {
		c.EvictEvery = 4
	}
	if c.EvictPaths == 0 {
		c.EvictPaths = (c.BatchK*c.EvictEvery + 1) / 2
		if c.EvictPaths < 1 {
			c.EvictPaths = 1
		}
	}
	if c.StashHighWater == 0 {
		c.StashHighWater = 8*c.BatchK*c.EvictEvery + 64
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c BatchedConfig) Validate() error {
	if err := c.RecursiveConfig.Validate(); err != nil {
		return err
	}
	c = c.withDefaults()
	switch {
	case c.BatchK < 1 || c.BatchK > 64:
		return fmt.Errorf("pathoram: BatchK must be in [1,64], got %d", c.BatchK)
	case c.EvictEvery < 1 || c.EvictEvery > 4096:
		return fmt.Errorf("pathoram: EvictEvery must be in [1,4096], got %d", c.EvictEvery)
	case c.EvictPaths < 1:
		return fmt.Errorf("pathoram: EvictPaths must be positive, got %d", c.EvictPaths)
	case c.StashHighWater < c.BatchK:
		return fmt.Errorf("pathoram: StashHighWater %d cannot hold one slot's influx (BatchK %d)", c.StashHighWater, c.BatchK)
	}
	return nil
}

// SlotSig is the adversary-visible storage-access signature of one slot:
// bucket transfer counts and bytes moved across the whole stack, plus
// whether the slot carried an eviction pass. Because every slot fetches
// exactly BatchK data paths (dummy-padded) and evictions follow a fixed
// cadence, the signature sequence is a function of the slot index alone —
// the data-independence tests compare these byte-for-byte across queue
// depths.
type SlotSig struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Bytes  uint64 `json:"bytes"`
	Evict  bool   `json:"evict"`
}

// Batched is a multi-path batched fetch + deferred eviction ORAM over a
// Recursive stack. Fetches read the target's data path without rewriting it
// (the fetched block parks in the stash, its tree copy tombstoned); a
// deterministic eviction pass every EvictEvery slots reads and greedily
// rewrites EvictPaths reverse-lexicographic paths, amortizing the write
// half of the path cost across slots. Position-map levels are untouched by
// the deferral: they perform standard read+write accesses so recursion and
// integrity compose unchanged.
type Batched struct {
	cfg  BatchedConfig
	rec  *Recursive
	data *ORAM

	evictCounter uint64 // reverse-lexicographic eviction-path counter
	sinceEvict   int    // slots since the last eviction pass
	slots        uint64 // total slots served (AccessBatch calls)
	evictPasses  uint64
	forced       uint64 // eviction passes triggered by StashHighWater

	one [1]BatchOp // scratch for Update

	// TraceSlots records a SlotSig per AccessBatch call into SlotTrace.
	TraceSlots bool
	SlotTrace  []SlotSig
	levelPrev  []levelIO // per-level counter snapshot for SlotSig deltas
}

type levelIO struct{ reads, writes uint64 }

// NewBatched builds and initializes the stack on in-RAM storage.
func NewBatched(cfg BatchedConfig, key crypt.Key, rng *rand.Rand) (*Batched, error) {
	return NewBatchedOn(cfg, key, rng, nil)
}

// NewBatchedOn is NewBatched with every level's untrusted store built by
// factory (nil means in-RAM ByteStorage everywhere).
func NewBatchedOn(cfg BatchedConfig, key crypt.Key, rng *rand.Rand, factory StorageFactory) (*Batched, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rec, err := NewRecursiveOn(cfg.RecursiveConfig, key, rng, factory)
	if err != nil {
		return nil, err
	}
	data := rec.orams[0]
	data.stale = make(map[uint64]map[uint64]struct{})
	return &Batched{cfg: cfg, rec: rec, data: data}, nil
}

// Config returns the stack configuration (with defaults applied).
func (b *Batched) Config() BatchedConfig { return b.cfg }

// BatchK returns the number of paths fetched per slot — the server sizes
// its per-slot queue drain from this.
func (b *Batched) BatchK() int { return b.cfg.BatchK }

// Blocks returns the addressable data-block count.
func (b *Batched) Blocks() uint64 { return b.cfg.DataBlocks }

// BlockBytes returns the data-block payload size.
func (b *Batched) BlockBytes() int { return b.cfg.DataBlockBytes }

// EnableIntegrity attaches Merkle verification to every level of the stack.
// Must precede all accesses.
func (b *Batched) EnableIntegrity() { b.rec.EnableIntegrity() }

// StashOccupancy aggregates stash sizes across the stack (see
// Recursive.StashOccupancy).
func (b *Batched) StashOccupancy() (cur, peak int) { return b.rec.StashOccupancy() }

// LevelStashPeaks appends each level's peak stash occupancy to dst; index 0
// is the data ORAM, whose stash carries the deferred-eviction backlog.
func (b *Batched) LevelStashPeaks(dst []int) []int { return b.rec.LevelStashPeaks(dst) }

// StorageStats aggregates the untrusted-store counters across the stack.
func (b *Batched) StorageStats() StorageStats { return b.rec.StorageStats() }

// ForcedEvictions returns how many eviction passes were forced by the
// StashHighWater guard rather than the fixed cadence.
func (b *Batched) ForcedEvictions() uint64 { return b.forced }

// EvictPassCount returns the total number of eviction passes run.
func (b *Batched) EvictPassCount() uint64 { return b.evictPasses }

// Slots returns the number of AccessBatch calls served.
func (b *Batched) Slots() uint64 { return b.slots }

// StashBound is the documented worst-case data-level stash occupancy under
// the high-water policy: the guard fires once occupancy reaches
// StashHighWater after a slot's ≤BatchK-block influx, and the eviction pass
// itself transiently stages up to Z·Levels tree blocks per path before the
// same path's write-back re-evicts them.
func (b *Batched) StashBound() int {
	g := b.data.geom
	return b.cfg.StashHighWater + b.cfg.BatchK + g.Z*g.Levels
}

// Update performs a single-block access as a batch of one — the uniform
// Backend surface. The slot still fetches BatchK paths and follows the
// eviction cadence, so pacing semantics are identical to AccessBatch.
func (b *Batched) Update(addr uint64, fn func(data []byte)) error {
	b.one[0] = BatchOp{Addr: addr, Fn: fn}
	err := b.AccessBatch(b.one[:1])
	b.one[0] = BatchOp{}
	return err
}

// DummyAccess serves an all-dummy slot: BatchK dummy path fetches plus the
// eviction cadence, indistinguishable from a fully loaded slot.
func (b *Batched) DummyAccess() error { return b.AccessBatch(nil) }

// AccessBatch serves one slot: exactly BatchK data-path fetches — the first
// len(ops) real, the rest dummies — followed by an eviction pass when one
// is due (every EvictEvery slots, or early if the stash hit the high-water
// mark). Duplicate addresses within a batch are legal; later members find
// the block already in the stash and their fetch degenerates to a
// dummy-shaped path read, so coalescing at the server is an optimization,
// not a requirement.
func (b *Batched) AccessBatch(ops []BatchOp) error {
	if len(ops) > b.cfg.BatchK {
		return fmt.Errorf("pathoram: batch of %d exceeds BatchK %d", len(ops), b.cfg.BatchK)
	}
	for i := 0; i < b.cfg.BatchK; i++ {
		var err error
		if i < len(ops) {
			err = b.fetchReal(ops[i])
		} else {
			err = b.fetchDummy()
		}
		if err != nil {
			return err
		}
	}
	b.slots++
	b.sinceEvict++
	evict := b.sinceEvict >= b.cfg.EvictEvery
	if !evict && b.data.stash.Len() >= b.cfg.StashHighWater {
		b.forced++
		evict = true
	}
	if evict {
		if err := b.evictPass(); err != nil {
			return err
		}
		b.sinceEvict = 0
	}
	if b.TraceSlots {
		b.recordSlot(evict)
	}
	return nil
}

// fetchReal resolves addr through the position-map recursion (standard
// read+write accesses at every posmap level), then fetches the data path
// read-only, parking the block in the stash under its fresh leaf.
func (b *Batched) fetchReal(op BatchOp) error {
	if op.Addr >= b.cfg.DataBlocks {
		return fmt.Errorf("pathoram: data block %d out of range (%d blocks)", op.Addr, b.cfg.DataBlocks)
	}
	newLeaf := uint32(b.rec.rng.Int63n(int64(b.data.geom.Leaves())))
	curLeaf, err := b.rec.lookupAndRemap(0, op.Addr, newLeaf)
	if err != nil {
		return err
	}
	leaf := uint64(curLeaf)
	if curLeaf == unassignedLabel {
		leaf = b.data.randomLeaf()
	}
	// Mirror the external chain in the data ORAM's internal map, as
	// accessAt does — eviction planning and the invariant checker read it.
	b.data.posmap.Set(op.Addr, uint64(newLeaf))
	if err := b.data.fetchPath(leaf, op.Addr, uint64(newLeaf)); err != nil {
		return err
	}
	if op.Fn != nil {
		op.Fn(b.data.stash.Get(op.Addr).Data)
	}
	b.data.Accesses++
	b.rec.Accesses++
	return nil
}

// fetchDummy pads the slot: a standard dummy access at every posmap level
// (same order as a real fetch's recursion unwind) and a read-only fetch of
// a random data path that extracts nothing.
func (b *Batched) fetchDummy() error {
	for i := len(b.rec.orams) - 1; i >= 1; i-- {
		if err := b.rec.orams[i].DummyAccess(); err != nil {
			return err
		}
	}
	if err := b.data.fetchPath(b.data.randomLeaf(), DummyAddr, 0); err != nil {
		return err
	}
	b.data.DummyAccesses++
	b.rec.DummyAccesses++
	return nil
}

// evictPass reads and greedily rewrites EvictPaths paths in reverse-
// lexicographic order — a deterministic sweep that touches every bucket at
// a fixed frequency regardless of the access pattern.
func (b *Batched) evictPass() error {
	for i := 0; i < b.cfg.EvictPaths; i++ {
		leaf := b.nextEvictLeaf()
		if err := b.data.evictReadPath(leaf); err != nil {
			return err
		}
		if err := b.data.writePath(leaf); err != nil {
			return err
		}
	}
	b.evictPasses++
	return nil
}

// nextEvictLeaf returns the next leaf of the reverse-lexicographic eviction
// order: the bit-reversal of a counter, so successive paths diverge at the
// root and every subtree is visited at a frequency proportional to its
// size (Ring ORAM's deterministic order; see also SNIPPETS Snippet 1).
func (b *Batched) nextEvictLeaf() uint64 {
	w := uint(b.data.geom.Levels - 1)
	ctr := b.evictCounter
	b.evictCounter++
	if w == 0 {
		return 0
	}
	return bits.Reverse64(ctr%b.data.geom.Leaves()) >> (64 - w)
}

// recordSlot appends the slot's SlotSig from per-level counter deltas.
func (b *Batched) recordSlot(evict bool) {
	if b.levelPrev == nil {
		b.levelPrev = make([]levelIO, len(b.rec.orams))
	}
	var sig SlotSig
	sig.Evict = evict
	for i, o := range b.rec.orams {
		dr := o.BucketReads - b.levelPrev[i].reads
		dw := o.BucketWrites - b.levelPrev[i].writes
		sig.Reads += dr
		sig.Writes += dw
		sig.Bytes += (dr + dw) * uint64(o.geom.BucketCipherBytes())
		b.levelPrev[i] = levelIO{o.BucketReads, o.BucketWrites}
	}
	b.SlotTrace = append(b.SlotTrace, sig)
}

// fetchPath is the read half of a deferred-eviction access: decrypt (and
// integrity-verify) every bucket on the path to leaf, extract only the
// target block into the stash, and leave the path unwritten. The extracted
// tree copy is tombstoned in o.stale so later path reads and eviction
// sweeps ignore it until some write-back overwrites its bucket — without
// the tombstone, a stale copy left in the tree could resurrect old data
// after the fresh stash copy is evicted elsewhere. target == DummyAddr
// extracts nothing (a dummy fetch, identical on the bus).
func (o *ORAM) fetchPath(leaf, target, newLeaf uint64) error {
	o.pathBuf = o.geom.PathIndices(o.pathBuf[:0], leaf)
	slotBytes := BlockHeaderBytes + o.geom.BlockBytes
	want := target != DummyAddr && o.stash.Get(target) == nil
	for _, idx := range o.pathBuf {
		ct := o.store.ReadBucket(idx)
		if o.integrity != nil {
			if err := o.integrity.verify(idx, ct); err != nil {
				return err
			}
		}
		if err := o.cipher.DecryptTo(o.ptBuf, ct); err != nil {
			return err
		}
		if want {
			for i := 0; i < o.geom.Z; i++ {
				off := i * slotBytes
				addr, _ := unpackHeader(o.ptBuf[off:])
				if addr != target || o.isStale(idx, addr) {
					continue
				}
				o.stash.Put(Block{Addr: target, Leaf: newLeaf, Data: o.ptBuf[off+BlockHeaderBytes : off+slotBytes]})
				o.markStale(idx, target)
				want = false
				break
			}
		}
		o.BucketReads++
		if o.TraceBus {
			o.BusTrace = append(o.BusTrace, BusEvent{Bucket: idx, Write: false})
		}
	}
	if target == DummyAddr {
		return nil
	}
	blk := o.stash.Get(target)
	if blk == nil {
		o.stash.Put(Block{Addr: target, Leaf: newLeaf, Data: o.zeroBuf})
		blk = o.stash.Get(target)
	}
	blk.Leaf = newLeaf
	return nil
}

// evictReadPath stages a path for greedy write-back: every live (non-dummy,
// non-tombstoned, not already stash-resident) tree block on the path enters
// the stash so the following writePath can re-place the whole path's worth
// of blocks plus any eligible stash backlog.
func (o *ORAM) evictReadPath(leaf uint64) error {
	o.pathBuf = o.geom.PathIndices(o.pathBuf[:0], leaf)
	slotBytes := BlockHeaderBytes + o.geom.BlockBytes
	for _, idx := range o.pathBuf {
		ct := o.store.ReadBucket(idx)
		if o.integrity != nil {
			if err := o.integrity.verify(idx, ct); err != nil {
				return err
			}
		}
		if err := o.cipher.DecryptTo(o.ptBuf, ct); err != nil {
			return err
		}
		for i := 0; i < o.geom.Z; i++ {
			off := i * slotBytes
			addr, blkLeaf := unpackHeader(o.ptBuf[off:])
			if addr == DummyAddr || o.isStale(idx, addr) || o.stash.Get(addr) != nil {
				continue
			}
			o.stash.Put(Block{Addr: addr, Leaf: blkLeaf, Data: o.ptBuf[off+BlockHeaderBytes : off+slotBytes]})
		}
		o.BucketReads++
		if o.TraceBus {
			o.BusTrace = append(o.BusTrace, BusEvent{Bucket: idx, Write: false})
		}
	}
	return nil
}

// markStale tombstones the tree copy of addr in bucket.
func (o *ORAM) markStale(bucket, addr uint64) {
	if o.stale == nil {
		o.stale = make(map[uint64]map[uint64]struct{})
	}
	set := o.stale[bucket]
	if set == nil {
		set = make(map[uint64]struct{})
		o.stale[bucket] = set
	}
	set[addr] = struct{}{}
}

// isStale reports whether the copy of addr in bucket is tombstoned.
func (o *ORAM) isStale(bucket, addr uint64) bool {
	set, ok := o.stale[bucket]
	if !ok {
		return false
	}
	_, stale := set[addr]
	return stale
}

// CheckInvariant verifies the stack's correctness invariants after deferred
// eviction: every level's ORAM passes its path invariant (with tombstoned
// copies excluded), and no data block is live both in the stash and in the
// tree. O(tree); intended for tests.
func (b *Batched) CheckInvariant() error {
	for i, o := range b.rec.orams {
		if err := o.CheckInvariant(); err != nil {
			return fmt.Errorf("level %d: %w", i, err)
		}
	}
	return nil
}
