package pathoram

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"slices"
)

// This file implements incremental trusted-state capture: instead of
// serializing the whole position map on every checkpoint (O(state), the
// CaptureState path in state.go), a dirty-tracked backend drains its change
// journals into a ShardDelta describing only what moved since the previous
// capture — O(dirty) for the position maps, which dominate the full
// snapshot at scale. Stash contents, tombstones, counters and Merkle roots
// are carried whole in every delta: they are O(log N) or O(1) per level, so
// re-sending them costs nothing against the posmap savings and keeps delta
// application a plain overwrite instead of an op log.
//
// The protocol is capture/apply: ApplyDelta folds a ShardDelta into a full
// ShardState, so a recovery that reads base + delta chain reconstructs the
// exact ShardState a full checkpoint would have written at the same point.

// PosEntry is one dirtied position-map assignment inside a delta.
type PosEntry struct {
	Addr uint64
	Leaf uint64
}

// OnChipEntry is one rewritten entry of the recursive stack's on-chip map.
type OnChipEntry struct {
	Index uint64
	Label uint32
}

// LevelDelta is the incremental trusted state of one ORAM tree: changed
// position-map entries plus the full (small) stash, tombstone and counter
// state, bound to the untrusted store by the Merkle root at capture time.
type LevelDelta struct {
	Root [sha256.Size]byte
	// PosDense and PosOver hold only the entries dirtied since the last
	// capture, split the same way the full snapshot splits them.
	PosDense []PosEntry
	PosOver  []PosEntry
	// Stash, StashPeak, Stale and the counters replace their ShardState
	// counterparts wholesale (they are small; see file comment).
	Stash         []StashBlockState
	StashPeak     int
	Stale         map[uint64][]uint64
	Accesses      uint64
	DummyAccesses uint64
	BucketReads   uint64
	BucketWrites  uint64
}

// ShardDelta is the incremental counterpart of ShardState: what changed in
// one shard backend since the previous capture (full or delta).
type ShardDelta struct {
	Levels []LevelDelta
	// OnChip holds the on-chip map entries rewritten since the last
	// capture (recursive stacks only).
	OnChip        []OnChipEntry
	StackAccesses uint64
	StackDummies  uint64
	// Batch is non-nil for batched stacks (all counters, O(1)).
	Batch *BatchedState
}

// errNotTracking is returned by CaptureDelta when TrackDirty was never
// called: without an armed journal there is no change set to drain, and
// silently returning an empty delta would corrupt the checkpoint chain.
var errNotTracking = errors.New("pathoram: CaptureDelta without TrackDirty (dirty tracking not armed)")

// TrackDirty arms dirty tracking on a flat ORAM: from now on position-map
// writes are journaled so CaptureDelta can serialize only the change set.
// Idempotent; a subsequent CaptureState resets (not disarms) the journal.
func (o *ORAM) TrackDirty() { o.posmap.Track() }

// TrackDirty arms dirty tracking on every level of a recursive stack plus
// the on-chip map.
func (r *Recursive) TrackDirty() {
	for _, o := range r.orams {
		o.TrackDirty()
	}
	if r.onChipDirty == nil {
		r.onChipDirty = make(map[uint64]struct{})
	}
}

// TrackDirty arms dirty tracking on a batched stack.
func (b *Batched) TrackDirty() { b.rec.TrackDirty() }

// captureLevelDelta drains one ORAM's journal into a LevelDelta. Like
// captureLevel it requires integrity (the root is the binding to the
// untrusted store) and additionally requires an armed journal.
func (o *ORAM) captureLevelDelta() (LevelDelta, error) {
	if o.integrity == nil {
		return LevelDelta{}, errors.New("pathoram: cannot capture delta without integrity enabled (no merkle root to checkpoint)")
	}
	if !o.posmap.Tracking() {
		return LevelDelta{}, errNotTracking
	}
	ld := LevelDelta{
		Root:          o.integrity.Root(),
		StashPeak:     o.stash.peak,
		Accesses:      o.Accesses,
		DummyAccesses: o.DummyAccesses,
		BucketReads:   o.BucketReads,
		BucketWrites:  o.BucketWrites,
	}
	for _, addr := range o.posmap.drainJournal() {
		leaf, ok := o.posmap.Get(addr)
		if !ok {
			// Journaled but unassigned cannot happen (Set always assigns);
			// skip defensively rather than persist a bogus entry.
			continue
		}
		e := PosEntry{Addr: addr, Leaf: leaf}
		if addr < o.posmap.limit {
			ld.PosDense = append(ld.PosDense, e)
		} else {
			ld.PosOver = append(ld.PosOver, e)
		}
	}
	ld.Stash = o.captureStash()
	ld.Stale = o.captureStale()
	return ld, nil
}

// CaptureDelta drains a flat ORAM's change journal into a ShardDelta.
func (o *ORAM) CaptureDelta() (*ShardDelta, error) {
	ld, err := o.captureLevelDelta()
	if err != nil {
		return nil, err
	}
	return &ShardDelta{Levels: []LevelDelta{ld}}, nil
}

// CaptureDelta drains a recursive stack's journals: every level plus the
// dirtied on-chip entries.
func (r *Recursive) CaptureDelta() (*ShardDelta, error) {
	if r.onChipDirty == nil {
		return nil, errNotTracking
	}
	d := &ShardDelta{
		StackAccesses: r.Accesses,
		StackDummies:  r.DummyAccesses,
	}
	if len(r.onChipDirty) > 0 {
		idxs := make([]uint64, 0, len(r.onChipDirty))
		for i := range r.onChipDirty {
			idxs = append(idxs, i)
		}
		clear(r.onChipDirty)
		slices.Sort(idxs)
		d.OnChip = make([]OnChipEntry, len(idxs))
		for i, idx := range idxs {
			d.OnChip[i] = OnChipEntry{Index: idx, Label: r.onChip[idx]}
		}
	}
	for i, o := range r.orams {
		ld, err := o.captureLevelDelta()
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		d.Levels = append(d.Levels, ld)
	}
	return d, nil
}

// CaptureDelta drains a batched stack's journals plus the eviction-cadence
// counters.
func (b *Batched) CaptureDelta() (*ShardDelta, error) {
	d, err := b.rec.CaptureDelta()
	if err != nil {
		return nil, err
	}
	d.Batch = &BatchedState{
		EvictCounter: b.evictCounter,
		SinceEvict:   b.sinceEvict,
		Slots:        b.slots,
		EvictPasses:  b.evictPasses,
		Forced:       b.forced,
	}
	return d, nil
}

// ApplyDelta folds a ShardDelta into a full ShardState in place, producing
// the state a full capture would have written at the delta's capture point.
// It is how recovery replays a base + delta chain before rebuilding the
// backend; idempotent, so replaying the same delta twice converges.
func ApplyDelta(st *ShardState, d *ShardDelta) error {
	if len(d.Levels) != len(st.Levels) {
		return fmt.Errorf("pathoram: delta describes %d levels, base state has %d", len(d.Levels), len(st.Levels))
	}
	for i := range d.Levels {
		ls := &st.Levels[i]
		ld := &d.Levels[i]
		ls.Root = ld.Root
		for _, e := range ld.PosDense {
			for uint64(len(ls.PosDense)) <= e.Addr {
				ls.PosDense = append(ls.PosDense, unknownLeaf)
			}
			ls.PosDense[e.Addr] = e.Leaf
		}
		if len(ld.PosOver) > 0 && ls.PosOver == nil {
			ls.PosOver = make(map[uint64]uint64, len(ld.PosOver))
		}
		for _, e := range ld.PosOver {
			ls.PosOver[e.Addr] = e.Leaf
		}
		ls.Stash = ld.Stash
		if ld.StashPeak > ls.StashPeak {
			ls.StashPeak = ld.StashPeak
		}
		ls.Stale = ld.Stale
		ls.Accesses = ld.Accesses
		ls.DummyAccesses = ld.DummyAccesses
		ls.BucketReads = ld.BucketReads
		ls.BucketWrites = ld.BucketWrites
	}
	for _, e := range d.OnChip {
		if e.Index >= uint64(len(st.OnChip)) {
			return fmt.Errorf("pathoram: delta names on-chip entry %d of %d", e.Index, len(st.OnChip))
		}
		st.OnChip[e.Index] = e.Label
	}
	st.StackAccesses = d.StackAccesses
	st.StackDummies = d.StackDummies
	if d.Batch != nil {
		if st.Batch == nil {
			return errors.New("pathoram: delta carries batched-mode state, base state does not")
		}
		st.Batch = d.Batch
	}
	return nil
}
