package pathoram

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"tcoram/internal/crypt"
)

// This file implements trusted-state capture and recovery: everything the
// controller keeps on-chip (position maps, stash contents, tombstones,
// Merkle roots, counters) serialized into a ShardState, and constructors
// that rebuild a running ORAM stack from a ShardState plus the untrusted
// bucket stores. The server seals a gob encoding of this state
// (encrypt+MAC via internal/crypt) into its checkpoint file; the split
// matters because the bucket files are untrusted — on recovery the store is
// re-hashed and compared against the sealed Merkle root, and a mismatch
// refuses service (ErrRootMismatch) rather than serving tampered data.

// ErrRootMismatch is returned by the Recover constructors when the
// untrusted store's recomputed Merkle root differs from the checkpointed
// root — the fail-closed answer to offline tampering with the bucket file.
var ErrRootMismatch = errors.New("pathoram: untrusted store does not match checkpointed merkle root")

// StashBlockState is one stash-resident block in captured form.
type StashBlockState struct {
	Addr uint64
	Leaf uint64
	Data []byte
}

// LevelState is the captured trusted state of one ORAM tree.
type LevelState struct {
	// Root is the Merkle root of the untrusted bucket ciphertexts at
	// capture time — the only binding between the sealed checkpoint and
	// the bucket file.
	Root [sha256.Size]byte
	// PosDense and PosOver mirror the position map's flat and overflow
	// regions (unknownLeaf marks never-assigned dense slots).
	PosDense []uint64
	PosOver  map[uint64]uint64
	// Stash holds the stash blocks in slot order, so recovery reproduces
	// the exact deterministic eviction behavior of the pre-crash instance.
	Stash     []StashBlockState
	StashPeak int
	// Stale is the batched-mode tombstone map: bucket -> stale addresses.
	Stale map[uint64][]uint64
	// Counters.
	Accesses      uint64
	DummyAccesses uint64
	BucketReads   uint64
	BucketWrites  uint64
}

// BatchedState is the extra trusted state of a Batched stack.
type BatchedState struct {
	EvictCounter uint64
	SinceEvict   int
	Slots        uint64
	EvictPasses  uint64
	Forced       uint64
}

// ShardState is the complete captured trusted state of one shard backend:
// one LevelState per tree (a single entry for a flat ORAM; data ORAM first
// then position-map ORAMs for a recursive stack), the on-chip position map
// and stack counters for recursive stacks, and batched-mode counters.
type ShardState struct {
	Levels []LevelState
	// OnChip is the recursive stack's on-chip position map (nil for flat).
	OnChip        []uint32
	StackAccesses uint64
	StackDummies  uint64
	// Batch is non-nil for batched stacks.
	Batch *BatchedState
}

// captureLevel snapshots one ORAM's trusted state. Integrity must be
// enabled: without the Merkle tree there is no root to bind the untrusted
// store to, and recovery could not detect tampering.
func (o *ORAM) captureLevel() (LevelState, error) {
	if o.integrity == nil {
		return LevelState{}, errors.New("pathoram: cannot capture state without integrity enabled (no merkle root to checkpoint)")
	}
	ls := LevelState{
		Root:          o.integrity.Root(),
		PosDense:      slices.Clone(o.posmap.flat),
		StashPeak:     o.stash.peak,
		Accesses:      o.Accesses,
		DummyAccesses: o.DummyAccesses,
		BucketReads:   o.BucketReads,
		BucketWrites:  o.BucketWrites,
	}
	if len(o.posmap.over) > 0 {
		ls.PosOver = make(map[uint64]uint64, len(o.posmap.over))
		for a, l := range o.posmap.over {
			ls.PosOver[a] = l
		}
	}
	ls.Stash = o.captureStash()
	ls.Stale = o.captureStale()
	// A full capture supersedes any delta baseline: the journal restarts
	// empty so the next CaptureDelta describes changes since this snapshot.
	o.posmap.resetJournal()
	return ls, nil
}

// captureStash snapshots the stash blocks in slot order (deterministic
// eviction order on recovery).
func (o *ORAM) captureStash() []StashBlockState {
	var out []StashBlockState
	for i := range o.stash.blocks {
		b := &o.stash.blocks[i]
		out = append(out, StashBlockState{Addr: b.Addr, Leaf: b.Leaf, Data: slices.Clone(b.Data)})
	}
	return out
}

// captureStale snapshots the batched-mode tombstone map with sorted address
// lists (deterministic encoding); nil when there are no tombstones.
func (o *ORAM) captureStale() map[uint64][]uint64 {
	if len(o.stale) == 0 {
		return nil
	}
	out := make(map[uint64][]uint64, len(o.stale))
	for bucket, set := range o.stale {
		addrs := make([]uint64, 0, len(set))
		for a := range set {
			addrs = append(addrs, a)
		}
		slices.Sort(addrs)
		out[bucket] = addrs
	}
	return out
}

// CaptureState snapshots a flat ORAM's trusted state.
func (o *ORAM) CaptureState() (*ShardState, error) {
	ls, err := o.captureLevel()
	if err != nil {
		return nil, err
	}
	return &ShardState{Levels: []LevelState{ls}}, nil
}

// CaptureState snapshots a recursive stack's trusted state: every level
// plus the on-chip position map.
func (r *Recursive) CaptureState() (*ShardState, error) {
	st := &ShardState{
		OnChip:        slices.Clone(r.onChip),
		StackAccesses: r.Accesses,
		StackDummies:  r.DummyAccesses,
	}
	if r.onChipDirty != nil {
		clear(r.onChipDirty)
	}
	for i, o := range r.orams {
		ls, err := o.captureLevel()
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		st.Levels = append(st.Levels, ls)
	}
	return st, nil
}

// CaptureState snapshots a batched stack's trusted state: the recursive
// capture plus the eviction-cadence counters.
func (b *Batched) CaptureState() (*ShardState, error) {
	st, err := b.rec.CaptureState()
	if err != nil {
		return nil, err
	}
	st.Batch = &BatchedState{
		EvictCounter: b.evictCounter,
		SinceEvict:   b.sinceEvict,
		Slots:        b.slots,
		EvictPasses:  b.evictPasses,
		Forced:       b.forced,
	}
	return st, nil
}

// recoverLevel rebuilds one ORAM around an existing untrusted store: the
// store is re-hashed into a fresh Merkle tree, the recomputed root is
// compared against the checkpointed one (ErrRootMismatch on any
// difference), and the trusted state is restored verbatim.
func recoverLevel(g Geometry, key crypt.Key, rng *rand.Rand, store BucketStore, ls *LevelState) (*ORAM, error) {
	o, err := newORAMShell(g, key, rng, store)
	if err != nil {
		return nil, err
	}
	tree := newMerkleTree(g, o.store)
	if tree.Root() != ls.Root {
		return nil, ErrRootMismatch
	}
	o.integrity = tree
	if uint64(len(ls.PosDense)) > g.Capacity() {
		return nil, fmt.Errorf("pathoram: checkpointed position map holds %d entries, tree capacity is %d", len(ls.PosDense), g.Capacity())
	}
	o.posmap.flat = slices.Clone(ls.PosDense)
	if len(ls.PosOver) > 0 {
		o.posmap.over = make(map[uint64]uint64, len(ls.PosOver))
		for a, l := range ls.PosOver {
			o.posmap.over[a] = l
		}
	}
	for _, b := range ls.Stash {
		if len(b.Data) != g.BlockBytes {
			return nil, fmt.Errorf("pathoram: checkpointed stash block %#x is %d bytes, want %d", b.Addr, len(b.Data), g.BlockBytes)
		}
		o.stash.Put(Block{Addr: b.Addr, Leaf: b.Leaf, Data: b.Data})
	}
	if ls.StashPeak > o.stash.peak {
		o.stash.peak = ls.StashPeak
	}
	if len(ls.Stale) > 0 {
		o.stale = make(map[uint64]map[uint64]struct{}, len(ls.Stale))
		for bucket, addrs := range ls.Stale {
			set := make(map[uint64]struct{}, len(addrs))
			for _, a := range addrs {
				set[a] = struct{}{}
			}
			o.stale[bucket] = set
		}
	}
	o.Accesses = ls.Accesses
	o.DummyAccesses = ls.DummyAccesses
	o.BucketReads = ls.BucketReads
	o.BucketWrites = ls.BucketWrites
	return o, nil
}

// RecoverORAM rebuilds a flat ORAM from a captured state and the untrusted
// store built by factory (nil means in-RAM — only useful in tests). The
// recovered instance has integrity enabled; EnableIntegrity must not be
// called again.
func RecoverORAM(g Geometry, key crypt.Key, rng *rand.Rand, factory StorageFactory, st *ShardState) (*ORAM, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(st.Levels) != 1 {
		return nil, fmt.Errorf("pathoram: flat recovery wants 1 checkpointed level, got %d", len(st.Levels))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	store, err := newStore(factory, 0, g)
	if err != nil {
		return nil, err
	}
	return recoverLevel(g, key, rng, store, &st.Levels[0])
}

// RecoverRecursive rebuilds a recursive stack from a captured state, every
// level's untrusted store built by factory.
func RecoverRecursive(cfg RecursiveConfig, key crypt.Key, rng *rand.Rand, factory StorageFactory, st *ShardState) (*Recursive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	geoms := cfg.Geometries()
	if len(st.Levels) != len(geoms) {
		return nil, fmt.Errorf("pathoram: recursive recovery wants %d checkpointed levels, got %d", len(geoms), len(st.Levels))
	}
	if uint64(len(st.OnChip)) != cfg.OnChipPosMapEntries() {
		return nil, fmt.Errorf("pathoram: checkpointed on-chip map holds %d entries, want %d", len(st.OnChip), cfg.OnChipPosMapEntries())
	}
	orams := make([]*ORAM, len(geoms))
	for i, g := range geoms {
		store, err := newStore(factory, i, g)
		if err != nil {
			return nil, err
		}
		o, err := recoverLevel(g, key, rng, store, &st.Levels[i])
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i, err)
		}
		orams[i] = o
	}
	return &Recursive{
		cfg:           cfg,
		orams:         orams,
		onChip:        slices.Clone(st.OnChip),
		rng:           rng,
		readBuf:       make([]byte, cfg.DataBlockBytes),
		Accesses:      st.StackAccesses,
		DummyAccesses: st.StackDummies,
	}, nil
}

// RecoverBatched rebuilds a batched stack from a captured state.
func RecoverBatched(cfg BatchedConfig, key crypt.Key, rng *rand.Rand, factory StorageFactory, st *ShardState) (*Batched, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st.Batch == nil {
		return nil, errors.New("pathoram: checkpoint carries no batched-mode state")
	}
	rec, err := RecoverRecursive(cfg.RecursiveConfig, key, rng, factory, st)
	if err != nil {
		return nil, err
	}
	data := rec.orams[0]
	if data.stale == nil {
		data.stale = make(map[uint64]map[uint64]struct{})
	}
	return &Batched{
		cfg:          cfg,
		rec:          rec,
		data:         data,
		evictCounter: st.Batch.EvictCounter,
		sinceEvict:   st.Batch.SinceEvict,
		slots:        st.Batch.Slots,
		evictPasses:  st.Batch.EvictPasses,
		forced:       st.Batch.Forced,
	}, nil
}
