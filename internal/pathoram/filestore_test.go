package pathoram

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tcoram/internal/crypt"
)

func testFileFactory(t *testing.T, dir string, cache int) StorageFactory {
	t.Helper()
	return func(level int, g Geometry) (BucketStore, error) {
		return CreateFileStorage(g, FileStorageConfig{
			Path:         filepath.Join(dir, levelFileName(level)),
			CacheBuckets: cache,
		})
	}
}

func levelFileName(level int) string {
	return "level-" + string(rune('0'+level)) + ".oram"
}

// TestFileStorageMatchesByteStorage drives identically seeded ORAMs over a
// RAM store and a file store (with a cache far smaller than the tree, so
// eviction and reload paths are exercised) and requires identical results
// and identical adversary-visible bucket bytes.
func TestFileStorageMatchesByteStorage(t *testing.T) {
	g := GeometryForBlocks(256, 3, 64)
	key := crypt.Key{1, 2, 3}
	mem, err := NewORAM(g, key, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CreateFileStorage(g, FileStorageConfig{
		Path:         filepath.Join(t.TempDir(), "buckets.oram"),
		CacheBuckets: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	file, err := NewORAMOn(g, key, rand.New(rand.NewSource(7)), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	buf := make([]byte, g.BlockBytes)
	for i := 0; i < 200; i++ {
		addr := uint64(i*37) % 256
		buf[0], buf[1] = byte(i), byte(addr)
		if _, err := mem.Access(OpWrite, addr, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := file.Access(OpWrite, addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		addr := uint64(i*53) % 256
		a, err := mem.Access(OpRead, addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := file.Access(OpRead, addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("read %d: mem and file stores diverge", addr)
		}
	}
	for idx := uint64(0); idx < g.Buckets(); idx++ {
		if !bytes.Equal(mem.Storage().Snapshot(idx), file.Storage().Snapshot(idx)) {
			t.Fatalf("bucket %d bytes diverge between mem and file stores", idx)
		}
	}
	st := file.StorageStats()
	if st.CacheMisses == 0 || st.FileReads == 0 {
		t.Errorf("an 8-bucket cache over %d buckets recorded no misses (%+v)", g.Buckets(), st)
	}
	if mem.StorageStats() != (StorageStats{}) {
		t.Errorf("RAM store reported nonzero IO stats: %+v", mem.StorageStats())
	}
}

// TestFileGeometryMismatch pins the fail-fast on reopening a bucket file
// with different geometry flags.
func TestFileGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "buckets.oram")
	g := GeometryForBlocks(64, 3, 64)
	fs, err := CreateFileStorage(g, FileStorageConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	other := GeometryForBlocks(64, 4, 64)
	if _, err := OpenFileStorage(other, FileStorageConfig{Path: path}); !errors.Is(err, ErrFileGeometry) {
		t.Fatalf("opening with wrong geometry: got %v, want ErrFileGeometry", err)
	}
	if _, err := OpenFileStorage(g, FileStorageConfig{Path: path}); err != nil {
		t.Fatalf("reopening with matching geometry: %v", err)
	}
}

// TestCaptureRecoverBatched is the full trusted-state roundtrip at the
// pathoram layer: run a batched recursive stack on file storage, capture
// and flush, tear down, recover — every pre-capture write must read back
// intact through integrity verification, counters must survive, and the
// path invariant must hold before and after post-recovery traffic.
func TestCaptureRecoverBatched(t *testing.T) {
	cfg := BatchedConfig{RecursiveConfig: RecursiveConfig{
		DataBlocks: 128, DataBlockBytes: 64, PosMapBlockBytes: 32, Z: 3, Recursion: 1,
	}}
	key := crypt.Key{9}
	dir := t.TempDir()

	b, err := NewBatchedOn(cfg, key, rand.New(rand.NewSource(3)), testFileFactory(t, dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	b.EnableIntegrity()
	for i := 0; i < 150; i++ {
		i := i
		err := b.AccessBatch([]BatchOp{{Addr: uint64(i % 128), Fn: func(d []byte) { d[0] = byte(i) }}})
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := b.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range b.rec.orams {
		fs := o.Storage().(*FileStorage)
		if err := fs.Flush(); err != nil {
			t.Fatalf("flushing level %d: %v", i, err)
		}
		fs.Close()
	}

	reopen := func(level int, g Geometry) (BucketStore, error) {
		return OpenFileStorage(g, FileStorageConfig{Path: filepath.Join(dir, levelFileName(level))})
	}
	rec, err := RecoverBatched(cfg, key, rand.New(rand.NewSource(99)), reopen, st)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slots() != b.Slots() || rec.EvictPassCount() != b.EvictPassCount() {
		t.Errorf("recovered counters (slots %d, evicts %d) != captured (%d, %d)",
			rec.Slots(), rec.EvictPassCount(), b.Slots(), b.EvictPassCount())
	}
	if err := rec.CheckInvariant(); err != nil {
		t.Fatalf("recovered stack violates the path invariant: %v", err)
	}
	// Writes 0..149 hit addr i%128 with value byte(i): blocks below 22 were
	// overwritten by the second lap.
	for addr := uint64(0); addr < 128; addr++ {
		var got byte
		err := rec.AccessBatch([]BatchOp{{Addr: addr, Fn: func(d []byte) { got = d[0] }}})
		if err != nil {
			t.Fatalf("reading %d after recovery: %v", addr, err)
		}
		expect := byte(addr)
		if addr < 22 {
			expect = byte(addr + 128)
		}
		if got != expect {
			t.Fatalf("block %d reads %d after recovery, want %d", addr, got, expect)
		}
	}
	if err := rec.CheckInvariant(); err != nil {
		t.Fatalf("post-recovery traffic violates the path invariant: %v", err)
	}
}

// TestRecoverRootMismatch flips one byte of the persisted bucket file and
// requires recovery to fail closed with ErrRootMismatch.
func TestRecoverRootMismatch(t *testing.T) {
	g := GeometryForBlocks(64, 3, 64)
	key := crypt.Key{5}
	dir := t.TempDir()
	path := filepath.Join(dir, "level-0.oram")
	fs, err := CreateFileStorage(g, FileStorageConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewORAMOn(g, key, rand.New(rand.NewSource(4)), fs)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableIntegrity()
	if _, err := o.Access(OpWrite, 3, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	st, err := o.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	reopen := func(level int, gg Geometry) (BucketStore, error) {
		return OpenFileStorage(gg, FileStorageConfig{Path: path})
	}
	if _, err := RecoverORAM(g, key, nil, reopen, st); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("recovery over a tampered bucket file: got %v, want ErrRootMismatch", err)
	}
}

// TestRetainDirtyPinsFile checks the checkpoint protocol's core storage
// invariant: with RetainDirty on, no write reaches the file between Flush
// calls even under cache pressure.
func TestRetainDirtyPinsFile(t *testing.T) {
	g := GeometryForBlocks(256, 3, 64)
	path := filepath.Join(t.TempDir(), "buckets.oram")
	fs, err := CreateFileStorage(g, FileStorageConfig{Path: path, CacheBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewORAMOn(g, crypt.Key{8}, rand.New(rand.NewSource(2)), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fs.RetainDirty(true)
	wrote := fs.Stats().FileWrites
	for i := 0; i < 50; i++ {
		if _, err := o.Access(OpWrite, uint64(i)%200, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Stats().FileWrites; got != wrote {
		t.Fatalf("RetainDirty leaked %d file writes between flushes", got-wrote)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("bucket file changed while dirty pages were pinned")
	}
	if fs.DirtyCount() == 0 {
		t.Fatal("no dirty pages accumulated")
	}
	if err := fs.Flush(); err != nil {
		t.Fatal(err)
	}
	if fs.DirtyCount() != 0 {
		t.Fatalf("%d dirty pages survived Flush", fs.DirtyCount())
	}
	fs.Close()
}

// TestFileStorageMMapReads reruns the mem/file equivalence workload with the
// mmap read path enabled: results and adversary-visible bytes must still
// match the RAM store exactly (dirty cached pages shadow the mapping), and
// the mapping must actually serve reads.
func TestFileStorageMMapReads(t *testing.T) {
	if !MMapSupported {
		t.Skip("mmap bucket reads unsupported on this platform")
	}
	g := GeometryForBlocks(256, 3, 64)
	key := crypt.Key{1, 2, 3}
	mem, err := NewORAM(g, key, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CreateFileStorage(g, FileStorageConfig{
		Path:         filepath.Join(t.TempDir(), "buckets.oram"),
		CacheBuckets: 8, // tiny cache: clean reads fall through to the mapping
		MMap:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	file, err := NewORAMOn(g, key, rand.New(rand.NewSource(7)), fs)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	buf := make([]byte, g.BlockBytes)
	for i := 0; i < 200; i++ {
		addr := uint64(i*37) % 256
		buf[0], buf[1] = byte(i), byte(addr)
		if _, err := mem.Access(OpWrite, addr, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := file.Access(OpWrite, addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		addr := uint64(i*53) % 256
		a, err := mem.Access(OpRead, addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := file.Access(OpRead, addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("read %d: mem and mmap-backed stores diverge", addr)
		}
	}
	for idx := uint64(0); idx < g.Buckets(); idx++ {
		if !bytes.Equal(mem.Storage().Snapshot(idx), file.Storage().Snapshot(idx)) {
			t.Fatalf("bucket %d bytes diverge between mem and mmap-backed stores", idx)
		}
	}
	if st := fs.Stats(); st.MMapReads == 0 {
		t.Errorf("mmap store served no reads from the mapping: %+v", st)
	}
}
