//go:build unix

package pathoram

import (
	"fmt"
	"syscall"
)

// MMapSupported reports whether this platform can serve bucket reads from a
// file mapping (FileStorageConfig.MMap).
const MMapSupported = true

// mapFile maps the whole bucket file read-only and shared. MAP_SHARED keeps
// the mapping coherent with Flush's WriteAt traffic through the kernel's
// unified page cache, so a flushed bucket is immediately visible through
// the mapping without remapping.
func (s *FileStorage) mapFile() error {
	m, err := syscall.Mmap(int(s.f.Fd()), 0, int(s.fileSize()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("pathoram: mmapping %s: %w", s.cfg.Path, err)
	}
	s.mmap = m
	return nil
}

// unmapFile releases the mapping; safe to call when none exists.
func (s *FileStorage) unmapFile() {
	if s.mmap != nil {
		syscall.Munmap(s.mmap)
		s.mmap = nil
	}
}
