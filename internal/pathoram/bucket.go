package pathoram

import (
	"encoding/binary"
	"fmt"
)

// Block is one ORAM block in plaintext form: a program (cache line) address,
// the leaf it is currently mapped to, and its payload.
type Block struct {
	Addr uint64 // block address; DummyAddr for empty slots
	Leaf uint64 // current leaf assignment
	Data []byte // payload, Geometry.BlockBytes long
}

// IsDummy reports whether the block slot is empty.
func (b Block) IsDummy() bool { return b.Addr == DummyAddr }

// packHeader encodes (addr, leaf) into 8 bytes: 40-bit address, 24-bit leaf.
// The packing matches BlockHeaderBytes and bounds the supported tree to
// 2^24 leaves and 2^40 blocks — far beyond the evaluated configurations.
func packHeader(dst []byte, addr, leaf uint64) {
	v := (addr & (1<<40 - 1)) | (leaf&(1<<24-1))<<40
	binary.LittleEndian.PutUint64(dst, v)
}

// unpackHeader inverts packHeader.
func unpackHeader(src []byte) (addr, leaf uint64) {
	v := binary.LittleEndian.Uint64(src)
	return v & (1<<40 - 1), v >> 40
}

// encodeBucket serializes up to Z blocks into a bucket plaintext, padding
// the remaining slots with dummies. blocks longer than Z is a bug.
func (g Geometry) encodeBucket(blocks []Block) []byte {
	if len(blocks) > g.Z {
		panic(fmt.Sprintf("pathoram: %d blocks exceed bucket capacity Z=%d", len(blocks), g.Z))
	}
	out := make([]byte, g.BucketPlainBytes())
	slot := out
	for i := 0; i < g.Z; i++ {
		if i < len(blocks) {
			b := blocks[i]
			packHeader(slot, b.Addr, b.Leaf)
			copy(slot[BlockHeaderBytes:BlockHeaderBytes+g.BlockBytes], b.Data)
		} else {
			packHeader(slot, DummyAddr, 0)
		}
		slot = slot[BlockHeaderBytes+g.BlockBytes:]
	}
	return out
}

// decodeBucket appends the real (non-dummy) blocks found in a bucket
// plaintext to dst and returns the extended slice. Payloads are copied so
// callers may retain them.
func (g Geometry) decodeBucket(dst []Block, plain []byte) ([]Block, error) {
	if len(plain) != g.BucketPlainBytes() {
		return dst, fmt.Errorf("pathoram: bucket plaintext is %d bytes, want %d", len(plain), g.BucketPlainBytes())
	}
	for i := 0; i < g.Z; i++ {
		off := i * (BlockHeaderBytes + g.BlockBytes)
		addr, leaf := unpackHeader(plain[off:])
		if addr == DummyAddr {
			continue
		}
		data := make([]byte, g.BlockBytes)
		copy(data, plain[off+BlockHeaderBytes:off+BlockHeaderBytes+g.BlockBytes])
		dst = append(dst, Block{Addr: addr, Leaf: leaf, Data: data})
	}
	return dst, nil
}
