package pathoram

import (
	"fmt"
	"math/rand"

	"tcoram/internal/crypt"
)

// This file provides the per-shard construction helpers for the concurrent
// server layer, which partitions a flat address space across N independent
// single-level ORAMs (the sub-ORAM idea of Stefanov et al.'s partitioned
// ORAM, applied here for parallelism rather than on-chip space).
//
// Shared-state audit — what two ORAM instances may and may not share:
//
//   - crypt.Key is a value; instances encrypting under the same key share no
//     mutable state through it.
//   - crypt.Cipher carries per-instance CTR scratch and is NOT safe for
//     concurrent use; NewORAM builds a private Cipher per ORAM, so each
//     shard owns its own (mirroring one AES pipeline per shard).
//   - *rand.Rand is mutable and unsynchronized. NewORAM wraps the rng it is
//     given for both leaf remapping and nonce generation, so two shards must
//     NEVER be constructed with the same *rand.Rand — NewShardSet derives an
//     independent deterministic stream per shard.
//   - ByteStorage, Stash, positionMap, and the scratch buffers are all
//     built privately inside NewORAM and never escape.
//
// Consequently a *ORAM is safe for use from one goroutine at a time, and a
// set built by NewShardSet is safe for N goroutines, one per shard.

// NewShardSet builds n independent ORAMs with identical geometry, encrypted
// under the same session key but with independent deterministic RNG streams
// derived from seed (splitmix64 over the shard index). Identical (g, key,
// seed) inputs rebuild byte-identical shards, which the server's tests rely
// on for deterministic routing checks.
func NewShardSet(n int, g Geometry, key crypt.Key, seed int64) ([]*ORAM, error) {
	return NewShardSetOn(n, g, key, seed, nil)
}

// NewShardSetOn is NewShardSet with each shard's untrusted store built by
// factories(shard) — nil factories, or a nil per-shard StorageFactory,
// means in-RAM ByteStorage.
func NewShardSetOn(n int, g Geometry, key crypt.Key, seed int64, factories func(shard int) StorageFactory) ([]*ORAM, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathoram: shard count must be positive, got %d", n)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	shards := make([]*ORAM, n)
	for i := range shards {
		var factory StorageFactory
		if factories != nil {
			factory = factories(i)
		}
		store, err := newStore(factory, 0, g)
		if err != nil {
			return nil, fmt.Errorf("pathoram: building shard %d: %w", i, err)
		}
		o, err := NewORAMOn(g, key, rand.New(rand.NewSource(ShardSeed(seed, i))), store)
		if err != nil {
			return nil, fmt.Errorf("pathoram: building shard %d: %w", i, err)
		}
		shards[i] = o
	}
	return shards, nil
}

// NewRecursiveShardSet is NewShardSet for recursive stacks: n independent
// Recursive ORAMs with identical configuration, encrypted under the same
// session key, each with its own deterministic RNG stream (which every
// level of that stack shares — a stack is single-goroutine like a flat
// ORAM, and the shared-state audit above applies level by level because
// NewRecursive builds each level through NewORAM). Identical (cfg, key,
// seed) inputs rebuild byte-identical shard sets.
func NewRecursiveShardSet(n int, cfg RecursiveConfig, key crypt.Key, seed int64) ([]*Recursive, error) {
	return NewRecursiveShardSetOn(n, cfg, key, seed, nil)
}

// NewRecursiveShardSetOn is NewRecursiveShardSet with each shard's level
// stores built by factories(shard) (nil means in-RAM everywhere).
func NewRecursiveShardSetOn(n int, cfg RecursiveConfig, key crypt.Key, seed int64, factories func(shard int) StorageFactory) ([]*Recursive, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathoram: shard count must be positive, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := make([]*Recursive, n)
	for i := range shards {
		var factory StorageFactory
		if factories != nil {
			factory = factories(i)
		}
		r, err := NewRecursiveOn(cfg, key, rand.New(rand.NewSource(ShardSeed(seed, i))), factory)
		if err != nil {
			return nil, fmt.Errorf("pathoram: building recursive shard %d: %w", i, err)
		}
		shards[i] = r
	}
	return shards, nil
}

// NewBatchedShardSet is NewShardSet for batched multi-path stacks: n
// independent Batched ORAMs with identical configuration, encrypted under
// the same session key, each with its own deterministic RNG stream (the
// shared-state audit above applies level by level, and the batched state —
// stash backlog, tombstones, eviction counter — is all per-instance).
// Identical (cfg, key, seed) inputs rebuild byte-identical shard sets.
func NewBatchedShardSet(n int, cfg BatchedConfig, key crypt.Key, seed int64) ([]*Batched, error) {
	return NewBatchedShardSetOn(n, cfg, key, seed, nil)
}

// NewBatchedShardSetOn is NewBatchedShardSet with each shard's level stores
// built by factories(shard) (nil means in-RAM everywhere).
func NewBatchedShardSetOn(n int, cfg BatchedConfig, key crypt.Key, seed int64, factories func(shard int) StorageFactory) ([]*Batched, error) {
	if n < 1 {
		return nil, fmt.Errorf("pathoram: shard count must be positive, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := make([]*Batched, n)
	for i := range shards {
		var factory StorageFactory
		if factories != nil {
			factory = factories(i)
		}
		b, err := NewBatchedOn(cfg, key, rand.New(rand.NewSource(ShardSeed(seed, i))), factory)
		if err != nil {
			return nil, fmt.Errorf("pathoram: building batched shard %d: %w", i, err)
		}
		shards[i] = b
	}
	return shards, nil
}

// ShardSeed derives shard i's RNG seed from the set seed via splitmix64, so
// adjacent shard indices get decorrelated streams. It is exported so the
// server's recovery path can rebuild a single shard with the same stream the
// shard-set constructors would have used.
func ShardSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}

// ShardGeometry returns the per-shard tree shape for a store of totalBlocks
// blocks split across n shards: each shard holds ceil(totalBlocks/n) blocks.
func ShardGeometry(totalBlocks uint64, n int, z, blockBytes int) Geometry {
	if n < 1 {
		n = 1
	}
	per := (totalBlocks + uint64(n) - 1) / uint64(n)
	return GeometryForBlocks(per, z, blockBytes)
}
