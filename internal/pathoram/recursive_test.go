package pathoram

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"tcoram/internal/crypt"
	"tcoram/internal/dram"
)

func smallRecursiveConfig() RecursiveConfig {
	return RecursiveConfig{
		DataBlocks:       256,
		DataBlockBytes:   64,
		PosMapBlockBytes: 32,
		Z:                3,
		Recursion:        2,
	}
}

func newTestRecursive(t *testing.T, cfg RecursiveConfig, seed int64) *Recursive {
	t.Helper()
	r, err := NewRecursive(cfg, testKey(byte(seed)), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecursiveConfigValidate(t *testing.T) {
	good := smallRecursiveConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*RecursiveConfig){
		func(c *RecursiveConfig) { c.DataBlocks = 0 },
		func(c *RecursiveConfig) { c.DataBlockBytes = 0 },
		func(c *RecursiveConfig) { c.PosMapBlockBytes = 2 },
		func(c *RecursiveConfig) { c.Z = 0 },
		func(c *RecursiveConfig) { c.Recursion = -1 },
		func(c *RecursiveConfig) { c.Recursion = 9 },
	}
	for i, mutate := range bad {
		c := smallRecursiveConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestRecursionShrinksPosMaps(t *testing.T) {
	cfg := PaperConfig()
	geoms := cfg.Geometries()
	if len(geoms) != 1+cfg.Recursion {
		t.Fatalf("got %d geometries, want %d", len(geoms), 1+cfg.Recursion)
	}
	for i := 1; i < len(geoms); i++ {
		if geoms[i].Levels >= geoms[i-1].Levels {
			t.Fatalf("posmap level %d (%d tree levels) not smaller than level %d (%d)",
				i, geoms[i].Levels, i-1, geoms[i-1].Levels)
		}
	}
	// Final on-chip map must be small (the paper keeps the controller
	// under 200 KB of on-chip storage).
	entries := cfg.OnChipPosMapEntries()
	if entries*LabelBytes > 200<<10 {
		t.Fatalf("on-chip position map is %d bytes; want < 200 KB", entries*LabelBytes)
	}
}

func TestRecursiveReadYourWrites(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 20)
	data := bytes.Repeat([]byte{0x3C}, 64)
	if _, err := r.Access(OpWrite, 100, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Access(OpRead, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %x, want %x", got[:4], data[:4])
	}
}

func TestRecursiveFunctionalModel(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 21)
	rng := rand.New(rand.NewSource(22))
	model := make(map[uint64][]byte)
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Int63n(int64(r.Config().DataBlocks)))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if _, err := r.Access(OpWrite, addr, data); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			model[addr] = data
		} else {
			got, err := r.Access(OpRead, addr, nil)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, ok := model[addr]
			if !ok {
				want = make([]byte, 64)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d read %x..., want %x...", i, addr, got[:4], want[:4])
			}
		}
	}
}

// TestRecursiveUpdateRMW pins the recursive read-modify-write contract the
// server's coalescing depends on: old contents visible inside fn, mutation
// durable, one all-levels access per Update.
func TestRecursiveUpdateRMW(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 30)

	// Never-written block reads as zeroes through Update.
	var seen []byte
	if err := r.Update(3, func(data []byte) {
		seen = append([]byte(nil), data...)
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, make([]byte, 64)) {
		t.Fatalf("fresh block not zero: %x", seen[:8])
	}

	want := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := r.Access(OpWrite, 9, want); err != nil {
		t.Fatal(err)
	}
	before := r.Accesses
	dataBefore := r.DataORAM().Accesses
	if err := r.Update(9, func(data []byte) {
		if !bytes.Equal(data, want) {
			t.Fatalf("Update saw %x..., want %x...", data[:4], want[:4])
		}
		data[0] = 0xCD
	}); err != nil {
		t.Fatal(err)
	}
	if r.Accesses != before+1 {
		t.Fatalf("Update cost %d stack accesses, want 1", r.Accesses-before)
	}
	if r.DataORAM().Accesses != dataBefore+1 {
		t.Fatalf("Update cost %d data-ORAM accesses, want 1", r.DataORAM().Accesses-dataBefore)
	}
	got, err := r.Access(OpRead, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	want[0] = 0xCD
	if !bytes.Equal(got, want) {
		t.Fatalf("after Update read %x..., want %x...", got[:4], want[:4])
	}

	if err := r.Update(r.Config().DataBlocks, nil); err == nil {
		t.Error("Update accepted out-of-range address")
	}
}

// TestRecursiveIntegrityAllLevels: with integrity enabled, tampering with
// untrusted storage at ANY level of the stack — including a position-map
// tree, whose contents are pure metadata — must fail the next access with
// ErrIntegrity.
func TestRecursiveIntegrityAllLevels(t *testing.T) {
	for level := 0; level < 3; level++ {
		r := newTestRecursive(t, smallRecursiveConfig(), 31+int64(level))
		r.EnableIntegrity()
		data := bytes.Repeat([]byte{0x7E}, 64)
		for addr := uint64(0); addr < 32; addr++ {
			if _, err := r.Access(OpWrite, addr, data); err != nil {
				t.Fatal(err)
			}
		}
		// Flip one byte of the root bucket of the chosen level's tree.
		st := r.orams[level].Storage()
		raw := st.BucketSlice(0)
		raw[0] ^= 0xFF
		var err error
		for addr := uint64(0); addr < 32 && err == nil; addr++ {
			_, err = r.Access(OpRead, addr, nil)
		}
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("level %d tamper: got %v, want ErrIntegrity", level, err)
		}
	}
}

func TestRecursiveEnableIntegrityMustPrecedeAccesses(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 35)
	if _, err := r.Access(OpWrite, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableIntegrity after accesses did not panic")
		}
	}()
	r.EnableIntegrity()
}

// TestRecursiveStashOccupancyAcrossLevels: the stack-level reporting sums
// the per-level stashes, and LevelStashPeaks exposes one entry per level
// (data ORAM first).
func TestRecursiveStashOccupancyAcrossLevels(t *testing.T) {
	cfg := smallRecursiveConfig()
	r := newTestRecursive(t, cfg, 36)
	data := make([]byte, 64)
	for i := 0; i < 300; i++ {
		if _, err := r.Access(OpWrite, uint64(i%int(cfg.DataBlocks)), data); err != nil {
			t.Fatal(err)
		}
	}
	peaks := r.LevelStashPeaks(nil)
	if len(peaks) != 1+cfg.Recursion {
		t.Fatalf("LevelStashPeaks has %d entries, want %d", len(peaks), 1+cfg.Recursion)
	}
	sum := 0
	for i, p := range peaks {
		if p == 0 {
			t.Errorf("level %d peak stash is 0 after 300 accesses", i)
		}
		sum += p
	}
	cur, peak := r.StashOccupancy()
	if peak != sum {
		t.Errorf("StashOccupancy peak = %d, want sum of level peaks %d", peak, sum)
	}
	if cur < 0 || cur > peak {
		t.Errorf("current occupancy %d outside [0, %d]", cur, peak)
	}
	if r.Blocks() != cfg.DataBlocks || r.BlockBytes() != cfg.DataBlockBytes {
		t.Errorf("geometry surface: Blocks=%d BlockBytes=%d, want %d/%d",
			r.Blocks(), r.BlockBytes(), cfg.DataBlocks, cfg.DataBlockBytes)
	}
}

func TestNewRecursiveShardSetDeterministicAndIndependent(t *testing.T) {
	cfg := smallRecursiveConfig()
	a, err := NewRecursiveShardSet(3, cfg, testKey(40), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRecursiveShardSet(3, cfg, testKey(40), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i].DataORAM().Storage().ReadBucket(0), b[i].DataORAM().Storage().ReadBucket(0)) {
			t.Fatalf("recursive shard %d differs across identical constructions", i)
		}
	}
	if bytes.Equal(a[0].DataORAM().Storage().ReadBucket(0), a[1].DataORAM().Storage().ReadBucket(0)) {
		t.Fatal("recursive shards 0 and 1 share an RNG stream")
	}
	if _, err := NewRecursiveShardSet(0, cfg, testKey(40), 1); err == nil {
		t.Error("NewRecursiveShardSet accepted n=0")
	}
	bad := cfg
	bad.DataBlocks = 0
	if _, err := NewRecursiveShardSet(2, bad, testKey(40), 1); err == nil {
		t.Error("NewRecursiveShardSet accepted invalid config")
	}
}

func TestRecursiveRejectsOutOfRange(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 23)
	if _, err := r.Access(OpRead, r.Config().DataBlocks, nil); err == nil {
		t.Fatal("Access accepted out-of-range block")
	}
	if _, err := r.Access(OpWrite, 0, make([]byte, 7)); err == nil {
		t.Fatal("Access accepted short write")
	}
}

func TestRecursiveDummyTouchesAllLevels(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 24)
	before := make([]uint64, len(r.orams))
	for i, o := range r.orams {
		before[i] = o.DummyAccesses
	}
	if err := r.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	for i, o := range r.orams {
		if o.DummyAccesses != before[i]+1 {
			t.Fatalf("level %d: dummy accesses %d, want %d", i, o.DummyAccesses, before[i]+1)
		}
	}
	if r.DummyAccesses != 1 {
		t.Fatalf("stack DummyAccesses = %d, want 1", r.DummyAccesses)
	}
}

func TestPaperConfigMatchesReportedMovement(t *testing.T) {
	// §9.1.2: each access transfers ≈24.2 KB (12.1 KB per direction).
	cfg := PaperConfig()
	oneWay, roundTrip := cfg.AccessBytes()
	if roundTrip != 2*oneWay {
		t.Fatalf("roundTrip %d != 2×oneWay %d", roundTrip, oneWay)
	}
	lo, hi := PaperAccessBytes*9/10, PaperAccessBytes*11/10
	if roundTrip < lo || roundTrip > hi {
		t.Fatalf("round-trip bytes = %d, want within 10%% of paper's %d", roundTrip, PaperAccessBytes)
	}
}

func TestEstimateAccessLatencyNearPaper(t *testing.T) {
	// Our native DRAM model should land near the paper's DRAMSim2-derived
	// 1488 cycles; the experiments pin the scalar to PaperAccessLatency
	// for point-comparability (see DESIGN.md substitution #3).
	est := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	if est.CPUCycles < PaperAccessLatency*80/100 || est.CPUCycles > PaperAccessLatency*120/100 {
		t.Fatalf("estimated access latency %d cycles; want within 20%% of %d", est.CPUCycles, PaperAccessLatency)
	}
	if est.BytesMoved < PaperAccessBytes*9/10 || est.BytesMoved > PaperAccessBytes*11/10 {
		t.Fatalf("estimated bytes moved %d; want within 10%% of %d", est.BytesMoved, PaperAccessBytes)
	}
	if est.Bursts <= 0 || est.DRAMCycles <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	a := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	b := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	if a != b {
		t.Fatalf("latency estimate not deterministic: %+v vs %+v", a, b)
	}
}

func TestTreeAddressMapLayoutDisjoint(t *testing.T) {
	cfg := smallRecursiveConfig()
	m := NewTreeAddressMap(cfg)
	geoms := cfg.Geometries()
	for i := 1; i < len(geoms); i++ {
		endPrev := m.BucketAddr(i-1, geoms[i-1].Buckets()-1) + int64(geoms[i-1].BucketCipherBytes())
		if m.BucketAddr(i, 0) < endPrev {
			t.Fatalf("tree %d overlaps tree %d", i, i-1)
		}
	}
	if m.TotalBytes() <= 0 {
		t.Fatal("TotalBytes not positive")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String() mismatch")
	}
}

var _ = crypt.KeySize // keep import if test set shrinks
