package pathoram

import (
	"bytes"
	"math/rand"
	"testing"

	"tcoram/internal/crypt"
	"tcoram/internal/dram"
)

func smallRecursiveConfig() RecursiveConfig {
	return RecursiveConfig{
		DataBlocks:       256,
		DataBlockBytes:   64,
		PosMapBlockBytes: 32,
		Z:                3,
		Recursion:        2,
	}
}

func newTestRecursive(t *testing.T, cfg RecursiveConfig, seed int64) *Recursive {
	t.Helper()
	r, err := NewRecursive(cfg, testKey(byte(seed)), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecursiveConfigValidate(t *testing.T) {
	good := smallRecursiveConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*RecursiveConfig){
		func(c *RecursiveConfig) { c.DataBlocks = 0 },
		func(c *RecursiveConfig) { c.DataBlockBytes = 0 },
		func(c *RecursiveConfig) { c.PosMapBlockBytes = 2 },
		func(c *RecursiveConfig) { c.Z = 0 },
		func(c *RecursiveConfig) { c.Recursion = -1 },
		func(c *RecursiveConfig) { c.Recursion = 9 },
	}
	for i, mutate := range bad {
		c := smallRecursiveConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestRecursionShrinksPosMaps(t *testing.T) {
	cfg := PaperConfig()
	geoms := cfg.Geometries()
	if len(geoms) != 1+cfg.Recursion {
		t.Fatalf("got %d geometries, want %d", len(geoms), 1+cfg.Recursion)
	}
	for i := 1; i < len(geoms); i++ {
		if geoms[i].Levels >= geoms[i-1].Levels {
			t.Fatalf("posmap level %d (%d tree levels) not smaller than level %d (%d)",
				i, geoms[i].Levels, i-1, geoms[i-1].Levels)
		}
	}
	// Final on-chip map must be small (the paper keeps the controller
	// under 200 KB of on-chip storage).
	entries := cfg.OnChipPosMapEntries()
	if entries*LabelBytes > 200<<10 {
		t.Fatalf("on-chip position map is %d bytes; want < 200 KB", entries*LabelBytes)
	}
}

func TestRecursiveReadYourWrites(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 20)
	data := bytes.Repeat([]byte{0x3C}, 64)
	if _, err := r.Access(OpWrite, 100, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Access(OpRead, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %x, want %x", got[:4], data[:4])
	}
}

func TestRecursiveFunctionalModel(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 21)
	rng := rand.New(rand.NewSource(22))
	model := make(map[uint64][]byte)
	for i := 0; i < 500; i++ {
		addr := uint64(rng.Int63n(int64(r.Config().DataBlocks)))
		if rng.Intn(2) == 0 {
			data := make([]byte, 64)
			rng.Read(data)
			if _, err := r.Access(OpWrite, addr, data); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			model[addr] = data
		} else {
			got, err := r.Access(OpRead, addr, nil)
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			want, ok := model[addr]
			if !ok {
				want = make([]byte, 64)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d read %x..., want %x...", i, addr, got[:4], want[:4])
			}
		}
	}
}

func TestRecursiveRejectsOutOfRange(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 23)
	if _, err := r.Access(OpRead, r.Config().DataBlocks, nil); err == nil {
		t.Fatal("Access accepted out-of-range block")
	}
	if _, err := r.Access(OpWrite, 0, make([]byte, 7)); err == nil {
		t.Fatal("Access accepted short write")
	}
}

func TestRecursiveDummyTouchesAllLevels(t *testing.T) {
	r := newTestRecursive(t, smallRecursiveConfig(), 24)
	before := make([]uint64, len(r.orams))
	for i, o := range r.orams {
		before[i] = o.DummyAccesses
	}
	if err := r.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	for i, o := range r.orams {
		if o.DummyAccesses != before[i]+1 {
			t.Fatalf("level %d: dummy accesses %d, want %d", i, o.DummyAccesses, before[i]+1)
		}
	}
	if r.DummyAccesses != 1 {
		t.Fatalf("stack DummyAccesses = %d, want 1", r.DummyAccesses)
	}
}

func TestPaperConfigMatchesReportedMovement(t *testing.T) {
	// §9.1.2: each access transfers ≈24.2 KB (12.1 KB per direction).
	cfg := PaperConfig()
	oneWay, roundTrip := cfg.AccessBytes()
	if roundTrip != 2*oneWay {
		t.Fatalf("roundTrip %d != 2×oneWay %d", roundTrip, oneWay)
	}
	lo, hi := PaperAccessBytes*9/10, PaperAccessBytes*11/10
	if roundTrip < lo || roundTrip > hi {
		t.Fatalf("round-trip bytes = %d, want within 10%% of paper's %d", roundTrip, PaperAccessBytes)
	}
}

func TestEstimateAccessLatencyNearPaper(t *testing.T) {
	// Our native DRAM model should land near the paper's DRAMSim2-derived
	// 1488 cycles; the experiments pin the scalar to PaperAccessLatency
	// for point-comparability (see DESIGN.md substitution #3).
	est := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	if est.CPUCycles < PaperAccessLatency*80/100 || est.CPUCycles > PaperAccessLatency*120/100 {
		t.Fatalf("estimated access latency %d cycles; want within 20%% of %d", est.CPUCycles, PaperAccessLatency)
	}
	if est.BytesMoved < PaperAccessBytes*9/10 || est.BytesMoved > PaperAccessBytes*11/10 {
		t.Fatalf("estimated bytes moved %d; want within 10%% of %d", est.BytesMoved, PaperAccessBytes)
	}
	if est.Bursts <= 0 || est.DRAMCycles <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	a := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	b := EstimateAccessLatency(PaperConfig(), dram.Default(), crypt.DefaultLatency())
	if a != b {
		t.Fatalf("latency estimate not deterministic: %+v vs %+v", a, b)
	}
}

func TestTreeAddressMapLayoutDisjoint(t *testing.T) {
	cfg := smallRecursiveConfig()
	m := NewTreeAddressMap(cfg)
	geoms := cfg.Geometries()
	for i := 1; i < len(geoms); i++ {
		endPrev := m.BucketAddr(i-1, geoms[i-1].Buckets()-1) + int64(geoms[i-1].BucketCipherBytes())
		if m.BucketAddr(i, 0) < endPrev {
			t.Fatalf("tree %d overlaps tree %d", i, i-1)
		}
	}
	if m.TotalBytes() <= 0 {
		t.Fatal("TotalBytes not positive")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String() mismatch")
	}
}

var _ = crypt.KeySize // keep import if test set shrinks
