package pathoram

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEvictionDeterministicAcrossRuns pins the satellite fix for the old
// map-iteration eviction: two identically seeded ORAMs driven through the
// same operation sequence must end with byte-identical untrusted memory,
// identical stash contents and identical position maps. Under the original
// EvictForBucket (Go map iteration order), bucket contents varied run to
// run even at equal seeds.
func TestEvictionDeterministicAcrossRuns(t *testing.T) {
	runOps := func() *ORAM {
		o, err := NewORAM(Geometry{Levels: 7, Z: 3, BlockBytes: 16}, testKey(42), rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 400; i++ {
			addr := uint64(rng.Int63n(80))
			if rng.Intn(2) == 0 {
				data := make([]byte, 16)
				rng.Read(data)
				if _, err := o.Access(OpWrite, addr, data); err != nil {
					t.Fatal(err)
				}
			} else if _, err := o.Access(OpRead, addr, nil); err != nil {
				t.Fatal(err)
			}
		}
		return o
	}
	a, b := runOps(), runOps()
	if !bytes.Equal(a.Storage().(*ByteStorage).Bytes(), b.Storage().(*ByteStorage).Bytes()) {
		t.Fatal("identically seeded runs produced different untrusted memory")
	}
	aAddrs, bAddrs := a.stash.Addrs(), b.stash.Addrs()
	if len(aAddrs) != len(bAddrs) {
		t.Fatalf("stash sizes differ: %d vs %d", len(aAddrs), len(bAddrs))
	}
	for i := range aAddrs {
		if aAddrs[i] != bAddrs[i] {
			t.Fatalf("stash order differs at slot %d: %d vs %d", i, aAddrs[i], bAddrs[i])
		}
	}
	a.posmap.ForEach(func(addr, leaf uint64) {
		if got, ok := b.posmap.Get(addr); !ok || got != leaf {
			t.Fatalf("position map differs at addr %d: %d vs %d (ok=%v)", addr, leaf, got, ok)
		}
	})
}

// TestEvictForBucketOrderPinned pins the deterministic selection order:
// stash slot (insertion) order.
func TestEvictForBucketOrderPinned(t *testing.T) {
	g := Geometry{Levels: 4, Z: 2, BlockBytes: 8}
	s := NewStash()
	for _, addr := range []uint64{30, 10, 20} {
		s.Put(Block{Addr: addr, Leaf: 0, Data: make([]byte, 8)})
	}
	// All three are eligible at the root; z=2 scans in slot order: slot 0
	// (30) is taken and the swap-remove moves 20 into slot 0, which is
	// examined next. The exact sequence matters less than that it is a pure
	// function of the operation history — this pins it.
	got := s.EvictForBucket(g, 7, 0, 2)
	if len(got) != 2 || got[0].Addr != 30 || got[1].Addr != 20 {
		t.Fatalf("EvictForBucket order = %v, want [30 20]", []uint64{got[0].Addr, got[1].Addr})
	}
}

// TestPlanPathEvictionGreedy checks the grouped single-scan planner against
// the greedy write-back semantics: per-level selections are disjoint, ≤ Z,
// and every chosen block is legal for its bucket; blocks that fit nowhere
// stay in the stash.
func TestPlanPathEvictionGreedy(t *testing.T) {
	g := Geometry{Levels: 4, Z: 1, BlockBytes: 8}
	s := NewStash()
	// Leaves: 0..7. Path to leaf 0. Deepest eligible level for leaf 0: 3;
	// leaf 1: 2; leaf 2 and 3: 1; leaf ≥ 4: 0.
	for _, b := range []struct{ addr, leaf uint64 }{
		{1, 0}, {2, 0}, {3, 1}, {4, 7},
	} {
		s.Put(Block{Addr: b.addr, Leaf: b.leaf, Data: make([]byte, 8)})
	}
	var plan EvictPlan
	s.PlanPathEviction(g, 0, g.Z, &plan)
	want := map[int]uint64{
		3: 1, // first leaf-0 block in slot order fills the leaf bucket
		2: 2, // second leaf-0 block carries up to level 2 (before the leaf-1 block's group)
		1: 3, // leaf-1 block carries to level 1
		0: 4, // leaf-7 block shares only the root
	}
	for level := 0; level < g.Levels; level++ {
		sel := plan.LevelBlocks(level)
		if len(sel) != 1 {
			t.Fatalf("level %d: %d blocks selected, want 1", level, len(sel))
		}
		if got := s.BlockAt(sel[0]).Addr; got != want[level] {
			t.Fatalf("level %d: block %d selected, want %d", level, got, want[level])
		}
		if !g.OnPath(0, s.BlockAt(sel[0]).Leaf, level) {
			t.Fatalf("level %d: selected block is not legal for this bucket", level)
		}
	}
	s.RemovePlanned(&plan)
	if s.Len() != 0 {
		t.Fatalf("stash holds %d blocks after full eviction, want 0", s.Len())
	}
}

// TestDeepestLevelMatchesOnPath cross-checks the grouping key against the
// placement predicate it summarizes.
func TestDeepestLevelMatchesOnPath(t *testing.T) {
	g := Geometry{Levels: 6, Z: 1, BlockBytes: 8}
	for a := uint64(0); a < g.Leaves(); a += 3 {
		for b := uint64(0); b < g.Leaves(); b += 5 {
			dl := g.DeepestLevel(a, b)
			if !g.OnPath(a, b, dl) {
				t.Fatalf("DeepestLevel(%d,%d)=%d but OnPath is false", a, b, dl)
			}
			if dl+1 < g.Levels && g.OnPath(a, b, dl+1) {
				t.Fatalf("DeepestLevel(%d,%d)=%d but OnPath holds one level deeper", a, b, dl)
			}
		}
	}
}

// TestAccessAllocBudget enforces the zero-allocation hot path: steady-state
// writes allocate nothing; reads allocate only the returned payload copy.
func TestAccessAllocBudget(t *testing.T) {
	o, err := NewORAM(Geometry{Levels: 7, Z: 3, BlockBytes: 64}, testKey(5), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	// Warm up: touch every address so the stash free list, position map and
	// scratch buffers reach steady state.
	for i := 0; i < 400; i++ {
		if _, err := o.Access(OpWrite, uint64(i%64), data); err != nil {
			t.Fatal(err)
		}
	}
	var addr uint64
	if n := testing.AllocsPerRun(200, func() {
		if _, err := o.Access(OpWrite, addr%64, data); err != nil {
			t.Fatal(err)
		}
		addr++
	}); n > 1 {
		t.Fatalf("Access(OpWrite) allocates %.1f times per op, want ≤ 1", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := o.Access(OpRead, addr%64, nil); err != nil {
			t.Fatal(err)
		}
		addr++
	}); n > 2 {
		t.Fatalf("Access(OpRead) allocates %.1f times per op, want ≤ 2 (result buffer only)", n)
	}
	if err := o.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestRecursiveAccessAllocBudget extends the budget to the full recursive
// stack used by BenchmarkPathORAMAccess.
func TestRecursiveAccessAllocBudget(t *testing.T) {
	r, err := NewRecursive(RecursiveConfig{
		DataBlocks: 512, DataBlockBytes: 64, PosMapBlockBytes: 32, Z: 3, Recursion: 2,
	}, testKey(6), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := 0; i < 1024; i++ {
		if _, err := r.Access(OpWrite, uint64(i%512), data); err != nil {
			t.Fatal(err)
		}
	}
	var addr uint64
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Access(OpWrite, addr%512, data); err != nil {
			t.Fatal(err)
		}
		addr++
	}); n > 1 {
		t.Fatalf("Recursive.Access(OpWrite) allocates %.1f times per op, want ≤ 1", n)
	}
	// Reads reuse the stack's scratch result buffer: steady state allocates
	// nothing (the old code made a fresh result slice every call).
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Access(OpRead, addr%512, nil); err != nil {
			t.Fatal(err)
		}
		addr++
	}); n > 0 {
		t.Fatalf("Recursive.Access(OpRead) allocates %.1f times per op, want 0 (reused scratch)", n)
	}
}
