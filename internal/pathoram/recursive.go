package pathoram

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"tcoram/internal/crypt"
)

// LabelBytes is the packed size of one leaf label inside a position-map
// block. 4 bytes supports trees up to 2^32 leaves; recursive blocks of
// 32 bytes therefore hold 8 labels each, matching the fan-out used when
// sizing the paper's 3-level recursion (§9.1.2).
const LabelBytes = 4

// unassignedLabel marks a position-map slot whose block has never been
// accessed; the controller substitutes a fresh random leaf on first touch.
const unassignedLabel = uint32(0xFFFFFFFF)

// RecursiveConfig describes a recursive Path ORAM stack: one data ORAM plus
// Recursion position-map ORAMs, with the final (smallest) position map held
// on-chip.
type RecursiveConfig struct {
	// DataBlocks is the number of program blocks (cache lines) stored.
	DataBlocks uint64
	// DataBlockBytes is the data ORAM block size (paper: 64 B).
	DataBlockBytes int
	// PosMapBlockBytes is the recursive ORAM block size (paper: 32 B).
	PosMapBlockBytes int
	// Z is the bucket capacity for all ORAMs (paper: 3).
	Z int
	// Recursion is the number of position-map ORAM levels (paper: 3).
	Recursion int
}

// DefaultRecursiveConfig mirrors §9.1.2: Z = 3 everywhere, 64 B data blocks,
// 32 B position-map blocks, 3 levels of recursion.
func DefaultRecursiveConfig(dataBlocks uint64) RecursiveConfig {
	return RecursiveConfig{
		DataBlocks:       dataBlocks,
		DataBlockBytes:   64,
		PosMapBlockBytes: 32,
		Z:                3,
		Recursion:        3,
	}
}

// Validate reports whether the configuration is usable.
func (c RecursiveConfig) Validate() error {
	switch {
	case c.DataBlocks == 0:
		return fmt.Errorf("pathoram: DataBlocks must be positive")
	case c.DataBlockBytes < 1:
		return fmt.Errorf("pathoram: DataBlockBytes must be positive")
	case c.PosMapBlockBytes < LabelBytes:
		return fmt.Errorf("pathoram: PosMapBlockBytes must hold at least one label")
	case c.Z < 1:
		return fmt.Errorf("pathoram: Z must be positive")
	case c.Recursion < 0 || c.Recursion > 8:
		return fmt.Errorf("pathoram: Recursion must be in [0,8], got %d", c.Recursion)
	}
	return nil
}

// LabelsPerBlock is the position-map fan-out.
func (c RecursiveConfig) LabelsPerBlock() uint64 {
	return uint64(c.PosMapBlockBytes / LabelBytes)
}

// Geometries returns the tree shapes of the full stack: index 0 is the data
// ORAM, followed by position-map ORAMs from largest to smallest.
func (c RecursiveConfig) Geometries() []Geometry {
	out := []Geometry{GeometryForBlocks(c.DataBlocks, c.Z, c.DataBlockBytes)}
	blocks := c.DataBlocks
	fan := c.LabelsPerBlock()
	for i := 0; i < c.Recursion; i++ {
		blocks = (blocks + fan - 1) / fan
		out = append(out, GeometryForBlocks(blocks, c.Z, c.PosMapBlockBytes))
	}
	return out
}

// OnChipPosMapEntries is the size of the final position map kept in on-chip
// SRAM after recursion.
func (c RecursiveConfig) OnChipPosMapEntries() uint64 {
	blocks := c.DataBlocks
	fan := c.LabelsPerBlock()
	for i := 0; i < c.Recursion; i++ {
		blocks = (blocks + fan - 1) / fan
	}
	return blocks
}

// AccessBytes returns the total bytes moved per access in one direction
// (sum of all path reads) and round trip.
func (c RecursiveConfig) AccessBytes() (oneWay, roundTrip int) {
	for _, g := range c.Geometries() {
		oneWay += g.PathBytes()
	}
	return oneWay, 2 * oneWay
}

// Recursive is a functional recursive Path ORAM: the data ORAM's position
// map is stored in a smaller ORAM, and so on, with the final map on-chip.
// An access touches every level (smallest position map first), exactly the
// traffic pattern the timing model costs.
type Recursive struct {
	cfg   RecursiveConfig
	orams []*ORAM // orams[0] = data, orams[1..] = position maps, largest first
	// onChip is the final position map held in on-chip SRAM: a flat slice
	// indexed by block number, unassignedLabel for never-touched entries.
	onChip []uint32
	// onChipDirty, when non-nil, journals the on-chip indices rewritten
	// since the last capture (see positionMap.journal — same contract,
	// armed by TrackDirty, drained by CaptureDelta).
	onChipDirty map[uint64]struct{}
	rng         *rand.Rand
	// readBuf is the reused read-result scratch: Access(OpRead) copies the
	// block into it and returns it, so the steady-state recursive hot path
	// allocates nothing. The returned slice is only valid until the next
	// access.
	readBuf []byte

	Accesses      uint64
	DummyAccesses uint64
}

// NewRecursive builds and initializes the full stack on in-RAM storage.
func NewRecursive(cfg RecursiveConfig, key crypt.Key, rng *rand.Rand) (*Recursive, error) {
	return NewRecursiveOn(cfg, key, rng, nil)
}

// NewRecursiveOn is NewRecursive with every level's untrusted store built by
// factory (nil means in-RAM ByteStorage everywhere): level 0 is the data
// ORAM, levels 1..Recursion the position-map ORAMs from largest to smallest.
func NewRecursiveOn(cfg RecursiveConfig, key crypt.Key, rng *rand.Rand, factory StorageFactory) (*Recursive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	geoms := cfg.Geometries()
	orams := make([]*ORAM, len(geoms))
	for i, g := range geoms {
		store, err := newStore(factory, i, g)
		if err != nil {
			return nil, err
		}
		o, err := NewORAMOn(g, key, rng, store)
		if err != nil {
			return nil, err
		}
		orams[i] = o
	}
	onChip := make([]uint32, cfg.OnChipPosMapEntries())
	for i := range onChip {
		onChip[i] = unassignedLabel
	}
	return &Recursive{
		cfg:     cfg,
		orams:   orams,
		onChip:  onChip,
		rng:     rng,
		readBuf: make([]byte, cfg.DataBlockBytes),
	}, nil
}

// Config returns the stack configuration.
func (r *Recursive) Config() RecursiveConfig { return r.cfg }

// DataORAM exposes the data-level ORAM (test hook).
func (r *Recursive) DataORAM() *ORAM { return r.orams[0] }

// Blocks returns the addressable data-block count — the stack's geometry as
// seen by a client of the data address space.
func (r *Recursive) Blocks() uint64 { return r.cfg.DataBlocks }

// BlockBytes returns the data-block payload size.
func (r *Recursive) BlockBytes() int { return r.cfg.DataBlockBytes }

// EnableIntegrity attaches Merkle verification to every level of the stack —
// the data ORAM and each position-map ORAM — so tampering with any tree,
// including the recursion's metadata trees, fails the next path read. Must
// precede all accesses (each level's ORAM enforces this).
func (r *Recursive) EnableIntegrity() {
	for _, o := range r.orams {
		o.EnableIntegrity()
	}
}

// StashOccupancy aggregates stash sizes across the stack: the current total
// over all levels, and the sum of per-level peaks (an upper bound on any
// simultaneous total, which is what an on-chip SRAM budget must provision
// for since every level's stash coexists in the controller).
func (r *Recursive) StashOccupancy() (cur, peak int) {
	for _, o := range r.orams {
		c, p := o.StashOccupancy()
		cur += c
		peak += p
	}
	return cur, peak
}

// LevelStashPeaks appends each level's peak stash occupancy to dst — index
// 0 is the data ORAM, followed by position-map ORAMs from largest to
// smallest — and returns the extended slice.
func (r *Recursive) LevelStashPeaks(dst []int) []int {
	for _, o := range r.orams {
		_, p := o.StashOccupancy()
		dst = append(dst, p)
	}
	return dst
}

// StorageStats aggregates the cache and file-IO counters of every level's
// untrusted store.
func (r *Recursive) StorageStats() StorageStats {
	var sum StorageStats
	for _, o := range r.orams {
		sum = sum.add(o.StorageStats())
	}
	return sum
}

// posMapLevel reads-and-remaps the label for (level, index) where level 0 is
// the data ORAM's position map (stored in orams[1]) and the deepest level is
// on-chip. It returns the current leaf for the requested entry, assigning a
// fresh random one if unassigned, and writes back the new label newLabel.
func (r *Recursive) lookupAndRemap(level int, index uint64, newLabel uint32) (uint32, error) {
	fan := r.cfg.LabelsPerBlock()
	if level == r.cfg.Recursion {
		// On-chip map: direct read-modify-write, no external access. index
		// is bounded by OnChipPosMapEntries because the data address was
		// range-checked and each recursion level divides by the fan-out.
		cur := r.onChip[index]
		r.onChip[index] = newLabel
		if r.onChipDirty != nil {
			r.onChipDirty[index] = struct{}{}
		}
		return cur, nil
	}

	oram := r.orams[level+1] // position-map ORAM holding this level's labels
	blockIdx := index / fan
	slot := index % fan

	// Recursively obtain (and remap) the posmap block's own leaf.
	blockNewLeaf := uint32(r.rng.Int63n(int64(oram.Geometry().Leaves())))
	blockCurLeaf, err := r.lookupAndRemap(level+1, blockIdx, blockNewLeaf)
	if err != nil {
		return 0, err
	}

	// Access the posmap block in its ORAM at the leaf we just learned,
	// updating the slot to newLabel while the block sits in the stash so
	// the externally assigned leaves stay authoritative.
	var cur uint32
	err = oram.accessAt(blockIdx, blockCurLeaf, uint64(blockNewLeaf), func(data []byte) {
		cur = binary.LittleEndian.Uint32(data[slot*LabelBytes:])
		binary.LittleEndian.PutUint32(data[slot*LabelBytes:], newLabel)
	})
	if err != nil {
		return 0, err
	}
	return cur, nil
}

// accessAt is the recursion-aware variant of Access: the caller supplies the
// block's current leaf (curLeaf, or unassignedLabel for first touch) and its
// next leaf, and a mutate callback applied while the block is in the stash
// — before the path write-back, so the mutation and the remap land
// atomically.
func (o *ORAM) accessAt(addr uint64, curLeaf uint32, newLeaf uint64, mutate func(data []byte)) error {
	leaf := uint64(curLeaf)
	if curLeaf == unassignedLabel {
		leaf = o.randomLeaf()
	}
	if leaf >= o.geom.Leaves() {
		return fmt.Errorf("pathoram: leaf %d out of range", leaf)
	}
	o.posmap.Set(addr, newLeaf)
	if err := o.readPath(leaf); err != nil {
		return err
	}
	blk := o.stash.Get(addr)
	if blk == nil {
		o.stash.Put(Block{Addr: addr, Leaf: newLeaf, Data: o.zeroBuf})
		blk = o.stash.Get(addr)
	}
	blk.Leaf = newLeaf
	if mutate != nil {
		mutate(blk.Data)
	}
	if err := o.writePath(leaf); err != nil {
		return err
	}
	o.Accesses++
	return nil
}

// Update performs one recursive ORAM access that applies fn to the data
// block's payload while it sits in the data ORAM's stash: a read-modify-
// write through the whole stack in a single all-levels traversal. fn may
// inspect the current contents (zeroes if never written) and mutate them in
// place; it must not retain the slice past the call. This is the same RMW
// contract as ORAM.Update, which lets the server's request coalescing work
// identically over flat and recursive shard backends.
func (r *Recursive) Update(addr uint64, fn func(data []byte)) error {
	if addr >= r.cfg.DataBlocks {
		return fmt.Errorf("pathoram: data block %d out of range (%d blocks)", addr, r.cfg.DataBlocks)
	}
	dataORAM := r.orams[0]
	newLeaf := uint32(r.rng.Int63n(int64(dataORAM.Geometry().Leaves())))
	curLeaf, err := r.lookupAndRemap(0, addr, newLeaf)
	if err != nil {
		return err
	}
	if err := dataORAM.accessAt(addr, curLeaf, uint64(newLeaf), fn); err != nil {
		return err
	}
	r.Accesses++
	return nil
}

// Access performs one recursive ORAM access for the given data block. For
// OpRead the returned slice is a reused scratch buffer, valid only until
// the next access on this stack — copy it to retain.
func (r *Recursive) Access(op Op, addr uint64, data []byte) ([]byte, error) {
	if op == OpWrite && len(data) != r.cfg.DataBlockBytes {
		return nil, fmt.Errorf("pathoram: write payload is %d bytes, want %d", len(data), r.cfg.DataBlockBytes)
	}
	var out []byte
	err := r.Update(addr, func(buf []byte) {
		switch op {
		case OpWrite:
			copy(buf, data)
		case OpRead:
			if cap(r.readBuf) < len(buf) {
				r.readBuf = make([]byte, len(buf))
			}
			out = r.readBuf[:len(buf)]
			copy(out, buf)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DummyAccess performs an indistinguishable dummy access through the whole
// stack: every level reads and rewrites a random path.
func (r *Recursive) DummyAccess() error {
	for i := len(r.orams) - 1; i >= 0; i-- {
		if err := r.orams[i].DummyAccess(); err != nil {
			return err
		}
	}
	r.DummyAccesses++
	return nil
}
