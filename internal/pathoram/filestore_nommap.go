//go:build !unix

package pathoram

import (
	"errors"
	"fmt"
)

// MMapSupported reports whether this platform can serve bucket reads from a
// file mapping (FileStorageConfig.MMap).
const MMapSupported = false

// ErrMMapUnsupported is returned when FileStorageConfig.MMap is requested
// on a platform without mmap support; the caller falls back to the cached
// read path by not asking for the mapping.
var ErrMMapUnsupported = errors.New("pathoram: mmap bucket reads are not supported on this platform")

func (s *FileStorage) mapFile() error {
	return fmt.Errorf("%w (%s)", ErrMMapUnsupported, s.cfg.Path)
}

func (s *FileStorage) unmapFile() {}
