package pathoram

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
)

// This file implements the durable untrusted store: encrypted buckets at
// fixed offsets in a single file, fronted by an LRU page cache. The file is
// untrusted in exactly the sense DRAM is in the paper — integrity comes from
// the Merkle tree the trusted side keeps over the ciphertexts, and crash
// consistency from the sealed-checkpoint protocol in internal/server (dirty
// pages are pinned in RAM between checkpoints and carried as redo records
// inside the checkpoint, so the file is only ever a checkpoint plus an
// idempotent replay away from a verified state).

// fileMagic identifies a tcoram bucket file; the trailing digit is the
// layout version.
const fileMagic = "TCORAMF1"

// fileHeaderSize is the reserved on-disk header: magic, then the geometry
// the file was created for, so a daemon restarted with different flags
// fails fast instead of decrypting garbage.
const fileHeaderSize = 64

// ErrFileGeometry is returned when a bucket file's header does not match
// the geometry the store is being opened for.
var ErrFileGeometry = errors.New("pathoram: bucket file geometry mismatch")

// SyncPolicy selects when FileStorage calls fsync. SIGKILL does not lose
// OS-buffered writes, so SyncNone already survives process crashes; the
// stricter policies guard against power loss.
type SyncPolicy int

const (
	// SyncNone never fsyncs (crash-safe, not power-loss-safe). Default.
	SyncNone SyncPolicy = iota
	// SyncOnFlush fsyncs at the end of every Flush (checkpoint cadence).
	SyncOnFlush
	// SyncAlways fsyncs after every bucket write-out, including cache
	// evictions.
	SyncAlways
)

// ParseSyncPolicy maps the CLI spelling to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "none":
		return SyncNone, nil
	case "checkpoint":
		return SyncOnFlush, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("pathoram: unknown sync policy %q (want none, checkpoint or always)", s)
}

// FileStorageConfig configures a FileStorage.
type FileStorageConfig struct {
	// Path of the bucket file.
	Path string
	// CacheBuckets bounds the page cache (default 1024 buckets). Dirty
	// pages pinned by RetainDirty may grow the cache past the bound until
	// the next Flush.
	CacheBuckets int
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// MMap maps the bucket file read-only and serves clean-bucket reads
	// straight from the mapping instead of copying pages into the cache —
	// the read path for bucket files bigger than the configured page
	// cache. Writes are unaffected: they still buffer in pinned dirty
	// pages (the redo-in-checkpoint invariant), and dirty pages shadow the
	// mapping until Flush. Unix-only; construction fails elsewhere.
	MMap bool
}

// filePage is one cached bucket.
type filePage struct {
	idx   uint64
	dirty bool
	data  []byte
}

// FileStorage is a BucketStore over a file of fixed-offset encrypted
// buckets with an LRU page cache. It is single-goroutine like the ORAM that
// owns it. Writes are buffered in the cache; they reach the file on Flush,
// or on cache eviction when RetainDirty is off. With RetainDirty on (the
// steady state under the checkpoint protocol) dirty pages are pinned so the
// file never changes between Flush calls.
type FileStorage struct {
	geom       Geometry
	bucketSize int
	cfg        FileStorageConfig
	f          *os.File
	cache      map[uint64]*list.Element // idx -> element holding *filePage
	lru        *list.List               // front = most recently used
	dirty      int
	retain     bool
	mmap       []byte // read-only whole-file mapping when cfg.MMap
	stats      StorageStats
}

// CreateFileStorage creates (or truncates) a bucket file for g and sizes it
// to hold every bucket. The caller must write every bucket (ORAM
// initialization does) before the file holds valid ciphertexts.
func CreateFileStorage(g Geometry, cfg FileStorageConfig) (*FileStorage, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("pathoram: creating bucket file: %w", err)
	}
	s := newFileStorage(g, cfg, f)
	hdr := s.encodeHeader()
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pathoram: writing bucket file header: %w", err)
	}
	if err := f.Truncate(s.fileSize()); err != nil {
		f.Close()
		return nil, fmt.Errorf("pathoram: sizing bucket file: %w", err)
	}
	if cfg.Sync != SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if cfg.MMap {
		if err := s.mapFile(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// OpenFileStorage opens an existing bucket file and verifies its header
// matches g (ErrFileGeometry otherwise).
func OpenFileStorage(g Geometry, cfg FileStorageConfig) (*FileStorage, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("pathoram: opening bucket file: %w", err)
	}
	s := newFileStorage(g, cfg, f)
	var hdr [fileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pathoram: reading bucket file header: %w", err)
	}
	if want := s.encodeHeader(); hdr != want {
		f.Close()
		return nil, fmt.Errorf("%w: %s was not created for levels=%d z=%d blockBytes=%d",
			ErrFileGeometry, cfg.Path, g.Levels, g.Z, g.BlockBytes)
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() < s.fileSize() {
		f.Close()
		return nil, fmt.Errorf("%w: %s holds %d bytes, want %d", ErrFileGeometry, cfg.Path, fi.Size(), s.fileSize())
	}
	if cfg.MMap {
		if err := s.mapFile(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

func newFileStorage(g Geometry, cfg FileStorageConfig, f *os.File) *FileStorage {
	if cfg.CacheBuckets <= 0 {
		cfg.CacheBuckets = 1024
	}
	return &FileStorage{
		geom:       g,
		bucketSize: g.BucketCipherBytes(),
		cfg:        cfg,
		f:          f,
		cache:      make(map[uint64]*list.Element),
		lru:        list.New(),
	}
}

// encodeHeader packs the identifying header: magic plus the geometry and
// derived bucket size, zero-padded to fileHeaderSize.
func (s *FileStorage) encodeHeader() [fileHeaderSize]byte {
	var hdr [fileHeaderSize]byte
	copy(hdr[:8], fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.geom.Levels))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.geom.Z))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(s.geom.BlockBytes))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(s.bucketSize))
	return hdr
}

func (s *FileStorage) fileSize() int64 {
	return fileHeaderSize + int64(s.geom.Buckets())*int64(s.bucketSize)
}

func (s *FileStorage) bucketOffset(idx uint64) int64 {
	return fileHeaderSize + int64(idx)*int64(s.bucketSize)
}

// Path returns the backing file path.
func (s *FileStorage) Path() string { return s.cfg.Path }

// RetainDirty pins (on=true) or unpins dirty pages in the cache. While
// pinned, no write reaches the file outside Flush — the invariant the
// checkpoint redo protocol needs. Unpinned (during bulk initialization),
// eviction may write dirty pages out.
func (s *FileStorage) RetainDirty(on bool) { s.retain = on }

// DirtyCount returns the number of dirty cached buckets.
func (s *FileStorage) DirtyCount() int { return s.dirty }

// DirtyBuckets calls fn for every dirty cached bucket in ascending index
// order (deterministic checkpoint encoding). The slice aliases the cache
// page; fn must not retain it.
func (s *FileStorage) DirtyBuckets(fn func(idx uint64, ciphertext []byte)) {
	idxs := make([]uint64, 0, s.dirty)
	for idx, el := range s.cache {
		if el.Value.(*filePage).dirty {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		fn(idx, s.cache[idx].Value.(*filePage).data)
	}
}

// page returns the cached page for idx, loading it from the file when load
// is true and the page is absent. With load=false an absent page comes back
// zeroed — the BucketSlice path, whose caller overwrites the whole bucket.
func (s *FileStorage) page(idx uint64, load bool) *filePage {
	if el, ok := s.cache[idx]; ok {
		s.stats.CacheHits++
		s.lru.MoveToFront(el)
		return el.Value.(*filePage)
	}
	s.stats.CacheMisses++
	s.evictFor()
	p := &filePage{idx: idx, data: make([]byte, s.bucketSize)}
	if load {
		if _, err := s.f.ReadAt(p.data, s.bucketOffset(idx)); err != nil {
			panic(fmt.Sprintf("pathoram: reading bucket %d from %s: %v", idx, s.cfg.Path, err))
		}
		s.stats.FileReads++
	}
	s.cache[idx] = s.lru.PushFront(p)
	return p
}

// evictFor makes room for one page when the cache is full: the least
// recently used evictable page is dropped, written out first if dirty and
// unpinned. With every page dirty and pinned the cache grows past its bound
// (Flush shrinks the dirty set back to zero).
func (s *FileStorage) evictFor() {
	if len(s.cache) < s.cfg.CacheBuckets {
		return
	}
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		p := el.Value.(*filePage)
		if p.dirty {
			if s.retain {
				continue
			}
			s.writeOut(p)
		}
		s.lru.Remove(el)
		delete(s.cache, p.idx)
		return
	}
}

// writeOut persists one dirty page and clears its dirty bit.
func (s *FileStorage) writeOut(p *filePage) {
	if _, err := s.f.WriteAt(p.data, s.bucketOffset(p.idx)); err != nil {
		panic(fmt.Sprintf("pathoram: writing bucket %d to %s: %v", p.idx, s.cfg.Path, err))
	}
	s.stats.FileWrites++
	p.dirty = false
	s.dirty--
	if s.cfg.Sync == SyncAlways {
		if err := s.f.Sync(); err != nil {
			panic(fmt.Sprintf("pathoram: syncing %s: %v", s.cfg.Path, err))
		}
	}
}

// ReadBucket implements Storage. The returned slice aliases the cache page
// (or, under MMap, the file mapping) and is valid until the next operation
// on the store.
func (s *FileStorage) ReadBucket(idx uint64) []byte {
	if s.mmap != nil {
		// Dirty pages shadow the mapping: they hold writes the file has
		// not absorbed yet (pinned until Flush under the checkpoint
		// protocol). Everything else reads straight from the mapping — no
		// page copy, no cache churn, and after a Flush the mapping is
		// coherent with the flushed bytes (MAP_SHARED over the same file).
		if el, ok := s.cache[idx]; ok {
			if p := el.Value.(*filePage); p.dirty {
				s.stats.CacheHits++
				s.lru.MoveToFront(el)
				return p.data
			}
		}
		s.stats.MMapReads++
		off := s.bucketOffset(idx)
		return s.mmap[off : off+int64(s.bucketSize)]
	}
	return s.page(idx, true).data
}

// WriteBucket implements Storage.
func (s *FileStorage) WriteBucket(idx uint64, ciphertext []byte) {
	if len(ciphertext) != s.bucketSize {
		panic(fmt.Sprintf("pathoram: bucket ciphertext is %d bytes, want %d", len(ciphertext), s.bucketSize))
	}
	copy(s.BucketSlice(idx), ciphertext)
}

// BucketSlice implements BucketStore: the page is marked dirty and returned
// without a file read (the caller overwrites all of it — the cached
// adaptation of the zero-copy write-back contract).
func (s *FileStorage) BucketSlice(idx uint64) []byte {
	p := s.page(idx, false)
	if !p.dirty {
		p.dirty = true
		s.dirty++
	}
	return p.data
}

// Snapshot copies the raw stored bytes of bucket idx (adversary's view of
// the latest write, whether it reached the file yet or not).
func (s *FileStorage) Snapshot(idx uint64) []byte {
	out := make([]byte, s.bucketSize)
	copy(out, s.ReadBucket(idx))
	return out
}

// Flush writes every dirty page to the file (ascending index order) and
// fsyncs under SyncOnFlush or SyncAlways. After Flush the file matches the
// store's logical contents exactly.
func (s *FileStorage) Flush() error {
	idxs := make([]uint64, 0, s.dirty)
	for idx, el := range s.cache {
		if el.Value.(*filePage).dirty {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		p := s.cache[idx].Value.(*filePage)
		if _, err := s.f.WriteAt(p.data, s.bucketOffset(p.idx)); err != nil {
			return fmt.Errorf("pathoram: flushing bucket %d to %s: %w", p.idx, s.cfg.Path, err)
		}
		s.stats.FileWrites++
		p.dirty = false
		s.dirty--
	}
	if s.cfg.Sync != SyncNone {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("pathoram: syncing %s: %w", s.cfg.Path, err)
		}
	}
	return nil
}

// Close releases the mapping (if any) and the file handle without flushing
// (see BucketStore.Close).
func (s *FileStorage) Close() error {
	s.unmapFile()
	return s.f.Close()
}

// Stats implements BucketStore.
func (s *FileStorage) Stats() StorageStats { return s.stats }
