// Package sim wires the substrates into the paper's evaluated systems: a
// workload generator feeding the in-order core, the Table 1 cache
// hierarchy, and one of the §9.1.6 memory controllers behind the LLC —
// base_dram (flat-latency DRAM), base_oram (unshielded Path ORAM), a static
// shielded scheme, or the dynamic epoch/learner scheme. It produces the
// run-level and windowed statistics every figure of §9 is built from.
package sim

import (
	"fmt"

	"tcoram/internal/cache"
	"tcoram/internal/core"
	"tcoram/internal/cpu"
	"tcoram/internal/leakage"
	"tcoram/internal/pathoram"
	"tcoram/internal/power"
	"tcoram/internal/workload"
)

// Scheme identifies a memory-controller configuration from §9.1.6.
type Scheme uint8

const (
	// BaseDRAM is the insecure flat-latency DRAM baseline.
	BaseDRAM Scheme = iota
	// BaseORAM is Path ORAM with no timing protection.
	BaseORAM
	// StaticORAM is a shielded ORAM at a single fixed rate (zero ORAM
	// timing leakage).
	StaticORAM
	// DynamicORAM is the paper's contribution: epochs + rate learner.
	DynamicORAM
	// ShieldedDRAM is §10's "scheme without ORAM": rate enforcement over
	// commodity DRAM, with dummies as fixed-address reads. It assumes the
	// extra mechanisms §10 lists (row buffers disabled or reset to a
	// public state after each access, DRAM physically partitioned) so
	// that dummy and real operations are indistinguishable; addresses
	// remain UNPROTECTED — this guards only the timing channel.
	ShieldedDRAM
)

func (s Scheme) String() string {
	switch s {
	case BaseDRAM:
		return "base_dram"
	case BaseORAM:
		return "base_oram"
	case StaticORAM:
		return "static"
	case DynamicORAM:
		return "dynamic"
	case ShieldedDRAM:
		return "shielded_dram"
	}
	return "unknown"
}

// Config describes one simulation run.
type Config struct {
	// Scheme selects the memory controller.
	Scheme Scheme
	// StaticRate is the fixed rate for StaticORAM (e.g. 300, 500, 1300).
	StaticRate uint64
	// NumRates is |R| for DynamicORAM (default 4).
	NumRates int
	// EpochGrowth is the epoch length multiplier for DynamicORAM
	// (2 = doubling, 4, 8, 16; default 4).
	EpochGrowth uint64
	// EpochFirstLen is the simulated first-epoch length in cycles.
	// Defaults to 2^21 — the paper's 2^30 scaled down so scaled runs
	// experience the same number of transitions (DESIGN.md #4). Leakage
	// accounting always uses the paper-scale schedule.
	EpochFirstLen uint64
	// ORAMLatency is OLAT in cycles (default: the paper's 1488).
	ORAMLatency uint64
	// DRAMLatency is base_dram's flat latency (default 40).
	DRAMLatency uint64
	// Instructions is the measured run length (default 20M).
	Instructions uint64
	// WarmupInstrs is executed before measurement begins: caches warm up
	// and then all statistics, the epoch schedule and leakage accounting
	// reset — the scaled equivalent of the paper's 1–20 B instruction
	// fast-forward (§9.1.1). Default 3M; set NoWarmup to disable.
	WarmupInstrs uint64
	// NoWarmup disables the warmup phase (used by security tests that
	// need the slot trace anchored at cycle 0).
	NoWarmup bool
	// WindowInstrs is the stats window size (default 1M; the paper uses
	// 1B-instruction windows on 200B-instruction runs — same 1:200 scaled
	// granularity).
	WindowInstrs uint64
	// Seed drives the workload generator and core branch model.
	Seed uint64
	// Predictor/Discretizer select learner variants (ablations).
	Predictor   core.Predictor
	Discretizer core.Discretizer
	// RecordSlots forwards to the enforcer (adversary/security studies).
	RecordSlots bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.NumRates == 0 {
		c.NumRates = 4
	}
	if c.EpochGrowth == 0 {
		c.EpochGrowth = 4
	}
	if c.EpochFirstLen == 0 {
		c.EpochFirstLen = 1 << 21
	}
	if c.ORAMLatency == 0 {
		c.ORAMLatency = pathoram.PaperAccessLatency
	}
	if c.DRAMLatency == 0 {
		c.DRAMLatency = 40
	}
	if c.Instructions == 0 {
		c.Instructions = 20_000_000
	}
	if c.WarmupInstrs == 0 && !c.NoWarmup {
		c.WarmupInstrs = 3_000_000
	}
	if c.NoWarmup {
		c.WarmupInstrs = 0
	}
	if c.WindowInstrs == 0 {
		c.WindowInstrs = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StaticRate == 0 {
		c.StaticRate = 300
	}
	return c
}

// Name returns the configuration label used in the paper's figures, e.g.
// "base_oram", "static_300", "dynamic_R4_E4".
func (c Config) Name() string {
	switch c.Scheme {
	case BaseDRAM:
		return "base_dram"
	case BaseORAM:
		return "base_oram"
	case StaticORAM:
		return fmt.Sprintf("static_%d", c.withDefaults().StaticRate)
	case DynamicORAM:
		d := c.withDefaults()
		return fmt.Sprintf("dynamic_R%d_E%d", d.NumRates, d.EpochGrowth)
	case ShieldedDRAM:
		return fmt.Sprintf("shielded_dram_%d", c.withDefaults().StaticRate)
	}
	return "unknown"
}

// Window is one fixed-instruction-count stats window (Fig 2, Fig 7).
type Window struct {
	EndInstr    uint64
	EndCycle    uint64
	Cycles      uint64 // cycles spent in this window
	RealORAM    uint64 // real ORAM accesses (or DRAM fetches) this window
	DummyORAM   uint64
	IPC         float64
	InstrPerMem float64 // average instructions between memory accesses
}

// Result is the outcome of one run.
type Result struct {
	Config    Config
	Workload  string
	Instrs    uint64
	Cycles    uint64
	IPC       float64
	Core      cpu.Stats
	Cache     cache.Stats
	Mem       core.Stats // zero-valued for BaseDRAM
	LineXfers uint64     // BaseDRAM line transfers
	Power     power.Breakdown
	Windows   []Window
	// RateChanges is the enforcer history (DynamicORAM/StaticORAM).
	RateChanges []core.RateChange
	// Slots is the recorded access trace when RecordSlots was set.
	Slots []core.Slot
	// LeakageBits is the paper-scale accounting bound for this scheme's
	// ORAM timing channel.
	LeakageBits leakage.Bits
}

// PerfOverhead returns this result's slowdown versus a baseline run of the
// same workload (cycles ratio at equal instruction count).
func (r Result) PerfOverhead(base Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(base.Cycles)
}

// syncer is the optional controller interface for advancing background
// work (dummy slots) to a point in time.
type syncer interface{ Sync(t uint64) }

// Run executes one simulation and returns its result.
func Run(spec workload.Spec, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	// Phase weights span the whole stream including warmup, so a phase at
	// "60% of the run" lands at 60% of the measured instructions after
	// the warmup prefix is consumed.
	gen, err := workload.NewGenerator(spec, cfg.WarmupInstrs+cfg.Instructions, cfg.Seed)
	if err != nil {
		return Result{}, err
	}

	// Memory controller.
	var (
		port    cache.MemoryPort
		flat    *core.FlatMemory
		unshld  *core.UnshieldedORAM
		shld    *core.Enforcer
		accBits leakage.Bits
	)
	switch cfg.Scheme {
	case BaseDRAM:
		flat = core.NewFlatMemory(cfg.DRAMLatency)
		port = flat
	case BaseORAM:
		unshld = core.NewUnshieldedORAM(cfg.ORAMLatency)
		unshld.RecordSlots = cfg.RecordSlots
		port = unshld
		accBits = leakage.UnprotectedBitsApprox(float64(core.PaperTmax), int(cfg.ORAMLatency))
	case StaticORAM:
		shld, err = core.NewEnforcer(core.EnforcerConfig{
			ORAMLatency: cfg.ORAMLatency,
			Rates:       []uint64{cfg.StaticRate},
			InitialRate: cfg.StaticRate,
			RecordSlots: cfg.RecordSlots,
		})
		if err != nil {
			return Result{}, err
		}
		port = shld
		accBits = leakage.StaticBits()
	case DynamicORAM:
		rates, rerr := core.LogSpacedRates(cfg.NumRates, core.MinRate, core.MaxRate)
		if rerr != nil {
			return Result{}, rerr
		}
		shld, err = core.NewEnforcer(core.EnforcerConfig{
			ORAMLatency: cfg.ORAMLatency,
			Rates:       rates,
			InitialRate: core.InitialRate,
			Schedule:    core.EpochSchedule{FirstLen: cfg.EpochFirstLen, Growth: cfg.EpochGrowth},
			Predictor:   cfg.Predictor,
			Discretizer: cfg.Discretizer,
			RecordSlots: cfg.RecordSlots,
		})
		if err != nil {
			return Result{}, err
		}
		port = shld
		accBits = leakage.PaperBudget(cfg.NumRates, cfg.EpochGrowth).ORAMBits()
	case ShieldedDRAM:
		// §10: the enforcer over commodity DRAM — "slots" are single
		// line transfers at the flat DRAM latency.
		shld, err = core.NewEnforcer(core.EnforcerConfig{
			ORAMLatency: cfg.DRAMLatency,
			Rates:       []uint64{cfg.StaticRate},
			InitialRate: cfg.StaticRate,
			RecordSlots: cfg.RecordSlots,
		})
		if err != nil {
			return Result{}, err
		}
		port = shld
		accBits = leakage.StaticBits()
	default:
		return Result{}, fmt.Errorf("sim: unknown scheme %d", cfg.Scheme)
	}

	hier := cache.NewHierarchy(cache.DefaultConfig(), port)
	c := cpu.NewCore(cpu.Config{
		CodeBytes:       gen.CodeBytes(),
		BranchTakenProb: 128,
		Seed:            cfg.Seed,
	}, hier)

	// Warmup: execute, then reset all statistics and re-anchor the epoch
	// schedule (fast-forward methodology, §9.1.1).
	if cfg.WarmupInstrs > 0 {
		for i := uint64(0); i < cfg.WarmupInstrs; i++ {
			ins, ok := gen.Next()
			if !ok {
				break
			}
			c.Step(ins)
		}
		if s, ok := port.(syncer); ok {
			s.Sync(c.Now())
		}
		c.ResetStats()
		hier.ResetStats()
		switch {
		case flat != nil:
			flat.ResetStats()
		case unshld != nil:
			unshld.ResetStats()
		default:
			shld.ResetAt(c.Now())
		}
	}
	measureStart := c.Now()

	// Main loop with windowed stats.
	res := Result{Config: cfg, Workload: spec.ID()}
	var (
		winStartCycle = measureStart
		winStartReal  uint64
		winStartDummy uint64
		nextWindow    = cfg.WindowInstrs
	)
	memStats := func() (real, dummy uint64) {
		switch {
		case flat != nil:
			return flat.Fetches + flat.Writebacks, 0
		case unshld != nil:
			s := unshld.Stats()
			return s.RealAccesses, 0
		default:
			s := shld.Stats()
			return s.RealAccesses, s.DummyAccesses
		}
	}
	for i := uint64(0); i < cfg.Instructions; i++ {
		ins, ok := gen.Next()
		if !ok {
			break
		}
		c.Step(ins)
		if c.Instructions() >= nextWindow {
			now := c.Now()
			if s, ok := port.(syncer); ok {
				s.Sync(now)
			}
			real, dummy := memStats()
			w := Window{
				EndInstr:  c.Instructions(),
				EndCycle:  now,
				Cycles:    now - winStartCycle,
				RealORAM:  real - winStartReal,
				DummyORAM: dummy - winStartDummy,
			}
			if w.Cycles > 0 {
				w.IPC = float64(cfg.WindowInstrs) / float64(w.Cycles)
			}
			if w.RealORAM > 0 {
				w.InstrPerMem = float64(cfg.WindowInstrs) / float64(w.RealORAM)
			} else {
				w.InstrPerMem = float64(cfg.WindowInstrs)
			}
			res.Windows = append(res.Windows, w)
			winStartCycle, winStartReal, winStartDummy = now, real, dummy
			nextWindow += cfg.WindowInstrs
		}
	}
	end := hier.Flush(c.Now())
	if s, ok := port.(syncer); ok {
		s.Sync(end)
	}

	res.Instrs = c.Instructions()
	res.Cycles = end - measureStart
	res.Core = c.Stats()
	res.Core.Cycles = res.Cycles
	res.Cache = hier.Stats()
	if res.Cycles > 0 {
		res.IPC = float64(res.Instrs) / float64(res.Cycles)
	}
	res.LeakageBits = accBits

	model := power.NewModel()
	switch {
	case flat != nil:
		res.LineXfers = flat.LineTransfers()
		res.Power = model.EvaluateDRAM(res.Core, res.Cache, flat)
	case unshld != nil:
		res.Mem = unshld.Stats()
		res.Slots = unshld.Slots()
		res.Power = model.EvaluateORAM(res.Core, res.Cache, res.Mem)
	default:
		res.Mem = shld.Stats()
		res.RateChanges = shld.RateChanges()
		res.Slots = shld.Slots()
		if cfg.Scheme == ShieldedDRAM {
			// Every slot — real or dummy — moves one cache line through
			// the DRAM controller (plus the absorbed writebacks).
			res.LineXfers = res.Mem.TotalAccesses() + res.Mem.WritebacksDone
			res.Power = power.Breakdown{
				CoreNJ:   model.CoreEnergy(res.Core, res.Cache),
				MemoryNJ: model.DRAMEnergy(res.LineXfers),
				Cycles:   res.Core.Cycles,
			}
		} else {
			res.Power = model.EvaluateORAM(res.Core, res.Cache, res.Mem)
		}
	}
	return res, nil
}
