package sim

import (
	"testing"

	"tcoram/internal/workload"
)

// quick run sizes: calibration assertions use modest instruction counts so
// the suite stays fast; the full experiment harness uses longer runs.
const (
	qInstr  = 4_000_000
	qWarmup = 2_000_000
)

func quickRun(t *testing.T, spec workload.Spec, cfg Config) Result {
	t.Helper()
	if cfg.Instructions == 0 {
		cfg.Instructions = qInstr
	}
	if cfg.WarmupInstrs == 0 {
		cfg.WarmupInstrs = qWarmup
	}
	r, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Scheme: BaseDRAM}, "base_dram"},
		{Config{Scheme: BaseORAM}, "base_oram"},
		{Config{Scheme: StaticORAM, StaticRate: 300}, "static_300"},
		{Config{Scheme: StaticORAM, StaticRate: 1300}, "static_1300"},
		{Config{Scheme: DynamicORAM, NumRates: 4, EpochGrowth: 4}, "dynamic_R4_E4"},
		{Config{Scheme: DynamicORAM, NumRates: 16, EpochGrowth: 2}, "dynamic_R16_E2"},
	}
	for _, tc := range cases {
		if got := tc.cfg.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
	if BaseDRAM.String() != "base_dram" || DynamicORAM.String() != "dynamic" {
		t.Fatal("Scheme.String mismatch")
	}
}

func TestBaseDRAMIPCInPaperBand(t *testing.T) {
	// §9.1.6: typical SPEC benchmarks run at IPC 0.15–0.36 on base_dram.
	// Our synthetic analogues must stay near that band (we allow modest
	// spill for the most compute-bound kernels).
	for _, spec := range workload.Suite() {
		r := quickRun(t, spec, Config{Scheme: BaseDRAM})
		if r.IPC < 0.12 || r.IPC > 0.60 {
			t.Errorf("%s: base_dram IPC = %.3f, want ≈0.15–0.36 band", spec.ID(), r.IPC)
		}
	}
}

func TestBaseDRAMPowerScale(t *testing.T) {
	// §9.1.6: base_dram power 0.055–0.086 W; our model lands on the same
	// order (0.05–0.20 W) — see EXPERIMENTS.md for the measured table.
	for _, spec := range []workload.Spec{workload.MCF(), workload.Hmmer()} {
		r := quickRun(t, spec, Config{Scheme: BaseDRAM})
		if w := r.Power.Watts(); w < 0.05 || w > 0.25 {
			t.Errorf("%s: base_dram power = %.3f W, want 0.05–0.25", spec.ID(), w)
		}
	}
}

func TestBaseORAMOverheadShape(t *testing.T) {
	// §9.3: base_oram ≈ 3.35× performance over base_dram on average; mcf
	// is the most ORAM-sensitive, hmmer the least.
	mcfBase := quickRun(t, workload.MCF(), Config{Scheme: BaseDRAM})
	mcfORAM := quickRun(t, workload.MCF(), Config{Scheme: BaseORAM})
	hmBase := quickRun(t, workload.Hmmer(), Config{Scheme: BaseDRAM})
	hmORAM := quickRun(t, workload.Hmmer(), Config{Scheme: BaseORAM})
	mcfX := mcfORAM.PerfOverhead(mcfBase)
	hmX := hmORAM.PerfOverhead(hmBase)
	if mcfX < 5 || mcfX > 12 {
		t.Errorf("mcf base_oram overhead = %.2f×, want 5–12×", mcfX)
	}
	if hmX < 1.0 || hmX > 1.8 {
		t.Errorf("hmmer base_oram overhead = %.2f×, want 1.0–1.8×", hmX)
	}
	if mcfX < 3*hmX {
		t.Errorf("mcf (%.2f×) should dwarf hmmer (%.2f×)", mcfX, hmX)
	}
}

func TestStaticSchemesOrdering(t *testing.T) {
	// For a memory-bound workload, slower static rates cost more
	// performance: static_300 < static_500 < static_1300.
	spec := workload.MCF()
	s300 := quickRun(t, spec, Config{Scheme: StaticORAM, StaticRate: 300})
	s500 := quickRun(t, spec, Config{Scheme: StaticORAM, StaticRate: 500})
	s1300 := quickRun(t, spec, Config{Scheme: StaticORAM, StaticRate: 1300})
	if !(s300.Cycles < s500.Cycles && s500.Cycles < s1300.Cycles) {
		t.Fatalf("static cycle ordering violated: %d, %d, %d", s300.Cycles, s500.Cycles, s1300.Cycles)
	}
	// And a compute-bound workload burns more power at faster rates.
	h300 := quickRun(t, workload.Hmmer(), Config{Scheme: StaticORAM, StaticRate: 300})
	h1300 := quickRun(t, workload.Hmmer(), Config{Scheme: StaticORAM, StaticRate: 1300})
	if h300.Power.Watts() <= h1300.Power.Watts() {
		t.Fatalf("hmmer power at 300 (%.3f) should exceed at 1300 (%.3f)",
			h300.Power.Watts(), h1300.Power.Watts())
	}
}

func TestDynamicBeatsStaticTradeoff(t *testing.T) {
	// The paper's core claim (§9.3): the dynamic scheme approaches
	// base_oram's performance while spending far less power than a fast
	// static scheme on compute-bound workloads.
	spec := workload.Hmmer()
	dyn := quickRun(t, spec, Config{Scheme: DynamicORAM, EpochFirstLen: 1 << 19})
	s300 := quickRun(t, spec, Config{Scheme: StaticORAM, StaticRate: 300})
	if dyn.Power.Watts() >= s300.Power.Watts()*0.8 {
		t.Fatalf("dynamic power (%.3f W) should be well below static_300 (%.3f W) for hmmer",
			dyn.Power.Watts(), s300.Power.Watts())
	}
	// And the dynamic scheme stays within ~2× of base_oram's cycles.
	oram := quickRun(t, spec, Config{Scheme: BaseORAM})
	if float64(dyn.Cycles) > 2.0*float64(oram.Cycles) {
		t.Fatalf("dynamic %d cycles vs base_oram %d: too slow", dyn.Cycles, oram.Cycles)
	}
}

func TestDynamicSelectsFastRateForMemoryBound(t *testing.T) {
	r := quickRun(t, workload.MCF(), Config{Scheme: DynamicORAM, EpochFirstLen: 1 << 19})
	if len(r.RateChanges) < 2 {
		t.Fatalf("no epoch transitions: %v", r.RateChanges)
	}
	last := r.RateChanges[len(r.RateChanges)-1]
	if last.Rate != 256 {
		t.Fatalf("mcf settled on rate %d, want 256 (fastest)", last.Rate)
	}
}

func TestDynamicSelectsSlowRateForComputeBound(t *testing.T) {
	r := quickRun(t, workload.Hmmer(), Config{Scheme: DynamicORAM, EpochFirstLen: 1 << 19})
	last := r.RateChanges[len(r.RateChanges)-1]
	if last.Rate < 1290 {
		t.Fatalf("hmmer settled on rate %d, want ≥ 1290", last.Rate)
	}
}

func TestWindowsCoverRun(t *testing.T) {
	r := quickRun(t, workload.Libquantum(), Config{
		Scheme: BaseORAM, Instructions: 3_000_000, WindowInstrs: 500_000,
	})
	if len(r.Windows) != 6 {
		t.Fatalf("windows = %d, want 6", len(r.Windows))
	}
	var cycles uint64
	for i, w := range r.Windows {
		cycles += w.Cycles
		if w.IPC <= 0 {
			t.Fatalf("window %d IPC = %v", i, w.IPC)
		}
		if w.EndInstr != uint64(i+1)*500_000 {
			t.Fatalf("window %d ends at instr %d", i, w.EndInstr)
		}
	}
	if cycles > r.Cycles {
		t.Fatalf("window cycles %d exceed total %d", cycles, r.Cycles)
	}
}

func TestWindowAccessRates(t *testing.T) {
	// Fig 2's metric: average instructions between ORAM accesses, per
	// window; input variants must differ strongly.
	diff := quickRun(t, workload.PerlbenchInput("diffmail"), Config{
		Scheme: BaseORAM, Instructions: 3_000_000, WindowInstrs: 500_000,
	})
	split := quickRun(t, workload.PerlbenchInput("splitmail"), Config{
		Scheme: BaseORAM, Instructions: 3_000_000, WindowInstrs: 500_000,
	})
	avg := func(r Result) float64 {
		var s float64
		for _, w := range r.Windows {
			s += w.InstrPerMem
		}
		return s / float64(len(r.Windows))
	}
	ratio := avg(split) / avg(diff)
	if ratio < 20 {
		t.Fatalf("splitmail/diffmail access-gap ratio = %.1f, want ≥ 20 (paper: ~80×)", ratio)
	}
}

func TestLeakageBitsPerScheme(t *testing.T) {
	static := quickRun(t, workload.Hmmer(), Config{Scheme: StaticORAM, StaticRate: 300, Instructions: 1_000_000, WarmupInstrs: 1})
	if static.LeakageBits != 0 {
		t.Fatalf("static leakage = %v, want 0", static.LeakageBits)
	}
	dyn := quickRun(t, workload.Hmmer(), Config{Scheme: DynamicORAM, NumRates: 4, EpochGrowth: 4, Instructions: 1_000_000, WarmupInstrs: 1})
	if float64(dyn.LeakageBits) != 32 {
		t.Fatalf("dynamic_R4_E4 leakage = %v, want 32 bits", dyn.LeakageBits)
	}
	oram := quickRun(t, workload.Hmmer(), Config{Scheme: BaseORAM, Instructions: 1_000_000, WarmupInstrs: 1})
	if float64(oram.LeakageBits) < 1e9 {
		t.Fatalf("base_oram leakage = %v, want astronomical", oram.LeakageBits)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := quickRun(t, workload.Gobmk(), Config{Scheme: DynamicORAM, Instructions: 2_000_000, Seed: 9})
	b := quickRun(t, workload.Gobmk(), Config{Scheme: DynamicORAM, Instructions: 2_000_000, Seed: 9})
	if a.Cycles != b.Cycles || a.Mem != b.Mem {
		t.Fatalf("nondeterministic run: %d/%d cycles", a.Cycles, b.Cycles)
	}
}

func TestSeedChangesRun(t *testing.T) {
	a := quickRun(t, workload.Gobmk(), Config{Scheme: BaseDRAM, Instructions: 2_000_000, Seed: 1})
	b := quickRun(t, workload.Gobmk(), Config{Scheme: BaseDRAM, Instructions: 2_000_000, Seed: 2})
	if a.Cycles == b.Cycles {
		t.Fatal("different seeds produced identical cycle counts")
	}
}

func TestDummyFractionReported(t *testing.T) {
	// §9.3 footnote: on average 34% of the dynamic scheme's accesses are
	// dummies. Check the statistic is populated and sane.
	r := quickRun(t, workload.Sjeng(), Config{Scheme: DynamicORAM, EpochFirstLen: 1 << 19})
	if f := r.Mem.DummyFraction(); f <= 0 || f >= 1 {
		t.Fatalf("dummy fraction = %v, want in (0,1)", f)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Run(workload.MCF(), Config{Scheme: Scheme(99)}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Run(workload.Spec{}, Config{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestNoWarmupSkipsWarmup(t *testing.T) {
	r := quickRun(t, workload.Hmmer(), Config{Scheme: BaseDRAM, Instructions: 500_000, NoWarmup: true, WarmupInstrs: 1})
	if r.Instrs != 500_000 {
		t.Fatalf("instrs = %d", r.Instrs)
	}
}

func TestShieldedDRAMScheme(t *testing.T) {
	// §10: the enforcer works without ORAM given indistinguishable dummy
	// DRAM operations. Timing is protected (zero leakage bits) at far
	// lower cost than ORAM-based schemes.
	spec := workload.Sjeng()
	sd := quickRun(t, spec, Config{Scheme: ShieldedDRAM, StaticRate: 300})
	if sd.LeakageBits != 0 {
		t.Fatalf("shielded_dram leakage = %v, want 0", sd.LeakageBits)
	}
	if sd.Mem.DummyAccesses == 0 {
		t.Fatal("shielded_dram issued no dummy accesses")
	}
	// Far cheaper than the ORAM-based static scheme (one line per slot
	// instead of 24.5 KB per slot), both in time and energy.
	so := quickRun(t, spec, Config{Scheme: StaticORAM, StaticRate: 300})
	if sd.Cycles >= so.Cycles {
		t.Fatalf("shielded_dram (%d cycles) should beat static ORAM (%d)", sd.Cycles, so.Cycles)
	}
	if sd.Power.Watts() >= so.Power.Watts()/2 {
		t.Fatalf("shielded_dram power %.3f W should be well under static ORAM %.3f W",
			sd.Power.Watts(), so.Power.Watts())
	}
	// But slower than raw base_dram: the slot grid delays misses.
	bd := quickRun(t, spec, Config{Scheme: BaseDRAM})
	if sd.Cycles <= bd.Cycles {
		t.Fatal("rate enforcement should cost cycles vs unshielded DRAM")
	}
	if got := sd.Config.Name(); got != "shielded_dram_300" {
		t.Fatalf("Name() = %q", got)
	}
	if ShieldedDRAM.String() != "shielded_dram" {
		t.Fatal("Scheme.String mismatch")
	}
}
