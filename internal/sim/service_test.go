package sim

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeLatencies(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := SummarizeLatencies(samples)
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 52*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 98*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if z := SummarizeLatencies(nil); z.N != 0 || z.Max != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestServiceReport(t *testing.T) {
	r := ServiceReport{
		Scenario:      "uniform",
		Clients:       8,
		Shards:        4,
		Ops:           1000,
		Elapsed:       2 * time.Second,
		RealAccesses:  900,
		DummyAccesses: 300,
	}
	if got := r.Throughput(); got != 500 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := r.DummyFraction(); got != 0.25 {
		t.Fatalf("DummyFraction = %v", got)
	}
	if (ServiceReport{}).Throughput() != 0 || (ServiceReport{}).DummyFraction() != 0 {
		t.Fatal("zero report should report zero rates")
	}

	tbl := ServiceReportTable("loadgen")
	r.Row(tbl)
	out := tbl.String()
	if !strings.Contains(out, "uniform") || !strings.Contains(out, "500") {
		t.Fatalf("table missing fields:\n%s", out)
	}
}
