package sim

import (
	"fmt"
	"sort"
	"time"

	"tcoram/internal/stats"
)

// This file holds the run-level statistics types shared between the
// cycle-accurate simulator world and the wall-clock service world
// (internal/server, cmd/loadgen): the simulator reports per-window IPC and
// dummy fractions over simulated cycles, the server reports throughput and
// latency quantiles over wall time, and both need to land in the same
// tables and perf-trajectory records.

// LatencySummary condenses a latency sample into the quantiles the loadgen
// report and the scaling benchmark publish.
type LatencySummary struct {
	N                  int
	Mean               time.Duration
	P50, P95, P99, Max time.Duration
}

// SummarizeLatencies computes a LatencySummary. The input is not retained;
// it is sorted in place.
func SummarizeLatencies(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	xs := make([]float64, len(samples))
	var sum time.Duration
	for i, s := range samples {
		xs[i] = float64(s)
		sum += s
	}
	return LatencySummary{
		N:    len(samples),
		Mean: sum / time.Duration(len(samples)),
		P50:  time.Duration(stats.Quantile(xs, 0.50)),
		P95:  time.Duration(stats.Quantile(xs, 0.95)),
		P99:  time.Duration(stats.Quantile(xs, 0.99)),
		Max:  samples[len(samples)-1],
	}
}

// ServiceReport is the outcome of one load scenario against the concurrent
// ORAM service — the wall-clock analogue of Result. Zero Lost and Corrupted
// counts are the correctness acceptance bar for every scenario.
type ServiceReport struct {
	Scenario string
	Clients  int
	Shards   int

	Ops     uint64
	Reads   uint64
	Writes  uint64
	Elapsed time.Duration

	Latency LatencySummary

	// RealAccesses/DummyAccesses aggregate the per-shard enforcer stats over
	// the scenario's duration; DummyFraction is the observed share of slots
	// that carried no demand (the §9.3 metric, measured on live traffic).
	RealAccesses  uint64
	DummyAccesses uint64

	// RateChanges counts the epoch transitions that occurred across shards
	// during the scenario — each one an observable lg|R|-bit rate choice —
	// and LeakedBits is the corresponding ORAM-timing-channel leakage. Both
	// are zero under a static schedule.
	RateChanges uint64
	LeakedBits  float64

	// Lost counts requests that errored or timed out; Corrupted counts reads
	// whose payload failed validation.
	Lost      uint64
	Corrupted uint64
}

// Throughput returns completed operations per second.
func (r ServiceReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// DummyFraction returns the observed share of ORAM accesses that were
// dummies during the scenario.
func (r ServiceReport) DummyFraction() float64 {
	t := r.RealAccesses + r.DummyAccesses
	if t == 0 {
		return 0
	}
	return float64(r.DummyAccesses) / float64(t)
}

// Row renders the report as a stats.Table row; Header gives the matching
// column set.
func (r ServiceReport) Row(t *stats.Table) {
	t.AddRow(
		r.Scenario,
		r.Clients,
		r.Shards,
		r.Ops,
		fmt.Sprintf("%.0f", r.Throughput()),
		r.Latency.P50.Round(time.Microsecond).String(),
		r.Latency.P95.Round(time.Microsecond).String(),
		r.Latency.P99.Round(time.Microsecond).String(),
		fmt.Sprintf("%.3f", r.DummyFraction()),
		r.RateChanges,
		fmt.Sprintf("%.1f", r.LeakedBits),
		r.Lost,
		r.Corrupted,
	)
}

// ServiceReportTable builds the table loadgen prints, one Row per scenario.
func ServiceReportTable(title string) *stats.Table {
	return stats.NewTable(title,
		"scenario", "clients", "shards", "ops", "ops/s",
		"p50", "p95", "p99", "dummy-frac", "rate-chg", "leak-bits", "lost", "corrupt")
}
