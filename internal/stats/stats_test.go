package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("has,comma", `has"quote`)
	var b strings.Builder
	tb.CSV(&b)
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not escaped: %q", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote not escaped: %q", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %q", out)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.95, 4.8}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
	if Quantile([]float64{7}, 0.99) != 7 {
		t.Error("single-element quantile")
	}
}

func TestChiSquareUniform(t *testing.T) {
	if got := ChiSquareUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Fatalf("uniform chi2 = %v, want 0", got)
	}
	if got := ChiSquareUniform([]int{40, 0, 0, 0}); got <= 0 {
		t.Fatalf("skewed chi2 = %v, want > 0", got)
	}
	if ChiSquareUniform(nil) != 0 {
		t.Fatal("chi2(nil) != 0")
	}
	if ChiSquareUniform([]int{0, 0}) != 0 {
		t.Fatal("chi2(zeros) != 0")
	}
}
