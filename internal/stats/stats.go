// Package stats provides the small numeric and formatting helpers the
// experiment harness shares: aligned text tables, CSV emission, series
// summaries and a chi-square uniformity check used by the security tests.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them as an aligned text table or CSV.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 3
// decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned text form.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// CSV writes the comma-separated form (header row first).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any x ≤ 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Quantile returns the q-quantile (q in [0,1]) of xs by linear
// interpolation between order statistics. xs must be sorted ascending; the
// caller keeps ownership. Returns 0 for empty input.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// ChiSquareUniform computes the chi-square statistic of observed counts
// against a uniform expectation.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	expected := float64(total) / float64(len(counts))
	if expected == 0 {
		return 0
	}
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}
