package cluster

import (
	"strings"
	"testing"

	"tcoram/internal/core"
	"tcoram/internal/server"
)

// TestRoutingPartition pins the routing function's two load-bearing
// properties for a range of cluster sizes: every address is owned by
// exactly one (node, local) pair — no address served by two nodes — and the
// mapping is a pure function of the address, so it is identical across
// proxy restarts by construction.
func TestRoutingPartition(t *testing.T) {
	const blocks = 4096
	for _, n := range []int{1, 2, 3, 5, 8} {
		seen := make(map[[2]uint64]uint64, blocks)
		for addr := uint64(0); addr < blocks; addr++ {
			node := NodeOf(addr, n)
			if node < 0 || node >= n {
				t.Fatalf("n=%d: NodeOf(%d) = %d out of range", n, addr, node)
			}
			local := LocalAddr(addr, n)
			key := [2]uint64{uint64(node), local}
			if prev, dup := seen[key]; dup {
				t.Fatalf("n=%d: addresses %d and %d both land on node %d local %d", n, prev, addr, node, local)
			}
			seen[key] = addr
			if back := GlobalAddr(local, node, n); back != addr {
				t.Fatalf("n=%d: GlobalAddr(LocalAddr(%d), NodeOf(%d)) = %d", n, addr, addr, back)
			}
			// Re-evaluation gives the same owner: the function has no state
			// to drift between restarts.
			if NodeOf(addr, n) != node || LocalAddr(addr, n) != local {
				t.Fatalf("n=%d: routing of %d is not deterministic", n, addr)
			}
		}
		// Modulo routing fills nodes evenly: every node's local space for
		// `blocks` global addresses is at most ceil(blocks/n).
		perNode := make(map[int]uint64)
		for addr := uint64(0); addr < blocks; addr++ {
			if l := LocalAddr(addr, n); l >= perNode[NodeOf(addr, n)] {
				perNode[NodeOf(addr, n)] = l + 1
			}
		}
		limit := (uint64(blocks) + uint64(n) - 1) / uint64(n)
		for node, used := range perNode {
			if used > limit {
				t.Fatalf("n=%d: node %d needs %d local blocks, want ≤ %d", n, node, used, limit)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; empty = valid
	}{
		{"no nodes", Config{}, "no nodes"},
		{"empty addr", Config{Nodes: []string{"a:1", ""}}, "empty address"},
		{"duplicate node", Config{Nodes: []string{"a:1", "b:2", "a:1"}}, "same address"},
		{"negative conns", Config{Nodes: []string{"a:1"}, ConnsPerNode: -1}, "ConnsPerNode"},
		{"negative budget", Config{Nodes: []string{"a:1"}, LeakageBudgetBits: -1}, "LeakageBudgetBits"},
		{"ok", Config{Nodes: []string{"a:1", "b:2"}}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseNodes(t *testing.T) {
	got, err := ParseNodes(" a:1, b:2 ,,c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("ParseNodes = %v", got)
	}
	if _, err := ParseNodes(" , "); err == nil {
		t.Fatal("empty list parsed without error")
	}
}

// TestAggregate: leaked bits sum across nodes, shard entries keep their
// per-node identity, and the single cluster budget is judged against the
// sum — two nodes individually under budget must still trip a cluster
// budget their sum exceeds.
func TestAggregate(t *testing.T) {
	nodes := []server.Stats{
		{LeakedBits: 4, Shards: []server.ShardStats{
			{Shard: 0, LeakedBits: 4, RateChanges: []core.RateChange{{Epoch: 0, Rate: 995}, {Epoch: 1, Rate: 45}}},
		}},
		{LeakedBits: 6, Shards: []server.ShardStats{
			{Shard: 0, LeakedBits: 2},
			{Shard: 1, LeakedBits: 4},
		}},
	}
	agg := Aggregate(nodes, 2048, 64, 8)
	if agg.LeakedBits != 10 {
		t.Errorf("LeakedBits = %v, want 10", agg.LeakedBits)
	}
	if !agg.LeakageExceeded {
		t.Error("cluster budget 8 < 10 leaked, but LeakageExceeded is false")
	}
	if len(agg.Shards) != 3 {
		t.Fatalf("flattened %d shards, want 3", len(agg.Shards))
	}
	wantNodes := []int{0, 1, 1}
	wantShards := []int{0, 0, 1}
	for i, sh := range agg.Shards {
		if sh.Node != wantNodes[i] || sh.Shard != wantShards[i] {
			t.Errorf("shard entry %d = (node %d, shard %d), want (%d, %d)",
				i, sh.Node, sh.Shard, wantNodes[i], wantShards[i])
		}
	}
	// The per-shard rate-change history survives aggregation verbatim —
	// that is what cluster-level adversary replay consumes.
	if len(agg.Shards[0].RateChanges) != 2 {
		t.Errorf("rate_changes history lost in aggregation: %v", agg.Shards[0].RateChanges)
	}
	if agg.Blocks != 2048 || agg.BlockBytes != 64 || agg.LeakageBudgetBits != 8 {
		t.Errorf("geometry/budget = (%d, %d, %v)", agg.Blocks, agg.BlockBytes, agg.LeakageBudgetBits)
	}
	under := Aggregate(nodes, 2048, 64, 16)
	if under.LeakageExceeded {
		t.Error("budget 16 ≥ 10 leaked, but LeakageExceeded is true")
	}
}

// unpacedNodeCfg is a fast store shape for routing-semantics tests that do
// not care about pacing.
func unpacedNodeCfg(blocks uint64) server.Config {
	return server.Config{Shards: 2, Blocks: blocks, BlockBytes: 64, Unpaced: true}
}

// TestRouterRestartDeterminism: data written through one router instance is
// found — at the right addresses — by a fresh router over the same node
// list, i.e. the address→node assignment survives proxy restarts. A third
// router with the node order reversed must instead surface wrong-address
// payloads, pinning that the list order *is* the routing function.
func TestRouterRestartDeterminism(t *testing.T) {
	const blocks = 256 // per node; cluster serves 512
	_, addrs := startNodes(t, 2, unpacedNodeCfg(blocks))

	r1 := startRouter(t, Config{Nodes: addrs})
	if r1.Blocks() != 2*blocks {
		t.Fatalf("cluster blocks = %d, want %d", r1.Blocks(), 2*blocks)
	}
	buf := make([]byte, 64)
	for addr := uint64(0); addr < 2*blocks; addr++ {
		server.FillPayload(buf, addr, 1, addr)
		if err := r1.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	r1.Close()

	r2 := startRouter(t, Config{Nodes: addrs})
	for addr := uint64(0); addr < 2*blocks; addr++ {
		data, err := r2.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := server.CheckPayload(data, addr); err != nil {
			t.Fatalf("after restart, block %d: %v", addr, err)
		}
	}

	reversed := startRouter(t, Config{Nodes: []string{addrs[1], addrs[0]}})
	mismatches := 0
	for addr := uint64(0); addr < 2*blocks; addr++ {
		data, err := reversed.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if server.CheckPayload(data, addr) != nil {
			mismatches++
		}
	}
	// Every odd/even address now resolves to the other daemon, whose local
	// slot holds the payload of the neighbouring global address.
	if mismatches != 2*blocks {
		t.Errorf("reversed node order: %d/%d reads surfaced wrong-address data; want all — order must define routing", mismatches, 2*blocks)
	}
}

// TestRouterRejectsMismatchedTopology: a Blocks request beyond the nodes'
// capacity, and nodes disagreeing on block size, both fail router
// construction instead of corrupting at runtime.
func TestRouterRejectsMismatchedTopology(t *testing.T) {
	_, addrs := startNodes(t, 2, unpacedNodeCfg(128))
	if _, err := NewRouter(Config{Nodes: addrs, Blocks: 257}); err == nil || !strings.Contains(err.Error(), "at most") {
		t.Errorf("oversized Blocks: err = %v", err)
	}

	_, odd := startNode(t, server.Config{Shards: 1, Blocks: 128, BlockBytes: 128, Unpaced: true})
	if _, err := NewRouter(Config{Nodes: []string{addrs[0], odd}}); err == nil || !strings.Contains(err.Error(), "byte blocks") {
		t.Errorf("mismatched BlockBytes: err = %v", err)
	}

	if _, err := NewRouter(Config{Nodes: []string{"127.0.0.1:1"}}); err == nil {
		t.Error("unreachable node: router constructed anyway")
	}
}

// TestRouterOutOfRange: the router bounds-checks before fanning out, naming
// the cluster-wide space.
func TestRouterOutOfRange(t *testing.T) {
	r, _, _ := startCluster(t, 2, unpacedNodeCfg(64), Config{})
	if _, err := r.Read(128); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("read past cluster space: err = %v", err)
	}
	if err := r.Write(1<<40, make([]byte, 64)); err == nil {
		t.Error("write far past cluster space succeeded")
	}
}
