package cluster

import (
	"math"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"tcoram/internal/adversary"
	"tcoram/internal/server"
	"tcoram/internal/workload"
)

// TestClusterCrashRecoveryEndToEnd composes the durable storage tier (ISSUE
// 8) with the failover plane (ISSUE 7): three file-backed oramd processes
// under a K=2 router, one SIGKILLed mid-sweep. Replication covers the
// outage window (zero lost, zero corrupted operations), and afterwards the
// dead daemon is restarted over its own -data-dir: it must come back
// recovered-from-checkpoint, rejoin the pool as healthy, and serve reads —
// while the survivors' rate-change histories still replay to exactly the
// cluster's reported leaked_bits.
func TestClusterCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs external daemons")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	oramd := filepath.Join(dir, "oramd")
	if out, err := exec.Command(goBin, "build", "-o", oramd, "tcoram/cmd/oramd").CombinedOutput(); err != nil {
		t.Fatalf("building oramd: %v\n%s", err, out)
	}

	var (
		addrs   []string
		daemons []*exec.Cmd
		argSets [][]string
	)
	for i := 0; i < 3; i++ {
		addr := freePort(t)
		args := []string{
			"-addr", addr,
			"-shards", "1",
			"-blocks", "256",
			"-olat", "5",
			"-rates", "45,195,495,995",
			"-epoch", "20000",
			"-growth", "2",
			"-store", "file",
			"-data-dir", filepath.Join(dir, "node", string(rune('a'+i))),
			"-checkpoint-every", "1",
		}
		cmd := exec.Command(oramd, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
		daemons = append(daemons, cmd)
		argSets = append(argSets, args)
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	for _, addr := range addrs {
		rc, err := server.RetryDial(addr, server.RetryConfig{
			Attempts: 200,
			Backoff:  server.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("daemon at %s never came up: %v", addr, err)
		}
		rc.Close()
	}

	r := startRouter(t, Config{
		Nodes:        addrs,
		Epoch:        1,
		Replicas:     2,
		ProbeEvery:   20 * time.Millisecond,
		RetryBackoff: server.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	if r.Blocks() != 384 {
		t.Fatalf("cluster blocks = %d, want 384", r.Blocks())
	}

	// SIGKILL daemon 2 mid-sweep — no shutdown checkpoint; its durable state
	// is whatever its per-slot checkpoints covered, which with
	// -checkpoint-every 1 is every ack it ever sent.
	killed := make(chan struct{})
	timer := time.AfterFunc(300*time.Millisecond, func() {
		daemons[2].Process.Kill()
		daemons[2].Wait()
		close(killed)
	})
	defer timer.Stop()

	for _, sc := range workload.KVScenarios() {
		rep, err := server.RunLoad(
			func() (server.KV, error) { return r, nil },
			func() (server.Stats, error) { return r.ServiceStats() },
			server.LoadConfig{
				Scenario:     sc,
				Clients:      4,
				OpsPerClient: 25,
				Blocks:       r.Blocks(),
				BlockBytes:   64,
				Seed:         91,
			})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if rep.Lost != 0 {
			t.Errorf("%s: %d lost operations across the node kill", sc, rep.Lost)
		}
		if rep.Corrupted != 0 {
			t.Errorf("%s: %d corrupted reads across the node kill", sc, rep.Corrupted)
		}
		if rep.Ops != 100 {
			t.Errorf("%s: completed %d ops, want 100", sc, rep.Ops)
		}
	}
	select {
	case <-killed:
	default:
		t.Fatal("scenario sweep finished before the kill fired — nothing was tested under failover")
	}

	stats, err := r.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes[2].Healthy {
		t.Error("killed daemon still marked healthy")
	}
	if stats.Nodes[2].Failovers == 0 {
		t.Error("no failovers recorded during the outage window")
	}

	// Survivor replay: the accounting survives both the crash and the
	// storage tier underneath it.
	var total float64
	for _, sh := range stats.Shards {
		rec := adversary.ReconstructSchedule(sh.RateChanges, 4)
		if math.Abs(rec.Bits-sh.LeakedBits) > 1e-12 {
			t.Errorf("node %d: adversary reconstructs %v bits, node reports %v", sh.Node, rec.Bits, sh.LeakedBits)
		}
		total += rec.Bits
	}
	if math.Abs(total-stats.LeakedBits) > 1e-12 {
		t.Errorf("adversary total %v bits != cluster leaked_bits %v", total, stats.LeakedBits)
	}

	// Restart the killed daemon over its own data dir: the durable tier must
	// bring it back from its sealed checkpoint, and the router's health
	// probe must re-admit it.
	restarted := exec.Command(oramd, argSets[2]...)
	if err := restarted.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		restarted.Process.Kill()
		restarted.Wait()
	})
	rc, err := server.RetryDial(addrs[2], server.RetryConfig{
		Attempts: 200,
		Backoff:  server.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("restarted daemon never came up: %v", err)
	}
	defer rc.Close()
	nst, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range nst.Shards {
		if sh.Recovery != "recovered" {
			t.Errorf("restarted node shard %d boot outcome %q, want recovered", sh.Shard, sh.Recovery)
		}
		if sh.Failed {
			t.Errorf("restarted node shard %d failed after recovery", sh.Shard)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err = r.ServiceStats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Nodes[2].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never rejoined the serving pool")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
