package cluster

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"tcoram/internal/server"
	"tcoram/internal/sim"
	"tcoram/internal/workload"
)

// TestClusterReadBatchFanOut: one client batch splits by owning node, fans
// out through each node's own batch_read verb, and reassembles in request
// order — the cluster serving path of the tentpole's batch verb.
func TestClusterReadBatchFanOut(t *testing.T) {
	nodeCfg := server.Config{
		Shards:      2,
		Blocks:      512,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{1800},
	}
	_, addrs := startNodes(t, 2, nodeCfg)
	r := startRouter(t, fastFailoverCfg(addrs, 1))

	// Addresses interleave across both nodes (addr mod 2 picks the node).
	batch := []uint64{0, 1, 2, 3, 510, 511, 1022, 1023}
	for _, a := range batch {
		buf := make([]byte, 64)
		server.FillPayload(buf, a, 3, a)
		if err := r.Write(a, buf); err != nil {
			t.Fatalf("write %d: %v", a, err)
		}
	}

	results, err := r.ReadBatch("", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("batch returned %d results for %d addresses", len(results), len(batch))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("member %d (addr %d): %v", i, batch[i], res.Err)
		}
		want := make([]byte, 64)
		server.FillPayload(want, batch[i], 3, batch[i])
		if !bytes.Equal(res.Data, want) {
			t.Errorf("member %d (addr %d): wrong payload", i, batch[i])
		}
	}

	// A member out of the cluster's range fails only its own slot.
	mixed, err := r.ReadBatch("", []uint64{1, 99999, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0].Err != nil || mixed[2].Err != nil {
		t.Fatalf("valid members failed: %v / %v", mixed[0].Err, mixed[2].Err)
	}
	if server.ErrorCode(mixed[1].Err) != server.CodeOutOfRange {
		t.Errorf("out-of-range member error = %v, want code %s", mixed[1].Err, server.CodeOutOfRange)
	}

	// Over the protocol-wide address cap the whole request is refused with
	// the coded error, not torn down per-member.
	big := make([]uint64, server.MaxBatchAddrs+1)
	if _, err := r.ReadBatch("", big); server.ErrorCode(err) != server.CodeBatchTooLarge {
		t.Errorf("oversized cluster batch error = %v, want code %s", err, server.CodeBatchTooLarge)
	}
	if _, err := r.ReadBatch("", nil); server.ErrorCode(err) != server.CodeBadRequest {
		t.Errorf("empty cluster batch error = %v, want code %s", err, server.CodeBadRequest)
	}
}

// TestClusterBatchPartialFailure kills a node mid-batch-workload and pins
// the two degradation contracts: with replication the dead node's members
// fail over member-by-member and the batch still answers in full; without
// replication only the dead node's members fail, each with its own coded
// per-member error, while the surviving node's members are served.
func TestClusterBatchPartialFailure(t *testing.T) {
	nodeCfg := server.Config{
		Shards:      2,
		Blocks:      512,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{1800},
	}

	t.Run("replicated", func(t *testing.T) {
		var nodes []*killableNode
		var addrs []string
		for i := 0; i < 3; i++ {
			k := startKillableNode(t, nodeCfg)
			nodes = append(nodes, k)
			addrs = append(addrs, k.addr)
		}
		r := startRouter(t, fastFailoverCfg(addrs, 2))

		batch := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
		for _, a := range batch {
			buf := make([]byte, 64)
			server.FillPayload(buf, a, 5, a)
			if err := r.Write(a, buf); err != nil {
				t.Fatalf("write %d: %v", a, err)
			}
		}

		nodes[1].kill()
		// The very next batch may still plan members onto the dead node
		// (probe hasn't ejected it yet): the sub-batch fails as a whole and
		// every member must degrade to the replica-failover read path.
		results, err := r.ReadBatch("", batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Err != nil {
				t.Errorf("member %d (addr %d) lost despite a surviving replica: %v", i, batch[i], res.Err)
				continue
			}
			if err := server.CheckPayload(res.Data, batch[i]); err != nil {
				t.Errorf("member %d (addr %d): %v", i, batch[i], err)
			}
		}
	})

	t.Run("unreplicated", func(t *testing.T) {
		k0 := startKillableNode(t, nodeCfg)
		k1 := startKillableNode(t, nodeCfg)
		ccfg := fastFailoverCfg([]string{k0.addr, k1.addr}, 1)
		ccfg.RetryAttempts = 2
		r := startRouter(t, ccfg)

		batch := []uint64{0, 1, 2, 3} // even addrs on node 0, odd on node 1
		for _, a := range batch {
			buf := make([]byte, 64)
			server.FillPayload(buf, a, 5, a)
			if err := r.Write(a, buf); err != nil {
				t.Fatalf("write %d: %v", a, err)
			}
		}

		k1.kill()
		results, err := r.ReadBatch("", batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if batch[i]%2 == 0 {
				if res.Err != nil {
					t.Errorf("member %d (addr %d) on the surviving node failed: %v", i, batch[i], res.Err)
				}
				continue
			}
			if server.ErrorCode(res.Err) != server.CodeUnavailable {
				t.Errorf("member %d (addr %d) on the dead unreplicated node: err = %v, want code %s",
					i, batch[i], res.Err, server.CodeUnavailable)
			}
		}
	})
}

// TestClusterCDSIWANEndToEnd is the production-scenario acceptance run (a
// named CI race step): an oblivious contact-discovery-shaped workload —
// two tenants, zipf hot keys, batched submissions — over a WAN-shaped
// client link against a proxy fronting two batched, dynamically-paced
// daemons. Zero lost, zero corrupted, and each tenant's aggregated leakage
// account replays exactly from the public per-shard transition counts.
func TestClusterCDSIWANEndToEnd(t *testing.T) {
	nodeCfg := server.Config{
		Shards:        2,
		Blocks:        512,
		BlockBytes:    64,
		Backend:       server.BackendBatched,
		BatchK:        4,
		EvictEvery:    4,
		ClockHz:       1_000_000,
		ORAMLatency:   200,
		Rates:         []uint64{400, 900, 1800, 3600}, // |R| = 4 → 2 bits per transition
		EpochFirstLen: 20_000,                         // 20 ms first epoch, growth 2
		EpochGrowth:   2,
	}
	ccfg := Config{
		Epoch:    1,
		Replicas: 1,
		// Generous sub-budgets: this run pins the accounting, not the trip
		// (the trip contract is pinned server-side).
		TenantBudgets: map[string]float64{"alice": 1 << 20, "bob": 1 << 20},
		ProbeEvery:    20 * time.Millisecond,
	}
	_, proxyAddr, stores := startCluster(t, 2, nodeCfg, ccfg)

	statsClient, err := server.Dial(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	var wg sync.WaitGroup
	reports := make(map[string]sim.ServiceReport, 2)
	var mu sync.Mutex
	for i, tenant := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			rep, err := server.RunLoad(
				func() (server.KV, error) { return server.Dial(proxyAddr) },
				func() (server.Stats, error) { return statsClient.Stats() },
				server.LoadConfig{
					Scenario:     workload.KVCDSI,
					Clients:      4,
					OpsPerClient: 50,
					Blocks:       1024,
					BlockBytes:   64,
					Seed:         int64(100 + i),
					Tenant:       tenant,
					BatchSize:    4,
					WAN:          server.WANConfig{KBps: 2048, RTT: 4 * time.Millisecond},
				})
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			mu.Lock()
			reports[tenant] = rep
			mu.Unlock()
		}(i, tenant)
	}
	wg.Wait()

	for tenant, rep := range reports {
		if rep.Lost != 0 {
			t.Errorf("%s: %d lost operations", tenant, rep.Lost)
		}
		if rep.Corrupted != 0 {
			t.Errorf("%s: %d corrupted reads", tenant, rep.Corrupted)
		}
		if rep.Ops != 200 {
			t.Errorf("%s: completed %d ops, want 200", tenant, rep.Ops)
		}
	}

	// Both tenants were active across epoch transitions (top up briefly if
	// the workload finished inside epoch 0 on some shard).
	topup, err := server.Dial(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer topup.Close()
	var agg server.Stats
	deadline := time.Now().Add(10 * time.Second)
	for {
		agg, err = statsClient.Stats()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ts := range agg.Tenants {
			if (ts.Tenant == "alice" || ts.Tenant == "bob") && ts.Transitions > 0 {
				n++
			}
		}
		if n == 2 || time.Now().After(deadline) {
			break
		}
		for _, tenant := range []string{"alice", "bob"} {
			if _, err := topup.TenantRead(tenant, 1); err != nil {
				t.Fatalf("top-up %s read: %v", tenant, err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Per-tenant replay: with |R| = 4 every charged transition publishes
	// exactly 2 bits, so each tenant's aggregated leaked_bits must equal
	// 2 × its cluster-wide transition count — and that count must itself be
	// the sum of the public per-shard attributions across every node.
	byName := map[string]server.TenantStat{}
	for _, ts := range agg.Tenants {
		byName[ts.Tenant] = ts
	}
	for _, tenant := range []string{"alice", "bob"} {
		ts, ok := byName[tenant]
		if !ok {
			t.Fatalf("no %s row in aggregated tenant stats (%+v)", tenant, agg.Tenants)
		}
		if ts.Transitions == 0 {
			t.Errorf("%s: no charged transitions within the deadline", tenant)
		}
		if want := 2 * float64(ts.Transitions); ts.LeakedBits != want {
			t.Errorf("%s: aggregated leaked_bits = %v over %d transitions, want %v",
				tenant, ts.LeakedBits, ts.Transitions, want)
		}
		if ts.BudgetBits != 1<<20 || ts.Exceeded {
			t.Errorf("%s: budget row = %+v, want the cluster sub-budget un-tripped", tenant, ts)
		}
		var shardSum uint64
		for _, st := range stores {
			for _, sh := range st.Stats().Shards {
				shardSum += sh.TenantTransitions[tenant]
			}
		}
		if shardSum < ts.Transitions {
			t.Errorf("%s: aggregated %d transitions, per-shard replay sums to %d",
				tenant, ts.Transitions, shardSum)
		}
	}

	// The WAN-shaped, batched workload still rode paced slot grids: both
	// nodes' shards served, nothing failed.
	for _, sh := range agg.Shards {
		if sh.Failed {
			t.Errorf("node %d shard %d reported failure", sh.Node, sh.Shard)
		}
		if sh.RealAccesses+sh.DummyAccesses == 0 {
			t.Errorf("node %d shard %d issued no accesses — its slot grid is dead", sh.Node, sh.Shard)
		}
	}
}
