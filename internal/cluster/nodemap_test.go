package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// TestNodeMapPlacement pins the replicated layout's load-bearing properties
// across topology shapes: every (node, local) target of every (address,
// replica) pair is unique — no two blocks, and no two replicas of one
// block, share a storage slot — every address's K owners are K distinct
// nodes with the primary first, and the K=1 specialization is exactly the
// legacy NodeOf/LocalAddr layout, so unreplicated clusters route
// identically before and after the epoch-versioned map.
func TestNodeMapPlacement(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {2, 1}, {3, 2}, {5, 2}, {5, 3}, {8, 4},
	} {
		m := NodeMap{Epoch: 1, Nodes: make([]string, tc.n), Replicas: tc.k}
		for i := range m.Nodes {
			m.Nodes[i] = string(rune('a'+i)) + ":1"
		}
		const minNodeBlocks = 64
		stripe := m.Stripe(minNodeBlocks)
		blocks := m.Blocks(minNodeBlocks)
		if blocks != stripe*uint64(tc.n) {
			t.Fatalf("n=%d k=%d: Blocks=%d, want stripe %d × %d nodes", tc.n, tc.k, blocks, stripe, tc.n)
		}
		seen := make(map[[2]uint64]string)
		for addr := uint64(0); addr < blocks; addr++ {
			owners := m.ReplicaNodes(addr, nil)
			if len(owners) != tc.k {
				t.Fatalf("n=%d k=%d: addr %d has %d owners, want %d", tc.n, tc.k, addr, len(owners), tc.k)
			}
			if owners[0] != m.PrimaryOf(addr) {
				t.Fatalf("n=%d k=%d: addr %d owners start at %d, primary is %d", tc.n, tc.k, addr, owners[0], m.PrimaryOf(addr))
			}
			distinct := map[int]bool{}
			for r, node := range owners {
				if node < 0 || node >= tc.n {
					t.Fatalf("n=%d k=%d: addr %d replica %d on node %d out of range", tc.n, tc.k, addr, r, node)
				}
				distinct[node] = true
				local := m.ReplicaLocal(addr, r, stripe)
				if local >= minNodeBlocks {
					t.Fatalf("n=%d k=%d: addr %d replica %d local %d exceeds node capacity %d", tc.n, tc.k, addr, r, local, minNodeBlocks)
				}
				key := [2]uint64{uint64(node), local}
				if prev, dup := seen[key]; dup {
					t.Fatalf("n=%d k=%d: node %d local %d holds both %s and addr %d replica %d", tc.n, tc.k, node, local, prev, addr, r)
				}
				seen[key] = fmt.Sprintf("addr %d replica %d", addr, r)
				// The stripe layout is invertible: the slot knows which
				// replica stripe it belongs to.
				if rep, _ := StripeOf(local, stripe); rep != r {
					t.Fatalf("n=%d k=%d: StripeOf(%d, %d) = replica %d, want %d", tc.n, tc.k, local, stripe, rep, r)
				}
			}
			if len(distinct) != tc.k {
				t.Fatalf("n=%d k=%d: addr %d replicas land on %d distinct nodes, want %d", tc.n, tc.k, addr, len(distinct), tc.k)
			}
			if tc.k == 1 {
				if owners[0] != NodeOf(addr, tc.n) || m.ReplicaLocal(addr, 0, stripe) != LocalAddr(addr, tc.n) {
					t.Fatalf("n=%d: K=1 map diverges from the legacy layout at addr %d", tc.n, addr)
				}
			}
		}
	}
}

// TestNodeMapFingerprint: the fingerprint is order-sensitive (a reversed
// node list is a different routing function and must read differently),
// replication-sensitive, separator-safe, and epoch-independent (the epoch
// names a version, not a behaviour).
func TestNodeMapFingerprint(t *testing.T) {
	base := NodeMap{Epoch: 1, Nodes: []string{"a:1", "b:2"}, Replicas: 2}
	if got := base.Fingerprint(); got != (NodeMap{Epoch: 9, Nodes: []string{"a:1", "b:2"}, Replicas: 2}).Fingerprint() {
		t.Errorf("fingerprint %s varies with the epoch", got)
	}
	reversed := NodeMap{Nodes: []string{"b:2", "a:1"}, Replicas: 2}
	if base.Fingerprint() == reversed.Fingerprint() {
		t.Error("reversed node order keeps the same fingerprint — order is the routing function and must be covered")
	}
	if base.Fingerprint() == (NodeMap{Nodes: []string{"a:1", "b:2"}, Replicas: 1}).Fingerprint() {
		t.Error("changing the replication factor keeps the same fingerprint")
	}
	if (NodeMap{Nodes: []string{"ab", "c"}}).Fingerprint() == (NodeMap{Nodes: []string{"a", "bc"}}).Fingerprint() {
		t.Error("node-list concatenation is ambiguous in the fingerprint")
	}
	// Unreplicated maps fingerprint identically whether K is 0 (defaulted)
	// or explicit 1 — the two spellings of the same routing function.
	if (NodeMap{Nodes: []string{"a:1"}}).Fingerprint() != (NodeMap{Nodes: []string{"a:1"}, Replicas: 1}).Fingerprint() {
		t.Error("defaulted and explicit K=1 fingerprint differently")
	}
}

func TestNodeMapValidate(t *testing.T) {
	cases := []struct {
		name string
		m    NodeMap
		want string // substring of the error; empty = valid
	}{
		{"no nodes", NodeMap{}, "no nodes"},
		{"empty addr", NodeMap{Nodes: []string{"a:1", ""}}, "empty address"},
		{"duplicate", NodeMap{Nodes: []string{"a:1", "a:1"}}, "same address"},
		{"negative replicas", NodeMap{Nodes: []string{"a:1"}, Replicas: -1}, "negative"},
		{"too many replicas", NodeMap{Nodes: []string{"a:1", "b:2"}, Replicas: 3}, "3 replicas"},
		{"ok replicated", NodeMap{Nodes: []string{"a:1", "b:2"}, Replicas: 2}, ""},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestConfigValidateMigration covers the Config-level checks the migration
// plane adds on top of NodeMap validation.
func TestConfigValidateMigration(t *testing.T) {
	good := Config{Nodes: []string{"a:1", "b:2", "c:3"}, Epoch: 2, Replicas: 2,
		PrevNodes: []string{"a:1", "b:2"}, PrevEpoch: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid migration config rejected: %v", err)
	}
	stale := good
	stale.PrevEpoch = 2
	if err := stale.Validate(); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("prev epoch ≥ epoch accepted: %v", err)
	}
	badPrev := good
	badPrev.PrevNodes = []string{"a:1", "a:1"}
	if err := badPrev.Validate(); err == nil || !strings.Contains(err.Error(), "previous topology") {
		t.Errorf("duplicate prev node accepted: %v", err)
	}
}
