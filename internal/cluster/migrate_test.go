package cluster

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcoram/internal/pathoram"
	"tcoram/internal/server"
)

// waitMigrated polls until the router reports the migration finished.
func waitMigrated(t *testing.T, r *Router, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for r.migrating.Load() {
		if time.Now().After(deadline) {
			st, _ := r.ServiceStats()
			t.Fatalf("migration not finished within %v (watermark %d of %d)", within, st.MigrationWatermark, r.migrateEnd)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMigrationCorrectness is the elastic-membership acceptance at the data
// level: a cluster grown from two nodes (epoch 1) to three (epoch 2)
// migrates every block to the new topology while serving concurrent reads
// and writes, losing no data and no updates — the watermark protocol's
// whole job.
func TestMigrationCorrectness(t *testing.T) {
	_, oldAddrs := startNodes(t, 2, unpacedNodeCfg(128))

	// Epoch 1: seed every block through the old topology.
	r1 := startRouter(t, Config{Nodes: oldAddrs, Epoch: 1})
	oldBlocks := r1.Blocks() // 2 × 128 = 256
	buf := make([]byte, 64)
	for addr := uint64(0); addr < oldBlocks; addr++ {
		server.FillPayload(buf, addr, 1, addr)
		if err := r1.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	r1.Close()

	// Epoch 2: a third node joins; the new router serves immediately while
	// migrating. Background clients hammer the space the whole time.
	_, joined := startNode(t, unpacedNodeCfg(128))
	r2 := startRouter(t, Config{
		Nodes:        append(append([]string{}, oldAddrs...), joined),
		Epoch:        2,
		PrevNodes:    oldAddrs,
		PrevEpoch:    1,
		MigrateEvery: 100 * time.Microsecond,
	})
	// While migrating, only the space both epochs share is servable; the
	// fresh third of the address space opens once it has been scrubbed.
	if r2.Blocks() != 256 {
		t.Fatalf("mid-migration cluster serves %d blocks, want the shared 256", r2.Blocks())
	}
	if _, err := r2.Read(300); err == nil {
		t.Fatal("fresh address readable before its slot was scrubbed")
	}
	st, err := r2.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.MigrationActive || st.RoutingEpoch != 2 {
		t.Fatalf("stats at start: migration_active=%v routing_epoch=%d", st.MigrationActive, st.RoutingEpoch)
	}

	var stopLoad atomic.Bool
	var wg sync.WaitGroup
	for cl := 0; cl < 4; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			b := make([]byte, 64)
			for i := uint64(0); !stopLoad.Load(); i++ {
				addr := (uint64(cl)*97 + i*13) % oldBlocks
				if i%3 == 0 {
					server.FillPayload(b, addr, uint32(cl)+10, i)
					if err := r2.Write(addr, b); err != nil {
						t.Errorf("concurrent write %d: %v", addr, err)
						return
					}
				} else {
					data, err := r2.Read(addr)
					if err != nil {
						t.Errorf("concurrent read %d: %v", addr, err)
						return
					}
					if err := server.CheckPayload(data, addr); err != nil {
						t.Errorf("mid-migration block %d: %v", addr, err)
						return
					}
				}
			}
		}(cl)
	}

	waitMigrated(t, r2, 10*time.Second)
	stopLoad.Store(true)
	wg.Wait()

	if r2.Blocks() != 384 {
		t.Fatalf("migrated cluster serves %d blocks, want the full 384", r2.Blocks())
	}
	// After retirement every block still verifies — including the fresh
	// address space past the old capacity, which must read as zeroes (the
	// scrub phase's whole point: those slots held old-layout residue).
	for addr := uint64(0); addr < r2.Blocks(); addr++ {
		data, err := r2.Read(addr)
		if err != nil {
			t.Fatalf("post-migration read %d: %v", addr, err)
		}
		if err := server.CheckPayload(data, addr); err != nil {
			t.Fatalf("post-migration block %d: %v", addr, err)
		}
	}
	// Updates written after the migration land in the new topology and are
	// read back verbatim.
	for addr := uint64(0); addr < r2.Blocks(); addr += 17 {
		server.FillPayload(buf, addr, 99, addr)
		if err := r2.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		data, err := r2.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if data[i] != buf[i] {
				t.Fatalf("post-migration update to %d not read back", addr)
			}
		}
	}
	st, err = r2.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MigrationActive {
		t.Error("stats still report an active migration")
	}
	if st.MigrationWatermark != 256 {
		t.Errorf("final watermark = %d, want 256 (the shared address space)", st.MigrationWatermark)
	}
}

// TestMigrationTopologyMatrix runs the migration across every supported
// topology transformation — join, leave, replication-factor changes, and
// combinations — and verifies full data integrity afterwards: every shared
// block carries its pre-migration payload, every fresh block reads as
// zeroes. This is the empirical backstop for planScan's safety argument.
func TestMigrationTopologyMatrix(t *testing.T) {
	const nodeBlocks = 48
	cases := []struct {
		name         string
		oldN, oldK   int
		newN, newK   int
		reusedOf     int // how many old nodes survive into the new topology
		wantRejected bool
	}{
		{name: "join", oldN: 2, oldK: 1, newN: 3, newK: 1, reusedOf: 2},
		{name: "leave", oldN: 3, oldK: 2, newN: 2, newK: 2, reusedOf: 2},
		{name: "raise replication", oldN: 3, oldK: 1, newN: 3, newK: 2, reusedOf: 3},
		{name: "drop replication", oldN: 3, oldK: 2, newN: 3, newK: 1, reusedOf: 3},
		// Joining and raising K in one hop is provably unsafe in place in
		// both scan directions; planScan must send it through an
		// intermediate epoch (join first, then raise K — each alone is safe).
		{name: "join and raise replication", oldN: 2, oldK: 1, newN: 3, newK: 2, reusedOf: 2, wantRejected: true},
		{name: "full node swap", oldN: 2, oldK: 1, newN: 2, newK: 1, reusedOf: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addrs := startNodes(t, tc.oldN+(tc.newN-tc.reusedOf), unpacedNodeCfg(nodeBlocks))
			oldAddrs := addrs[:tc.oldN]
			newAddrs := append(append([]string{}, oldAddrs[:tc.reusedOf]...), addrs[tc.oldN:]...)

			r1 := startRouter(t, Config{Nodes: oldAddrs, Epoch: 1, Replicas: tc.oldK})
			oldBlocks := r1.Blocks()
			buf := make([]byte, 64)
			for addr := uint64(0); addr < oldBlocks; addr++ {
				server.FillPayload(buf, addr, 1, addr)
				if err := r1.Write(addr, buf); err != nil {
					t.Fatal(err)
				}
			}
			r1.Close()

			cfg := Config{
				Nodes: newAddrs, Epoch: 2, Replicas: tc.newK,
				PrevNodes: oldAddrs, PrevEpoch: 1, PrevReplicas: tc.oldK,
				MigrateEvery: 50 * time.Microsecond,
			}
			r2, err := NewRouter(cfg)
			if tc.wantRejected {
				if err == nil {
					r2.Close()
					t.Fatal("unsafe in-place transformation accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r2.Close() })
			waitMigrated(t, r2, 10*time.Second)

			shared := oldBlocks
			if r2.Blocks() < shared {
				shared = r2.Blocks()
			}
			for addr := uint64(0); addr < r2.Blocks(); addr++ {
				data, err := r2.Read(addr)
				if err != nil {
					t.Fatalf("read %d after migration: %v", addr, err)
				}
				if addr < shared {
					if err := server.CheckPayload(data, addr); err != nil {
						t.Fatalf("shared block %d corrupted by migration: %v", addr, err)
					}
					continue
				}
				for i, b := range data {
					if b != 0 {
						t.Fatalf("fresh block %d byte %d = %#x, want scrubbed zeroes", addr, i, b)
					}
				}
			}
		})
	}
}

// TestMigrationRejectsUnsafePermutation: swapping two surviving nodes'
// positions changes every block's placement in a way no single in-place
// sweep can copy safely — planScan must refuse it rather than let the
// migration eat the data.
func TestMigrationRejectsUnsafePermutation(t *testing.T) {
	_, addrs := startNodes(t, 2, unpacedNodeCfg(32))
	swapped := []string{addrs[1], addrs[0]}
	_, err := NewRouter(Config{
		Nodes: swapped, Epoch: 2,
		PrevNodes: addrs, PrevEpoch: 1,
		MigrateEvery: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "intermediate epoch") {
		t.Fatalf("swapped-node migration: err = %v, want in-place rejection", err)
	}
}

// TestMigrationObliviousSlotTraces is the timing-channel acceptance for
// elasticity (ISSUE 7): on paced batched nodes, the adversary-visible slot
// signatures of a donor and a recipient node are byte-identical between a
// run with an active rebalance and an idle run at the same rate. Migration
// copies are ordinary reads and writes riding slots that would otherwise
// carry dummies, and the batched backend's slot signature is independent of
// what a slot carries — so watching a node's storage schedule reveals
// nothing about whether the cluster is rebalancing.
func TestMigrationObliviousSlotTraces(t *testing.T) {
	// One batched shard per node, 1 ms slots: every slot fetches exactly
	// k=2 paths and evicts every K=2 slots, real, dummy or migration.
	nodeCfg := server.Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		Backend:     server.BackendBatched,
		BatchK:      2,
		EvictEvery:  2,
		TraceSlots:  true,
		ClockHz:     1_000_000,
		ORAMLatency: 100,
		Rates:       []uint64{900},
	}
	const window = 700 * time.Millisecond

	// run brings up a donor (old topology) and a recipient (joins in the
	// new one), serves for the window — with or without an active migration
	// — and returns both nodes' slot traces.
	run := func(migrate bool) (donor, recipient [][]pathoram.SlotSig) {
		donorStore, donorAddr := startNode(t, nodeCfg)
		recStore, recAddr := startNode(t, nodeCfg)
		cfg := Config{Nodes: []string{donorAddr, recAddr}, Epoch: 2}
		if migrate {
			cfg.PrevNodes = []string{donorAddr}
			cfg.PrevEpoch = 1
			cfg.MigrateEvery = 5 * time.Millisecond // ~64 copies in 320 ms: active most of the window
		}
		r := startRouter(t, cfg)
		time.Sleep(window)
		if migrate && !r.migrating.Load() && r.watermark.Load() != r.migrateEnd {
			t.Fatal("migration neither active nor finished — copies are not flowing")
		}
		r.Close()
		donorStore.Close()
		recStore.Close()
		return donorStore.SlotTraces(), recStore.SlotTraces()
	}

	activeDonor, activeRec := run(true)
	idleDonor, idleRec := run(false)

	compare := func(label string, active, idle [][]pathoram.SlotSig) {
		t.Helper()
		if len(active) != 1 || len(idle) != 1 {
			t.Fatalf("%s: traces for %d/%d shards, want 1/1", label, len(active), len(idle))
		}
		a, b := active[0], idle[0]
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		// The two runs stop at independent wall instants, so lengths differ
		// by a few slots; the property is that every slot both runs reached
		// has the same signature. A near-empty overlap would vacuously pass.
		if n < 300 {
			t.Fatalf("%s: only %d comparable slots (runs recorded %d and %d)", label, n, len(a), len(b))
		}
		rawA, err := json.Marshal(a[:n])
		if err != nil {
			t.Fatal(err)
		}
		rawB, err := json.Marshal(b[:n])
		if err != nil {
			t.Fatal(err)
		}
		if string(rawA) != string(rawB) {
			for i := 0; i < n; i++ {
				if a[i] != b[i] {
					t.Fatalf("%s: slot %d differs between rebalance-active and idle runs: %+v vs %+v — migration traffic is observable",
						label, i, a[i], b[i])
				}
			}
			t.Fatalf("%s: traces differ", label)
		}
	}
	compare("donor", activeDonor, idleDonor)
	compare("recipient", activeRec, idleRec)
}
