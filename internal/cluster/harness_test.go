package cluster

import (
	"net"
	"testing"

	"tcoram/internal/server"
)

// The in-test cluster harness: N real oramd daemons (server.Store behind
// server.Serve on loopback TCP), optionally fronted by a routing proxy that
// is itself served over TCP — the full wire topology of a deployed cluster,
// inside one test process so the race detector sees every layer at once.

// startNode serves one store on an ephemeral port and returns its address.
// Listener and store die with the test.
func startNode(t testing.TB, cfg server.Config) (*server.Store, string) {
	t.Helper()
	st, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	go server.Serve(l, st)
	t.Cleanup(func() {
		l.Close()
		st.Close()
	})
	return st, l.Addr().String()
}

// startNodes brings up n identically-configured daemons and returns their
// addresses in node-index order.
func startNodes(t testing.TB, n int, cfg server.Config) (stores []*server.Store, addrs []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		st, addr := startNode(t, cfg)
		stores = append(stores, st)
		addrs = append(addrs, addr)
	}
	return stores, addrs
}

// startRouter builds a router over addrs; it dies with the test.
func startRouter(t testing.TB, ccfg Config) *Router {
	t.Helper()
	r, err := NewRouter(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// startProxy serves a router over TCP — the oramproxy composition — and
// returns the proxy's client-facing address.
func startProxy(t testing.TB, r *Router) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(l, r)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// startCluster is the one-call harness: n daemons, a router, a TCP proxy.
func startCluster(t testing.TB, n int, nodeCfg server.Config, ccfg Config) (r *Router, proxyAddr string, stores []*server.Store) {
	t.Helper()
	stores, addrs := startNodes(t, n, nodeCfg)
	ccfg.Nodes = addrs
	r = startRouter(t, ccfg)
	return r, startProxy(t, r), stores
}
