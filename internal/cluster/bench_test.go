package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tcoram/internal/server"
	"tcoram/internal/workload"
)

// BenchmarkClusterThroughput measures sustained operations per second
// through the routing layer as the node count grows, each node a real
// daemon behind loopback TCP with its own paced shard grids — the
// BenchmarkServerThroughput scaling story one level up. In paced mode the
// expectation is exact: capacity is nodes × shards / period, so ns/op
// halves when the node count doubles, and the committed record makes the
// scale-out property a gated number rather than a claim.
func BenchmarkClusterThroughput(b *testing.B) {
	for _, nodes := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			runClusterThroughput(b, nodes, false)
		})
	}
	// Unpaced: raw routed capacity with no slot grid, isolating the
	// proxy/pool overhead from the pacing budget.
	b.Run("unpaced/nodes=2", func(b *testing.B) {
		runClusterThroughput(b, 2, true)
	})
}

func runClusterThroughput(b *testing.B, nodes int, unpaced bool) {
	nodeCfg := server.Config{
		Shards:      2,
		Blocks:      2048 / uint64(nodes), // constant 2048-block dataset
		BlockBytes:  64,
		QueueDepth:  1024,
		ClockHz:     1_000_000,
		ORAMLatency: 100,
		Rates:       []uint64{400}, // 500 µs slot period per shard
		Unpaced:     unpaced,
	}
	_, addrs := startNodes(b, nodes, nodeCfg)
	r := startRouter(b, Config{Nodes: addrs, Epoch: 1})

	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	clients := 4 * nodes * nodeCfg.Shards
	var wg sync.WaitGroup
	b.ResetTimer()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			stream, err := workload.NewKVStream(workload.KVUniform, r.Blocks(), int64(cl)+1, 0)
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, r.BlockBytes())
			for remaining.Add(-1) >= 0 {
				op := stream.Next()
				if op.Write {
					server.FillPayload(buf, op.Addr, uint32(cl), 0)
					if err := r.Write(op.Addr, buf); err != nil {
						b.Error(err)
						return
					}
				} else if _, err := r.Read(op.Addr); err != nil {
					b.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
	// The routing epoch the numbers were measured under rides into the
	// bench record: a throughput comparison across PRs is only meaningful
	// within one routing-table version.
	b.ReportMetric(float64(r.Epoch()), "routing-epoch")
}
