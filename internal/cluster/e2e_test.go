package cluster

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcoram/internal/adversary"
	"tcoram/internal/server"
	"tcoram/internal/workload"
)

// TestClusterEndToEndAllScenarios is the multi-node acceptance run (the CI
// cluster gate): loadgen's driver over TCP against an oramproxy fronting
// two paced oramd daemons completes every scenario with zero lost and zero
// corrupted operations, and the proxy's aggregated stats show both nodes'
// slot grids alive.
func TestClusterEndToEndAllScenarios(t *testing.T) {
	// Same slot sizing as the single-daemon e2e: a 2 ms period per shard
	// keeps four pacing loops plus the proxy hop comfortable on a 1-vCPU
	// box under the race detector. Two nodes × two shards serve 1024
	// cluster blocks (512 per node).
	nodeCfg := server.Config{
		Shards:      2,
		Blocks:      512,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{1800},
	}
	_, proxyAddr, _ := startCluster(t, 2, nodeCfg, Config{})

	statsClient, err := server.Dial(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	for _, sc := range workload.KVScenarios() {
		sc := sc
		t.Run(string(sc), func(t *testing.T) {
			rep, err := server.RunLoad(
				func() (server.KV, error) { return server.Dial(proxyAddr) },
				func() (server.Stats, error) { return statsClient.Stats() },
				server.LoadConfig{
					Scenario:     sc,
					Clients:      8,
					OpsPerClient: 50,
					Blocks:       1024,
					BlockBytes:   64,
					Seed:         44,
				})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Lost != 0 {
				t.Errorf("%s: %d lost requests", sc, rep.Lost)
			}
			if rep.Corrupted != 0 {
				t.Errorf("%s: %d corrupted reads", sc, rep.Corrupted)
			}
			if rep.Ops != 400 {
				t.Errorf("%s: completed %d ops, want 400", sc, rep.Ops)
			}
			if rep.RealAccesses == 0 {
				t.Errorf("%s: no real ORAM accesses recorded", sc)
			}
		})
	}

	stats, err := statsClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Blocks != 1024 {
		t.Errorf("aggregated Blocks = %d, want the cluster-wide 1024", stats.Blocks)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("aggregated %d shard entries, want 4 (2 nodes × 2 shards)", len(stats.Shards))
	}
	perNode := map[int]int{}
	for _, sh := range stats.Shards {
		perNode[sh.Node]++
		if sh.Failed {
			t.Errorf("node %d shard %d reported failure", sh.Node, sh.Shard)
		}
		// Every node's grid pads idle slots: a node left cold by routing
		// would betray the cluster's traffic split, so none may be silent.
		if sh.RealAccesses+sh.DummyAccesses == 0 {
			t.Errorf("node %d shard %d issued no accesses — its slot grid is dead", sh.Node, sh.Shard)
		}
	}
	if perNode[0] != 2 || perNode[1] != 2 {
		t.Errorf("shards per node = %v, want 2 on each", perNode)
	}
	_, dummy, _ := stats.Totals()
	if dummy == 0 {
		t.Error("no dummy accesses across the whole run — pacing inactive?")
	}
}

// TestClusterAdversaryReplay extends the adversary-side validation to the
// cluster: the per-shard rate-change histories that the proxy aggregates
// are replayed through the adversary's schedule reconstruction, and the
// recovered information must equal — bit for bit — the leaked_bits the
// cluster reports against its single budget.
func TestClusterAdversaryReplay(t *testing.T) {
	rates := []uint64{45, 195, 495, 995}
	nodeCfg := server.Config{
		Shards:        1,
		Blocks:        128,
		BlockBytes:    64,
		ClockHz:       1_000_000,
		ORAMLatency:   5,
		Rates:         rates,
		InitialRate:   995,
		EpochFirstLen: 20_000, // 20 ms, growth 2: several transitions in 400 ms
		EpochGrowth:   2,
	}
	// A cluster budget of 4 bits: each node alone stays silent about it
	// (they have no budget configured), but two shards' transitions sum
	// past it quickly, so only the aggregated account can trip.
	r, _, _ := startCluster(t, 2, nodeCfg, Config{LeakageBudgetBits: 4})

	buf := make([]byte, 64)
	deadline := time.Now().Add(400 * time.Millisecond)
	for i := uint64(0); time.Now().Before(deadline); i++ {
		addr := i % 256
		server.FillPayload(buf, addr, 0, i)
		if err := r.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(addr); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := r.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("aggregated %d shard entries, want 2", len(stats.Shards))
	}
	var total float64
	for _, sh := range stats.Shards {
		rec := adversary.ReconstructSchedule(sh.RateChanges, len(rates))
		if rec.Transitions == 0 {
			t.Fatalf("node %d shard %d crossed no epoch boundary in 400 ms of 20 ms-seeded epochs", sh.Node, sh.Shard)
		}
		if math.Abs(rec.Bits-sh.LeakedBits) > 1e-12 {
			t.Errorf("node %d shard %d: adversary reconstructs %v bits, cluster reports %v",
				sh.Node, sh.Shard, rec.Bits, sh.LeakedBits)
		}
		total += rec.Bits
	}
	if math.Abs(total-stats.LeakedBits) > 1e-12 {
		t.Errorf("adversary total %v bits != cluster leaked_bits %v", total, stats.LeakedBits)
	}
	if !stats.LeakageExceeded {
		t.Errorf("cluster leaked %v bits over a 4-bit budget without flagging", stats.LeakedBits)
	}
}

// measureClusterOps drives saturating uniform traffic through a router for
// the given window and returns completed operations.
func measureClusterOps(t *testing.T, r *Router, clients int, window time.Duration) uint64 {
	t.Helper()
	var (
		done atomic.Uint64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			stream, err := workload.NewKVStream(workload.KVUniform, r.Blocks(), int64(cl)+1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, r.BlockBytes())
			for !stop.Load() {
				op := stream.Next()
				if op.Write {
					server.FillPayload(buf, op.Addr, uint32(cl), 0)
					if err := r.Write(op.Addr, buf); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := r.Read(op.Addr); err != nil {
					t.Error(err)
					return
				}
				done.Add(1)
			}
		}(cl)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	return done.Load()
}

// TestClusterThroughputScaling is the scale-out acceptance measurement: in
// paced mode each shard's slot grid caps service at one access per period,
// so cluster capacity is nodes × shards / period — doubling the node count
// must roughly double sustained throughput over the same wall window. This
// is the property that takes the capacity story past one machine: the added
// slots come from another box's grid, not from sharing this one's cores.
func TestClusterThroughputScaling(t *testing.T) {
	nodeCfg := server.Config{
		Shards:      2,
		Blocks:      512,
		BlockBytes:  64,
		QueueDepth:  1024,
		ClockHz:     1_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{1800}, // 2 ms slot period per shard
	}
	const window = 1200 * time.Millisecond

	run := func(nodes int) uint64 {
		_, addrs := startNodes(t, nodes, nodeCfg)
		r := startRouter(t, Config{Nodes: addrs})
		defer r.Close()
		// 8 clients per node keep every shard's queue non-empty without
		// swamping a small CI box.
		return measureClusterOps(t, r, 8*nodes, window)
	}
	one := run(1)
	two := run(2)

	// Capacity at 2 shards/node and 2 ms slots is 1000 ops/s per node; the
	// window should complete ≈1200 (one node) and ≈2400 (two). Bounds are
	// generous for CI noise but exclude both "no scaling" (ratio ≈ 1) and
	// super-linear accounting bugs.
	if one == 0 {
		t.Fatal("one-node run completed no operations")
	}
	ratio := float64(two) / float64(one)
	t.Logf("paced throughput: 1 node = %d ops, 2 nodes = %d ops (ratio %.2f) over %v", one, two, ratio, window)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("2-node/1-node throughput ratio = %.2f, want ≈2 (linear scale-out)", ratio)
	}
}
