package cluster

import (
	"fmt"
	"math"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"tcoram/internal/adversary"
	"tcoram/internal/server"
	"tcoram/internal/workload"
)

// TestClusterKillNodeEndToEnd is the elasticity acceptance at full fidelity
// (ISSUE 7): three real oramd processes with dynamic rate epochs, a K=2
// router over them, loadgen's scenario sweep on top — and one daemon killed
// with SIGKILL partway through. The run must complete every scenario with
// zero lost and zero corrupted operations (reads of the dead primary's
// addresses fail over to the surviving replica), the cluster stats must
// show the ejection and the failovers, and the adversary's replay of the
// survivors' rate-change histories must still equal the cluster's reported
// leaked_bits — a node crash does not excuse the accounting.
func TestClusterKillNodeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs external daemons")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	oramd := filepath.Join(dir, "oramd")
	if out, err := exec.Command(goBin, "build", "-o", oramd, "tcoram/cmd/oramd").CombinedOutput(); err != nil {
		t.Fatalf("building oramd: %v\n%s", err, out)
	}

	// Three daemons, one slow shard each, dynamic epochs over four rates so
	// the run leaks a few bits for the replay check to chew on.
	var (
		addrs   []string
		daemons []*exec.Cmd
	)
	for i := 0; i < 3; i++ {
		addr := freePort(t)
		cmd := exec.Command(oramd,
			"-addr", addr,
			"-shards", "1",
			"-blocks", "256",
			"-olat", "5",
			"-rates", "45,195,495,995",
			"-epoch", "20000",
			"-growth", "2",
		)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
		daemons = append(daemons, cmd)
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	// Wait until every daemon answers before the router's fail-fast dial.
	for _, addr := range addrs {
		rc, err := server.RetryDial(addr, server.RetryConfig{
			Attempts: 100,
			Backoff:  server.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("daemon at %s never came up: %v", addr, err)
		}
		rc.Close()
	}

	r := startRouter(t, Config{
		Nodes:        addrs,
		Epoch:        1,
		Replicas:     2,
		ProbeEvery:   20 * time.Millisecond,
		RetryBackoff: server.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	})
	// 3 nodes × 256 blocks / 2 replicas = 384 cluster blocks.
	if r.Blocks() != 384 {
		t.Fatalf("cluster blocks = %d, want 384", r.Blocks())
	}

	// SIGKILL daemon 2 mid-sweep: no shutdown handler runs, its connections
	// die raw — the crash the failover plane exists for.
	killed := make(chan struct{})
	timer := time.AfterFunc(300*time.Millisecond, func() {
		daemons[2].Process.Kill()
		daemons[2].Wait()
		close(killed)
	})
	defer timer.Stop()

	for _, sc := range workload.KVScenarios() {
		rep, err := server.RunLoad(
			func() (server.KV, error) { return r, nil },
			func() (server.Stats, error) { return r.ServiceStats() },
			server.LoadConfig{
				Scenario:     sc,
				Clients:      4,
				OpsPerClient: 25,
				Blocks:       r.Blocks(),
				BlockBytes:   64,
				Seed:         91,
			})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if rep.Lost != 0 {
			t.Errorf("%s: %d lost operations across the node kill", sc, rep.Lost)
		}
		if rep.Corrupted != 0 {
			t.Errorf("%s: %d corrupted reads across the node kill", sc, rep.Corrupted)
		}
		if rep.Ops != 100 {
			t.Errorf("%s: completed %d ops, want 100", sc, rep.Ops)
		}
	}
	select {
	case <-killed:
	default:
		t.Fatal("scenario sweep finished before the kill fired — nothing was tested under failover")
	}

	stats, err := r.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Nodes) != 3 {
		t.Fatalf("stats carry %d node records, want 3", len(stats.Nodes))
	}
	dead := stats.Nodes[2]
	if dead.Healthy {
		t.Error("killed daemon still marked healthy")
	}
	if dead.Ejections == 0 {
		t.Error("killed daemon shows no ejection")
	}
	if dead.Failovers == 0 {
		t.Error("no failovers recorded — reads of the dead primary's addresses never exercised the replica")
	}
	if !stats.Nodes[0].Healthy || !stats.Nodes[1].Healthy {
		t.Error("surviving daemons marked unhealthy")
	}
	if stats.RoutingEpoch != 1 || stats.Replicas != 2 {
		t.Errorf("routing metadata = (epoch %d, replicas %d)", stats.RoutingEpoch, stats.Replicas)
	}

	// The survivors' shard entries replay to exactly the leaked bits the
	// cluster reports: the dead node contributes nothing (its history died
	// with it), and the aggregate stays internally consistent.
	if len(stats.Shards) != 2 {
		t.Fatalf("aggregated %d shard entries, want 2 from the survivors", len(stats.Shards))
	}
	var total float64
	for _, sh := range stats.Shards {
		if sh.Node != 0 && sh.Node != 1 {
			t.Errorf("shard entry tagged node %d, want only survivors", sh.Node)
		}
		rec := adversary.ReconstructSchedule(sh.RateChanges, 4)
		if rec.Transitions == 0 {
			t.Errorf("node %d crossed no epoch boundary over the sweep", sh.Node)
		}
		if math.Abs(rec.Bits-sh.LeakedBits) > 1e-12 {
			t.Errorf("node %d: adversary reconstructs %v bits, node reports %v", sh.Node, rec.Bits, sh.LeakedBits)
		}
		total += rec.Bits
	}
	if math.Abs(total-stats.LeakedBits) > 1e-12 {
		t.Errorf("adversary total %v bits != cluster leaked_bits %v", total, stats.LeakedBits)
	}
}

// freePort reserves an ephemeral loopback port and releases it for a daemon
// to bind. The tiny reuse race is acceptable on loopback in CI.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return fmt.Sprintf("127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
}
