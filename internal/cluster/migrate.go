package cluster

import (
	"fmt"
	"time"
)

// Migration: when the node map changes (epoch bump), every block must move
// from its old owners to its new ones without either interrupting service
// or opening a timing channel. The router does it with a watermark over the
// shared address space [0, migrateEnd) — the addresses both topologies can
// hold. Migrated addresses are served by the new topology, unmigrated ones
// by the old, and the watermark only advances under the address's stripe
// gate — so no client operation can interleave with the copy of the block
// it is touching, and no update is lost.
//
// Because both epochs share physical nodes, a copy's writes land on slots
// that may still hold old-layout data. planScan therefore simulates the
// whole copy before the first one runs and picks a scan direction
// (ascending for grows, descending for shrinks — in general, whichever the
// simulation proves safe) under which every slot a copy overwrites belongs
// to a block that is already migrated, already being copied, or outside the
// space served during the migration. A transformation safe in neither
// direction (an arbitrary node permutation, say) is rejected at startup
// with instructions to go through an intermediate epoch, rather than
// silently corrupting data.
//
// While the migration runs, the router serves only the shared space: fresh
// addresses past the old capacity map to physical slots still holding
// old-layout residue, so after the copy phase a scrub phase writes zero
// blocks over the fresh space at the same public rate, and only then does
// the full target space open.
//
// Obliviousness is inherited, not added: each copy is one ordinary Read
// against the old owners and one ordinary Write against the new ones (each
// scrub one ordinary Write), entering the nodes' request queues like any
// client operation and being served in regular paced slots that would
// otherwise carry dummy accesses. A node's externally observable schedule
// is therefore byte-identical with and without an active migration (the
// migration obliviousness test pins this on the slot traces); the only
// migration-dependent observables are the epoch bump and the copy rate
// (MigrateEvery), both public parameters.

// initMigration dials the retiring nodes of the previous topology (nodes
// shared with the current map reuse its pools), learns the old geometry,
// plans a safe scan direction, and starts the copy loop. Called from
// NewRouter with the current topology already established.
func (r *Router) initMigration(prevMap NodeMap, byAddr map[string]*node) error {
	prev := &topology{m: prevMap}
	r.prev = prev // set early so Close cleans up a partial dial
	for i, addr := range prevMap.Nodes {
		if n, ok := byAddr[addr]; ok {
			prev.nodes = append(prev.nodes, n)
			continue
		}
		// Retiring nodes carry negative indices: they are not part of the
		// current topology's node numbering, but stats and Close must still
		// see them.
		n, err := dialNode(-(i + 1), addr, r.cfg.ConnsPerNode)
		if err != nil {
			return fmt.Errorf("cluster: previous topology node %d (%s): %w", i, addr, err)
		}
		prev.nodes = append(prev.nodes, n)
	}
	minBlocks, err := r.learnGeometry(prev.nodes)
	if err != nil {
		return fmt.Errorf("cluster: previous topology: %w", err)
	}
	if minBlocks < uint64(prevMap.Replicas) {
		return fmt.Errorf("cluster: previous topology: replication factor %d exceeds the smallest node's %d blocks",
			prevMap.Replicas, minBlocks)
	}
	prev.stripe = prevMap.Stripe(minBlocks)
	prev.blocks = prevMap.Blocks(minBlocks)

	// Only addresses that exist in both topologies are copied: old blocks
	// past the new capacity are dropped (the operator shrank the cluster),
	// new addresses past the old capacity are scrubbed and start fresh.
	r.migrateEnd = r.target
	if prev.blocks < r.migrateEnd {
		r.migrateEnd = prev.blocks
	}
	r.descending, err = planScan(&r.cur, prev, r.migrateEnd)
	if err != nil {
		return err
	}
	if r.descending {
		r.watermark.Store(r.migrateEnd)
	}
	// Until every shared block is copied and the fresh space scrubbed, only
	// the shared space is servable.
	r.served.Store(r.migrateEnd)
	r.migrating.Store(true)
	r.wg.Add(1)
	go r.migrator(r.cfg.MigrateEvery)
	return nil
}

// planScan simulates the copy sweep and returns a scan direction under
// which no copy overwrites a physical slot whose old-layout block is still
// unmigrated and servable. For each shared node, the slot a new-layout
// replica write lands on is inverted through the old layout to the block d
// it would destroy; ascending order is safe when every such d has already
// been copied (d ≤ w), descending when it is yet to come (d ≥ w). Blocks at
// or past migrateEnd are not served during the migration and their slots
// are fair game either way. Grow-by-joining and shrink-by-leaving always
// plan; a transformation safe in neither direction is refused.
func planScan(cur, prev *topology, migrateEnd uint64) (descending bool, err error) {
	prevIdx := make(map[string]int, len(prev.m.Nodes))
	for i, a := range prev.m.Nodes {
		prevIdx[a] = i
	}
	oldN := uint64(len(prev.m.Nodes))
	oldK := uint64(prev.m.Replicas)
	ascOK, descOK := true, true
	reps := make([]int, 0, 8)
	for w := uint64(0); w < migrateEnd; w++ {
		reps = cur.m.ReplicaNodes(w, reps[:0])
		for ri, ni := range reps {
			pi, shared := prevIdx[cur.m.Nodes[ni]]
			if !shared {
				continue
			}
			local := cur.m.ReplicaLocal(w, ri, cur.stripe)
			rr := local / prev.stripe
			if rr >= oldK {
				continue // past the old layout's used region: holds no old block
			}
			// Invert the old layout: replica rr of which block sat at this
			// slot? Offset gives d's stripe-local position, the node identity
			// gives d mod oldN.
			o := local % prev.stripe
			d := oldN*o + (uint64(pi)+oldN-rr%oldN)%oldN
			if d >= migrateEnd || d == w {
				continue
			}
			if d > w {
				ascOK = false
			} else {
				descOK = false
			}
			if !ascOK && !descOK {
				return false, fmt.Errorf("cluster: migrating epoch %d to epoch %d in place would overwrite unmigrated blocks in either scan direction (copying block %d clobbers block %d) — this topology change must go through an intermediate epoch",
					prev.m.Epoch, cur.m.Epoch, w, d)
			}
		}
	}
	if ascOK {
		return false, nil
	}
	return true, nil
}

// migrator runs the copy phase (one block per tick until the watermark
// covers the shared space) and then the scrub phase (one zero block per
// tick over the fresh space), at one constant public rate: a tick performs
// exactly one storage round-trip regardless of what the blocks contain or
// whether a step had to be retried.
func (r *Router) migrator(every time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	copyDone := false
	scrub := r.migrateEnd
	zero := make([]byte, r.blockBytes)
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if !copyDone {
				copyDone = r.migrateStep()
				continue
			}
			if scrub < r.target {
				// Fresh addresses are not yet servable (check() caps at the
				// shared space), so no gate is needed: the scrub races no one.
				if r.writeVia(&r.cur, "", scrub, zero) == nil {
					scrub++
				}
				continue
			}
			r.finishMigration()
			return
		}
	}
}

// migrateStep copies the block at the watermark from the old topology to
// the new one and advances the watermark, all under the address's stripe
// gate — a client Read/Write of any address in the same stripe is excluded
// for the duration, so the copy and the watermark flip are atomic with
// respect to the data plane. A failed copy (all old replicas down, say)
// leaves the watermark in place and is retried next tick.
func (r *Router) migrateStep() (done bool) {
	w := r.watermark.Load()
	var addr uint64
	if r.descending {
		if w == 0 {
			return true
		}
		addr = w - 1
	} else {
		if w >= r.migrateEnd {
			return true
		}
		addr = w
	}
	g := r.gate(addr)
	g.Lock()
	defer g.Unlock()
	data, err := r.readVia(r.prev, "", addr)
	if err == nil {
		err = r.writeVia(&r.cur, "", addr, data)
	}
	if err != nil {
		return false
	}
	r.copied.Add(1)
	if r.descending {
		r.watermark.Store(addr)
		return addr == 0
	}
	r.watermark.Store(addr + 1)
	return addr+1 >= r.migrateEnd
}

// finishMigration opens the full target space and retires the previous
// topology: the watermark covers the whole shared space and the fresh space
// is scrubbed, so no address routes to the old owners anymore (topoFor's
// prev branch is unreachable), and the pools of nodes that are not part of
// the current map are closed. Closed pools stay closed — a straggling
// operation cannot resurrect a connection to a retired node.
func (r *Router) finishMigration() {
	r.served.Store(r.target)
	r.migrating.Store(false)
	for _, n := range r.prev.nodes {
		if n.index < 0 {
			n.close()
		}
	}
}
