package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tcoram/internal/server"
)

// killableNode is an in-process daemon that can be killed abruptly: the
// listener closes and every accepted connection is torn down without a
// goodbye, so clients observe exactly what a crashed process would give
// them — a dead transport, not a polite application-level rejection.
type killableNode struct {
	addr string
	st   *server.Store
	l    net.Listener

	mu    sync.Mutex
	conns []net.Conn
	once  sync.Once
}

func (k *killableNode) Accept() (net.Conn, error) {
	c, err := k.l.Accept()
	if err == nil {
		k.mu.Lock()
		k.conns = append(k.conns, c)
		k.mu.Unlock()
	}
	return c, err
}

func (k *killableNode) Close() error   { return k.l.Close() }
func (k *killableNode) Addr() net.Addr { return k.l.Addr() }

// kill simulates a crash: no new connections, live connections reset,
// store down. Idempotent; also registered as test cleanup.
func (k *killableNode) kill() {
	k.once.Do(func() {
		k.l.Close()
		k.mu.Lock()
		for _, c := range k.conns {
			c.Close()
		}
		k.mu.Unlock()
		k.st.Close()
	})
}

// startKillableNode serves one store on an ephemeral port with crash
// semantics available to the test.
func startKillableNode(t testing.TB, cfg server.Config) *killableNode {
	t.Helper()
	st, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	k := &killableNode{addr: l.Addr().String(), st: st, l: l}
	go server.Serve(k, st)
	t.Cleanup(k.kill)
	return k
}

// fastFailoverCfg keeps retry/probe latencies test-sized.
func fastFailoverCfg(nodes []string, replicas int) Config {
	return Config{
		Nodes:        nodes,
		Epoch:        1,
		Replicas:     replicas,
		ProbeEvery:   20 * time.Millisecond,
		RetryBackoff: server.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
	}
}

// TestRouterReplicaFailover is the replication acceptance at the unit
// level: with K=2 over three nodes, killing one node loses nothing — every
// read is served by the surviving replica of each address, writes keep
// succeeding, and the router's stats show the ejection, the failovers, and
// the writes the dead node missed.
func TestRouterReplicaFailover(t *testing.T) {
	nodes := []*killableNode{
		startKillableNode(t, unpacedNodeCfg(256)),
		startKillableNode(t, unpacedNodeCfg(256)),
		startKillableNode(t, unpacedNodeCfg(256)),
	}
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	r := startRouter(t, fastFailoverCfg(addrs, 2))

	// 3 nodes × 256 blocks / 2 replicas = 384 cluster blocks.
	if r.Blocks() != 384 {
		t.Fatalf("cluster blocks = %d, want 384", r.Blocks())
	}
	buf := make([]byte, 64)
	for addr := uint64(0); addr < r.Blocks(); addr++ {
		server.FillPayload(buf, addr, 1, addr)
		if err := r.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
	}

	nodes[1].kill()

	// Every block is still readable and intact: addresses whose primary was
	// node 1 come from the successor replica, the rest never notice.
	for addr := uint64(0); addr < r.Blocks(); addr++ {
		data, err := r.Read(addr)
		if err != nil {
			t.Fatalf("read %d after node kill: %v", addr, err)
		}
		if err := server.CheckPayload(data, addr); err != nil {
			t.Fatalf("block %d corrupt after failover: %v", addr, err)
		}
	}
	// Writes degrade to the surviving replica instead of failing.
	for addr := uint64(0); addr < r.Blocks(); addr += 7 {
		server.FillPayload(buf, addr, 2, addr)
		if err := r.Write(addr, buf); err != nil {
			t.Fatalf("write %d after node kill: %v", addr, err)
		}
	}

	stats, err := r.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Nodes) != 3 {
		t.Fatalf("stats carry %d node records, want 3", len(stats.Nodes))
	}
	dead := stats.Nodes[1]
	if dead.Healthy {
		t.Error("killed node still marked healthy")
	}
	if dead.Ejections == 0 {
		t.Error("killed node shows no ejection")
	}
	if dead.Failovers == 0 {
		t.Error("no failovers recorded for reads the dead primary lost")
	}
	if dead.ReplicaWriteMisses == 0 {
		t.Error("no write misses recorded for the dead replica")
	}
	if dead.LastError == "" {
		t.Error("ejected node carries no last_error")
	}
	if !stats.Nodes[0].Healthy || !stats.Nodes[2].Healthy {
		t.Error("surviving nodes marked unhealthy")
	}
	if stats.RoutingEpoch != 1 || stats.Replicas != 2 || stats.MapFingerprint == "" {
		t.Errorf("routing metadata = (epoch %d, replicas %d, map %q)",
			stats.RoutingEpoch, stats.Replicas, stats.MapFingerprint)
	}
}

// TestRouterReinstatement: an ejected node that answers again (here: a
// different healthy daemon is irrelevant — the same one comes back) rejoins
// the pool via the probe loop.
func TestRouterReinstatement(t *testing.T) {
	k := startKillableNode(t, unpacedNodeCfg(64))
	healthy := startKillableNode(t, unpacedNodeCfg(64))
	r := startRouter(t, fastFailoverCfg([]string{healthy.addr, k.addr}, 2))

	buf := make([]byte, 64)
	server.FillPayload(buf, 1, 1, 1)
	if err := r.Write(1, buf); err != nil {
		t.Fatal(err)
	}

	// Eject node 1 by hand (its pool is intact — this is the probe loop's
	// reinstatement path, not the crash path).
	r.cur.nodes[1].noteFailure(server.ErrClientClosed)
	if r.cur.nodes[1].healthy.Load() {
		t.Fatal("noteFailure did not eject")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !r.cur.nodes[1].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never reinstated a live node")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceStatsSurvivesNodeLoss pins the lenient aggregation path: with
// one node unreachable, ServiceStats still returns the cluster view — the
// dead node contributes an empty snapshot at its slice position (so the
// survivors' shard entries keep their node tags) and shows up ejected in
// the per-node health list. The strict NodeStats keeps failing, for callers
// that need all-or-nothing.
func TestServiceStatsSurvivesNodeLoss(t *testing.T) {
	nodes := []*killableNode{
		startKillableNode(t, unpacedNodeCfg(128)),
		startKillableNode(t, unpacedNodeCfg(128)),
		startKillableNode(t, unpacedNodeCfg(128)),
	}
	r := startRouter(t, fastFailoverCfg([]string{nodes[0].addr, nodes[1].addr, nodes[2].addr}, 2))

	nodes[0].kill()

	stats, err := r.ServiceStats()
	if err != nil {
		t.Fatalf("ServiceStats with a dead node: %v", err)
	}
	// unpacedNodeCfg serves 2 shards per node: the two survivors contribute
	// 4 entries, tagged with their true node indices.
	if len(stats.Shards) != 4 {
		t.Fatalf("aggregated %d shard entries, want 4 from the two survivors", len(stats.Shards))
	}
	for _, sh := range stats.Shards {
		if sh.Node != 1 && sh.Node != 2 {
			t.Errorf("shard entry tagged node %d, want only survivors 1 and 2", sh.Node)
		}
	}
	if stats.Nodes[0].Healthy {
		t.Error("dead node reported healthy in stats")
	}
	if _, err := r.NodeStats(); err == nil {
		t.Error("strict NodeStats succeeded with an unreachable node")
	}
}

// TestRouterFingerprintGuard: the epoch-versioned map makes the reversed-
// node-order mistake detectable — a router started with ExpectFingerprint
// over a reordered list refuses to serve, while the right order passes.
func TestRouterFingerprintGuard(t *testing.T) {
	_, addrs := startNodes(t, 2, unpacedNodeCfg(64))
	want := Config{Nodes: addrs, Replicas: 2}.Map().Fingerprint()

	r, err := NewRouter(Config{Nodes: addrs, Replicas: 2, ExpectFingerprint: want})
	if err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	r.Close()

	reversed := []string{addrs[1], addrs[0]}
	if _, err := NewRouter(Config{Nodes: reversed, Replicas: 2, ExpectFingerprint: want}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("reversed node order with ExpectFingerprint: err = %v, want fingerprint mismatch", err)
	}
	// Replication-factor drift is the same class of mistake.
	if _, err := NewRouter(Config{Nodes: addrs, Replicas: 1, ExpectFingerprint: want}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("changed replication factor with ExpectFingerprint: err = %v, want fingerprint mismatch", err)
	}
}

// TestRouterReplicationGeometry: replication shrinks the served space by K
// and refuses topologies it cannot stripe.
func TestRouterReplicationGeometry(t *testing.T) {
	_, addrs := startNodes(t, 3, unpacedNodeCfg(128))
	r := startRouter(t, Config{Nodes: addrs, Replicas: 3})
	// Each node spends a 128/3 = 42-block stripe per replica; the cluster
	// serves 3 × 42 = 126 addresses (striping floors, capacity is not
	// oversubscribed).
	if r.Blocks() != 126 {
		t.Errorf("K=3 over 3×128 blocks serves %d, want 126", r.Blocks())
	}

	// A node too small to hold even one block per stripe fails at dial.
	_, tiny := startNode(t, server.Config{Shards: 1, Blocks: 1, BlockBytes: 64, Unpaced: true})
	if _, err := NewRouter(Config{Nodes: []string{tiny, addrs[0]}, Replicas: 2}); err == nil ||
		!strings.Contains(err.Error(), "replication factor") {
		t.Errorf("unstripeable topology: err = %v", err)
	}
}
