package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tcoram/internal/server"
)

// Router is the cluster's data plane: it implements server.Service by
// consistently routing every Read/Write to the daemon owning the address
// (NodeOf above the target store's own ShardOf) over a per-node pool of
// pipelined connections, and by aggregating every node's stats into one
// cluster-wide view with a single leakage budget. Because it is a
// server.Service, the standard daemon loop (server.Serve) turns it into a
// TCP proxy — cmd/oramproxy is nothing but that composition.
//
// All methods are safe for concurrent use.
type Router struct {
	cfg        Config
	pools      []*pool
	blocks     uint64 // cluster-wide address space
	blockBytes int
	nodeBlocks []uint64 // per-node capacity learned at dial time
}

// pool is one node's connection set. server.Client multiplexes concurrent
// callers onto one socket by request id, so correctness needs only one
// connection; the pool spreads JSON encode/decode and syscall work across
// several, picked round-robin.
type pool struct {
	addr    string
	clients []*server.Client
	next    atomic.Uint64
}

func (p *pool) pick() *server.Client {
	return p.clients[p.next.Add(1)%uint64(len(p.clients))]
}

// NewRouter dials every configured node, learns the cluster geometry from
// each node's stats (block count and size), and returns a serving router.
// It fails fast if any node is unreachable, if nodes disagree on block
// size, or if the requested Blocks exceeds what the topology can hold.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg}
	ok := false
	defer func() {
		if !ok {
			r.Close()
		}
	}()
	for i, addr := range cfg.Nodes {
		p := &pool{addr: addr}
		for c := 0; c < cfg.ConnsPerNode; c++ {
			cl, err := server.Dial(addr)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d (%s): %w", i, addr, err)
			}
			p.clients = append(p.clients, cl)
		}
		r.pools = append(r.pools, p)
	}

	// One stats round-trip per node doubles as the liveness check and
	// teaches the router each node's capacity.
	minBlocks := uint64(0)
	for i, p := range r.pools {
		st, err := p.pick().Stats()
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d (%s): %w", i, p.addr, err)
		}
		if st.Blocks == 0 {
			return nil, fmt.Errorf("cluster: node %d (%s) reports zero blocks", i, p.addr)
		}
		if r.blockBytes == 0 {
			r.blockBytes = st.BlockBytes
		} else if st.BlockBytes != r.blockBytes {
			return nil, fmt.Errorf("cluster: node %d (%s) serves %d-byte blocks, node 0 serves %d",
				i, p.addr, st.BlockBytes, r.blockBytes)
		}
		r.nodeBlocks = append(r.nodeBlocks, st.Blocks)
		if minBlocks == 0 || st.Blocks < minBlocks {
			minBlocks = st.Blocks
		}
	}
	// Modulo routing fills nodes evenly, so the smallest node bounds the
	// addressable space: every global address below N×min maps to a valid
	// local address on its owner.
	r.blocks = minBlocks * uint64(len(r.pools))
	if cfg.Blocks > 0 {
		if cfg.Blocks > r.blocks {
			return nil, fmt.Errorf("cluster: %d blocks requested but the %d nodes hold at most %d (smallest node: %d)",
				cfg.Blocks, len(r.pools), r.blocks, minBlocks)
		}
		r.blocks = cfg.Blocks
	}
	ok = true
	return r, nil
}

// Blocks returns the cluster-wide address space the router serves.
func (r *Router) Blocks() uint64 { return r.blocks }

// BlockBytes returns the block payload size the nodes agreed on.
func (r *Router) BlockBytes() int { return r.blockBytes }

// Nodes returns the node count.
func (r *Router) Nodes() int { return len(r.pools) }

// route bounds-checks a global address and returns its owning pool and
// node-local address.
func (r *Router) route(addr uint64) (*pool, uint64, error) {
	if addr >= r.blocks {
		return nil, 0, fmt.Errorf("cluster: address %d out of range (%d blocks)", addr, r.blocks)
	}
	return r.pools[NodeOf(addr, len(r.pools))], LocalAddr(addr, len(r.pools)), nil
}

// Read fetches a block from its owning node.
func (r *Router) Read(addr uint64) ([]byte, error) {
	p, local, err := r.route(addr)
	if err != nil {
		return nil, err
	}
	return p.pick().Read(local)
}

// Write stores a block on its owning node.
func (r *Router) Write(addr uint64, data []byte) error {
	p, local, err := r.route(addr)
	if err != nil {
		return err
	}
	return p.pick().Write(local, data)
}

// NodeStats polls every node concurrently and returns the raw per-node
// snapshots, indexed by node.
func (r *Router) NodeStats() ([]server.Stats, error) {
	out := make([]server.Stats, len(r.pools))
	errs := make([]error, len(r.pools))
	var wg sync.WaitGroup
	for i, p := range r.pools {
		wg.Add(1)
		go func(i int, p *pool) {
			defer wg.Done()
			st, err := p.pick().Stats()
			if err != nil {
				errs[i] = fmt.Errorf("cluster: node %d (%s): %w", i, p.addr, err)
				return
			}
			out[i] = st
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ServiceStats aggregates every node's snapshot into one cluster-wide
// server.Stats: the per-shard entries of all nodes concatenated (tagged
// with their node index, so rate_changes histories stay per-shard and
// adversary replay works unchanged), leaked bits summed across the cluster,
// and the single cluster-wide budget judged against that sum. Per-node
// budgets, if any node was started with one, are deliberately not
// surfaced: the cluster session has one timing channel and one account.
func (r *Router) ServiceStats() (server.Stats, error) {
	nodes, err := r.NodeStats()
	if err != nil {
		return server.Stats{}, err
	}
	return Aggregate(nodes, r.blocks, r.blockBytes, r.cfg.LeakageBudgetBits), nil
}

// Aggregate merges per-node stats into the cluster view. Split out of
// ServiceStats so tests (and offline tooling fed per-node records) can
// aggregate without a live router.
func Aggregate(nodes []server.Stats, blocks uint64, blockBytes int, budgetBits float64) server.Stats {
	agg := server.Stats{
		Blocks:            blocks,
		BlockBytes:        blockBytes,
		LeakageBudgetBits: budgetBits,
	}
	for node, st := range nodes {
		for _, sh := range st.Shards {
			sh.Node = node
			agg.Shards = append(agg.Shards, sh)
		}
		agg.LeakedBits += st.LeakedBits
	}
	agg.LeakageExceeded = budgetBits > 0 && agg.LeakedBits > budgetBits
	return agg
}

// Close tears down every pooled connection. The daemons keep running —
// their slot grids, and therefore their timing behaviour, are independent
// of whether a proxy is attached.
func (r *Router) Close() error {
	var first error
	for _, p := range r.pools {
		if p == nil {
			continue
		}
		for _, c := range p.clients {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
