package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcoram/internal/server"
)

// gateCount stripes the migration gate: an RWMutex per stripe serializes a
// client operation with a migration copy of the same address stripe, so the
// watermark can never advance past an address mid-operation (read-old /
// write-new races are excluded by construction). 256 stripes keep the odds
// of an unrelated client blocking behind a copy below 0.4%.
const gateCount = 256

// topology is one routing epoch's data plane: the versioned map, the dialed
// nodes in map order, and the learned per-stripe capacity.
type topology struct {
	m      NodeMap
	nodes  []*node
	stripe uint64
	blocks uint64
}

// Router is the cluster's data plane: it implements server.Service by
// routing every Read/Write to the K replicas owning the address (NodeMap
// above the target store's own ShardOf), failing over across replicas with
// a recoverable-vs-fatal error taxonomy, and by aggregating every node's
// stats into one cluster-wide view with a single leakage budget and the
// routing epoch attached. Because it is a server.Service, the standard
// daemon loop (server.Serve) turns it into a TCP proxy — cmd/oramproxy is
// nothing but that composition.
//
// All methods are safe for concurrent use.
type Router struct {
	cfg        Config
	cur        topology
	prev       *topology // previous epoch's topology, nil unless migrating
	target     uint64    // cluster-wide address space once fully on cur
	served     atomic.Uint64
	blockBytes int
	nodeBlocks []uint64 // per-node capacity learned at dial time

	// Migration state. The watermark splits the shared address space
	// [0, migrateEnd) into a migrated part served by cur and an unmigrated
	// part served by prev: ascending scans (grow) have migrated = [0, w),
	// descending scans (shrink) have migrated = [w, migrateEnd) — the
	// direction is chosen so a copy's writes can only land on old-layout
	// slots whose blocks are already migrated (see migrate.go). While
	// migrating, only the shared space is served; the remainder of the
	// target space opens after the copy and scrub phases complete.
	watermark  atomic.Uint64
	migrating  atomic.Bool
	descending bool
	migrateEnd uint64
	copied     atomic.Uint64
	gates      [gateCount]sync.RWMutex

	// tenantLeaks caches the cluster-wide per-tenant leaked bits (summed
	// over every node's attribution), refreshed by the prober and by every
	// stats poll. Admission reads the cache instead of fanning a stats
	// round-trip onto every data op; nil until the first refresh, during
	// which all tenants are admitted.
	tenantLeaks atomic.Pointer[map[string]float64]

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// NewRouter dials every configured node, learns the cluster geometry from
// each node's stats (block count and size), validates the node map's
// fingerprint if one is expected, and returns a serving router. If a
// previous topology is configured it also dials any retiring nodes and
// starts the migration plane. It fails fast if any node is unreachable, if
// nodes disagree on block size, if the requested Blocks exceeds what the
// topology can hold, or if the map fingerprint does not match.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Map()
	if cfg.ExpectFingerprint != "" && m.Fingerprint() != cfg.ExpectFingerprint {
		return nil, fmt.Errorf("cluster: node map fingerprint %s does not match expected %s — the node list or replication factor drifted from the map this data was written under (epoch %d)",
			m.Fingerprint(), cfg.ExpectFingerprint, m.Epoch)
	}
	r := &Router{cfg: cfg, stop: make(chan struct{})}
	r.cur.m = m
	ok := false
	defer func() {
		if !ok {
			r.Close()
		}
	}()

	byAddr := make(map[string]*node, len(m.Nodes))
	for i, addr := range m.Nodes {
		n, err := dialNode(i, addr, cfg.ConnsPerNode)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d (%s): %w", i, addr, err)
		}
		r.cur.nodes = append(r.cur.nodes, n)
		byAddr[addr] = n
	}

	// One stats round-trip per node doubles as the liveness check and
	// teaches the router each node's capacity.
	minBlocks, err := r.learnGeometry(r.cur.nodes)
	if err != nil {
		return nil, err
	}
	if minBlocks < uint64(m.Replicas) {
		return nil, fmt.Errorf("cluster: replication factor %d exceeds the smallest node's %d blocks", m.Replicas, minBlocks)
	}
	// Modulo routing fills nodes evenly and each node spends 1/K of its
	// space per replica stripe, so the smallest node bounds the addressable
	// space: every global address below N×(min/K) maps to valid stripe-local
	// addresses on all K of its owners.
	r.cur.stripe = m.Stripe(minBlocks)
	r.cur.blocks = m.Blocks(minBlocks)
	r.target = r.cur.blocks
	if cfg.Blocks > 0 {
		if cfg.Blocks > r.target {
			return nil, fmt.Errorf("cluster: %d blocks requested but the %d nodes hold at most %d (smallest node: %d blocks, %d replicas)",
				cfg.Blocks, len(r.cur.nodes), r.target, minBlocks, m.Replicas)
		}
		r.target = cfg.Blocks
	}
	r.served.Store(r.target)

	if prevMap, hasPrev := cfg.PrevMap(); hasPrev {
		if err := r.initMigration(prevMap, byAddr); err != nil {
			return nil, err
		}
	}
	if cfg.ProbeEvery > 0 {
		r.wg.Add(1)
		go r.prober(cfg.ProbeEvery)
	}
	ok = true
	return r, nil
}

// learnGeometry polls each node's stats, enforces a uniform block size, and
// returns the smallest node capacity.
func (r *Router) learnGeometry(nodes []*node) (uint64, error) {
	minBlocks := uint64(0)
	for _, n := range nodes {
		st, err := n.pick().Stats()
		if err != nil {
			return 0, fmt.Errorf("cluster: node %d (%s): %w", n.index, n.addr, err)
		}
		if st.Blocks == 0 {
			return 0, fmt.Errorf("cluster: node %d (%s) reports zero blocks", n.index, n.addr)
		}
		if r.blockBytes == 0 {
			r.blockBytes = st.BlockBytes
		} else if st.BlockBytes != r.blockBytes {
			return 0, fmt.Errorf("cluster: node %d (%s) serves %d-byte blocks, the cluster serves %d",
				n.index, n.addr, st.BlockBytes, r.blockBytes)
		}
		r.nodeBlocks = append(r.nodeBlocks, st.Blocks)
		if minBlocks == 0 || st.Blocks < minBlocks {
			minBlocks = st.Blocks
		}
	}
	return minBlocks, nil
}

// Blocks returns the cluster-wide address space the router serves right
// now. While a migration is active this is the space shared by both
// topologies; once the copy and scrub phases finish it grows (or has
// already shrunk) to the new topology's capacity.
func (r *Router) Blocks() uint64 { return r.served.Load() }

// BlockBytes returns the block payload size the nodes agreed on.
func (r *Router) BlockBytes() int { return r.blockBytes }

// Nodes returns the current topology's node count.
func (r *Router) Nodes() int { return len(r.cur.nodes) }

// Epoch returns the routing epoch the router serves under.
func (r *Router) Epoch() uint64 { return r.cur.m.Epoch }

// Fingerprint returns the current node map's fingerprint — print it, keep
// it, and hand it back via ExpectFingerprint on the next proxy start.
func (r *Router) Fingerprint() string { return r.cur.m.Fingerprint() }

// allNodes returns every live node exactly once: the current topology's,
// plus — while a migration is active — the retiring nodes that are only in
// the previous one.
func (r *Router) allNodes() []*node {
	if r.prev == nil || !r.migrating.Load() {
		return r.cur.nodes
	}
	out := make([]*node, 0, len(r.cur.nodes)+len(r.prev.nodes))
	out = append(out, r.cur.nodes...)
	for _, n := range r.prev.nodes {
		if n.index < 0 { // prev-only nodes carry negative indices
			out = append(out, n)
		}
	}
	return out
}

// gate returns the migration stripe lock covering addr.
func (r *Router) gate(addr uint64) *sync.RWMutex {
	return &r.gates[addr%gateCount]
}

// topoFor resolves which epoch's topology serves addr right now: during a
// migration, unmigrated addresses (below the watermark on descending scans,
// at or above it on ascending ones) that the old topology can hold are
// still owned by the previous epoch; everything else by the current one.
func (r *Router) topoFor(addr uint64) *topology {
	if r.migrating.Load() {
		w := r.watermark.Load()
		migrated := addr < w
		if r.descending {
			migrated = addr >= w
		}
		if !migrated && addr < r.prev.blocks {
			return r.prev
		}
	}
	return &r.cur
}

func (r *Router) check(addr uint64) error {
	if served := r.served.Load(); addr >= served {
		return server.Errorf(server.CodeOutOfRange, "cluster: address %d out of range (%d blocks)", addr, served)
	}
	return nil
}

// Read fetches a block from the first healthy replica of its owning set.
func (r *Router) Read(addr uint64) ([]byte, error) {
	return r.TenantRead("", addr)
}

// Write stores a block on every replica of its owning set.
func (r *Router) Write(addr uint64, data []byte) error {
	return r.TenantWrite("", addr, data)
}

// TenantRead is Read charged to tenant's cluster-wide leakage sub-budget.
func (r *Router) TenantRead(tenant string, addr uint64) ([]byte, error) {
	if err := r.check(addr); err != nil {
		return nil, err
	}
	if err := r.admitTenant(tenant); err != nil {
		return nil, err
	}
	g := r.gate(addr)
	g.RLock()
	defer g.RUnlock()
	return r.readVia(r.topoFor(addr), tenant, addr)
}

// TenantWrite is Write charged to tenant's cluster-wide sub-budget.
func (r *Router) TenantWrite(tenant string, addr uint64, data []byte) error {
	if err := r.check(addr); err != nil {
		return err
	}
	if err := r.admitTenant(tenant); err != nil {
		return err
	}
	g := r.gate(addr)
	g.RLock()
	defer g.RUnlock()
	return r.writeVia(r.topoFor(addr), tenant, addr, data)
}

// ReadBatch serves one client batch across the cluster: members are
// planned onto the first healthy replica node that owns each address, one
// sub-batch per node fans out concurrently through the node's own
// batch_read verb, and the results reassemble in request order. A node
// that fails its sub-batch (died mid-batch, or rejected it — e.g. its
// configured k is smaller than the sub-batch) is retried member by member
// through the full replica-failover read path, so one bad node degrades
// its members to single-op service instead of failing the batch.
func (r *Router) ReadBatch(tenant string, addrs []uint64) ([]server.BatchResult, error) {
	if len(addrs) == 0 {
		return nil, server.Errorf(server.CodeBadRequest, "cluster: empty batch")
	}
	if len(addrs) > server.MaxBatchAddrs {
		return nil, server.Errorf(server.CodeBatchTooLarge, "cluster: batch of %d addresses exceeds the protocol limit of %d", len(addrs), server.MaxBatchAddrs)
	}
	if err := r.admitTenant(tenant); err != nil {
		return nil, err
	}

	// Hold every distinct migration gate the batch touches, acquired in
	// ascending stripe order — the migrator takes one gate at a time, so
	// ordered acquisition cannot deadlock against it or another batch.
	var seen [gateCount]bool
	gateIdx := make([]int, 0, len(addrs))
	for _, addr := range addrs {
		if gi := int(addr % gateCount); !seen[gi] {
			seen[gi] = true
			gateIdx = append(gateIdx, gi)
		}
	}
	sort.Ints(gateIdx)
	for _, gi := range gateIdx {
		r.gates[gi].RLock()
	}
	defer func() {
		for _, gi := range gateIdx {
			r.gates[gi].RUnlock()
		}
	}()

	// Plan each member onto the first healthy replica of its owning set,
	// grouping members by serving node in request order.
	type member struct {
		idx   int // index in addrs/results
		addr  uint64
		local uint64
		t     *topology
		pri   int // replica priority actually planned
	}
	results := make([]server.BatchResult, len(addrs))
	groups := make(map[*node][]member)
	var order []*node
	for i, addr := range addrs {
		if err := r.check(addr); err != nil {
			results[i].Err = err
			continue
		}
		t := r.topoFor(addr)
		reps := t.m.ReplicaNodes(addr, make([]int, 0, 4))
		pri := 0
		for p, ni := range reps {
			if t.nodes[ni].healthy.Load() {
				pri = p
				break
			}
		}
		n := t.nodes[reps[pri]]
		if _, ok := groups[n]; !ok {
			order = append(order, n)
		}
		groups[n] = append(groups[n], member{idx: i, addr: addr, local: t.m.ReplicaLocal(addr, pri, t.stripe), t: t, pri: pri})
	}

	var wg sync.WaitGroup
	for _, n := range order {
		ms := groups[n]
		wg.Add(1)
		go func(n *node, ms []member) {
			defer wg.Done()
			locals := make([]uint64, len(ms))
			for j, m := range ms {
				locals[j] = m.local
			}
			rs, err := n.pick().ReadBatch(tenant, locals)
			if err == nil && len(rs) == len(ms) {
				n.noteSuccess()
				for j, m := range ms {
					results[m.idx] = rs[j]
					if rs[j].Err == nil && m.pri > 0 {
						// Served by a successor: the primary lost this read.
						reps := m.t.m.ReplicaNodes(m.addr, make([]int, 0, 4))
						m.t.nodes[reps[0]].failovers.Add(1)
					}
				}
				return
			}
			if err != nil && server.IsRecoverable(err) {
				n.noteFailure(err)
			}
			// Sub-batch failed as a whole: degrade its members to the
			// single-op failover path so surviving replicas still answer.
			for _, m := range ms {
				data, rerr := r.readVia(m.t, tenant, m.addr)
				results[m.idx] = server.BatchResult{Data: data, Err: rerr}
			}
		}(n, ms)
	}
	wg.Wait()
	return results, nil
}

// admitTenant refuses ops from a tenant whose cluster-wide leakage
// sub-budget is exhausted, judged against the cached per-tenant account
// (refreshed by the prober and every stats poll).
func (r *Router) admitTenant(tenant string) error {
	if tenant == "" || len(r.cfg.TenantBudgets) == 0 {
		return nil
	}
	budget, ok := r.cfg.TenantBudgets[tenant]
	if !ok || budget <= 0 {
		return nil
	}
	leaks := r.tenantLeaks.Load()
	if leaks == nil {
		return nil // no account polled yet
	}
	if leaked := (*leaks)[tenant]; leaked > budget {
		return server.Errorf(server.CodeTenantBudget, "cluster: tenant %q exhausted its leakage sub-budget (%.1f bits leaked, budget %.1f)", tenant, leaked, budget)
	}
	return nil
}

// readVia reads addr through topology t: healthy replicas in priority order
// first, ejected ones as a last resort, with backed-off passes over the
// whole set while every replica is down. A fatal (application-level) error
// returns immediately — every replica would answer the same way.
func (r *Router) readVia(t *topology, tenant string, addr uint64) ([]byte, error) {
	reps := t.m.ReplicaNodes(addr, make([]int, 0, 4))
	var lastErr error
	for attempt := 0; attempt < r.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.cfg.RetryBackoff.Delay(attempt - 1))
		}
		var tried [16]bool // replica indices attempted in pass 0
		for pass := 0; pass < 2; pass++ {
			for pri, ni := range reps {
				n := t.nodes[ni]
				if pass == 0 && !n.healthy.Load() {
					continue // healthy replicas first
				}
				if pass == 1 && (pri >= len(tried) || tried[pri]) {
					continue // already failed this pass-0 attempt
				}
				if pri < len(tried) {
					tried[pri] = true
				}
				data, err := n.pick().TenantRead(tenant, t.m.ReplicaLocal(addr, pri, t.stripe))
				if err == nil {
					n.noteSuccess()
					if pri > 0 {
						// Served by a successor: the primary lost this read.
						t.nodes[reps[0]].failovers.Add(1)
					}
					return data, nil
				}
				if !server.IsRecoverable(err) {
					return nil, err
				}
				n.noteFailure(err)
				lastErr = err
			}
		}
	}
	return nil, server.Errorf(server.CodeUnavailable, "cluster: address %d: all %d replicas failed: %v", addr, len(reps), lastErr)
}

// writeVia writes addr through topology t, fanning out to all K replicas.
// Every replica is attempted — including ejected ones, so a recovering node
// diverges as little as possible — and the write succeeds if at least one
// replica acknowledged it; replicas that missed it are counted
// (replica_write_misses), the visible measure of how stale a rejoining node
// is. Only when no replica acked does the router back off and retry.
func (r *Router) writeVia(t *topology, tenant string, addr uint64, data []byte) error {
	reps := t.m.ReplicaNodes(addr, make([]int, 0, 4))
	var lastErr error
	for attempt := 0; attempt < r.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.cfg.RetryBackoff.Delay(attempt - 1))
		}
		acked := 0
		for pri, ni := range reps {
			n := t.nodes[ni]
			err := n.pick().TenantWrite(tenant, t.m.ReplicaLocal(addr, pri, t.stripe), data)
			if err == nil {
				n.noteSuccess()
				acked++
				continue
			}
			if !server.IsRecoverable(err) {
				return err
			}
			n.noteFailure(err)
			lastErr = err
		}
		if acked > 0 {
			if acked < len(reps) {
				for _, ni := range reps {
					if !t.nodes[ni].healthy.Load() {
						t.nodes[ni].writeMisses.Add(1)
					}
				}
			}
			return nil
		}
	}
	return server.Errorf(server.CodeUnavailable, "cluster: address %d: no replica of %d acked the write: %v", addr, len(reps), lastErr)
}

// NodeStats polls every current-topology node concurrently and returns the
// raw per-node snapshots, indexed by node. It fails on the first
// unreachable node; ServiceStats is the lenient aggregation that keeps
// serving through a node loss.
func (r *Router) NodeStats() ([]server.Stats, error) {
	stats, errs := r.pollNodes()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// pollNodes fetches every current node's stats concurrently, returning the
// snapshots and a parallel error slice.
func (r *Router) pollNodes() ([]server.Stats, []error) {
	out := make([]server.Stats, len(r.cur.nodes))
	errs := make([]error, len(r.cur.nodes))
	var wg sync.WaitGroup
	for i, n := range r.cur.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			st, err := n.pick().Stats()
			if err != nil {
				if server.IsRecoverable(err) {
					n.noteFailure(err)
				}
				errs[i] = fmt.Errorf("cluster: node %d (%s): %w", n.index, n.addr, err)
				return
			}
			n.noteSuccess()
			out[i] = st
		}(i, n)
	}
	wg.Wait()
	return out, errs
}

// ServiceStats aggregates every node's snapshot into one cluster-wide
// server.Stats: the per-shard entries of all nodes concatenated (tagged
// with their node index, so rate_changes histories stay per-shard and
// adversary replay works unchanged), leaked bits summed across the cluster,
// the single cluster-wide budget judged against that sum, and the routing
// epoch, map fingerprint, per-node health, and migration progress attached.
// An unreachable node contributes an empty snapshot (and shows up ejected
// in nodes[]) instead of failing the whole poll — the stats plane must
// survive exactly the node loss the data plane survives. Per-node budgets,
// if any node was started with one, are deliberately not surfaced: the
// cluster session has one timing channel and one account.
func (r *Router) ServiceStats() (server.Stats, error) {
	stats, _ := r.pollNodes()
	agg := Aggregate(stats, r.Blocks(), r.blockBytes, r.cfg.LeakageBudgetBits)
	agg.RoutingEpoch = r.cur.m.Epoch
	agg.MapFingerprint = r.cur.m.Fingerprint()
	agg.Replicas = r.cur.m.Replicas
	agg.MigrationActive = r.migrating.Load()
	agg.MigrationWatermark = r.watermark.Load()
	for _, n := range r.allNodes() {
		agg.Nodes = append(agg.Nodes, n.status())
	}
	r.overlayTenantBudgets(&agg)
	return agg, nil
}

// overlayTenantBudgets applies the cluster-level sub-budgets to the
// aggregated per-tenant account (node-level budgets were dropped by
// Aggregate — the cluster session has one account), adds zero rows for
// budgeted tenants with no traffic yet, and refreshes the admission cache.
func (r *Router) overlayTenantBudgets(agg *server.Stats) {
	if len(r.cfg.TenantBudgets) == 0 && len(agg.Tenants) == 0 {
		return
	}
	leaks := make(map[string]float64, len(agg.Tenants))
	for i := range agg.Tenants {
		ts := &agg.Tenants[i]
		leaks[ts.Tenant] = ts.LeakedBits
		if budget, ok := r.cfg.TenantBudgets[ts.Tenant]; ok && budget > 0 {
			ts.BudgetBits = budget
			ts.Exceeded = ts.LeakedBits > budget
		}
	}
	for t, budget := range r.cfg.TenantBudgets {
		if _, ok := leaks[t]; !ok && budget > 0 {
			agg.Tenants = append(agg.Tenants, server.TenantStat{Tenant: t, BudgetBits: budget})
			leaks[t] = 0
		}
	}
	sort.Slice(agg.Tenants, func(i, j int) bool { return agg.Tenants[i].Tenant < agg.Tenants[j].Tenant })
	r.tenantLeaks.Store(&leaks)
}

// refreshTenants re-polls the nodes and refreshes the per-tenant admission
// cache — the prober's budget-enforcement tick.
func (r *Router) refreshTenants() {
	stats, _ := r.pollNodes()
	leaks := make(map[string]float64)
	for _, st := range stats {
		for _, ts := range st.Tenants {
			leaks[ts.Tenant] += ts.LeakedBits
		}
	}
	r.tenantLeaks.Store(&leaks)
}

// Aggregate merges per-node stats into the cluster view. Split out of
// ServiceStats so tests (and offline tooling fed per-node records) can
// aggregate without a live router.
func Aggregate(nodes []server.Stats, blocks uint64, blockBytes int, budgetBits float64) server.Stats {
	agg := server.Stats{
		Blocks:            blocks,
		BlockBytes:        blockBytes,
		LeakageBudgetBits: budgetBits,
	}
	tenants := make(map[string]server.TenantStat)
	for node, st := range nodes {
		for _, sh := range st.Shards {
			sh.Node = node
			agg.Shards = append(agg.Shards, sh)
		}
		agg.LeakedBits += st.LeakedBits
		// Per-tenant accounts sum across nodes; node-level budget fields
		// are dropped like the node-level session budget is — the cluster
		// judges tenants against its own sub-budgets (ServiceStats).
		for _, ts := range st.Tenants {
			cur := tenants[ts.Tenant]
			cur.Tenant = ts.Tenant
			cur.Transitions += ts.Transitions
			cur.LeakedBits += ts.LeakedBits
			tenants[ts.Tenant] = cur
		}
	}
	if len(tenants) > 0 {
		names := make([]string, 0, len(tenants))
		for t := range tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			agg.Tenants = append(agg.Tenants, tenants[t])
		}
	}
	agg.LeakageExceeded = budgetBits > 0 && agg.LeakedBits > budgetBits
	return agg
}

// Close stops the probe and migration loops and tears down every pooled
// connection. The daemons keep running — their slot grids, and therefore
// their timing behaviour, are independent of whether a proxy is attached.
func (r *Router) Close() error {
	r.closeOnce.Do(func() {
		close(r.stop)
		r.wg.Wait()
		closeNode := func(n *node) {
			if err := n.close(); err != nil && r.closeErr == nil {
				r.closeErr = err
			}
		}
		for _, n := range r.cur.nodes {
			closeNode(n)
		}
		if r.prev != nil {
			for _, n := range r.prev.nodes {
				if n.index < 0 {
					closeNode(n)
				}
			}
		}
	})
	return r.closeErr
}
