// Package cluster scales the sharded ORAM service past one process: a thin
// routing layer that partitions a flat block address space across N
// independent oramd daemons, each of which is itself a sharded, slot-grid-
// paced server.Store. This is the partitioned-ORAM shape of Stefanov et
// al.'s "Towards Practical Oblivious RAM" applied one level up — the paper's
// pacing makes per-shard throughput a fixed budget, so capacity grows only
// by adding independently-paced sub-ORAMs, and past one machine's cores
// that means adding boxes.
//
// Routing composes with the store's own shard routing: a global address a
// lands on node a mod N (NodeOf) as node-local address a div N (LocalAddr),
// and inside that node on shard (a div N) mod S. Both hops are
// deterministic, data-independent functions of the address, and every node
// keeps its own dummy-filled slot grid running regardless of where real
// traffic lands, so the adversary of the paper's model — one who observes
// each node's (memory-bus or network-egress) access schedule — sees only
// the N independent paced grids, exactly as with N unrelated daemons.
//
// Threat model caveat: the proxy→node links carry real requests unpadded,
// so an adversary tapping the cluster's internal interconnect additionally
// learns addr mod N per access (which node, not which block) — a surface a
// single daemon does not have, analogous to watching the in-process shard
// queues, and not counted in leaked_bits. Deployments whose interconnect
// is not trusted infrastructure need link padding (or per-access partition
// re-randomization à la Stefanov et al.), which this layer does not do.
//
// Leakage accounts compose additively: each epoch transition on any shard
// of any node reveals one lg|R|-bit rate choice, so the cluster's timing-
// channel total is the sum of the per-node totals, judged against a single
// cluster-wide budget by the Router's aggregated stats.
package cluster

import (
	"fmt"
	"strings"

	"tcoram/internal/server"
)

// NodeOf returns the node index serving global address addr in an
// n-node cluster: a deterministic, data-independent function, so routing is
// stable across proxy restarts as long as the node list order is stable.
// Modulo routing spreads sequential scans round-robin across nodes, the
// same policy server.Store uses for its shards.
func NodeOf(addr uint64, n int) int {
	return int(addr % uint64(n))
}

// LocalAddr converts a global block address to the node-local one.
func LocalAddr(addr uint64, n int) uint64 {
	return addr / uint64(n)
}

// GlobalAddr inverts (NodeOf, LocalAddr): the global address of node-local
// block local on node.
func GlobalAddr(local uint64, node, n int) uint64 {
	return local*uint64(n) + uint64(node)
}

// Config describes a routing proxy over N daemons.
type Config struct {
	// Nodes lists the daemon addresses ("host:port"). Order defines the node
	// index the routing function uses, so it must be identical every time a
	// proxy is started over the same data — a reordered list would route
	// addresses to nodes holding someone else's blocks.
	Nodes []string
	// ConnsPerNode is the size of each node's pipelined connection pool
	// (default 2). Every connection multiplexes arbitrarily many in-flight
	// requests (server.Client pipelining); the pool spreads encode/decode
	// work across sockets.
	ConnsPerNode int
	// Blocks optionally caps the cluster's served address space. Zero
	// derives the maximum the topology supports: N × min over nodes of the
	// node's block count (modulo routing fills nodes evenly, so the smallest
	// node bounds the whole).
	Blocks uint64
	// LeakageBudgetBits is the cluster-wide ORAM-timing-channel budget in
	// bits: the summed per-node leakage is judged against this one number in
	// aggregated stats. Zero means account but never flag.
	LeakageBudgetBits float64
}

func (c Config) withDefaults() Config {
	if c.ConnsPerNode == 0 {
		c.ConnsPerNode = 2
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes configured")
	}
	seen := make(map[string]int, len(c.Nodes))
	for i, n := range c.Nodes {
		if n == "" {
			return fmt.Errorf("cluster: node %d has an empty address", i)
		}
		if j, dup := seen[n]; dup {
			// The same daemon listed twice would be assigned two disjoint
			// address slices of one undersized store — reads of slice j would
			// surface blocks written through slice i.
			return fmt.Errorf("cluster: nodes %d and %d are the same address %q", j, i, n)
		}
		seen[n] = i
	}
	if c.ConnsPerNode < 0 {
		return fmt.Errorf("cluster: ConnsPerNode must not be negative, got %d", c.ConnsPerNode)
	}
	if c.LeakageBudgetBits < 0 {
		return fmt.Errorf("cluster: LeakageBudgetBits must not be negative, got %v", c.LeakageBudgetBits)
	}
	return nil
}

// ParseNodes parses the comma-separated node list the oramproxy -nodes flag
// accepts into Config.Nodes form.
func ParseNodes(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	return out, nil
}

// interface conformance: the Router serves behind server.Serve unchanged.
var _ server.Service = (*Router)(nil)
