// Package cluster scales the sharded ORAM service past one process: a thin
// routing layer that partitions a flat block address space across N
// independent oramd daemons, each of which is itself a sharded, slot-grid-
// paced server.Store. This is the partitioned-ORAM shape of Stefanov et
// al.'s "Towards Practical Oblivious RAM" applied one level up — the paper's
// pacing makes per-shard throughput a fixed budget, so capacity grows only
// by adding independently-paced sub-ORAMs, and past one machine's cores
// that means adding boxes.
//
// Topology is a versioned NodeMap, not a bare address list: the
// address→node function is pinned to a routing epoch, carried in stats, and
// validated against an expected fingerprint at dial, so a proxy started
// over a drifted or reordered node list fails fast instead of serving every
// address from a node holding someone else's blocks. Routing composes with
// the store's own shard routing: a global address a lands primary on node
// a mod N, replicated to the K-1 successor nodes (NodeMap), at node-local
// stripe addresses, and inside each node on shard local mod S. Both hops
// are deterministic, data-independent functions of the address, and every
// node keeps its own dummy-filled slot grid running regardless of where
// real traffic lands, so the adversary of the paper's model — one who
// observes each node's (memory-bus or network-egress) access schedule —
// sees only the N independent paced grids, exactly as with N unrelated
// daemons.
//
// Replication and elasticity ride the same grids. Writes fan out to K
// replicas and reads fail over to the first healthy one (health tracked by
// a probe loop plus an inline recoverable-vs-fatal error taxonomy,
// server.IsRecoverable), so a killed daemon degrades to its successors with
// zero lost operations. When the map changes (a node joins or leaves), the
// router migrates blocks from the previous topology behind an advancing
// watermark: each copied block is an ordinary Read against the old owners
// and an ordinary Write against the new ones, occupying regular paced slots
// a dummy access would otherwise fill — slot traces are byte-identical with
// and without an active migration — and the migration rate (MigrateEvery)
// is a public parameter of the deployment, accounted like the batching
// parameters k/K.
//
// Threat model caveat: the proxy→node links carry real requests unpadded,
// so an adversary tapping the cluster's internal interconnect additionally
// learns addr mod N per access (which node, not which block) — a surface a
// single daemon does not have, analogous to watching the in-process shard
// queues, and not counted in leaked_bits. Deployments whose interconnect
// is not trusted infrastructure need link padding (or per-access partition
// re-randomization à la Stefanov et al.), which this layer does not do.
//
// Leakage accounts compose additively: each epoch transition on any shard
// of any node reveals one lg|R|-bit rate choice, so the cluster's timing-
// channel total is the sum of the per-node totals, judged against a single
// cluster-wide budget by the Router's aggregated stats.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"tcoram/internal/server"
)

// Config describes a routing proxy over N daemons.
type Config struct {
	// Nodes lists the daemon addresses ("host:port"). Order defines the node
	// index the routing function uses; together with Replicas it forms the
	// NodeMap whose fingerprint pins the routing (see ExpectFingerprint).
	Nodes []string
	// Epoch is the routing epoch this node map is deployed under. Any
	// membership change must come with a higher epoch. Carried in stats as
	// routing_epoch so clients and operators can validate which map served
	// them.
	Epoch uint64
	// Replicas is K: every block is written to its primary node and the K-1
	// successors, and read from the first healthy replica. 0 defaults to 1
	// (no replication). Each node spends 1/K of its capacity per replica
	// stripe, so the cluster serves N·(min node blocks)/K addresses.
	Replicas int
	// ExpectFingerprint, when non-empty, must equal the NodeMap's
	// fingerprint or NewRouter refuses to start — the guard against a
	// reordered or edited -nodes list silently rerouting a data lifetime.
	// Obtain it from a previous run's stats (map_fingerprint) or startup log.
	ExpectFingerprint string
	// ConnsPerNode is the size of each node's pipelined connection pool
	// (default 2). Every connection multiplexes arbitrarily many in-flight
	// requests (server.Client pipelining); the pool spreads encode/decode
	// work across sockets.
	ConnsPerNode int
	// Blocks optionally caps the cluster's served address space. Zero
	// derives the maximum the topology supports: N × (min over nodes of the
	// node's block count) / K.
	Blocks uint64
	// LeakageBudgetBits is the cluster-wide ORAM-timing-channel budget in
	// bits: the summed per-node leakage is judged against this one number in
	// aggregated stats. Zero means account but never flag.
	LeakageBudgetBits float64
	// TenantBudgets assigns per-tenant leakage sub-budgets in bits,
	// enforced cluster-wide: each tenant's account sums its attribution
	// across every node's shards, and a tenant over its sub-budget is
	// refused at the proxy with CodeTenantBudget while the others keep
	// being served. Nil means single-tenant operation.
	TenantBudgets map[string]float64
	// ProbeEvery is the health-probe interval: every node is pinged on this
	// period, failing nodes are ejected from the read path and reinstated
	// when they answer again. 0 defaults to 250ms; negative disables the
	// probe loop (ejection then happens only inline, on op failures).
	ProbeEvery time.Duration
	// RetryAttempts is how many full passes over an address's replica set an
	// operation makes before giving up (default 3). Between passes the
	// router backs off (RetryBackoff), riding out the window where every
	// replica is momentarily unreachable.
	RetryAttempts int
	// RetryBackoff paces the passes. Zero value: 10ms doubling, 1s cap.
	RetryBackoff server.Backoff
	// PrevNodes, when set, is the previous topology's node list: the router
	// starts a live migration that copies every block from the old owners to
	// the new ones behind an advancing watermark. Addresses above the
	// watermark are still served by the old topology, below by the new, so
	// the data plane stays consistent throughout.
	PrevNodes []string
	// PrevEpoch is the routing epoch PrevNodes served under (must be below
	// Epoch).
	PrevEpoch uint64
	// PrevReplicas is the previous topology's replication factor (0 → 1).
	PrevReplicas int
	// MigrateEvery is the public migration rate: one block is copied per
	// tick. It is a parameter of the deployment, not of the data — the
	// copies occupy ordinary paced slots, so the only thing an adversary
	// learns from a migration is this rate and the epoch bump, both public.
	// 0 defaults to 1ms.
	MigrateEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.ConnsPerNode == 0 {
		c.ConnsPerNode = 2
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.PrevReplicas == 0 {
		c.PrevReplicas = 1
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.MigrateEvery == 0 {
		c.MigrateEvery = time.Millisecond
	}
	return c
}

// Map returns the versioned node map the configuration describes.
func (c Config) Map() NodeMap {
	return NodeMap{Epoch: c.Epoch, Nodes: c.Nodes, Replicas: c.Replicas}.withDefaults()
}

// PrevMap returns the previous topology's map, or false when no migration
// is configured.
func (c Config) PrevMap() (NodeMap, bool) {
	if len(c.PrevNodes) == 0 {
		return NodeMap{}, false
	}
	return NodeMap{Epoch: c.PrevEpoch, Nodes: c.PrevNodes, Replicas: c.PrevReplicas}.withDefaults(), true
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Map().Validate(); err != nil {
		return err
	}
	if c.ConnsPerNode < 0 {
		return fmt.Errorf("cluster: ConnsPerNode must not be negative, got %d", c.ConnsPerNode)
	}
	if c.LeakageBudgetBits < 0 {
		return fmt.Errorf("cluster: LeakageBudgetBits must not be negative, got %v", c.LeakageBudgetBits)
	}
	for name, bits := range c.TenantBudgets {
		if name == "" {
			return fmt.Errorf("cluster: TenantBudgets names the empty tenant")
		}
		if bits < 0 {
			return fmt.Errorf("cluster: TenantBudgets[%q] must not be negative, got %v", name, bits)
		}
	}
	if c.RetryAttempts < 0 {
		return fmt.Errorf("cluster: RetryAttempts must not be negative, got %d", c.RetryAttempts)
	}
	if c.MigrateEvery < 0 {
		return fmt.Errorf("cluster: MigrateEvery must not be negative, got %v", c.MigrateEvery)
	}
	if prev, ok := c.PrevMap(); ok {
		if err := prev.Validate(); err != nil {
			return fmt.Errorf("cluster: previous topology: %w", err)
		}
		if prev.Epoch >= c.Epoch {
			return fmt.Errorf("cluster: previous epoch %d must be below the new epoch %d", prev.Epoch, c.Epoch)
		}
	}
	return nil
}

// ParseNodes parses the comma-separated node list the oramproxy -nodes flag
// accepts into Config.Nodes form.
func ParseNodes(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	return out, nil
}

// interface conformance: the Router serves behind server.Serve unchanged.
var _ server.Service = (*Router)(nil)
