package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// NodeMap is the versioned routing topology: the ordered node list, the
// replication factor, and an epoch number that names this exact map. The
// address→nodes function is a pure function of the map (and the learned
// stripe size), so pinning the map pins the routing: stats carry the epoch
// and the map's fingerprint, operators hand the fingerprint back via
// -map-check, and a proxy started over a drifted or reordered list fails at
// dial instead of silently serving every address from a node holding
// someone else's blocks.
//
// Placement: address a's primary is node a mod N (the modulo routing the
// store uses for its shards, one level up), and its K-1 additional replicas
// live on the successor nodes (p+1, …, p+K-1) mod N — the consistent
// successor-set replication of kbfs's put-to-server path. On each node,
// local storage is striped: replica r of the node's share lives in stripe
// r, so a node holding M blocks serves S = M/K primaries (stripe 0) and
// keeps stripes 1…K-1 for the shares of its K-1 predecessors. The cluster's
// addressable space is N·S.
type NodeMap struct {
	// Epoch versions the map. Any membership change is a new map with a
	// higher epoch; clients and operators compare epochs, never node lists.
	Epoch uint64 `json:"epoch"`
	// Nodes lists the daemon addresses in node-index order. The order is
	// part of the routing function — Fingerprint covers it.
	Nodes []string `json:"nodes"`
	// Replicas is K: every block is written to K distinct nodes and read
	// from the first healthy one. 0 defaults to 1 (no replication).
	Replicas int `json:"replicas"`
}

// withDefaults fills the zero replication factor.
func (m NodeMap) withDefaults() NodeMap {
	if m.Replicas == 0 {
		m.Replicas = 1
	}
	return m
}

// Validate reports whether the map is usable.
func (m NodeMap) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes configured")
	}
	seen := make(map[string]int, len(m.Nodes))
	for i, n := range m.Nodes {
		if n == "" {
			return fmt.Errorf("cluster: node %d has an empty address", i)
		}
		if j, dup := seen[n]; dup {
			// The same daemon listed twice would be assigned two disjoint
			// address slices of one undersized store — reads of slice j would
			// surface blocks written through slice i.
			return fmt.Errorf("cluster: nodes %d and %d are the same address %q", j, i, n)
		}
		seen[n] = i
	}
	if m.Replicas < 0 {
		return fmt.Errorf("cluster: Replicas must not be negative, got %d", m.Replicas)
	}
	if k := m.withDefaults().Replicas; k > len(m.Nodes) {
		return fmt.Errorf("cluster: %d replicas need %d distinct nodes, have %d", k, k, len(m.Nodes))
	}
	return nil
}

// Fingerprint returns a stable hex digest of everything the routing
// function depends on: the replication factor and the ordered node list.
// Two maps with the same fingerprint route every address identically (at
// equal stripe sizes), so the fingerprint is what -map-check compares and
// what the reversed-node-order failure mode is caught by. The epoch is
// deliberately excluded: it names a map version for humans and stats, while
// the fingerprint names the routing behaviour.
func (m NodeMap) Fingerprint() string {
	m = m.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "k=%d", m.Replicas)
	for _, n := range m.Nodes {
		// The separator keeps ["ab","c"] and ["a","bc"] distinct.
		h.Write([]byte{0})
		h.Write([]byte(n))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// NodeCount returns N.
func (m NodeMap) NodeCount() int { return len(m.Nodes) }

// PrimaryOf returns the node index owning address addr's primary copy.
func (m NodeMap) PrimaryOf(addr uint64) int {
	return int(addr % uint64(len(m.Nodes)))
}

// ReplicaNodes appends the node indices holding addr — primary first, then
// the successor replicas — to dst and returns it. The priority order is the
// read order: first healthy replica serves.
func (m NodeMap) ReplicaNodes(addr uint64, dst []int) []int {
	m = m.withDefaults()
	n := len(m.Nodes)
	p := m.PrimaryOf(addr)
	for r := 0; r < m.Replicas; r++ {
		dst = append(dst, (p+r)%n)
	}
	return dst
}

// ReplicaLocal returns the node-local address of addr's replica r, given
// the stripe size the router learned from node capacities: stripe r starts
// at r·stripe, and within a stripe the node's share is packed by a div N,
// exactly as in the unreplicated layout.
func (m NodeMap) ReplicaLocal(addr uint64, r int, stripe uint64) uint64 {
	return uint64(r)*stripe + addr/uint64(len(m.Nodes))
}

// StripeOf inverts the stripe layout for diagnostics: the (replica, share)
// pair a node-local address belongs to.
func StripeOf(local, stripe uint64) (replica int, share uint64) {
	if stripe == 0 {
		return 0, local
	}
	return int(local / stripe), local % stripe
}

// Blocks returns the cluster-wide addressable space at a given per-node
// capacity: the smallest node bounds every node's stripe set, and each node
// spends 1/K of its space on each stripe.
func (m NodeMap) Blocks(minNodeBlocks uint64) uint64 {
	return m.Stripe(minNodeBlocks) * uint64(len(m.Nodes))
}

// Stripe returns the per-stripe block count at a given per-node capacity.
func (m NodeMap) Stripe(minNodeBlocks uint64) uint64 {
	return minNodeBlocks / uint64(m.withDefaults().Replicas)
}

// Equal reports whether two maps route identically (same fingerprint) at
// the same epoch.
func (m NodeMap) Equal(o NodeMap) bool {
	return m.Epoch == o.Epoch && m.withDefaults().Replicas == o.withDefaults().Replicas &&
		strings.Join(m.Nodes, "\x00") == strings.Join(o.Nodes, "\x00")
}

// NodeOf returns the node index serving global address addr in an n-node
// cluster — the K=1 specialization kept for the unreplicated call sites and
// the routing-partition tests; NodeMap.PrimaryOf is the same function on a
// versioned map.
func NodeOf(addr uint64, n int) int {
	return int(addr % uint64(n))
}

// LocalAddr converts a global block address to the node-local one (K=1
// layout: stripe 0 only).
func LocalAddr(addr uint64, n int) uint64 {
	return addr / uint64(n)
}

// GlobalAddr inverts (NodeOf, LocalAddr): the global address of node-local
// block local on node.
func GlobalAddr(local uint64, node, n int) uint64 {
	return local*uint64(n) + uint64(node)
}
