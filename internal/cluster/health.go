package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"tcoram/internal/server"
)

// node is one daemon's client-side state: its connection pool and its
// health record. The pool entries are self-healing fail-fast clients
// (server.RetryClient with a single attempt): an operation on a dead
// connection fails immediately — letting the router fail over to a replica
// instead of blocking — and the next operation redials, so a node that
// comes back is picked up without any pool surgery.
type node struct {
	index   int
	addr    string
	clients []*server.RetryClient
	next    atomic.Uint64

	// healthy gates the read path: reads prefer healthy replicas and only
	// fall back to ejected nodes when no healthy replica holds the address.
	// Transitions are made inline on op failures (eject) and by the probe
	// loop (eject and reinstate).
	healthy     atomic.Bool
	ejections   atomic.Uint64
	failovers   atomic.Uint64
	writeMisses atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

// dialNode opens the node's connection pool, failing fast if the daemon is
// unreachable: a proxy started over a dead topology should say so at
// startup, not at the first request.
func dialNode(index int, addr string, conns int) (*node, error) {
	n := &node{index: index, addr: addr}
	n.healthy.Store(true)
	for c := 0; c < conns; c++ {
		cl, err := server.RetryDial(addr, server.RetryConfig{Attempts: 1})
		if err != nil {
			n.close()
			return nil, err
		}
		n.clients = append(n.clients, cl)
	}
	return n, nil
}

// pick returns the next pool connection round-robin. server.Client
// multiplexes concurrent callers onto one socket by request id, so
// correctness needs only one connection; the pool spreads JSON
// encode/decode and syscall work across several.
func (n *node) pick() *server.RetryClient {
	return n.clients[n.next.Add(1)%uint64(len(n.clients))]
}

// noteFailure records a transport-level failure and ejects the node: one
// ejection per healthy→unhealthy transition, however many concurrent ops
// observed the same death.
func (n *node) noteFailure(err error) {
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
	if n.healthy.CompareAndSwap(true, false) {
		n.ejections.Add(1)
	}
}

// noteSuccess reinstates the node. Called by the probe loop on a ping
// answer and inline when an op against an ejected node succeeds.
func (n *node) noteSuccess() {
	n.healthy.Store(true)
}

// status snapshots the node's health record for stats.
func (n *node) status() server.NodeStatus {
	n.mu.Lock()
	lastErr := n.lastErr
	n.mu.Unlock()
	return server.NodeStatus{
		Node:               n.index,
		Addr:               n.addr,
		Healthy:            n.healthy.Load(),
		Ejections:          n.ejections.Load(),
		Failovers:          n.failovers.Load(),
		ReplicaWriteMisses: n.writeMisses.Load(),
		LastError:          lastErr,
	}
}

// close tears down the pool. Closed clients stay closed (no redial
// resurrection), so a retired node cannot be written to by a straggler.
func (n *node) close() error {
	var first error
	for _, c := range n.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// prober is the router's health loop: every ProbeEvery it pings each
// distinct node, ejecting the ones that fail and reinstating the ones that
// answer. Inline op failures eject faster than the probe period; the probe
// loop's job is mostly the other direction — noticing recovery, which no
// read will, since reads skip ejected nodes.
func (r *Router) prober(every time.Duration) {
	defer r.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for _, n := range r.allNodes() {
				if err := n.pick().Ping(); err != nil {
					if server.IsRecoverable(err) {
						n.noteFailure(err)
					}
					continue
				}
				n.noteSuccess()
			}
			if len(r.cfg.TenantBudgets) > 0 {
				// Budget enforcement rides the probe cadence: the tick
				// refreshes the per-tenant account so a tenant that crossed
				// its sub-budget starts being refused within one period.
				r.refreshTenants()
			}
		}
	}
}
