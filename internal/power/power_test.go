package power

import (
	"math"
	"testing"

	"tcoram/internal/cache"
	"tcoram/internal/core"
	"tcoram/internal/cpu"
	"tcoram/internal/trace"
)

func TestORAMAccessEnergyMatchesPaper(t *testing.T) {
	// §9.1.4: energy-per-access = 2·758·(.416+.134) + 1984·.076 ≈ 984 nJ.
	got := Table2().ORAMAccessEnergy(PaperORAMAccess())
	if math.Abs(got-984) > 1.0 {
		t.Fatalf("ORAM access energy = %.2f nJ, want ≈984", got)
	}
}

func TestORAMAccessEnergyComponents(t *testing.T) {
	c := Table2()
	// Exact arithmetic from the paper's formula.
	want := 2*758*(0.416+0.134) + 1984*0.076
	if got := c.ORAMAccessEnergy(PaperORAMAccess()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestWattsConversion(t *testing.T) {
	// 1 GHz: nJ/cycle = W. 500 nJ over 1000 cycles = 0.5 W.
	b := Breakdown{CoreNJ: 200, MemoryNJ: 300, Cycles: 1000}
	if got := b.Watts(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Watts = %v, want 0.5", got)
	}
	if got := b.CoreWatts(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("CoreWatts = %v, want 0.2", got)
	}
	if got := b.MemoryWatts(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MemoryWatts = %v, want 0.3", got)
	}
	if (Breakdown{}).Watts() != 0 {
		t.Fatal("zero-cycle breakdown should be 0 W")
	}
}

func TestCoreEnergyScalesWithActivity(t *testing.T) {
	m := NewModel()
	var cs cpu.Stats
	cs.Cycles = 1000
	cs.ByKind[trace.IntALU] = 500
	var hs cache.Stats
	hs.L1DHits = 100
	base := m.CoreEnergy(cs, hs)
	if base <= 0 {
		t.Fatal("core energy should be positive")
	}
	cs2 := cs
	cs2.ByKind[trace.IntALU] = 1000
	if m.CoreEnergy(cs2, hs) <= base {
		t.Fatal("more instructions must cost more energy")
	}
	hs2 := hs
	hs2.L2Misses = 50
	if m.CoreEnergy(cs, hs2) <= base {
		t.Fatal("more cache activity must cost more energy")
	}
}

func TestFPUsesFPRegFile(t *testing.T) {
	m := NewModel()
	var intStats, fpStats cpu.Stats
	intStats.ByKind[trace.IntALU] = 1000
	fpStats.ByKind[trace.FPALU] = 1000
	intE := m.CoreEnergy(intStats, cache.Stats{})
	fpE := m.CoreEnergy(fpStats, cache.Stats{})
	if fpE <= intE {
		t.Fatalf("FP energy (%v) should exceed int energy (%v): bigger regfile coefficient", fpE, intE)
	}
}

func TestDRAMEnergyPerLine(t *testing.T) {
	m := NewModel()
	if got := m.DRAMEnergy(10); math.Abs(got-3.03) > 1e-9 {
		t.Fatalf("DRAMEnergy(10) = %v, want 3.03", got)
	}
}

func TestORAMEnergyCountsDummies(t *testing.T) {
	// Dummy accesses burn the same energy as real ones — the entire
	// power cost of overly fast static rates (§9.3).
	m := NewModel()
	st := core.Stats{RealAccesses: 10, DummyAccesses: 30}
	perAccess := m.Coeff.ORAMAccessEnergy(m.ORAM)
	if got := m.ORAMEnergy(st.TotalAccesses()); math.Abs(got-40*perAccess) > 1e-6 {
		t.Fatalf("ORAMEnergy = %v, want %v", got, 40*perAccess)
	}
}

func TestEvaluateDRAMAndORAM(t *testing.T) {
	m := NewModel()
	var cs cpu.Stats
	cs.Cycles = 10000
	cs.ByKind[trace.IntALU] = 5000
	var hs cache.Stats
	flat := core.NewFlatMemory(40)
	flat.Fetch(0, 1)
	flat.Writeback(0, 2)
	bd := m.EvaluateDRAM(cs, hs, flat)
	if bd.MemoryNJ <= 0 || bd.CoreNJ <= 0 {
		t.Fatalf("degenerate DRAM breakdown: %+v", bd)
	}
	bo := m.EvaluateORAM(cs, hs, core.Stats{RealAccesses: 2})
	if bo.MemoryNJ <= bd.MemoryNJ {
		t.Fatal("two ORAM accesses must dwarf two DRAM line transfers")
	}
}

func TestORAMPowerAtPaperRates(t *testing.T) {
	// Sanity against Fig 6's scale: accessing ORAM back to back
	// (one 984 nJ access every ~1488+256 cycles) gives memory power
	// ≈ 0.5–0.6 W, matching the tallest Fig 6 bars.
	m := NewModel()
	period := uint64(1488 + 256)
	accesses := uint64(1000)
	bd := Breakdown{
		MemoryNJ: m.ORAMEnergy(accesses),
		Cycles:   accesses * period,
	}
	if w := bd.MemoryWatts(); w < 0.4 || w > 0.7 {
		t.Fatalf("back-to-back ORAM power = %.3f W, want ~0.55", w)
	}
}
