// Package power implements the paper's processor energy model (Table 2,
// §9.1.3–9.1.4): per-event dynamic energy coefficients from the pipeline
// out to the on-chip DRAM/ORAM controller, L1/L2 parasitic leakage, and the
// derived 984 nJ energy of one full Path ORAM access. External DRAM device
// power is not modeled, matching the paper.
//
// Power in Watts falls out naturally: with a 1 GHz clock, one cycle is one
// nanosecond, so total nanojoules divided by total cycles is Watts.
package power

import (
	"tcoram/internal/cache"
	"tcoram/internal/core"
	"tcoram/internal/cpu"
	"tcoram/internal/trace"
)

// Coefficients holds Table 2's energy numbers in nanojoules per event
// (leakage entries are per cycle).
type Coefficients struct {
	// Dynamic energy (nJ/event).
	ALUPerInstr  float64 // ALU/FPU per instruction
	RegFileInt   float64 // integer register file per instruction
	RegFileFP    float64 // FP register file per instruction
	FetchBuffer  float64 // 256-bit fetch buffer read
	L1IHit       float64 // L1I hit or refill (one line)
	L1DHit       float64 // L1D hit (64 bits)
	L1DRefill    float64 // L1D refill (one line)
	L2HitRefill  float64 // L2 hit or refill (one line)
	DRAMCtrlLine float64 // DRAM controller, one cache line
	// Parasitic leakage (nJ/cycle except L2, which is per hit/refill).
	L1ILeakPerCycle float64
	L1DLeakPerCycle float64
	L2LeakPerEvent  float64
	// ORAM controller (nJ per 16-byte chunk).
	AESPerChunk   float64
	StashPerChunk float64
	// DRAM controller energy per DRAM cycle while an ORAM access is in
	// flight (derived from [3]'s peak power, §9.1.3).
	DRAMCtrlPerCycle float64
}

// Table2 returns the paper's coefficients (45 nm).
func Table2() Coefficients {
	return Coefficients{
		ALUPerInstr:      0.0148,
		RegFileInt:       0.0032,
		RegFileFP:        0.0048,
		FetchBuffer:      0.0003,
		L1IHit:           0.162,
		L1DHit:           0.041,
		L1DRefill:        0.320,
		L2HitRefill:      0.810,
		DRAMCtrlLine:     0.303,
		L1ILeakPerCycle:  0.018,
		L1DLeakPerCycle:  0.019,
		L2LeakPerEvent:   0.767,
		AESPerChunk:      0.416,
		StashPerChunk:    0.134,
		DRAMCtrlPerCycle: 0.076,
	}
}

// ORAMAccessParams describes one ORAM access for energy purposes.
type ORAMAccessParams struct {
	// Chunks is the number of 16-byte chunks moved per direction; the
	// paper's configuration moves 758 chunks each way (§9.1.4).
	Chunks int
	// DRAMCycles is the DRAM-clock duration of the access (1984 in the
	// paper: 1488 processor cycles × 4/3).
	DRAMCycles int
}

// PaperORAMAccess returns §9.1.4's parameters: 2×758 chunks, 1984 DRAM
// cycles.
func PaperORAMAccess() ORAMAccessParams {
	return ORAMAccessParams{Chunks: 758, DRAMCycles: 1984}
}

// ORAMAccessEnergy computes the energy of one ORAM access (real or dummy —
// they move identical traffic):
//
//	chunkCount × (AES + stash) per direction pair + cycles × controller
//
// With Table 2 and the paper parameters this is ≈ 984 nJ.
func (c Coefficients) ORAMAccessEnergy(p ORAMAccessParams) float64 {
	return 2*float64(p.Chunks)*(c.AESPerChunk+c.StashPerChunk) +
		float64(p.DRAMCycles)*c.DRAMCtrlPerCycle
}

// Breakdown splits total energy into the paper's Fig 6 reporting buckets:
// the white-dashed "non-main-memory" portion and the memory-controller
// (DRAM/ORAM) portion.
type Breakdown struct {
	CoreNJ   float64 // pipeline, register files, fetch, L1s, L2, leakage
	MemoryNJ float64 // DRAM controller and/or ORAM controller
	Cycles   uint64
}

// TotalNJ is the total energy.
func (b Breakdown) TotalNJ() float64 { return b.CoreNJ + b.MemoryNJ }

// Watts is average power (1 GHz clock: nJ/cycle = W).
func (b Breakdown) Watts() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return b.TotalNJ() / float64(b.Cycles)
}

// CoreWatts is the non-main-memory power (white-dashed bars of Fig 6).
func (b Breakdown) CoreWatts() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return b.CoreNJ / float64(b.Cycles)
}

// MemoryWatts is the memory-controller power (colored bars of Fig 6).
func (b Breakdown) MemoryWatts() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return b.MemoryNJ / float64(b.Cycles)
}

// Model evaluates energy for a finished simulation.
type Model struct {
	Coeff Coefficients
	ORAM  ORAMAccessParams
}

// NewModel returns the paper's model.
func NewModel() Model {
	return Model{Coeff: Table2(), ORAM: PaperORAMAccess()}
}

// CoreEnergy computes the non-main-memory energy of a run from the core and
// cache statistics.
func (m Model) CoreEnergy(cs cpu.Stats, hs cache.Stats) float64 {
	c := m.Coeff
	var nj float64
	// Pipeline and register files, per instruction class.
	for k := trace.Kind(0); k < trace.NumKinds; k++ {
		n := float64(cs.ByKind[k])
		nj += n * c.ALUPerInstr
		switch k {
		case trace.FPALU, trace.FPMult, trace.FPDiv:
			nj += n * c.RegFileFP
		default:
			nj += n * c.RegFileInt
		}
	}
	// Fetch buffer: one 256-bit read per fetched line group.
	nj += float64(cs.FetchLines) * c.FetchBuffer
	// L1I: hits and refills cost one line access each.
	nj += float64(cs.FetchLines) * c.L1IHit // hit path on each line fetch
	nj += float64(hs.L1IMisses) * c.L1IHit  // refill
	// L1D: hits at word granularity, refills per line.
	nj += float64(hs.L1DHits) * c.L1DHit
	nj += float64(hs.L1DMisses) * c.L1DRefill
	// L2: hits and refills (refill count ≈ misses reaching L2).
	nj += float64(hs.L2Hits+hs.L2Misses) * c.L2HitRefill
	nj += float64(hs.L2Hits+hs.L2Misses) * c.L2LeakPerEvent
	// L1 parasitic leakage accrues every cycle.
	nj += float64(cs.Cycles) * (c.L1ILeakPerCycle + c.L1DLeakPerCycle)
	return nj
}

// DRAMEnergy is the base_dram memory-side energy: one line-transfer worth
// of controller energy per fetch or writeback.
func (m Model) DRAMEnergy(lineTransfers uint64) float64 {
	return float64(lineTransfers) * m.Coeff.DRAMCtrlLine
}

// ORAMEnergy is the ORAM memory-side energy: every access — real or
// dummy — costs the full path energy.
func (m Model) ORAMEnergy(totalAccesses uint64) float64 {
	return float64(totalAccesses) * m.Coeff.ORAMAccessEnergy(m.ORAM)
}

// EvaluateDRAM builds the breakdown for a base_dram run.
func (m Model) EvaluateDRAM(cs cpu.Stats, hs cache.Stats, mem *core.FlatMemory) Breakdown {
	return Breakdown{
		CoreNJ:   m.CoreEnergy(cs, hs),
		MemoryNJ: m.DRAMEnergy(mem.LineTransfers()),
		Cycles:   cs.Cycles,
	}
}

// EvaluateORAM builds the breakdown for any ORAM-based run (shielded or
// not) given the controller's access stats.
func (m Model) EvaluateORAM(cs cpu.Stats, hs cache.Stats, st core.Stats) Breakdown {
	return Breakdown{
		CoreNJ:   m.CoreEnergy(cs, hs),
		MemoryNJ: m.ORAMEnergy(st.TotalAccesses()),
		Cycles:   cs.Cycles,
	}
}
