package trace

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		IntALU:  "int-alu",
		IntMult: "int-mult",
		IntDiv:  "int-div",
		FPALU:   "fp-alu",
		FPMult:  "fp-mult",
		FPDiv:   "fp-div",
		Branch:  "branch",
		Load:    "load",
		Store:   "store",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range Kind should stringify as unknown")
	}
}

func TestIsMem(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		want := k == Load || k == Store
		if got := k.IsMem(); got != want {
			t.Errorf("Kind %v IsMem() = %v, want %v", k, got, want)
		}
	}
}

func TestSliceStream(t *testing.T) {
	instrs := []Instr{
		{Kind: IntALU},
		{Kind: Load, Addr: 0x40},
		{Kind: Store, Addr: 0x80},
	}
	s := NewSliceStream(instrs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := range instrs {
		got, ok := s.Next()
		if !ok || got != instrs[i] {
			t.Fatalf("Next()[%d] = %+v, %v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	s.Reset()
	if got, ok := s.Next(); !ok || got != instrs[0] {
		t.Fatal("Reset did not rewind")
	}
}
