// Package trace defines the instruction-stream representation shared by the
// in-order core model (internal/cpu) and the synthetic workload generators
// (internal/workload). The representation is deliberately minimal — an
// opcode class and, for memory operations, a byte address — because that is
// all the paper's timing and energy models consume (Table 1, Table 2).
package trace

// Kind classifies an instruction by its Table 1 latency/energy class.
type Kind uint8

const (
	// IntALU is a 1-cycle integer ALU operation.
	IntALU Kind = iota
	// IntMult is a 4-cycle integer multiply.
	IntMult
	// IntDiv is a 12-cycle integer divide.
	IntDiv
	// FPALU is a 2-cycle floating-point add/sub.
	FPALU
	// FPMult is a 4-cycle floating-point multiply.
	FPMult
	// FPDiv is a 10-cycle floating-point divide.
	FPDiv
	// Branch is a 1-cycle control transfer; the core redirects fetch.
	Branch
	// Load reads memory at Addr.
	Load
	// Store writes memory at Addr through the non-blocking write buffer.
	Store
	// NumKinds is the number of instruction classes.
	NumKinds
)

var kindNames = [NumKinds]string{
	"int-alu", "int-mult", "int-div", "fp-alu", "fp-mult", "fp-div",
	"branch", "load", "store",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// IsMem reports whether the instruction accesses data memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// Instr is one dynamic instruction.
type Instr struct {
	Kind Kind
	Addr uint64 // byte address for Load/Store; unused otherwise
}

// Stream produces a sequence of dynamic instructions. Implementations must
// be deterministic for a given construction seed so experiments are
// reproducible.
type Stream interface {
	// Next returns the next instruction. ok is false when the stream is
	// exhausted (finite programs); infinite streams always return true.
	Next() (ins Instr, ok bool)
}

// SliceStream adapts a fixed instruction slice to a Stream (test helper and
// building block for hand-written microprograms such as the Figure 1
// malicious program).
type SliceStream struct {
	instrs []Instr
	pos    int
}

// NewSliceStream returns a Stream over instrs.
func NewSliceStream(instrs []Instr) *SliceStream {
	return &SliceStream{instrs: instrs}
}

// Next implements Stream.
func (s *SliceStream) Next() (Instr, bool) {
	if s.pos >= len(s.instrs) {
		return Instr{}, false
	}
	ins := s.instrs[s.pos]
	s.pos++
	return ins, true
}

// Len returns the total number of instructions in the stream.
func (s *SliceStream) Len() int { return len(s.instrs) }

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }
