// Package experiments regenerates every table and figure of the paper's
// evaluation (§9) from the simulator: Table 1/2 configuration dumps, the
// Fig 2 input-dependence study, the Fig 5 static-rate sweep, the Fig 6 main
// comparison, the Fig 7 stability traces, the Fig 8a/8b leakage-reduction
// studies, the §9.3 headline deltas and the Example 2.1/6.1 leakage
// arithmetic. Each experiment returns a stats.Table whose rows mirror what
// the paper plots; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"tcoram/internal/core"
	"tcoram/internal/crypt"
	"tcoram/internal/dram"
	"tcoram/internal/leakage"
	"tcoram/internal/pathoram"
	"tcoram/internal/power"
	"tcoram/internal/sim"
	"tcoram/internal/stats"
	"tcoram/internal/workload"
)

// Scale selects run lengths: Quick for benches/CI, Full for the recorded
// EXPERIMENTS.md numbers.
type Scale struct {
	Instructions  uint64
	Warmup        uint64
	WindowInstrs  uint64
	EpochFirstLen uint64
}

// Quick is the fast scale used by `go test -bench` and smoke runs.
func Quick() Scale {
	return Scale{Instructions: 3_000_000, Warmup: 1_500_000, WindowInstrs: 500_000, EpochFirstLen: 1 << 18}
}

// Full is the scale used to produce EXPERIMENTS.md (≈ the paper's 200 B
// instructions scaled 1:10, with the epoch schedule scaled to match —
// see DESIGN.md substitution #4).
func Full() Scale {
	return Scale{Instructions: 20_000_000, Warmup: 4_000_000, WindowInstrs: 1_000_000, EpochFirstLen: 1 << 20}
}

func (s Scale) config(scheme sim.Scheme) sim.Config {
	return sim.Config{
		Scheme:        scheme,
		Instructions:  s.Instructions,
		WarmupInstrs:  s.Warmup,
		WindowInstrs:  s.WindowInstrs,
		EpochFirstLen: s.EpochFirstLen,
	}
}

// Parallelism bounds the worker pool the figure drivers fan their
// independent sim.Run calls out on. It defaults to the core count; the
// serial/parallel equivalence test overrides it. Values < 1 run serially.
var Parallelism = runtime.NumCPU()

// simJob is one (workload, configuration) cell of a figure.
type simJob struct {
	spec workload.Spec
	cfg  sim.Config
}

// runAll executes the jobs on a bounded worker pool and returns the results
// in job order. Every sim.Run builds its own generator, core and controller
// from cfg.Seed — no shared mutable state — so the result slice is
// identical to running the jobs serially, and every aggregation loop below
// consumes it in the same deterministic order it would have used before
// parallelization. Errors panic after all workers drain, matching run().
func runAll(jobs []simJob) []sim.Result {
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				results[i], errs[i] = sim.Run(jobs[i].spec, jobs[i].cfg)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("experiments: %s/%s: %v", jobs[i].spec.ID(), jobs[i].cfg.Name(), err))
		}
	}
	return results
}

// Table1 dumps the timing model (Table 1) alongside the values the live
// configuration actually uses.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: timing model (processor clock = 1 GHz)",
		"parameter", "value")
	dcfg := dram.Default()
	rows := [][2]string{
		{"core model", "in-order, single-issue"},
		{"int arith/mult/div latency", "1/4/12 cycles"},
		{"fp arith/mult/div latency", "2/4/10 cycles"},
		{"write buffer", "8 entries, non-blocking"},
		{"L1 I/D cache", "32 KB, 4-way"},
		{"L2 (LLC)", "1 MB, 16-way, inclusive"},
		{"cache/ORAM block size", "64 B"},
		{"DRAM channels", fmt.Sprintf("%d", dcfg.Channels)},
		{"DRAM banks/channel", fmt.Sprintf("%d", dcfg.BanksPerChannel)},
		{"pin bandwidth", fmt.Sprintf("%.1f B/CPU-cycle aggregate", dcfg.PinBandwidthBytesPerCPUCycle())},
		{"base_dram latency", fmt.Sprintf("%d cycles (flat)", dram.FlatLatency)},
		{"ORAM access latency (paper)", fmt.Sprintf("%d cycles", pathoram.PaperAccessLatency)},
	}
	est := pathoram.EstimateAccessLatency(pathoram.PaperConfig(), dcfg, crypt.DefaultLatency())
	rows = append(rows,
		[2]string{"ORAM access latency (our DRAM model)", fmt.Sprintf("%d cycles", est.CPUCycles)},
		[2]string{"ORAM bytes/access (paper)", fmt.Sprintf("%d B", pathoram.PaperAccessBytes)},
		[2]string{"ORAM bytes/access (our geometry)", fmt.Sprintf("%d B", est.BytesMoved)},
	)
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}

// Table2 dumps the energy model (Table 2) and the derived per-access ORAM
// energy (§9.1.4: ≈984 nJ).
func Table2() *stats.Table {
	c := power.Table2()
	t := stats.NewTable("Table 2: energy model (45 nm), nJ per event",
		"component", "energy (nJ)")
	t.AddRow("ALU/FPU per instruction", c.ALUPerInstr)
	t.AddRow("regfile int/fp per instruction", fmt.Sprintf("%.4f/%.4f", c.RegFileInt, c.RegFileFP))
	t.AddRow("fetch buffer (256 b)", c.FetchBuffer)
	t.AddRow("L1I hit/refill (line)", c.L1IHit)
	t.AddRow("L1D hit (64 b)", c.L1DHit)
	t.AddRow("L1D refill (line)", c.L1DRefill)
	t.AddRow("L2 hit/refill (line)", c.L2HitRefill)
	t.AddRow("DRAM controller (line)", c.DRAMCtrlLine)
	t.AddRow("L1I/L1D leakage per cycle", fmt.Sprintf("%.3f/%.3f", c.L1ILeakPerCycle, c.L1DLeakPerCycle))
	t.AddRow("L2 leakage per hit/refill", c.L2LeakPerEvent)
	t.AddRow("AES per 16 B chunk", c.AESPerChunk)
	t.AddRow("stash per 16 B rd/wr", c.StashPerChunk)
	t.AddRow("ORAM access total (2×758 chunks, 1984 DRAM cyc)",
		fmt.Sprintf("%.0f", c.ORAMAccessEnergy(power.PaperORAMAccess())))
	return t
}

// Fig2 reproduces Figure 2: ORAM access rate over time for perlbench
// (diffmail vs splitmail) and astar (rivers vs biglakes), reported as
// average instructions between two ORAM accesses per window.
func Fig2(s Scale) *stats.Table {
	t := stats.NewTable("Figure 2: ORAM access rate across inputs (instructions between accesses, per window)",
		"benchmark/input", "window", "instr-between-accesses")
	specs := []workload.Spec{
		workload.PerlbenchInput("diffmail"),
		workload.PerlbenchInput("splitmail"),
		workload.AstarInput("rivers"),
		workload.AstarInput("biglakes"),
	}
	jobs := make([]simJob, len(specs))
	for i, spec := range specs {
		jobs[i] = simJob{spec, s.config(sim.BaseORAM)}
	}
	for i, r := range runAll(jobs) {
		for w, win := range r.Windows {
			t.AddRow(specs[i].ID(), w, fmt.Sprintf("%.0f", win.InstrPerMem))
		}
	}
	return t
}

// Fig5Point is one sweep point of Figure 5.
type Fig5Point struct {
	Rate           uint64
	PerfOverheadX  float64
	PowerOverheadX float64
}

// Fig5Sweep runs the §9.2 static-rate sweep for one workload and returns
// the overhead-vs-rate curve (both overheads relative to base_dram).
func Fig5Sweep(spec workload.Spec, s Scale) []Fig5Point {
	rates := []uint64{100, 180, 256, 450, 800, 1300, 2300, 4100, 7300, 13000, 23000, 32768, 58000, 100000}
	jobs := make([]simJob, 0, 1+len(rates))
	jobs = append(jobs, simJob{spec, s.config(sim.BaseDRAM)})
	for _, rate := range rates {
		cfg := s.config(sim.StaticORAM)
		cfg.StaticRate = rate
		jobs = append(jobs, simJob{spec, cfg})
	}
	results := runAll(jobs)
	base := results[0]
	out := make([]Fig5Point, 0, len(rates))
	for i, rate := range rates {
		r := results[1+i]
		out = append(out, Fig5Point{
			Rate:           rate,
			PerfOverheadX:  r.PerfOverhead(base),
			PowerOverheadX: r.Power.Watts() / base.Power.Watts(),
		})
	}
	return out
}

// Fig5 reproduces Figure 5 for mcf (memory bound) and h264ref (compute
// bound).
func Fig5(s Scale) *stats.Table {
	t := stats.NewTable("Figure 5: power vs performance overhead across static rates (× base_dram)",
		"benchmark", "rate", "perf-X", "power-X")
	for _, spec := range []workload.Spec{workload.MCF(), workload.H264ref()} {
		for _, p := range Fig5Sweep(spec, s) {
			t.AddRow(spec.ID(), p.Rate, p.PerfOverheadX, p.PowerOverheadX)
		}
	}
	return t
}

// Fig6Row is one benchmark × scheme cell of Figure 6.
type Fig6Row struct {
	Benchmark     string
	Scheme        string
	PerfOverheadX float64
	PowerWatts    float64
	CoreWatts     float64
	MemWatts      float64
	DummyFrac     float64
	LeakageBits   float64
}

// fig6Schemes are the five compared configurations of §9.1.6/§9.3.
func fig6Schemes(s Scale) []sim.Config {
	dyn := s.config(sim.DynamicORAM)
	dyn.NumRates = 4
	dyn.EpochGrowth = 4
	s300 := s.config(sim.StaticORAM)
	s300.StaticRate = 300
	s500 := s.config(sim.StaticORAM)
	s500.StaticRate = 500
	s1300 := s.config(sim.StaticORAM)
	s1300.StaticRate = 1300
	return []sim.Config{s.config(sim.BaseORAM), dyn, s300, s500, s1300}
}

// Fig6Rows computes the full Figure 6 data set.
func Fig6Rows(s Scale) []Fig6Row {
	var rows []Fig6Row
	suite := workload.Suite()
	schemes := fig6Schemes(s)
	stride := 1 + len(schemes)
	jobs := make([]simJob, 0, len(suite)*stride)
	for _, spec := range suite {
		jobs = append(jobs, simJob{spec, s.config(sim.BaseDRAM)})
		for _, cfg := range schemes {
			jobs = append(jobs, simJob{spec, cfg})
		}
	}
	results := runAll(jobs)
	sums := map[string]*Fig6Row{}
	order := []string{}
	for si, spec := range suite {
		base := results[si*stride]
		for ci, cfg := range schemes {
			r := results[si*stride+1+ci]
			row := Fig6Row{
				Benchmark:     spec.ID(),
				Scheme:        cfg.Name(),
				PerfOverheadX: r.PerfOverhead(base),
				PowerWatts:    r.Power.Watts(),
				CoreWatts:     r.Power.CoreWatts(),
				MemWatts:      r.Power.MemoryWatts(),
				DummyFrac:     r.Mem.DummyFraction(),
				LeakageBits:   float64(r.LeakageBits),
			}
			rows = append(rows, row)
			agg, ok := sums[cfg.Name()]
			if !ok {
				agg = &Fig6Row{Benchmark: "Avg", Scheme: cfg.Name(), LeakageBits: row.LeakageBits}
				sums[cfg.Name()] = agg
				order = append(order, cfg.Name())
			}
			agg.PerfOverheadX += row.PerfOverheadX / float64(len(suite))
			agg.PowerWatts += row.PowerWatts / float64(len(suite))
			agg.CoreWatts += row.CoreWatts / float64(len(suite))
			agg.MemWatts += row.MemWatts / float64(len(suite))
			agg.DummyFrac += row.DummyFrac / float64(len(suite))
		}
	}
	for _, name := range order {
		rows = append(rows, *sums[name])
	}
	return rows
}

// Fig6 renders the main-result table (Figure 6: performance overhead and
// power breakdown per benchmark and scheme, plus the Avg column).
func Fig6(s Scale) *stats.Table {
	t := stats.NewTable("Figure 6: performance overhead (× base_dram) and power breakdown",
		"benchmark", "scheme", "perf-X", "power-W", "core-W", "mem-W", "dummy-frac", "leak-bits")
	for _, r := range Fig6Rows(s) {
		t.AddRow(r.Benchmark, r.Scheme, r.PerfOverheadX, r.PowerWatts, r.CoreWatts, r.MemWatts, r.DummyFrac,
			fmt.Sprintf("%.0f", math.Min(r.LeakageBits, 1e18)))
	}
	return t
}

// Fig7 reproduces Figure 7: IPC over instruction windows for libquantum,
// gobmk and h264ref under base_oram, dynamic_R4_E2 and static_1300, with
// the dynamic scheme's epoch transitions marked.
func Fig7(s Scale) *stats.Table {
	t := stats.NewTable("Figure 7: IPC per window (epoch transitions marked for dynamic_R4_E2)",
		"benchmark", "scheme", "window", "IPC", "epoch-mark")
	dyn := s.config(sim.DynamicORAM)
	dyn.NumRates = 4
	dyn.EpochGrowth = 2
	s1300 := s.config(sim.StaticORAM)
	s1300.StaticRate = 1300
	names := []string{"libquantum", "gobmk", "h264ref"}
	cfgs := []sim.Config{s.config(sim.BaseORAM), dyn, s1300}
	jobs := make([]simJob, 0, len(names)*len(cfgs))
	specs := make([]workload.Spec, len(names))
	for i, name := range names {
		specs[i], _ = workload.ByName(name)
		for _, cfg := range cfgs {
			jobs = append(jobs, simJob{specs[i], cfg})
		}
	}
	results := runAll(jobs)
	for ni, spec := range specs {
		for ci, cfg := range cfgs {
			r := results[ni*len(cfgs)+ci]
			marks := map[int]string{}
			if cfg.Scheme == sim.DynamicORAM {
				// Attribute each transition to the window containing it.
				for _, rc := range r.RateChanges[1:] {
					for i, w := range r.Windows {
						if rc.Cycle <= w.EndCycle {
							marks[i] = fmt.Sprintf("e%d->rate %d", rc.Epoch, rc.Rate)
							break
						}
					}
				}
			}
			for i, w := range r.Windows {
				t.AddRow(spec.ID(), cfg.Name(), i, fmt.Sprintf("%.4f", w.IPC), marks[i])
			}
		}
	}
	return t
}

// Fig8a reproduces Figure 8a: varying |R| at epoch doubling.
func Fig8a(s Scale) *stats.Table {
	t := stats.NewTable("Figure 8a: varying rate count |R| (dynamic_R*_E2)",
		"benchmark", "scheme", "perf-X", "power-W", "leak-bits")
	addDynamicStudy(t, s, []int{16, 8, 4, 2}, []uint64{2, 2, 2, 2})
	return t
}

// Fig8b reproduces Figure 8b: varying epoch growth at |R| = 4.
func Fig8b(s Scale) *stats.Table {
	t := stats.NewTable("Figure 8b: varying epoch growth |E| (dynamic_R4_E*)",
		"benchmark", "scheme", "perf-X", "power-W", "leak-bits")
	addDynamicStudy(t, s, []int{4, 4, 4, 4}, []uint64{2, 4, 8, 16})
	return t
}

func addDynamicStudy(t *stats.Table, s Scale, numRates []int, growth []uint64) {
	suite := workload.Suite()
	type agg struct {
		perf, pw float64
		leak     float64
		name     string
	}
	aggs := make([]agg, len(numRates))
	cfgs := make([]sim.Config, len(numRates))
	for i := range numRates {
		cfgs[i] = s.config(sim.DynamicORAM)
		cfgs[i].NumRates = numRates[i]
		cfgs[i].EpochGrowth = growth[i]
	}
	stride := 1 + len(cfgs)
	jobs := make([]simJob, 0, len(suite)*stride)
	for _, spec := range suite {
		jobs = append(jobs, simJob{spec, s.config(sim.BaseDRAM)})
		for _, cfg := range cfgs {
			jobs = append(jobs, simJob{spec, cfg})
		}
	}
	results := runAll(jobs)
	for si, spec := range suite {
		base := results[si*stride]
		for i, cfg := range cfgs {
			r := results[si*stride+1+i]
			t.AddRow(spec.ID(), cfg.Name(), r.PerfOverhead(base), r.Power.Watts(),
				fmt.Sprintf("%.0f", float64(r.LeakageBits)))
			aggs[i].perf += r.PerfOverhead(base) / float64(len(suite))
			aggs[i].pw += r.Power.Watts() / float64(len(suite))
			aggs[i].leak = float64(r.LeakageBits)
			aggs[i].name = cfg.Name()
		}
	}
	for _, a := range aggs {
		t.AddRow("Avg", a.name, a.perf, a.pw, fmt.Sprintf("%.0f", a.leak))
	}
}

// Headline computes the §9.3 comparison deltas between schemes, averaged
// over the suite.
type Headline struct {
	BaseORAMPerfX, BaseORAMPowerW       float64
	DynPerfX, DynPowerW                 float64
	S300PerfX, S300PowerW               float64
	S500PerfX, S500PowerW               float64
	S1300PerfX, S1300PowerW             float64
	BaseDRAMPowerW                      float64
	DynVsORAMPerfPct, DynVsORAMPowerPct float64
	S300VsDynPowerPct                   float64
	S500VsDynPowerPct                   float64
	S1300VsDynPerfPct                   float64
	DynDummyFrac                        float64
}

// ComputeHeadline evaluates the §9.3 headline numbers.
func ComputeHeadline(s Scale) Headline {
	suite := workload.Suite()
	n := float64(len(suite))
	var h Headline
	cfgs := fig6Schemes(s)
	stride := 1 + len(cfgs)
	jobs := make([]simJob, 0, len(suite)*stride)
	for _, spec := range suite {
		jobs = append(jobs, simJob{spec, s.config(sim.BaseDRAM)})
		for _, cfg := range cfgs {
			jobs = append(jobs, simJob{spec, cfg})
		}
	}
	results := runAll(jobs)
	for si := range suite {
		base := results[si*stride]
		h.BaseDRAMPowerW += base.Power.Watts() / n
		or := results[si*stride+1]
		dy := results[si*stride+2]
		s3 := results[si*stride+3]
		s5 := results[si*stride+4]
		s13 := results[si*stride+5]
		h.BaseORAMPerfX += or.PerfOverhead(base) / n
		h.BaseORAMPowerW += or.Power.Watts() / n
		h.DynPerfX += dy.PerfOverhead(base) / n
		h.DynPowerW += dy.Power.Watts() / n
		h.S300PerfX += s3.PerfOverhead(base) / n
		h.S300PowerW += s3.Power.Watts() / n
		h.S500PerfX += s5.PerfOverhead(base) / n
		h.S500PowerW += s5.Power.Watts() / n
		h.S1300PerfX += s13.PerfOverhead(base) / n
		h.S1300PowerW += s13.Power.Watts() / n
		h.DynDummyFrac += dy.Mem.DummyFraction() / n
	}
	h.DynVsORAMPerfPct = (h.DynPerfX/h.BaseORAMPerfX - 1) * 100
	h.DynVsORAMPowerPct = (h.DynPowerW/h.BaseORAMPowerW - 1) * 100
	h.S300VsDynPowerPct = (h.S300PowerW/h.DynPowerW - 1) * 100
	h.S500VsDynPowerPct = (h.S500PowerW/h.DynPowerW - 1) * 100
	h.S1300VsDynPerfPct = (h.S1300PerfX/h.DynPerfX - 1) * 100
	return h
}

// HeadlineTable renders ComputeHeadline with the paper's reported values
// alongside.
func HeadlineTable(s Scale) *stats.Table {
	h := ComputeHeadline(s)
	t := stats.NewTable("§9.3 headline comparison (suite averages)",
		"metric", "paper", "measured")
	t.AddRow("base_oram perf ×", "3.35", fmt.Sprintf("%.2f", h.BaseORAMPerfX))
	t.AddRow("dynamic_R4_E4 perf ×", "4.03", fmt.Sprintf("%.2f", h.DynPerfX))
	t.AddRow("static_300 perf ×", "3.80", fmt.Sprintf("%.2f", h.S300PerfX))
	t.AddRow("dynamic vs base_oram perf", "+20%", fmt.Sprintf("%+.0f%%", h.DynVsORAMPerfPct))
	t.AddRow("dynamic vs base_oram power", "+12%", fmt.Sprintf("%+.0f%%", h.DynVsORAMPowerPct))
	t.AddRow("static_300 vs dynamic power", "+47%", fmt.Sprintf("%+.0f%%", h.S300VsDynPowerPct))
	t.AddRow("static_500 vs dynamic power", "+34%", fmt.Sprintf("%+.0f%%", h.S500VsDynPowerPct))
	t.AddRow("static_1300 vs dynamic perf", "+30%", fmt.Sprintf("%+.0f%%", h.S1300VsDynPerfPct))
	t.AddRow("dynamic dummy-access fraction", "34%", fmt.Sprintf("%.0f%%", h.DynDummyFrac*100))
	t.AddRow("dynamic_R4_E4 ORAM-channel leakage", "32 bits",
		leakage.PaperBudget(4, 4).ORAMBits().String())
	t.AddRow("total with termination (§9.3)", "94 bits",
		fmt.Sprintf("%.0f bits", float64(leakage.PaperBudget(4, 4).TotalBits())))
	return t
}

// LeakageExamples renders the Example 2.1 / 6.1 arithmetic and the §9.5
// leakage budgets.
func LeakageExamples() *stats.Table {
	t := stats.NewTable("Examples 2.1 & 6.1: leakage accounting",
		"quantity", "value (bits)")
	t.AddRow("malicious P1, T=100 steps", fmt.Sprintf("%.0f", float64(leakage.MaliciousProgramBits(100))))
	t.AddRow("static rate (any)", fmt.Sprintf("%.0f", float64(leakage.StaticBits())))
	t.AddRow("dynamic R4 doubling (ORAM only)", fmt.Sprintf("%.0f", float64(leakage.PaperBudget(4, 2).ORAMBits())))
	t.AddRow("dynamic R4 doubling + termination", fmt.Sprintf("%.0f", float64(leakage.PaperBudget(4, 2).TotalBits())))
	t.AddRow("dynamic R4 E4 (ORAM only)", fmt.Sprintf("%.0f", float64(leakage.PaperBudget(4, 4).ORAMBits())))
	t.AddRow("dynamic R4 E16 (ORAM only)", fmt.Sprintf("%.0f", float64(leakage.PaperBudget(4, 16).ORAMBits())))
	t.AddRow("termination, discretized to 2^30", fmt.Sprintf("%.0f", float64(leakage.TerminationBits(core.PaperTmax, 30))))
	t.AddRow("unprotected base_oram at Tmax (approx)",
		fmt.Sprintf("%.3g", float64(leakage.UnprotectedBitsApprox(math.Exp2(62), pathoram.PaperAccessLatency))))
	return t
}
