package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tcoram/internal/workload"
)

// sscan parses a numeric table cell.
func sscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// All experiment tests run at Quick scale; the Full-scale numbers are
// recorded in EXPERIMENTS.md by cmd/experiments.

func TestTable1ContainsKeyParameters(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"in-order", "1 MB, 16-way", "1488", "64 B", "flat"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2DerivesPaperEnergy(t *testing.T) {
	out := Table2().String()
	if !strings.Contains(out, "984") {
		t.Fatalf("Table 2 missing the 984 nJ per-access energy:\n%s", out)
	}
}

func TestFig2InputDependence(t *testing.T) {
	tbl := Fig2(Quick())
	// Average the per-window gap per spec.
	gaps := map[string]float64{}
	counts := map[string]float64{}
	for _, row := range tbl.Rows {
		var v float64
		if _, err := sscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		gaps[row[0]] += v
		counts[row[0]]++
	}
	for k := range gaps {
		gaps[k] /= counts[k]
	}
	// Fig 2 top: perlbench splitmail accesses ORAM far less often than
	// diffmail (paper: ~80×; we require ≥ 20×).
	if r := gaps["perlbench/splitmail"] / gaps["perlbench/diffmail"]; r < 20 {
		t.Errorf("perlbench input gap ratio = %.1f, want ≥ 20", r)
	}
	// Fig 2 bottom: astar biglakes varies strongly over time; rivers does
	// not. Compare max/min across windows.
	variation := func(id string) float64 {
		min, max := 1e18, 0.0
		for _, row := range tbl.Rows {
			if row[0] != id {
				continue
			}
			var v float64
			if _, err := sscan(row[2], &v); err != nil {
				t.Fatal(err)
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max / min
	}
	if vr, vb := variation("astar/rivers"), variation("astar/biglakes"); vb < 2*vr {
		t.Errorf("astar variation: biglakes %.1f vs rivers %.1f — biglakes should vary far more", vb, vr)
	}
}

func TestFig5SweepShape(t *testing.T) {
	s := Quick()
	mcf := Fig5Sweep(workload.MCF(), s)
	h264 := Fig5Sweep(workload.H264ref(), s)
	// Memory bound: performance degrades monotonically-ish with slower
	// rates; the slowest rate must be far worse than the fastest.
	if mcf[len(mcf)-1].PerfOverheadX < 3*mcf[0].PerfOverheadX {
		t.Errorf("mcf: slowest rate %.1f× not ≫ fastest %.1f×",
			mcf[len(mcf)-1].PerfOverheadX, mcf[0].PerfOverheadX)
	}
	// Compute bound: at very slow rates power drops to (or below) the
	// base_dram level (§9.2: "power to drop below that of base_dram").
	last := h264[len(h264)-1]
	if last.PowerOverheadX > 1.6 {
		t.Errorf("h264ref power at rate %d = %.2f× base_dram, want ≲ 1.6", last.Rate, last.PowerOverheadX)
	}
	// Fast rates always burn much more power than slow ones.
	if h264[0].PowerOverheadX < 2*last.PowerOverheadX {
		t.Errorf("h264ref: fast-rate power %.2f× not ≫ slow-rate %.2f×",
			h264[0].PowerOverheadX, last.PowerOverheadX)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	rows := Fig6Rows(Quick())
	get := func(bench, scheme string) Fig6Row {
		for _, r := range rows {
			if r.Benchmark == bench && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", bench, scheme)
		return Fig6Row{}
	}
	// base_oram is the performance oracle among ORAM schemes.
	avgORAM := get("Avg", "base_oram")
	avgDyn := get("Avg", "dynamic_R4_E4")
	avgS300 := get("Avg", "static_300")
	avgS1300 := get("Avg", "static_1300")
	if avgORAM.PerfOverheadX >= avgDyn.PerfOverheadX {
		t.Error("base_oram should outperform the dynamic scheme")
	}
	// §9.3: static_300 burns more power than dynamic; static_1300 is
	// slower than dynamic.
	if avgS300.PowerWatts <= avgDyn.PowerWatts {
		t.Errorf("static_300 power %.3f ≤ dynamic %.3f", avgS300.PowerWatts, avgDyn.PowerWatts)
	}
	if avgS1300.PerfOverheadX <= avgDyn.PerfOverheadX {
		t.Errorf("static_1300 perf %.2f ≤ dynamic %.2f", avgS1300.PerfOverheadX, avgDyn.PerfOverheadX)
	}
	// mcf is the most ORAM-bound benchmark; hmmer the least.
	if get("mcf", "base_oram").PerfOverheadX < 2*get("hmmer", "base_oram").PerfOverheadX {
		t.Error("mcf should be far more ORAM-sensitive than hmmer")
	}
	// Leakage columns: base_oram astronomical, static 0, dynamic 32.
	if get("Avg", "static_300").LeakageBits != 0 {
		t.Error("static scheme must report 0 ORAM-channel bits")
	}
	if get("Avg", "dynamic_R4_E4").LeakageBits != 32 {
		t.Errorf("dynamic_R4_E4 leakage = %v, want 32", avgDyn.LeakageBits)
	}
	if get("Avg", "base_oram").LeakageBits < 1e9 {
		t.Error("base_oram leakage should be astronomical")
	}
}

func TestFig6RowsParallelSerialEquivalence(t *testing.T) {
	// The worker-pool fan-out must not change results: every sim.Run is
	// seed-deterministic and self-contained, and aggregation happens in job
	// order. Compare a forced-serial run against a forced-parallel one at a
	// reduced scale (full Quick would run the suite twice).
	s := Scale{Instructions: 300_000, Warmup: 100_000, WindowInstrs: 100_000, EpochFirstLen: 1 << 16}
	defer func(p int) { Parallelism = p }(Parallelism)
	Parallelism = 1
	serial := Fig6Rows(s)
	Parallelism = 8
	parallel := Fig6Rows(s)
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Fatalf("row %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
			}
		}
		t.Fatal("parallel Fig6Rows differs from serial")
	}
}

func TestFig7HasEpochMarks(t *testing.T) {
	tbl := Fig7(Quick())
	marks := 0
	schemes := map[string]bool{}
	for _, row := range tbl.Rows {
		schemes[row[1]] = true
		if row[4] != "" {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("no epoch transition marks in Fig 7 data")
	}
	for _, want := range []string{"base_oram", "dynamic_R4_E2", "static_1300"} {
		if !schemes[want] {
			t.Errorf("Fig 7 missing scheme %s", want)
		}
	}
}

func TestFig8LeakageMonotonicity(t *testing.T) {
	// Fig 8a: leakage budget scales with lg|R|; Fig 8b: with epoch count.
	a := Fig8a(Quick())
	leakOf := func(tbl interface{ String() string }, scheme string) float64 {
		for _, row := range a.Rows {
			if row[0] == "Avg" && row[1] == scheme {
				var v float64
				if _, err := sscan(row[4], &v); err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("missing Avg row for %s", scheme)
		return 0
	}
	if l16, l4 := leakOf(a, "dynamic_R16_E2"), leakOf(a, "dynamic_R4_E2"); l16 != 128 || l4 != 64 {
		t.Errorf("Fig8a leakage: R16=%v (want 128), R4=%v (want 64)", l16, l4)
	}
	b := Fig8b(Quick())
	var e4, e16 float64
	for _, row := range b.Rows {
		if row[0] != "Avg" {
			continue
		}
		var v float64
		if _, err := sscan(row[4], &v); err != nil {
			t.Fatal(err)
		}
		switch row[1] {
		case "dynamic_R4_E4":
			e4 = v
		case "dynamic_R4_E16":
			e16 = v
		}
	}
	if e4 != 32 || e16 != 16 {
		t.Errorf("Fig8b leakage: E4=%v (want 32), E16=%v (want 16)", e4, e16)
	}
}

func TestHeadlineDirections(t *testing.T) {
	h := ComputeHeadline(Quick())
	if h.DynVsORAMPerfPct <= 0 {
		t.Error("dynamic should cost performance vs base_oram")
	}
	if h.S300VsDynPowerPct <= 0 {
		t.Error("static_300 should cost power vs dynamic")
	}
	if h.S1300VsDynPerfPct <= 0 {
		t.Error("static_1300 should cost performance vs dynamic")
	}
	if h.DynDummyFrac <= 0 || h.DynDummyFrac >= 1 {
		t.Errorf("dummy fraction = %v", h.DynDummyFrac)
	}
	out := HeadlineTable(Quick()).String()
	for _, want := range []string{"base_oram", "dynamic", "static_300", "94 bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline table missing %q", want)
		}
	}
}

func TestLeakageExamplesTable(t *testing.T) {
	out := LeakageExamples().String()
	for _, want := range []string{"64", "126", "32", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("leakage examples missing %q:\n%s", want, out)
		}
	}
}
