// Package cpu models the in-order, single-issue core of Table 1: fixed
// per-class instruction latencies (Arith/Mult/Div = 1/4/12 cycles, FP
// Arith/Mult/Div = 2/4/10), blocking loads, stores through the hierarchy's
// non-blocking write buffer, and a synthetic fetch stream over a
// workload-specific code footprint.
package cpu

import (
	"tcoram/internal/cache"
	"tcoram/internal/trace"
)

// latencies maps instruction kinds to their execute latencies in cycles
// (Table 1). Memory kinds are resolved by the hierarchy instead.
var latencies = [trace.NumKinds]uint64{
	trace.IntALU:  1,
	trace.IntMult: 4,
	trace.IntDiv:  12,
	trace.FPALU:   2,
	trace.FPMult:  4,
	trace.FPDiv:   10,
	trace.Branch:  1,
	trace.Load:    0,
	trace.Store:   0,
}

// Latency returns the fixed execute latency of a non-memory kind.
func Latency(k trace.Kind) uint64 { return latencies[k] }

// Config parameterizes the core.
type Config struct {
	// CodeBytes is the synthetic code footprint; taken branches jump
	// within it, exercising the L1 I-cache realistically for the
	// workload. Must be a positive multiple of the line size.
	CodeBytes uint64
	// CodeBase is the base byte address of the code region (kept disjoint
	// from data regions by the workload generators).
	CodeBase uint64
	// BranchTakenProb is the probability (in 1/256ths) that a Branch
	// redirects fetch rather than falling through.
	BranchTakenProb uint8
	// Seed drives the branch-target PRNG.
	Seed uint64
}

// DefaultConfig returns a 16 KB code footprint with 50% taken branches.
func DefaultConfig() Config {
	return Config{CodeBytes: 16 << 10, BranchTakenProb: 128, Seed: 1}
}

// Stats aggregates the counters the performance and energy models need.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	ByKind       [trace.NumKinds]uint64
	FetchLines   uint64 // I-fetch line crossings (fetch-buffer fills)
	LoadStalls   uint64 // cycles stalled waiting for loads
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core executes a trace.Stream against a cache.Hierarchy, advancing a cycle
// clock. It is deliberately simple: one instruction at a time, with the
// only memory-level parallelism coming from the write buffer — matching the
// paper's core model ("in-order, single-issue ... non-blocking write buffer
// which can generate multiple, concurrent outstanding LLC misses", §9.1.2).
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	now  uint64
	pc   uint64
	rng  uint64
	stat Stats
}

// NewCore returns a core at cycle 0.
func NewCore(cfg Config, hier *cache.Hierarchy) *Core {
	if cfg.CodeBytes == 0 || cfg.CodeBytes%cache.LineBytes != 0 {
		cfg.CodeBytes = 16 << 10
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Core{cfg: cfg, hier: hier, pc: cfg.CodeBase, rng: seed}
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stat }

// ResetStats zeroes the counters without disturbing the clock, PC or
// branch PRNG. The simulator calls it at the end of cache warmup, mirroring
// the paper's fast-forward methodology (§9.1.1).
func (c *Core) ResetStats() { c.stat = Stats{} }

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.stat.Instructions }

// nextRand is a splitmix64 step — fast, deterministic branch-target PRNG.
func (c *Core) nextRand() uint64 {
	c.rng += 0x9E3779B97F4A7C15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Step executes one instruction, advancing the clock, and reports the cycle
// after retirement.
func (c *Core) Step(ins trace.Instr) uint64 {
	// Fetch: model the fetch buffer — a new I-line is fetched only when
	// the PC crosses a line boundary or after a taken branch.
	if c.pc%cache.LineBytes == 0 {
		c.stat.FetchLines++
		c.now = c.hier.FetchInstr(c.now, c.pc)
	}
	c.pc += 4
	if c.pc >= c.cfg.CodeBase+c.cfg.CodeBytes {
		c.pc = c.cfg.CodeBase
	}

	switch ins.Kind {
	case trace.Load:
		done := c.hier.Load(c.now, ins.Addr)
		if done > c.now {
			c.stat.LoadStalls += done - c.now
		}
		c.now = done
	case trace.Store:
		c.now = c.hier.Store(c.now, ins.Addr)
	case trace.Branch:
		c.now += latencies[trace.Branch]
		if uint8(c.nextRand()) < c.cfg.BranchTakenProb {
			// Taken: jump to a random line-aligned target in the code
			// footprint; the next Step fetches the new line.
			lines := c.cfg.CodeBytes / cache.LineBytes
			c.pc = c.cfg.CodeBase + (c.nextRand()%lines)*cache.LineBytes
		}
	default:
		c.now += latencies[ins.Kind]
	}

	c.stat.ByKind[ins.Kind]++
	c.stat.Instructions++
	c.stat.Cycles = c.now
	return c.now
}

// Run executes up to maxInstrs from the stream (or until it ends) and
// returns the final cycle. A zero maxInstrs means "until the stream ends".
func (c *Core) Run(stream trace.Stream, maxInstrs uint64) uint64 {
	for maxInstrs == 0 || c.stat.Instructions < maxInstrs {
		ins, ok := stream.Next()
		if !ok {
			break
		}
		c.Step(ins)
	}
	return c.now
}
