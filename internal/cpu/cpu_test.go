package cpu

import (
	"testing"

	"tcoram/internal/cache"
	"tcoram/internal/core"
	"tcoram/internal/trace"
)

func newTestCore() *Core {
	mem := core.NewFlatMemory(40)
	hier := cache.NewHierarchy(cache.DefaultConfig(), mem)
	return NewCore(DefaultConfig(), hier)
}

func TestInstructionLatenciesTable1(t *testing.T) {
	// Table 1: Arith/Mult/Div = 1/4/12; FP Arith/Mult/Div = 2/4/10.
	cases := []struct {
		kind trace.Kind
		want uint64
	}{
		{trace.IntALU, 1}, {trace.IntMult, 4}, {trace.IntDiv, 12},
		{trace.FPALU, 2}, {trace.FPMult, 4}, {trace.FPDiv, 10},
		{trace.Branch, 1},
	}
	for _, tc := range cases {
		if got := Latency(tc.kind); got != tc.want {
			t.Errorf("Latency(%v) = %d, want %d", tc.kind, got, tc.want)
		}
	}
}

// warmICache runs enough straight-line instructions to pull the whole code
// footprint into the L1 I-cache, then resets the counters.
func warmICache(c *Core) {
	for i := 0; i < 8192; i++ {
		c.Step(trace.Instr{Kind: trace.IntALU})
	}
	c.ResetStats()
}

func TestALUStreamRetiresOnePerCycle(t *testing.T) {
	c := newTestCore()
	warmICache(c)
	start := c.Now()
	for i := 0; i < 1000; i++ {
		c.Step(trace.Instr{Kind: trace.IntALU})
	}
	st := c.Stats()
	if st.Instructions != 1000 {
		t.Fatalf("retired %d, want 1000", st.Instructions)
	}
	// 1 cycle each plus warm per-line fetch costs.
	if took := c.Now() - start; took < 1000 || took > 1200 {
		t.Fatalf("ALU stream took %d cycles, want ≈1000", took)
	}
}

func TestDivSlowerThanALU(t *testing.T) {
	run := func(kind trace.Kind) uint64 {
		c := newTestCore()
		warmICache(c)
		start := c.Now()
		for i := 0; i < 500; i++ {
			c.Step(trace.Instr{Kind: kind})
		}
		return c.Now() - start
	}
	if alu, div := run(trace.IntALU), run(trace.IntDiv); div < alu*10 {
		t.Fatalf("divide stream (%d cycles) not ≈12× ALU stream (%d)", div, alu)
	}
}

func TestLoadMissBlocks(t *testing.T) {
	c := newTestCore()
	done := c.Step(trace.Instr{Kind: trace.Load, Addr: 1 << 30})
	// Cold load: must include the 40-cycle memory trip.
	if done < 40 {
		t.Fatalf("cold load retired at %d, want ≥ 40", done)
	}
	if c.Stats().LoadStalls == 0 {
		t.Fatal("no load stall cycles recorded")
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	c := newTestCore()
	warmICache(c)
	start := c.Now()
	var last uint64
	for i := 0; i < 4; i++ {
		last = c.Step(trace.Instr{Kind: trace.Store, Addr: uint64(1<<30) + uint64(i)*64})
	}
	// Four cold store misses retire quickly through the write buffer.
	if took := last - start; took > 20 {
		t.Fatalf("4 store misses took %d cycles; write buffer should hide them", took)
	}
}

func TestMaxInstrsBound(t *testing.T) {
	c := newTestCore()
	instrs := make([]trace.Instr, 100)
	c.Run(trace.NewSliceStream(instrs), 10)
	if got := c.Instructions(); got != 10 {
		t.Fatalf("Run(maxInstrs=10) retired %d", got)
	}
}

func TestResetStatsKeepsClock(t *testing.T) {
	c := newTestCore()
	c.Step(trace.Instr{Kind: trace.IntDiv})
	now := c.Now()
	c.ResetStats()
	if c.Now() != now {
		t.Fatal("ResetStats disturbed the clock")
	}
	if c.Stats().Instructions != 0 {
		t.Fatal("ResetStats did not zero instructions")
	}
}

func TestByKindCounts(t *testing.T) {
	c := newTestCore()
	c.Step(trace.Instr{Kind: trace.FPMult})
	c.Step(trace.Instr{Kind: trace.FPMult})
	c.Step(trace.Instr{Kind: trace.IntALU})
	st := c.Stats()
	if st.ByKind[trace.FPMult] != 2 || st.ByKind[trace.IntALU] != 1 {
		t.Fatalf("ByKind = %v", st.ByKind)
	}
}

func TestBranchesRedirectFetch(t *testing.T) {
	// With 100% taken branches over a large code footprint, fetch-line
	// count approaches one per branch (every branch jumps to a new line).
	mem := core.NewFlatMemory(40)
	hier := cache.NewHierarchy(cache.DefaultConfig(), mem)
	c := NewCore(Config{CodeBytes: 256 << 10, BranchTakenProb: 255, Seed: 7}, hier)
	for i := 0; i < 2000; i++ {
		c.Step(trace.Instr{Kind: trace.Branch})
	}
	st := c.Stats()
	if st.FetchLines < 1500 {
		t.Fatalf("taken branches fetched %d lines / 2000 branches; expected ≈1 line per branch", st.FetchLines)
	}
	// The 256 KB footprint exceeds the 32 KB L1I: real I-misses occur.
	if hier.Stats().L1IMisses == 0 {
		t.Fatal("large code footprint produced no L1I misses")
	}
}

func TestIPCComputation(t *testing.T) {
	s := Stats{Instructions: 500, Cycles: 2000}
	if got := s.IPC(); got != 0.25 {
		t.Fatalf("IPC = %v, want 0.25", got)
	}
	if (Stats{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() uint64 {
		c := newTestCore()
		instrs := make([]trace.Instr, 0, 3000)
		for i := 0; i < 1000; i++ {
			instrs = append(instrs,
				trace.Instr{Kind: trace.Branch},
				trace.Instr{Kind: trace.Load, Addr: uint64(i%64) * 64 * 997},
				trace.Instr{Kind: trace.IntMult})
		}
		c.Run(trace.NewSliceStream(instrs), 0)
		return c.Stats().Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("execution not deterministic: %d vs %d cycles", a, b)
	}
}
