package server

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func parseStoreFlags(t *testing.T, opt StoreFlagOptions, args ...string) (Config, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sf := NewStoreFlags(fs, opt)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf.Config()
}

// TestStoreFlagsDefaults: the shared builder's defaults are the daemon's
// documented defaults, and the zero-argument parse yields a servable
// configuration.
func TestStoreFlagsDefaults(t *testing.T) {
	cfg, err := parseStoreFlags(t, StoreFlagOptions{Storage: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 4 || cfg.Blocks != 65536 || cfg.BlockBytes != 64 || cfg.Z != 3 ||
		cfg.QueueDepth != 256 || cfg.Seed != 1 || cfg.Backend != "flat" || cfg.Recursion != 3 ||
		cfg.BatchK != 4 || cfg.EvictEvery != 4 || cfg.ClockHz != 1_000_000 || cfg.ORAMLatency != 15 ||
		cfg.EpochGrowth != 4 || cfg.Store != "mem" {
		t.Errorf("defaults drifted: %+v", cfg)
	}
	if len(cfg.Rates) != 1 || cfg.Rates[0] != 85 {
		t.Errorf("default rates = %v, want [85]", cfg.Rates)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default flag config does not validate: %v", err)
	}

	// A binary without the storage group gets a config with no Store field
	// set, and the caller's Blocks override becomes the flag default.
	cfg, err = parseStoreFlags(t, StoreFlagOptions{Blocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Blocks != 4096 || cfg.Store != "" {
		t.Errorf("loadgen-shaped defaults: Blocks=%d Store=%q", cfg.Blocks, cfg.Store)
	}
}

// TestStoreFlagsBatchedRecursionSpecialCase: the builder carries oramd's
// flag.Visit special case — `-oram batched` defaults to a flat position map
// unless -recursion was passed explicitly.
func TestStoreFlagsBatchedRecursionSpecialCase(t *testing.T) {
	cfg, err := parseStoreFlags(t, StoreFlagOptions{}, "-oram", "batched")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Recursion != 0 {
		t.Errorf("batched without -recursion got recursion %d, want 0", cfg.Recursion)
	}
	cfg, err = parseStoreFlags(t, StoreFlagOptions{}, "-oram", "batched", "-recursion", "2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Recursion != 2 {
		t.Errorf("explicit -recursion 2 got %d", cfg.Recursion)
	}
	cfg, err = parseStoreFlags(t, StoreFlagOptions{}, "-oram", "recursive")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Recursion != 3 {
		t.Errorf("recursive backend got recursion %d, want the default 3", cfg.Recursion)
	}
}

// TestStoreFlagsBudgets: the embedded budget group parses both the session
// budget and the per-tenant sub-budgets, and surfaces parse errors from
// Config() rather than panicking mid-serve.
func TestStoreFlagsBudgets(t *testing.T) {
	cfg, err := parseStoreFlags(t, StoreFlagOptions{},
		"-leak-budget", "64", "-tenant-budgets", "alice=8,bob=16")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LeakageBudgetBits != 64 {
		t.Errorf("LeakageBudgetBits = %v", cfg.LeakageBudgetBits)
	}
	if len(cfg.TenantBudgets) != 2 || cfg.TenantBudgets["alice"] != 8 || cfg.TenantBudgets["bob"] != 16 {
		t.Errorf("TenantBudgets = %v", cfg.TenantBudgets)
	}
	if _, err := parseStoreFlags(t, StoreFlagOptions{}, "-tenant-budgets", "alice"); err == nil {
		t.Error("malformed -tenant-budgets accepted")
	}
	if _, err := parseStoreFlags(t, StoreFlagOptions{}, "-rates", "85,banana"); err == nil {
		t.Error("malformed -rates accepted")
	}
}

// TestStoreFlagsUsageNote: the Note prefix and per-flag usage overrides land
// in the registered flag set — what keeps loadgen's help text honest about
// which flags are in-process-only.
func TestStoreFlagsUsageNote(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	NewStoreFlags(fs, StoreFlagOptions{
		Note:      "in-process: ",
		SeedUsage: "workload seed",
	})
	if f := fs.Lookup("shards"); f == nil || !strings.HasPrefix(f.Usage, "in-process: ") {
		t.Errorf("shards usage not Note-prefixed: %+v", f)
	}
	if f := fs.Lookup("seed"); f == nil || f.Usage != "workload seed" {
		t.Errorf("seed usage override not applied: %+v", f)
	}
	if fs.Lookup("store") != nil {
		t.Error("storage group registered without Storage: true")
	}
}
