package server

import (
	"sync"
	"testing"
	"time"
)

// instantKV answers everything immediately — the backend under the WAN
// wrapper, so every millisecond a test measures belongs to the shaping.
type instantKV struct{ data []byte }

func (k *instantKV) Read(addr uint64) ([]byte, error) { return k.data, nil }
func (k *instantKV) Write(uint64, []byte) error       { return nil }
func (k *instantKV) TenantRead(string, uint64) ([]byte, error) {
	return k.data, nil
}
func (k *instantKV) TenantWrite(string, uint64, []byte) error { return nil }
func (k *instantKV) ReadBatch(tenant string, addrs []uint64) ([]BatchResult, error) {
	out := make([]BatchResult, len(addrs))
	for i := range out {
		out[i].Data = k.data
	}
	return out, nil
}

// TestWANShapingDelaysOps: a wrapped operation pays at least the configured
// RTT plus its serialization time on the emulated link.
func TestWANShapingDelaysOps(t *testing.T) {
	kv := WrapWAN(&instantKV{data: make([]byte, 64)}, WANConfig{KBps: 10, RTT: 20 * time.Millisecond})

	// One read moves ~200 wire bytes (64 B request, base64 response) over a
	// 10 KB/s link ≈ 19 ms of serialization, plus the 20 ms RTT.
	t0 := time.Now()
	if _, err := kv.TenantRead("", 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 30*time.Millisecond {
		t.Errorf("shaped read took %v, want ≥ 30ms (RTT + serialization)", elapsed)
	}
}

// TestWANShapingSerializesLink: the emulated link is a single serial
// resource — concurrent operations queue on it instead of overlapping, so
// N ops cost at least N × their byte time even when issued together.
func TestWANShapingSerializesLink(t *testing.T) {
	kv := WrapWAN(&instantKV{data: make([]byte, 64)}, WANConfig{KBps: 10, RTT: 0})

	const n = 3
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := kv.TenantRead("", 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Each read serializes ~19 ms of bytes; three of them share one link.
	if elapsed := time.Since(t0); elapsed < 45*time.Millisecond {
		t.Errorf("%d concurrent shaped reads took %v, want ≥ 45ms on a serial link", n, elapsed)
	}
}

// TestWANDisabledIsPassThrough: the zero config wraps nothing.
func TestWANDisabledIsPassThrough(t *testing.T) {
	base := &instantKV{data: make([]byte, 8)}
	if got := WrapWAN(base, WANConfig{}); got != KV(base) {
		t.Error("zero WANConfig did not pass the KV through unwrapped")
	}
	if (WANConfig{}).Enabled() {
		t.Error("zero WANConfig reports enabled")
	}
	if !(WANConfig{RTT: time.Millisecond}).Enabled() {
		t.Error("RTT-only WANConfig reports disabled")
	}
	if !(WANConfig{KBps: 1}).Enabled() {
		t.Error("bandwidth-only WANConfig reports disabled")
	}
}
