package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
)

// maxLineBytes bounds one protocol line; a write of a 64 KB block base64-
// encodes to well under this.
const maxLineBytes = 1 << 20

// connConcurrency bounds the number of in-flight requests the daemon will
// hold per connection; beyond it, reading from the connection pauses
// (backpressure on top of the per-shard queues).
const connConcurrency = 256

// Service is what a JSON-lines daemon serves: the KV data ops plus a stats
// snapshot. *Store satisfies it directly; the cluster router satisfies it by
// fanning out to remote daemons, which is how cmd/oramproxy reuses this
// entire connection-handling layer unchanged.
type Service interface {
	KV
	// ServiceStats snapshots the serving-side counters. A local store can
	// never fail here; a router polling remote nodes can, and the error is
	// surfaced to the stats caller instead of tearing down the connection.
	ServiceStats() (Stats, error)
}

// Serve accepts connections on l and speaks the JSON-lines protocol against
// svc until the listener is closed (or fails), then returns the accept
// error. Connection handlers drain independently; Serve does not wait for
// them.
func Serve(l net.Listener, svc Service) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go HandleConn(conn, svc)
	}
}

// HandleConn runs one connection to completion. Exported so tests and
// in-process harnesses can serve a net.Pipe or a single accepted socket.
func HandleConn(conn net.Conn, svc Service) {
	defer conn.Close()

	out := make(chan Response, connConcurrency)
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		bw := bufio.NewWriter(conn)
		enc := json.NewEncoder(bw)
		dead := false
		for resp := range out {
			// After a write failure, keep draining so dispatch workers
			// blocked on `out` can finish and HandleConn can tear down —
			// exiting here would deadlock them against a full channel.
			if dead {
				continue
			}
			if err := enc.Encode(&resp); err != nil {
				dead = true
				conn.Close() // also unblocks the scanner
				continue
			}
			// Flush when the queue is momentarily empty so pipelined bursts
			// batch into few syscalls but single responses aren't delayed.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					dead = true
					conn.Close()
					continue
				}
			}
		}
		if !dead {
			bw.Flush()
		}
	}()

	var inflight sync.WaitGroup
	sem := make(chan struct{}, connConcurrency)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Always answer malformed lines with ID 0: req may hold a
			// partially-decoded ID from before the parse error, and echoing
			// it would attribute this failure to some other pipelined
			// request. Clients must treat id 0 as "a line you sent was
			// unparseable" (the client never issues id 0 itself).
			out <- Response{ID: 0, OK: false, Err: fmt.Sprintf("server: bad request: %v", err), Code: CodeBadRequest}
			continue
		}
		switch req.Op {
		case OpPing:
			out <- Response{ID: req.ID, OK: true}
		case OpStats:
			// A router's stats poll fans out over the network, so it runs off
			// the scan loop like a data op — a slow node must not stall
			// pipelined reads behind it.
			sem <- struct{}{}
			inflight.Add(1)
			go func(req Request) {
				defer inflight.Done()
				defer func() { <-sem }()
				stats, err := svc.ServiceStats()
				if err != nil {
					out <- errResponse(req.ID, err)
					return
				}
				out <- Response{ID: req.ID, OK: true, Stats: &stats}
			}(req)
		case OpRead, OpWrite, OpBatchRead:
			sem <- struct{}{}
			inflight.Add(1)
			go func(req Request) {
				defer inflight.Done()
				defer func() { <-sem }()
				out <- dispatch(svc, req)
			}(req)
		default:
			out <- Response{ID: req.ID, OK: false, Err: fmt.Sprintf("server: unknown op %q", req.Op), Code: CodeUnknownOp}
		}
	}
	if err := sc.Err(); err != nil {
		// Scanner failures (oversized line, mid-stream read error) used to
		// close the connection silently; send a final zero-ID diagnostic so
		// the peer learns why its connection died.
		out <- Response{ID: 0, OK: false, Err: fmt.Sprintf("server: connection failed: %v", err), Code: CodeBadRequest}
	}
	inflight.Wait()
	close(out)
	writer.Wait()
}

// dispatch executes one blocking data op against the service.
func dispatch(svc Service, req Request) Response {
	switch req.Op {
	case OpRead:
		data, err := svc.TenantRead(req.Tenant, req.Addr)
		if err != nil {
			return errResponse(req.ID, err)
		}
		return Response{ID: req.ID, OK: true, Data: data}
	case OpWrite:
		if err := svc.TenantWrite(req.Tenant, req.Addr, req.Data); err != nil {
			return errResponse(req.ID, err)
		}
		return Response{ID: req.ID, OK: true}
	case OpBatchRead:
		// A rejected batch (too large, empty, tenant over budget) is a
		// normal failed response on a healthy connection; only per-address
		// outcomes ride in Results.
		results, err := svc.ReadBatch(req.Tenant, req.Addrs)
		if err != nil {
			return errResponse(req.ID, err)
		}
		wire := make([]WireResult, len(results))
		for i, r := range results {
			if r.Err != nil {
				wire[i] = WireResult{OK: false, Err: r.Err.Error(), Code: ErrorCode(r.Err)}
			} else {
				wire[i] = WireResult{OK: true, Data: r.Data}
			}
		}
		return Response{ID: req.ID, OK: true, Results: wire}
	}
	return Response{ID: req.ID, OK: false, Err: "server: unreachable op", Code: CodeInternal}
}

// IsClosedErr reports whether err is the uninteresting error a listener
// returns when shut down deliberately.
func IsClosedErr(err error) bool {
	return err == nil || errors.Is(err, net.ErrClosed)
}
