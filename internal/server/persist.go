package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"

	"tcoram/internal/crypt"
	"tcoram/internal/pathoram"
)

// This file implements the durable storage tier's trust split. A file-backed
// shard persists two different kinds of state:
//
//   - the bucket files (level-N.oram), which are UNTRUSTED exactly like the
//     DRAM they replace: ciphertexts an offline adversary may read and
//     rewrite at will;
//   - a sealed checkpoint (checkpoint.bin) of the TRUSTED controller state —
//     position maps, stash contents, tombstones, counters — plus the Merkle
//     roots binding it to the bucket files, encrypted and MAC'd under the
//     session key (crypt.Seal).
//
// Crash consistency uses redo-in-checkpoint: between checkpoints every dirty
// bucket page is pinned in the cache (FileStorage.RetainDirty), so the
// bucket files never change behind the checkpoint's back. A checkpoint then
// (1) captures trusted state and the dirty pages as redo records, (2) seals
// and atomically renames the blob into place, (3) flushes the dirty pages.
// A crash at any point leaves the newest complete checkpoint plus a bucket
// file the checkpoint's redo replays into exactly the state its Merkle
// roots certify — replay is idempotent, so a torn flush repairs cleanly.
// Recovery therefore: open + authenticate the checkpoint (tampering fails
// closed with crypt.ErrAuthFailed), replay redo, re-hash the bucket files
// and compare against the sealed roots (tampering fails closed with
// pathoram.ErrRootMismatch), and rebuild the backend.

const (
	checkpointFile = "checkpoint.bin"
	checkpointTemp = "checkpoint.tmp"
	// initMarker exists while a shard directory is being freshly
	// initialized: present on boot, the half-written bucket files are
	// discarded and initialization restarts. Bucket files WITHOUT a
	// checkpoint and without the marker mean an operator pointed the
	// daemon at a directory whose checkpoint was deleted — refuse, fail
	// closed, rather than silently reinitializing over data.
	initMarker = "INITIALIZING"
)

// ErrNoCheckpoint is returned when a shard directory holds bucket files but
// no checkpoint and no initialization marker — recovery is impossible and
// reinitialization would destroy data, so boot refuses.
var ErrNoCheckpoint = errors.New("server: bucket files present without a checkpoint; refusing to reinitialize")

// persistedState is the gob payload sealed into a checkpoint.
type persistedState struct {
	// Backend guards against restarting a data dir under a different
	// backend kind (the trusted state would not fit the new stack).
	Backend string
	// Restarts counts recoveries; it salts the recovered RNG stream so a
	// restarted shard does not replay the leaf sequence the pre-crash
	// instance already consumed after the checkpoint.
	Restarts uint64
	// State is the captured trusted state, including per-level Merkle
	// roots.
	State *pathoram.ShardState
	// Redo carries every bucket dirty in cache at capture time: ciphertext
	// writes the bucket file had not absorbed yet. Replayed idempotently
	// on recovery before root verification.
	Redo []redoLevel
}

type redoLevel struct {
	Level   int
	Buckets []redoBucket
}

type redoBucket struct {
	Idx        uint64
	Ciphertext []byte
}

// persister owns one file-backed shard's durable state: the per-level
// FileStorages and the checkpoint protocol. After construction it is owned
// by the shard's serving goroutine (the sealing Cipher is not
// concurrency-safe, mirroring the per-shard ORAM ciphers).
type persister struct {
	dir       string
	shard     int
	backend   string
	cipher    *crypt.Cipher
	stores    []*pathoram.FileStorage // by level
	restarts  uint64
	ckpts     uint64
	recovered bool
	sync      pathoram.SyncPolicy
}

// shardDir returns the per-shard subdirectory of the data dir.
func shardDir(dataDir string, shard int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%04d", shard))
}

// levelPath returns the bucket file path for one level of a shard's stack.
func levelPath(dir string, level int) string {
	return filepath.Join(dir, fmt.Sprintf("level-%d.oram", level))
}

// levelGeometries returns the tree shapes of one shard's stack for the
// configured backend: a single geometry for flat, data-then-posmap
// geometries for recursive and batched.
func levelGeometries(cfg Config) []pathoram.Geometry {
	switch cfg.Backend {
	case BackendRecursive:
		return recursiveShardConfig(cfg).Geometries()
	case BackendBatched:
		return batchedShardConfig(cfg).RecursiveConfig.Geometries()
	default:
		return []pathoram.Geometry{pathoram.ShardGeometry(cfg.Blocks, cfg.Shards, cfg.Z, cfg.BlockBytes)}
	}
}

// captureState snapshots a backend's trusted state (all concrete backends
// support capture; the interface stays narrow because only the persister
// needs this).
func captureState(b Backend) (*pathoram.ShardState, error) {
	switch o := b.(type) {
	case *pathoram.ORAM:
		return o.CaptureState()
	case *pathoram.Recursive:
		return o.CaptureState()
	case *pathoram.Batched:
		return o.CaptureState()
	}
	return nil, fmt.Errorf("server: backend %T cannot capture state", b)
}

// newFileShard builds (or recovers) one file-backed shard: the backend plus
// the persister that will checkpoint it. Boot outcomes:
//
//   - checkpoint present           -> recover (fail closed on tampering);
//   - no checkpoint, marker or
//     empty/absent directory       -> fresh initialization;
//   - bucket files, no checkpoint,
//     no marker                    -> ErrNoCheckpoint (fail closed).
func newFileShard(cfg Config, shard int) (Backend, *persister, error) {
	dir := shardDir(cfg.DataDir, shard)
	sync, err := pathoram.ParseSyncPolicy(cfg.Sync)
	if err != nil {
		return nil, nil, err
	}
	p := &persister{
		dir:     dir,
		shard:   shard,
		backend: cfg.Backend,
		cipher:  crypt.NewCipher(cfg.Key, nil),
		sync:    sync,
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err == nil {
		b, err := p.recover(cfg, sync)
		if err != nil {
			p.closeStores()
			return nil, nil, fmt.Errorf("server: shard %d: %w", shard, err)
		}
		return b, p, nil
	}
	if _, err := os.Stat(filepath.Join(dir, initMarker)); err != nil {
		// No checkpoint and no marker: only an empty (or absent) directory
		// may be initialized.
		if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 {
			return nil, nil, fmt.Errorf("server: shard %d: %w (%s)", shard, ErrNoCheckpoint, dir)
		}
	}
	b, err := p.initialize(cfg, sync)
	if err != nil {
		p.closeStores()
		return nil, nil, fmt.Errorf("server: shard %d: %w", shard, err)
	}
	return b, p, nil
}

// storeConfig builds the FileStorage config for one level.
func storeConfig(cfg Config, dir string, level int, sync pathoram.SyncPolicy) pathoram.FileStorageConfig {
	return pathoram.FileStorageConfig{
		Path:         levelPath(dir, level),
		CacheBuckets: cfg.CacheBuckets,
		Sync:         sync,
	}
}

// initialize creates the shard directory under the crash-safe marker
// protocol, builds a fresh backend on new bucket files, and writes the
// initial checkpoint before removing the marker.
func (p *persister) initialize(cfg Config, sync pathoram.SyncPolicy) (Backend, error) {
	if err := os.MkdirAll(p.dir, 0o700); err != nil {
		return nil, err
	}
	marker := filepath.Join(p.dir, initMarker)
	if err := os.WriteFile(marker, []byte("initializing\n"), 0o600); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(p.dir, checkpointTemp))
	factory := func(level int, g pathoram.Geometry) (pathoram.BucketStore, error) {
		fs, err := pathoram.CreateFileStorage(g, storeConfig(cfg, p.dir, level, sync))
		if err != nil {
			return nil, err
		}
		p.stores = append(p.stores, fs)
		return fs, nil
	}
	rng := shardRNG(cfg.Seed, p.shard, 0)
	var b Backend
	var err error
	switch cfg.Backend {
	case BackendRecursive:
		b, err = pathoram.NewRecursiveOn(recursiveShardConfig(cfg), cfg.Key, rng, factory)
	case BackendBatched:
		b, err = pathoram.NewBatchedOn(batchedShardConfig(cfg), cfg.Key, rng, factory)
	default:
		g := levelGeometries(cfg)[0]
		store, ferr := factory(0, g)
		if ferr != nil {
			return nil, ferr
		}
		b, err = pathoram.NewORAMOn(g, cfg.Key, rng, store)
	}
	if err != nil {
		return nil, err
	}
	// The Merkle tree is mandatory for file-backed shards: its roots are
	// what every checkpoint binds the untrusted files to.
	b.EnableIntegrity()
	// Settle the freshly initialized tree into the files, then cut the
	// first checkpoint (empty redo) and arm dirty-page pinning.
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return nil, err
		}
	}
	if err := p.checkpoint(b); err != nil {
		return nil, err
	}
	if err := os.Remove(marker); err != nil {
		return nil, err
	}
	p.armRetention(cfg)
	return b, nil
}

// recover rebuilds the shard from its checkpoint: authenticate and unseal,
// replay redo into the bucket files, re-verify against the sealed Merkle
// roots, restore trusted state.
func (p *persister) recover(cfg Config, sync pathoram.SyncPolicy) (Backend, error) {
	blob, err := os.ReadFile(filepath.Join(p.dir, checkpointFile))
	if err != nil {
		return nil, err
	}
	plain, err := crypt.OpenSealed(p.cipher, blob)
	if err != nil {
		return nil, fmt.Errorf("checkpoint failed authentication (tampered, truncated or wrong key): %w", err)
	}
	var ps persistedState
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&ps); err != nil {
		return nil, fmt.Errorf("decoding checkpoint: %w", err)
	}
	if ps.Backend != cfg.Backend {
		return nil, fmt.Errorf("checkpoint was written by backend %q, daemon configured for %q", ps.Backend, cfg.Backend)
	}
	geoms := levelGeometries(cfg)
	p.stores = make([]*pathoram.FileStorage, len(geoms))
	for i, g := range geoms {
		fs, err := pathoram.OpenFileStorage(g, storeConfig(cfg, p.dir, i, sync))
		if err != nil {
			return nil, err
		}
		p.stores[i] = fs
	}
	// Redo replay: writes the checkpoint captured that may not have
	// reached the files. Idempotent, so a torn post-checkpoint flush (or a
	// replayed replay after a crash during recovery) converges to the same
	// bytes the sealed roots certify.
	for _, rl := range ps.Redo {
		if rl.Level < 0 || rl.Level >= len(p.stores) {
			return nil, fmt.Errorf("checkpoint redo names level %d of %d", rl.Level, len(p.stores))
		}
		for _, rb := range rl.Buckets {
			p.stores[rl.Level].WriteBucket(rb.Idx, rb.Ciphertext)
		}
	}
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return nil, err
		}
	}
	p.restarts = ps.Restarts + 1
	factory := func(level int, g pathoram.Geometry) (pathoram.BucketStore, error) {
		return p.stores[level], nil
	}
	rng := shardRNG(cfg.Seed, p.shard, p.restarts)
	var b Backend
	switch cfg.Backend {
	case BackendRecursive:
		b, err = pathoram.RecoverRecursive(recursiveShardConfig(cfg), cfg.Key, rng, factory, ps.State)
	case BackendBatched:
		b, err = pathoram.RecoverBatched(batchedShardConfig(cfg), cfg.Key, rng, factory, ps.State)
	default:
		b, err = pathoram.RecoverORAM(geoms[0], cfg.Key, rng, factory, ps.State)
	}
	if err != nil {
		return nil, err
	}
	// A stale marker can survive a crash between checkpoint rename and
	// marker removal during initialization; the checkpoint won.
	os.Remove(filepath.Join(p.dir, initMarker))
	p.recovered = true
	p.armRetention(cfg)
	return b, nil
}

// armRetention pins dirty pages between checkpoints when a checkpoint
// cadence is configured. Without one (CheckpointEvery == 0) the cache may
// spill dirty pages to the files mid-run; a crash then fails closed at next
// boot (root mismatch) and only a clean shutdown is recoverable.
func (p *persister) armRetention(cfg Config) {
	if cfg.CheckpointEvery > 0 {
		for _, fs := range p.stores {
			fs.RetainDirty(true)
		}
	}
}

// checkpoint captures the backend's trusted state and the dirty redo set,
// seals the blob, renames it into place, then flushes the dirty pages.
func (p *persister) checkpoint(b Backend) error {
	st, err := captureState(b)
	if err != nil {
		return err
	}
	ps := persistedState{Backend: p.backend, Restarts: p.restarts, State: st}
	for i, fs := range p.stores {
		if fs.DirtyCount() == 0 {
			continue
		}
		rl := redoLevel{Level: i, Buckets: make([]redoBucket, 0, fs.DirtyCount())}
		fs.DirtyBuckets(func(idx uint64, ct []byte) {
			rl.Buckets = append(rl.Buckets, redoBucket{Idx: idx, Ciphertext: append([]byte(nil), ct...)})
		})
		ps.Redo = append(ps.Redo, rl)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ps); err != nil {
		return err
	}
	blob, err := crypt.Seal(p.cipher, buf.Bytes())
	if err != nil {
		return err
	}
	tmp := filepath.Join(p.dir, checkpointTemp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if p.sync != pathoram.SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, checkpointFile)); err != nil {
		return err
	}
	if p.sync != pathoram.SyncNone {
		if d, err := os.Open(p.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	// The checkpoint is durable; now the buffered bucket writes may reach
	// the untrusted files (a torn flush is repaired by the redo above).
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return err
		}
	}
	p.ckpts++
	return nil
}

// shutdown writes the final checkpoint and releases the file handles; the
// resulting directory recovers with zero loss.
func (p *persister) shutdown(b Backend) error {
	err := p.checkpoint(b)
	p.closeStores()
	return err
}

func (p *persister) closeStores() {
	for _, fs := range p.stores {
		if fs != nil {
			fs.Close()
		}
	}
}

// storageStats sums the per-level store counters.
func (p *persister) storageStats() pathoram.StorageStats {
	var sum pathoram.StorageStats
	for _, fs := range p.stores {
		s := fs.Stats()
		sum.CacheHits += s.CacheHits
		sum.CacheMisses += s.CacheMisses
		sum.FileReads += s.FileReads
		sum.FileWrites += s.FileWrites
	}
	return sum
}

// shardRNG derives a shard's RNG stream: the same splitmix64 stream the
// shard-set constructors use, salted by the restart count so a recovered
// shard draws fresh leaves instead of replaying the sequence the pre-crash
// instance already consumed after its last checkpoint (the RNG itself is
// deliberately not checkpointed; a production deployment would use a
// hardware RNG with no replayable state at all).
func shardRNG(seed int64, shard int, restarts uint64) *mrand.Rand {
	s := pathoram.ShardSeed(seed, shard)
	if restarts > 0 {
		s = pathoram.ShardSeed(s, int(restarts))
	}
	return mrand.New(mrand.NewSource(s))
}
