package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"time"

	"tcoram/internal/crypt"
	"tcoram/internal/pathoram"
)

// This file implements the durable storage tier's trust split. A file-backed
// shard persists two different kinds of state:
//
//   - the bucket files (level-N.oram), which are UNTRUSTED exactly like the
//     DRAM they replace: ciphertexts an offline adversary may read and
//     rewrite at will;
//   - a sealed checkpoint CHAIN of the TRUSTED controller state — position
//     maps, stash contents, tombstones, counters — plus the Merkle roots
//     binding it to the bucket files, each element encrypted and MAC'd
//     under the session key (crypt.Seal).
//
// The chain is base.bin (a full ShardState snapshot, persistedState) plus
// zero or more delta-NNNNNN.bin files (incremental pathoram.ShardDelta
// captures, persistedDelta) in strictly increasing sequence order. Every
// delta names its position in the chain (Seq) and carries the SHA-256 of
// its predecessor's sealed bytes (Prev), so a chain an adversary splices,
// reorders or punches a hole in fails closed at recovery: a tampered
// element fails authentication (crypt.ErrAuthFailed), a missing element is
// a sequence gap (ErrChainGap), a reordered or substituted element breaks
// the predecessor hash (ErrChainOrder). In "full" checkpoint mode (the
// default) every checkpoint rewrites base.bin and the chain has one
// element, exactly PR 8's protocol under a new file name; in "delta" mode a
// checkpoint appends an O(dirty) delta, and a compactor folds the chain
// back into a fresh base once the accumulated delta bytes pass
// Config.DeltaCompactAfter (so recovery replay and chain storage stay
// bounded).
//
// Crash consistency uses redo-in-checkpoint: between checkpoints every dirty
// bucket page is pinned in the cache (FileStorage.RetainDirty), so the
// bucket files never change behind the chain's back. A checkpoint then
// (1) captures trusted state (full or delta) and the dirty pages as redo
// records, (2) seals and atomically renames the blob into place, (3)
// flushes the dirty pages. A crash at any point leaves a complete chain
// plus bucket files that the chain's redo records — replayed in chain
// order, idempotently — converge to exactly the state the newest element's
// Merkle roots certify. Recovery therefore: authenticate and decode the
// base, fold each delta in order (verifying Seq and Prev), replay all redo,
// re-hash the bucket files against the final roots (tampering fails closed
// with pathoram.ErrRootMismatch), and rebuild the backend.

const (
	baseFile = "base.bin"
	baseTemp = "base.tmp"
	// legacyCheckpointFile is PR 8's single-checkpoint name; a data dir
	// written before the chain protocol is adopted by renaming it to
	// base.bin at boot (its gob payload decodes as a Seq-0 base).
	legacyCheckpointFile = "checkpoint.bin"
	// initMarker exists while a shard directory is being freshly
	// initialized: present on boot, the half-written bucket files are
	// discarded and initialization restarts. Bucket files WITHOUT a
	// checkpoint and without the marker mean an operator pointed the
	// daemon at a directory whose checkpoint was deleted — refuse, fail
	// closed, rather than silently reinitializing over data.
	initMarker = "INITIALIZING"
)

// deltaName and deltaTempName are the chain-element file names for seq;
// fixed-width so lexicographic directory order is chain order.
func deltaName(seq uint64) string     { return fmt.Sprintf("delta-%06d.bin", seq) }
func deltaTempName(seq uint64) string { return fmt.Sprintf("delta-%06d.tmp", seq) }

// parseDeltaName extracts the sequence number from a delta file name. The
// digit run is parsed without a width cap so chains whose sequence outgrows
// the 6-digit minimum width still recover.
func parseDeltaName(name string) (uint64, bool) {
	digits, ok := strings.CutPrefix(name, "delta-")
	if !ok {
		return 0, false
	}
	digits, ok = strings.CutSuffix(digits, ".bin")
	if !ok || digits == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ErrNoCheckpoint is returned when a shard directory holds bucket files but
// no checkpoint and no initialization marker — recovery is impossible and
// reinitialization would destroy data, so boot refuses.
var ErrNoCheckpoint = errors.New("server: bucket files present without a checkpoint; refusing to reinitialize")

// ErrChainGap is returned when the delta chain has a sequence hole — an
// element was deleted (or never made it to disk while its successors did),
// so the trusted state cannot be reconstructed. Fail closed.
var ErrChainGap = errors.New("server: checkpoint delta chain has a gap; refusing to recover")

// ErrChainOrder is returned when a delta's predecessor hash (or its sealed
// sequence number) does not match its position in the chain — the chain was
// reordered or spliced from elements of different histories. Fail closed.
var ErrChainOrder = errors.New("server: checkpoint delta chain predecessor mismatch (reordered or spliced chain); refusing to recover")

// persistedState is the gob payload sealed into base.bin.
type persistedState struct {
	// Backend guards against restarting a data dir under a different
	// backend kind (the trusted state would not fit the new stack).
	Backend string
	// Restarts counts recoveries; it salts the recovered RNG stream so a
	// restarted shard does not replay the leaf sequence the pre-crash
	// instance already consumed after the checkpoint.
	Restarts uint64
	// Seq is the chain position this base folds up to: deltas with
	// sequence <= Seq predate it and are swept as stale at recovery (a
	// crash between a compaction's base rename and its delta cleanup
	// leaves exactly such files), deltas from Seq+1 upward extend it.
	Seq uint64
	// State is the captured trusted state, including per-level Merkle
	// roots.
	State *pathoram.ShardState
	// Redo carries every bucket dirty in cache at capture time: ciphertext
	// writes the bucket file had not absorbed yet. Replayed idempotently
	// on recovery before root verification.
	Redo []redoLevel
}

// persistedDelta is the gob payload sealed into one delta-NNNNNN.bin chain
// element.
type persistedDelta struct {
	// Backend mirrors persistedState.Backend.
	Backend string
	// Restarts is the writer's restart count; recovery takes the value
	// from the newest chain element (the chain survives restarts without
	// a base rewrite, so the base's count can be stale).
	Restarts uint64
	// Seq is this element's chain position. It must equal the sequence in
	// the file name — a mismatch means the file was renamed into a slot it
	// was not sealed for (ErrChainOrder).
	Seq uint64
	// Prev is the SHA-256 of the predecessor chain element's sealed bytes
	// (base.bin for the first delta). Each element is individually
	// authenticated by crypt.Seal; Prev authenticates their ORDER.
	Prev [sha256.Size]byte
	// Delta is the O(dirty) trusted-state change set since the previous
	// chain element.
	Delta *pathoram.ShardDelta
	// Redo mirrors persistedState.Redo: buckets dirty at this capture.
	Redo []redoLevel
}

type redoLevel struct {
	Level   int
	Buckets []redoBucket
}

type redoBucket struct {
	Idx        uint64
	Ciphertext []byte
}

// persister owns one file-backed shard's durable state: the per-level
// FileStorages and the checkpoint protocol. After construction it is owned
// by the shard's serving goroutine (the sealing Cipher is not
// concurrency-safe, mirroring the per-shard ORAM ciphers).
type persister struct {
	dir       string
	shard     int
	backend   string
	cipher    *crypt.Cipher
	stores    []*pathoram.FileStorage // by level
	restarts  uint64
	ckpts     uint64
	recovered bool
	sync      pathoram.SyncPolicy

	// Chain state. mode selects full (every checkpoint rewrites base.bin)
	// or delta (checkpoints append O(dirty) chain elements); seq/lastHash
	// name the newest chain element and the hash the next delta must link
	// to; chainBytes accumulates sealed delta sizes since the last base so
	// the compactor can fold the chain past compactAfter bytes; haveBase
	// gates delta writes until an initial base exists.
	mode         string
	compactAfter int64
	seq          uint64
	lastHash     [sha256.Size]byte
	chainBytes   int64
	haveBase     bool

	// Checkpoint cost totals (ShardStats checkpoint_bytes/checkpoint_ns):
	// sealed bytes written and wall time spent across all checkpoints.
	ckptBytes uint64
	ckptNS    uint64
}

// shardDir returns the per-shard subdirectory of the data dir.
func shardDir(dataDir string, shard int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%04d", shard))
}

// levelPath returns the bucket file path for one level of a shard's stack.
func levelPath(dir string, level int) string {
	return filepath.Join(dir, fmt.Sprintf("level-%d.oram", level))
}

// levelGeometries returns the tree shapes of one shard's stack for the
// configured backend: a single geometry for flat, data-then-posmap
// geometries for recursive and batched.
func levelGeometries(cfg Config) []pathoram.Geometry {
	switch cfg.Backend {
	case BackendRecursive:
		return recursiveShardConfig(cfg).Geometries()
	case BackendBatched:
		return batchedShardConfig(cfg).RecursiveConfig.Geometries()
	default:
		return []pathoram.Geometry{pathoram.ShardGeometry(cfg.Blocks, cfg.Shards, cfg.Z, cfg.BlockBytes)}
	}
}

// captureState snapshots a backend's trusted state (all concrete backends
// support capture; the interface stays narrow because only the persister
// needs this).
func captureState(b Backend) (*pathoram.ShardState, error) {
	switch o := b.(type) {
	case *pathoram.ORAM:
		return o.CaptureState()
	case *pathoram.Recursive:
		return o.CaptureState()
	case *pathoram.Batched:
		return o.CaptureState()
	}
	return nil, fmt.Errorf("server: backend %T cannot capture state", b)
}

// captureDelta drains a backend's change journals (delta checkpoint mode).
func captureDelta(b Backend) (*pathoram.ShardDelta, error) {
	switch o := b.(type) {
	case *pathoram.ORAM:
		return o.CaptureDelta()
	case *pathoram.Recursive:
		return o.CaptureDelta()
	case *pathoram.Batched:
		return o.CaptureDelta()
	}
	return nil, fmt.Errorf("server: backend %T cannot capture deltas", b)
}

// trackDirty arms a backend's change journals (delta checkpoint mode).
func trackDirty(b Backend) error {
	switch o := b.(type) {
	case *pathoram.ORAM:
		o.TrackDirty()
	case *pathoram.Recursive:
		o.TrackDirty()
	case *pathoram.Batched:
		o.TrackDirty()
	default:
		return fmt.Errorf("server: backend %T cannot track dirty state", b)
	}
	return nil
}

// newFileShard builds (or recovers) one file-backed shard: the backend plus
// the persister that will checkpoint it. Boot outcomes:
//
//   - checkpoint present           -> recover (fail closed on tampering);
//   - no checkpoint, marker or
//     empty/absent directory       -> fresh initialization;
//   - bucket files, no checkpoint,
//     no marker                    -> ErrNoCheckpoint (fail closed).
func newFileShard(cfg Config, shard int) (Backend, *persister, error) {
	dir := shardDir(cfg.DataDir, shard)
	sync, err := pathoram.ParseSyncPolicy(cfg.Sync)
	if err != nil {
		return nil, nil, err
	}
	p := &persister{
		dir:          dir,
		shard:        shard,
		backend:      cfg.Backend,
		cipher:       crypt.NewCipher(cfg.Key, nil),
		sync:         sync,
		mode:         cfg.CheckpointMode,
		compactAfter: cfg.DeltaCompactAfter,
	}
	// A pre-chain data dir carries its full checkpoint under the old name;
	// adopt it as the chain's base (the gob payload decodes as a Seq-0
	// persistedState, and no deltas exist yet).
	if _, err := os.Stat(filepath.Join(dir, baseFile)); err != nil {
		if _, lerr := os.Stat(filepath.Join(dir, legacyCheckpointFile)); lerr == nil {
			if rerr := os.Rename(filepath.Join(dir, legacyCheckpointFile), filepath.Join(dir, baseFile)); rerr != nil {
				return nil, nil, fmt.Errorf("server: shard %d: adopting legacy checkpoint: %w", shard, rerr)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, baseFile)); err == nil {
		b, err := p.recover(cfg, sync)
		if err != nil {
			p.closeStores()
			return nil, nil, fmt.Errorf("server: shard %d: %w", shard, err)
		}
		return b, p, nil
	}
	if _, err := os.Stat(filepath.Join(dir, initMarker)); err != nil {
		// No checkpoint and no marker: only an empty (or absent) directory
		// may be initialized.
		if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 {
			return nil, nil, fmt.Errorf("server: shard %d: %w (%s)", shard, ErrNoCheckpoint, dir)
		}
	}
	b, err := p.initialize(cfg, sync)
	if err != nil {
		p.closeStores()
		return nil, nil, fmt.Errorf("server: shard %d: %w", shard, err)
	}
	return b, p, nil
}

// storeConfig builds the FileStorage config for one level.
func storeConfig(cfg Config, dir string, level int, sync pathoram.SyncPolicy) pathoram.FileStorageConfig {
	return pathoram.FileStorageConfig{
		Path:         levelPath(dir, level),
		CacheBuckets: cfg.CacheBuckets,
		Sync:         sync,
		MMap:         cfg.MMap,
	}
}

// initialize creates the shard directory under the crash-safe marker
// protocol, builds a fresh backend on new bucket files, and writes the
// initial checkpoint before removing the marker.
func (p *persister) initialize(cfg Config, sync pathoram.SyncPolicy) (Backend, error) {
	if err := os.MkdirAll(p.dir, 0o700); err != nil {
		return nil, err
	}
	marker := filepath.Join(p.dir, initMarker)
	if err := os.WriteFile(marker, []byte("initializing\n"), 0o600); err != nil {
		return nil, err
	}
	sweepTemps(p.dir)
	factory := func(level int, g pathoram.Geometry) (pathoram.BucketStore, error) {
		fs, err := pathoram.CreateFileStorage(g, storeConfig(cfg, p.dir, level, sync))
		if err != nil {
			return nil, err
		}
		p.stores = append(p.stores, fs)
		return fs, nil
	}
	rng := shardRNG(cfg.Seed, p.shard, 0)
	var b Backend
	var err error
	switch cfg.Backend {
	case BackendRecursive:
		b, err = pathoram.NewRecursiveOn(recursiveShardConfig(cfg), cfg.Key, rng, factory)
	case BackendBatched:
		b, err = pathoram.NewBatchedOn(batchedShardConfig(cfg), cfg.Key, rng, factory)
	default:
		g := levelGeometries(cfg)[0]
		store, ferr := factory(0, g)
		if ferr != nil {
			return nil, ferr
		}
		b, err = pathoram.NewORAMOn(g, cfg.Key, rng, store)
	}
	if err != nil {
		return nil, err
	}
	// The Merkle tree is mandatory for file-backed shards: its roots are
	// what every checkpoint binds the untrusted files to.
	b.EnableIntegrity()
	if p.mode == CheckpointDelta {
		if err := trackDirty(b); err != nil {
			return nil, err
		}
	}
	// Settle the freshly initialized tree into the files, then cut the
	// first checkpoint (always a base — the chain needs an anchor) and arm
	// dirty-page pinning.
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return nil, err
		}
	}
	if err := p.checkpoint(b); err != nil {
		return nil, err
	}
	if err := os.Remove(marker); err != nil {
		return nil, err
	}
	p.armRetention(cfg)
	return b, nil
}

// recover rebuilds the shard from its checkpoint chain: authenticate and
// unseal the base, fold every delta in sequence order (each element's seal
// authenticates its contents, its Prev hash authenticates its position),
// replay the accumulated redo into the bucket files, re-verify against the
// newest sealed Merkle roots, restore trusted state.
func (p *persister) recover(cfg Config, sync pathoram.SyncPolicy) (Backend, error) {
	// A crash mid-write leaves *.tmp orphans (base.tmp or delta-NNNNNN.tmp);
	// none is part of the chain, so sweep them before reading it.
	sweepTemps(p.dir)
	blob, err := os.ReadFile(filepath.Join(p.dir, baseFile))
	if err != nil {
		return nil, err
	}
	plain, err := crypt.OpenSealed(p.cipher, blob)
	if err != nil {
		return nil, fmt.Errorf("checkpoint base failed authentication (tampered, truncated or wrong key): %w", err)
	}
	var ps persistedState
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&ps); err != nil {
		return nil, fmt.Errorf("decoding checkpoint base: %w", err)
	}
	if ps.Backend != cfg.Backend {
		return nil, fmt.Errorf("checkpoint was written by backend %q, daemon configured for %q", ps.Backend, cfg.Backend)
	}
	restarts := ps.Restarts
	p.seq = ps.Seq
	p.lastHash = sha256.Sum256(blob)
	p.chainBytes = 0
	if err := p.foldDeltas(cfg, &ps, &restarts); err != nil {
		return nil, err
	}
	geoms := levelGeometries(cfg)
	p.stores = make([]*pathoram.FileStorage, len(geoms))
	for i, g := range geoms {
		fs, err := pathoram.OpenFileStorage(g, storeConfig(cfg, p.dir, i, sync))
		if err != nil {
			return nil, err
		}
		p.stores[i] = fs
	}
	// Redo replay: writes the checkpoint captured that may not have
	// reached the files. Idempotent, so a torn post-checkpoint flush (or a
	// replayed replay after a crash during recovery) converges to the same
	// bytes the sealed roots certify.
	for _, rl := range ps.Redo {
		if rl.Level < 0 || rl.Level >= len(p.stores) {
			return nil, fmt.Errorf("checkpoint redo names level %d of %d", rl.Level, len(p.stores))
		}
		for _, rb := range rl.Buckets {
			p.stores[rl.Level].WriteBucket(rb.Idx, rb.Ciphertext)
		}
	}
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return nil, err
		}
	}
	p.restarts = restarts + 1
	factory := func(level int, g pathoram.Geometry) (pathoram.BucketStore, error) {
		return p.stores[level], nil
	}
	rng := shardRNG(cfg.Seed, p.shard, p.restarts)
	var b Backend
	switch cfg.Backend {
	case BackendRecursive:
		b, err = pathoram.RecoverRecursive(recursiveShardConfig(cfg), cfg.Key, rng, factory, ps.State)
	case BackendBatched:
		b, err = pathoram.RecoverBatched(batchedShardConfig(cfg), cfg.Key, rng, factory, ps.State)
	default:
		b, err = pathoram.RecoverORAM(geoms[0], cfg.Key, rng, factory, ps.State)
	}
	if err != nil {
		return nil, err
	}
	if p.mode == CheckpointDelta {
		if err := trackDirty(b); err != nil {
			return nil, err
		}
	}
	// A stale marker can survive a crash between checkpoint rename and
	// marker removal during initialization; the checkpoint won.
	os.Remove(filepath.Join(p.dir, initMarker))
	p.recovered = true
	p.haveBase = true
	p.armRetention(cfg)
	return b, nil
}

// foldDeltas extends the decoded base with every live delta chain element
// in sequence order: stale deltas (seq <= base.Seq — leftovers of a crash
// between compaction's base rename and its delta cleanup) are swept, the
// live ones must form a contiguous run from base.Seq+1 whose elements
// authenticate individually (seal) and positionally (Seq + Prev hash).
// Their trusted-state deltas fold into ps.State and their redo records
// append to ps.Redo in chain order (replay order matters: a later element's
// redo must overwrite an earlier one's for buckets both touched). restarts
// tracks the newest chain element's restart count.
func (p *persister) foldDeltas(cfg Config, ps *persistedState, restarts *uint64) error {
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		return err
	}
	var seqs []uint64
	for _, e := range ents {
		seq, ok := parseDeltaName(e.Name())
		if !ok {
			continue
		}
		if seq <= ps.Seq {
			os.Remove(filepath.Join(p.dir, e.Name()))
			continue
		}
		seqs = append(seqs, seq)
	}
	slices.Sort(seqs)
	for i, seq := range seqs {
		if want := ps.Seq + 1 + uint64(i); seq != want {
			return fmt.Errorf("%w: missing %s, found %s", ErrChainGap, deltaName(want), deltaName(seq))
		}
		blob, err := os.ReadFile(filepath.Join(p.dir, deltaName(seq)))
		if err != nil {
			return err
		}
		plain, err := crypt.OpenSealed(p.cipher, blob)
		if err != nil {
			return fmt.Errorf("%s failed authentication (tampered, truncated or wrong key): %w", deltaName(seq), err)
		}
		var pd persistedDelta
		if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&pd); err != nil {
			return fmt.Errorf("decoding %s: %w", deltaName(seq), err)
		}
		if pd.Backend != cfg.Backend {
			return fmt.Errorf("%s was written by backend %q, daemon configured for %q", deltaName(seq), pd.Backend, cfg.Backend)
		}
		if pd.Seq != seq {
			return fmt.Errorf("%w: %s is sealed as sequence %d", ErrChainOrder, deltaName(seq), pd.Seq)
		}
		if pd.Prev != p.lastHash {
			return fmt.Errorf("%w: %s does not extend its predecessor", ErrChainOrder, deltaName(seq))
		}
		if err := pathoram.ApplyDelta(ps.State, pd.Delta); err != nil {
			return fmt.Errorf("applying %s: %w", deltaName(seq), err)
		}
		ps.Redo = append(ps.Redo, pd.Redo...)
		*restarts = pd.Restarts
		p.seq = seq
		p.lastHash = sha256.Sum256(blob)
		p.chainBytes += int64(len(blob))
	}
	return nil
}

// sweepTemps removes every *.tmp orphan a crash mid-write can leave in a
// shard directory (base.tmp, delta-NNNNNN.tmp, or PR 8's checkpoint.tmp).
func sweepTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// armRetention pins dirty pages between checkpoints when a checkpoint
// cadence is configured. Without one (CheckpointEvery == 0) the cache may
// spill dirty pages to the files mid-run; a crash then fails closed at next
// boot (root mismatch) and only a clean shutdown is recoverable.
func (p *persister) armRetention(cfg Config) {
	if cfg.CheckpointEvery > 0 {
		for _, fs := range p.stores {
			fs.RetainDirty(true)
		}
	}
}

// checkpoint makes the backend's current trusted state durable: a base
// rewrite in full mode, an O(dirty) chain append in delta mode — except
// when the chain has no anchor yet (first checkpoint) or has outgrown
// compactAfter bytes, in which case the compactor folds it into a fresh
// base. Both paths end with the store flush that unpins the dirty pages.
func (p *persister) checkpoint(b Backend) error {
	start := time.Now()
	var err error
	if p.mode == CheckpointDelta && p.haveBase && !p.needCompact() {
		err = p.writeDelta(b)
	} else {
		err = p.writeBase(b)
	}
	if err != nil {
		return err
	}
	p.ckpts++
	p.ckptNS += uint64(time.Since(start))
	return nil
}

// needCompact reports whether the delta chain passed the compaction
// threshold (never in full mode, where chainBytes stays zero).
func (p *persister) needCompact() bool {
	return p.compactAfter > 0 && p.chainBytes >= p.compactAfter
}

// captureRedo snapshots every dirty bucket page as redo records.
func (p *persister) captureRedo() []redoLevel {
	var redo []redoLevel
	for i, fs := range p.stores {
		if fs.DirtyCount() == 0 {
			continue
		}
		rl := redoLevel{Level: i, Buckets: make([]redoBucket, 0, fs.DirtyCount())}
		fs.DirtyBuckets(func(idx uint64, ct []byte) {
			rl.Buckets = append(rl.Buckets, redoBucket{Idx: idx, Ciphertext: append([]byte(nil), ct...)})
		})
		redo = append(redo, rl)
	}
	return redo
}

// seal gob-encodes and seals one chain element payload.
func (p *persister) seal(payload any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, err
	}
	return crypt.Seal(p.cipher, buf.Bytes())
}

// writeBlob writes a sealed chain element under the tmp+rename protocol,
// fsyncing file and directory per the sync policy.
func (p *persister) writeBlob(tmpName, finalName string, blob []byte) error {
	tmp := filepath.Join(p.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if p.sync != pathoram.SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, finalName)); err != nil {
		return err
	}
	if p.sync != pathoram.SyncNone {
		if d, err := os.Open(p.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// flushStores lets the buffered bucket writes reach the untrusted files
// once the covering chain element is durable (a torn flush is repaired by
// that element's redo).
func (p *persister) flushStores() error {
	for _, fs := range p.stores {
		if err := fs.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// writeBase captures the full trusted state into a fresh base.bin, resets
// the chain to it, and sweeps the deltas it folded (a crash between rename
// and sweep leaves stale deltas that recovery removes by Seq).
func (p *persister) writeBase(b Backend) error {
	st, err := captureState(b)
	if err != nil {
		return err
	}
	ps := persistedState{Backend: p.backend, Restarts: p.restarts, Seq: p.seq, State: st, Redo: p.captureRedo()}
	blob, err := p.seal(&ps)
	if err != nil {
		return err
	}
	if err := p.writeBlob(baseTemp, baseFile, blob); err != nil {
		return err
	}
	for seq := ps.Seq; seq > 0; seq-- {
		if os.Remove(filepath.Join(p.dir, deltaName(seq))) != nil {
			break // deltas are contiguous; the first miss ends the sweep
		}
	}
	if err := p.flushStores(); err != nil {
		return err
	}
	p.lastHash = sha256.Sum256(blob)
	p.chainBytes = 0
	p.haveBase = true
	p.ckptBytes += uint64(len(blob))
	return nil
}

// writeDelta drains the backend's change journals into the next chain
// element: O(dirty) trusted-state entries plus the dirty-page redo set,
// sealed and linked to the predecessor by hash.
func (p *persister) writeDelta(b Backend) error {
	d, err := captureDelta(b)
	if err != nil {
		return err
	}
	seq := p.seq + 1
	pd := persistedDelta{Backend: p.backend, Restarts: p.restarts, Seq: seq, Prev: p.lastHash, Delta: d, Redo: p.captureRedo()}
	blob, err := p.seal(&pd)
	if err != nil {
		return err
	}
	if err := p.writeBlob(deltaTempName(seq), deltaName(seq), blob); err != nil {
		return err
	}
	if err := p.flushStores(); err != nil {
		return err
	}
	p.seq = seq
	p.lastHash = sha256.Sum256(blob)
	p.chainBytes += int64(len(blob))
	p.ckptBytes += uint64(len(blob))
	return nil
}

// shutdown writes the final checkpoint and releases the file handles; the
// resulting directory recovers with zero loss.
func (p *persister) shutdown(b Backend) error {
	err := p.checkpoint(b)
	p.closeStores()
	return err
}

func (p *persister) closeStores() {
	for _, fs := range p.stores {
		if fs != nil {
			fs.Close()
		}
	}
}

// storageStats sums the per-level store counters.
func (p *persister) storageStats() pathoram.StorageStats {
	var sum pathoram.StorageStats
	for _, fs := range p.stores {
		s := fs.Stats()
		sum.CacheHits += s.CacheHits
		sum.CacheMisses += s.CacheMisses
		sum.FileReads += s.FileReads
		sum.FileWrites += s.FileWrites
		sum.MMapReads += s.MMapReads
	}
	return sum
}

// shardRNG derives a shard's RNG stream: the same splitmix64 stream the
// shard-set constructors use, salted by the restart count so a recovered
// shard draws fresh leaves instead of replaying the sequence the pre-crash
// instance already consumed after its last checkpoint (the RNG itself is
// deliberately not checkpointed; a production deployment would use a
// hardware RNG with no replayable state at all).
func shardRNG(seed int64, shard int, restarts uint64) *mrand.Rand {
	s := pathoram.ShardSeed(seed, shard)
	if restarts > 0 {
		s = pathoram.ShardSeed(s, int(restarts))
	}
	return mrand.New(mrand.NewSource(s))
}
