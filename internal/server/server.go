// Package server is the concurrent, sharded ORAM key-value service: the
// first layer of this codebase that serves real wall-clock traffic instead
// of simulated cycles. It partitions a flat block address space across N
// independent Path ORAM shards (the partitioning idea of Stefanov et al.'s
// "Towards Practical Oblivious RAM", applied for parallelism), gives each
// shard its own goroutine, request queue and rate enforcer, and exposes a
// batching Read/Write/Stats front end.
//
// Security model, inherited from the paper's memory controller:
//
//   - Each shard issues ORAM accesses on a fixed slot grid driven by a
//     core.Enforcer through a wall-clock adapter. When no request is queued
//     at a slot, the shard performs an indistinguishable dummy access, so
//     per-shard bus traffic is data-independent (up to the enforcer's
//     bounded epoch-boundary leakage when a dynamic schedule is used).
//   - Routing is a deterministic, data-independent function of the block
//     address (addr mod shards), so which shard serves a request reveals
//     nothing beyond the address stream the ORAM already hides.
//   - In-flight requests to the same block coalesce into one access, which
//     reduces queueing without changing the observable slot grid.
//
// The Unpaced mode disables the enforcer (slots fire as fast as requests
// arrive, no dummies) — the base_oram configuration of §9.1.6, kept for
// capacity benchmarking; it leaks timing exactly the way the paper's
// unshielded baseline does.
package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tcoram/internal/core"
	"tcoram/internal/crypt"
	"tcoram/internal/leakage"
	"tcoram/internal/pathoram"
)

// ErrClosed is returned for requests submitted to (or pending in) a store
// that has been closed. It is a coded *Error (CodeStoreClosed) so the
// condition survives the wire as a machine-readable code; compare with
// errors.Is as before.
var ErrClosed error = &Error{Code: CodeStoreClosed, Msg: "server: store closed"}

// Store selector values for Config.Store.
const (
	// StoreMem keeps each shard's bucket tree in RAM (the untrusted-DRAM
	// model of the paper): fastest, nothing survives the process.
	StoreMem = "mem"
	// CheckpointFull rewrites base.bin (the whole sealed trusted state) on
	// every checkpoint — PR 8's protocol, the default.
	CheckpointFull = "full"
	// CheckpointDelta appends an O(dirty) hash-linked delta chain element
	// per checkpoint, compacted into a fresh base past DeltaCompactAfter.
	CheckpointDelta = "delta"

	// StoreFile keeps each shard's bucket tree in fixed-offset files under
	// Config.DataDir, with an LRU page cache, sealed trusted-state
	// checkpoints and fail-closed crash recovery.
	StoreFile = "file"
)

// Config describes a sharded ORAM store.
type Config struct {
	// Shards is the number of independent sub-ORAMs (default 4).
	Shards int
	// Blocks is the total address space in blocks (default 4096).
	Blocks uint64
	// BlockBytes is the payload size of one block (default 64, the paper's
	// cache-line-sized data block).
	BlockBytes int
	// Z is the bucket capacity (default 3, per the paper).
	Z int
	// QueueDepth bounds each shard's pending-request queue; submitters
	// block when it is full (default 256).
	QueueDepth int
	// Backend selects the per-shard ORAM implementation: BackendFlat
	// (default — single-level, flat position map) or BackendRecursive (the
	// paper's §9.1.2 recursion, for address spaces whose flat position map
	// would not fit on-chip).
	Backend string
	// Recursion is the number of position-map ORAM levels for
	// BackendRecursive (default 3, the paper's stack; ignored for flat).
	Recursion int
	// BatchK is the number of blocks a BackendBatched shard may serve per
	// slot via multi-path fetch; every slot reads exactly BatchK data
	// paths, real or dummy (default 4; ignored for other backends). A
	// public parameter of the schedule, like Rates.
	BatchK int
	// EvictEvery is the slot period of the batched backend's deterministic
	// background eviction pass (default 4; ignored for other backends).
	// Public, like BatchK.
	EvictEvery int
	// BatchHighWater forces an early eviction pass when a batched shard's
	// data-level stash reaches this occupancy (0 = the backend's derived
	// default). A safety valve, not part of the steady-state schedule;
	// ShardStats.ForcedEvictions counts how often it fired.
	BatchHighWater int
	// TraceSlots records a pathoram.SlotSig per served slot on every batched
	// shard (Backend must be BackendBatched), retrievable with SlotTraces
	// after Close. A test-and-audit hook: the traces are the adversary's view
	// of each shard's storage schedule, used to verify that observable slot
	// signatures are independent of what the slots carried (dummy vs real vs
	// migration traffic). Off by default — tracing grows memory without
	// bound.
	TraceSlots bool
	// Integrity attaches Merkle verification ([25], §4.3) to every level of
	// every shard's untrusted storage: tampered buckets fail the next path
	// read instead of decrypting to garbage.
	Integrity bool
	// Key encrypts all shards (zero value is acceptable for tests).
	Key crypt.Key
	// Seed drives the deterministic per-shard RNG streams (default 1).
	Seed int64

	// Store selects the untrusted bucket storage: StoreMem (default — the
	// in-RAM ByteStorage the service has always used) or StoreFile (durable
	// per-shard bucket files under DataDir, with crash recovery from sealed
	// checkpoints). The file store implies Integrity: checkpoints bind the
	// untrusted files to Merkle roots, so the tree is always built.
	Store string
	// DataDir is the root directory of the file store; each shard keeps its
	// bucket files and checkpoint in DataDir/shard-NNNN. Required for (and
	// only meaningful with) StoreFile.
	DataDir string
	// CheckpointEvery is the cadence, in served real slots, of sealed
	// trusted-state checkpoints. 1 checkpoints before acknowledging each
	// slot's requests, making every ack durable; larger values trade an
	// at-risk window (covered by cluster replication) for throughput; 0
	// (default) checkpoints only at clean shutdown — after a crash the
	// shard fails closed at next boot instead of silently losing writes.
	CheckpointEvery int
	// CacheBuckets bounds each level's in-RAM bucket page cache for the
	// file store (default 1024 buckets per level).
	CacheBuckets int
	// Sync is the file store's fsync policy: "none" (default — crash
	// consistency against process death, not power loss), "checkpoint"
	// (fsync at checkpoint boundaries) or "always".
	Sync string
	// CheckpointMode selects the checkpoint strategy: CheckpointFull
	// (default) rewrites the whole sealed trusted state every checkpoint;
	// CheckpointDelta appends O(dirty) chain elements (base.bin +
	// delta-NNNNNN.bin, hash-linked) so cadence-1 durability does not
	// rewrite the full position map per slot.
	CheckpointMode string
	// DeltaCompactAfter folds the delta chain into a fresh base once the
	// accumulated sealed delta bytes pass this threshold (delta mode only;
	// default 4 MiB). Bounds recovery replay and chain storage.
	DeltaCompactAfter int64
	// MMap serves clean bucket reads from a read-only mapping of each
	// bucket file instead of copying pages into the cache — the read path
	// for bucket files bigger than the page cache. Writes still buffer in
	// pinned dirty pages (the checkpoint redo invariant). Unix-only.
	MMap bool

	// ClockHz is the wall-clock frequency of the enforcer's cycle domain in
	// cycles per second (default 1_000_000: one cycle per microsecond).
	ClockHz uint64
	// ORAMLatency is OLAT in cycles (default 15 ≈ the software access cost
	// at the default clock).
	ORAMLatency uint64
	// Rates is the allowed rate set R in cycles, ascending. Default
	// {85}: a static 100 µs slot period (rate + OLAT) per shard.
	Rates []uint64
	// InitialRate is the epoch-0 rate (default: last element of Rates).
	InitialRate uint64
	// EpochFirstLen and EpochGrowth enable the paper's dynamic epoch
	// schedule when EpochFirstLen > 0; zero values mean a static rate.
	EpochFirstLen uint64
	EpochGrowth   uint64

	// LeakageBudgetBits is the session's ORAM-timing-channel leakage budget
	// in bits, accounted across all shards (each epoch transition on each
	// shard reveals one lg|R|-bit rate choice). Zero means no budget: the
	// store still reports cumulative leaked bits, it just never flags an
	// overrun. The budget is a monitoring boundary, not an enforcement stop
	// — Stats reports LeakageExceeded and operators decide (the paper's
	// "shut down the chip" policy belongs to them).
	LeakageBudgetBits float64

	// TenantBudgets assigns per-tenant leakage sub-budgets in bits
	// (tenant name → bits). Unlike the store-wide budget, tenant
	// sub-budgets are enforced: once the leakage attributed to a budgeted
	// tenant's activity exceeds its sub-budget, that tenant's new ops are
	// refused with CodeTenantBudget while every other tenant keeps being
	// served. Tenants absent from the map (and the empty tenant) are
	// accounted but never refused. Nil means single-tenant operation.
	TenantBudgets map[string]float64

	// Unpaced disables rate enforcement entirely (no slot grid, no
	// dummies): the unshielded base_oram mode, for capacity measurement.
	Unpaced bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Blocks == 0 {
		c.Blocks = 4096
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	if c.Z == 0 {
		c.Z = 3
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.Backend == "" {
		c.Backend = BackendFlat
	}
	if c.Backend == BackendRecursive && c.Recursion == 0 {
		c.Recursion = 3
	}
	if c.Backend == BackendBatched {
		if c.BatchK == 0 {
			c.BatchK = 4
		}
		if c.EvictEvery == 0 {
			c.EvictEvery = 4
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Store == "" {
		c.Store = StoreMem
	}
	if c.Store == StoreFile {
		// The Merkle roots are what checkpoints bind the untrusted bucket
		// files to; a file-backed shard without them could not detect
		// offline tampering, so the tree is not optional.
		c.Integrity = true
		if c.CacheBuckets == 0 {
			c.CacheBuckets = 1024
		}
		if c.Sync == "" {
			c.Sync = "none"
		}
		if c.CheckpointMode == "" {
			c.CheckpointMode = CheckpointFull
		}
		if c.CheckpointMode == CheckpointDelta && c.DeltaCompactAfter == 0 {
			c.DeltaCompactAfter = 4 << 20
		}
	}
	if c.ClockHz == 0 {
		c.ClockHz = 1_000_000
	}
	if c.ORAMLatency == 0 {
		c.ORAMLatency = 15
	}
	if len(c.Rates) == 0 {
		c.Rates = []uint64{85}
	}
	if c.InitialRate == 0 {
		c.InitialRate = c.Rates[len(c.Rates)-1]
	}
	if c.EpochFirstLen > 0 && c.EpochGrowth == 0 {
		c.EpochGrowth = 4
	}
	return c
}

// maxWireBlockBytes is the largest block payload whose base64 encoding
// (plus JSON framing slack) still fits the protocol's maxLineBytes, so a
// daemon can never be configured into silently dropping every connection
// with ErrTooLong.
const maxWireBlockBytes = (maxLineBytes - 1024) / 4 * 3

// DefaultMaxBatch is the batch_read address limit for backends without a
// native per-slot batch capacity: the batch still saves round trips, it
// just rides one slot per member.
const DefaultMaxBatch = 16

// MaxBatch is the store's public batch_read limit: the batched backend's
// per-slot capacity BatchK (so one client batch rides one slot where
// possible), DefaultMaxBatch otherwise. Like BatchK and Rates it is a
// public parameter of the serving schedule.
func (c Config) MaxBatch() int {
	if c.Backend == BackendBatched && c.BatchK > 0 {
		return c.BatchK
	}
	return DefaultMaxBatch
}

// wireBatchLineBytes is the worst-case encoded length of a batch_read
// response carrying k full blocks: JSON framing slack plus, per member,
// the base64-expanded payload and its result framing.
func wireBatchLineBytes(k, blockBytes int) int {
	member := (blockBytes+2)/3*4 + 64
	return 1024 + k*member
}

// Validate reports whether the configuration is usable, including every
// enforcer-facing field: New fails fast with a "server:" error naming the
// bad field instead of surfacing a core error from deep inside shard
// construction.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("server: Shards must be positive, got %d", c.Shards)
	}
	if c.Blocks == 0 {
		return fmt.Errorf("server: Blocks must be positive")
	}
	if c.BlockBytes < 1 {
		return fmt.Errorf("server: BlockBytes must be positive")
	}
	if c.BlockBytes > maxWireBlockBytes {
		return fmt.Errorf("server: BlockBytes %d exceeds the wire protocol's %d-byte limit", c.BlockBytes, maxWireBlockBytes)
	}
	// The worst-case batch_read response (MaxBatch full blocks, base64)
	// must fit one protocol line, or every full batch would surface as a
	// dropped connection at runtime instead of a config error here.
	if k := c.MaxBatch(); c.BlockBytes > 0 && wireBatchLineBytes(k, c.BlockBytes) > maxLineBytes {
		return fmt.Errorf("server: a %d-address batch of %d-byte blocks encodes to %d bytes, above the protocol's %d-byte line limit — lower BatchK or BlockBytes",
			k, c.BlockBytes, wireBatchLineBytes(k, c.BlockBytes), maxLineBytes)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("server: QueueDepth must not be negative, got %d", c.QueueDepth)
	}
	switch c.Backend {
	case "", BackendFlat:
	case BackendRecursive:
		if c.Recursion < 0 || c.Recursion > 8 {
			return fmt.Errorf("server: Recursion must be in [0,8], got %d", c.Recursion)
		}
		if err := recursiveShardConfig(c).Validate(); err != nil {
			return fmt.Errorf("server: Backend %q: %w", c.Backend, err)
		}
	case BackendBatched:
		if c.Recursion < 0 || c.Recursion > 8 {
			return fmt.Errorf("server: Recursion must be in [0,8], got %d", c.Recursion)
		}
		if c.BatchK < 1 || c.BatchK > 64 {
			return fmt.Errorf("server: BatchK must be in [1,64], got %d", c.BatchK)
		}
		if c.EvictEvery < 1 || c.EvictEvery > 4096 {
			return fmt.Errorf("server: EvictEvery must be in [1,4096], got %d", c.EvictEvery)
		}
		if c.BatchHighWater < 0 {
			return fmt.Errorf("server: BatchHighWater must not be negative, got %d", c.BatchHighWater)
		}
		if err := batchedShardConfig(c).Validate(); err != nil {
			return fmt.Errorf("server: Backend %q: %w", c.Backend, err)
		}
	default:
		return fmt.Errorf("server: unknown Backend %q (want %q, %q or %q)", c.Backend, BackendFlat, BackendRecursive, BackendBatched)
	}
	if c.TraceSlots && c.Backend != BackendBatched {
		return fmt.Errorf("server: TraceSlots requires Backend %q, got %q", BackendBatched, c.Backend)
	}
	switch c.Store {
	case "", StoreMem:
		if c.DataDir != "" {
			return fmt.Errorf("server: DataDir is set but Store is %q — set Store %q to use it", StoreMem, StoreFile)
		}
		if c.CheckpointEvery != 0 {
			return fmt.Errorf("server: CheckpointEvery requires Store %q", StoreFile)
		}
		if c.CheckpointMode != "" {
			return fmt.Errorf("server: CheckpointMode requires Store %q", StoreFile)
		}
		if c.DeltaCompactAfter != 0 {
			return fmt.Errorf("server: DeltaCompactAfter requires Store %q", StoreFile)
		}
		if c.MMap {
			return fmt.Errorf("server: MMap requires Store %q", StoreFile)
		}
		// The RAM store backs each tree with one contiguous allocation; the
		// cap that used to be a constructor panic is rejected here with an
		// actionable error instead of surfacing from shard construction.
		// (Z == 0 means the caller validates before applying defaults; the
		// defaulted config re-validates inside New.)
		if c.Z == 0 {
			break
		}
		for i, g := range levelGeometries(c) {
			if g.TreeBytes() > pathoram.MaxByteStorage {
				return fmt.Errorf("server: level %d bucket tree needs %d bytes, above the RAM store's %d-byte cap — use Store %q with a DataDir",
					i, g.TreeBytes(), uint64(pathoram.MaxByteStorage), StoreFile)
			}
		}
	case StoreFile:
		if c.DataDir == "" {
			return fmt.Errorf("server: Store %q requires a DataDir", StoreFile)
		}
		if c.CheckpointEvery < 0 {
			return fmt.Errorf("server: CheckpointEvery must not be negative, got %d", c.CheckpointEvery)
		}
		if c.CacheBuckets < 0 {
			return fmt.Errorf("server: CacheBuckets must not be negative, got %d", c.CacheBuckets)
		}
		if _, err := pathoram.ParseSyncPolicy(c.Sync); err != nil {
			return fmt.Errorf("server: %w", err)
		}
		switch c.CheckpointMode {
		case "", CheckpointFull:
			if c.DeltaCompactAfter != 0 {
				return fmt.Errorf("server: DeltaCompactAfter requires CheckpointMode %q", CheckpointDelta)
			}
		case CheckpointDelta:
			if c.DeltaCompactAfter < 0 {
				return fmt.Errorf("server: DeltaCompactAfter must not be negative, got %d", c.DeltaCompactAfter)
			}
		default:
			return fmt.Errorf("server: unknown CheckpointMode %q (want %q or %q)", c.CheckpointMode, CheckpointFull, CheckpointDelta)
		}
	default:
		return fmt.Errorf("server: unknown Store %q (want %q or %q)", c.Store, StoreMem, StoreFile)
	}
	if c.LeakageBudgetBits < 0 {
		return fmt.Errorf("server: LeakageBudgetBits must not be negative, got %v", c.LeakageBudgetBits)
	}
	for name, bits := range c.TenantBudgets {
		if name == "" {
			return fmt.Errorf("server: TenantBudgets names the empty tenant")
		}
		if bits < 0 {
			return fmt.Errorf("server: TenantBudgets[%q] must not be negative, got %v", name, bits)
		}
	}
	if c.Unpaced {
		return nil // the enforcer stack is never built
	}
	if c.ClockHz == 0 || c.ClockHz > 1_000_000_000 {
		return fmt.Errorf("server: ClockHz must be in [1, 1e9], got %d", c.ClockHz)
	}
	if c.ORAMLatency == 0 {
		return fmt.Errorf("server: ORAMLatency must be positive")
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf("server: empty rate set")
	}
	for i := 1; i < len(c.Rates); i++ {
		if c.Rates[i] <= c.Rates[i-1] {
			return fmt.Errorf("server: Rates must be strictly ascending, got %v", c.Rates)
		}
	}
	// The core enforcer permits an off-set initial rate (the paper allows
	// any epoch-0 value), but the service's leakage accounting charges every
	// revealed rate as one of |R| choices — an operator-supplied rate
	// outside R would make the observable schedule carry more than the
	// lg|R| bits per transition the account claims. Zero means "default to
	// the slowest rate" (withDefaults), which is always a member.
	if c.InitialRate != 0 {
		member := false
		for _, r := range c.Rates {
			if r == c.InitialRate {
				member = true
				break
			}
		}
		if !member {
			return fmt.Errorf("server: InitialRate %d is not in Rates %v", c.InitialRate, c.Rates)
		}
	}
	if c.EpochFirstLen > 0 && c.EpochGrowth < 2 {
		return fmt.Errorf("server: EpochGrowth must be ≥ 2 for a dynamic schedule, got %d", c.EpochGrowth)
	}
	return nil
}

// Store is the sharded concurrent ORAM key-value service. All exported
// methods are safe for concurrent use.
type Store struct {
	cfg    Config
	shards []*shard

	mu     sync.RWMutex // guards closed against in-flight submits
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New builds a store and starts one serving goroutine per shard. The
// returned store is serving immediately; paced shards begin emitting dummy
// accesses on their slot grid even before the first request arrives.
func New(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	backends, persisters, err := newBackends(cfg)
	if err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg, stop: make(chan struct{})}
	for i, o := range backends {
		var p *persister
		if persisters != nil {
			p = persisters[i]
		}
		sh, err := newShard(i, o, cfg, st.stop, p)
		if err != nil {
			for _, pp := range persisters {
				pp.closeStores()
			}
			return nil, err
		}
		st.shards = append(st.shards, sh)
	}
	for _, sh := range st.shards {
		st.wg.Add(1)
		go func(sh *shard) {
			defer st.wg.Done()
			sh.run()
		}(sh)
	}
	return st, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Store) Config() Config { return s.cfg }

// ShardOf returns the shard serving addr: a deterministic,
// data-independent routing function. Modulo routing spreads sequential
// scans round-robin across shards, which keeps per-shard load flat for
// every scenario the load generator ships.
func (s *Store) ShardOf(addr uint64) int {
	return int(addr % uint64(s.cfg.Shards))
}

// localAddr converts a global block address to the shard-local one.
func (s *Store) localAddr(addr uint64) uint64 {
	return addr / uint64(s.cfg.Shards)
}

// Read returns a copy of the block's contents (zeroes if never written).
// It blocks until a slot on the owning shard serves the request.
func (s *Store) Read(addr uint64) ([]byte, error) {
	return s.TenantRead("", addr)
}

// Write stores data into the block. len(data) must not exceed BlockBytes;
// shorter payloads are zero-padded. It blocks until a slot serves the
// request.
func (s *Store) Write(addr uint64, data []byte) error {
	return s.TenantWrite("", addr, data)
}

// TenantRead is Read charged to tenant's leakage sub-budget ("" =
// untenanted, never refused).
func (s *Store) TenantRead(tenant string, addr uint64) ([]byte, error) {
	if err := s.admitTenant(tenant); err != nil {
		return nil, err
	}
	req := &request{addr: addr, tenant: tenant, resp: make(chan result, 1)}
	if err := s.submit(req); err != nil {
		return nil, err
	}
	res := <-req.resp
	return res.data, res.err
}

// TenantWrite is Write charged to tenant's leakage sub-budget.
func (s *Store) TenantWrite(tenant string, addr uint64, data []byte) error {
	if err := s.admitTenant(tenant); err != nil {
		return err
	}
	if len(data) > s.cfg.BlockBytes {
		return Errorf(CodeOversized, "server: payload is %d bytes, block is %d", len(data), s.cfg.BlockBytes)
	}
	buf := make([]byte, s.cfg.BlockBytes)
	copy(buf, data)
	req := &request{addr: addr, tenant: tenant, write: true, data: buf, resp: make(chan result, 1)}
	if err := s.submit(req); err != nil {
		return err
	}
	res := <-req.resp
	return res.err
}

// ReadBatch serves up to MaxBatch addresses as one batch: members are
// enqueued together, so on the batched backend a whole client batch rides
// one multi-path slot where the addresses land on one shard. The error
// return covers whole-batch rejections (empty, too large, tenant over
// budget, store closed); per-address failures (out of range) land in the
// matching BatchResult.Err without failing their neighbors.
func (s *Store) ReadBatch(tenant string, addrs []uint64) ([]BatchResult, error) {
	if len(addrs) == 0 {
		return nil, Errorf(CodeBadRequest, "server: empty batch")
	}
	if max := s.cfg.MaxBatch(); len(addrs) > max {
		return nil, Errorf(CodeBatchTooLarge, "server: batch of %d addresses exceeds the store's limit of %d", len(addrs), max)
	}
	if err := s.admitTenant(tenant); err != nil {
		return nil, err
	}
	results := make([]BatchResult, len(addrs))
	reqs := make([]*request, len(addrs))
	for i, addr := range addrs {
		if addr >= s.cfg.Blocks {
			results[i].Err = Errorf(CodeOutOfRange, "server: address %d out of range (%d blocks)", addr, s.cfg.Blocks)
			continue
		}
		sh := s.shards[s.ShardOf(addr)]
		req := &request{addr: addr, local: s.localAddr(addr), tenant: tenant, resp: make(chan result, 1)}
		if sh.enf != nil {
			req.arrival = sh.enf.Now()
		}
		reqs[i] = req
	}
	// All members enqueue under one closed-check so a batch is atomic
	// against Close; same-shard members land contiguously in that shard's
	// queue, which is what lets takeBatch lift them into one slot.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	for i, req := range reqs {
		if req == nil {
			continue
		}
		sh := s.shards[s.ShardOf(addrs[i])]
		sh.depth.Add(1)
		sh.queue <- req
	}
	s.mu.RUnlock()
	for i, req := range reqs {
		if req == nil {
			continue
		}
		res := <-req.resp
		results[i].Data = res.data
		results[i].Err = res.err
	}
	return results, nil
}

// admitTenant refuses ops from a tenant whose leakage sub-budget is
// exhausted. Only tenants named in TenantBudgets are ever refused; the
// check reads the current per-shard attribution, so the refusal begins
// with the first op after the budget-crossing epoch transition.
func (s *Store) admitTenant(tenant string) error {
	if tenant == "" || len(s.cfg.TenantBudgets) == 0 {
		return nil
	}
	budget, ok := s.cfg.TenantBudgets[tenant]
	if !ok || budget <= 0 {
		return nil
	}
	var transitions uint64
	for _, sh := range s.shards {
		transitions += sh.tenantTransitions(tenant)
	}
	leaked := float64(leakage.ORAMTimingBits(len(s.cfg.Rates), int(transitions)))
	if leaked > budget {
		return Errorf(CodeTenantBudget, "server: tenant %q exhausted its leakage sub-budget (%.1f bits leaked, budget %.1f)", tenant, leaked, budget)
	}
	return nil
}

// submit validates and routes a request to its shard's queue, blocking when
// the queue is full (backpressure).
func (s *Store) submit(req *request) error {
	if req.addr >= s.cfg.Blocks {
		return Errorf(CodeOutOfRange, "server: address %d out of range (%d blocks)", req.addr, s.cfg.Blocks)
	}
	sh := s.shards[s.ShardOf(req.addr)]
	req.local = s.localAddr(req.addr)
	if sh.enf != nil {
		req.arrival = sh.enf.Now()
	}
	// The closed check and the enqueue happen under the read lock so Close
	// cannot declare the queues drained while a submit is in flight.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	sh.depth.Add(1)
	sh.queue <- req
	s.mu.RUnlock()
	return nil
}

// Stats returns a snapshot of per-shard activity, including the store-level
// leakage account: every epoch transition on every shard reveals one
// lg|R|-bit rate choice to a timing observer, and the cumulative total is
// compared against the configured budget.
func (s *Store) Stats() Stats {
	st := Stats{
		Shards:            make([]ShardStats, len(s.shards)),
		Blocks:            s.cfg.Blocks,
		BlockBytes:        s.cfg.BlockBytes,
		LeakageBudgetBits: s.cfg.LeakageBudgetBits,
	}
	for i, sh := range s.shards {
		ss := sh.stats()
		transitions := 0
		for _, rc := range ss.RateChanges {
			if rc.Epoch > 0 { // the epoch-0 entry is the public initial rate, not a choice
				transitions++
			}
		}
		ss.LeakedBits = float64(leakage.ORAMTimingBits(len(s.cfg.Rates), transitions))
		st.LeakedBits += ss.LeakedBits
		st.Shards[i] = ss
	}
	st.LeakageExceeded = s.cfg.LeakageBudgetBits > 0 && st.LeakedBits > s.cfg.LeakageBudgetBits
	st.Tenants = s.tenantStats(st.Shards)
	return st
}

// tenantStats builds the per-tenant leakage account from the shards'
// attribution maps, including budgeted tenants that have not sent traffic
// yet (their rows show the configured budget at zero spend).
func (s *Store) tenantStats(shards []ShardStats) []TenantStat {
	transitions := make(map[string]uint64)
	for _, ss := range shards {
		for t, n := range ss.TenantTransitions {
			transitions[t] += n
		}
	}
	for t := range s.cfg.TenantBudgets {
		if _, ok := transitions[t]; !ok {
			transitions[t] = 0
		}
	}
	if len(transitions) == 0 {
		return nil
	}
	names := make([]string, 0, len(transitions))
	for t := range transitions {
		names = append(names, t)
	}
	sort.Strings(names)
	out := make([]TenantStat, 0, len(names))
	for _, t := range names {
		ts := TenantStat{
			Tenant:      t,
			Transitions: transitions[t],
			LeakedBits:  float64(leakage.ORAMTimingBits(len(s.cfg.Rates), int(transitions[t]))),
		}
		if budget, ok := s.cfg.TenantBudgets[t]; ok && budget > 0 {
			ts.BudgetBits = budget
			ts.Exceeded = ts.LeakedBits > budget
		}
		out = append(out, ts)
	}
	return out
}

// ServiceStats adapts Stats to the daemon's Service interface (a local
// snapshot cannot fail).
func (s *Store) ServiceStats() (Stats, error) { return s.Stats(), nil }

// SlotTraces returns each shard's recorded slot-signature trace, indexed by
// shard, when the store was built with TraceSlots (nil entries otherwise).
// Only valid after Close: the traces are owned by the shard goroutines
// while the store is serving.
func (s *Store) SlotTraces() [][]pathoram.SlotSig {
	out := make([][]pathoram.SlotSig, len(s.shards))
	for i, sh := range s.shards {
		if b, ok := sh.oram.(*pathoram.Batched); ok {
			out[i] = b.SlotTrace
		}
	}
	return out
}

// Close stops all shard goroutines, fails any still-queued requests with
// ErrClosed, and returns once every goroutine has exited. Close is
// idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	// No submitter can be mid-enqueue now (closed was set under the write
	// lock), so draining what remains is race-free.
	for _, sh := range s.shards {
		sh.drain()
	}
	return nil
}

// Stats aggregates the per-shard counters the service exposes.
type Stats struct {
	Shards     []ShardStats `json:"shards"`
	Blocks     uint64       `json:"blocks"`
	BlockBytes int          `json:"block_bytes"`
	// LeakedBits is the cumulative ORAM-timing-channel leakage across all
	// shards: transitions × lg|R| bits, the paper's per-epoch bound realized
	// on live traffic. LeakageBudgetBits echoes the configured budget (0 =
	// none) and LeakageExceeded flags an overrun.
	LeakedBits        float64 `json:"leaked_bits"`
	LeakageBudgetBits float64 `json:"leakage_budget_bits,omitempty"`
	LeakageExceeded   bool    `json:"leakage_exceeded,omitempty"`
	// Tenants is the per-tenant slice of the leakage account, sorted by
	// tenant name: epoch transitions attributed to each tenant's activity
	// and the resulting leaked bits, with the sub-budget and its trip flag
	// for budgeted tenants. One tenant tripping its sub-budget never
	// spends another's — see docs/LEAKAGE.md for what the attribution does
	// and does not compose to.
	Tenants []TenantStat `json:"tenants,omitempty"`

	// Cluster routing metadata, populated only when the stats were
	// aggregated by a routing proxy (internal/cluster). RoutingEpoch and
	// MapFingerprint identify the node map that served this session — a
	// client that recorded them can detect a proxy restarted over a drifted
	// topology. Replicas is the replication factor K; MigrationActive and
	// MigrationWatermark report rebalance progress (addresses below the
	// watermark have moved to the current epoch's topology); Nodes carries
	// per-node health.
	RoutingEpoch       uint64       `json:"routing_epoch,omitempty"`
	MapFingerprint     string       `json:"map_fingerprint,omitempty"`
	Replicas           int          `json:"replicas,omitempty"`
	MigrationActive    bool         `json:"migration_active,omitempty"`
	MigrationWatermark uint64       `json:"migration_watermark,omitempty"`
	Nodes              []NodeStatus `json:"nodes,omitempty"`
}

// TenantStat is one tenant's slice of the leakage account. Transitions
// counts epoch transitions that occurred while the tenant was active
// (attribution: every tenant active in an epoch is charged that epoch's
// full lg|R|-bit transition — leakage is not divisible between observers).
// LeakedBits = Transitions × lg|R|. BudgetBits echoes the configured
// sub-budget (0 = unbudgeted) and Exceeded flags an overrun, at which
// point the store refuses the tenant's new ops with CodeTenantBudget.
type TenantStat struct {
	Tenant      string  `json:"tenant"`
	Transitions uint64  `json:"transitions"`
	LeakedBits  float64 `json:"leaked_bits"`
	BudgetBits  float64 `json:"budget_bits,omitempty"`
	Exceeded    bool    `json:"leakage_exceeded,omitempty"`
}

// NodeStatus is one cluster node's health record as seen by the routing
// proxy: whether it is currently in the serving pool, and the cumulative
// counts of ejections (healthy→unhealthy transitions), failovers (reads this
// node should have served as primary but a successor replica answered), and
// replica write misses (writes acked by the cluster that this node did not
// apply — the measure of how stale it is if it rejoins). Defined here rather
// than in internal/cluster so it can ride inside Stats over the wire.
type NodeStatus struct {
	// Node is the node's index in the current map; retiring nodes of a
	// previous topology appear with negative indices during a migration.
	Node               int    `json:"node"`
	Addr               string `json:"addr"`
	Healthy            bool   `json:"healthy"`
	Ejections          uint64 `json:"ejections,omitempty"`
	Failovers          uint64 `json:"failovers,omitempty"`
	ReplicaWriteMisses uint64 `json:"replica_write_misses,omitempty"`
	LastError          string `json:"last_error,omitempty"`
}

// ShardStats is one shard's activity snapshot.
type ShardStats struct {
	Shard int `json:"shard"`
	// Node identifies which cluster node this shard lives on when the stats
	// were aggregated by a routing proxy (internal/cluster); a single daemon
	// always reports 0. (Node, Shard) is the cluster-unique shard identity.
	Node int `json:"node,omitempty"`
	// Queue is the number of requests submitted but not yet completed.
	Queue int `json:"queue"`
	// RealAccesses and DummyAccesses count issued ORAM accesses by kind;
	// their ratio is the paper's dummy-fraction metric observed on live
	// traffic.
	RealAccesses  uint64 `json:"real_accesses"`
	DummyAccesses uint64 `json:"dummy_accesses"`
	// Coalesced counts requests that were absorbed into another request's
	// access (same block, in flight together).
	Coalesced uint64 `json:"coalesced"`
	// BatchFetched counts distinct blocks served through multi-path batch
	// slots (BackendBatched only); per real slot it can reach the
	// configured BatchK, versus exactly 1 for the single-access backends.
	BatchFetched uint64 `json:"batch_fetched,omitempty"`
	// ForcedEvictions counts eviction passes a batched shard ran early
	// because its stash hit the high-water mark — deviations from the
	// fixed eviction cadence, surfaced for monitoring.
	ForcedEvictions uint64 `json:"forced_evictions,omitempty"`
	// Rate and Epoch mirror the shard enforcer's public state (zero in
	// Unpaced mode).
	Rate  uint64 `json:"rate"`
	Epoch int    `json:"epoch"`
	// RateChanges is the shard enforcer's epoch-transition history — exactly
	// the information the timing channel has revealed (its length, minus the
	// epoch-0 entry, times lg|R| is LeakedBits). Nil in Unpaced mode.
	RateChanges []core.RateChange `json:"rate_changes,omitempty"`
	// LeakedBits is this shard's share of the store's leakage account.
	LeakedBits float64 `json:"leaked_bits"`
	// TenantTransitions attributes this shard's epoch transitions to the
	// tenants active when each fired: tenant name → transitions charged.
	// Every tenant with queued traffic in the transition's epoch is charged
	// the full transition (the rate choice is revealed to each of them
	// alike). Untenanted traffic is not tracked here.
	TenantTransitions map[string]uint64 `json:"tenant_transitions,omitempty"`
	// OverdueSlots counts slots this shard issued at least one full period
	// behind the wall clock (the pacing loop's back-to-back catch-up mode);
	// MaxLagCycles is the worst such lag observed. Nonzero values mean the
	// host could not hold the schedule — a software-only failure mode that
	// hardware enforcers do not have, surfaced here for monitoring.
	OverdueSlots uint64 `json:"overdue_slots"`
	MaxLagCycles uint64 `json:"max_lag_cycles"`
	// StashPeak is the largest stash occupancy the shard has seen — for a
	// recursive backend, the sum of per-level peaks (what an on-chip stash
	// SRAM would have to provision).
	StashPeak int `json:"stash_peak"`
	// StashPeaks breaks StashPeak down by ORAM level: index 0 is the data
	// ORAM, deeper indices successively smaller position-map ORAMs. A flat
	// backend reports a single level.
	StashPeaks []int `json:"stash_peaks,omitempty"`
	// Failed reports that the shard's ORAM hit an unrecoverable error and
	// the shard now rejects all requests (monitoring hook).
	Failed bool `json:"failed,omitempty"`
	// Store-tier counters, populated only for file-backed shards.
	// CacheHits/CacheMisses count bucket page cache lookups; FileReads and
	// FileWrites count bucket-sized file IOs; MMapReads counts clean-bucket
	// reads served straight from the file mapping (MMap mode); Checkpoints
	// counts sealed trusted-state checkpoints written, CheckpointBytes the
	// total sealed bytes they wrote and CheckpointNS the total wall time
	// they took — together they make full-vs-delta amortization visible
	// (delta mode writes O(dirty) bytes per checkpoint instead of
	// O(state)). Recovery reports the shard's boot outcome: "fresh" (new
	// data dir) or "recovered" (rebuilt from a checkpoint after a restart).
	CacheHits       uint64 `json:"cache_hits,omitempty"`
	CacheMisses     uint64 `json:"cache_misses,omitempty"`
	FileReads       uint64 `json:"file_reads,omitempty"`
	FileWrites      uint64 `json:"file_writes,omitempty"`
	MMapReads       uint64 `json:"mmap_reads,omitempty"`
	Checkpoints     uint64 `json:"checkpoints,omitempty"`
	CheckpointBytes uint64 `json:"checkpoint_bytes,omitempty"`
	CheckpointNS    uint64 `json:"checkpoint_ns,omitempty"`
	Recovery        string `json:"recovery,omitempty"`
}

// Totals sums access counts across shards.
func (s Stats) Totals() (real, dummy, coalesced uint64) {
	for _, sh := range s.Shards {
		real += sh.RealAccesses
		dummy += sh.DummyAccesses
		coalesced += sh.Coalesced
	}
	return
}

// Transitions counts epoch transitions across shards — the number of
// lg|R|-bit rate choices the timing channel has revealed. The epoch-0
// history entry is the public initial rate, not a choice, so it is skipped.
func (s Stats) Transitions() uint64 {
	var n uint64
	for _, sh := range s.Shards {
		for _, rc := range sh.RateChanges {
			if rc.Epoch > 0 {
				n++
			}
		}
	}
	return n
}

// Slip sums the grid-slip counters across shards: total overdue slots and
// the worst per-shard lag in cycles.
func (s Stats) Slip() (overdueSlots, maxLagCycles uint64) {
	for _, sh := range s.Shards {
		overdueSlots += sh.OverdueSlots
		if sh.MaxLagCycles > maxLagCycles {
			maxLagCycles = sh.MaxLagCycles
		}
	}
	return
}

// LeakageSummary renders the session's leakage account as the one-line
// summary both CLIs print at shutdown.
func (s Stats) LeakageSummary() string {
	budget := "no budget"
	if s.LeakageBudgetBits > 0 {
		budget = fmt.Sprintf("budget %.1f", s.LeakageBudgetBits)
		if s.LeakageExceeded {
			budget += " EXCEEDED"
		}
	}
	return fmt.Sprintf("timing channel leaked %.1f bits over %d epoch transitions (%s)",
		s.LeakedBits, s.Transitions(), budget)
}

// SlipWarning renders the grid-slip warning line, or ok=false when the
// grid never slipped.
func (s Stats) SlipWarning() (warning string, ok bool) {
	overdue, lag := s.Slip()
	if overdue == 0 {
		return "", false
	}
	return fmt.Sprintf("WARNING: %d slots issued ≥ 1 period late (max lag %d cycles) — host could not hold the slot grid",
		overdue, lag), true
}

// DummyFraction is the observed share of accesses that were dummies.
func (s Stats) DummyFraction() float64 {
	real, dummy, _ := s.Totals()
	if real+dummy == 0 {
		return 0
	}
	return float64(dummy) / float64(real+dummy)
}

// ParseRates parses a comma-separated rate set ("45,195,495") into the
// ascending cycle values Config.Rates expects — the flag format shared by
// cmd/oramd and cmd/loadgen. Order and emptiness are left to Validate so
// every misconfiguration surfaces through one error path.
func ParseRates(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: bad rate %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("server: empty rate set")
	}
	return out, nil
}

// ParseTenantBudgets parses the -tenant-budgets flag format
// ("alice=32,bob=64": tenant name = sub-budget bits) shared by cmd/oramd
// and cmd/oramproxy. Empty input means no sub-budgets (nil map).
func ParseTenantBudgets(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("server: bad tenant budget %q (want name=bits)", part)
		}
		bits, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("server: bad tenant budget %q: %v", part, err)
		}
		if bits < 0 {
			return nil, fmt.Errorf("server: tenant %q budget must not be negative, got %v", name, bits)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("server: tenant %q budgeted twice", name)
		}
		out[name] = bits
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("server: empty tenant budget list")
	}
	return out, nil
}

// enforcerFor builds the per-shard enforcer stack from the store config, or
// nil in Unpaced mode.
func enforcerFor(cfg Config) (*core.WallEnforcer, error) {
	if cfg.Unpaced {
		return nil, nil
	}
	ecfg := core.EnforcerConfig{
		ORAMLatency: cfg.ORAMLatency,
		Rates:       cfg.Rates,
		InitialRate: cfg.InitialRate,
	}
	if cfg.EpochFirstLen > 0 {
		ecfg.Schedule = core.EpochSchedule{FirstLen: cfg.EpochFirstLen, Growth: cfg.EpochGrowth}
	}
	e, err := core.NewEnforcer(ecfg)
	if err != nil {
		return nil, err
	}
	clock, err := core.NewCycleClock(cfg.ClockHz)
	if err != nil {
		return nil, err
	}
	return core.NewWallEnforcer(e, clock), nil
}
