package server

import (
	"flag"
	"fmt"
)

// This file is the shared CLI flag surface. cmd/oramd, cmd/loadgen and
// cmd/oramproxy used to re-declare the store and budget flags by hand,
// which is exactly how three binaries drift apart one default at a time;
// now each registers the surface through these builders and only declares
// what is genuinely its own (listen address, workload shape, node list).
// scripts/check_flags.sh keeps docs/CLI.md honest against the result.

// StoreFlagOptions customizes the shared store surface for one binary.
type StoreFlagOptions struct {
	// Note prefixes every usage string (loadgen passes "in-process: " so
	// its help text says which flags only matter without -addr).
	Note string
	// Blocks overrides the default address space (0 = 65536 — oramd's
	// serving default; loadgen passes 4096, its exercise default).
	Blocks uint64
	// Storage registers the durable-store flag group (-store, -data-dir,
	// -checkpoint-every, ...). Off for binaries that only build RAM stores.
	Storage bool
	// Per-binary usage overrides for the flags whose meaning shifts with
	// the binary (empty = the canonical text with Note prefixed).
	BlocksUsage     string
	BlockBytesUsage string
	SeedUsage       string
}

// StoreFlags is the registered store surface; call Config after fs.Parse.
type StoreFlags struct {
	fs      *flag.FlagSet
	storage bool

	shards     *int
	blocks     *uint64
	blockBytes *int
	z          *int
	queue      *int
	seed       *int64
	oram       *string
	recursion  *int
	integrity  *bool
	batchK     *int
	evictEvery *int
	batchHW    *int
	hz         *uint64
	olat       *uint64
	rates      *string
	epochLen   *uint64
	growth     *uint64
	unpaced    *bool

	store     *string
	dataDir   *string
	ckptEvery *int
	cacheBkts *int
	syncPol   *string
	ckptMode  *string
	compactAt *int64
	mmapReads *bool

	// Budget is the embedded leakage-budget group, also registrable on its
	// own (NewBudgetFlags) for binaries without a store, like oramproxy.
	Budget *BudgetFlags
}

// NewStoreFlags registers the shared store surface on fs.
func NewStoreFlags(fs *flag.FlagSet, opt StoreFlagOptions) *StoreFlags {
	usage := func(override, canonical string) string {
		if override != "" {
			return override
		}
		return opt.Note + canonical
	}
	blocks := opt.Blocks
	if blocks == 0 {
		blocks = 65536
	}
	f := &StoreFlags{
		fs:         fs,
		storage:    opt.Storage,
		shards:     fs.Int("shards", 4, opt.Note+"number of independent ORAM shards"),
		blocks:     fs.Uint64("blocks", blocks, usage(opt.BlocksUsage, "total address space in blocks")),
		blockBytes: fs.Int("block-bytes", 64, usage(opt.BlockBytesUsage, "payload bytes per block")),
		z:          fs.Int("z", 3, opt.Note+"bucket capacity Z"),
		queue:      fs.Int("queue", 256, opt.Note+"per-shard request queue depth"),
		seed:       fs.Int64("seed", 1, usage(opt.SeedUsage, "deterministic construction seed")),
		oram:       fs.String("oram", "flat", opt.Note+"per-shard ORAM backend: flat | recursive | batched"),
		recursion:  fs.Int("recursion", 3, opt.Note+"position-map ORAM levels for -oram=recursive (batched defaults to 0)"),
		integrity:  fs.Bool("integrity", false, opt.Note+"Merkle-verify every level's untrusted storage"),
		batchK:     fs.Int("batch-k", 4, opt.Note+"batched: distinct blocks fetched per slot (public parameter k, also the batch_read limit)"),
		evictEvery: fs.Int("evict-every", 4, opt.Note+"batched: slots between deterministic eviction passes (public parameter K)"),
		batchHW:    fs.Int("batch-highwater", 0, opt.Note+"batched: stash high-water mark forcing an early eviction pass (0 = default)"),
		hz:         fs.Uint64("hz", 1_000_000, opt.Note+"enforcer cycle frequency (cycles/s)"),
		olat:       fs.Uint64("olat", 15, opt.Note+"ORAM access latency in cycles"),
		rates:      fs.String("rates", "85", opt.Note+"comma-separated allowed rate set (cycles, ascending)"),
		epochLen:   fs.Uint64("epoch", 0, opt.Note+"first epoch length in cycles (0 = static rate)"),
		growth:     fs.Uint64("growth", 4, opt.Note+"epoch length growth factor"),
		unpaced:    fs.Bool("unpaced", false, opt.Note+"disable rate enforcement (no dummies; leaks timing)"),
		Budget:     NewBudgetFlags(fs, opt.Note, "session, across all shards"),
	}
	if opt.Storage {
		f.store = fs.String("store", "mem", opt.Note+"untrusted bucket storage: mem | file (file implies -integrity)")
		f.dataDir = fs.String("data-dir", "", opt.Note+"file store root directory (per-shard subdirectories; required with -store file)")
		f.ckptEvery = fs.Int("checkpoint-every", 0, opt.Note+"file store: sealed checkpoint every N served slots (1 = durable acks, 0 = shutdown only)")
		f.cacheBkts = fs.Int("cache-buckets", 0, opt.Note+"file store: bucket page cache size per level (0 = default 1024)")
		f.syncPol = fs.String("sync", "none", opt.Note+"file store fsync policy: none | checkpoint | always")
		f.ckptMode = fs.String("checkpoint-mode", "", opt.Note+"file store checkpoint strategy: full (rewrite base.bin each time; default) | delta (append O(dirty) hash-linked delta chain elements)")
		f.compactAt = fs.Int64("delta-compact-after", 0, opt.Note+"delta mode: fold the chain into a fresh base once sealed delta bytes pass this threshold (0 = default 4 MiB)")
		f.mmapReads = fs.Bool("mmap", false, opt.Note+"file store: serve clean bucket reads from a read-only mmap of each bucket file (unix only)")
	}
	return f
}

// Config resolves the parsed flags into a store configuration. Call after
// the flag set has parsed; the result still goes through Config.Validate
// inside New.
func (f *StoreFlags) Config() (Config, error) {
	rateSet, err := ParseRates(*f.rates)
	if err != nil {
		return Config{}, err
	}
	leakBudget, tenantBudgets, err := f.Budget.Parse()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		Shards:            *f.shards,
		Blocks:            *f.blocks,
		BlockBytes:        *f.blockBytes,
		Z:                 *f.z,
		QueueDepth:        *f.queue,
		Seed:              *f.seed,
		Backend:           *f.oram,
		Recursion:         f.effectiveRecursion(),
		Integrity:         *f.integrity,
		BatchK:            *f.batchK,
		EvictEvery:        *f.evictEvery,
		BatchHighWater:    *f.batchHW,
		ClockHz:           *f.hz,
		ORAMLatency:       *f.olat,
		Rates:             rateSet,
		EpochFirstLen:     *f.epochLen,
		EpochGrowth:       *f.growth,
		LeakageBudgetBits: leakBudget,
		TenantBudgets:     tenantBudgets,
		Unpaced:           *f.unpaced,
	}
	if f.storage {
		cfg.Store = *f.store
		cfg.DataDir = *f.dataDir
		cfg.CheckpointEvery = *f.ckptEvery
		cfg.CacheBuckets = *f.cacheBkts
		cfg.Sync = *f.syncPol
		cfg.CheckpointMode = *f.ckptMode
		cfg.DeltaCompactAfter = *f.compactAt
		cfg.MMap = *f.mmapReads
	}
	return cfg, nil
}

// effectiveRecursion resolves the -recursion flag against the chosen
// backend. The flag's default of 3 is tuned for -oram recursive; forwarding
// it blindly would silently turn a plain `-oram batched` into a 3-level
// recursive stack, so the batched backend gets a flat position map unless
// -recursion was passed explicitly on the command line.
func (f *StoreFlags) effectiveRecursion() int {
	set := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "recursion" {
			set = true
		}
	})
	if *f.oram == BackendBatched && !set {
		return 0
	}
	return *f.recursion
}

// BudgetFlags is the leakage-budget flag group: the scope-wide budget and
// the per-tenant sub-budgets.
type BudgetFlags struct {
	leak    *float64
	tenants *string
}

// NewBudgetFlags registers -leak-budget and -tenant-budgets on fs; scope
// names what the budget covers in the help text ("session, across all
// shards" on a daemon, "cluster-wide, across all nodes' shards" on the
// proxy).
func NewBudgetFlags(fs *flag.FlagSet, note, scope string) *BudgetFlags {
	return &BudgetFlags{
		leak: fs.Float64("leak-budget", 0,
			fmt.Sprintf("%sleakage budget in bits, %s (0 = account only)", note, scope)),
		tenants: fs.String("tenant-budgets", "",
			note+"per-tenant leakage sub-budgets as name=bits,...: a tenant over its sub-budget is refused (code tenant_budget_exhausted) while others keep being served (empty = single-tenant)"),
	}
}

// Parse resolves the parsed budget flags.
func (b *BudgetFlags) Parse() (leakBudget float64, tenantBudgets map[string]float64, err error) {
	tenantBudgets, err = ParseTenantBudgets(*b.tenants)
	if err != nil {
		return 0, nil, err
	}
	return *b.leak, tenantBudgets, nil
}
