package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseTenantBudgets(t *testing.T) {
	got, err := ParseTenantBudgets("alice=32, bob=64.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["alice"] != 32 || got["bob"] != 64.5 {
		t.Fatalf("parsed %v", got)
	}
	if got, err := ParseTenantBudgets(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"alice", "=3", "alice=", "alice=x", "alice=-1", "alice=1,alice=2", ","} {
		if _, err := ParseTenantBudgets(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestConfigValidateTenantBudgets(t *testing.T) {
	cfg := fastConfig(1)
	cfg.TenantBudgets = map[string]float64{"": 4}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "TenantBudgets") {
		t.Errorf("empty tenant name not rejected: %v", err)
	}
	cfg.TenantBudgets = map[string]float64{"alice": -1}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "TenantBudgets") {
		t.Errorf("negative sub-budget not rejected: %v", err)
	}
}

// TestTenantBudgetIndependentTrips is the acceptance test for per-tenant
// sub-budgets: two tenants drive one store through epoch transitions under
// different budgets, and the tight one trips — alice is refused with the
// tenant_budget_exhausted code while bob keeps being served and the
// learner keeps adapting. The per-tenant accounts must also replay: each
// tenant's leaked_bits is exactly its charged transitions × lg|R|.
func TestTenantBudgetIndependentTrips(t *testing.T) {
	cfg := Config{
		Shards:        1,
		Blocks:        256,
		BlockBytes:    64,
		ClockHz:       1_000_000,
		ORAMLatency:   5,
		Rates:         []uint64{45, 195, 495, 995}, // |R| = 4 → 2 bits per transition
		InitialRate:   995,
		EpochFirstLen: 20_000, // 20 ms, growth 2: transitions at 20/60/140/300 ms
		EpochGrowth:   2,
		TenantBudgets: map[string]float64{
			"alice": 3,    // dead after the 2nd charged transition (4 > 3 bits)
			"bob":   1000, // never trips in this test
		},
	}
	st, addr := startDaemon(t, cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Drive both tenants until alice is refused (or we give up). Every op
	// in a paced epoch marks its tenant active, and every tenant active in
	// an epoch is charged that epoch's full lg|R|-bit transition.
	var aliceErr error
	deadline := time.Now().Add(10 * time.Second)
	for i := uint64(0); time.Now().Before(deadline); i++ {
		a := i % 256
		if _, err := cl.TenantRead("bob", a); err != nil {
			t.Fatalf("bob refused: %v", err)
		}
		if _, err := cl.TenantRead("alice", a); err != nil {
			aliceErr = err
			break
		}
	}
	if aliceErr == nil {
		t.Fatal("alice never hit her 3-bit sub-budget within 10 s of 20 ms-seeded epochs")
	}
	var remote *RemoteError
	if !errors.As(aliceErr, &remote) || remote.Code != CodeTenantBudget {
		t.Fatalf("alice's refusal = %v, want RemoteError code %s", aliceErr, CodeTenantBudget)
	}

	// The refusal is per-tenant and per-op: alice stays dead, bob serves on,
	// on the same connection. Batches are refused the same way.
	if _, err := cl.TenantRead("alice", 1); ErrorCode(err) != CodeTenantBudget {
		t.Errorf("alice re-admitted: %v", err)
	}
	if err := cl.TenantWrite("alice", 1, make([]byte, 64)); ErrorCode(err) != CodeTenantBudget {
		t.Errorf("alice write admitted: %v", err)
	}
	if _, err := cl.ReadBatch("alice", []uint64{1, 2}); ErrorCode(err) != CodeTenantBudget {
		t.Errorf("alice batch admitted: %v", err)
	}
	if _, err := cl.TenantRead("bob", 9); err != nil {
		t.Errorf("bob refused after alice tripped: %v", err)
	}
	// Anonymous (empty-tenant) traffic carries no sub-budget and is served.
	if _, err := cl.Read(9); err != nil {
		t.Errorf("anonymous read refused: %v", err)
	}

	stats := st.Stats()
	byName := map[string]TenantStat{}
	for _, ts := range stats.Tenants {
		byName[ts.Tenant] = ts
	}
	alice, ok := byName["alice"]
	if !ok {
		t.Fatal("no alice row in stats.Tenants")
	}
	bob, ok := byName["bob"]
	if !ok {
		t.Fatal("no bob row in stats.Tenants")
	}
	if !alice.Exceeded {
		t.Errorf("alice not flagged exceeded: %+v", alice)
	}
	if bob.Exceeded {
		t.Errorf("bob flagged exceeded: %+v", bob)
	}
	if alice.BudgetBits != 3 || bob.BudgetBits != 1000 {
		t.Errorf("budgets echoed as alice=%v bob=%v", alice.BudgetBits, bob.BudgetBits)
	}
	// Per-tenant replay: with |R| = 4, every charged transition is exactly
	// 2 bits, so each account must equal 2 × its transition count — the
	// same arithmetic the adversary's schedule reconstruction performs on
	// the public rate-change history.
	for name, ts := range byName {
		if want := 2 * float64(ts.Transitions); ts.LeakedBits != want {
			t.Errorf("%s: leaked_bits = %v over %d transitions, want %v", name, ts.LeakedBits, ts.Transitions, want)
		}
	}
	if alice.LeakedBits <= alice.BudgetBits {
		t.Errorf("alice refused at %v bits under her %v budget", alice.LeakedBits, alice.BudgetBits)
	}
}

// TestTenantStatsZeroTraffic: a budgeted tenant that never sent an op still
// gets a zero account row, so operators see the whole budget table.
func TestTenantStatsZeroTraffic(t *testing.T) {
	cfg := fastConfig(1)
	cfg.TenantBudgets = map[string]float64{"idle": 8}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stats := st.Stats()
	if len(stats.Tenants) != 1 {
		t.Fatalf("Tenants = %+v, want one idle row", stats.Tenants)
	}
	ts := stats.Tenants[0]
	if ts.Tenant != "idle" || ts.Transitions != 0 || ts.LeakedBits != 0 || ts.BudgetBits != 8 || ts.Exceeded {
		t.Errorf("idle tenant row = %+v", ts)
	}
}
