package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tcoram/internal/workload"
)

// BenchmarkServerThroughput measures sustained operations per second
// against the sharded store as the shard count grows, with a saturating
// client pool (2 clients per shard, in-process calls — the protocol layer
// is benchmarked by the e2e tests).
//
// In paced mode each shard's enforcer caps service at one access per slot
// period, so at saturation throughput is shards/period — the scaling is the
// point: doubling shards doubles the slot supply over the same dataset
// without touching the per-shard timing channel. The unpaced variants
// measure raw ORAM capacity with no rate enforcement (base_oram mode),
// which scales with available cores instead.
func BenchmarkServerThroughput(b *testing.B) {
	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n > 8 {
		counts = append(counts, n)
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, nil)
		})
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("unpaced/shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, func(cfg *Config) { cfg.Unpaced = true })
		})
	}
	// The flat-vs-recursive trade the paper's timing model costs: a
	// recursive access moves all levels' paths, so the paced series shows
	// whether the stack still holds the slot grid, and the unpaced series
	// measures the raw all-levels capacity cost (with and without Merkle
	// integrity) against the flat unpaced baseline above.
	recursive := func(integrity bool) func(*Config) {
		return func(cfg *Config) {
			cfg.Backend = BackendRecursive
			cfg.Recursion = 2 // 4096/4 = 1024 blocks/shard: 2 levels reach an on-chip map
			cfg.Integrity = integrity
		}
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("recursive/shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, recursive(false))
		})
	}
	b.Run("recursive-unpaced/shards=4", func(b *testing.B) {
		runThroughput(b, 4, func(cfg *Config) {
			recursive(false)(cfg)
			cfg.Unpaced = true
		})
	})
	b.Run("recursive-integrity-unpaced/shards=4", func(b *testing.B) {
		runThroughput(b, 4, func(cfg *Config) {
			recursive(true)(cfg)
			cfg.Unpaced = true
		})
	})
	// The batched multi-path series: same 500 µs slot period as the flat
	// paced series above, but each slot serves up to k=4 distinct blocks, so
	// paced throughput approaches k·shards/period instead of shards/period.
	// The client pool is sized to keep ≥ k distinct blocks queued per shard
	// (2 clients per shard would cap queue depth at 2 and mask the batch
	// win). The unpaced variant measures the raw capacity cost of a batched
	// slot (k fetches + amortized eviction) with no grid.
	batched := func(cfg *Config) {
		cfg.Backend = BackendBatched
		cfg.BatchK = 4
		cfg.EvictEvery = 4
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("batched/shards=%d", n), func(b *testing.B) {
			runThroughputClients(b, n, 16*n, batched)
		})
	}
	b.Run("batched-unpaced/shards=4", func(b *testing.B) {
		runThroughputClients(b, 4, 32, func(cfg *Config) {
			batched(cfg)
			cfg.Unpaced = true
		})
	})
	// The durable storage tier: same grid as the flat paced series but the
	// buckets live in files with a periodic sealed-checkpoint cadence
	// (forced integrity included), so the paced series shows whether the
	// slot grid absorbs the storage tier and the unpaced series measures
	// the raw mem-vs-file capacity cost (page cache + checkpoint + seal).
	// bench_compare.sh records the store kind per series and refuses
	// mem-vs-file comparisons, so these never gate against the RAM series.
	fileStore := func(dir string) func(*Config) {
		return func(cfg *Config) {
			cfg.Store = StoreFile
			cfg.DataDir = dir
			cfg.CheckpointEvery = 16
			cfg.CacheBuckets = 256
		}
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("file/shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, fileStore(b.TempDir()))
		})
	}
	b.Run("file-unpaced/shards=4", func(b *testing.B) {
		runThroughput(b, 4, func(cfg *Config) {
			fileStore(b.TempDir())(cfg)
			cfg.Unpaced = true
		})
	})
	// The incremental checkpoint pipeline: same durable grid but each
	// checkpoint appends an O(dirty) sealed delta to a hash-linked chain
	// instead of rewriting the whole trusted state. bench.sh records the
	// checkpoint_mode per series and bench_compare.sh refuses full-vs-delta
	// comparisons, so these gate only against their own history.
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("file-delta/shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, func(cfg *Config) {
				fileStore(b.TempDir())(cfg)
				cfg.CheckpointMode = CheckpointDelta
			})
		})
	}
}

// BenchmarkBatchVerb prices the batch_read verb itself: one latency-bound
// client drives the cdsi lookup stream against a paced batched store
// (k=4, 500 µs slots), submitting singly in one series and in 4-address
// batches in the other. Sequential single ops synchronize with the slot
// grid one block at a time — one op per slot — while a batch lands k
// distinct addresses in the queue at once, so the same slot lifts the
// whole submission (takeBatch) and paced throughput approaches k per
// slot. The ~k× ratio between the series is the serving-path win the
// batch verb exists for; both series ride identical slot grids, so the
// timing channel is unchanged.
func BenchmarkBatchVerb(b *testing.B) {
	const k = 4
	newBatchedStore := func(b *testing.B) *Store {
		st, err := New(Config{
			Shards:      1,
			Blocks:      4096,
			BlockBytes:  64,
			QueueDepth:  1024,
			Backend:     BackendBatched,
			BatchK:      k,
			EvictEvery:  4,
			ClockHz:     1_000_000,
			ORAMLatency: 100,
			Rates:       []uint64{400}, // 500 µs slot period
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		return st
	}
	reportOps := func(b *testing.B) {
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "ops/s")
		}
	}

	b.Run("single-op", func(b *testing.B) {
		st := newBatchedStore(b)
		stream, err := workload.NewKVStream(workload.KVCDSI, 4096, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := stream.Next()
			if op.Write {
				FillPayload(buf, op.Addr, 1, 0)
				if err := st.TenantWrite("cdsi", op.Addr, buf); err != nil {
					b.Fatal(err)
				}
			} else if _, err := st.TenantRead("cdsi", op.Addr); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportOps(b)
	})

	b.Run(fmt.Sprintf("batch=%d", k), func(b *testing.B) {
		st := newBatchedStore(b)
		stream, err := workload.NewKVStream(workload.KVCDSI, 4096, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 64)
		var pend []uint64
		flush := func() {
			if len(pend) == 0 {
				return
			}
			results, err := st.ReadBatch("cdsi", pend)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			pend = pend[:0]
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op := stream.Next()
			if op.Write {
				FillPayload(buf, op.Addr, 1, 0)
				if err := st.TenantWrite("cdsi", op.Addr, buf); err != nil {
					b.Fatal(err)
				}
				continue
			}
			pend = append(pend, op.Addr)
			if len(pend) == k {
				flush()
			}
		}
		flush()
		b.StopTimer()
		reportOps(b)
	})
}

func runThroughput(b *testing.B, shards int, mutate func(*Config)) {
	runThroughputClients(b, shards, 2*shards, mutate)
}

func runThroughputClients(b *testing.B, shards, clients int, mutate func(*Config)) {
	cfg := Config{
		Shards:      shards,
		Blocks:      4096, // constant dataset: more shards = smaller sub-trees
		BlockBytes:  64,
		QueueDepth:  1024,
		ClockHz:     1_000_000,
		ORAMLatency: 100,
		Rates:       []uint64{400}, // 500 µs slot period per shard
	}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var wg sync.WaitGroup
	b.ResetTimer()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			stream, err := workload.NewKVStream(workload.KVUniform, cfg.Blocks, int64(cl)+1, 0)
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, cfg.BlockBytes)
			for remaining.Add(-1) >= 0 {
				op := stream.Next()
				if op.Write {
					FillPayload(buf, op.Addr, uint32(cl), 0)
					if err := st.Write(op.Addr, buf); err != nil {
						b.Error(err)
						return
					}
				} else {
					if _, err := st.Read(op.Addr); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
	real, dummy, _ := st.Stats().Totals()
	if total := real + dummy; total > 0 {
		b.ReportMetric(float64(dummy)/float64(total), "dummy-frac")
	}
}
