package server

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"tcoram/internal/workload"
)

// BenchmarkServerThroughput measures sustained operations per second
// against the sharded store as the shard count grows, with a saturating
// client pool (2 clients per shard, in-process calls — the protocol layer
// is benchmarked by the e2e tests).
//
// In paced mode each shard's enforcer caps service at one access per slot
// period, so at saturation throughput is shards/period — the scaling is the
// point: doubling shards doubles the slot supply over the same dataset
// without touching the per-shard timing channel. The unpaced variants
// measure raw ORAM capacity with no rate enforcement (base_oram mode),
// which scales with available cores instead.
func BenchmarkServerThroughput(b *testing.B) {
	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n > 8 {
		counts = append(counts, n)
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, false)
		})
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("unpaced/shards=%d", n), func(b *testing.B) {
			runThroughput(b, n, true)
		})
	}
}

func runThroughput(b *testing.B, shards int, unpaced bool) {
	cfg := Config{
		Shards:      shards,
		Blocks:      4096, // constant dataset: more shards = smaller sub-trees
		BlockBytes:  64,
		QueueDepth:  1024,
		ClockHz:     1_000_000,
		ORAMLatency: 100,
		Rates:       []uint64{400}, // 500 µs slot period per shard
		Unpaced:     unpaced,
	}
	st, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	clients := 2 * shards
	var wg sync.WaitGroup
	b.ResetTimer()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			stream, err := workload.NewKVStream(workload.KVUniform, cfg.Blocks, int64(cl)+1, 0)
			if err != nil {
				b.Error(err)
				return
			}
			buf := make([]byte, cfg.BlockBytes)
			for remaining.Add(-1) >= 0 {
				op := stream.Next()
				if op.Write {
					FillPayload(buf, op.Addr, uint32(cl), 0)
					if err := st.Write(op.Addr, buf); err != nil {
						b.Error(err)
						return
					}
				} else {
					if _, err := st.Read(op.Addr); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ops/s")
	}
	real, dummy, _ := st.Stats().Totals()
	if total := real + dummy; total > 0 {
		b.ReportMetric(float64(dummy)/float64(total), "dummy-frac")
	}
}
