package server

// The daemon protocol is JSON lines over TCP: one JSON object per newline-
// terminated line in each direction. Requests carry a client-chosen id that
// the matching response echoes, so clients may pipeline arbitrarily many
// requests per connection; responses arrive in completion order, not
// submission order (ORAM slots on different shards complete independently).
// The cluster routing proxy (cmd/oramproxy) speaks exactly this protocol on
// both faces: clients address it like a daemon, and it fans requests out to
// daemons as a pipelined client, so every wire rule below applies unchanged
// at each hop. Its stats responses aggregate all nodes' shards, each entry
// tagged with its node index.
//
// Ops:
//
//	{"id":1,"op":"read","addr":17}
//	{"id":2,"op":"write","addr":17,"data":"<base64>"}
//	{"id":3,"op":"stats"}
//	{"id":4,"op":"ping"}
//
// Responses:
//
//	{"id":1,"ok":true,"data":"<base64>"}
//	{"id":2,"ok":true}
//	{"id":3,"ok":true,"stats":{...}}
//	{"id":5,"ok":false,"err":"server: address 99999 out of range (4096 blocks)"}

// Op names accepted by the daemon.
const (
	OpRead  = "read"
	OpWrite = "write"
	OpStats = "stats"
	OpPing  = "ping"
)

// Request is one client → daemon message.
type Request struct {
	ID   uint64 `json:"id"`
	Op   string `json:"op"`
	Addr uint64 `json:"addr,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// Response is one daemon → client message.
type Response struct {
	ID    uint64 `json:"id"`
	OK    bool   `json:"ok"`
	Err   string `json:"err,omitempty"`
	Data  []byte `json:"data,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}
