package server

import (
	"errors"
	"fmt"
)

// The daemon protocol is JSON lines over TCP: one JSON object per newline-
// terminated line in each direction. Requests carry a client-chosen id that
// the matching response echoes, so clients may pipeline arbitrarily many
// requests per connection; responses arrive in completion order, not
// submission order (ORAM slots on different shards complete independently).
// The cluster routing proxy (cmd/oramproxy) speaks exactly this protocol on
// both faces: clients address it like a daemon, and it fans requests out to
// daemons as a pipelined client, so every wire rule below applies unchanged
// at each hop. Its stats responses aggregate all nodes' shards, each entry
// tagged with its node index.
//
// Every data op may carry a tenant tag, charged by the per-tenant leakage
// accountant; batch_read is the first-class verb of the contact-discovery
// serving path — one request carries up to k addresses, one response carries
// per-address results, and the single-op verbs are its degenerate k=1 form.
//
// Ops:
//
//	{"id":1,"op":"read","addr":17}
//	{"id":2,"op":"write","addr":17,"data":"<base64>","tenant":"acme"}
//	{"id":3,"op":"batch_read","addrs":[17,33,2],"tenant":"acme"}
//	{"id":4,"op":"stats"}
//	{"id":5,"op":"ping"}
//
// Responses:
//
//	{"id":1,"ok":true,"data":"<base64>"}
//	{"id":2,"ok":true}
//	{"id":3,"ok":true,"results":[{"ok":true,"data":"<base64>"},...]}
//	{"id":4,"ok":true,"stats":{...}}
//	{"id":6,"ok":false,"err":"server: address 99999 out of range (4096 blocks)","code":"out_of_range"}
//
// A failed response (or batch member) carries both the human-readable err
// text and a machine-readable code (the constants below), so clients branch
// on codes instead of string-matching error prose.

// Op names accepted by the daemon.
const (
	OpRead      = "read"
	OpWrite     = "write"
	OpBatchRead = "batch_read"
	OpStats     = "stats"
	OpPing      = "ping"
)

// Machine-readable error codes carried in Response.Code / WireResult.Code.
const (
	// CodeBadRequest: the request was malformed (unparseable line, empty
	// batch, missing fields).
	CodeBadRequest = "bad_request"
	// CodeUnknownOp: the op verb is not one the daemon speaks.
	CodeUnknownOp = "unknown_op"
	// CodeOutOfRange: the address is outside the served space.
	CodeOutOfRange = "out_of_range"
	// CodeOversized: a write payload exceeds the block size.
	CodeOversized = "oversized_payload"
	// CodeBatchTooLarge: a batch carries more addresses than the serving
	// side's public batch limit (Config.MaxBatch / MaxBatchAddrs).
	CodeBatchTooLarge = "batch_too_large"
	// CodeStoreClosed: the store is shut down.
	CodeStoreClosed = "store_closed"
	// CodeTenantBudget: the request's tenant has exhausted its per-tenant
	// leakage sub-budget and new ops are refused until the operator raises
	// it.
	CodeTenantBudget = "tenant_budget_exhausted"
	// CodeUnavailable: the serving side could not reach any replica that
	// holds the data right now — a transient condition worth retrying, unlike
	// every other code.
	CodeUnavailable = "unavailable"
	// CodeInternal: any failure that carries no more specific code.
	CodeInternal = "internal"
)

// MaxBatchAddrs is the protocol-level ceiling on addresses per batch_read —
// the largest BatchK a store can be configured with, so the routing proxy
// can bound a batch before knowing which node's k will serve it. Individual
// stores enforce their tighter Config.MaxBatch.
const MaxBatchAddrs = 64

// Request is one client → daemon message.
type Request struct {
	ID   uint64 `json:"id"`
	Op   string `json:"op"`
	Addr uint64 `json:"addr,omitempty"`
	Data []byte `json:"data,omitempty"`
	// Addrs carries a batch_read's addresses (up to the serving side's batch
	// limit); ignored by the single-op verbs.
	Addrs []uint64 `json:"addrs,omitempty"`
	// Tenant tags the op for the per-tenant leakage accountant. Empty means
	// untenanted: served normally, charged to no sub-budget. The tag is
	// public metadata — see docs/LEAKAGE.md.
	Tenant string `json:"tenant,omitempty"`
}

// Response is one daemon → client message.
type Response struct {
	ID   uint64 `json:"id"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
	Code string `json:"code,omitempty"`
	Data []byte `json:"data,omitempty"`
	// Results carries a batch_read's per-address outcomes, index-aligned
	// with the request's Addrs.
	Results []WireResult `json:"results,omitempty"`
	Stats   *Stats       `json:"stats,omitempty"`
}

// WireResult is one batch member's outcome on the wire: a batch response is
// OK as a whole whenever the batch itself was accepted, and each member
// succeeds or fails independently.
type WireResult struct {
	OK   bool   `json:"ok"`
	Data []byte `json:"data,omitempty"`
	Err  string `json:"err,omitempty"`
	Code string `json:"code,omitempty"`
}

// BatchResult is one batch member's outcome on the Go side of the KV
// surface: Data on success, a non-nil Err (a *RemoteError when it crossed
// the wire) otherwise.
type BatchResult struct {
	Data []byte
	Err  error
}

// Error is a coded application-level failure: the text is for humans, the
// code is the stable contract clients and the failover taxonomy branch on.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

// Errorf builds a coded error with fmt-style text.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// ErrorCode extracts the machine-readable code from any error: the code of
// a coded server error or of a remote rejection, CodeInternal for anything
// uncoded, "" for nil.
func ErrorCode(err error) string {
	if err == nil {
		return ""
	}
	var coded *Error
	if errors.As(err, &coded) && coded.Code != "" {
		return coded.Code
	}
	var remote *RemoteError
	if errors.As(err, &remote) && remote.Code != "" {
		return remote.Code
	}
	return CodeInternal
}

// errResponse renders an error as a failed response for id.
func errResponse(id uint64, err error) Response {
	return Response{ID: id, OK: false, Err: err.Error(), Code: ErrorCode(err)}
}
