package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// ErrClientClosed is returned for calls on a closed (or failed) client.
var ErrClientClosed = errors.New("server: client closed")

// RemoteError is an application-level failure the daemon reported in a
// well-formed response: the connection worked, the server answered, and the
// answer was "no" (address out of range, oversized payload, store closed…).
// Distinguishing it from transport failures is what the cluster's failover
// taxonomy runs on: most RemoteErrors would just repeat on a replica, while
// a transport failure says nothing about the request and everything about
// the connection (IsRecoverable). Code carries the response's
// machine-readable code (the Code* constants) so callers branch on it
// instead of string-matching Msg.
type RemoteError struct {
	Msg  string
	Code string
}

func (e *RemoteError) Error() string { return "server: remote error: " + e.Msg }

// Client speaks the daemon's JSON-lines protocol over one TCP connection.
// It is safe for concurrent use: calls from many goroutines pipeline onto
// the single connection and are matched back by request id, so a pool of
// worker goroutines sharing one Client saturates the server the same way
// independent connections would.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes encoder writes
	bw  *bufio.Writer
	enc *json.Encoder

	mu      sync.Mutex
	pending map[uint64]chan pendingResp
	err     error // set once the reader exits
	nextID  atomic.Uint64
}

// pendingResp is what the read loop delivers to a waiting caller: either the
// server's response or the connection-level error that killed the client
// before a response arrived. The two are kept apart so do() can surface a
// transport failure as itself (recoverable, retry elsewhere) instead of
// disguising it as a remote rejection.
type pendingResp struct {
	resp    Response
	connErr error
}

// Dial connects to a daemon at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (test hook for net.Pipe).
func NewClient(conn net.Conn) *Client {
	bw := bufio.NewWriter(conn)
	c := &Client{
		conn:    conn,
		bw:      bw,
		enc:     json.NewEncoder(bw),
		pending: make(map[uint64]chan pendingResp),
	}
	go c.readLoop()
	return c
}

// readLoop delivers responses to waiting callers until the connection dies,
// then fails everything still pending.
func (c *Client) readLoop() {
	var parseErr error
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			// One garbled line means the framing can no longer be trusted;
			// skipping it would leave its caller blocked forever. Tear the
			// connection down and fail everything pending instead.
			parseErr = fmt.Errorf("server: malformed response line: %w", err)
			break
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- pendingResp{resp: resp}
		}
	}
	err := parseErr
	if err == nil {
		err = sc.Err()
	}
	if err == nil {
		err = ErrClientClosed
	}
	if parseErr != nil {
		c.conn.Close()
	}
	c.mu.Lock()
	c.err = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- pendingResp{connErr: err}
	}
	c.mu.Unlock()
}

// do sends one request and waits for its response. Transport failures (the
// connection died before or instead of answering) come back as the
// underlying error — recoverable in the cluster taxonomy — while a
// well-formed negative answer comes back as a *RemoteError.
func (c *Client) do(req Request) (Response, error) {
	req.ID = c.nextID.Add(1)
	ch := make(chan pendingResp, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Response{}, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.Encode(&req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, err
	}

	pr := <-ch
	if pr.connErr != nil {
		return Response{}, pr.connErr
	}
	if !pr.resp.OK {
		return pr.resp, &RemoteError{Msg: pr.resp.Err, Code: pr.resp.Code}
	}
	return pr.resp, nil
}

// Read fetches a block.
func (c *Client) Read(addr uint64) ([]byte, error) {
	return c.TenantRead("", addr)
}

// Write stores a block.
func (c *Client) Write(addr uint64, data []byte) error {
	return c.TenantWrite("", addr, data)
}

// TenantRead fetches a block, charging the op to tenant's leakage
// sub-budget on the serving side ("" = untenanted).
func (c *Client) TenantRead(tenant string, addr uint64) ([]byte, error) {
	resp, err := c.do(Request{Op: OpRead, Addr: addr, Tenant: tenant})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// TenantWrite stores a block under tenant's sub-budget ("" = untenanted).
func (c *Client) TenantWrite(tenant string, addr uint64, data []byte) error {
	_, err := c.do(Request{Op: OpWrite, Addr: addr, Data: data, Tenant: tenant})
	return err
}

// ReadBatch fetches up to the serving side's batch limit of blocks in one
// batch_read round trip, returning one index-aligned result per address.
// The returned error covers whole-batch failures (transport death, batch
// rejected); per-address failures land in the corresponding BatchResult.Err
// as *RemoteError without disturbing their neighbors.
func (c *Client) ReadBatch(tenant string, addrs []uint64) ([]BatchResult, error) {
	if len(addrs) == 0 {
		return nil, Errorf(CodeBadRequest, "server: empty batch")
	}
	resp, err := c.do(Request{Op: OpBatchRead, Addrs: addrs, Tenant: tenant})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(addrs) {
		return nil, fmt.Errorf("server: batch response carries %d results for %d addresses", len(resp.Results), len(addrs))
	}
	results := make([]BatchResult, len(addrs))
	for i, r := range resp.Results {
		if r.OK {
			results[i].Data = r.Data
		} else {
			results[i].Err = &RemoteError{Msg: r.Err, Code: r.Code}
		}
	}
	return results, nil
}

// Stats fetches the server's per-shard counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.do(Request{Op: OpStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("server: stats response missing payload")
	}
	return *resp.Stats, nil
}

// Ping round-trips a no-op message.
func (c *Client) Ping() error {
	_, err := c.do(Request{Op: OpPing})
	return err
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	return c.conn.Close()
}
