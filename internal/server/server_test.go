package server

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"tcoram/internal/adversary"
)

// fastConfig paces at a 500 µs slot period — fast enough that tests finish
// promptly, slow enough that the pacing loops never saturate a 1-vCPU CI
// box (an access on this small tree costs a few µs, tens under -race).
func fastConfig(shards int) Config {
	return Config{
		Shards:      shards,
		Blocks:      1024,
		BlockBytes:  64,
		QueueDepth:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 20,
		Rates:       []uint64{480},
	}
}

func TestShardRoutingDeterministic(t *testing.T) {
	st, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	counts := make([]int, 4)
	for addr := uint64(0); addr < 1024; addr++ {
		a, b := st.ShardOf(addr), st.ShardOf(addr)
		if a != b {
			t.Fatalf("routing for %d not deterministic: %d vs %d", addr, a, b)
		}
		if a != int(addr%4) {
			t.Fatalf("ShardOf(%d) = %d, want %d", addr, a, addr%4)
		}
		counts[a]++
	}
	for i, c := range counts {
		if c != 256 {
			t.Errorf("shard %d owns %d blocks, want 256", i, c)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	st, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for addr := uint64(0); addr < 64; addr++ {
		want := make([]byte, 64)
		FillPayload(want, addr, 0, addr)
		if err := st.Write(addr, want); err != nil {
			t.Fatal(err)
		}
		got, err := st.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: read %x, want %x", addr, got[:16], want[:16])
		}
	}

	// Unwritten blocks read as zeroes.
	got, err := st.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("unwritten block not zero: %x", got[:16])
	}

	// Out-of-range and oversized requests fail cleanly.
	if _, err := st.Read(4096); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := st.Write(0, make([]byte, 65)); err == nil {
		t.Error("oversized write accepted")
	}
}

// TestConcurrentDisjointClients: many goroutines on disjoint key ranges;
// every read-after-write must return the exact payload (run under -race in
// CI).
func TestConcurrentDisjointClients(t *testing.T) {
	st, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const clients = 8
	const perClient = 40
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			base := uint64(cl) * 128
			buf := make([]byte, 64)
			for i := 0; i < perClient; i++ {
				addr := base + uint64(i%32)
				FillPayload(buf, addr, uint32(cl), uint64(i))
				if err := st.Write(addr, buf); err != nil {
					t.Errorf("client %d write %d: %v", cl, addr, err)
					return
				}
				got, err := st.Read(addr)
				if err != nil {
					t.Errorf("client %d read %d: %v", cl, addr, err)
					return
				}
				if !bytes.Equal(got, buf) {
					t.Errorf("client %d block %d: read %x want %x", cl, addr, got[:16], buf[:16])
					return
				}
			}
		}(cl)
	}
	wg.Wait()
}

// TestConcurrentOverlappingClients: goroutines hammer a small shared key
// set; reads must always surface a well-formed payload for the right block
// (no torn or cross-block data), even though which write wins is racy.
func TestConcurrentOverlappingClients(t *testing.T) {
	st, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const clients = 8
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 50; i++ {
				addr := uint64((cl + i) % 16) // heavy overlap
				if i%2 == 0 {
					FillPayload(buf, addr, uint32(cl), uint64(i))
					if err := st.Write(addr, buf); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					got, err := st.Read(addr)
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if err := CheckPayload(got, addr); err != nil {
						t.Errorf("block %d corrupted: %v", addr, err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
}

// TestIdlePacingEmitsDummies is the satellite pacing test: an idle paced
// shard must issue dummy accesses on its slot grid at the configured rate.
// The loop's catch-up behaviour makes the issued count track wall time
// even when the goroutine is scheduled late, so the bound is two-sided.
func TestIdlePacingEmitsDummies(t *testing.T) {
	cfg := Config{
		Shards:      2,
		Blocks:      256,
		BlockBytes:  64,
		ClockHz:     1_000_000, // 1 cycle = 1 µs
		ORAMLatency: 100,
		Rates:       []uint64{900}, // slot period 1000 cycles = 1 ms
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const wait = 300 * time.Millisecond
	time.Sleep(wait)
	stats := st.Stats()

	period := time.Duration(cfg.Rates[0]+cfg.ORAMLatency) * time.Microsecond
	expected := float64(wait) / float64(period) // ≈ 300
	for _, sh := range stats.Shards {
		if sh.RealAccesses != 0 {
			t.Errorf("shard %d issued %d real accesses while idle", sh.Shard, sh.RealAccesses)
		}
		got := float64(sh.DummyAccesses)
		if got < expected*0.5 || got > expected*1.5 {
			t.Errorf("shard %d: %v dummies in %v, want ≈%.0f (±50%%)", sh.Shard, got, wait, expected)
		}
		if sh.Rate != cfg.Rates[0] {
			t.Errorf("shard %d rate = %d, want %d", sh.Shard, sh.Rate, cfg.Rates[0])
		}
	}
	if f := stats.DummyFraction(); f != 1 {
		t.Errorf("idle dummy fraction = %v, want 1", f)
	}
}

// TestCoalescing: requests queued for the same block while a slow slot grid
// holds them must collapse into one access, and queued reads must observe
// the queued write that precedes them.
func TestCoalescing(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 5_000,
		Rates:       []uint64{45_000}, // 50 ms slot period: plenty to pile up
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := make([]byte, 64)
	FillPayload(want, 7, 9, 1)

	var wg sync.WaitGroup
	errs := make([]error, 5)
	datas := make([][]byte, 5)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = st.Write(7, want)
	}()
	time.Sleep(5 * time.Millisecond) // let the write enqueue first
	for i := 1; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			datas[i], errs[i] = st.Read(7)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < 5; i++ {
		if !bytes.Equal(datas[i], want) {
			t.Fatalf("coalesced read %d got %x, want %x", i, datas[i][:16], want[:16])
		}
	}
	stats := st.Stats()
	real, _, coalesced := stats.Totals()
	if coalesced < 3 {
		t.Errorf("coalesced = %d, want ≥ 3 (5 same-block requests)", coalesced)
	}
	if real > 2 {
		t.Errorf("5 same-block requests cost %d real accesses, want ≤ 2", real)
	}
}

// TestTakeGroupEarliestArrival pins the learner-input fix: the arrival a
// coalesced group reports to the enforcer is the earliest stamp across the
// whole group (Fig 4 semantics — every member's queueing time counts, and
// the union of their waits is [min arrival, slot]), not whatever the FIFO
// head happens to carry. Submitters stamp arrival before enqueueing, so a
// member can legitimately carry an earlier stamp than the head.
func TestTakeGroupEarliestArrival(t *testing.T) {
	mk := func(local, arrival uint64) *request {
		return &request{local: local, arrival: arrival, resp: make(chan result, 1)}
	}
	sh := &shard{}
	sh.fifo = []*request{mk(7, 100), mk(3, 50), mk(7, 40), mk(7, 200)}

	arrival := sh.takeGroup()
	if arrival != 40 {
		t.Errorf("group arrival = %d, want 40 (earliest member, not head's 100)", arrival)
	}
	if len(sh.group) != 3 {
		t.Errorf("group size = %d, want 3", len(sh.group))
	}
	if len(sh.fifo) != 1 || sh.fifo[0].local != 3 {
		t.Errorf("remaining fifo = %+v, want the single block-3 request", sh.fifo)
	}
	if got := sh.coalesced.Load(); got != 2 {
		t.Errorf("coalesced = %d, want 2", got)
	}
}

// TestTakeBatchEarliestArrival extends the learner-input fix to the batched
// drain: when a slot serves up to k distinct-block groups, the arrival it
// reports to TakeSlot is the earliest stamp across every member of every
// drained group — all those members' wait intervals end at this same slot,
// so their union is [min arrival, slot], exactly as for one coalesced
// group. Reporting only the first group's minimum would hide a later
// group's earlier-stamped member from the learner's Waste precisely when
// batching is doing its job.
func TestTakeBatchEarliestArrival(t *testing.T) {
	mk := func(local, arrival uint64) *request {
		return &request{local: local, arrival: arrival, resp: make(chan result, 1)}
	}
	sh := &shard{}
	sh.fifo = []*request{mk(7, 100), mk(3, 50), mk(7, 40), mk(9, 200), mk(3, 25), mk(5, 500)}

	arrival := sh.takeBatch(3)
	if arrival != 25 {
		t.Errorf("batch arrival = %d, want 25 (earliest member of the block-3 group)", arrival)
	}
	if len(sh.batch) != 3 {
		t.Fatalf("batch has %d groups, want 3", len(sh.batch))
	}
	wantGroups := [][]uint64{{7, 7}, {3, 3}, {9}}
	for i, g := range sh.batch {
		if len(g) != len(wantGroups[i]) {
			t.Fatalf("group %d has %d members, want %d", i, len(g), len(wantGroups[i]))
		}
		for j, req := range g {
			if req.local != wantGroups[i][j] {
				t.Errorf("group %d member %d is block %d, want %d", i, j, req.local, wantGroups[i][j])
			}
		}
	}
	if len(sh.fifo) != 1 || sh.fifo[0].local != 5 {
		t.Errorf("remaining fifo = %+v, want the single block-5 request", sh.fifo)
	}
	if got := sh.coalesced.Load(); got != 2 {
		t.Errorf("coalesced = %d, want 2 (one extra member each in groups 7 and 3)", got)
	}

	// A second drain takes the leftover and reports its own arrival.
	if arrival := sh.takeBatch(3); arrival != 500 {
		t.Errorf("second batch arrival = %d, want 500", arrival)
	}
	if len(sh.batch) != 1 {
		t.Errorf("second batch has %d groups, want 1", len(sh.batch))
	}
}

// TestCoalescedWaitsReachLearnerWaste drives the real pacing loop: requests
// that pile up behind a slow slot grid and coalesce into one access must
// still deposit their queueing time into the enforcer's Waste counter — the
// signal the epoch learner reads to speed up under load.
func TestCoalescedWaitsReachLearnerWaste(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 5_000,
		Rates:       []uint64{95_000}, // 100 ms slot period: plenty to pile up
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	payload := make([]byte, 64)
	FillPayload(payload, 7, 1, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := st.Write(7, payload); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the write enqueue first
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Read(7); err != nil {
				t.Errorf("read: %v", err)
			}
		}()
	}
	wg.Wait()

	c := st.shards[0].enf.Counters()
	if c.AccessCount < 1 {
		t.Fatalf("AccessCount = %d, want ≥ 1", c.AccessCount)
	}
	// The group arrived within the first few ms of a 100 ms slot wait: the
	// learner must see on the order of the full slot period as Waste. (The
	// generous lower bound keeps the assertion robust to CI jitter.)
	if c.Waste < 50_000 {
		t.Errorf("Waste = %d cycles, want ≥ 50000 (coalesced group queued ~100 ms)", c.Waste)
	}
	if _, _, coalesced := st.Stats().Totals(); coalesced < 3 {
		t.Errorf("coalesced = %d, want ≥ 3", coalesced)
	}
}

// TestShardStatsSurfaceGridSlip stalls a shard the honest way: a 1 µs slot
// period at 1 GHz that no software ORAM access can hold, so the grid slips
// behind the wall clock from the first slot and the catch-up counters must
// say so in ShardStats.
func TestShardStatsSurfaceGridSlip(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		ClockHz:     1_000_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{800}, // 1 µs period; an access costs several µs
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	time.Sleep(150 * time.Millisecond)
	stats := st.Stats()
	sh := stats.Shards[0]
	if sh.DummyAccesses == 0 {
		t.Fatal("stalled shard issued no accesses at all")
	}
	if sh.OverdueSlots == 0 {
		t.Error("grid permanently behind wall clock but OverdueSlots = 0")
	}
	if sh.MaxLagCycles < 1000 {
		t.Errorf("MaxLagCycles = %d, want ≥ one period (1000)", sh.MaxLagCycles)
	}
	overdue, lag := stats.Slip()
	if overdue < sh.OverdueSlots || lag < sh.MaxLagCycles {
		t.Errorf("Stats.Slip() = (%d, %d), below the shard's own (%d, %d)",
			overdue, lag, sh.OverdueSlots, sh.MaxLagCycles)
	}
}

func TestCloseFailsPendingAndFutureRequests(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 50_000,
		Rates:       []uint64{950_000}, // 1 s period: requests stay queued
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		_, err := st.Read(3)
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != ErrClosed {
			t.Fatalf("pending read returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending read not failed by Close")
	}
	if _, err := st.Read(3); err != ErrClosed {
		t.Fatalf("post-close read returned %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestUnpacedMode(t *testing.T) {
	st, err := New(Config{Shards: 2, Blocks: 256, BlockBytes: 64, Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 64)
	for i := uint64(0); i < 32; i++ {
		FillPayload(buf, i, 1, i)
		if err := st.Write(i, buf); err != nil {
			t.Fatal(err)
		}
		got, err := st.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPayload(got, i); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	real, dummy, _ := stats.Totals()
	if dummy != 0 {
		t.Errorf("unpaced mode issued %d dummies", dummy)
	}
	if real != 64 {
		t.Errorf("real accesses = %d, want 64", real)
	}
}

func TestStatsSnapshot(t *testing.T) {
	st, err := New(fastConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Write(5, []byte("hello")); err != nil { // short write pads
		t.Fatal(err)
	}
	got, err := st.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatalf("short write round-trip: %q", got[:5])
	}
	stats := st.Stats()
	if len(stats.Shards) != 4 || stats.Blocks != 1024 || stats.BlockBytes != 64 {
		t.Fatalf("stats header wrong: %+v", stats)
	}
	real, _, _ := stats.Totals()
	if real < 2 {
		t.Fatalf("real accesses = %d, want ≥ 2", real)
	}
	if stats.Shards[st.ShardOf(5)].RealAccesses < 2 {
		t.Fatalf("owning shard shows %d real accesses", stats.Shards[st.ShardOf(5)].RealAccesses)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error New must return
	}{
		{"negative shards", Config{Shards: -1}, "Shards must be positive"},
		{"descending rates", Config{Rates: []uint64{100, 50}}, "strictly ascending"},
		{"duplicate rates", Config{Rates: []uint64{100, 100}}, "strictly ascending"},
		{"oversized block", Config{BlockBytes: 1 << 20}, "wire protocol"},
		{"negative queue", Config{QueueDepth: -1}, "QueueDepth"},
		{"clock too fast", Config{ClockHz: 2_000_000_000}, "ClockHz"},
		{"epoch growth 1", Config{EpochFirstLen: 1000, EpochGrowth: 1}, "EpochGrowth"},
		{"negative leak budget", Config{LeakageBudgetBits: -4}, "LeakageBudgetBits"},
		// An off-set initial rate would be revealed to the timing observer
		// without being one of the |R| accounted choices, silently breaking
		// the lg|R|-per-transition leakage arithmetic.
		{"initial rate off-set", Config{Rates: []uint64{45, 495}, InitialRate: 86}, "InitialRate"},
		{"unknown backend", Config{Backend: "pyramid"}, "Backend"},
		{"recursion too deep", Config{Backend: BackendRecursive, Recursion: 9}, "Recursion"},
		{"batched bad k", Config{Backend: BackendBatched, BatchK: -1}, "BatchK"},
		{"batched k too large", Config{Backend: BackendBatched, BatchK: 65}, "BatchK"},
		{"batched bad evict period", Config{Backend: BackendBatched, EvictEvery: -1}, "EvictEvery"},
		{"batched negative high water", Config{Backend: BackendBatched, BatchHighWater: -5}, "BatchHighWater"},
		{"batched recursion too deep", Config{Backend: BackendBatched, Recursion: 9}, "Recursion"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad field (want substring %q)", err, tc.want)
			}
		})
	}

	// Validate (pre-defaults) also rejects what withDefaults would paper
	// over inside New, so direct callers get the same errors.
	if err := (Config{Shards: 1, Blocks: 64, BlockBytes: 64, ClockHz: 1000, ORAMLatency: 10}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "empty rate set") {
		t.Errorf("empty rate set not rejected by Validate: %v", err)
	}
	if err := (Config{Shards: 1, Blocks: 64, BlockBytes: 64, ClockHz: 1000, Rates: []uint64{50}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "ORAMLatency") {
		t.Errorf("zero ORAMLatency not rejected by Validate: %v", err)
	}
	// A member initial rate (not just the default last element) is fine.
	ok := fastConfig(1)
	ok.Rates = []uint64{45, 480}
	ok.InitialRate = 45
	if st, err := New(ok); err != nil {
		t.Errorf("member InitialRate rejected: %v", err)
	} else {
		st.Close()
	}

	// Unpaced mode ignores the enforcer fields entirely.
	st, err := New(Config{Unpaced: true, ClockHz: 2_000_000_000})
	if err != nil {
		t.Errorf("unpaced config rejected on enforcer fields: %v", err)
	} else {
		st.Close()
	}
}

// TestRecursiveBackendReadYourWrites serves the store from recursive,
// integrity-checked shard backends: the full KV surface must behave
// identically to the flat backend, and the stats must expose the stack's
// per-level stash peaks.
func TestRecursiveBackendReadYourWrites(t *testing.T) {
	cfg := fastConfig(2)
	cfg.Backend = BackendRecursive
	cfg.Recursion = 2
	cfg.Integrity = true
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if got := st.Config().Recursion; got != 2 {
		t.Fatalf("effective Recursion = %d, want 2", got)
	}
	for addr := uint64(0); addr < 48; addr++ {
		want := make([]byte, 64)
		FillPayload(want, addr, 0, addr)
		if err := st.Write(addr, want); err != nil {
			t.Fatal(err)
		}
		got, err := st.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: read %x, want %x", addr, got[:16], want[:16])
		}
	}
	// Unwritten blocks read as zeroes; out-of-range still fails cleanly.
	got, err := st.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("unwritten block not zero: %x", got[:16])
	}
	if _, err := st.Read(4096); err == nil {
		t.Error("out-of-range read accepted")
	}

	stats := st.Stats()
	for _, sh := range stats.Shards {
		if len(sh.StashPeaks) != 1+cfg.Recursion {
			t.Errorf("shard %d StashPeaks has %d levels, want %d", sh.Shard, len(sh.StashPeaks), 1+cfg.Recursion)
		}
		sum := 0
		for _, p := range sh.StashPeaks {
			sum += p
		}
		if sh.StashPeak != sum {
			t.Errorf("shard %d StashPeak %d != sum of levels %d", sh.Shard, sh.StashPeak, sum)
		}
		if sh.StashPeaks[0] == 0 {
			t.Errorf("shard %d data-level stash peak is 0 after 96 real accesses", sh.Shard)
		}
	}
}

// TestBatchedBackendReadYourWrites serves the store from batched multi-path
// shard backends (with recursion and integrity layered on): the KV surface
// must behave identically to the other backends, and the stats must expose
// the batch counters and per-level stash peaks.
func TestBatchedBackendReadYourWrites(t *testing.T) {
	cfg := fastConfig(2)
	cfg.Backend = BackendBatched
	cfg.Recursion = 1
	cfg.Integrity = true
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if got := st.Config().BatchK; got != 4 {
		t.Fatalf("effective BatchK = %d, want the default 4", got)
	}
	if got := st.Config().BackendLabel(); got != "batched×1(k=4,K=4)+integrity" {
		t.Fatalf("BackendLabel = %q", got)
	}
	for addr := uint64(0); addr < 48; addr++ {
		want := make([]byte, 64)
		FillPayload(want, addr, 0, addr)
		if err := st.Write(addr, want); err != nil {
			t.Fatal(err)
		}
		got, err := st.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: read %x, want %x", addr, got[:16], want[:16])
		}
	}
	got, err := st.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatalf("unwritten block not zero: %x", got[:16])
	}
	if _, err := st.Read(4096); err == nil {
		t.Error("out-of-range read accepted")
	}

	stats := st.Stats()
	var fetched uint64
	for _, sh := range stats.Shards {
		if len(sh.StashPeaks) != 1+cfg.Recursion {
			t.Errorf("shard %d StashPeaks has %d levels, want %d", sh.Shard, len(sh.StashPeaks), 1+cfg.Recursion)
		}
		if sh.StashPeaks[0] == 0 {
			t.Errorf("shard %d data-level stash peak is 0 after real batched accesses", sh.Shard)
		}
		fetched += sh.BatchFetched
	}
	if fetched == 0 {
		t.Error("no blocks reported through BatchFetched on a batched backend")
	}
}

// TestBatchedBackendServesKPerSlot is the tentpole's throughput mechanism
// observed directly: distinct-block requests held by a slow slot grid are
// served k per slot, where the single-access backends would need one slot
// each.
func TestBatchedBackendServesKPerSlot(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		Backend:     BackendBatched,
		BatchK:      4,
		EvictEvery:  4,
		ClockHz:     1_000_000,
		ORAMLatency: 5_000,
		Rates:       []uint64{45_000}, // 50 ms slots: requests pile up
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const n = 8 // two full batches of distinct blocks
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 64)
			FillPayload(buf, uint64(i), 1, uint64(i))
			errs[i] = st.Write(uint64(i), buf)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	stats := st.Stats()
	sh := stats.Shards[0]
	if sh.RealAccesses > 3 {
		t.Errorf("%d distinct blocks cost %d real slots, want ≤ 3 with k=4", n, sh.RealAccesses)
	}
	if sh.BatchFetched < n {
		t.Errorf("BatchFetched = %d, want ≥ %d", sh.BatchFetched, n)
	}
	if sh.ForcedEvictions != 0 {
		t.Errorf("ForcedEvictions = %d under a light load, want 0", sh.ForcedEvictions)
	}
}

// TestFlatBackendReportsSingleStashLevel: the flat default keeps its
// existing stats shape, just with the one-level breakdown attached.
func TestFlatBackendReportsSingleStashLevel(t *testing.T) {
	st, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sh := st.Stats().Shards[0]
	if len(sh.StashPeaks) != 1 {
		t.Fatalf("flat backend StashPeaks = %v, want exactly one level", sh.StashPeaks)
	}
	if sh.StashPeaks[0] != sh.StashPeak {
		t.Fatalf("flat backend level peak %d != StashPeak %d", sh.StashPeaks[0], sh.StashPeak)
	}
}

// TestDynamicScheduleAdaptsRate: with the paper's epoch learner behind the
// wall-clock adapter, a saturating workload should hold or raise the rate
// across epoch transitions without ever corrupting data.
func TestDynamicScheduleAdaptsRate(t *testing.T) {
	cfg := Config{
		Shards:        2,
		Blocks:        256,
		BlockBytes:    64,
		ClockHz:       1_000_000,
		ORAMLatency:   5,
		Rates:         []uint64{45, 195, 495},
		InitialRate:   495,
		EpochFirstLen: 20_000, // 20 ms epochs, growth 4
		EpochGrowth:   4,
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 64)
	deadline := time.Now().Add(400 * time.Millisecond)
	var i uint64
	for time.Now().Before(deadline) {
		addr := i % 256
		FillPayload(buf, addr, 0, i)
		if err := st.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		got, err := st.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPayload(got, addr); err != nil {
			t.Fatal(err)
		}
		i++
	}
	stats := st.Stats()
	for _, sh := range stats.Shards {
		if sh.Epoch == 0 {
			t.Errorf("shard %d never left epoch 0 in 400 ms of 20 ms epochs", sh.Shard)
		}
		found := false
		for _, r := range cfg.Rates {
			if sh.Rate == r {
				found = true
			}
		}
		if !found {
			t.Errorf("shard %d rate %d not in the allowed set %v", sh.Shard, sh.Rate, cfg.Rates)
		}
	}
}

// TestServerDynamicScheduleLeakageBounded is the server-level dynamic-
// schedule acceptance test: a paced store with short epochs under sustained
// load must cross epoch boundaries, land on a rate from R, and report a
// leakage account that matches its own transition history and never exceeds
// the paper's lg|R| × |E| bound.
func TestServerDynamicScheduleLeakageBounded(t *testing.T) {
	cfg := Config{
		Shards:            1,
		Blocks:            256,
		BlockBytes:        64,
		ClockHz:           1_000_000,
		ORAMLatency:       5,
		Rates:             []uint64{45, 195, 495, 995}, // |R| = 4 → lg|R| = 2 bits/epoch
		InitialRate:       995,
		EpochFirstLen:     20_000, // 20 ms, growth 2: boundaries at 20/60/140/300 ms
		EpochGrowth:       2,
		LeakageBudgetBits: 64,
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 64)
	deadline := time.Now().Add(400 * time.Millisecond)
	for i := uint64(0); time.Now().Before(deadline); i++ {
		addr := i % 256
		FillPayload(buf, addr, 0, i)
		if err := st.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Read(addr); err != nil {
			t.Fatal(err)
		}
	}

	stats := st.Stats()
	sh := stats.Shards[0]
	transitions := 0
	for _, rc := range sh.RateChanges {
		if rc.Epoch > 0 {
			transitions++
		}
		found := false
		for _, r := range cfg.Rates {
			if rc.Rate == r {
				found = true
			}
		}
		if !found && rc.Epoch > 0 { // epoch 0 carries the (free-choice) initial rate
			t.Errorf("epoch %d chose rate %d, not in R = %v", rc.Epoch, rc.Rate, cfg.Rates)
		}
	}
	if transitions < 2 {
		t.Fatalf("only %d epoch transitions in 400 ms of 20 ms-seeded epochs, want ≥ 2", transitions)
	}
	lgR := math.Log2(float64(len(cfg.Rates)))
	wantBits := lgR * float64(transitions)
	if math.Abs(sh.LeakedBits-wantBits) > 1e-9 {
		t.Errorf("shard LeakedBits = %v, want transitions × lg|R| = %v", sh.LeakedBits, wantBits)
	}
	// The paper's bound: leakage never exceeds lg|R| × |E| for the epochs
	// actually expended.
	maxEpoch := sh.RateChanges[len(sh.RateChanges)-1].Epoch
	if bound := lgR * float64(maxEpoch); sh.LeakedBits > bound+1e-9 {
		t.Errorf("LeakedBits %v exceeds lg|R|×|E| = %v", sh.LeakedBits, bound)
	}
	if stats.LeakedBits != sh.LeakedBits {
		t.Errorf("store LeakedBits = %v, single shard has %v", stats.LeakedBits, sh.LeakedBits)
	}
	if stats.LeakageExceeded {
		t.Errorf("budget of %v bits flagged exceeded at %v leaked", cfg.LeakageBudgetBits, stats.LeakedBits)
	}
	if stats.LeakageBudgetBits != cfg.LeakageBudgetBits {
		t.Errorf("budget echoed as %v, want %v", stats.LeakageBudgetBits, cfg.LeakageBudgetBits)
	}
}

// TestAdversaryReplayOfLiveRun closes the ROADMAP "adversary-side
// validation of the service" loop: the rate-change history a live
// dynamic-schedule run publishes is replayed through internal/adversary's
// schedule reconstruction, and the information the adversary recovers must
// equal — exactly, not approximately — the leaked_bits the service reports.
// Until now this validation existed only for the simulator.
//
// The batched subtest proves the multi-path backend's k and K introduce no
// new accounting terms: they reshape what happens inside a slot, not when
// slots happen, so the reconstruction from the same public rate-change
// history still matches the reported leakage exactly.
func TestAdversaryReplayOfLiveRun(t *testing.T) {
	t.Run("flat", func(t *testing.T) {
		adversaryReplayOfLiveRun(t, func(*Config) {})
	})
	t.Run("batched", func(t *testing.T) {
		adversaryReplayOfLiveRun(t, func(cfg *Config) {
			cfg.Backend = BackendBatched
			cfg.BatchK = 4
			cfg.EvictEvery = 4
		})
	})
}

func adversaryReplayOfLiveRun(t *testing.T, mutate func(*Config)) {
	cfg := Config{
		Shards:        2,
		Blocks:        256,
		BlockBytes:    64,
		ClockHz:       1_000_000,
		ORAMLatency:   5,
		Rates:         []uint64{45, 195, 495, 995},
		InitialRate:   995,
		EpochFirstLen: 20_000, // 20 ms, growth 2: several transitions in 400 ms
		EpochGrowth:   2,
	}
	mutate(&cfg)
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 64)
	deadline := time.Now().Add(400 * time.Millisecond)
	for i := uint64(0); time.Now().Before(deadline); i++ {
		addr := i % 256
		FillPayload(buf, addr, 0, i)
		if err := st.Write(addr, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Read(addr); err != nil {
			t.Fatal(err)
		}
	}

	stats := st.Stats()
	var total float64
	for _, sh := range stats.Shards {
		rec := adversary.ReconstructSchedule(sh.RateChanges, len(cfg.Rates))
		if rec.Transitions == 0 {
			t.Fatalf("shard %d crossed no epoch boundary in 400 ms of 20 ms-seeded epochs", sh.Shard)
		}
		// The reconstruction and the service's accountant compute the same
		// quantity independently; they must agree bit for bit.
		if math.Abs(rec.Bits-sh.LeakedBits) > 1e-12 {
			t.Errorf("shard %d: adversary reconstructs %v bits, service reports %v",
				sh.Shard, rec.Bits, sh.LeakedBits)
		}
		// Every reconstructed post-epoch-0 rate must be one of the |R|
		// choices the account charges lg|R| bits for (this is what the
		// InitialRate validation protects).
		for i, r := range rec.Rates {
			if i == 0 {
				continue
			}
			member := false
			for _, allowed := range cfg.Rates {
				if r == allowed {
					member = true
				}
			}
			if !member {
				t.Errorf("shard %d: reconstructed epoch-%d rate %d outside R=%v", sh.Shard, i, r, cfg.Rates)
			}
		}
		total += rec.Bits
	}
	if math.Abs(total-stats.LeakedBits) > 1e-12 {
		t.Errorf("adversary total %v bits != store leaked_bits %v", total, stats.LeakedBits)
	}
}

// TestLeakageBudgetTrips: a tiny budget must flag an overrun once epoch
// transitions spend it. Transitions are clock events, so an idle store
// spends budget too — each boundary still publishes a rate choice.
func TestLeakageBudgetTrips(t *testing.T) {
	st, err := New(Config{
		Shards:            1,
		Blocks:            64,
		BlockBytes:        64,
		ClockHz:           1_000_000,
		ORAMLatency:       5,
		Rates:             []uint64{45, 195, 495, 995},
		EpochFirstLen:     10_000, // 10 ms, growth 2: boundaries at 10/30/70 ms
		EpochGrowth:       2,
		LeakageBudgetBits: 1, // first 2-bit transition blows it
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var stats Stats
	deadline := time.Now().Add(2 * time.Second)
	for {
		time.Sleep(20 * time.Millisecond)
		stats = st.Stats()
		if stats.Transitions() > 0 || time.Now().After(deadline) {
			break
		}
	}
	if stats.Transitions() == 0 {
		t.Fatal("no epoch transitions within 2 s of 10 ms-seeded epochs")
	}
	if !stats.LeakageExceeded {
		t.Errorf("1-bit budget not flagged exceeded after %v bits leaked", stats.LeakedBits)
	}
}

func TestStoreImplementsKV(t *testing.T) {
	var _ KV = (*Store)(nil)
	var _ KV = (*Client)(nil)
}

func TestShardStatsString(t *testing.T) {
	// Ensure the stats marshal cleanly for the daemon's stats op.
	st, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := st.Stats()
	if got := fmt.Sprintf("%d", len(s.Shards)); got != "2" {
		t.Fatalf("shards = %s", got)
	}
}
