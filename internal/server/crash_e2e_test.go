package server

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"tcoram/internal/workload"
)

// TestEndToEndFileStore is the durable-tier acceptance run: the full
// scenario sweep over TCP against a paced daemon whose shards live in
// bucket files under a temp dir, with a periodic checkpoint cadence. Zero
// lost, zero corrupted — and the storage-tier counters must show the file
// store actually serving.
func TestEndToEndFileStore(t *testing.T) {
	cfg := Config{
		Shards:          4,
		Blocks:          1024,
		BlockBytes:      64,
		ClockHz:         1_000_000,
		ORAMLatency:     200,
		Rates:           []uint64{1800},
		Store:           StoreFile,
		DataDir:         t.TempDir(),
		CheckpointEvery: 16,
		CacheBuckets:    64, // smaller than the tree: exercise eviction + reload
	}
	_, addr := startDaemon(t, cfg)

	statsClient, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	for _, sc := range workload.KVScenarios() {
		sc := sc
		t.Run(string(sc), func(t *testing.T) {
			rep, err := RunLoad(
				func() (KV, error) { return Dial(addr) },
				func() (Stats, error) { return statsClient.Stats() },
				LoadConfig{
					Scenario:     sc,
					Clients:      8,
					OpsPerClient: 100,
					Blocks:       cfg.Blocks,
					BlockBytes:   cfg.BlockBytes,
					Seed:         42,
				})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Lost != 0 {
				t.Errorf("%s: %d lost requests", sc, rep.Lost)
			}
			if rep.Corrupted != 0 {
				t.Errorf("%s: %d corrupted reads", sc, rep.Corrupted)
			}
			if rep.Ops != 800 {
				t.Errorf("%s: completed %d ops, want 800", sc, rep.Ops)
			}
		})
	}

	stats, err := statsClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range stats.Shards {
		if sh.Failed {
			t.Errorf("shard %d reported failure", sh.Shard)
		}
		if sh.Recovery != "fresh" {
			t.Errorf("shard %d boot outcome %q, want fresh", sh.Shard, sh.Recovery)
		}
		if sh.CacheMisses == 0 || sh.FileReads == 0 {
			t.Errorf("shard %d: a %d-bucket cache served the sweep without touching its file (misses=%d reads=%d)",
				sh.Shard, cfg.CacheBuckets, sh.CacheMisses, sh.FileReads)
		}
		if sh.Checkpoints == 0 {
			t.Errorf("shard %d wrote no checkpoints at cadence %d", sh.Shard, cfg.CheckpointEvery)
		}
	}
}

// TestCrashRecoveryEndToEnd is the kill−9 acceptance: a real oramd process
// with -store file and -checkpoint-every 1 (acks deferred until the
// covering checkpoint is durable) is SIGKILLed mid-run; a second process
// restarted over the same -data-dir must recover every acknowledged write,
// with integrity passing — exactly the paper's trust model carried to disk:
// the files are untrusted, the sealed checkpoint re-verifies them.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs external daemons")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "oramd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "tcoram/cmd/oramd").CombinedOutput(); err != nil {
		t.Fatalf("building oramd: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	addr := freeLoopbackPort(t)
	args := []string{
		"-addr", addr,
		"-shards", "2",
		"-blocks", "256",
		"-olat", "5",
		"-rates", "45",
		"-store", "file",
		"-data-dir", dataDir,
		"-checkpoint-every", "1",
	}
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	dial := func() *RetryClient {
		c, err := RetryDial(addr, RetryConfig{
			Attempts: 200,
			Backoff:  Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("daemon at %s never came up: %v", addr, err)
		}
		return c
	}

	daemon := start()
	c := dial()
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf("acked-%03d", i))
	}
	// Sequential writes over a wrapping address pattern; every returned ack
	// is durable by protocol, so acked[] is exactly what recovery owes us.
	acked := make(map[uint64][]byte)
	for i := 0; i < 150; i++ {
		addr := uint64(i*7) % 256
		if err := c.Write(addr, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[addr] = payload(i)
	}

	// SIGKILL: no shutdown checkpoint, no flush, connections die raw.
	daemon.Process.Kill()
	daemon.Wait()
	c.Close()

	start()
	c2 := dial()
	defer c2.Close()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.Shards {
		if sh.Recovery != "recovered" {
			t.Errorf("shard %d reboot outcome %q, want recovered", sh.Shard, sh.Recovery)
		}
		if sh.Failed {
			t.Errorf("shard %d failed after recovery", sh.Shard)
		}
	}
	for addr, want := range acked {
		got, err := c2.Read(addr)
		if err != nil {
			t.Fatalf("reading acked block %d after crash recovery: %v", addr, err)
		}
		if !bytes.HasPrefix(got, want) {
			t.Errorf("acked block %d reads %q after crash recovery, want prefix %q", addr, got[:len(want)], want)
		}
	}
	// The recovered daemon keeps serving: new writes land and read back.
	if err := c2.Write(9, []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read(9)
	if err != nil || !bytes.HasPrefix(got, []byte("post-crash")) {
		t.Fatalf("post-recovery write/read: %q %v", got, err)
	}
}

// TestCrashRecoveryDeltaChainEndToEnd is the kill−9 acceptance for the delta
// checkpoint chain: a real oramd with -checkpoint-mode delta and a tiny
// -delta-compact-after (so the run crosses several chain folds) is SIGKILLed
// mid-run — possibly mid-delta-write — and a restart over the same data dir
// must replay base + chain and recover every acknowledged write. A planted
// orphan delta tmp file checks the boot-time sweep of interrupted writes.
func TestCrashRecoveryDeltaChainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs external daemons")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "oramd")
	if out, err := exec.Command(goBin, "build", "-o", bin, "tcoram/cmd/oramd").CombinedOutput(); err != nil {
		t.Fatalf("building oramd: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	addr := freeLoopbackPort(t)
	args := []string{
		"-addr", addr,
		"-shards", "2",
		"-blocks", "256",
		"-olat", "5",
		"-rates", "45",
		"-store", "file",
		"-data-dir", dataDir,
		"-checkpoint-every", "1",
		"-checkpoint-mode", "delta",
		"-delta-compact-after", "65536",
	}
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, args...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	dial := func() *RetryClient {
		c, err := RetryDial(addr, RetryConfig{
			Attempts: 200,
			Backoff:  Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("daemon at %s never came up: %v", addr, err)
		}
		return c
	}

	daemon := start()
	c := dial()
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf("acked-%03d", i))
	}
	acked := make(map[uint64][]byte)
	for i := 0; i < 150; i++ {
		addr := uint64(i*7) % 256
		if err := c.Write(addr, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[addr] = payload(i)
	}

	daemon.Process.Kill()
	daemon.Wait()
	c.Close()

	// An interrupted delta write leaves a tmp file; plant one to pin the
	// boot-time sweep even if the kill landed between checkpoints.
	orphan := filepath.Join(dataDir, "shard-0000", "delta-999999.tmp")
	if err := os.WriteFile(orphan, []byte("torn write"), 0o600); err != nil {
		t.Fatal(err)
	}

	start()
	c2 := dial()
	defer c2.Close()
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.Shards {
		if sh.Recovery != "recovered" {
			t.Errorf("shard %d reboot outcome %q, want recovered", sh.Shard, sh.Recovery)
		}
		if sh.Failed {
			t.Errorf("shard %d failed after recovery", sh.Shard)
		}
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned delta tmp survived the boot sweep (stat err %v)", err)
	}
	for addr, want := range acked {
		got, err := c2.Read(addr)
		if err != nil {
			t.Fatalf("reading acked block %d after chain recovery: %v", addr, err)
		}
		if !bytes.HasPrefix(got, want) {
			t.Errorf("acked block %d reads %q after chain recovery, want prefix %q", addr, got[:len(want)], want)
		}
	}
	if err := c2.Write(9, []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read(9)
	if err != nil || !bytes.HasPrefix(got, []byte("post-crash")) {
		t.Fatalf("post-recovery write/read: %q %v", got, err)
	}
}

// freeLoopbackPort reserves an ephemeral loopback port and releases it for
// a daemon to bind (the tiny reuse race is acceptable on loopback).
func freeLoopbackPort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return fmt.Sprintf("127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
}
