package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// TestIsRecoverable pins the error taxonomy the cluster's failover runs on:
// transport-level failures are recoverable (the same request may succeed on
// a replica or a fresh connection), application-level rejections are not
// (every replica would answer the same way).
func TestIsRecoverable(t *testing.T) {
	recoverable := []error{
		ErrClientClosed,
		net.ErrClosed,
		io.EOF,
		io.ErrUnexpectedEOF,
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		fmt.Errorf("dial: %w", syscall.ECONNREFUSED), // wrapped
		&net.OpError{Op: "read", Err: errors.New("timeout")},
	}
	for _, err := range recoverable {
		if !IsRecoverable(err) {
			t.Errorf("IsRecoverable(%v) = false, want true", err)
		}
	}
	fatal := []error{
		nil,
		&RemoteError{Msg: "address 9 out of range (4 blocks)"},
		fmt.Errorf("op failed: %w", &RemoteError{Msg: "store closed"}), // wrapped
		errors.New("something else entirely"),
	}
	for _, err := range fatal {
		if IsRecoverable(err) {
			t.Errorf("IsRecoverable(%v) = true, want false", err)
		}
	}
}

// TestClientErrorTaxonomy: a well-formed negative response surfaces as a
// *RemoteError while a connection death surfaces as the transport error —
// the distinction every failover decision rests on.
func TestClientErrorTaxonomy(t *testing.T) {
	st, err := New(Config{Shards: 1, Blocks: 16, BlockBytes: 64, Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, st)

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Read(999) // out of range: the daemon answers "no"
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("out-of-range read returned %T (%v), want *RemoteError", err, err)
	}
	if IsRecoverable(err) {
		t.Error("an application rejection classified recoverable — failover would retry it forever")
	}

	cl2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl2.conn.Close() // the transport dies under the client
	_, err = cl2.Read(0)
	if err == nil {
		t.Fatal("read over a dead connection succeeded")
	}
	if errors.As(err, &remote) {
		t.Fatalf("connection death disguised as a remote rejection: %v", err)
	}
	if !IsRecoverable(err) {
		t.Errorf("connection death classified fatal: %v", err)
	}
}

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
	if (Backoff{}).Delay(0) <= 0 {
		t.Error("zero-value backoff has no delay")
	}
}

// TestRetryClientSurvivesConnectionLoss: killing the client's TCP connection
// mid-session costs one redial, not a failed operation — the property that
// lets loadgen ride out a daemon/proxy restart.
func TestRetryClientSurvivesConnectionLoss(t *testing.T) {
	st, err := New(Config{Shards: 1, Blocks: 16, BlockBytes: 64, Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, st)

	rc, err := RetryDial(l.Addr().String(), RetryConfig{Attempts: 3, Backoff: Backoff{Base: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	buf := make([]byte, 64)
	FillPayload(buf, 3, 1, 1)
	if err := rc.Write(3, buf); err != nil {
		t.Fatal(err)
	}

	// Sever the live connection out from under the client.
	rc.mu.Lock()
	rc.cl.conn.Close()
	rc.mu.Unlock()

	data, err := rc.Read(3)
	if err != nil {
		t.Fatalf("read after connection loss: %v", err)
	}
	if err := CheckPayload(data, 3); err != nil {
		t.Fatal(err)
	}
	if rc.Redials() == 0 {
		t.Error("connection loss survived without a recorded redial")
	}

	// Application rejections pass through without consuming the redial
	// budget's sleep path.
	var remote *RemoteError
	if _, err := rc.Read(999); !errors.As(err, &remote) {
		t.Errorf("out-of-range read through RetryClient returned %v, want *RemoteError", err)
	}
}

// TestRetryClientClosedStaysClosed: Close is not survived by a redial — a
// closed client must not resurrect its socket on the next call.
func TestRetryClientClosedStaysClosed(t *testing.T) {
	st, err := New(Config{Shards: 1, Blocks: 16, BlockBytes: 64, Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, st)

	rc, err := RetryDial(l.Addr().String(), RetryConfig{Attempts: 3, Backoff: Backoff{Base: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Read(0); !errors.Is(err, ErrClientClosed) {
		t.Errorf("read on a closed RetryClient returned %v, want ErrClientClosed", err)
	}
	if rc.Redials() != 0 {
		t.Errorf("closed client redialed %d times", rc.Redials())
	}
}

// TestRetryDialWaitsForServer: the initial dial retries under the same
// backoff policy, so a client can be created while its daemon is still
// coming up — the harness shape of every multi-process e2e.
func TestRetryDialWaitsForServer(t *testing.T) {
	// Reserve an address, then start listening on it only after a delay.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	st, err := New(Config{Shards: 1, Blocks: 16, BlockBytes: 64, Unpaced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	go func() {
		time.Sleep(30 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; RetryDial will fail and the test report it
		}
		go Serve(l2, st)
	}()

	rc, err := RetryDial(addr, RetryConfig{Attempts: 20, Backoff: Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}})
	if err != nil {
		t.Fatalf("RetryDial did not outwait daemon startup: %v", err)
	}
	defer rc.Close()
	if err := rc.Ping(); err != nil {
		t.Fatal(err)
	}
}
