package server

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcoram/internal/sim"
	"tcoram/internal/workload"
)

// This file is the load-generation driver shared by cmd/loadgen and the
// end-to-end tests: a pool of client goroutines replays deterministic
// workload.KVStream scenarios against any KV implementation (the in-process
// Store or a TCP Client), validating every read and reporting a
// sim.ServiceReport.

// KV is the data surface of the service, satisfied by *Store, *Client,
// *RetryClient, and the cluster router: untenanted single ops, their
// tenant-tagged forms, and the batch verb the contact-discovery path runs
// on. Read/Write are the degenerate untenanted forms every implementation
// defines as TenantRead("", …)/TenantWrite("", …).
type KV interface {
	Read(addr uint64) ([]byte, error)
	Write(addr uint64, data []byte) error
	// TenantRead and TenantWrite are Read/Write charged to tenant's
	// leakage sub-budget ("" = untenanted).
	TenantRead(tenant string, addr uint64) ([]byte, error)
	TenantWrite(tenant string, addr uint64, data []byte) error
	// ReadBatch serves up to the implementation's batch limit of addresses
	// in one round: whole-batch failures return an error, per-address
	// failures land in the index-aligned results.
	ReadBatch(tenant string, addrs []uint64) ([]BatchResult, error)
}

// payload layout for verifiable blocks: a magic tag, the block's own
// address, and the writer/sequence pair. Blocks never written read as all
// zeroes; anything else must carry the magic and the matching address or
// the read is counted corrupted (a cross-block mixup, torn write, or
// routing error).
const (
	payloadMagic = uint32(0x54434f52) // "TCOR"
	payloadBytes = 4 + 8 + 4 + 8
)

// FillPayload encodes a verifiable record for addr into buf (len ≥
// payloadBytes).
func FillPayload(buf []byte, addr uint64, writer uint32, seq uint64) {
	binary.LittleEndian.PutUint32(buf[0:], payloadMagic)
	binary.LittleEndian.PutUint64(buf[4:], addr)
	binary.LittleEndian.PutUint32(buf[12:], writer)
	binary.LittleEndian.PutUint64(buf[16:], seq)
}

// CheckPayload validates a read: all-zero (never written) or a well-formed
// record for the same address.
func CheckPayload(buf []byte, addr uint64) error {
	if len(buf) < payloadBytes {
		return fmt.Errorf("short read: %d bytes", len(buf))
	}
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return nil
	}
	if got := binary.LittleEndian.Uint32(buf[0:]); got != payloadMagic {
		return fmt.Errorf("bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint64(buf[4:]); got != addr {
		return fmt.Errorf("payload for block %d surfaced at block %d", got, addr)
	}
	return nil
}

// LoadConfig describes one load scenario run.
type LoadConfig struct {
	Scenario workload.KVScenario
	// Clients is the number of concurrent driver goroutines (default 8).
	Clients int
	// OpsPerClient is the number of operations each client performs
	// (default 200).
	OpsPerClient int
	// Blocks is the address space the scenario covers; must not exceed the
	// serving store's (default 4096).
	Blocks uint64
	// BlockBytes sizes write payloads (default 64; min payloadBytes).
	BlockBytes int
	// Seed makes the run reproducible (default 1).
	Seed int64
	// Tenant tags every operation for the serving side's per-tenant
	// leakage accountant ("" = untenanted).
	Tenant string
	// BatchSize > 1 groups consecutive reads into ReadBatch submissions of
	// up to this many addresses (writes and think-time pauses flush the
	// pending batch first) — the contact-discovery submission shape.
	// 0 or 1 sends every op through the single-op verbs.
	BatchSize int
	// WAN, when enabled, shapes every client's link: ops serialize through
	// WAN.KBps of bandwidth and pay WAN.RTT of propagation delay.
	WAN WANConfig
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Scenario == "" {
		c.Scenario = workload.KVUniform
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 200
	}
	if c.Blocks == 0 {
		c.Blocks = 4096
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunLoad drives one scenario: Clients goroutines each obtain a KV from
// dial (dial may return the same shared KV every time — *Client multiplexes
// — or a fresh connection per client) and replay OpsPerClient deterministic
// operations. RunLoad never closes what dial returns (it cannot know
// whether connections are shared); the caller owns their lifecycle.
// statsFn, when non-nil, is sampled before and after so the report carries
// the observed real/dummy access deltas; pass nil when the server's stats
// are unreachable.
func RunLoad(dial func() (KV, error), statsFn func() (Stats, error), cfg LoadConfig) (sim.ServiceReport, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockBytes < payloadBytes {
		return sim.ServiceReport{}, fmt.Errorf("server: BlockBytes %d < verifiable payload %d", cfg.BlockBytes, payloadBytes)
	}

	var before Stats
	if statsFn != nil {
		var err error
		if before, err = statsFn(); err != nil {
			return sim.ServiceReport{}, fmt.Errorf("server: sampling stats: %w", err)
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		reads     atomic.Uint64
		writes    atomic.Uint64
		lost      atomic.Uint64
		corrupted atomic.Uint64
		firstErr  atomic.Pointer[error]
	)
	start := time.Now()
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			kv, err := dial()
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				lost.Add(uint64(cfg.OpsPerClient))
				return
			}
			kv = WrapWAN(kv, cfg.WAN)
			// Scan clients start at disjoint offsets so together they sweep
			// the space instead of stampeding the same blocks.
			startAddr := uint64(cl) * (cfg.Blocks / uint64(cfg.Clients))
			stream, err := workload.NewKVStream(cfg.Scenario, cfg.Blocks, cfg.Seed+int64(cl)*7919, startAddr)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				lost.Add(uint64(cfg.OpsPerClient))
				return
			}
			buf := make([]byte, cfg.BlockBytes)
			local := make([]time.Duration, 0, cfg.OpsPerClient)
			var pending []uint64
			// flush submits the accumulated reads as one batch_read. Each
			// member observes the whole batch's round-trip latency — that is
			// what a contact-discovery client experiences for every address
			// in its submission.
			flush := func() {
				if len(pending) == 0 {
					return
				}
				t0 := time.Now()
				results, err := kv.ReadBatch(cfg.Tenant, pending)
				if err != nil {
					lost.Add(uint64(len(pending)))
					pending = pending[:0]
					return
				}
				batchLat := time.Since(t0)
				for i, r := range results {
					if r.Err != nil {
						lost.Add(1)
						continue
					}
					if err := CheckPayload(r.Data, pending[i]); err != nil {
						corrupted.Add(1)
					}
					reads.Add(1)
					local = append(local, batchLat)
				}
				pending = pending[:0]
			}
			for i := 0; i < cfg.OpsPerClient; i++ {
				op := stream.Next()
				if op.Pause > 0 {
					// Think time of the phase-shifting scenarios: offered
					// load, not service latency, so it precedes the clock —
					// and closes the current batch, as a real client's
					// submission would end.
					flush()
					time.Sleep(op.Pause)
				}
				if cfg.BatchSize > 1 && !op.Write {
					pending = append(pending, op.Addr)
					if len(pending) >= cfg.BatchSize {
						flush()
					}
					continue
				}
				if op.Write {
					flush() // a write closes the submission in progress
				}
				t0 := time.Now()
				if op.Write {
					FillPayload(buf, op.Addr, uint32(cl), uint64(i))
					if err := kv.TenantWrite(cfg.Tenant, op.Addr, buf); err != nil {
						lost.Add(1)
						continue
					}
					writes.Add(1)
				} else {
					data, err := kv.TenantRead(cfg.Tenant, op.Addr)
					if err != nil {
						lost.Add(1)
						continue
					}
					if err := CheckPayload(data, op.Addr); err != nil {
						corrupted.Add(1)
					}
					reads.Add(1)
				}
				local = append(local, time.Since(t0))
			}
			flush()
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := sim.ServiceReport{
		Scenario:  string(cfg.Scenario),
		Clients:   cfg.Clients,
		Ops:       reads.Load() + writes.Load(),
		Reads:     reads.Load(),
		Writes:    writes.Load(),
		Elapsed:   elapsed,
		Latency:   sim.SummarizeLatencies(latencies),
		Lost:      lost.Load(),
		Corrupted: corrupted.Load(),
	}
	if statsFn != nil {
		after, err := statsFn()
		if err != nil {
			return rep, fmt.Errorf("server: sampling stats: %w", err)
		}
		br, bd, _ := before.Totals()
		ar, ad, _ := after.Totals()
		rep.RealAccesses = ar - br
		rep.DummyAccesses = ad - bd
		rep.Shards = len(after.Shards)
		rep.RateChanges = after.Transitions() - before.Transitions()
		rep.LeakedBits = after.LeakedBits - before.LeakedBits
	}
	if ep := firstErr.Load(); ep != nil {
		return rep, *ep
	}
	return rep, nil
}
