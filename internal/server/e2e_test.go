package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"tcoram/internal/workload"
)

// startDaemon serves a store on an ephemeral TCP port and returns its
// address. The listener dies with the test.
func startDaemon(t *testing.T, cfg Config) (*Store, string) {
	t.Helper()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	go Serve(l, st)
	t.Cleanup(func() {
		l.Close()
		st.Close()
	})
	return st, l.Addr().String()
}

// TestEndToEndAllScenarios is the acceptance run: loadgen over TCP against
// an in-process oramd with 4 shards and 8 concurrent clients completes
// every scenario with zero lost and zero corrupted reads.
func TestEndToEndAllScenarios(t *testing.T) {
	// 2 ms slot period per shard: fast enough that 4 shards serve 800 ops
	// in about a second, slow enough that four pacing loops plus eight
	// clients don't saturate a 1-vCPU CI box under the race detector
	// (where one ORAM access costs tens of µs).
	cfg := Config{
		Shards:      4,
		Blocks:      1024,
		BlockBytes:  64,
		ClockHz:     1_000_000,
		ORAMLatency: 200,
		Rates:       []uint64{1800},
	}
	_, addr := startDaemon(t, cfg)

	statsClient, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	for _, sc := range workload.KVScenarios() {
		sc := sc
		t.Run(string(sc), func(t *testing.T) {
			rep, err := RunLoad(
				func() (KV, error) { return Dial(addr) },
				func() (Stats, error) { return statsClient.Stats() },
				LoadConfig{
					Scenario:     sc,
					Clients:      8,
					OpsPerClient: 100,
					Blocks:       cfg.Blocks,
					BlockBytes:   cfg.BlockBytes,
					Seed:         42,
				})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Lost != 0 {
				t.Errorf("%s: %d lost requests", sc, rep.Lost)
			}
			if rep.Corrupted != 0 {
				t.Errorf("%s: %d corrupted reads", sc, rep.Corrupted)
			}
			if rep.Ops != 800 {
				t.Errorf("%s: completed %d ops, want 800", sc, rep.Ops)
			}
			if rep.RealAccesses == 0 {
				t.Errorf("%s: no real ORAM accesses recorded", sc)
			}
			if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P99 {
				t.Errorf("%s: implausible latency summary %+v", sc, rep.Latency)
			}
			if rep.Throughput() <= 0 {
				t.Errorf("%s: zero throughput", sc)
			}
		})
	}

	// The paced server keeps its grid running between and during scenarios,
	// so some slots must have carried dummies overall.
	stats, err := statsClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	_, dummy, _ := stats.Totals()
	if dummy == 0 {
		t.Error("no dummy accesses across the whole run — pacing inactive?")
	}
	for _, sh := range stats.Shards {
		if sh.Failed {
			t.Errorf("shard %d reported failure", sh.Shard)
		}
	}
}

// TestEndToEndRecursiveIntegrity is the recursive-backend acceptance run:
// the same TCP loadgen drill, but every shard serves from a 3-tree
// recursive Path ORAM stack with Merkle integrity verification on every
// level. All scenarios must complete with zero lost and zero corrupted
// operations — the backend swap may not change the service's semantics.
func TestEndToEndRecursiveIntegrity(t *testing.T) {
	// A recursive access traverses all levels and hashes every bucket it
	// touches, so one slot costs several times a flat access (hundreds of
	// µs under -race on a 1-vCPU box): a 3 ms slot period keeps four pacing
	// loops comfortably inside their budget while 400 ops per scenario
	// still finish in under a second.
	cfg := Config{
		Shards:      4,
		Blocks:      1024,
		BlockBytes:  64,
		Backend:     BackendRecursive,
		Recursion:   2,
		Integrity:   true,
		ClockHz:     1_000_000,
		ORAMLatency: 300,
		Rates:       []uint64{2700},
	}
	_, addr := startDaemon(t, cfg)

	statsClient, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	for _, sc := range workload.KVScenarios() {
		sc := sc
		t.Run(string(sc), func(t *testing.T) {
			rep, err := RunLoad(
				func() (KV, error) { return Dial(addr) },
				func() (Stats, error) { return statsClient.Stats() },
				LoadConfig{
					Scenario:     sc,
					Clients:      8,
					OpsPerClient: 50,
					Blocks:       cfg.Blocks,
					BlockBytes:   cfg.BlockBytes,
					Seed:         43,
				})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Lost != 0 {
				t.Errorf("%s: %d lost requests", sc, rep.Lost)
			}
			if rep.Corrupted != 0 {
				t.Errorf("%s: %d corrupted reads", sc, rep.Corrupted)
			}
			if rep.Ops != 400 {
				t.Errorf("%s: completed %d ops, want 400", sc, rep.Ops)
			}
			if rep.RealAccesses == 0 {
				t.Errorf("%s: no real ORAM accesses recorded", sc)
			}
		})
	}

	stats, err := statsClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	_, dummy, _ := stats.Totals()
	if dummy == 0 {
		t.Error("no dummy accesses across the whole run — pacing inactive?")
	}
	for _, sh := range stats.Shards {
		if sh.Failed {
			t.Errorf("shard %d reported failure", sh.Shard)
		}
		// The per-level stash breakdown must survive the wire round trip.
		if len(sh.StashPeaks) != 1+cfg.Recursion {
			t.Errorf("shard %d StashPeaks over the wire = %v, want %d levels",
				sh.Shard, sh.StashPeaks, 1+cfg.Recursion)
		}
	}
}

// TestEndToEndBatched is the batched-backend acceptance run: the same TCP
// loadgen drill, but every shard serves up to k=4 blocks per slot from a
// multi-path batched stack with deferred background eviction. All scenarios
// must complete with zero lost and zero corrupted operations — the batching
// may not change the service's semantics, only how much each slot carries.
func TestEndToEndBatched(t *testing.T) {
	// A batched slot fetches k data paths plus an amortized share of the
	// eviction pass (~2k path read+writes per K slots), so one slot costs a
	// few times a flat access; a 3 ms slot period keeps four pacing loops
	// inside their budget under -race while still finishing 400 ops per
	// scenario in about a second at k=4 per slot.
	cfg := Config{
		Shards:      4,
		Blocks:      1024,
		BlockBytes:  64,
		Backend:     BackendBatched,
		BatchK:      4,
		EvictEvery:  4,
		ClockHz:     1_000_000,
		ORAMLatency: 300,
		Rates:       []uint64{2700},
	}
	_, addr := startDaemon(t, cfg)

	statsClient, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer statsClient.Close()

	for _, sc := range workload.KVScenarios() {
		sc := sc
		t.Run(string(sc), func(t *testing.T) {
			rep, err := RunLoad(
				func() (KV, error) { return Dial(addr) },
				func() (Stats, error) { return statsClient.Stats() },
				LoadConfig{
					Scenario:     sc,
					Clients:      8,
					OpsPerClient: 50,
					Blocks:       cfg.Blocks,
					BlockBytes:   cfg.BlockBytes,
					Seed:         44,
				})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Lost != 0 {
				t.Errorf("%s: %d lost requests", sc, rep.Lost)
			}
			if rep.Corrupted != 0 {
				t.Errorf("%s: %d corrupted reads", sc, rep.Corrupted)
			}
			if rep.Ops != 400 {
				t.Errorf("%s: completed %d ops, want 400", sc, rep.Ops)
			}
			if rep.RealAccesses == 0 {
				t.Errorf("%s: no real ORAM accesses recorded", sc)
			}
		})
	}

	stats, err := statsClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	_, dummy, _ := stats.Totals()
	if dummy == 0 {
		t.Error("no dummy accesses across the whole run — pacing inactive?")
	}
	var fetched uint64
	for _, sh := range stats.Shards {
		if sh.Failed {
			t.Errorf("shard %d reported failure", sh.Shard)
		}
		// The batch counters and stash breakdown must survive the wire.
		if len(sh.StashPeaks) != 1 {
			t.Errorf("shard %d StashPeaks over the wire = %v, want 1 level", sh.Shard, sh.StashPeaks)
		}
		fetched += sh.BatchFetched
	}
	if fetched == 0 {
		t.Error("no BatchFetched blocks reported over the wire")
	}
}

// TestDaemonProtocolErrors exercises malformed input and error mapping over
// a real socket.
func TestDaemonProtocolErrors(t *testing.T) {
	_, addr := startDaemon(t, Config{
		Shards: 2, Blocks: 64, BlockBytes: 64,
		ClockHz: 1_000_000, ORAMLatency: 200, Rates: []uint64{800},
	})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := c.Read(9999); err == nil {
		t.Error("out-of-range read succeeded over the wire")
	}
	// The connection survives request-level errors.
	if err := c.Write(3, []byte("ok")); err != nil {
		t.Fatalf("write after error: %v", err)
	}
	got, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:2]) != "ok" {
		t.Fatalf("read back %q", got[:2])
	}

	// Raw garbage on a fresh socket gets an error response, not a hang.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, err := raw.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("no response to garbage: n=%d err=%v", n, err)
	}
}

// TestDaemonMalformedLineZeroID: a pipelined malformed line must be
// answered with id 0 — never with whatever id the decoder managed to pull
// out before failing, which would misattribute the error to a live request.
func TestDaemonMalformedLineZeroID(t *testing.T) {
	_, addr := startDaemon(t, Config{
		Shards: 2, Blocks: 64, BlockBytes: 64,
		ClockHz: 1_000_000, ORAMLatency: 200, Rates: []uint64{800},
	})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// The middle line decodes id 9 before hitting the parse error; the old
	// code would echo 9, colliding with a legitimate pipelined request.
	lines := `{"id":7,"op":"ping"}` + "\n" +
		`{"id":9,"op":"read","addr":}` + "\n" +
		`{"id":8,"op":"ping"}` + "\n"
	if _, err := raw.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(raw)
	var resps []Response
	for len(resps) < 3 && sc.Scan() {
		var r Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("undecodable response %q: %v", sc.Bytes(), err)
		}
		resps = append(resps, r)
	}
	if len(resps) < 3 {
		t.Fatalf("got %d responses, want 3 (scanner err %v)", len(resps), sc.Err())
	}
	// Pings and parse errors are answered inline, so order is deterministic.
	if !resps[0].OK || resps[0].ID != 7 {
		t.Errorf("first response = %+v, want ok ping id 7", resps[0])
	}
	if resps[1].OK || resps[1].ID != 0 {
		t.Errorf("malformed-line response = %+v, want error with id 0", resps[1])
	}
	if !strings.Contains(resps[1].Err, "bad request") {
		t.Errorf("malformed-line error %q does not say bad request", resps[1].Err)
	}
	if !resps[2].OK || resps[2].ID != 8 {
		t.Errorf("third response = %+v, want ok ping id 8", resps[2])
	}
}

// TestDaemonOversizedLineDiagnostic: blowing the line-length limit must
// produce a final zero-ID error naming the cause before the daemon closes
// the connection — not a silent hangup.
func TestDaemonOversizedLineDiagnostic(t *testing.T) {
	_, addr := startDaemon(t, Config{
		Shards: 2, Blocks: 64, BlockBytes: 64,
		ClockHz: 1_000_000, ORAMLatency: 200, Rates: []uint64{800},
	})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// One newline-free line just past maxLineBytes trips bufio.ErrTooLong.
	junk := bytes.Repeat([]byte{'x'}, maxLineBytes+16)
	if _, err := raw.Write(junk); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(raw)
	if !sc.Scan() {
		t.Fatalf("connection closed with no diagnostic (scanner err %v)", sc.Err())
	}
	var r Response
	if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
		t.Fatalf("undecodable diagnostic %q: %v", sc.Bytes(), err)
	}
	if r.OK || r.ID != 0 {
		t.Errorf("diagnostic = %+v, want error with id 0", r)
	}
	if !strings.Contains(r.Err, "too long") {
		t.Errorf("diagnostic %q does not name the oversized line", r.Err)
	}
	if sc.Scan() {
		t.Errorf("unexpected extra line after diagnostic: %q", sc.Bytes())
	}
}

// TestClientPipelining: one shared client, many goroutines — the id
// matching must route every response to its caller.
func TestClientPipelining(t *testing.T) {
	_, addr := startDaemon(t, Config{
		Shards: 4, Blocks: 1024, BlockBytes: 64,
		ClockHz: 1_000_000, ORAMLatency: 200, Rates: []uint64{800},
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := RunLoad(
		func() (KV, error) { return c, nil }, // every "client" shares one conn
		func() (Stats, error) { return c.Stats() },
		LoadConfig{Scenario: workload.KVUniform, Clients: 8, OpsPerClient: 50,
			Blocks: 1024, BlockBytes: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 || rep.Corrupted != 0 {
		t.Fatalf("shared-connection run lost=%d corrupted=%d", rep.Lost, rep.Corrupted)
	}
	if rep.Ops != 400 {
		t.Fatalf("ops = %d, want 400", rep.Ops)
	}
}
