package server

import (
	"sync"
	"time"
)

// This file is the bandwidth/latency-shaped transport wrapper: a KV
// decorator that delays every operation by a propagation term (RTT) plus a
// serialization term proportional to the encoded bytes over a configured
// link rate — the BlockOpsConstrained idea from kbfs, applied to the
// JSON-lines protocol. It shapes the *caller's* view of the link (loadgen
// clients, e2e harnesses) without touching the serving side, so throughput
// and learner behavior can be measured under WAN conditions instead of
// loopback.

// WANConfig shapes a simulated wide-area link.
type WANConfig struct {
	// KBps is the link bandwidth in kilobytes per second; every operation's
	// encoded request and response bytes serialize through it. 0 = unlimited.
	KBps int
	// RTT is the round-trip propagation delay added to every operation
	// (half on the request leg, half on the response). 0 = none.
	RTT time.Duration
}

// Enabled reports whether the config shapes anything.
func (c WANConfig) Enabled() bool { return c.KBps > 0 || c.RTT > 0 }

// WrapWAN decorates kv with the shaped link, or returns it unchanged when
// the config is disabled. Each wrapped KV models one client's access link:
// operations from many goroutines sharing the wrapper serialize through the
// same bandwidth, as they would through one uplink.
func WrapWAN(kv KV, cfg WANConfig) KV {
	if !cfg.Enabled() {
		return kv
	}
	return &wanKV{kv: kv, cfg: cfg}
}

// wanKV is the shaping decorator. The link is modeled as a single serial
// resource: each transfer reserves the next free [start, start+duration)
// window under mu, then sleeps until its window closes, so concurrent
// callers queue behind each other exactly as frames do on a real uplink.
type wanKV struct {
	kv  KV
	cfg WANConfig

	mu   sync.Mutex
	free time.Time // when the link next becomes idle
}

// link serializes n bytes through the configured bandwidth.
func (w *wanKV) link(n int) {
	if w.cfg.KBps <= 0 || n <= 0 {
		return
	}
	d := time.Duration(n) * time.Second / time.Duration(w.cfg.KBps*1024)
	w.mu.Lock()
	now := time.Now()
	start := w.free
	if start.Before(now) {
		start = now
	}
	end := start.Add(d)
	w.free = end
	w.mu.Unlock()
	time.Sleep(time.Until(end))
}

// propagate models one direction's propagation delay.
func (w *wanKV) propagate() {
	if w.cfg.RTT > 0 {
		time.Sleep(w.cfg.RTT / 2)
	}
}

// wireBytes approximates one block payload's share of a protocol line:
// base64 expansion plus JSON framing.
func wireBytes(payload int) int {
	return (payload+2)/3*4 + 48
}

func (w *wanKV) shaped(reqBytes int, op func() (respBytes int, err error)) error {
	w.propagate()
	w.link(reqBytes)
	respBytes, err := op()
	w.link(respBytes)
	w.propagate()
	return err
}

func (w *wanKV) Read(addr uint64) ([]byte, error) {
	return w.TenantRead("", addr)
}

func (w *wanKV) Write(addr uint64, data []byte) error {
	return w.TenantWrite("", addr, data)
}

func (w *wanKV) TenantRead(tenant string, addr uint64) (data []byte, err error) {
	err = w.shaped(64, func() (int, error) {
		data, err = w.kv.TenantRead(tenant, addr)
		return wireBytes(len(data)), err
	})
	return data, err
}

func (w *wanKV) TenantWrite(tenant string, addr uint64, data []byte) error {
	return w.shaped(wireBytes(len(data)), func() (int, error) {
		return 48, w.kv.TenantWrite(tenant, addr, data)
	})
}

func (w *wanKV) ReadBatch(tenant string, addrs []uint64) (results []BatchResult, err error) {
	err = w.shaped(48+12*len(addrs), func() (int, error) {
		results, err = w.kv.ReadBatch(tenant, addrs)
		n := 48
		for _, r := range results {
			n += wireBytes(len(r.Data)) + 16
		}
		return n, err
	})
	return results, err
}

var _ KV = (*wanKV)(nil)
