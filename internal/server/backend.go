package server

import (
	"fmt"

	"tcoram/internal/pathoram"
)

// Backend is the ORAM surface a shard's serving loop needs — the seam that
// turns the service from "one hardcoded ORAM type" into a layered
// architecture. A backend is owned by exactly one shard goroutine (the
// shared-state audit in pathoram/shards.go); it must provide:
//
//   - Update: the single-access read-modify-write the request coalescing
//     collapses a same-block batch into;
//   - DummyAccess: an access indistinguishable on the bus from a real one,
//     issued at idle slots to keep the grid data-independent;
//   - EnableIntegrity: Merkle verification over the untrusted storage,
//     before any accesses;
//   - stash occupancy and geometry, for monitoring and sizing.
//
// Both *pathoram.ORAM (single level, flat position map) and
// *pathoram.Recursive (the paper's §9.1.2 stack: position maps stored in
// successively smaller ORAMs, final map on-chip) satisfy it; the compile-
// time assertions below pin that.
type Backend interface {
	Update(addr uint64, fn func(data []byte)) error
	DummyAccess() error
	EnableIntegrity()
	StashOccupancy() (cur, peak int)
	LevelStashPeaks(dst []int) []int
	Blocks() uint64
	BlockBytes() int
}

// BatchBackend is the optional batch entry point a Backend may provide: up
// to BatchK distinct blocks served in one slot via multi-path fetch, with
// dummy paths padding the slot so the storage trace is independent of how
// many real ops the batch carries. A shard whose backend implements this
// drains up to BatchK coalesced groups per slot instead of one.
type BatchBackend interface {
	Backend
	BatchK() int
	AccessBatch(ops []pathoram.BatchOp) error
}

var (
	_ Backend      = (*pathoram.ORAM)(nil)
	_ Backend      = (*pathoram.Recursive)(nil)
	_ BatchBackend = (*pathoram.Batched)(nil)
)

// Backend selector values for Config.Backend.
const (
	// BackendFlat serves each shard from a single-level ORAM with a flat
	// in-memory position map: fastest, but position-map memory grows
	// linearly with the address space.
	BackendFlat = "flat"
	// BackendRecursive serves each shard from a recursive Path ORAM stack:
	// every access traverses all levels (the paper's all-levels traffic),
	// but on-chip position-map state shrinks by the label fan-out per
	// recursion level, serving address spaces a flat map can't hold.
	BackendRecursive = "recursive"
	// BackendBatched serves each shard from a multi-path batched stack: up
	// to BatchK blocks fetched per slot (dummy-padded to a fixed path
	// count) with write-back deferred to a deterministic eviction pass
	// every EvictEvery slots. Composes with Recursion and Integrity.
	BackendBatched = "batched"
)

// recursiveShardConfig derives the per-shard recursive stack shape from the
// store config: each shard holds ceil(Blocks/Shards) data blocks, with the
// paper's 32 B position-map blocks.
func recursiveShardConfig(cfg Config) pathoram.RecursiveConfig {
	perShard := (cfg.Blocks + uint64(cfg.Shards) - 1) / uint64(cfg.Shards)
	return pathoram.RecursiveConfig{
		DataBlocks:       perShard,
		DataBlockBytes:   cfg.BlockBytes,
		PosMapBlockBytes: 32,
		Z:                cfg.Z,
		Recursion:        cfg.Recursion,
	}
}

// batchedShardConfig derives the per-shard batched stack from the store
// config: the recursive shape plus the batching knobs.
func batchedShardConfig(cfg Config) pathoram.BatchedConfig {
	return pathoram.BatchedConfig{
		RecursiveConfig: recursiveShardConfig(cfg),
		BatchK:          cfg.BatchK,
		EvictEvery:      cfg.EvictEvery,
		StashHighWater:  cfg.BatchHighWater,
	}
}

// BackendLabel renders the effective backend configuration for human-
// readable status lines ("flat", "recursive×3+integrity",
// "batched(k=4,K=4)") — shared by both CLIs so the description can't drift
// between them.
func (c Config) BackendLabel() string {
	label := c.Backend
	switch c.Backend {
	case BackendRecursive:
		label = fmt.Sprintf("recursive×%d", c.Recursion)
	case BackendBatched:
		label = fmt.Sprintf("batched(k=%d,K=%d)", c.BatchK, c.EvictEvery)
		if c.Recursion > 0 {
			label = fmt.Sprintf("batched×%d(k=%d,K=%d)", c.Recursion, c.BatchK, c.EvictEvery)
		}
	}
	if c.Integrity {
		label += "+integrity"
	}
	return label
}

// newBackends builds one per-shard ORAM backend of the configured kind,
// with integrity enabled (before any access) when requested. Every backend
// must address at least the shard's ceil(Blocks/Shards) share at the
// configured block size — checked here so a mis-wired backend fails
// construction instead of panicking mid-serve.
//
// For Store == StoreFile each shard is built (or recovered) individually
// over its own data-dir subdirectory, and the returned persisters slice
// carries one checkpoint engine per shard; for the RAM store it is nil.
func newBackends(cfg Config) ([]Backend, []*persister, error) {
	perShard := (cfg.Blocks + uint64(cfg.Shards) - 1) / uint64(cfg.Shards)
	checkShare := func(backends []Backend) error {
		for i, b := range backends {
			// Blocks is the addressable count; a flat tree's capacity may
			// exceed the requested share (power-of-two sizing slack), but
			// never undershoot it.
			if b.Blocks() < perShard || b.BlockBytes() != cfg.BlockBytes {
				return fmt.Errorf("server: shard %d backend addresses %d×%d B, need ≥ %d×%d B",
					i, b.Blocks(), b.BlockBytes(), perShard, cfg.BlockBytes)
			}
		}
		return nil
	}

	if cfg.Store == StoreFile {
		backends := make([]Backend, 0, cfg.Shards)
		persisters := make([]*persister, 0, cfg.Shards)
		fail := func(err error) ([]Backend, []*persister, error) {
			for _, p := range persisters {
				p.closeStores()
			}
			return nil, nil, err
		}
		for i := 0; i < cfg.Shards; i++ {
			b, p, err := newFileShard(cfg, i)
			if err != nil {
				return fail(err)
			}
			if bat, ok := b.(*pathoram.Batched); ok && cfg.TraceSlots {
				bat.TraceSlots = true
			}
			backends = append(backends, b)
			persisters = append(persisters, p)
		}
		// File-backed shards enable integrity during initialization (fresh)
		// or inherit it from recovery; the Merkle roots are what checkpoints
		// bind the untrusted files to, so there is no integrity-off mode.
		if err := checkShare(backends); err != nil {
			return fail(err)
		}
		return backends, persisters, nil
	}

	backends := make([]Backend, 0, cfg.Shards)
	switch cfg.Backend {
	case BackendFlat:
		geom := pathoram.ShardGeometry(cfg.Blocks, cfg.Shards, cfg.Z, cfg.BlockBytes)
		orams, err := pathoram.NewShardSet(cfg.Shards, geom, cfg.Key, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		for _, o := range orams {
			backends = append(backends, o)
		}
	case BackendRecursive:
		recs, err := pathoram.NewRecursiveShardSet(cfg.Shards, recursiveShardConfig(cfg), cfg.Key, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range recs {
			backends = append(backends, r)
		}
	case BackendBatched:
		bats, err := pathoram.NewBatchedShardSet(cfg.Shards, batchedShardConfig(cfg), cfg.Key, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		for _, b := range bats {
			if cfg.TraceSlots {
				b.TraceSlots = true
			}
			backends = append(backends, b)
		}
	default:
		return nil, nil, fmt.Errorf("server: unknown Backend %q (want %q, %q or %q)", cfg.Backend, BackendFlat, BackendRecursive, BackendBatched)
	}
	if err := checkShare(backends); err != nil {
		return nil, nil, err
	}
	if cfg.Integrity {
		for _, b := range backends {
			b.EnableIntegrity()
		}
	}
	return backends, nil, nil
}
