package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcoram/internal/crypt"
	"tcoram/internal/pathoram"
)

// fileStoreCfg is a small Unpaced file-backed config: Unpaced keeps the
// workload deterministic (no wall-clock dummy slots), which the equivalence
// and round-trip assertions rely on.
func fileStoreCfg(dir, backend string) Config {
	cfg := Config{
		Shards:          2,
		Blocks:          256,
		BlockBytes:      32,
		Backend:         backend,
		Store:           StoreFile,
		DataDir:         dir,
		CheckpointEvery: 1,
		QueueDepth:      16,
		Unpaced:         true,
		Key:             crypt.Key{42},
	}
	if backend != BackendFlat {
		cfg.Recursion = 1
	}
	return cfg
}

// TestFileStoreRoundTrip is the clean-shutdown durability loop for every
// backend kind and both checkpoint modes: write, close, reopen (recovered),
// verify, write a second generation, close, reopen, verify both generations.
// In delta mode the second and third boots recover through base + chain.
func TestFileStoreRoundTrip(t *testing.T) {
	for _, mode := range []string{CheckpointFull, CheckpointDelta} {
		for _, backend := range []string{BackendFlat, BackendRecursive, BackendBatched} {
			t.Run(mode+"/"+backend, func(t *testing.T) {
				cfg := fileStoreCfg(t.TempDir(), backend)
				cfg.CheckpointMode = mode
				st, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, ss := range st.Stats().Shards {
					if ss.Recovery != "fresh" {
						t.Errorf("shard %d boot outcome %q, want fresh", ss.Shard, ss.Recovery)
					}
				}
				payload := func(gen int, addr uint64) []byte {
					return []byte(fmt.Sprintf("g%d-a%d", gen, addr))
				}
				for addr := uint64(0); addr < 64; addr++ {
					if err := st.Write(addr, payload(1, addr)); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}

				st2, err := New(cfg)
				if err != nil {
					t.Fatalf("reopening data dir: %v", err)
				}
				stats := st2.Stats()
				for _, ss := range stats.Shards {
					if ss.Recovery != "recovered" {
						t.Errorf("shard %d reboot outcome %q, want recovered", ss.Shard, ss.Recovery)
					}
				}
				for addr := uint64(0); addr < 64; addr++ {
					got, err := st2.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.HasPrefix(got, payload(1, addr)) {
						t.Fatalf("addr %d reads %q after recovery, want prefix %q", addr, got, payload(1, addr))
					}
				}
				for addr := uint64(32); addr < 96; addr++ {
					if err := st2.Write(addr, payload(2, addr)); err != nil {
						t.Fatal(err)
					}
				}
				if err := st2.Close(); err != nil {
					t.Fatal(err)
				}

				st3, err := New(cfg)
				if err != nil {
					t.Fatalf("third boot: %v", err)
				}
				defer st3.Close()
				for addr := uint64(0); addr < 96; addr++ {
					want := payload(1, addr)
					if addr >= 32 {
						want = payload(2, addr)
					}
					got, err := st3.Read(addr)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.HasPrefix(got, want) {
						t.Fatalf("addr %d reads %q across two generations, want prefix %q", addr, got, want)
					}
				}
			})
		}
	}
}

// flipByte XORs one mid-file byte and returns an undo function.
func flipByte(t *testing.T, path string, off int64) func() {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = int64(len(raw)) / 2
	}
	tampered := append([]byte(nil), raw...)
	tampered[off] ^= 0x01
	if err := os.WriteFile(path, tampered, 0o600); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.WriteFile(path, raw, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreTamperFailsClosed pins the two distinct fail-closed paths:
// a flipped bucket-file byte is caught by Merkle-root verification
// (pathoram.ErrRootMismatch), a flipped checkpoint byte by the seal's MAC
// (crypt.ErrAuthFailed), and a deleted checkpoint refuses reinitialization
// (ErrNoCheckpoint).
func TestFileStoreTamperFailsClosed(t *testing.T) {
	dir := t.TempDir()
	cfg := fileStoreCfg(dir, BackendFlat)
	cfg.Shards = 1
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 32; addr++ {
		if err := st.Write(addr, []byte{byte(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	bucketFile := filepath.Join(dir, "shard-0000", "level-0.oram")
	ckptFile := filepath.Join(dir, "shard-0000", "base.bin")

	undo := flipByte(t, bucketFile, -1)
	if _, err := New(cfg); !errors.Is(err, pathoram.ErrRootMismatch) {
		t.Fatalf("boot over tampered bucket file: got %v, want ErrRootMismatch", err)
	}
	undo()

	undo = flipByte(t, ckptFile, -1)
	if _, err := New(cfg); !errors.Is(err, crypt.ErrAuthFailed) {
		t.Fatalf("boot over tampered checkpoint: got %v, want ErrAuthFailed", err)
	}
	undo()

	st, err = New(cfg)
	if err != nil {
		t.Fatalf("boot after undoing tampering: %v", err)
	}
	got, err := st.Read(7)
	if err != nil || got[0] != 7 {
		t.Fatalf("read after untampered recovery: %v %v", got, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := os.Remove(ckptFile); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("boot with bucket files but no checkpoint: got %v, want ErrNoCheckpoint", err)
	}
}

// TestMemFileEquivalence drives the same seeded sequential workload against
// a RAM-backed and a file-backed store for every backend kind and requires
// identical op results; for the batched backend it additionally requires
// byte-identical JSON slot-signature traces — the adversary-visible storage
// schedule must not depend on the storage tier.
func TestMemFileEquivalence(t *testing.T) {
	type opResult struct {
		data []byte
		err  error
	}
	run := func(cfg Config) (results []opResult, traces []byte) {
		st, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			addr := uint64(i*29) % cfg.Blocks
			if i%3 != 2 {
				buf := []byte{byte(i), byte(addr), byte(i >> 3)}
				results = append(results, opResult{err: st.Write(addr, buf)})
			} else {
				data, err := st.Read(addr)
				results = append(results, opResult{data: data, err: err})
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if cfg.TraceSlots {
			out, err := json.Marshal(st.SlotTraces())
			if err != nil {
				t.Fatal(err)
			}
			traces = out
		}
		return results, traces
	}
	for _, backend := range []string{BackendFlat, BackendRecursive, BackendBatched} {
		t.Run(backend, func(t *testing.T) {
			fileCfg := fileStoreCfg(t.TempDir(), backend)
			memCfg := fileCfg
			memCfg.Store = StoreMem
			memCfg.DataDir = ""
			memCfg.CheckpointEvery = 0
			// The file store forces integrity; match it on the RAM side so
			// the two runs differ in nothing but the storage tier.
			memCfg.Integrity = true
			if backend == BackendBatched {
				fileCfg.TraceSlots = true
				memCfg.TraceSlots = true
			}
			deltaCfg := fileStoreCfg(t.TempDir(), backend)
			deltaCfg.CheckpointMode = CheckpointDelta
			deltaCfg.TraceSlots = fileCfg.TraceSlots
			memRes, memTrace := run(memCfg)
			fileRes, fileTrace := run(fileCfg)
			deltaRes, deltaTrace := run(deltaCfg)
			if len(memRes) != len(fileRes) || len(memRes) != len(deltaRes) {
				t.Fatalf("op counts diverge: mem %d, file %d, delta %d", len(memRes), len(fileRes), len(deltaRes))
			}
			for i := range memRes {
				if (memRes[i].err == nil) != (fileRes[i].err == nil) {
					t.Fatalf("op %d error mismatch: mem %v, file %v", i, memRes[i].err, fileRes[i].err)
				}
				if !bytes.Equal(memRes[i].data, fileRes[i].data) {
					t.Fatalf("op %d result diverges between mem and file stores", i)
				}
				if (memRes[i].err == nil) != (deltaRes[i].err == nil) || !bytes.Equal(memRes[i].data, deltaRes[i].data) {
					t.Fatalf("op %d result diverges between mem and delta-checkpointed file stores", i)
				}
			}
			if backend == BackendBatched && !bytes.Equal(memTrace, fileTrace) {
				t.Fatalf("slot-signature traces diverge between mem and file stores:\nmem  %s\nfile %s", memTrace, fileTrace)
			}
			if backend == BackendBatched && !bytes.Equal(memTrace, deltaTrace) {
				t.Fatalf("slot-signature traces diverge between mem and delta-mode file stores:\nmem   %s\ndelta %s", memTrace, deltaTrace)
			}
		})
	}
}

// TestStoreConfigValidation covers the storage-tier Validate rules,
// including the RAM-store size cap that replaced the old constructor panic.
func TestStoreConfigValidation(t *testing.T) {
	base := Config{Shards: 1, Blocks: 256, BlockBytes: 64, Z: 3}

	huge := base
	huge.Blocks = 1 << 26 // ~25 GB of buckets: far beyond the RAM store cap
	err := huge.withDefaults().Validate()
	if err == nil || !strings.Contains(err.Error(), "RAM store") {
		t.Fatalf("oversized mem config: got %v, want the RAM-store cap error", err)
	}
	huge.Store = StoreFile
	huge.DataDir = t.TempDir()
	if err := huge.withDefaults().Validate(); err != nil {
		t.Fatalf("the file store must lift the RAM cap, got %v", err)
	}

	bad := base
	bad.DataDir = "/tmp/x"
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("DataDir without Store file must be rejected")
	}
	bad = base
	bad.CheckpointEvery = 1
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("CheckpointEvery without Store file must be rejected")
	}
	bad = base
	bad.Store = StoreFile
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("Store file without DataDir must be rejected")
	}
	bad = base
	bad.Store = StoreFile
	bad.DataDir = "/tmp/x"
	bad.Sync = "sometimes"
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("unknown sync policy must be rejected")
	}
	bad = base
	bad.Store = "paper"
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("unknown store kind must be rejected")
	}
	bad = base
	bad.CheckpointMode = CheckpointDelta
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("CheckpointMode without Store file must be rejected")
	}
	bad = base
	bad.DeltaCompactAfter = 1 << 20
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("DeltaCompactAfter without Store file must be rejected")
	}
	bad = base
	bad.MMap = true
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("MMap without Store file must be rejected")
	}
	bad = base
	bad.Store = StoreFile
	bad.DataDir = "/tmp/x"
	bad.CheckpointMode = "incremental"
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("unknown checkpoint mode must be rejected")
	}
	bad = base
	bad.Store = StoreFile
	bad.DataDir = "/tmp/x"
	bad.CheckpointMode = CheckpointFull
	bad.DeltaCompactAfter = 1 << 20
	if err := bad.withDefaults().Validate(); err == nil {
		t.Fatal("DeltaCompactAfter in full checkpoint mode must be rejected")
	}

	ok := base
	ok.Store = StoreFile
	ok.DataDir = t.TempDir()
	ok.CheckpointEvery = 8
	ok.Sync = "checkpoint"
	cfg := ok.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid file-store config rejected: %v", err)
	}
	if !cfg.Integrity {
		t.Fatal("the file store must force Integrity on")
	}
	if cfg.CheckpointMode != CheckpointFull {
		t.Fatalf("file-store default checkpoint mode is %q, want %q", cfg.CheckpointMode, CheckpointFull)
	}

	ok.CheckpointMode = CheckpointDelta
	cfg = ok.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid delta-mode config rejected: %v", err)
	}
	if cfg.DeltaCompactAfter != 4<<20 {
		t.Fatalf("delta mode default compaction threshold is %d, want %d", cfg.DeltaCompactAfter, 4<<20)
	}
}

// TestFileStoreStats checks that a file-backed store surfaces the
// storage-tier counters and checkpoint count through ShardStats.
func TestFileStoreStats(t *testing.T) {
	cfg := fileStoreCfg(t.TempDir(), BackendFlat)
	cfg.Shards = 1
	cfg.CacheBuckets = 8 // force misses
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for addr := uint64(0); addr < 64; addr++ {
		if err := st.Write(addr, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	ss := st.Stats().Shards[0]
	if ss.CacheHits == 0 || ss.CacheMisses == 0 {
		t.Errorf("an 8-bucket cache served 64 writes with hits=%d misses=%d", ss.CacheHits, ss.CacheMisses)
	}
	if ss.Checkpoints < 1 {
		t.Errorf("CheckpointEvery=1 store reports %d checkpoints after 64 writes", ss.Checkpoints)
	}
	if ss.CheckpointBytes == 0 {
		t.Errorf("checkpointing store reports checkpoint_bytes=0 after %d checkpoints", ss.Checkpoints)
	}
	if ss.CheckpointNS == 0 {
		t.Errorf("checkpointing store reports checkpoint_ns=0 after %d checkpoints", ss.Checkpoints)
	}
	if ss.Recovery != "fresh" {
		t.Errorf("boot outcome %q, want fresh", ss.Recovery)
	}
}

// deltaFiles lists the shard's sealed chain elements in name (= sequence)
// order.
func deltaFiles(t *testing.T, shardDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "delta-") && strings.HasSuffix(name, ".bin") {
			out = append(out, filepath.Join(shardDir, name))
		}
	}
	return out
}

// TestDeltaChainTamper pins the three fail-closed chain checks: a flipped
// byte inside a middle delta is caught by the seal's MAC (crypt.ErrAuthFailed),
// a deleted middle delta leaves a sequence hole (ErrChainGap), and swapping
// the contents of two deltas breaks the sealed-sequence / predecessor-hash
// binding (ErrChainOrder). A spliced, reordered, or truncated chain must
// refuse recovery rather than resurrect stale trusted state.
func TestDeltaChainTamper(t *testing.T) {
	dir := t.TempDir()
	cfg := fileStoreCfg(dir, BackendFlat)
	cfg.Shards = 1
	cfg.CheckpointMode = CheckpointDelta
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 16; addr++ {
		if err := st.Write(addr, []byte{byte(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-0000")
	chain := deltaFiles(t, shardDir)
	if len(chain) < 4 {
		t.Fatalf("CheckpointEvery=1 delta store left %d chain elements after 16 writes, want >= 4", len(chain))
	}
	mid := chain[len(chain)/2]

	undo := flipByte(t, mid, -1)
	if _, err := New(cfg); !errors.Is(err, crypt.ErrAuthFailed) {
		t.Fatalf("boot over tampered delta: got %v, want ErrAuthFailed", err)
	}
	undo()

	saved, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, ErrChainGap) {
		t.Fatalf("boot over chain with a deleted middle delta: got %v, want ErrChainGap", err)
	}
	if err := os.WriteFile(mid, saved, 0o600); err != nil {
		t.Fatal(err)
	}

	other := chain[len(chain)/2-1]
	otherSaved, err := os.ReadFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid, otherSaved, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, saved, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, ErrChainOrder) {
		t.Fatalf("boot over a chain with two deltas swapped: got %v, want ErrChainOrder", err)
	}
	if err := os.WriteFile(mid, saved, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, otherSaved, 0o600); err != nil {
		t.Fatal(err)
	}

	st, err = New(cfg)
	if err != nil {
		t.Fatalf("boot after undoing all tampering: %v", err)
	}
	defer st.Close()
	for addr := uint64(0); addr < 16; addr++ {
		got, err := st.Read(addr)
		if err != nil || got[0] != byte(addr) {
			t.Fatalf("addr %d after chain recovery: %v %v", addr, got, err)
		}
	}
}

// TestDeltaCompaction drives a chain past an absurdly low compaction
// threshold and checks the chain is folded into a fresh base: at most one
// delta outlives each fold, stale elements are swept, and recovery through
// the compacted base still sees every write.
func TestDeltaCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := fileStoreCfg(dir, BackendFlat)
	cfg.Shards = 1
	cfg.CheckpointMode = CheckpointDelta
	cfg.DeltaCompactAfter = 1 // every delta trips the fold on the next checkpoint
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 32; addr++ {
		if err := st.Write(addr, []byte{byte(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-0000")
	if chain := deltaFiles(t, shardDir); len(chain) > 1 {
		t.Fatalf("compact-after=1 chain holds %d deltas after close, want <= 1: %v", len(chain), chain)
	}
	if _, err := os.Stat(filepath.Join(shardDir, "base.bin")); err != nil {
		t.Fatalf("compacted store has no base: %v", err)
	}

	st, err = New(cfg)
	if err != nil {
		t.Fatalf("boot after compaction: %v", err)
	}
	defer st.Close()
	for addr := uint64(0); addr < 32; addr++ {
		got, err := st.Read(addr)
		if err != nil || got[0] != byte(addr) {
			t.Fatalf("addr %d after compacted recovery: %v %v", addr, got, err)
		}
	}
}

// TestLegacyCheckpointMigration checks that a data dir written under the old
// single-file protocol (checkpoint.bin) boots under the chain protocol: the
// file is adopted as the sequence-0 base.
func TestLegacyCheckpointMigration(t *testing.T) {
	dir := t.TempDir()
	cfg := fileStoreCfg(dir, BackendFlat)
	cfg.Shards = 1
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 8; addr++ {
		if err := st.Write(addr, []byte{byte(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, "shard-0000")
	if err := os.Rename(filepath.Join(shardDir, "base.bin"), filepath.Join(shardDir, "checkpoint.bin")); err != nil {
		t.Fatal(err)
	}
	st, err = New(cfg)
	if err != nil {
		t.Fatalf("boot over a legacy checkpoint.bin: %v", err)
	}
	defer st.Close()
	if ss := st.Stats().Shards[0]; ss.Recovery != "recovered" {
		t.Fatalf("legacy boot outcome %q, want recovered", ss.Recovery)
	}
	for addr := uint64(0); addr < 8; addr++ {
		got, err := st.Read(addr)
		if err != nil || got[0] != byte(addr) {
			t.Fatalf("addr %d after legacy migration: %v %v", addr, got, err)
		}
	}
	if _, err := os.Stat(filepath.Join(shardDir, "checkpoint.bin")); !os.IsNotExist(err) {
		t.Fatalf("legacy checkpoint.bin still present after migration (stat err %v)", err)
	}
}

// TestFileStoreMMap runs a write/read/recover loop with mmap bucket reads
// enabled and checks the mapping actually serves reads (MMapReads > 0) while
// results stay correct — dirty cached pages must shadow the mapping.
func TestFileStoreMMap(t *testing.T) {
	if !pathoram.MMapSupported {
		t.Skip("mmap bucket reads unsupported on this platform")
	}
	cfg := fileStoreCfg(t.TempDir(), BackendFlat)
	cfg.Shards = 1
	cfg.MMap = true
	cfg.CacheBuckets = 8 // tiny cache so clean reads fall through to the mapping
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 64; addr++ {
		if err := st.Write(addr, []byte{byte(addr)}); err != nil {
			t.Fatal(err)
		}
	}
	for addr := uint64(0); addr < 64; addr++ {
		got, err := st.Read(addr)
		if err != nil || got[0] != byte(addr) {
			t.Fatalf("addr %d through mmap store: %v %v", addr, got, err)
		}
	}
	if ss := st.Stats().Shards[0]; ss.MMapReads == 0 {
		t.Error("mmap-enabled store served no reads from the mapping")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = New(cfg)
	if err != nil {
		t.Fatalf("recovery with mmap enabled: %v", err)
	}
	defer st.Close()
	for addr := uint64(0); addr < 64; addr++ {
		got, err := st.Read(addr)
		if err != nil || got[0] != byte(addr) {
			t.Fatalf("addr %d after mmap recovery: %v %v", addr, got, err)
		}
	}
}
