package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestBatchReadWireRoundTrip drives the batch_read verb end to end over
// TCP against a batched backend: one request line carries k addresses, one
// response line carries per-address results in request order, and a
// single-address batch is just the degenerate case of the same verb.
func TestBatchReadWireRoundTrip(t *testing.T) {
	cfg := fastConfig(2)
	cfg.Backend = BackendBatched
	cfg.BatchK = 4
	cfg.EvictEvery = 4
	st, addr := startDaemon(t, cfg)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if got, want := st.Config().MaxBatch(), 4; got != want {
		t.Fatalf("MaxBatch = %d, want the batched backend's k = %d", got, want)
	}

	addrs := []uint64{11, 3, 500, 42}
	for _, a := range addrs {
		buf := make([]byte, 64)
		FillPayload(buf, a, 7, a)
		if err := cl.TenantWrite("alice", a, buf); err != nil {
			t.Fatalf("tenant write %d: %v", a, err)
		}
	}

	results, err := cl.ReadBatch("alice", addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(addrs) {
		t.Fatalf("batch returned %d results for %d addresses", len(results), len(addrs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d (addr %d): %v", i, addrs[i], r.Err)
		}
		want := make([]byte, 64)
		FillPayload(want, addrs[i], 7, addrs[i])
		if !bytes.Equal(r.Data, want) {
			t.Errorf("member %d (addr %d): got %x, want %x", i, addrs[i], r.Data[:16], want[:16])
		}
	}

	// Degenerate single-member batch: same verb, one result.
	one, err := cl.ReadBatch("", []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Err != nil {
		t.Fatalf("single-member batch: %+v", one)
	}
	if err := CheckPayload(one[0].Data, 3); err != nil {
		t.Fatal(err)
	}

	// Empty batches are rejected client-side before touching the wire.
	if _, err := cl.ReadBatch("", nil); ErrorCode(err) != CodeBadRequest {
		t.Errorf("empty batch error = %v (code %q), want %s", err, ErrorCode(err), CodeBadRequest)
	}
}

// TestBatchReadOversizedPerRequestError pins the error-path contract: a
// batch over the store's limit fails that request with a coded per-request
// error — the connection survives and keeps serving.
func TestBatchReadOversizedPerRequestError(t *testing.T) {
	_, addr := startDaemon(t, fastConfig(1)) // flat backend: MaxBatch = DefaultMaxBatch

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := make([]uint64, DefaultMaxBatch+1)
	for i := range big {
		big[i] = uint64(i)
	}
	_, err = cl.ReadBatch("", big)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("oversized batch error = %v, want a RemoteError", err)
	}
	if remote.Code != CodeBatchTooLarge {
		t.Errorf("oversized batch code = %q, want %s", remote.Code, CodeBatchTooLarge)
	}

	// The same connection must still serve: a coded refusal is not a
	// protocol violation and must not tear the session down.
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after oversized batch: %v", err)
	}
	if _, err := cl.Read(0); err != nil {
		t.Fatalf("read after oversized batch: %v", err)
	}
}

// TestBatchReadOutOfRangeMember: an invalid address inside a batch fails
// only its own slot — the valid members around it are served normally.
func TestBatchReadOutOfRangeMember(t *testing.T) {
	cfg := fastConfig(2) // 1024 blocks
	_, addr := startDaemon(t, cfg)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	buf := make([]byte, 64)
	FillPayload(buf, 5, 1, 5)
	if err := cl.Write(5, buf); err != nil {
		t.Fatal(err)
	}

	results, err := cl.ReadBatch("", []uint64{5, 99999, 6})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid members failed: %v / %v", results[0].Err, results[2].Err)
	}
	if !bytes.Equal(results[0].Data, buf) {
		t.Errorf("member 0 data mismatch")
	}
	var remote *RemoteError
	if !errors.As(results[1].Err, &remote) || remote.Code != CodeOutOfRange {
		t.Errorf("out-of-range member error = %v, want RemoteError code %s", results[1].Err, CodeOutOfRange)
	}
}

// TestBatchRidesOneSlot is the tentpole's mechanism pinned at the Service
// layer: a client batch of k distinct addresses enqueues contiguously, so
// the batched backend's slot drain lifts the whole batch into one paced
// slot instead of spending k slots on it.
func TestBatchRidesOneSlot(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  64,
		Backend:     BackendBatched,
		BatchK:      4,
		EvictEvery:  4,
		ClockHz:     1_000_000,
		ORAMLatency: 5_000,
		Rates:       []uint64{45_000}, // 50 ms slots: the batch is queued well before one fires
	}
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	results, err := st.ReadBatch("", []uint64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i, r.Err)
		}
	}
	sh := st.Stats().Shards[0]
	if sh.RealAccesses > 2 {
		t.Errorf("a 4-address batch cost %d real slots, want ≤ 2 with k=4", sh.RealAccesses)
	}
	if sh.BatchFetched < 4 {
		t.Errorf("BatchFetched = %d, want ≥ 4", sh.BatchFetched)
	}
}

// TestValidateBatchLine: Config.Validate sizes maxLineBytes against the
// worst-case encoded batch response (k base64 payloads plus framing), not
// just one block, so a k × BlockBytes combination that could overflow the
// line protocol is refused at construction instead of tearing down
// connections at the first full batch.
func TestValidateBatchLine(t *testing.T) {
	cfg := Config{
		Shards:      1,
		Blocks:      64,
		BlockBytes:  16384, // fine alone, 64 of them per line is not
		Z:           3,
		QueueDepth:  64,
		Backend:     BackendBatched,
		BatchK:      64,
		EvictEvery:  4,
		ClockHz:     1_000_000,
		ORAMLatency: 20,
		Rates:       []uint64{480},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("batch line overflow accepted")
	}
	if !strings.Contains(err.Error(), "BatchK or BlockBytes") {
		t.Fatalf("error %q does not name the remedy", err)
	}

	// The same block size with a small k fits.
	cfg.BatchK = 8
	if err := cfg.Validate(); err != nil {
		t.Fatalf("k=8 at 16 KiB blocks rejected: %v", err)
	}
}
