package server

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tcoram/internal/core"
	"tcoram/internal/pathoram"
)

// request is one queued Read or Write, expressed in shard-local terms.
type request struct {
	addr    uint64 // global address (for error messages)
	local   uint64 // shard-local block address
	write   bool
	data    []byte // write payload, already padded to BlockBytes
	out     []byte // read result, filled by the serving shard
	arrival uint64 // enforcer cycle at submission (paced mode)
	tenant  string // leakage-accounting tag ("" = untenanted)
	resp    chan result
}

type result struct {
	data []byte
	err  error
}

// shard owns one sub-ORAM. Exactly one goroutine (run) touches the ORAM and
// the enforcer's slot-consuming side; every cross-goroutine quantity is an
// atomic. The pacing loop realizes the paper's controller in wall time:
// sleep until the next slot of the data-independent grid opens, then serve
// the queue head (coalescing same-block requests) or issue a dummy access.
type shard struct {
	id    int
	oram  Backend            // flat or recursive; owned exclusively by the run goroutine
	enf   *core.WallEnforcer // nil in Unpaced mode
	queue chan *request
	fifo  []*request // drained requests awaiting slots (loop-private)
	stop  chan struct{}

	// batcher is non-nil when the backend supports multi-path batch slots;
	// the serving loop then drains up to batchK coalesced groups per slot
	// instead of one. Same object as oram, owned by the same goroutine.
	batcher BatchBackend
	batchK  int

	// Cross-goroutine stats.
	reals        atomic.Uint64
	dummies      atomic.Uint64
	coalesced    atomic.Uint64
	batchFetched atomic.Uint64
	forcedEvict  atomic.Uint64
	depth        atomic.Int64 // submitted but not yet completed
	stashPeak    atomic.Int64
	// levelPeaks publishes the per-level stash peaks (index 0 = data ORAM;
	// one entry for a flat backend). The slice behind the pointer is never
	// mutated after Store, so readers may copy it lock-free.
	levelPeaks atomic.Pointer[[]int]
	failed     atomic.Bool // the shard's ORAM errored; it now rejects everything

	// Loop-private scratch: group for coalescing, batch/ops for multi-path
	// slots, peaksScratch for reading the backend's per-level peaks without
	// allocating every slot.
	group        []*request
	batch        [][]*request
	ops          []pathoram.BatchOp
	peaksScratch []int

	// Per-tenant leakage attribution. activeTenants and lastEpoch are
	// loop-private: tenants are recorded as their requests are served, and
	// when the enforcer's epoch advances every tenant active in the closing
	// epoch is charged that transition (its demand fed the learner's rate
	// choice). tenantTrans is the shared tally, read by the store's
	// admission check and stats under tmu.
	activeTenants map[string]struct{}
	lastEpoch     int
	tmu           sync.Mutex
	tenantTrans   map[string]uint64

	// persist is the shard's checkpoint engine (nil for RAM-backed shards);
	// owned by the run goroutine like the ORAM itself. When deferAcks is set
	// (CheckpointEvery == 1), served requests park in done until the slot's
	// checkpoint lands, so every delivered ack is durable.
	persist   *persister
	ckptEvery int
	sinceCkpt int
	deferAcks bool
	done      []doneEntry
	recovery  string // "", "fresh" or "recovered"; immutable after newShard

	// Atomic mirrors of the persister's store-tier counters.
	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeReads  atomic.Uint64
	storeWrites atomic.Uint64
	storeMMap   atomic.Uint64
	ckpts       atomic.Uint64
	ckptBytes   atomic.Uint64
	ckptNS      atomic.Uint64
}

// doneEntry is a served request whose completion is deferred until the
// covering checkpoint is durable.
type doneEntry struct {
	req *request
	res result
}

func newShard(id int, o Backend, cfg Config, stop chan struct{}, p *persister) (*shard, error) {
	enf, err := enforcerFor(cfg)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:    id,
		oram:  o,
		enf:   enf,
		queue: make(chan *request, cfg.QueueDepth),
		stop:  stop,
	}
	if bb, ok := o.(BatchBackend); ok {
		sh.batcher = bb
		sh.batchK = bb.BatchK()
	}
	sh.activeTenants = make(map[string]struct{})
	sh.tenantTrans = make(map[string]uint64)
	if sh.enf != nil {
		sh.lastEpoch = sh.enf.Epoch()
	}
	if p != nil {
		sh.persist = p
		sh.ckptEvery = cfg.CheckpointEvery
		sh.deferAcks = cfg.CheckpointEvery == 1
		sh.recovery = "fresh"
		if p.recovered {
			sh.recovery = "recovered"
		}
	}
	sh.publishStats() // stats are well-formed before the first slot
	return sh, nil
}

// run serves the shard until the store closes. For a file-backed shard the
// exit path writes the shutdown checkpoint and closes the bucket files (the
// deferred shutdownPersist), so a clean Close leaves a zero-loss data dir.
func (sh *shard) run() {
	defer sh.shutdownPersist()
	if sh.enf == nil {
		sh.runUnpaced()
		return
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		slot, wait := sh.enf.NextSlot()
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-sh.stop:
				return
			case <-timer.C:
			}
		} else {
			// The grid is overdue (we were busy or the host stalled):
			// consume slots back-to-back until it catches up with wall
			// time, so the issued access count matches the schedule.
			select {
			case <-sh.stop:
				return
			default:
			}
		}
		sh.fill()
		var err error
		if len(sh.fifo) == 0 {
			// Dummy slots mutate the ORAM but carry no acks, so they need no
			// checkpoint: a crash rolls the whole interval back to the last
			// checkpoint consistently (trusted state and pinned bucket pages
			// roll back together).
			sh.enf.TakeSlot(slot, false)
			sh.noteEpochTenants()
			if err = sh.oram.DummyAccess(); err == nil {
				sh.dummies.Add(1)
			}
		} else if sh.batcher != nil {
			arrival := sh.takeBatch(sh.batchK)
			sh.enf.TakeSlot(arrival, true)
			sh.noteEpochTenants()
			if err = sh.serveBatch(); err == nil {
				sh.reals.Add(1)
				err = sh.maybeCheckpoint()
			}
		} else {
			arrival := sh.takeGroup()
			sh.enf.TakeSlot(arrival, true)
			sh.noteEpochTenants()
			if err = sh.serveGroup(); err == nil {
				sh.reals.Add(1)
				err = sh.maybeCheckpoint()
			}
		}
		if err != nil {
			sh.abortDone(err)
			sh.fail(err)
			return
		}
		sh.flushDone()
		sh.publishStats()
	}
}

// runUnpaced serves requests immediately with no slot grid and no dummies —
// the unshielded base_oram mode.
func (sh *shard) runUnpaced() {
	for {
		select {
		case <-sh.stop:
			return
		case req := <-sh.queue:
			sh.fifo = append(sh.fifo, req)
			sh.fill()
			for len(sh.fifo) > 0 {
				var err error
				if sh.batcher != nil {
					sh.takeBatch(sh.batchK)
					err = sh.serveBatch()
				} else {
					sh.takeGroup()
					err = sh.serveGroup()
				}
				if err == nil {
					sh.reals.Add(1)
					err = sh.maybeCheckpoint()
				}
				if err != nil {
					sh.abortDone(err)
					sh.fail(err)
					return
				}
				sh.flushDone()
			}
			sh.publishStats()
		}
	}
}

// noteEpochTenants charges the epoch transition the enforcer just crossed
// to every tenant that was active in the closing epoch, then resets the
// active set. Runs right after TakeSlot (which is what advances the epoch),
// so the charge lands before the budget check admits the tenant's next op.
// A multi-epoch jump is charged as one transition: the schedule revealed
// one new rate choice, however many epoch boundaries elapsed idle.
func (sh *shard) noteEpochTenants() {
	epoch := sh.enf.Epoch()
	if epoch == sh.lastEpoch {
		return
	}
	sh.lastEpoch = epoch
	if len(sh.activeTenants) == 0 {
		return
	}
	sh.tmu.Lock()
	for t := range sh.activeTenants {
		sh.tenantTrans[t]++
	}
	sh.tmu.Unlock()
	clear(sh.activeTenants)
}

// noteTenant records a served request's tenant as active in the current
// epoch (loop-private; untenanted traffic is not tracked).
func (sh *shard) noteTenant(tenant string) {
	if tenant != "" {
		sh.activeTenants[tenant] = struct{}{}
	}
}

// tenantTransitions reports the transitions charged to tenant so far.
func (sh *shard) tenantTransitions(tenant string) uint64 {
	sh.tmu.Lock()
	defer sh.tmu.Unlock()
	return sh.tenantTrans[tenant]
}

// maybeCheckpoint runs the checkpoint cadence after a served (real) slot:
// every CheckpointEvery real slots the shard's trusted state is sealed to
// disk. With CheckpointEvery == 1 this runs between serving and acking, so
// an acked write is always recoverable.
func (sh *shard) maybeCheckpoint() error {
	if sh.persist == nil || sh.ckptEvery <= 0 {
		return nil
	}
	sh.sinceCkpt++
	if sh.sinceCkpt < sh.ckptEvery {
		return nil
	}
	if err := sh.persist.checkpoint(sh.oram); err != nil {
		return err
	}
	sh.sinceCkpt = 0
	return nil
}

// shutdownPersist is the serving goroutine's exit hook for file-backed
// shards: on a clean stop it writes the final checkpoint and closes the
// bucket files; after a failure it only closes them, leaving the last good
// checkpoint as the recovery point.
func (sh *shard) shutdownPersist() {
	if sh.persist == nil {
		return
	}
	if sh.failed.Load() {
		sh.persist.closeStores()
		return
	}
	if err := sh.persist.shutdown(sh.oram); err != nil {
		// Nothing left to complete (the queue is drained by Close); surface
		// the lost-durability condition through the Failed stat.
		sh.failed.Store(true)
	}
	sh.ckpts.Store(sh.persist.ckpts)
	sh.ckptBytes.Store(sh.persist.ckptBytes)
	sh.ckptNS.Store(sh.persist.ckptNS)
}

// finish delivers a result now, or parks it until the covering checkpoint
// when acks are deferred.
func (sh *shard) finish(req *request, res result) {
	if sh.deferAcks {
		sh.done = append(sh.done, doneEntry{req: req, res: res})
		return
	}
	sh.complete(req, res)
}

// flushDone delivers the parked completions (no-op unless acks are
// deferred).
func (sh *shard) flushDone() {
	for i, d := range sh.done {
		sh.complete(d.req, d.res)
		sh.done[i] = doneEntry{}
	}
	sh.done = sh.done[:0]
}

// abortDone overrides any parked completions with err and delivers them —
// used when the slot's checkpoint failed, so successfully served requests
// must not be acked as durable.
func (sh *shard) abortDone(err error) {
	for i := range sh.done {
		sh.done[i].res = result{err: err}
	}
	sh.flushDone()
}

// fail is the shard's terminal state after an ORAM error (storage/cipher
// corruption): every queued and future request is completed with the error
// until the store closes. Continuing to consume the queue matters — a
// silently dead shard would leave submitters blocked on a full queue while
// holding the store's read lock, which would in turn deadlock Close.
func (sh *shard) fail(err error) {
	sh.failed.Store(true)
	for _, req := range sh.fifo {
		sh.complete(req, result{err: err})
	}
	sh.fifo = nil
	for {
		select {
		case <-sh.stop:
			return
		case req := <-sh.queue:
			sh.complete(req, result{err: err})
		}
	}
}

// fill drains the submission queue into the loop-private FIFO without
// blocking.
func (sh *shard) fill() {
	for {
		select {
		case req := <-sh.queue:
			sh.fifo = append(sh.fifo, req)
		default:
			return
		}
	}
}

// takeGroup removes the FIFO head plus every queued request for the same
// block (coalescing), preserving the order of both the group and the
// remaining FIFO. It returns the group's earliest arrival cycle: per the
// Fig 4 Waste semantics every coalesced member's queueing time counts, and
// since all the members' wait intervals end at the same slot, their union
// is exactly [min arrival, slot] — passing only the head's arrival would
// let a member that was stamped earlier (submitters race between stamping
// and enqueueing) slip out of the learner's Waste and underestimate demand
// exactly when load is high enough to coalesce.
func (sh *shard) takeGroup() (arrival uint64) {
	sh.group, arrival = sh.takeGroupInto(sh.group[:0])
	return arrival
}

// takeGroupInto is takeGroup over a caller-supplied destination slice, so
// the batch drain can collect several groups without aliasing one scratch
// buffer. It returns the extended slice and the group's earliest arrival.
func (sh *shard) takeGroupInto(dst []*request) ([]*request, uint64) {
	head := sh.fifo[0]
	dst = append(dst, head)
	arrival := head.arrival
	keep := sh.fifo[:1][:0] // filter in place over the same backing array
	for _, req := range sh.fifo[1:] {
		if req.local == head.local {
			dst = append(dst, req)
			if req.arrival < arrival {
				arrival = req.arrival
			}
		} else {
			keep = append(keep, req)
		}
	}
	// Clear the tail so completed requests don't pin their buffers.
	for i := len(keep); i < len(sh.fifo); i++ {
		sh.fifo[i] = nil
	}
	sh.fifo = keep
	if n := len(dst) - 1; n > 0 {
		sh.coalesced.Add(uint64(n))
	}
	return dst, arrival
}

// takeBatch drains up to max coalesced distinct-block groups from the FIFO
// into sh.batch, preserving FIFO order between groups. It returns the
// earliest arrival across every member of every group: all the drained
// members' wait intervals end at this same slot, so their union is exactly
// [min arrival, slot] and reporting the minimum keeps the learner's Waste
// input correct under batching for the same reason it is correct for a
// single coalesced group (see takeGroupInto).
func (sh *shard) takeBatch(max int) (arrival uint64) {
	sh.batch = sh.batch[:0]
	arrival = ^uint64(0)
	for len(sh.fifo) > 0 && len(sh.batch) < max {
		var buf []*request
		if n := len(sh.batch); n < cap(sh.batch) {
			// Reuse the retired group slice parked at this batch position.
			buf = sh.batch[:n+1][n][:0]
		}
		g, a := sh.takeGroupInto(buf)
		sh.batch = append(sh.batch, g)
		if a < arrival {
			arrival = a
		}
	}
	return arrival
}

// serveGroup applies the coalesced group in arrival order within a single
// ORAM access: reads observe all earlier queued writes, exactly as if each
// request had run in its own (serialized) access. The group is always
// completed (with the error, if any); a non-nil return means the ORAM
// itself is broken and the shard must stop serving.
func (sh *shard) serveGroup() error {
	err := sh.oram.Update(sh.group[0].local, func(data []byte) {
		for _, req := range sh.group {
			if req.write {
				copy(data, req.data)
			} else {
				out := make([]byte, len(data))
				copy(out, data)
				req.out = out
			}
		}
	})
	for _, req := range sh.group {
		sh.noteTenant(req.tenant)
		if err != nil {
			sh.finish(req, result{err: err})
		} else if req.write {
			sh.finish(req, result{})
		} else {
			sh.finish(req, result{data: req.out})
		}
	}
	sh.group = sh.group[:0]
	return err
}

// serveBatch applies the drained groups in one multi-path batch slot: each
// group becomes one BatchOp whose callback applies the group's members in
// arrival order (the serveGroup RMW semantics, preserved per block), and
// the backend fetches each group's path plus dummy padding up to BatchK.
// Every drained request is always completed (with the error, if any); a
// non-nil return means the ORAM itself is broken and the shard must stop.
func (sh *shard) serveBatch() error {
	sh.ops = sh.ops[:0]
	for _, g := range sh.batch {
		group := g
		sh.ops = append(sh.ops, pathoram.BatchOp{Addr: group[0].local, Fn: func(data []byte) {
			for _, req := range group {
				if req.write {
					copy(data, req.data)
				} else {
					out := make([]byte, len(data))
					copy(out, data)
					req.out = out
				}
			}
		}})
	}
	err := sh.batcher.AccessBatch(sh.ops)
	for _, g := range sh.batch {
		for i, req := range g {
			sh.noteTenant(req.tenant)
			if err != nil {
				sh.finish(req, result{err: err})
			} else if req.write {
				sh.finish(req, result{})
			} else {
				sh.finish(req, result{data: req.out})
			}
			g[i] = nil // don't pin completed requests until the next drain
		}
	}
	sh.batchFetched.Add(uint64(len(sh.batch)))
	for i := range sh.ops {
		sh.ops[i] = pathoram.BatchOp{} // release the Fn closures
	}
	sh.ops = sh.ops[:0]
	return err
}

// complete delivers a result and releases the request's depth slot.
func (sh *shard) complete(req *request, res result) {
	req.resp <- res
	sh.depth.Add(-1)
}

// drain fails every queued request after the serving goroutine has exited.
func (sh *shard) drain() {
	sh.fill()
	for _, req := range sh.fifo {
		sh.complete(req, result{err: ErrClosed})
	}
	sh.fifo = nil
	for {
		select {
		case req := <-sh.queue:
			sh.complete(req, result{err: ErrClosed})
		default:
			return
		}
	}
}

// publishStats refreshes the atomic mirrors of loop-private state. The
// per-level peaks slice is republished only when a peak moved (peaks are
// monotone, so this is rare), keeping the per-slot cost to a comparison.
func (sh *shard) publishStats() {
	_, peak := sh.oram.StashOccupancy()
	sh.stashPeak.Store(int64(peak))
	if b, ok := sh.oram.(*pathoram.Batched); ok {
		sh.forcedEvict.Store(b.ForcedEvictions())
	}
	sh.peaksScratch = sh.oram.LevelStashPeaks(sh.peaksScratch[:0])
	if cur := sh.levelPeaks.Load(); cur == nil || !slices.Equal(*cur, sh.peaksScratch) {
		published := slices.Clone(sh.peaksScratch)
		sh.levelPeaks.Store(&published)
	}
	if sh.persist != nil {
		st := sh.persist.storageStats()
		sh.storeHits.Store(st.CacheHits)
		sh.storeMisses.Store(st.CacheMisses)
		sh.storeReads.Store(st.FileReads)
		sh.storeWrites.Store(st.FileWrites)
		sh.storeMMap.Store(st.MMapReads)
		sh.ckpts.Store(sh.persist.ckpts)
		sh.ckptBytes.Store(sh.persist.ckptBytes)
		sh.ckptNS.Store(sh.persist.ckptNS)
	}
}

// stats snapshots the shard's counters. Every enforcer-side field (rate,
// epoch, slip counters, rate-change history) comes from the WallEnforcer's
// own mutex-guarded state in one pass, so a snapshot is self-consistent:
// Rate always matches the last RateChanges entry even when a transition
// fired mid-slot, before the serving loop got back around.
func (sh *shard) stats() ShardStats {
	ss := ShardStats{
		Shard:           sh.id,
		Queue:           int(sh.depth.Load()),
		RealAccesses:    sh.reals.Load(),
		DummyAccesses:   sh.dummies.Load(),
		Coalesced:       sh.coalesced.Load(),
		BatchFetched:    sh.batchFetched.Load(),
		ForcedEvictions: sh.forcedEvict.Load(),
		StashPeak:       int(sh.stashPeak.Load()),
		Failed:          sh.failed.Load(),
		CacheHits:       sh.storeHits.Load(),
		CacheMisses:     sh.storeMisses.Load(),
		FileReads:       sh.storeReads.Load(),
		FileWrites:      sh.storeWrites.Load(),
		MMapReads:       sh.storeMMap.Load(),
		Checkpoints:     sh.ckpts.Load(),
		CheckpointBytes: sh.ckptBytes.Load(),
		CheckpointNS:    sh.ckptNS.Load(),
		Recovery:        sh.recovery,
	}
	if p := sh.levelPeaks.Load(); p != nil {
		ss.StashPeaks = slices.Clone(*p)
	}
	sh.tmu.Lock()
	if len(sh.tenantTrans) > 0 {
		ss.TenantTransitions = make(map[string]uint64, len(sh.tenantTrans))
		for t, n := range sh.tenantTrans {
			ss.TenantTransitions[t] = n
		}
	}
	sh.tmu.Unlock()
	if sh.enf != nil {
		ss.OverdueSlots, ss.MaxLagCycles = sh.enf.Slip()
		ss.RateChanges = sh.enf.RateChanges()
		// The enforcer sets its rate and the history entry together, so the
		// last entry (never absent: epoch 0 is recorded at construction) is
		// the in-force rate — deriving both from one snapshot keeps Rate
		// and RateChanges from ever contradicting each other.
		last := ss.RateChanges[len(ss.RateChanges)-1]
		ss.Rate, ss.Epoch = last.Rate, last.Epoch
	}
	return ss
}
