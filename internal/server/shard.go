package server

import (
	"sync/atomic"
	"time"

	"tcoram/internal/core"
	"tcoram/internal/pathoram"
)

// request is one queued Read or Write, expressed in shard-local terms.
type request struct {
	addr    uint64 // global address (for error messages)
	local   uint64 // shard-local block address
	write   bool
	data    []byte // write payload, already padded to BlockBytes
	out     []byte // read result, filled by the serving shard
	arrival uint64 // enforcer cycle at submission (paced mode)
	resp    chan result
}

type result struct {
	data []byte
	err  error
}

// shard owns one sub-ORAM. Exactly one goroutine (run) touches the ORAM and
// the enforcer's slot-consuming side; every cross-goroutine quantity is an
// atomic. The pacing loop realizes the paper's controller in wall time:
// sleep until the next slot of the data-independent grid opens, then serve
// the queue head (coalescing same-block requests) or issue a dummy access.
type shard struct {
	id    int
	oram  *pathoram.ORAM
	enf   *core.WallEnforcer // nil in Unpaced mode
	queue chan *request
	fifo  []*request // drained requests awaiting slots (loop-private)
	stop  chan struct{}

	// Cross-goroutine stats.
	reals     atomic.Uint64
	dummies   atomic.Uint64
	coalesced atomic.Uint64
	depth     atomic.Int64 // submitted but not yet completed
	stashPeak atomic.Int64
	rate      atomic.Uint64
	epoch     atomic.Int64
	failed    atomic.Bool // the shard's ORAM errored; it now rejects everything

	// group is scratch for coalescing (loop-private).
	group []*request
}

func newShard(id int, o *pathoram.ORAM, cfg Config, stop chan struct{}) (*shard, error) {
	enf, err := enforcerFor(cfg)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:    id,
		oram:  o,
		enf:   enf,
		queue: make(chan *request, cfg.QueueDepth),
		stop:  stop,
	}
	if enf != nil {
		sh.rate.Store(enf.Rate())
	}
	return sh, nil
}

// run serves the shard until the store closes.
func (sh *shard) run() {
	if sh.enf == nil {
		sh.runUnpaced()
		return
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		slot, wait := sh.enf.NextSlot()
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-sh.stop:
				return
			case <-timer.C:
			}
		} else {
			// The grid is overdue (we were busy or the host stalled):
			// consume slots back-to-back until it catches up with wall
			// time, so the issued access count matches the schedule.
			select {
			case <-sh.stop:
				return
			default:
			}
		}
		sh.fill()
		if len(sh.fifo) == 0 {
			sh.enf.TakeSlot(slot, false)
			if err := sh.oram.DummyAccess(); err != nil {
				sh.fail(err)
				return
			}
			sh.dummies.Add(1)
		} else {
			head := sh.takeGroup()
			sh.enf.TakeSlot(head, true)
			if err := sh.serveGroup(); err != nil {
				sh.fail(err)
				return
			}
			sh.reals.Add(1)
		}
		sh.publishStats()
	}
}

// runUnpaced serves requests immediately with no slot grid and no dummies —
// the unshielded base_oram mode.
func (sh *shard) runUnpaced() {
	for {
		select {
		case <-sh.stop:
			return
		case req := <-sh.queue:
			sh.fifo = append(sh.fifo, req)
			sh.fill()
			for len(sh.fifo) > 0 {
				sh.takeGroup()
				if err := sh.serveGroup(); err != nil {
					sh.fail(err)
					return
				}
				sh.reals.Add(1)
			}
			sh.publishStats()
		}
	}
}

// fail is the shard's terminal state after an ORAM error (storage/cipher
// corruption): every queued and future request is completed with the error
// until the store closes. Continuing to consume the queue matters — a
// silently dead shard would leave submitters blocked on a full queue while
// holding the store's read lock, which would in turn deadlock Close.
func (sh *shard) fail(err error) {
	sh.failed.Store(true)
	for _, req := range sh.fifo {
		sh.complete(req, result{err: err})
	}
	sh.fifo = nil
	for {
		select {
		case <-sh.stop:
			return
		case req := <-sh.queue:
			sh.complete(req, result{err: err})
		}
	}
}

// fill drains the submission queue into the loop-private FIFO without
// blocking.
func (sh *shard) fill() {
	for {
		select {
		case req := <-sh.queue:
			sh.fifo = append(sh.fifo, req)
		default:
			return
		}
	}
}

// takeGroup removes the FIFO head plus every queued request for the same
// block (coalescing), preserving the order of both the group and the
// remaining FIFO. It returns the head's arrival cycle.
func (sh *shard) takeGroup() (arrival uint64) {
	head := sh.fifo[0]
	sh.group = sh.group[:0]
	sh.group = append(sh.group, head)
	keep := sh.fifo[:1][:0] // filter in place over the same backing array
	for _, req := range sh.fifo[1:] {
		if req.local == head.local {
			sh.group = append(sh.group, req)
		} else {
			keep = append(keep, req)
		}
	}
	// Clear the tail so completed requests don't pin their buffers.
	for i := len(keep); i < len(sh.fifo); i++ {
		sh.fifo[i] = nil
	}
	sh.fifo = keep
	if n := len(sh.group) - 1; n > 0 {
		sh.coalesced.Add(uint64(n))
	}
	return head.arrival
}

// serveGroup applies the coalesced group in arrival order within a single
// ORAM access: reads observe all earlier queued writes, exactly as if each
// request had run in its own (serialized) access. The group is always
// completed (with the error, if any); a non-nil return means the ORAM
// itself is broken and the shard must stop serving.
func (sh *shard) serveGroup() error {
	err := sh.oram.Update(sh.group[0].local, func(data []byte) {
		for _, req := range sh.group {
			if req.write {
				copy(data, req.data)
			} else {
				out := make([]byte, len(data))
				copy(out, data)
				req.out = out
			}
		}
	})
	for _, req := range sh.group {
		if err != nil {
			sh.complete(req, result{err: err})
		} else if req.write {
			sh.complete(req, result{})
		} else {
			sh.complete(req, result{data: req.out})
		}
	}
	sh.group = sh.group[:0]
	return err
}

// complete delivers a result and releases the request's depth slot.
func (sh *shard) complete(req *request, res result) {
	req.resp <- res
	sh.depth.Add(-1)
}

// drain fails every queued request after the serving goroutine has exited.
func (sh *shard) drain() {
	sh.fill()
	for _, req := range sh.fifo {
		sh.complete(req, result{err: ErrClosed})
	}
	sh.fifo = nil
	for {
		select {
		case req := <-sh.queue:
			sh.complete(req, result{err: ErrClosed})
		default:
			return
		}
	}
}

// publishStats refreshes the atomic mirrors of loop-private state.
func (sh *shard) publishStats() {
	_, peak := sh.oram.StashOccupancy()
	sh.stashPeak.Store(int64(peak))
	if sh.enf != nil {
		sh.rate.Store(sh.enf.Rate())
		sh.epoch.Store(int64(sh.enf.Epoch()))
	}
}

// stats snapshots the shard's counters.
func (sh *shard) stats() ShardStats {
	return ShardStats{
		Shard:         sh.id,
		Queue:         int(sh.depth.Load()),
		RealAccesses:  sh.reals.Load(),
		DummyAccesses: sh.dummies.Load(),
		Coalesced:     sh.coalesced.Load(),
		Rate:          sh.rate.Load(),
		Epoch:         int(sh.epoch.Load()),
		StashPeak:     int(sh.stashPeak.Load()),
		Failed:        sh.failed.Load(),
	}
}
