package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// This file is the client-side resilience layer: an error taxonomy that
// separates transport failures (retry somewhere, or again later) from
// application rejections (retrying cannot help), a jittered exponential
// backoff, and a self-redialing client. The cluster router builds its
// replica failover on IsRecoverable and Backoff; RetryClient is the
// single-connection composition for callers that talk to one daemon (or one
// proxy) and want a dropped connection to heal instead of surfacing.

// IsRecoverable reports whether err is a failure that says nothing about
// the request itself: the connection died, was refused, or timed out, so
// the same operation may succeed on a replica or on a fresh connection.
// Application-level rejections (out of range, oversized payload, store
// closed) are not recoverable: every replica would answer the same way,
// and retrying would only repeat the rejection. The one coded exception is
// CodeUnavailable — "nobody reachable holds this right now" — which is
// transient by definition, so it stays retryable even after crossing a
// proxy hop as a *RemoteError.
func IsRecoverable(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return remote.Code == CodeUnavailable
	}
	var coded *Error
	if errors.As(err, &coded) {
		return coded.Code == CodeUnavailable
	}
	switch {
	case errors.Is(err, ErrClientClosed),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

// Backoff is a bounded exponential backoff policy. The zero value is usable
// and gives 10 ms · 2^attempt, capped at 1 s.
type Backoff struct {
	// Base is the delay before the first retry (default 10 ms).
	Base time.Duration
	// Max caps the delay (default 1 s).
	Max time.Duration
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// RetryConfig shapes a RetryClient's redial loop.
type RetryConfig struct {
	// Attempts is the total number of tries per operation, including the
	// first (default 4).
	Attempts int
	// Backoff paces the redials.
	Backoff Backoff
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts == 0 {
		c.Attempts = 4
	}
	return c
}

// RetryClient is a Client that survives its connection: every operation that
// fails with a recoverable (transport) error tears the connection down,
// redials with backoff, and retries, up to the configured attempt budget.
// Application errors pass through untouched on the first occurrence.
//
// It satisfies KV like Client does, so loadgen and the e2e harnesses can
// drive a daemon through it unchanged. It is safe for concurrent use; a
// redial is performed by one caller while the others wait.
type RetryClient struct {
	addr string
	cfg  RetryConfig

	mu      sync.Mutex
	cl      *Client
	closed  bool
	redials uint64
}

// RetryDial connects to a daemon at addr with redial-on-failure semantics.
// The initial dial itself is retried under the same policy, so a client can
// be created while its daemon is still coming up.
func RetryDial(addr string, cfg RetryConfig) (*RetryClient, error) {
	rc := &RetryClient{addr: addr, cfg: cfg.withDefaults()}
	var lastErr error
	for attempt := 0; attempt < rc.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(rc.cfg.Backoff.Delay(attempt - 1))
		}
		cl, err := Dial(addr)
		if err == nil {
			rc.cl = cl
			return rc, nil
		}
		lastErr = err
		if !IsRecoverable(err) {
			break
		}
	}
	return nil, lastErr
}

// Redials returns how many times the client replaced a failed connection —
// zero on a healthy link, the observable cost of each disruption survived.
func (c *RetryClient) Redials() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// current returns the live connection, dialing one if the previous died.
func (c *RetryClient) current() (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.cl != nil {
		return c.cl, nil
	}
	cl, err := Dial(c.addr)
	if err != nil {
		return nil, err
	}
	c.cl = cl
	c.redials++
	return cl, nil
}

// discard drops a connection that just failed, unless another caller
// already replaced it.
func (c *RetryClient) discard(failed *Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cl == failed && failed != nil {
		failed.Close()
		c.cl = nil
	}
}

// do runs op against the current connection, redialing on recoverable
// failures until the attempt budget runs out.
func (c *RetryClient) do(op func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Backoff.Delay(attempt - 1))
		}
		cl, err := c.current()
		if err == ErrClientClosed && c.isClosed() {
			return err // deliberately closed: retrying cannot reopen it
		}
		if err == nil {
			if err = op(cl); err == nil {
				return nil
			}
			c.discard(cl)
		}
		if !IsRecoverable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

func (c *RetryClient) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Read fetches a block, retrying across connections.
func (c *RetryClient) Read(addr uint64) (data []byte, err error) {
	err = c.do(func(cl *Client) error {
		data, err = cl.Read(addr)
		return err
	})
	return data, err
}

// Write stores a block, retrying across connections. A retried write may be
// applied twice when the first connection died after the daemon served it —
// idempotent by construction, since a block write is a full overwrite.
func (c *RetryClient) Write(addr uint64, data []byte) error {
	return c.do(func(cl *Client) error { return cl.Write(addr, data) })
}

// TenantRead fetches a block under tenant's sub-budget, retrying across
// connections.
func (c *RetryClient) TenantRead(tenant string, addr uint64) (data []byte, err error) {
	err = c.do(func(cl *Client) error {
		data, err = cl.TenantRead(tenant, addr)
		return err
	})
	return data, err
}

// TenantWrite stores a block under tenant's sub-budget, retrying across
// connections (idempotent like Write).
func (c *RetryClient) TenantWrite(tenant string, addr uint64, data []byte) error {
	return c.do(func(cl *Client) error { return cl.TenantWrite(tenant, addr, data) })
}

// ReadBatch fetches a batch, retrying whole-batch transport failures across
// connections; per-address failures inside an accepted batch pass through.
func (c *RetryClient) ReadBatch(tenant string, addrs []uint64) (results []BatchResult, err error) {
	err = c.do(func(cl *Client) error {
		results, err = cl.ReadBatch(tenant, addrs)
		return err
	})
	return results, err
}

// Stats fetches the server's counters, retrying across connections.
func (c *RetryClient) Stats() (st Stats, err error) {
	err = c.do(func(cl *Client) error {
		st, err = cl.Stats()
		return err
	})
	return st, err
}

// Ping round-trips a no-op, retrying across connections.
func (c *RetryClient) Ping() error {
	return c.do(func(cl *Client) error { return cl.Ping() })
}

// Close tears down the current connection; a closed client stays closed.
// Close is not survived by a redial — the next operation resurrecting the
// connection would turn every leaked client into a live socket — so later
// calls fail with ErrClientClosed like they do on a plain Client.
func (c *RetryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cl == nil {
		return nil
	}
	err := c.cl.Close()
	c.cl = nil
	return err
}

var _ KV = (*RetryClient)(nil)
