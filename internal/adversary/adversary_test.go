package adversary

import (
	"math/rand"
	"testing"

	"tcoram/internal/core"
	"tcoram/internal/pathoram"
)

func testKey(seed byte) (k [16]byte) {
	for i := range k {
		k[i] = seed + byte(i)
	}
	return
}

func newProbeORAM(t *testing.T, seed int64) *pathoram.ORAM {
	t.Helper()
	o, err := pathoram.NewORAM(pathoram.Geometry{Levels: 6, Z: 3, BlockBytes: 64},
		testKey(byte(seed)), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestProbeDetectsEveryAccess(t *testing.T) {
	// §3.2: every ORAM access rewrites the root bucket, so the probe
	// detects an access in every interval that contained one.
	o := newProbeORAM(t, 1)
	p := NewRootProbe(o)
	for i := 0; i < 20; i++ {
		if _, err := o.Access(pathoram.OpRead, uint64(i%5), nil); err != nil {
			t.Fatal(err)
		}
		if !p.Poll() {
			t.Fatalf("probe missed access %d", i)
		}
	}
	if p.Detections != 20 || p.Polls != 20 {
		t.Fatalf("probe stats: %d/%d", p.Detections, p.Polls)
	}
}

func TestProbeQuietWhenIdle(t *testing.T) {
	o := newProbeORAM(t, 2)
	p := NewRootProbe(o)
	for i := 0; i < 10; i++ {
		if p.Poll() {
			t.Fatalf("probe fired with no accesses (poll %d)", i)
		}
	}
}

func TestProbeCannotDistinguishDummies(t *testing.T) {
	// The probe sees that an access happened — but a dummy access changes
	// the root exactly like a real one, which is what rate enforcement
	// relies on.
	o := newProbeORAM(t, 3)
	p := NewRootProbe(o)
	if err := o.DummyAccess(); err != nil {
		t.Fatal(err)
	}
	if !p.Poll() {
		t.Fatal("probe missed a dummy access")
	}
	if _, err := o.Access(pathoram.OpRead, 1, nil); err != nil {
		t.Fatal(err)
	}
	if !p.Poll() {
		t.Fatal("probe missed a real access")
	}
}

func randomSecret(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 0
	}
	return out
}

func TestMaliciousProgramLeaksThroughUnshieldedORAM(t *testing.T) {
	// Fig 1 (a): against base_oram, the access-time trace transmits the
	// secret verbatim — the adversary decodes all bits.
	secret := randomSecret(64, 4)
	prog := NewMaliciousProgram(secret)

	// Model the timing directly: each step takes StepInstrs cycles of
	// compute; a transmitting step adds one ORAM access.
	oram := core.NewUnshieldedORAM(1488)
	oram.RecordSlots = true
	step := uint64(prog.StepInstrs) + 1488 // worst-case step duration
	now := uint64(0)
	for i, bit := range secret {
		stepStart := uint64(i) * step
		if now < stepStart {
			now = stepStart
		}
		if bit {
			now = oram.Fetch(now, uint64(i))
		}
	}
	decoded := prog.DecodeFromSlots(oram.Slots(), step, len(secret))
	if got := BitsRecovered(secret, decoded); got != len(secret) {
		t.Fatalf("adversary recovered %d/%d bits from base_oram", got, len(secret))
	}
}

func TestMaliciousProgramDefeatedByEnforcer(t *testing.T) {
	// Against the static enforcer the observable slot trace is the fixed
	// periodic grid regardless of the secret: two different secrets give
	// identical traces.
	run := func(secret []bool) []uint64 {
		enf, err := core.NewEnforcer(core.EnforcerConfig{
			ORAMLatency: 1488,
			Rates:       []uint64{1000},
			InitialRate: 1000,
			RecordSlots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		step := uint64(2600)
		for i, bit := range secret {
			if bit {
				enf.Fetch(uint64(i)*step, uint64(i))
			}
		}
		enf.Sync(uint64(len(secret)+2) * step)
		return core.SlotStarts(enf.Slots())
	}
	a := run(randomSecret(48, 5))
	b := run(randomSecret(48, 6))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %d vs %d — secret leaked", i, a[i], b[i])
		}
	}
}

func TestReconstructSchedule(t *testing.T) {
	hist := []core.RateChange{
		{Cycle: 0, Rate: 995, Epoch: 0},
		{Cycle: 1000, Rate: 45, Epoch: 1},
		{Cycle: 3000, Rate: 195, Epoch: 2},
	}
	rec := ReconstructSchedule(hist, 4)
	if rec.Transitions != 2 {
		t.Fatalf("Transitions = %d, want 2 (epoch 0 is not a choice)", rec.Transitions)
	}
	if rec.Bits != 4 { // 2 transitions × lg 4
		t.Fatalf("Bits = %v, want 4", rec.Bits)
	}
	if len(rec.Rates) != 3 || rec.Rates[0] != 995 || rec.Rates[2] != 195 {
		t.Fatalf("Rates = %v", rec.Rates)
	}
	// A static run (epoch 0 only) reveals nothing; so does |R| = 1, where
	// the single "choice" carries lg 1 = 0 bits.
	if rec := ReconstructSchedule(hist[:1], 4); rec.Transitions != 0 || rec.Bits != 0 {
		t.Fatalf("static run reconstruction = %+v, want no information", rec)
	}
	if rec := ReconstructSchedule(hist, 1); rec.Bits != 0 {
		t.Fatalf("|R|=1 reconstruction leaked %v bits", rec.Bits)
	}
}

// TestReconstructScheduleMatchesEnforcer replays a real enforcer's
// published history and checks the reconstruction agrees with the
// enforcer's own state — the simulator-side half of the validation the
// server e2e test performs on a live run.
func TestReconstructScheduleMatchesEnforcer(t *testing.T) {
	rates := []uint64{50, 200, 800}
	enf, err := core.NewEnforcer(core.EnforcerConfig{
		ORAMLatency: 100,
		Rates:       rates,
		InitialRate: 800,
		Schedule:    core.EpochSchedule{FirstLen: 4000, Growth: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var done uint64
	for i := 0; i < 300; i++ {
		done = enf.Fetch(done+50, uint64(i))
	}
	rec := ReconstructSchedule(enf.RateChanges(), len(rates))
	if rec.Transitions != enf.Epoch() {
		t.Fatalf("reconstructed %d transitions, enforcer is in epoch %d", rec.Transitions, enf.Epoch())
	}
	if rec.Transitions == 0 {
		t.Fatal("run crossed no epoch boundary — test exercises nothing")
	}
	if last := rec.Rates[len(rec.Rates)-1]; last != enf.Rate() {
		t.Fatalf("reconstructed final rate %d, enforcer at %d", last, enf.Rate())
	}
}

func TestReplayAttackerAccumulates(t *testing.T) {
	r := ReplayAttacker{PerRunBits: 32, Runs: 4}
	if r.TotalBits() != 128 {
		t.Fatalf("TotalBits = %v, want 128", r.TotalBits())
	}
}

func TestBrokenDeterminismDiverges(t *testing.T) {
	// §8.1: memory-latency variation between "deterministic" replays
	// flips the learner's choices → the defence leaks fresh traces.
	divergent, atJitter, seqA, seqB := BrokenDeterminismDemo(1488, 800)
	if !divergent {
		t.Fatalf("no jitter ≤ 800 diverged: %v", seqA)
	}
	if atJitter == 0 || len(seqB) == 0 {
		t.Fatalf("divergence metadata missing: jitter=%d", atJitter)
	}
	// Sanity: zero jitter range means no divergence is even attempted.
	same, _, _, _ := BrokenDeterminismDemo(1488, 0)
	if same {
		t.Fatal("empty jitter sweep reported divergence")
	}
}

func TestBitsRecoveredPartial(t *testing.T) {
	secret := []bool{true, false, true}
	decoded := []bool{true, true, true}
	if got := BitsRecovered(secret, decoded); got != 2 {
		t.Fatalf("BitsRecovered = %d, want 2", got)
	}
	if got := BitsRecovered(secret, nil); got != 0 {
		t.Fatalf("BitsRecovered(nil) = %d, want 0", got)
	}
}

func TestMaliciousProgramInstructionShape(t *testing.T) {
	prog := NewMaliciousProgram([]bool{true, false})
	instrs := prog.Instructions()
	loads := 0
	for _, ins := range instrs {
		if ins.Kind.String() == "load" {
			loads++
		}
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1 (one per 1-bit)", loads)
	}
	if len(instrs) != 2*prog.StepInstrs+1 {
		t.Fatalf("stream length = %d", len(instrs))
	}
}
