// Package adversary implements the attacker models the paper analyzes:
//
//   - the root-bucket probing attack of §3.2, which recovers ORAM access
//     timing by polling the (probabilistically re-encrypted) root bucket in
//     shared DRAM;
//   - Figure 1's malicious program P1, which encodes secret bits in its
//     ORAM request times;
//   - the replay attacker of §4.3/§8, who reruns a bounded-leakage session
//     to accumulate bits;
//   - the §8.1 analysis of the broken HMAC-determinism replay defence,
//     where main-memory timing jitter re-opens the channel.
package adversary

import (
	"bytes"
	"math"

	"tcoram/internal/core"
	"tcoram/internal/pathoram"
	"tcoram/internal/trace"
)

// Probe watches one bucket of a Path ORAM's untrusted storage and detects
// accesses by ciphertext change (§3.2: "by performing two reads to the root
// bucket at times t and t′ ... the adversary learns if ≥ 1 ORAM access has
// been made").
type Probe struct {
	store  pathoram.BucketStore
	bucket uint64
	last   []byte
	// Detections counts probe intervals in which at least one access was
	// observed.
	Detections int
	// Polls counts probe reads.
	Polls int
}

// NewRootProbe attaches a probe to the root bucket (index 0), which lies on
// every path and is therefore rewritten by every access — real or dummy.
func NewRootProbe(o *pathoram.ORAM) *Probe {
	st := o.Storage()
	return &Probe{store: st, bucket: 0, last: st.Snapshot(0)}
}

// Poll reads the watched bucket and reports whether its raw bytes changed
// since the previous poll — i.e. whether ≥1 ORAM access occurred in the
// interval.
func (p *Probe) Poll() bool {
	p.Polls++
	cur := p.store.Snapshot(p.bucket)
	changed := !bytes.Equal(cur, p.last)
	p.last = cur
	if changed {
		p.Detections++
	}
	return changed
}

// MaliciousProgram builds Figure 1 (a)'s program P1 as an instruction
// stream: for each secret bit, it either waits (a run of ALU instructions)
// or forces an LLC miss (a load to a fresh cold line). Against an
// unprotected ORAM, the access/no-access pattern per time step transmits
// the secret verbatim.
type MaliciousProgram struct {
	Secret []bool
	// StepInstrs is the number of filler instructions per time step.
	StepInstrs int
}

// NewMaliciousProgram wraps a secret bit string.
func NewMaliciousProgram(secret []bool) *MaliciousProgram {
	return &MaliciousProgram{Secret: secret, StepInstrs: 64}
}

// Instructions emits the stream. Cold lines stride far apart so every
// transmitting load misses the LLC.
func (m *MaliciousProgram) Instructions() []trace.Instr {
	var out []trace.Instr
	coldBase := uint64(1) << 33
	for i, bit := range m.Secret {
		if bit {
			out = append(out, trace.Instr{Kind: trace.Load, Addr: coldBase + uint64(i)*(1<<20)})
		}
		for j := 0; j < m.StepInstrs; j++ {
			out = append(out, trace.Instr{Kind: trace.IntALU})
		}
	}
	return out
}

// DecodeFromSlots recovers the secret from an observed access-time trace
// given the per-step duration: step k carried a 1 iff some access started
// within its window. This is the adversary's decoder for the unprotected
// ORAM; against the enforcer, slot times are rate-locked and the decode
// degenerates (tests assert both).
func (m *MaliciousProgram) DecodeFromSlots(slots []core.Slot, stepCycles uint64, steps int) []bool {
	out := make([]bool, steps)
	for _, s := range slots {
		k := int(s.Start / stepCycles)
		if k >= 0 && k < steps {
			out[k] = true
		}
	}
	return out
}

// BitsRecovered counts positions where the decoded string matches a 1-bit
// transmission of the secret.
func BitsRecovered(secret, decoded []bool) int {
	n := 0
	for i := range secret {
		if i < len(decoded) && decoded[i] == secret[i] {
			n++
		}
	}
	return n
}

// ScheduleReconstruction is what the §2.2.1 timing adversary recovers from
// watching a dynamic-rate session's slot grid: slot spacing directly
// reveals the rate in force, so the observable trace decomposes into a
// per-epoch rate sequence — one |R|-way choice per transition — and nothing
// more. The server exports the same information as ShardStats.RateChanges;
// reconstructing from that history and comparing against the service's own
// leakage account validates the account against the adversary's view.
type ScheduleReconstruction struct {
	// Rates is the reconstructed per-epoch rate sequence, epoch 0 first.
	Rates []uint64
	// Transitions counts the observable epoch transitions. Epoch 0's rate
	// is published before execution (the paper allows any public initial
	// value), so it is not a choice and carries no information.
	Transitions int
	// Bits is the information content of the reconstruction: lg|R| per
	// transition, computed here from first principles so the comparison
	// against the service's accountant is an independent check rather than
	// the same formula evaluated twice by shared code.
	Bits float64
}

// ReconstructSchedule replays a rate-change history the way the timing
// adversary would consume the observable slot grid of a live run.
func ReconstructSchedule(history []core.RateChange, numRates int) ScheduleReconstruction {
	var rec ScheduleReconstruction
	for _, rc := range history {
		rec.Rates = append(rec.Rates, rc.Rate)
		if rc.Epoch > 0 {
			rec.Transitions++
		}
	}
	if numRates > 1 {
		rec.Bits = float64(rec.Transitions) * math.Log2(float64(numRates))
	}
	return rec
}

// ReplayAttacker models §4.3: each replay of an L-bit-bounded execution
// with fresh parameters yields up to L new bits.
type ReplayAttacker struct {
	PerRunBits float64
	Runs       int
}

// TotalBits is the accumulated leakage across replays.
func (r ReplayAttacker) TotalBits() float64 { return r.PerRunBits * float64(r.Runs) }

// brokenDemoRun executes §8.1's "deterministic" program — a fixed sequence
// of compute gaps alternating between a busy and a quiet phase — against an
// enforcer whose memory latency is olat, and returns the chosen rate
// sequence.
func brokenDemoRun(olat uint64) []uint64 {
	enf, err := core.NewEnforcer(core.EnforcerConfig{
		ORAMLatency: olat,
		Rates:       core.PaperRates(4),
		InitialRate: core.InitialRate,
		Schedule:    core.EpochSchedule{FirstLen: 1 << 16, Growth: 2},
	})
	if err != nil {
		panic(err)
	}
	// The program itself is perfectly deterministic: the i-th request
	// follows the (i mod 100)-dependent compute gap. Wall-clock request
	// times still depend on the service latency, so latency jitter shifts
	// which epoch observes which phase.
	var done uint64
	for i := 0; done < 1<<21; i++ {
		gap := uint64(1000)
		if i%100 >= 50 {
			gap = 5000
		}
		done = enf.Fetch(done+gap, uint64(i))
	}
	var rates []uint64
	for _, rc := range enf.RateChanges() {
		rates = append(rates, rc.Rate)
	}
	return rates
}

// BrokenDeterminismDemo reproduces §8.1's analysis: a replay defence that
// fixes (program, data, E, R) via HMAC and relies on deterministic
// re-execution fails because main-memory latency varies between runs (bus
// contention, or an adversarial DoS), perturbing IPC and hence the
// learner's rate choices. The demo replays the same program while sweeping
// the latency perturbation up to maxJitter cycles and reports the first
// jitter whose rate sequence diverges from the unjittered run — each
// divergence is a fresh observable trace, defeating the defence.
func BrokenDeterminismDemo(baseLatency, maxJitter uint64) (divergent bool, atJitter uint64, seqA, seqB []uint64) {
	seqA = brokenDemoRun(baseLatency)
	for j := uint64(25); j <= maxJitter; j += 25 {
		seqB = brokenDemoRun(baseLatency + j)
		if len(seqA) != len(seqB) {
			return true, j, seqA, seqB
		}
		for i := range seqA {
			if seqA[i] != seqB[i] {
				return true, j, seqA, seqB
			}
		}
	}
	return false, 0, seqA, seqA
}
