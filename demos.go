package tcoram

import (
	"crypto/rand"
	"math/bits"
	mrand "math/rand"

	"tcoram/internal/adversary"
	"tcoram/internal/core"
	"tcoram/internal/pathoram"
	"tcoram/internal/protocol"
)

// This file exposes the security demonstrations through the public API so
// the examples and cmd/attack exercise the same surface a downstream user
// would.

// DemoORAM is a small functional Path ORAM with byte-accurate encrypted
// storage, suitable for the probing-attack demonstrations. Production
// geometries are simulated by the timing model instead (see DESIGN.md).
type DemoORAM = pathoram.ORAM

// NewDemoORAM builds a functional Path ORAM holding 2^(levels-1) leaves of
// Z=3 × 64-byte blocks, keyed randomly, with deterministic leaf remapping
// drawn from seed.
func NewDemoORAM(levels int, seed int64) (*DemoORAM, error) {
	var key [16]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, err
	}
	return pathoram.NewORAM(
		pathoram.Geometry{Levels: levels, Z: 3, BlockBytes: 64},
		key, mrand.New(mrand.NewSource(seed)))
}

// NewRootProbe attaches the §3.2 root-bucket probe to a demo ORAM.
func NewRootProbe(o *DemoORAM) *RootProbe { return adversary.NewRootProbe(o) }

// NewMaliciousProgram wraps a secret as Figure 1 (a)'s program P1.
func NewMaliciousProgram(secret []bool) *MaliciousProgram {
	return adversary.NewMaliciousProgram(secret)
}

// LeakDemoResult reports how many secret bits an adversary recovers from
// the ORAM access-time trace under each controller.
type LeakDemoResult struct {
	SecretBits      int
	UnprotectedBits int  // recovered against base_oram
	ShieldedTraceEq bool // true if two different secrets give identical traces under the enforcer
}

// RunLeakDemo executes the Figure 1 demonstration: the malicious program
// transmits the secret through its request times; against base_oram every
// bit is recovered, while the rate enforcer pins the observable trace to
// the slot grid (identical for any secret).
func RunLeakDemo(secret []bool) LeakDemoResult {
	prog := adversary.NewMaliciousProgram(secret)
	step := uint64(prog.StepInstrs) + 1488

	// Unprotected: the adversary decodes the trace directly.
	oram := core.NewUnshieldedORAM(1488)
	oram.RecordSlots = true
	var now uint64
	for i, bit := range secret {
		if s := uint64(i) * step; now < s {
			now = s
		}
		if bit {
			now = oram.Fetch(now, uint64(i))
		}
	}
	decoded := prog.DecodeFromSlots(oram.Slots(), step, len(secret))

	// Shielded: compare the slot trace against an all-zeros secret.
	runShielded := func(sec []bool) []uint64 {
		enf, err := core.NewEnforcer(core.EnforcerConfig{
			ORAMLatency: 1488,
			Rates:       []uint64{1000},
			InitialRate: 1000,
			RecordSlots: true,
		})
		if err != nil {
			panic(err)
		}
		for i, bit := range sec {
			if bit {
				enf.Fetch(uint64(i)*2600, uint64(i))
			}
		}
		enf.Sync(uint64(len(sec)+2) * 2600)
		return core.SlotStarts(enf.Slots())
	}
	a := runShielded(secret)
	b := runShielded(make([]bool, len(secret)))
	eq := len(a) == len(b)
	for i := 0; eq && i < len(a); i++ {
		eq = a[i] == b[i]
	}

	return LeakDemoResult{
		SecretBits:      len(secret),
		UnprotectedBits: adversary.BitsRecovered(secret, decoded),
		ShieldedTraceEq: eq,
	}
}

// BrokenDeterminismDemo re-exports the §8.1 analysis: sweeping memory
// latency jitter up to maxJitter, report whether any replay of the same
// program yields a different rate sequence.
func BrokenDeterminismDemo(baseLatency, maxJitter uint64) (divergent bool, atJitter uint64) {
	d, j, _, _ := adversary.BrokenDeterminismDemo(baseLatency, maxJitter)
	return d, j
}

// NewSecureProcessor manufactures a protocol processor endpoint (2048-bit
// device key).
func NewSecureProcessor() (*SecureProcessor, error) {
	return protocol.NewProcessor(rand.Reader, 2048)
}

// NewProtocolUser creates the user endpoint.
func NewProtocolUser() *User { return protocol.NewUser(rand.Reader) }

// Handshake performs the §8 run-once session-key exchange.
func Handshake(u *User, p *SecureProcessor) error { return protocol.Handshake(u, p) }

// PopCount64 is a tiny convenience for examples summarizing secrets.
func PopCount64(v uint64) int { return bits.OnesCount64(v) }
