// Replay attack demo (§4.3, §8): an L-bit bound is only meaningful per
// execution — a server that can replay the user's data accumulates L bits
// per run. The demo shows the broken HMAC-determinism defence (§8.1) and
// the working run-once session protocol (§8).
package main

import (
	"errors"
	"fmt"
	"log"

	"tcoram"
	"tcoram/internal/leakage"
	"tcoram/internal/protocol"
)

func main() {
	// Part 1: why replays matter.
	perRun := tcoram.LeakageBudget(4, 4)
	fmt.Printf("leakage per execution (dynamic_R4_E4): %s\n", perRun)
	for _, n := range []int{1, 4, 32} {
		fmt.Printf("  after %2d replays: %.0f bits\n", n, float64(perRun)*float64(n))
	}

	// Part 2: the broken defence — deterministic re-execution + HMAC.
	fmt.Println("\n§8.1's broken defence (HMAC-pinned program + deterministic replay):")
	divergent, at := tcoram.BrokenDeterminismDemo(1488, 800)
	fmt.Printf("  memory-latency jitter of %d cycles changes the rate sequence: %v\n", at, divergent)
	fmt.Println("  → replays are NOT identical; each one is a fresh observable trace.")

	// Part 3: the working defence — run-once sessions.
	fmt.Println("\n§8's working defence (processor forgets the session key):")
	proc, err := tcoram.NewSecureProcessor()
	if err != nil {
		log.Fatal(err)
	}
	user := tcoram.NewProtocolUser()
	if err := tcoram.Handshake(user, proc); err != nil {
		log.Fatal(err)
	}

	program := []byte("certified word-count binary")
	job, err := user.PrepareJob([]byte("the user's private mailbox"), program, leakage.Bits(94))
	if err != nil {
		log.Fatal(err)
	}
	params := tcoram.LeakageParams{NumRates: 4, EpochGrowth: 4, Tmax: 1 << 62}
	if err := proc.Admit(job, program, params); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  run 1: job admitted (32-bit budget ≤ 94-bit limit), executed")
	sealed, err := proc.SealResult([]byte("result: 42 messages"))
	if err != nil {
		log.Fatal(err)
	}
	plain, err := user.Decrypt(sealed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  user decrypts result: %q\n", plain)

	proc.EndSession() // the processor zeroes K
	err = proc.Admit(job, program, params)
	fmt.Printf("  run 2 (replay of the same job): %v\n", err)
	if errors.Is(err, protocol.ErrSessionClosed) {
		fmt.Println("  → the ciphertext is now undecryptable; the data ran exactly once.")
	}
}
