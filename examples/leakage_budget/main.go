// Leakage budget explorer: sweep |R| and the epoch growth factor to see how
// the leakage limit L trades against program efficiency (§9.5) — the
// "knob" the paper gives the user. For each budget the example runs a
// mixed workload and reports performance and power next to the bound.
package main

import (
	"fmt"
	"log"

	"tcoram"
)

func main() {
	spec, _ := tcoram.WorkloadByName("gobmk")
	base, err := tcoram.Simulate(spec, tcoram.Config{
		Scheme: tcoram.BaseDRAM, Instructions: 4_000_000, WarmupInstrs: 2_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("How much does each leaked bit buy? (benchmark: gobmk)")
	fmt.Printf("%-16s %12s %8s %10s\n", "config", "leak(bits)", "perf(X)", "power(W)")

	type point struct {
		rates  int
		growth uint64
	}
	// Fig 8a varies |R| at doubling epochs; Fig 8b varies epochs at |R|=4.
	for _, p := range []point{
		{16, 2}, {8, 2}, {4, 2}, {2, 2}, // Fig 8a
		{4, 4}, {4, 8}, {4, 16}, // Fig 8b
	} {
		cfg := tcoram.Config{
			Scheme:       tcoram.DynamicORAM,
			NumRates:     p.rates,
			EpochGrowth:  p.growth,
			Instructions: 4_000_000,
			WarmupInstrs: 2_000_000,
		}
		res, err := tcoram.Simulate(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.0f %8.2f %10.3f\n",
			cfg.Name(), float64(tcoram.LeakageBudget(p.rates, p.growth)),
			res.PerfOverhead(base), res.Power.Watts())
	}

	fmt.Println("\nZero-leakage references (static rates):")
	for _, r := range []uint64{300, 1300} {
		cfg := tcoram.Config{
			Scheme: tcoram.StaticORAM, StaticRate: r,
			Instructions: 4_000_000, WarmupInstrs: 2_000_000,
		}
		res, err := tcoram.Simulate(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12d %8.2f %10.3f\n", cfg.Name(), 0, res.PerfOverhead(base), res.Power.Watts())
	}

	fmt.Println("\nReading: more rates / more epochs = finer adaptation but a larger bound;")
	fmt.Println("the paper's sweet spot is R4/E4 (32 bits) or R4/E16 (16 bits), §9.5.")
}
