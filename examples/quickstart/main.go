// Quickstart: simulate one benchmark under the four memory schemes the
// paper compares and print the performance/power/leakage trade-off — the
// library's core result in ~40 lines.
package main

import (
	"fmt"
	"log"

	"tcoram"
)

func main() {
	spec, ok := tcoram.WorkloadByName("astar")
	if !ok {
		log.Fatal("benchmark not found")
	}

	// Keep the demo fast: 4M measured instructions, 2M warmup.
	base := tcoram.Config{Instructions: 4_000_000, WarmupInstrs: 2_000_000}

	configs := []tcoram.Config{
		{Scheme: tcoram.BaseDRAM},                                 // insecure DRAM
		{Scheme: tcoram.BaseORAM},                                 // ORAM, timing unprotected
		{Scheme: tcoram.StaticORAM, StaticRate: 300},              // zero-leakage static rate
		{Scheme: tcoram.DynamicORAM, NumRates: 4, EpochGrowth: 4}, // the paper's scheme
	}

	var dram tcoram.Result
	fmt.Printf("%-15s %10s %8s %9s %12s\n", "scheme", "cycles", "IPC", "power(W)", "leakage")
	for i, cfg := range configs {
		cfg.Instructions = base.Instructions
		cfg.WarmupInstrs = base.WarmupInstrs
		res, err := tcoram.Simulate(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			dram = res
		}
		leak := res.LeakageBits.String()
		if cfg.Scheme == tcoram.BaseORAM {
			leak = "unbounded"
		}
		fmt.Printf("%-15s %10d %8.4f %9.3f %12s", cfg.Name(), res.Cycles, res.IPC, res.Power.Watts(), leak)
		if i > 0 {
			fmt.Printf("   (%.2fx slower than base_dram)", res.PerfOverhead(dram))
		}
		fmt.Println()
	}

	fmt.Println("\nThe dynamic scheme approaches base_oram's performance while bounding")
	fmt.Printf("timing leakage to %s — the paper's leakage/efficiency trade-off.\n",
		tcoram.LeakageBudget(4, 4))
}
