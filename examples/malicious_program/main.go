// Malicious program demo (Figure 1a): a program that encodes a secret in
// its ORAM request times leaks every bit against an unprotected ORAM, and
// nothing beyond the rate schedule against the enforcer. The demo also
// shows the §3.2 root-bucket probe that makes the attack practical.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcoram"
	"tcoram/internal/pathoram"
)

func main() {
	// Part 1: the adversary's measurement tool — probing the root bucket.
	o, err := tcoram.NewDemoORAM(8, 7)
	if err != nil {
		log.Fatal(err)
	}
	probe := tcoram.NewRootProbe(o)
	if _, err := o.Access(pathoram.OpWrite, 3, make([]byte, 64)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe detects the access: %v (ciphertext of the root changed)\n", probe.Poll())
	fmt.Printf("probe between accesses:   %v\n", probe.Poll())

	// Part 2: P1 transmits a 64-bit secret through access timing.
	rng := rand.New(rand.NewSource(42))
	secret := make([]bool, 64)
	ones := 0
	for i := range secret {
		secret[i] = rng.Intn(2) == 1
		if secret[i] {
			ones++
		}
	}
	fmt.Printf("\nsecret: %d bits (%d ones)\n", len(secret), ones)

	res := tcoram.RunLeakDemo(secret)
	fmt.Printf("recovered from base_oram timing trace: %d/%d bits\n",
		res.UnprotectedBits, res.SecretBits)
	fmt.Printf("enforcer slot traces identical across secrets: %v\n", res.ShieldedTraceEq)

	fmt.Println("\nWith rate enforcement the observable trace is the periodic slot grid;")
	fmt.Println("what CAN leak is only the per-epoch rate choice:")
	for _, cfg := range []struct {
		r int
		g uint64
	}{{4, 2}, {4, 4}, {4, 16}} {
		fmt.Printf("  dynamic_R%d_E%-2d → ≤ %s per execution\n",
			cfg.r, cfg.g, tcoram.LeakageBudget(cfg.r, cfg.g))
	}
}
