// Command oramproxy serves a multi-node ORAM cluster behind one address: it
// speaks the same JSON-lines protocol as oramd (clients and loadgen point at
// it unchanged) and consistently routes every request to the daemon owning
// the address, with per-node pipelined connection pools and cluster-wide
// stat/leakage aggregation (internal/cluster).
//
// Topology example — two daemons, one proxy, one load generator:
//
//	oramd -addr :7401 -shards 4 -blocks 32768 &
//	oramd -addr :7402 -shards 4 -blocks 32768 &
//	oramproxy -addr :7400 -nodes 127.0.0.1:7401,127.0.0.1:7402 -leak-budget 128
//	loadgen -addr 127.0.0.1:7400 -blocks 65536
//
// The node list's order defines the routing function; start every proxy
// over the same data with the same order.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tcoram/internal/cluster"
	"tcoram/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7400", "listen address")
		nodes      = flag.String("nodes", "", "comma-separated oramd addresses; order defines routing and must be stable across restarts")
		conns      = flag.Int("conns", 2, "pipelined connections per node")
		blocks     = flag.Uint64("blocks", 0, "served address space in blocks (0 = all the nodes hold)")
		leakBudget = flag.Float64("leak-budget", 0, "cluster-wide leakage budget in bits across all nodes' shards (0 = account only)")
	)
	flag.Parse()

	nodeList, err := cluster.ParseNodes(*nodes)
	if err != nil {
		fatal(fmt.Errorf("%w (set -nodes)", err))
	}
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:             nodeList,
		ConnsPerNode:      *conns,
		Blocks:            *blocks,
		LeakageBudgetBits: *leakBudget,
	})
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("oramproxy: routing %d blocks × %d B across %d nodes on %s (%d conns/node)\n",
		r.Blocks(), r.BlockBytes(), r.Nodes(), l.Addr(), *conns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- server.Serve(l, r) }()
	select {
	case s := <-sig:
		fmt.Printf("oramproxy: %v — shutting down\n", s)
	case err := <-done:
		if !server.IsClosedErr(err) {
			fmt.Fprintf(os.Stderr, "oramproxy: accept: %v\n", err)
		}
	}
	l.Close()

	// The nodes keep serving (their slot grids are theirs); report what the
	// cluster's timing channel gave away while we were fronting it.
	if stats, err := r.ServiceStats(); err != nil {
		fmt.Fprintf(os.Stderr, "oramproxy: could not fetch final cluster stats: %v\n", err)
	} else {
		real, dummy, coalesced := stats.Totals()
		fmt.Printf("oramproxy: cluster served %d real + %d dummy accesses (dummy fraction %.3f), %d coalesced\n",
			real, dummy, stats.DummyFraction(), coalesced)
		fmt.Printf("oramproxy: %s\n", stats.LeakageSummary())
		if warning, ok := stats.SlipWarning(); ok {
			fmt.Printf("oramproxy: %s\n", warning)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oramproxy: %v\n", err)
	os.Exit(1)
}
