// Command oramproxy serves a multi-node ORAM cluster behind one address: it
// speaks the same JSON-lines protocol as oramd (clients and loadgen point at
// it unchanged) and routes every request to the K replica daemons owning the
// address under a versioned node map (routing epoch), with per-node
// pipelined connection pools, health-probed failover, optional live
// rebalancing from a previous topology, and cluster-wide stat/leakage
// aggregation (internal/cluster).
//
// Topology example — three daemons, replication 2, one load generator:
//
//	oramd -addr :7401 -shards 4 -blocks 32768 &
//	oramd -addr :7402 -shards 4 -blocks 32768 &
//	oramd -addr :7403 -shards 4 -blocks 32768 &
//	oramproxy -addr :7400 -nodes 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 \
//	          -replicas 2 -epoch 1 -leak-budget 128
//	loadgen -addr 127.0.0.1:7400 -blocks 49152
//
// The node list's order defines the routing function; the proxy prints the
// map's fingerprint at startup — pass it back via -map-check on later
// starts to fail fast on a drifted or reordered list. To change membership,
// restart the proxy with the new list under a higher -epoch and the old
// list in -prev-nodes: blocks migrate to the new topology at the -migrate-
// every rate while the proxy keeps serving.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcoram/internal/cluster"
	"tcoram/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7400", "listen address")
		nodes        = flag.String("nodes", "", "comma-separated oramd addresses; order defines routing and must be stable across restarts")
		epoch        = flag.Uint64("epoch", 1, "routing epoch of this node map; bump on every membership change")
		replicas     = flag.Int("replicas", 2, "replication factor K: each block written to K successor nodes, read from the first healthy one")
		mapCheck     = flag.String("map-check", "", "expected node-map fingerprint; refuse to start if the -nodes/-replicas map differs (guards against list drift)")
		conns        = flag.Int("conns", 2, "pipelined connections per node")
		blocks       = flag.Uint64("blocks", 0, "served address space in blocks (0 = all the topology holds: nodes × smallest node / replicas)")
		probeEvery   = flag.Duration("probe-every", 250*time.Millisecond, "health-probe period: failing nodes are ejected from reads and reinstated when they answer again")
		retries      = flag.Int("retries", 3, "full passes over an address's replica set before an operation fails")
		prevNodes    = flag.String("prev-nodes", "", "previous topology's node list: migrate every block from it to -nodes while serving (requires -prev-epoch < -epoch)")
		prevEpoch    = flag.Uint64("prev-epoch", 0, "routing epoch the -prev-nodes topology served under")
		prevReplicas = flag.Int("prev-replicas", 0, "previous topology's replication factor (0 = 1)")
		migrateEvery = flag.Duration("migrate-every", time.Millisecond, "public migration rate: one block copied from the previous topology per tick")
	)
	budget := server.NewBudgetFlags(flag.CommandLine, "", "cluster-wide, across all nodes' shards")
	flag.Parse()

	nodeList, err := cluster.ParseNodes(*nodes)
	if err != nil {
		fatal(fmt.Errorf("%w (set -nodes)", err))
	}
	leakBudget, tenantBudgets, err := budget.Parse()
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Config{
		Nodes:             nodeList,
		Epoch:             *epoch,
		Replicas:          *replicas,
		ExpectFingerprint: *mapCheck,
		ConnsPerNode:      *conns,
		Blocks:            *blocks,
		LeakageBudgetBits: leakBudget,
		TenantBudgets:     tenantBudgets,
		ProbeEvery:        *probeEvery,
		RetryAttempts:     *retries,
		MigrateEvery:      *migrateEvery,
	}
	if *prevNodes != "" {
		if cfg.PrevNodes, err = cluster.ParseNodes(*prevNodes); err != nil {
			fatal(fmt.Errorf("-prev-nodes: %w", err))
		}
		cfg.PrevEpoch = *prevEpoch
		cfg.PrevReplicas = *prevReplicas
	}
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("oramproxy: routing %d blocks × %d B across %d nodes on %s (epoch %d, %d replicas, map %s, %d conns/node)\n",
		r.Blocks(), r.BlockBytes(), r.Nodes(), l.Addr(), r.Epoch(), *replicas, r.Fingerprint(), *conns)
	if len(tenantBudgets) > 0 {
		fmt.Printf("oramproxy: enforcing %d per-tenant leakage sub-budgets cluster-wide\n", len(tenantBudgets))
	}
	if *prevNodes != "" {
		fmt.Printf("oramproxy: migrating from epoch %d (%d nodes) at one block per %v\n",
			*prevEpoch, len(cfg.PrevNodes), *migrateEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- server.Serve(l, r) }()
	select {
	case s := <-sig:
		fmt.Printf("oramproxy: %v — shutting down\n", s)
	case err := <-done:
		if !server.IsClosedErr(err) {
			fmt.Fprintf(os.Stderr, "oramproxy: accept: %v\n", err)
		}
	}
	l.Close()

	// The nodes keep serving (their slot grids are theirs); report what the
	// cluster's timing channel gave away while we were fronting it.
	if stats, err := r.ServiceStats(); err != nil {
		fmt.Fprintf(os.Stderr, "oramproxy: could not fetch final cluster stats: %v\n", err)
	} else {
		real, dummy, coalesced := stats.Totals()
		fmt.Printf("oramproxy: cluster served %d real + %d dummy accesses (dummy fraction %.3f), %d coalesced\n",
			real, dummy, stats.DummyFraction(), coalesced)
		if stats.MigrationActive {
			fmt.Printf("oramproxy: migration still active at watermark %d\n", stats.MigrationWatermark)
		}
		for _, n := range stats.Nodes {
			if n.Ejections > 0 || !n.Healthy {
				fmt.Printf("oramproxy: node %d (%s) healthy=%v ejections=%d failovers=%d write-misses=%d last-error=%q\n",
					n.Node, n.Addr, n.Healthy, n.Ejections, n.Failovers, n.ReplicaWriteMisses, n.LastError)
			}
		}
		fmt.Printf("oramproxy: %s\n", stats.LeakageSummary())
		if warning, ok := stats.SlipWarning(); ok {
			fmt.Printf("oramproxy: %s\n", warning)
		}
		for _, ts := range stats.Tenants {
			fmt.Printf("oramproxy: tenant %q leaked %.1f bits over %d transitions (budget %.1f, exceeded %v)\n",
				ts.Tenant, ts.LeakedBits, ts.Transitions, ts.BudgetBits, ts.Exceeded)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oramproxy: %v\n", err)
	os.Exit(1)
}
