// Command oramsim runs one benchmark under one memory-controller scheme and
// prints the run summary: cycles, IPC, overhead inputs, power breakdown,
// rate history and leakage bound.
//
// Usage:
//
//	oramsim -bench mcf -scheme dynamic -rates 4 -growth 4 -instr 20000000
//	oramsim -bench h264ref -scheme static -rate 300
//	oramsim -bench perlbench -input splitmail -scheme base_oram
package main

import (
	"flag"
	"fmt"
	"os"

	"tcoram"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name (mcf, omnetpp, libquantum, bzip2, hmmer, astar, gcc, gobmk, sjeng, h264ref, perlbench)")
		input   = flag.String("input", "", "benchmark input variant (perlbench: diffmail/splitmail; astar: rivers/biglakes)")
		scheme  = flag.String("scheme", "dynamic", "memory scheme: base_dram, base_oram, static, dynamic")
		rate    = flag.Uint64("rate", 300, "static scheme rate in cycles")
		rates   = flag.Int("rates", 4, "dynamic scheme |R|")
		growth  = flag.Uint64("growth", 4, "dynamic scheme epoch growth factor (2,4,8,16)")
		instr   = flag.Uint64("instr", 10_000_000, "measured instructions")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions (fast-forward)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		windows = flag.Bool("windows", false, "print per-window stats")
	)
	flag.Parse()

	spec, ok := tcoram.WorkloadByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	if *input != "" {
		if s, ok := tcoram.WorkloadInput(*bench, *input); ok {
			spec = s
		}
	}

	cfg := tcoram.Config{
		Instructions: *instr,
		WarmupInstrs: *warmup,
		Seed:         *seed,
		StaticRate:   *rate,
		NumRates:     *rates,
		EpochGrowth:  *growth,
	}
	switch *scheme {
	case "base_dram":
		cfg.Scheme = tcoram.BaseDRAM
	case "base_oram":
		cfg.Scheme = tcoram.BaseORAM
	case "static":
		cfg.Scheme = tcoram.StaticORAM
	case "dynamic":
		cfg.Scheme = tcoram.DynamicORAM
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	res, err := tcoram.Simulate(spec, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload      %s\n", res.Workload)
	fmt.Printf("scheme        %s\n", cfg.Name())
	fmt.Printf("instructions  %d (+%d warmup)\n", res.Instrs, *warmup)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("IPC           %.4f\n", res.IPC)
	fmt.Printf("LLC misses    %d (%.2f MPKI)\n", res.Cache.L2Misses,
		float64(res.Cache.L2Misses)/float64(res.Instrs)*1000)
	fmt.Printf("power         %.3f W (core %.3f + memory %.3f)\n",
		res.Power.Watts(), res.Power.CoreWatts(), res.Power.MemoryWatts())
	if cfg.Scheme != tcoram.BaseDRAM {
		fmt.Printf("ORAM accesses %d real, %d dummy (%.0f%% dummy), %d writebacks absorbed\n",
			res.Mem.RealAccesses, res.Mem.DummyAccesses,
			res.Mem.DummyFraction()*100, res.Mem.WritebacksDone)
	}
	fmt.Printf("leakage bound %s (ORAM timing channel, paper-scale accounting)\n", res.LeakageBits)
	if len(res.RateChanges) > 0 {
		fmt.Printf("rate history ")
		for _, rc := range res.RateChanges {
			fmt.Printf(" e%d@%d→%d", rc.Epoch, rc.Cycle, rc.Rate)
		}
		fmt.Println()
	}
	if *windows {
		fmt.Println("\nwindow  end-instr      IPC     real  dummy  instr/access")
		for i, w := range res.Windows {
			fmt.Printf("%6d  %9d  %7.4f  %6d %6d  %10.0f\n",
				i, w.EndInstr, w.IPC, w.RealORAM, w.DummyORAM, w.InstrPerMem)
		}
	}
}
