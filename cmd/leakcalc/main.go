// Command leakcalc is the leakage calculator: it evaluates the paper's
// information-theoretic bounds for a given configuration — the dynamic
// scheme's |E|·lg|R| bits, the early-termination channel, and the
// unprotected baseline's astronomical bound.
//
// Usage:
//
//	leakcalc -rates 4 -growth 4          # dynamic_R4_E4 → 32 bits (+62 termination)
//	leakcalc -rates 4 -growth 16         # dynamic_R4_E16 → 16 bits
//	leakcalc -unprotected -tlog2 40      # base_oram bound for a 2^40-cycle run
package main

import (
	"flag"
	"fmt"
	"math"

	"tcoram"
)

func main() {
	var (
		rates       = flag.Int("rates", 4, "|R|: number of candidate rates")
		growth      = flag.Uint64("growth", 4, "epoch growth factor (2 = doubling)")
		unprotected = flag.Bool("unprotected", false, "also print the no-protection bound")
		tlog2       = flag.Float64("tlog2", 62, "runtime exponent for the unprotected bound (cycles = 2^tlog2)")
	)
	flag.Parse()

	oram := tcoram.LeakageBudget(*rates, *growth)
	total := tcoram.TotalLeakage(*rates, *growth)
	fmt.Printf("configuration        dynamic_R%d_E%d (first epoch 2^30 cycles, Tmax 2^62)\n", *rates, *growth)
	fmt.Printf("ORAM timing channel  %s\n", oram)
	fmt.Printf("early termination    %s\n", tcoram.Bits(float64(total)-float64(oram)))
	fmt.Printf("total                %s\n", total)
	for _, r := range tcoram.PaperRates(*rates) {
		fmt.Printf("  candidate rate %6d cycles\n", r)
	}
	if *unprotected {
		bits := tcoram.UnprotectedLeakage(math.Exp2(*tlog2))
		fmt.Printf("\nno-protection bound for a 2^%.0f-cycle run: %.4g bits\n", *tlog2, float64(bits))
		fmt.Println("(Example 6.1: every access/no-access choice is a distinct trace)")
	}
}
