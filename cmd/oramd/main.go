// Command oramd serves a sharded, rate-enforced ORAM key-value store over
// TCP (JSON-lines protocol; see internal/server/wire.go).
//
// Examples:
//
//	oramd -addr :7312 -shards 8 -blocks 65536
//	oramd -addr :7312 -rates 85 -olat 15                 # static 100 µs slots
//	oramd -addr :7312 -rates 100,400,1600,6400 \
//	      -epoch 200000 -growth 2 -leak-budget 64        # dynamic epoch learner
//	oramd -addr :7312 -oram recursive -integrity \
//	      -blocks 1048576 -rates 2700                    # recursive stacks, Merkle-verified
//	oramd -addr :7312 -oram batched -batch-k 4 \
//	      -evict-every 4 -olat 100 -rates 400            # k blocks per slot, deferred eviction
//	oramd -addr :7312 -unpaced                           # no timing protection
//
// The -stats control verb turns oramd into a client of a running daemon (or
// of an oramproxy, which aggregates a whole cluster): it polls the stats op
// once, prints the JSON snapshot, and exits — the per-node poll the cluster
// routing proxy performs, exposed for operators and scripts:
//
//	oramd -stats -addr 127.0.0.1:7312
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tcoram/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7312", "listen address")
		shards     = flag.Int("shards", 4, "number of independent ORAM shards")
		blocks     = flag.Uint64("blocks", 65536, "total address space in blocks")
		blockBytes = flag.Int("block-bytes", 64, "payload bytes per block")
		z          = flag.Int("z", 3, "bucket capacity Z")
		oram       = flag.String("oram", "flat", "per-shard ORAM backend: flat | recursive | batched")
		recursion  = flag.Int("recursion", 3, "position-map ORAM levels for -oram=recursive (batched defaults to 0)")
		integrity  = flag.Bool("integrity", false, "Merkle-verify every level's untrusted storage")
		batchK     = flag.Int("batch-k", 4, "batched: distinct blocks fetched per slot (public parameter k)")
		evictEvery = flag.Int("evict-every", 4, "batched: slots between deterministic eviction passes (public parameter K)")
		batchHW    = flag.Int("batch-highwater", 0, "batched: stash high-water mark forcing an early eviction pass (0 = default)")
		queue      = flag.Int("queue", 256, "per-shard request queue depth")
		seed       = flag.Int64("seed", 1, "deterministic construction seed")
		hz         = flag.Uint64("hz", 1_000_000, "enforcer cycle frequency (cycles/s)")
		olat       = flag.Uint64("olat", 15, "ORAM access latency in cycles")
		rates      = flag.String("rates", "85", "comma-separated allowed rate set (cycles, ascending)")
		epochLen   = flag.Uint64("epoch", 0, "first epoch length in cycles (0 = static rate)")
		growth     = flag.Uint64("growth", 4, "epoch length growth factor")
		leakBudget = flag.Float64("leak-budget", 0, "session leakage budget in bits across all shards (0 = account only)")
		unpaced    = flag.Bool("unpaced", false, "disable rate enforcement (no dummies; leaks timing)")
		store      = flag.String("store", "mem", "untrusted bucket storage: mem | file (file implies -integrity)")
		dataDir    = flag.String("data-dir", "", "file store root directory (per-shard subdirectories; required with -store file)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "file store: sealed checkpoint every N served slots (1 = durable acks, 0 = shutdown only)")
		cacheBkts  = flag.Int("cache-buckets", 0, "file store: bucket page cache size per level (0 = default 1024)")
		syncPolicy = flag.String("sync", "none", "file store fsync policy: none | checkpoint | always")
		ckptMode   = flag.String("checkpoint-mode", "", "file store checkpoint strategy: full (rewrite base.bin each time; default) | delta (append O(dirty) hash-linked delta chain elements)")
		compactAt  = flag.Int64("delta-compact-after", 0, "delta mode: fold the chain into a fresh base once sealed delta bytes pass this threshold (0 = default 4 MiB)")
		mmapReads  = flag.Bool("mmap", false, "file store: serve clean bucket reads from a read-only mmap of each bucket file (unix only)")
		statsVerb  = flag.Bool("stats", false, "control verb: poll the daemon at -addr for its stats snapshot, print JSON, exit")
	)
	flag.Parse()

	if *statsVerb {
		if err := pollStats(*addr); err != nil {
			fatal(err)
		}
		return
	}

	rateSet, err := server.ParseRates(*rates)
	if err != nil {
		fatal(err)
	}
	cfg := server.Config{
		Shards:            *shards,
		Blocks:            *blocks,
		BlockBytes:        *blockBytes,
		Z:                 *z,
		Backend:           *oram,
		Recursion:         effectiveRecursion(*oram, *recursion),
		Integrity:         *integrity,
		BatchK:            *batchK,
		EvictEvery:        *evictEvery,
		BatchHighWater:    *batchHW,
		QueueDepth:        *queue,
		Seed:              *seed,
		ClockHz:           *hz,
		ORAMLatency:       *olat,
		Rates:             rateSet,
		EpochFirstLen:     *epochLen,
		EpochGrowth:       *growth,
		LeakageBudgetBits: *leakBudget,
		Unpaced:           *unpaced,
		Store:             *store,
		DataDir:           *dataDir,
		CheckpointEvery:   *ckptEvery,
		CacheBuckets:      *cacheBkts,
		Sync:              *syncPolicy,
		CheckpointMode:    *ckptMode,
		DeltaCompactAfter: *compactAt,
		MMap:              *mmapReads,
	}
	st, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	eff := st.Config()
	mode := fmt.Sprintf("paced (rates %v cycles @ %d Hz, OLAT %d)", eff.Rates, eff.ClockHz, eff.ORAMLatency)
	if eff.Unpaced {
		mode = "UNPACED (no timing protection)"
	} else if eff.EpochFirstLen > 0 {
		mode += fmt.Sprintf(", dynamic epochs (first %d, growth %d)", eff.EpochFirstLen, eff.EpochGrowth)
	}
	fmt.Printf("oramd: serving %d blocks × %d B over %d %s shards on %s — %s\n",
		eff.Blocks, eff.BlockBytes, eff.Shards, eff.BackendLabel(), l.Addr(), mode)
	if eff.Store == server.StoreFile {
		recovered := 0
		for _, ss := range st.Stats().Shards {
			if ss.Recovery == "recovered" {
				recovered++
			}
		}
		fmt.Printf("oramd: file store in %s — %d/%d shards recovered from checkpoints (checkpoint-every %d, mode %s, sync %s)\n",
			eff.DataDir, recovered, eff.Shards, eff.CheckpointEvery, eff.CheckpointMode, eff.Sync)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- server.Serve(l, st) }()
	select {
	case s := <-sig:
		fmt.Printf("oramd: %v — shutting down\n", s)
	case err := <-done:
		if !server.IsClosedErr(err) {
			fmt.Fprintf(os.Stderr, "oramd: accept: %v\n", err)
		}
	}
	l.Close()
	st.Close()

	stats := st.Stats()
	real, dummy, coalesced := stats.Totals()
	fmt.Printf("oramd: served %d real + %d dummy accesses (dummy fraction %.3f), %d coalesced\n",
		real, dummy, stats.DummyFraction(), coalesced)
	if !eff.Unpaced {
		fmt.Printf("oramd: %s\n", stats.LeakageSummary())
		if warning, ok := stats.SlipWarning(); ok {
			fmt.Printf("oramd: %s\n", warning)
		}
	}
}

// pollStats fetches one stats snapshot from a running daemon (or proxy) and
// prints it as indented JSON — the machine-readable face of the summary the
// daemon prints at shutdown, available while it serves.
func pollStats(addr string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// effectiveRecursion resolves the -recursion flag against the chosen backend.
// The flag's default of 3 is tuned for -oram recursive; forwarding it blindly
// would silently turn a plain `-oram batched` into a 3-level recursive stack,
// so the batched backend gets a flat position map unless -recursion was
// passed explicitly on the command line.
func effectiveRecursion(backend string, recursion int) int {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "recursion" {
			set = true
		}
	})
	if backend == server.BackendBatched && !set {
		return 0
	}
	return recursion
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oramd: %v\n", err)
	os.Exit(1)
}
