// Command oramd serves a sharded, rate-enforced ORAM key-value store over
// TCP (JSON-lines protocol; see internal/server/wire.go).
//
// Examples:
//
//	oramd -addr :7312 -shards 8 -blocks 65536
//	oramd -addr :7312 -rates 85 -olat 15                 # static 100 µs slots
//	oramd -addr :7312 -rates 100,400,1600,6400 \
//	      -epoch 200000 -growth 2 -leak-budget 64        # dynamic epoch learner
//	oramd -addr :7312 -oram recursive -integrity \
//	      -blocks 1048576 -rates 2700                    # recursive stacks, Merkle-verified
//	oramd -addr :7312 -oram batched -batch-k 4 \
//	      -evict-every 4 -olat 100 -rates 400            # k blocks per slot, deferred eviction
//	oramd -addr :7312 -tenant-budgets alice=32,bob=64    # per-tenant leakage sub-budgets
//	oramd -addr :7312 -unpaced                           # no timing protection
//
// The -stats control verb turns oramd into a client of a running daemon (or
// of an oramproxy, which aggregates a whole cluster): it polls the stats op
// once, prints the JSON snapshot, and exits — the per-node poll the cluster
// routing proxy performs, exposed for operators and scripts:
//
//	oramd -stats -addr 127.0.0.1:7312
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tcoram/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7312", "listen address")
		statsVerb = flag.Bool("stats", false, "control verb: poll the daemon at -addr for its stats snapshot, print JSON, exit")
	)
	sf := server.NewStoreFlags(flag.CommandLine, server.StoreFlagOptions{Storage: true})
	flag.Parse()

	if *statsVerb {
		if err := pollStats(*addr); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := sf.Config()
	if err != nil {
		fatal(err)
	}
	st, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	eff := st.Config()
	mode := fmt.Sprintf("paced (rates %v cycles @ %d Hz, OLAT %d)", eff.Rates, eff.ClockHz, eff.ORAMLatency)
	if eff.Unpaced {
		mode = "UNPACED (no timing protection)"
	} else if eff.EpochFirstLen > 0 {
		mode += fmt.Sprintf(", dynamic epochs (first %d, growth %d)", eff.EpochFirstLen, eff.EpochGrowth)
	}
	fmt.Printf("oramd: serving %d blocks × %d B over %d %s shards on %s — %s\n",
		eff.Blocks, eff.BlockBytes, eff.Shards, eff.BackendLabel(), l.Addr(), mode)
	if len(eff.TenantBudgets) > 0 {
		fmt.Printf("oramd: enforcing %d per-tenant leakage sub-budgets\n", len(eff.TenantBudgets))
	}
	if eff.Store == server.StoreFile {
		recovered := 0
		for _, ss := range st.Stats().Shards {
			if ss.Recovery == "recovered" {
				recovered++
			}
		}
		fmt.Printf("oramd: file store in %s — %d/%d shards recovered from checkpoints (checkpoint-every %d, mode %s, sync %s)\n",
			eff.DataDir, recovered, eff.Shards, eff.CheckpointEvery, eff.CheckpointMode, eff.Sync)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- server.Serve(l, st) }()
	select {
	case s := <-sig:
		fmt.Printf("oramd: %v — shutting down\n", s)
	case err := <-done:
		if !server.IsClosedErr(err) {
			fmt.Fprintf(os.Stderr, "oramd: accept: %v\n", err)
		}
	}
	l.Close()
	st.Close()

	stats := st.Stats()
	real, dummy, coalesced := stats.Totals()
	fmt.Printf("oramd: served %d real + %d dummy accesses (dummy fraction %.3f), %d coalesced\n",
		real, dummy, stats.DummyFraction(), coalesced)
	if !eff.Unpaced {
		fmt.Printf("oramd: %s\n", stats.LeakageSummary())
		if warning, ok := stats.SlipWarning(); ok {
			fmt.Printf("oramd: %s\n", warning)
		}
		for _, ts := range stats.Tenants {
			fmt.Printf("oramd: tenant %q leaked %.1f bits over %d transitions (budget %.1f, exceeded %v)\n",
				ts.Tenant, ts.LeakedBits, ts.Transitions, ts.BudgetBits, ts.Exceeded)
		}
	}
}

// pollStats fetches one stats snapshot from a running daemon (or proxy) and
// prints it as indented JSON — the machine-readable face of the summary the
// daemon prints at shutdown, available while it serves.
func pollStats(addr string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "oramd: %v\n", err)
	os.Exit(1)
}
