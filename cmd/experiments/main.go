// Command experiments regenerates the paper's tables and figures. Each
// experiment prints the rows/series the paper reports; -csv writes
// machine-readable copies under -out.
//
// Usage:
//
//	experiments -run all -scale quick
//	experiments -run fig6 -scale full -csv -out results/
//	experiments -run table1,table2,leakage
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tcoram"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated: table1,table2,fig2,fig5,fig6,fig7,fig8a,fig8b,headline,leakage,all")
		scale   = flag.String("scale", "quick", "run scale: quick or full")
		csv     = flag.Bool("csv", false, "also write CSV files")
		out     = flag.String("out", "results", "CSV output directory")
	)
	flag.Parse()

	var sc tcoram.ExperimentScale
	switch *scale {
	case "quick":
		sc = tcoram.QuickScale()
	case "full":
		sc = tcoram.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(1)
	}

	all := map[string]func() *tcoram.Table{
		"table1":   tcoram.ExperimentTable1,
		"table2":   tcoram.ExperimentTable2,
		"leakage":  tcoram.ExperimentLeakage,
		"fig2":     func() *tcoram.Table { return tcoram.ExperimentFig2(sc) },
		"fig5":     func() *tcoram.Table { return tcoram.ExperimentFig5(sc) },
		"fig6":     func() *tcoram.Table { return tcoram.ExperimentFig6(sc) },
		"fig7":     func() *tcoram.Table { return tcoram.ExperimentFig7(sc) },
		"fig8a":    func() *tcoram.Table { return tcoram.ExperimentFig8a(sc) },
		"fig8b":    func() *tcoram.Table { return tcoram.ExperimentFig8b(sc) },
		"headline": func() *tcoram.Table { return tcoram.ExperimentHeadline(sc) },
	}
	order := []string{"table1", "table2", "leakage", "fig2", "fig5", "fig6", "fig7", "fig8a", "fig8b", "headline"}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	if want["all"] {
		for _, n := range order {
			want[n] = true
		}
	}

	for _, name := range order {
		if !want[name] {
			continue
		}
		start := time.Now()
		tbl := all[name]()
		tbl.Render(os.Stdout)
		fmt.Printf("[%s: %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csv {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*out, name+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tbl.CSV(f)
			f.Close()
		}
	}
}
