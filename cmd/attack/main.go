// Command attack demonstrates the adversary models:
//
//	attack -demo probe      root-bucket probing (§3.2) against a functional Path ORAM
//	attack -demo malicious  Figure 1's bit-leaking program vs base_oram and the enforcer
//	attack -demo replay     §8.1's broken HMAC-determinism replay defence
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tcoram"
	"tcoram/internal/pathoram"
)

func main() {
	demo := flag.String("demo", "probe", "probe | malicious | replay")
	flag.Parse()

	switch *demo {
	case "probe":
		probeDemo()
	case "malicious":
		maliciousDemo()
	case "replay":
		replayDemo()
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
		os.Exit(1)
	}
}

func probeDemo() {
	fmt.Println("Root-bucket probing attack (§3.2)")
	fmt.Println("The adversary polls the root bucket's raw bytes in shared DRAM;")
	fmt.Println("probabilistic re-encryption makes every ORAM access flip them.")
	fmt.Println()
	o, err := tcoram.NewDemoORAM(8, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	probe := tcoram.NewRootProbe(o)
	rng := rand.New(rand.NewSource(2))
	pattern := []bool{true, true, false, true, false, false, true, false, true, true}
	fmt.Println("interval  program-activity  probe-detects")
	for i, active := range pattern {
		if active {
			if _, err := o.Access(pathoram.OpRead, uint64(rng.Intn(50)), nil); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("%8d  %16v  %13v\n", i, active, probe.Poll())
	}
	fmt.Printf("\nThe probe recovered the access pattern exactly (%d/%d intervals):\n",
		probe.Detections, probe.Polls)
	fmt.Println("this is why ORAM access *timing* must be protected, not just addresses.")
	fmt.Println()
	fmt.Println("But the probe cannot tell real accesses from dummies:")
	if err := o.DummyAccess(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("after a dummy access, probe fires: %v (indistinguishable)\n", probe.Poll())
}

func maliciousDemo() {
	fmt.Println("Malicious program P1 (Figure 1a)")
	fmt.Println()
	rng := rand.New(rand.NewSource(3))
	secret := make([]bool, 64)
	for i := range secret {
		secret[i] = rng.Intn(2) == 1
	}
	res := tcoram.RunLeakDemo(secret)
	fmt.Printf("secret length:                      %d bits\n", res.SecretBits)
	fmt.Printf("recovered via base_oram timing:     %d bits (the whole secret)\n", res.UnprotectedBits)
	fmt.Printf("shielded traces identical across secrets: %v\n", res.ShieldedTraceEq)
	fmt.Println()
	fmt.Printf("leakage bound, dynamic_R4_E4:       %s per execution\n", tcoram.LeakageBudget(4, 4))
	fmt.Printf("leakage bound, no protection (2^40 cycles): %.3g bits\n",
		float64(tcoram.UnprotectedLeakage(1<<40)))
}

func replayDemo() {
	fmt.Println("Broken replay defence (§8.1)")
	fmt.Println("Fixing (program, data, E, R) with an HMAC and relying on deterministic")
	fmt.Println("re-execution fails: main-memory latency varies between runs, the rate")
	fmt.Println("learner sees different counters, and the timing trace changes.")
	fmt.Println()
	divergent, at := tcoram.BrokenDeterminismDemo(1488, 800)
	if divergent {
		fmt.Printf("replaying with %d cycles of memory-latency jitter changed the rate sequence\n", at)
		fmt.Println("→ each replay leaks a fresh trace; the defence is broken.")
	} else {
		fmt.Println("no divergence found in the swept jitter range")
	}
	fmt.Println()
	fmt.Println("The working defence (§8): the processor forgets the session key when the")
	fmt.Println("session ends, making encrypt_K(D) undecryptable — the data runs once.")
}
