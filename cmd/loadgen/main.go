// Command loadgen drives a multi-client key-value workload against an
// oramd daemon and reports throughput, latency percentiles and the observed
// dummy fraction per scenario.
//
// With -addr it targets a running daemon; without it, loadgen starts an
// in-process oramd on a loopback port and drives that — the one-command
// demo and the configuration the e2e acceptance test mirrors:
//
//	loadgen                                   # in-process, all scenarios
//	loadgen -addr 127.0.0.1:7312 -clients 32  # external daemon
//	loadgen -scenario zipf -ops 5000          # one scenario, heavier run
//
// The dynamic epoch learner goes live with a multi-rate set and an epoch
// schedule; the ramp scenario shows it tracking an offered load that climbs
// phase by phase, with the report's rate-chg/leak-bits columns counting
// exactly what the timing channel gave away:
//
//	loadgen -scenario ramp -ops 400 \
//	        -rates 100,400,1600,6400 -epoch 200000 -growth 2 -leak-budget 64
//
// The recursive, integrity-checked backend (address spaces past a flat
// position map; every level Merkle-verified) serves behind the same flags:
//
//	loadgen -oram recursive -integrity -olat 300 -rates 2700
//
// The batched backend serves up to k distinct blocks per slot and amortizes
// write-back into a deterministic eviction pass every K slots:
//
//	loadgen -oram batched -batch-k 4 -evict-every 4 -olat 100 -rates 400
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"

	"tcoram/internal/server"
	"tcoram/internal/sim"
	"tcoram/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "", "daemon address; empty = start an in-process oramd")
		scenario   = flag.String("scenario", "all", "uniform | zipf | read-mostly | scan | bursty | onoff | ramp | all (comma-separable)")
		clients    = flag.Int("clients", 8, "concurrent clients")
		ops        = flag.Int("ops", 500, "operations per client")
		blocks     = flag.Uint64("blocks", 4096, "address space to exercise (must fit the server)")
		blockBytes = flag.Int("block-bytes", 64, "payload bytes per block (must match the server)")
		seed       = flag.Int64("seed", 1, "workload seed")
		retries    = flag.Int("retries", 4, "attempts per operation across connection loss: a dropped daemon/proxy connection is redialed with backoff instead of failing the run")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")

		// In-process server shape (ignored with -addr).
		shards     = flag.Int("shards", 4, "in-process: shard count")
		oram       = flag.String("oram", "flat", "in-process: per-shard ORAM backend: flat | recursive | batched")
		recursion  = flag.Int("recursion", 3, "in-process: position-map ORAM levels for -oram=recursive (batched defaults to 0)")
		integrity  = flag.Bool("integrity", false, "in-process: Merkle-verify every level's untrusted storage")
		batchK     = flag.Int("batch-k", 4, "in-process: batched blocks fetched per slot (public parameter k)")
		evictEvery = flag.Int("evict-every", 4, "in-process: slots between batched eviction passes (public parameter K)")
		rates      = flag.String("rates", "85", "in-process: comma-separated rate set (cycles, ascending; one value = static)")
		olat       = flag.Uint64("olat", 15, "in-process: ORAM latency in cycles")
		epochLen   = flag.Uint64("epoch", 0, "in-process: first epoch length in cycles (0 = static rate)")
		growth     = flag.Uint64("growth", 4, "in-process: epoch length growth factor")
		leakBudget = flag.Float64("leak-budget", 0, "in-process: leakage budget in bits across shards (0 = account only)")
	)
	flag.Parse()

	target := *addr
	if target == "" {
		rateSet, err := server.ParseRates(*rates)
		if err != nil {
			fatal(err)
		}
		st, err := server.New(server.Config{
			Shards:            *shards,
			Blocks:            *blocks,
			BlockBytes:        *blockBytes,
			Backend:           *oram,
			Recursion:         effectiveRecursion(*oram, *recursion),
			Integrity:         *integrity,
			BatchK:            *batchK,
			EvictEvery:        *evictEvery,
			ClockHz:           1_000_000,
			ORAMLatency:       *olat,
			Rates:             rateSet,
			EpochFirstLen:     *epochLen,
			EpochGrowth:       *growth,
			LeakageBudgetBits: *leakBudget,
		})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer l.Close()
		go server.Serve(l, st)
		target = l.Addr().String()
		mode := "static"
		if *epochLen > 0 {
			mode = fmt.Sprintf("dynamic epochs (first %d, growth %d)", *epochLen, *growth)
		}
		fmt.Printf("loadgen: started in-process oramd (%d %s shards, rates %v, %s) on %s\n",
			*shards, st.Config().BackendLabel(), rateSet, mode, target)
	}

	scenarios, err := pickScenarios(*scenario)
	if err != nil {
		fatal(err)
	}

	// Every connection is a retrying client: a daemon or proxy restart under
	// load surfaces as a redial, not a failed scenario.
	retryCfg := server.RetryConfig{Attempts: *retries}
	statsClient, err := server.RetryDial(target, retryCfg)
	if err != nil {
		fatal(err)
	}
	defer statsClient.Close()

	table := sim.ServiceReportTable("loadgen @ " + target)
	var failures int
	for _, sc := range scenarios {
		// RunLoad never closes what dial returns; collect the per-client
		// connections and close them after each scenario.
		var connMu sync.Mutex
		var conns []*server.RetryClient
		rep, err := server.RunLoad(
			func() (server.KV, error) {
				c, err := server.RetryDial(target, retryCfg)
				if err != nil {
					return nil, err
				}
				connMu.Lock()
				conns = append(conns, c)
				connMu.Unlock()
				return c, nil
			},
			func() (server.Stats, error) { return statsClient.Stats() },
			server.LoadConfig{
				Scenario:     sc,
				Clients:      *clients,
				OpsPerClient: *ops,
				Blocks:       *blocks,
				BlockBytes:   *blockBytes,
				Seed:         *seed,
			})
		for _, c := range conns {
			c.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", sc, err)
			failures++
			continue
		}
		rep.Row(table)
		if rep.Lost > 0 || rep.Corrupted > 0 {
			failures++
		}
	}
	if *csv {
		table.CSV(os.Stdout)
	} else {
		table.Render(os.Stdout)
	}
	// The leakage account is cumulative across the whole serving session;
	// print it after the per-scenario deltas so operators see the total the
	// budget is judged against. A failed fetch must say so — silence would
	// read as "no leakage, no slip".
	if final, err := statsClient.Stats(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: could not fetch final server stats: %v\n", err)
	} else {
		fmt.Printf("loadgen: %s\n", final.LeakageSummary())
		if warning, ok := final.SlipWarning(); ok {
			fmt.Printf("loadgen: %s\n", warning)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d scenario(s) had lost or corrupted operations\n", failures)
		os.Exit(1)
	}
}

func pickScenarios(s string) ([]workload.KVScenario, error) {
	if s == "all" {
		return workload.KVScenarios(), nil
	}
	var out []workload.KVScenario
	for _, part := range strings.Split(s, ",") {
		sc := workload.KVScenario(strings.TrimSpace(part))
		ok := false
		for _, known := range workload.KVScenarios() {
			if sc == known {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown scenario %q (have %v)", sc, workload.KVScenarios())
		}
		out = append(out, sc)
	}
	return out, nil
}

// effectiveRecursion mirrors oramd's handling of the -recursion default: its
// value of 3 is tuned for -oram recursive, so a plain `-oram batched` gets a
// flat position map unless -recursion was passed explicitly.
func effectiveRecursion(backend string, recursion int) int {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "recursion" {
			set = true
		}
	})
	if backend == server.BackendBatched && !set {
		return 0
	}
	return recursion
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
